//===- RecallPropertyTest.cpp - Soundness as a property test --------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The recall experiment (§5.1) as a property: for generated programs and
// many execution seeds, every dynamically observed fact must be
// over-approximated by every sound analysis. This is the strongest
// end-to-end guard against unsound cut/shortcut edges.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisNames.h"
#include "client/AnalysisSession.h"
#include "interp/Interpreter.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace csc;

namespace {

struct RecallCase {
  uint64_t Seed;
  AnalysisKind Kind;
};

WorkloadConfig smallConfig(uint64_t Seed) {
  WorkloadConfig C;
  C.Name = "recall";
  C.Seed = Seed;
  C.NumScenarios = 4;
  C.ActionsPerScenario = 8;
  C.NumEntityClasses = 8;
  C.WrapperDepth = 2;
  C.NumFamilies = 4;
  C.FamilySize = 3;
  C.NumSelectors = 3;
  C.BombWidth = 3;
  C.BombDepth = 3;
  return C;
}

class RecallPropertyTest : public ::testing::TestWithParam<RecallCase> {};

} // namespace

TEST_P(RecallPropertyTest, DynamicFactsAreRecalled) {
  const RecallCase &Case = GetParam();
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(smallConfig(Case.Seed), Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);

  DynamicFacts Dyn = interpretManySeeds(*P, 6);
  ASSERT_GT(Dyn.ReachedMethods.size(), 5u);

  AnalysisSession S(*P);
  AnalysisRun O = S.run(analysisName(Case.Kind));
  ASSERT_TRUE(O.completed()) << O.Error;
  const PTAResult &R = O.Result;

  for (MethodId M : Dyn.ReachedMethods)
    EXPECT_TRUE(R.isReachable(M))
        << "missed reachable method " << P->methodString(M);

  for (uint64_t E : Dyn.CallEdges) {
    CallSiteId CS = static_cast<CallSiteId>(E >> 32);
    MethodId M = static_cast<MethodId>(E & 0xFFFFFFFFu);
    bool Found = false;
    for (MethodId Callee : R.calleesOf(CS))
      Found = Found || Callee == M;
    EXPECT_TRUE(Found) << "missed call edge to " << P->methodString(M);
  }

  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O2 : Objs)
      EXPECT_TRUE(R.pt(V).contains(O2))
          << "missed points-to fact: " << P->var(V).Name << " -> o" << O2
          << " in " << P->methodString(P->var(V).Method);

  for (const auto &[Key, Objs] : Dyn.FieldPointsTo) {
    ObjId Base = static_cast<ObjId>(Key >> 32);
    FieldId F = static_cast<FieldId>(Key & 0xFFFFFFFFu);
    for (ObjId O2 : Objs)
      EXPECT_TRUE(R.ptField(Base, F).contains(O2))
          << "missed field fact o" << Base << "."
          << P->field(F).Name << " -> o" << O2;
  }

  std::vector<StmtId> MayFail = mayFailCasts(*P, R);
  for (StmtId S : Dyn.FailedCasts) {
    bool Found = false;
    for (StmtId F : MayFail)
      Found = Found || F == S;
    EXPECT_TRUE(Found) << "dynamically failing cast not flagged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecallPropertyTest,
    ::testing::Values(
        RecallCase{101, AnalysisKind::CI},
        RecallCase{101, AnalysisKind::CSC},
        RecallCase{101, AnalysisKind::TwoObj},
        RecallCase{101, AnalysisKind::ZipperE},
        RecallCase{202, AnalysisKind::CI},
        RecallCase{202, AnalysisKind::CSC},
        RecallCase{202, AnalysisKind::TwoObj},
        RecallCase{202, AnalysisKind::TwoType},
        RecallCase{303, AnalysisKind::CSC},
        RecallCase{303, AnalysisKind::TwoCallSite},
        RecallCase{404, AnalysisKind::CSC},
        RecallCase{404, AnalysisKind::ZipperE},
        RecallCase{505, AnalysisKind::CSC},
        RecallCase{505, AnalysisKind::CI}),
    [](const ::testing::TestParamInfo<RecallCase> &Info) {
      std::string Name = "seed" + std::to_string(Info.param.Seed) + "_" +
                         analysisName(Info.param.Kind);
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(RecallDoopModeTest, DoopEngineIsEquallySound) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(smallConfig(606), Diags);
  ASSERT_NE(P, nullptr);
  DynamicFacts Dyn = interpretManySeeds(*P, 4);
  AnalysisSession S(*P);
  AnalysisRun O = S.run("csc-doop");
  ASSERT_TRUE(O.completed()) << O.Error;
  for (MethodId M : Dyn.ReachedMethods)
    EXPECT_TRUE(O.Result.isReachable(M)) << P->methodString(M);
  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O2 : Objs)
      EXPECT_TRUE(O.Result.pt(V).contains(O2)) << P->var(V).Name;
}
