//===- InterpreterTest.cpp - Concrete interpreter tests -------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(InterpreterTest, Figure1DynamicFacts) {
  auto P = parseOrDie(figure1Source());
  DynamicFacts F = interpret(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Result1 = findVar(*P, Main, "result1");
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  ObjId O21 = allocOf(*P, findVar(*P, Main, "item2"));
  // Concrete execution is fully precise: result1 only ever holds o16.
  ASSERT_EQ(F.VarPointsTo.count(Result1), 1u);
  EXPECT_EQ(F.VarPointsTo[Result1],
            (std::unordered_set<ObjId>{O16}));
  VarId Result2 = findVar(*P, Main, "result2");
  EXPECT_EQ(F.VarPointsTo[Result2],
            (std::unordered_set<ObjId>{O21}));
  EXPECT_FALSE(F.Truncated);
  EXPECT_EQ(F.ReachedMethods.size(), 3u);
}

TEST(InterpreterTest, RecordsCallEdges) {
  auto P = parseOrDie(figure1Source());
  DynamicFacts F = interpret(*P);
  MethodId SetItem = findMethod(*P, "Carton", "setItem");
  bool Found = false;
  for (CallSiteId CS = 0; CS < P->numCallSites(); ++CS)
    Found = Found || F.hasCallEdge(CS, SetItem);
  EXPECT_TRUE(Found);
  EXPECT_EQ(F.CallEdges.size(), 4u);
}

TEST(InterpreterTest, BranchesVaryBySeed) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var o: Object;
    if ? {
      o = new A;
    } else {
      o = new B;
    }
  }
}
)");
  MethodId Main = findMethod(*P, "Main", "main");
  VarId O = findVar(*P, Main, "o");
  // Across seeds, both branches should eventually be taken.
  std::unordered_set<ObjId> Seen;
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    InterpOptions Opts;
    Opts.Seed = Seed;
    DynamicFacts F = interpret(*P, Opts);
    for (ObjId A : F.VarPointsTo[O])
      Seen.insert(A);
  }
  EXPECT_EQ(Seen.size(), 2u);
}

TEST(InterpreterTest, FieldAndStaticFactsRecorded) {
  auto P = parseOrDie(R"(
class Box {
  field f: Object;
}
class Reg {
  static field g: Object;
}
class Main {
  static method main(): void {
    var b: Box;
    var o: Object;
    var x: Object;
    b = new Box;
    o = new Object;
    b.f = o;
    x = b.f;
    Reg::g = o;
    x = Reg::g;
  }
}
)");
  DynamicFacts F = interpret(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OB = allocOf(*P, findVar(*P, Main, "b"));
  ObjId OO = allocOf(*P, findVar(*P, Main, "o"));
  FieldId Fld = P->resolveField(P->typeByName("Box"), "f");
  uint64_t Key = packPair(OB, Fld);
  ASSERT_EQ(F.FieldPointsTo.count(Key), 1u);
  EXPECT_TRUE(F.FieldPointsTo[Key].count(OO));
  FieldId G = P->resolveField(P->typeByName("Reg"), "g");
  EXPECT_TRUE(F.StaticPointsTo[G].count(OO));
}

TEST(InterpreterTest, FailedCastRecordedAndSkipped) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var o: Object;
    var b: B;
    o = new A;
    b = (B) o;
  }
}
)");
  DynamicFacts F = interpret(*P);
  EXPECT_EQ(F.FailedCasts.size(), 1u);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId B = findVar(*P, Main, "b");
  EXPECT_EQ(F.VarPointsTo.count(B), 0u) << "cast failed: no assignment";
}

TEST(InterpreterTest, NullReceiversSkipCalls) {
  auto P = parseOrDie(R"(
class A {
  method m(): void { }
}
class Main {
  static method main(): void {
    var a: A;
    if ? {
      a = new A;
    }
    call a.m();
  }
}
)");
  // Seed such that the branch is skipped -> a stays null -> no crash.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    InterpOptions Opts;
    Opts.Seed = Seed;
    DynamicFacts F = interpret(*P, Opts);
    EXPECT_LE(F.ReachedMethods.size(), 2u);
  }
}

TEST(InterpreterTest, StepBudgetTruncates) {
  // Infinite recursion is stopped by the depth/step budgets.
  auto P = parseOrDie(R"(
class Loop {
  static method spin(): void {
    scall Loop.spin();
  }
}
class Main {
  static method main(): void {
    scall Loop.spin();
  }
}
)");
  InterpOptions Opts;
  Opts.MaxDepth = 50;
  DynamicFacts F = interpret(*P, Opts);
  EXPECT_TRUE(F.Truncated);
}

TEST(InterpreterTest, MergeAccumulatesFacts) {
  auto P = parseOrDie(figure1Source());
  DynamicFacts All = interpretManySeeds(*P, 4);
  DynamicFacts One = interpret(*P);
  EXPECT_GE(All.CallEdges.size(), One.CallEdges.size());
  EXPECT_GE(All.Steps, One.Steps);
}

TEST(InterpreterTest, ContainersExecute) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var a: Object;
    var x: Object;
    var it: Iterator;
    var y: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    a = new Object;
    call l.add(a);
    x = call l.get();
    it = call l.iterator();
    y = call it.next();
  }
}
)");
  DynamicFacts F = interpret(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  VarId Y = findVar(*P, Main, "y");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  EXPECT_TRUE(F.VarPointsTo[X].count(OA));
  EXPECT_TRUE(F.VarPointsTo[Y].count(OA));
  EXPECT_FALSE(F.Truncated);
}
