//===- DifferentialFuzzTest.cpp - Randomized differential testing ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// Seeded randomized workloads, checked two independent ways:
//
//  1. Soundness oracle (as in RecallPropertyTest): every fact the
//     interpreter observes dynamically — reached methods, call edges,
//     variable and field points-to, failing casts — must be
//     over-approximated by every sound static configuration.
//
//  2. Configuration invariance: ci, csc, and 2obj results must be
//     byte-identical (timing-free reports) and projection-identical
//     across every engine knob combination — `par` lanes crossed with
//     `scc` on/off. The knobs are performance-only by contract; any
//     divergence is a solver bug, and a randomized program is far more
//     likely to find the weird topology that triggers it than the
//     hand-written examples.
//
// Every case derives its workload-generator knobs from the case seed via
// the deterministic Rng, so the whole suite is reproducible. On failure
// the offending program is dumped as .jir next to the test binary (path
// printed in the failure output) together with its seed, so a failing
// case replays outside the fuzzer.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "client/Report.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace csc;

namespace {

/// Randomized-but-reproducible generator knobs: every dimension the
/// workload generator exposes is drawn from the case seed, small enough
/// to keep one case in the tens of milliseconds but crossing container
/// use, field chains, shared hubs, copy cycles, and call bombs.
WorkloadConfig fuzzConfig(uint64_t Seed) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 1);
  WorkloadConfig C;
  C.Name = "fuzz-" + std::to_string(Seed);
  C.Seed = Seed;
  C.NumEntityClasses = 4 + R.nextInRange(8);
  C.WrapperDepth = 1 + R.nextInRange(3);
  C.NumFamilies = 2 + R.nextInRange(4);
  C.FamilySize = 2 + R.nextInRange(3);
  C.NumSelectors = 2 + R.nextInRange(3);
  C.NumScenarios = 3 + R.nextInRange(4);
  C.ActionsPerScenario = 6 + R.nextInRange(8);
  C.FieldDensity = 1 + R.nextInRange(3);
  C.CallChainDepth = R.nextInRange(4);
  C.ContainerMixPct = R.nextInRange(40);
  C.NumSharedHubs = R.nextInRange(3);
  C.HubMixPct = 5 + R.nextInRange(20);
  C.CopyCycleLen = R.nextBool(0.7) ? 2 + R.nextInRange(5) : 0;
  C.BombDepth = R.nextBool(0.5) ? 2 + R.nextInRange(2) : 0;
  C.BombWidth = C.BombDepth ? 2 + R.nextInRange(2) : 0;
  C.BombMultiClass = R.nextBool();
  return C;
}

/// Writes the offending program next to the test binary for replay and
/// reports the path; called only when a case already failed.
void dumpOffender(uint64_t Seed) {
  std::string Path = "fuzz-offender-seed" + std::to_string(Seed) + ".jir";
  std::ofstream Out(Path);
  Out << "// DifferentialFuzzTest offender, seed " << Seed << "\n"
      << "// replay: cscpta --analyses ci;par=4 <this file>\n"
      << generateWorkload(fuzzConfig(Seed));
  ADD_FAILURE() << "offending workload dumped to " << Path << " (seed "
                << Seed << ")";
}

std::string reportOf(const AnalysisRun &Run) {
  JsonWriter J;
  appendRunJson(J, Run, /*IncludeTimings=*/false);
  return J.take();
}

/// Oracle 1: dynamic facts ⊆ static result.
void expectSound(const Program &P, const DynamicFacts &Dyn,
                 const PTAResult &R, const std::string &Label) {
  for (MethodId M : Dyn.ReachedMethods)
    EXPECT_TRUE(R.isReachable(M))
        << Label << ": missed reachable method " << P.methodString(M);
  for (uint64_t E : Dyn.CallEdges) {
    CallSiteId CS = static_cast<CallSiteId>(E >> 32);
    MethodId M = static_cast<MethodId>(E & 0xFFFFFFFFu);
    bool Found = false;
    for (MethodId Callee : R.calleesOf(CS))
      Found = Found || Callee == M;
    EXPECT_TRUE(Found) << Label << ": missed call edge to "
                       << P.methodString(M);
  }
  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O : Objs)
      EXPECT_TRUE(R.pt(V).contains(O))
          << Label << ": missed points-to fact " << P.var(V).Name
          << " -> o" << O;
  for (const auto &[Key, Objs] : Dyn.FieldPointsTo) {
    ObjId Base = static_cast<ObjId>(Key >> 32);
    FieldId F = static_cast<FieldId>(Key & 0xFFFFFFFFu);
    for (ObjId O : Objs)
      EXPECT_TRUE(R.ptField(Base, F).contains(O))
          << Label << ": missed field fact o" << Base << "."
          << P.field(F).Name << " -> o" << O;
  }
  std::vector<StmtId> MayFail = mayFailCasts(P, R);
  for (StmtId S : Dyn.FailedCasts) {
    bool Found = false;
    for (StmtId F : MayFail)
      Found = Found || F == S;
    EXPECT_TRUE(Found) << Label << ": dynamically failing cast not flagged";
  }
}

/// Oracle 2: engine knobs are invisible. Projections compared per
/// variable; reports compared as bytes after erasing the spec spelling.
void expectInvariant(const Program &P, AnalysisRun &Base,
                     AnalysisRun &Variant, const std::string &Label) {
  ASSERT_EQ(Variant.Status, RunStatus::Completed)
      << Label << ": " << Variant.Error;
  Variant.Name = Base.Name;
  EXPECT_EQ(reportOf(Base), reportOf(Variant)) << Label;
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(Base.Result.pt(V).toVector(), Variant.Result.pt(V).toVector())
        << Label << ": var " << P.var(V).Name;
  EXPECT_EQ(Base.Result.Stats.PtsInsertions,
            Variant.Result.Stats.PtsInsertions)
      << Label;
}

class DifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialFuzzTest, SoundAndInvariantAcrossEngineKnobs) {
  const uint64_t Seed = GetParam();
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(fuzzConfig(Seed), Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << "seed " << Seed << ": " << D;
  ASSERT_NE(P, nullptr);

  DynamicFacts Dyn = interpretManySeeds(*P, 4);
  ASSERT_GT(Dyn.ReachedMethods.size(), 3u)
      << "seed " << Seed << " generated a trivial program";

  AnalysisSession S(*P);
  for (const char *Spec : {"ci", "csc", "2obj"}) {
    // Baseline: serial engine, cycle elimination on (the defaults).
    AnalysisRun Base = S.run(std::string(Spec) + ";scc=1;par=1");
    ASSERT_EQ(Base.Status, RunStatus::Completed)
        << Spec << "/seed " << Seed << ": " << Base.Error;
    Base.Name = Spec;
    expectSound(*P, Dyn, Base.Result,
                std::string(Spec) + "/seed " + std::to_string(Seed));

    // Every engine-knob combination must reproduce it exactly.
    for (const char *Scc : {"1", "0"})
      for (const char *Par : {"1", "2", "4"}) {
        if (Scc[0] == '1' && Par[0] == '1')
          continue; // The baseline itself.
        AnalysisRun V =
            S.run(std::string(Spec) + ";scc=" + Scc + ";par=" + Par);
        expectInvariant(*P, Base, V,
                        std::string(Spec) + ";scc=" + Scc + ";par=" + Par +
                            "/seed " + std::to_string(Seed));
      }
  }

  if (::testing::Test::HasFailure())
    dumpOffender(Seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialFuzzTest,
                         ::testing::Values(11ULL, 23ULL, 37ULL, 59ULL,
                                           71ULL, 97ULL, 113ULL, 131ULL),
                         [](const ::testing::TestParamInfo<uint64_t> &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST(DifferentialFuzzDoopTest, DoopEngineInvariantUnderPar) {
  // The Doop engine crossed with par on one seed: full re-propagation
  // exercises the sweep's snapshot path (deltas == whole sets), which
  // the delta-mode sweep never does.
  const uint64_t Seed = 23;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(fuzzConfig(Seed), Diags);
  ASSERT_NE(P, nullptr);
  DynamicFacts Dyn = interpretManySeeds(*P, 4);
  AnalysisSession S(*P);
  AnalysisRun Base = S.run("csc-doop;par=1");
  ASSERT_EQ(Base.Status, RunStatus::Completed) << Base.Error;
  Base.Name = "csc-doop";
  expectSound(*P, Dyn, Base.Result, "csc-doop/seed23");
  AnalysisRun V = S.run("csc-doop;par=4");
  expectInvariant(*P, Base, V, "csc-doop;par=4/seed23");
  if (::testing::Test::HasFailure())
    dumpOffender(Seed);
}
