//===- ZipperTest.cpp - Selective context sensitivity tests ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "zipper/Zipper.h"

#include "client/AnalysisSession.h"
#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(ZipperTest, SelectsAccessorClasses) {
  auto P = parseOrDie(figure1Source());
  ZipperSelection Sel = runZipperSelection(*P);
  // Carton has wrapped (setItem) and unwrapped (getItem) flows.
  MethodId SetItem = findMethod(*P, "Carton", "setItem");
  MethodId GetItem = findMethod(*P, "Carton", "getItem");
  EXPECT_TRUE(Sel.Selected.count(SetItem));
  EXPECT_TRUE(Sel.Selected.count(GetItem));
  EXPECT_GE(Sel.CriticalClasses, 1u);
}

TEST(ZipperTest, IgnoresFlowFreeClasses) {
  auto P = parseOrDie(R"(
class Sink {
  method consume(o: Object): void {
    var x: Object;
    x = new Object;
  }
}
class Main {
  static method main(): void {
    var s: Sink;
    var o: Object;
    s = new Sink;
    o = new Object;
    call s.consume(o);
  }
}
)");
  ZipperSelection Sel = runZipperSelection(*P);
  MethodId Consume = findMethod(*P, "Sink", "consume");
  EXPECT_FALSE(Sel.Selected.count(Consume))
      << "no IN->OUT flow, must not be selected";
}

TEST(ZipperTest, MainAnalysisRecoversFigure1Precision) {
  auto P = parseOrDie(figure1Source());
  AnalysisSession S(*P);
  AnalysisRun Out = S.run("zipper-e");
  ASSERT_TRUE(Out.completed()) << Out.Error;
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  VarId Result1 = findVar(*P, Main, "result1");
  EXPECT_EQ(Out.Result.pt(Result1).toVector(), std::vector<uint32_t>{O16});
  EXPECT_GT(Out.SelectedMethods, 0u);
  EXPECT_GT(Out.Timings.PreMs, 0.0);
  EXPECT_FALSE(Out.PreFromCache);

  // A second Zipper-e run on the same session reuses the cached
  // pre-analysis and reaches the same result.
  AnalysisRun Again = S.run("zipper-e");
  ASSERT_TRUE(Again.completed());
  EXPECT_TRUE(Again.PreFromCache);
  EXPECT_EQ(Again.SelectedMethods, Out.SelectedMethods);
  EXPECT_EQ(Again.Result.pt(Result1).toVector(),
            std::vector<uint32_t>{O16});
}

TEST(ZipperTest, CostGuardUnselectsExpensiveClasses) {
  auto P = parseOrDie(figure1Source());
  ZipperOptions Opts;
  Opts.CostFraction = 0.0000001; // Everything is "too expensive".
  Opts.MinCostFloor = 0;
  ZipperSelection Sel = runZipperSelection(*P, Opts);
  EXPECT_TRUE(Sel.Selected.empty());
  EXPECT_GT(Sel.UnselectedByCostGuard, 0u);
}

TEST(ZipperTest, SelectionIsDeterministic) {
  auto P1 = parseOrDie(figure1Source());
  auto P2 = parseOrDie(figure1Source());
  ZipperSelection S1 = runZipperSelection(*P1);
  ZipperSelection S2 = runZipperSelection(*P2);
  EXPECT_EQ(S1.Selected, S2.Selected);
  EXPECT_EQ(S1.CriticalClasses, S2.CriticalClasses);
}
