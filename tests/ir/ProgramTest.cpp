//===- ProgramTest.cpp - Unit tests for the IR container ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Program.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace csc;

TEST(ProgramTest, ObjectRootExists) {
  Program P;
  EXPECT_NE(P.objectType(), InvalidId);
  EXPECT_EQ(P.type(P.objectType()).Name, "Object");
  EXPECT_TRUE(P.type(P.objectType()).Defined);
}

TEST(ProgramTest, SubtypingClassChain) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  TypeId BT = B.cls("B", "A");
  TypeId C = B.cls("C", "B");
  TypeId D = B.cls("D");
  EXPECT_TRUE(P.isSubtype(C, A));
  EXPECT_TRUE(P.isSubtype(C, BT));
  EXPECT_TRUE(P.isSubtype(BT, A));
  EXPECT_FALSE(P.isSubtype(A, BT));
  EXPECT_FALSE(P.isSubtype(D, A));
  EXPECT_TRUE(P.isSubtype(D, P.objectType()));
  EXPECT_TRUE(P.isSubtype(A, A));
}

TEST(ProgramTest, SubtypingInterfaces) {
  Program P;
  IRBuilder B(P);
  TypeId I = B.iface("I");
  TypeId J = B.iface("J");
  TypeId A = P.defineClass("A", P.objectType(), {I});
  TypeId BT = P.defineClass("B", A, {J});
  EXPECT_TRUE(P.isSubtype(A, I));
  EXPECT_TRUE(P.isSubtype(BT, I)); // Inherited through A.
  EXPECT_TRUE(P.isSubtype(BT, J));
  EXPECT_FALSE(P.isSubtype(A, J));
}

TEST(ProgramTest, SubtypingArraysCovariant) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  TypeId BT = B.cls("B", "A");
  TypeId ArrA = P.arrayOf(A);
  TypeId ArrB = P.arrayOf(BT);
  EXPECT_TRUE(P.isSubtype(ArrB, ArrA));
  EXPECT_FALSE(P.isSubtype(ArrA, ArrB));
  EXPECT_TRUE(P.isSubtype(ArrA, P.objectType()));
  EXPECT_FALSE(P.isSubtype(A, ArrA));
  // Array types are interned.
  EXPECT_EQ(ArrA, P.arrayOf(A));
}

TEST(ProgramTest, FieldResolutionWalksSupers) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  TypeId BT = B.cls("B", "A");
  FieldId F = B.field(A, "f", A);
  EXPECT_EQ(P.resolveField(BT, "f"), F);
  EXPECT_EQ(P.resolveField(A, "f"), F);
  EXPECT_EQ(P.resolveField(A, "g"), InvalidId);
}

TEST(ProgramTest, DispatchFindsOverride) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  TypeId BT = B.cls("B", "A");
  TypeId C = B.cls("C", "B");
  MethodBuilder MA = B.method(A, "m", {}, InvalidId);
  MA.ret();
  MethodBuilder MB = B.method(BT, "m", {}, InvalidId);
  MB.ret();
  uint32_t Sig = P.subsig("m", 0);
  EXPECT_EQ(P.dispatch(A, Sig), MA.method());
  EXPECT_EQ(P.dispatch(BT, Sig), MB.method());
  EXPECT_EQ(P.dispatch(C, Sig), MB.method()); // Inherited override.
  EXPECT_EQ(P.dispatch(C, P.subsig("nope", 0)), InvalidId);
}

TEST(ProgramTest, DispatchSkipsAbstract) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A", "", /*IsAbstract=*/true);
  TypeId BT = B.cls("B", "A");
  B.abstractMethod(A, "m", {}, InvalidId);
  MethodBuilder MB = B.method(BT, "m", {}, InvalidId);
  MB.ret();
  uint32_t Sig = P.subsig("m", 0);
  EXPECT_EQ(P.dispatch(BT, Sig), MB.method());
  EXPECT_EQ(P.dispatch(A, Sig), InvalidId); // Only abstract declaration.
}

TEST(ProgramTest, RetVarsTracked) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  MethodBuilder M = B.method(A, "pick", {A, A}, A);
  VarId R1 = M.param(0);
  VarId R2 = M.param(1);
  M.beginIf();
  M.ret(R1);
  M.elseBranch();
  M.ret(R2);
  M.endIf();
  const MethodInfo &MI = P.method(M.method());
  EXPECT_EQ(MI.RetVars.size(), 2u);
}

TEST(ProgramTest, DefsTracked) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  MethodBuilder M = B.method(A, "m", {A}, InvalidId);
  VarId X = M.local("x", A);
  VarId Pm = M.param(0);
  M.assign(X, Pm);
  M.newObj(X, A);
  EXPECT_EQ(P.var(X).Defs.size(), 2u);
  EXPECT_TRUE(P.var(Pm).Defs.empty());
}

TEST(ProgramTest, CallArgHelperFoldsReceiver) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  MethodBuilder Callee = B.method(A, "f", {A}, InvalidId);
  Callee.ret();
  MethodBuilder M = B.method(A, "m", {A}, InvalidId, /*IsStatic=*/false);
  VarId X = M.local("x", A);
  M.newObj(X, A);
  StmtId Call = M.callVirtual(InvalidId, X, "f", {M.param(0)});
  const Stmt &S = P.stmt(Call);
  EXPECT_EQ(P.numCallArgs(S), 2u);
  EXPECT_EQ(P.callArg(S, 0), X);        // Receiver slot.
  EXPECT_EQ(P.callArg(S, 1), M.param(0));
  EXPECT_EQ(P.callArg(S, 2), InvalidId);
}

TEST(ProgramTest, VerifierAcceptsWellFormed) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  FieldId F = B.field(A, "f", A);
  MethodBuilder M = B.method(A, "m", {}, A);
  VarId X = M.local("x", A);
  M.newObj(X, A);
  M.store(M.thisVar(), F, X);
  M.ret(X);
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(ProgramTest, VerifierRejectsCrossMethodVars) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  MethodBuilder M1 = B.method(A, "m1", {}, InvalidId);
  VarId X1 = M1.local("x", A);
  M1.newObj(X1, A);
  MethodBuilder M2 = B.method(A, "m2", {}, InvalidId);
  VarId X2 = M2.local("y", A);
  M2.assign(X2, X1); // Illegal: X1 belongs to m1.
  EXPECT_FALSE(verifyProgram(P).empty());
}

TEST(ProgramTest, PrinterEmitsParsableShape) {
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  FieldId F = B.field(A, "f", A);
  MethodBuilder M = B.method(A, "m", {A}, A);
  VarId X = M.local("x", A);
  M.newObj(X, A);
  M.store(M.thisVar(), F, M.param(0));
  M.beginIf();
  M.assign(X, M.param(0));
  M.endIf();
  M.ret(X);
  std::string Text = printProgram(P);
  EXPECT_NE(Text.find("class A"), std::string::npos);
  EXPECT_NE(Text.find("field f: A;"), std::string::npos);
  EXPECT_NE(Text.find("x = new A;"), std::string::npos);
  EXPECT_NE(Text.find("this.f ="), std::string::npos);
  EXPECT_NE(Text.find("if ? {"), std::string::npos);
  EXPECT_NE(Text.find("return x;"), std::string::npos);
}
