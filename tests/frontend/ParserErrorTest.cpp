//===- ParserErrorTest.cpp - Frontend diagnostics matrix ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Every production of the grammar with a representative malformed input:
// the parser must reject it with a diagnostic mentioning the right thing,
// and must never crash.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

struct ErrorCase {
  const char *Name;
  const char *Source;
  const char *ExpectInDiag;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

} // namespace

TEST_P(ParserErrorTest, RejectsWithDiagnostic) {
  const ErrorCase &C = GetParam();
  Program P;
  std::vector<std::string> Diags;
  bool Ok = parseProgram(P, {{"bad.jir", C.Source}}, Diags);
  EXPECT_FALSE(Ok) << "accepted malformed input";
  ASSERT_FALSE(Diags.empty());
  bool Found = false;
  for (const std::string &D : Diags)
    Found = Found || D.find(C.ExpectInDiag) != std::string::npos;
  EXPECT_TRUE(Found) << "diagnostics lack '" << C.ExpectInDiag
                     << "'; first: " << Diags[0];
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"MissingClassName", "class { }", "class name"},
        ErrorCase{"MissingBrace", "class A  field f: A; }", "'{'"},
        ErrorCase{"BadMember", "class A { banana x; }",
                  "field or method"},
        ErrorCase{"FieldNoType", "class A { field f; }", "':'"},
        ErrorCase{"MethodNoRet",
                  "class A { method m() { } }", "':'"},
        ErrorCase{"VoidParam",
                  "class A { method m(x: void): void { } }",
                  "'void' is only valid as a return type"},
        ErrorCase{"AbstractWithBody",
                  "class A { abstract method m(): void { } }", "';'"},
        ErrorCase{"UndefinedType",
                  "class A { method m(): void { var x: Nope; x = new "
                  "Nope; } }",
                  "never defined"},
        ErrorCase{"UndeclaredVar",
                  "class A { method m(): void { x = new A; } }",
                  "undeclared variable"},
        ErrorCase{"DuplicateVar",
                  "class A { method m(): void { var x: A; var x: A; } }",
                  "already declared"},
        ErrorCase{"DuplicateParam",
                  "class A { method m(p: A, p: A): void { } }",
                  "duplicate parameter"},
        ErrorCase{"UnknownField",
                  "class A { method m(a: A): void { var x: A; x = a.f; } "
                  "}",
                  "no field 'f'"},
        ErrorCase{"UnknownStaticMethod",
                  "class A { method m(): void { scall A.nope(); } }",
                  "no method"},
        ErrorCase{"ScallOnInstance",
                  "class A { method i(): void { } method m(): void { "
                  "scall A.i(); } }",
                  "not static"},
        ErrorCase{"DcallOnStatic",
                  "class A { static method s(): void { } method m(): "
                  "void { dcall this.A.s(); } }",
                  "is static"},
        ErrorCase{"UnknownStaticField",
                  "class A { method m(): void { var x: Object; x = "
                  "A::nope; } }",
                  "no static field"},
        ErrorCase{"InstanceFieldViaColons",
                  "class A { field f: A; method m(a: A): void { "
                  "A::f = a; } }",
                  "no static field"},
        ErrorCase{"StaticFieldViaDot",
                  "class A { static field g: A; method m(a: A): void { "
                  "a.g = a; } }",
                  "static"},
        ErrorCase{"InterfaceWithField",
                  "interface I { field f: Object; }",
                  "interfaces may only declare methods"},
        ErrorCase{"DuplicateField",
                  "class A { field f: A; field f: A; }",
                  "already declared"},
        ErrorCase{"DuplicateMethod",
                  "class A { method m(): void { } method m(): void { } }",
                  "defined twice"},
        ErrorCase{"TwoMains",
                  "class A { static method main(): void { } }\n"
                  "class B { static method main(): void { } }",
                  "multiple static main"},
        ErrorCase{"BadArrayStore",
                  "class A { method m(a: A[]): void { a[3] = a; } }",
                  "'*'"},
        ErrorCase{"IfWithoutQuestion",
                  "class A { method m(): void { if { } } }", "'?'"},
        ErrorCase{"StrayToken", "class A { } 42 ;", "unexpected"}),
    [](const ::testing::TestParamInfo<ErrorCase> &Info) {
      return Info.param.Name;
    });

TEST(ParserErrorTest, RecoversAndReportsMultiple) {
  Program P;
  std::vector<std::string> Diags;
  parseProgram(P,
               {{"multi.jir", R"(
class A {
  method m(): void {
    x = new A;
    y = new A;
  }
}
)"}},
               Diags);
  EXPECT_GE(Diags.size(), 2u) << "parser should recover and keep going";
}

TEST(ParserErrorTest, EmptySourceIsFine) {
  Program P;
  std::vector<std::string> Diags;
  EXPECT_TRUE(parseProgram(P, {{"empty.jir", ""}}, Diags));
  EXPECT_TRUE(parseProgram(P, {{"ws.jir", "  \n // only a comment\n"}},
                           Diags));
}
