//===- ParserTest.cpp - Unit tests for the .jir frontend ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(LexerTest, TokenizesPunctuationAndIdents) {
  auto Toks = lex("class A { x = y.f; } // comment\n/* block */ ::");
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[0].Text, "class");
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
  // No Error tokens.
  for (const Token &T : Toks)
    EXPECT_NE(T.Kind, TokKind::Error) << T.Text;
}

TEST(LexerTest, TracksLineNumbers) {
  auto Toks = lex("a\nb\n  c");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[2].Line, 3u);
  EXPECT_EQ(Toks[2].Col, 3u);
}

TEST(LexerTest, ReportsBadCharacters) {
  auto Toks = lex("a # b");
  bool SawError = false;
  for (const Token &T : Toks)
    SawError = SawError || T.Kind == TokKind::Error;
  EXPECT_TRUE(SawError);
}

TEST(ParserTest, ParsesFigure1) {
  auto P = parseOrDie(figure1Source());
  EXPECT_NE(P->typeByName("Carton"), InvalidId);
  MethodId Main = findMethod(*P, "Main", "main");
  EXPECT_EQ(P->entry(), Main);
  MethodId Get = findMethod(*P, "Carton", "getItem");
  EXPECT_EQ(P->method(Get).RetVars.size(), 1u);
  // 4 allocation sites in main.
  EXPECT_EQ(P->numObjs(), 4u);
}

TEST(ParserTest, ResolvesForwardReferences) {
  // B is used (field type, new) before it is declared.
  auto P = parseOrDie(R"(
class A {
  field b: B;
  method m(): B {
    var x: B;
    x = new B;
    this.b = x;
    return x;
  }
}
class B { }
)");
  EXPECT_TRUE(P->type(P->typeByName("B")).Defined);
}

TEST(ParserTest, ParsesAllStatementKinds) {
  auto P = parseOrDie(R"(
class Helper {
  static field cache: Object;
  static method id(o: Object): Object {
    return o;
  }
  method virt(o: Object): Object {
    return o;
  }
}
class Main {
  static method main(): void {
    var a: Object;
    var b: Object;
    var h: Helper;
    var arr: Object[];
    a = new Object;
    b = a;
    b = (Object) a;
    h = new Helper;
    arr = new Object[];
    arr[*] = a;
    b = arr[*];
    Helper::cache = a;
    b = Helper::cache;
    b = scall Helper.id(a);
    b = call h.virt(a);
    b = dcall h.Helper.virt(a);
    if ? {
      b = a;
    } else {
      a = b;
    }
  }
}
)");
  MethodId Main = findMethod(*P, "Main", "main");
  // 12 simple statements + the If statement + 2 nested statements.
  EXPECT_EQ(P->method(Main).AllStmts.size(), 15u);
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  auto P1 = parseOrDie(figure1Source());
  std::string Printed = printProgram(*P1);
  auto P2 = parseOrDie(Printed);
  EXPECT_EQ(P1->numTypes(), P2->numTypes());
  EXPECT_EQ(P1->numMethods(), P2->numMethods());
  EXPECT_EQ(P1->numStmts(), P2->numStmts());
  EXPECT_EQ(P1->numObjs(), P2->numObjs());
  // Round-trip is a fixpoint.
  EXPECT_EQ(Printed, printProgram(*P2));
}

TEST(ParserTest, DiagnosesUndeclaredVariable) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok = parseProgram(
      P, {{"t.jir", "class A { method m(): void { x = new A; } }"}}, Diags);
  EXPECT_FALSE(Ok);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("undeclared variable 'x'"), std::string::npos);
}

TEST(ParserTest, DiagnosesUnknownField) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok = parseProgram(P,
                         {{"t.jir", R"(
class A {
  method m(a: A): void {
    a.nope = a;
  }
}
)"}},
                         Diags);
  EXPECT_FALSE(Ok);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("no field 'nope'"), std::string::npos);
}

TEST(ParserTest, DiagnosesUnknownStaticCallee) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok = parseProgram(P,
                         {{"t.jir", R"(
class A {
  method m(): void {
    scall A.nothing();
  }
}
)"}},
                         Diags);
  EXPECT_FALSE(Ok);
  ASSERT_FALSE(Diags.empty());
}

TEST(ParserTest, DiagnosesDuplicateClass) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok =
      parseProgram(P, {{"t.jir", "class A { }\nclass A { }"}}, Diags);
  EXPECT_FALSE(Ok);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].find("defined twice"), std::string::npos);
}

TEST(ParserTest, ParsesInterfacesAndAbstract) {
  auto P = parseOrDie(R"(
interface Shape {
  method area(): Object;
}
abstract class Base implements Shape {
  abstract method area(): Object;
}
class Circle extends Base {
  method area(): Object {
    var r: Object;
    r = new Object;
    return r;
  }
}
class Main {
  static method main(): void {
    var c: Circle;
    var s: Object;
    c = new Circle;
    s = call c.area();
  }
}
)");
  TypeId Shape = P->typeByName("Shape");
  TypeId Circle = P->typeByName("Circle");
  EXPECT_EQ(P->type(Shape).Kind, TypeKind::Interface);
  EXPECT_TRUE(P->isSubtype(Circle, Shape));
  MethodId Area = P->dispatch(Circle, P->subsig("area", 0));
  EXPECT_NE(Area, InvalidId);
  EXPECT_FALSE(P->method(Area).IsAbstract);
}

TEST(ParserTest, MultipleSourcesShareOneProgram) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok = parseProgram(P,
                         {{"lib.jir", "class Lib { method go(): void { } }"},
                          {"app.jir", R"(
class App {
  static method main(): void {
    var l: Lib;
    l = new Lib;
    call l.go();
  }
}
)"}},
                         Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_TRUE(Ok);
  EXPECT_NE(P.entry(), InvalidId);
}
