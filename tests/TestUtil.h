//===- TestUtil.h - Shared helpers for the test suite -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef CSC_TESTS_TESTUTIL_H
#define CSC_TESTS_TESTUTIL_H

#include "frontend/Parser.h"
#include "ir/Program.h"
#include "ir/Verifier.h"
#include "stdlib/Stdlib.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace csc::test {

/// Parses `.jir` source into a fresh program; fails the test on errors.
inline std::unique_ptr<Program> parseOrDie(const std::string &Source) {
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  bool Ok = parseProgram(*P, {{"test.jir", Source}}, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_TRUE(Ok);
  std::vector<std::string> Errors = verifyProgram(*P);
  for (const std::string &E : Errors)
    ADD_FAILURE() << "verifier: " << E;
  EXPECT_TRUE(Errors.empty());
  return P;
}

/// Parses user source together with the modelled standard library.
inline std::unique_ptr<Program> parseWithStdlib(const std::string &Source) {
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  bool Ok = parseProgram(
      *P, {{"<stdlib>", stdlibSource()}, {"test.jir", Source}}, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_TRUE(Ok);
  return P;
}

/// Finds a method "Class.name" (any arity); fails if absent.
inline MethodId findMethod(const Program &P, const std::string &Cls,
                           const std::string &Name) {
  TypeId T = P.typeByName(Cls);
  EXPECT_NE(T, InvalidId) << "no class " << Cls;
  if (T == InvalidId)
    return InvalidId;
  for (MethodId M : P.type(T).Methods)
    if (P.method(M).Name == Name)
      return M;
  ADD_FAILURE() << "no method " << Cls << "." << Name;
  return InvalidId;
}

/// Finds a variable by name within a method; fails if absent.
inline VarId findVar(const Program &P, MethodId M, const std::string &Name) {
  for (VarId V : P.method(M).Vars)
    if (P.var(V).Name == Name)
      return V;
  ADD_FAILURE() << "no variable " << Name << " in " << P.methodString(M);
  return InvalidId;
}

/// The allocation site assigned to \p V by a `new` statement in its method.
inline ObjId allocOf(const Program &P, VarId V) {
  for (StmtId S : P.var(V).Defs) {
    const Stmt &St = P.stmt(S);
    if (St.isAllocation())
      return St.Obj;
  }
  ADD_FAILURE() << "variable " << P.var(V).Name << " has no allocation";
  return InvalidId;
}

/// The paper's Figure 1 motivating example, translated to `.jir`.
inline const char *figure1Source() {
  return R"(
class Item { }
class Carton {
  field item: Item;
  method setItem(item: Item): void {
    this.item = item;
  }
  method getItem(): Item {
    var r: Item;
    r = this.item;
    return r;
  }
}
class Main {
  static method main(): void {
    var c1: Carton;
    var item1: Item;
    var result1: Item;
    var c2: Carton;
    var item2: Item;
    var result2: Item;
    c1 = new Carton;
    item1 = new Item;
    call c1.setItem(item1);
    result1 = call c1.getItem();
    c2 = new Carton;
    item2 = new Item;
    call c2.setItem(item2);
    result2 = call c2.getItem();
  }
}
)";
}

} // namespace csc::test

#endif // CSC_TESTS_TESTUTIL_H
