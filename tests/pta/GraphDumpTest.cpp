//===- GraphDumpTest.cpp - Graphviz export tests --------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/GraphDump.h"

#include "csc/CutShortcutPlugin.h"
#include "stdlib/ContainerSpec.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(GraphDumpTest, PFGDotContainsNodesAndEdges) {
  auto P = parseOrDie(figure1Source());
  Solver S(*P, {});
  S.solve();
  std::string Dot = dumpPFGDot(S);
  EXPECT_NE(Dot.find("digraph PFG"), std::string::npos);
  EXPECT_NE(Dot.find("main.item1"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_EQ(Dot.find("shortcut"), std::string::npos); // No plugin.
}

TEST(GraphDumpTest, ShortcutEdgesHighlighted) {
  auto P = parseOrDie(figure1Source());
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  S.solve();
  std::string Dot = dumpPFGDot(S);
  EXPECT_NE(Dot.find("shortcut"), std::string::npos);
  EXPECT_NE(Dot.find("color=blue"), std::string::npos);
}

TEST(GraphDumpTest, CastEdgesDashed) {
  auto P = parseOrDie(R"(
class A { }
class Main {
  static method main(): void {
    var o: Object;
    var a: A;
    o = new A;
    a = (A) o;
  }
}
)");
  Solver S(*P, {});
  S.solve();
  std::string Dot = dumpPFGDot(S);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("(A)"), std::string::npos);
}

TEST(GraphDumpTest, TruncationGuard) {
  auto P = parseOrDie(figure1Source());
  Solver S(*P, {});
  S.solve();
  std::string Dot = dumpPFGDot(S, /*MaxNodes=*/1);
  EXPECT_NE(Dot.find("truncated"), std::string::npos);
}

TEST(GraphDumpTest, CallGraphDot) {
  auto P = parseOrDie(figure1Source());
  Solver S(*P, {});
  PTAResult R = S.solve();
  std::string Dot = dumpCallGraphDot(*P, R);
  EXPECT_NE(Dot.find("digraph CG"), std::string::npos);
  EXPECT_NE(Dot.find("Carton.setItem/1"), std::string::npos);
  EXPECT_NE(Dot.find("Main.main/0"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}
