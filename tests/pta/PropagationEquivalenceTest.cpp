//===- PropagationEquivalenceTest.cpp - delta vs full propagation ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The solver's set-at-a-time delta propagation and the Doop-style full
// re-propagation fallback must compute the same fixpoint. This suite pins
// that equivalence on the real example programs shipped in examples/ (the
// same files the cscpta acceptance pipeline uses), for both the plain CI
// analysis and the full Cut-Shortcut configuration.
//
// The second half of the suite pins the online cycle-elimination contract
// (SolverOptions::CycleElimination, spec parameter `scc`): for ci, csc,
// and 2obj — on the examples and on the cycle-bearing scale-xs/scale-s
// workload tiers — scc=on and scc=off must produce identical PTAResult
// projections, identical precision metrics, and byte-identical
// (timing-free) cscpta JSON run reports, including the serialized solver
// stats. A final test pins determinism when the work budget exhausts
// mid-run (mid-collapse) with scc=on.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "client/Report.h"
#include "csc/CutShortcutPlugin.h"
#include "frontend/Parser.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace csc;

namespace {

std::unique_ptr<Program> loadExample(const std::string &File) {
  std::ifstream In(std::string(CSC_EXAMPLES_DIR) + "/" + File);
  if (!In)
    return nullptr;
  std::ostringstream Text;
  Text << In.rdbuf();
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  if (!parseProgram(*P,
                    {{"<stdlib>", stdlibSource()}, {File, Text.str()}},
                    Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << File << ": " << D;
    return nullptr;
  }
  return P;
}

PTAResult solveWith(const Program &P, bool DeltaPropagation, bool UseCsc) {
  SolverOptions Opts;
  Opts.DeltaPropagation = DeltaPropagation;
  Solver S(P, Opts);
  std::unique_ptr<CutShortcutPlugin> Plugin;
  ContainerSpec Spec;
  if (UseCsc) {
    Spec = ContainerSpec::forProgram(P);
    Plugin = std::make_unique<CutShortcutPlugin>(P, Spec);
    S.addPlugin(Plugin.get());
  }
  return S.solve();
}

/// Asserts every client-visible projection of two results is identical.
void expectSameResults(const Program &P, const PTAResult &A,
                       const PTAResult &B, const std::string &Label) {
  ASSERT_FALSE(A.Exhausted) << Label;
  ASSERT_FALSE(B.Exhausted) << Label;
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(A.pt(V).toVector(), B.pt(V).toVector())
        << Label << ": var " << P.var(V).Name;
  for (ObjId O = 0; O < P.numObjs(); ++O)
    EXPECT_EQ(A.ptArray(O).toVector(), B.ptArray(O).toVector())
        << Label << ": array of obj " << O;
  EXPECT_EQ(A.numCallEdgesCI(), B.numCallEdgesCI()) << Label;
  EXPECT_EQ(A.numReachableCI(), B.numReachableCI()) << Label;
  // Call edges per site, order-insensitively.
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    std::vector<MethodId> CA = A.calleesOf(CS);
    std::vector<MethodId> CB = B.calleesOf(CS);
    std::sort(CA.begin(), CA.end());
    std::sort(CB.begin(), CB.end());
    EXPECT_EQ(CA, CB) << Label << ": call site " << CS;
  }
}

class PropagationEquivalenceTest
    : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(PropagationEquivalenceTest, CIFixpointsMatch) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  PTAResult Delta = solveWith(*P, /*DeltaPropagation=*/true, false);
  PTAResult Full = solveWith(*P, /*DeltaPropagation=*/false, false);
  expectSameResults(*P, Delta, Full, std::string("ci/") + GetParam());
}

TEST_P(PropagationEquivalenceTest, CscFixpointsMatch) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  PTAResult Delta = solveWith(*P, /*DeltaPropagation=*/true, true);
  PTAResult Full = solveWith(*P, /*DeltaPropagation=*/false, true);
  expectSameResults(*P, Delta, Full, std::string("csc/") + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Examples, PropagationEquivalenceTest,
                         ::testing::Values("figure1.jir", "containers.jir"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Cycle elimination (scc=on vs scc=off) equivalence
//===----------------------------------------------------------------------===//

namespace {

/// The timing-free JSON report of one completed run (what the batch
/// aggregate and the byte-identity contract are built on).
std::string reportOf(const AnalysisRun &Run) {
  JsonWriter J;
  appendRunJson(J, Run, /*IncludeTimings=*/false);
  return J.take();
}

/// Runs every (spec, scc) combination over one session and asserts the
/// scc=on and scc=off reports are byte-identical and the projections
/// agree.
void expectSccEquivalence(AnalysisSession &S, const std::string &Label) {
  const Program &P = S.program();
  for (const char *Spec : {"ci", "csc", "2obj"}) {
    AnalysisRun On = S.run(std::string(Spec) + ";scc=1");
    AnalysisRun Off = S.run(std::string(Spec) + ";scc=0");
    ASSERT_EQ(On.Status, RunStatus::Completed) << Label << "/" << Spec;
    ASSERT_EQ(Off.Status, RunStatus::Completed) << Label << "/" << Spec;
    // Name differs by construction; everything else must not. Erase the
    // spec spelling before comparing bytes.
    On.Name = Off.Name = Spec;
    EXPECT_EQ(reportOf(On), reportOf(Off)) << Label << "/" << Spec;
    expectSameResults(P, On.Result, Off.Result,
                      Label + "/" + Spec + "/scc");
    EXPECT_EQ(On.Metrics.FailCasts, Off.Metrics.FailCasts) << Label;
    EXPECT_EQ(On.Metrics.ReachMethods, Off.Metrics.ReachMethods) << Label;
    EXPECT_EQ(On.Metrics.PolyCalls, Off.Metrics.PolyCalls) << Label;
    EXPECT_EQ(On.Metrics.CallEdges, Off.Metrics.CallEdges) << Label;
    // The logical work counter is a fixpoint invariant (sum of all
    // per-pointer set sizes), so it must match exactly.
    EXPECT_EQ(On.Result.Stats.PtsInsertions, Off.Result.Stats.PtsInsertions)
        << Label << "/" << Spec;
    EXPECT_EQ(Off.Result.Stats.Scc.SccsFound, 0u) << Label << "/" << Spec;
  }
}

std::unique_ptr<AnalysisSession> tierSession(const char *Name) {
  for (const WorkloadConfig &C : scalingSuite()) {
    if (C.Name != Name)
      continue;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    std::unique_ptr<AnalysisSession> S;
    if (P)
      S = AnalysisSession::adopt(std::move(P), {}, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << Name << ": " << D;
    return S;
  }
  ADD_FAILURE() << "no such tier: " << Name;
  return nullptr;
}

} // namespace

TEST_P(PropagationEquivalenceTest, SccOnOffIdenticalOnExamples) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  AnalysisSession S(*P);
  expectSccEquivalence(S, GetParam());
}

TEST(SccEquivalenceTest, ScaleXsTierIdentical) {
  auto S = tierSession("scale-xs");
  ASSERT_NE(S, nullptr);
  expectSccEquivalence(*S, "scale-xs");
}

TEST(SccEquivalenceTest, ScaleSTierIdentical) {
  auto S = tierSession("scale-s");
  ASSERT_NE(S, nullptr);
  expectSccEquivalence(*S, "scale-s");
}

TEST(SccEquivalenceTest, CollapsesActuallyHappen) {
  // Guard against the suite silently passing because nothing collapsed:
  // the cycle-bearing scale-s tier must produce at least one merged SCC
  // under ci with cycle elimination on.
  auto S = tierSession("scale-s");
  ASSERT_NE(S, nullptr);
  AnalysisRun On = S->run("ci");
  ASSERT_TRUE(On.completed());
  EXPECT_GT(On.Result.Stats.Scc.SccsFound, 0u);
  EXPECT_GT(On.Result.Stats.Scc.MembersCollapsed, 0u);
}

TEST(SccEquivalenceTest, BudgetExhaustionMidCollapseIsDeterministic) {
  // Exhaust the work budget mid-run (small enough to land between / during
  // collapses) and require two identical runs to agree bit-for-bit on
  // status, work counter, and every projection — collapse scheduling must
  // be deterministic even when interrupted.
  auto S = tierSession("scale-s");
  ASSERT_NE(S, nullptr);
  const Program &P = S->program();
  // scale-s/ci completes around ~1.7k insertions with several online
  // collapses along the way: the small budgets land mid-run, the large
  // one completes (covering both interrupted and finished runs).
  bool SawExhaustion = false;
  for (uint64_t Budget : {300ULL, 900ULL, 60000ULL}) {
    S->setWorkBudget(Budget);
    AnalysisRun A = S->run("ci");
    AnalysisRun B = S->run("ci");
    ASSERT_EQ(A.Status, B.Status) << "budget " << Budget;
    SawExhaustion = SawExhaustion || A.exhausted();
    EXPECT_EQ(A.Result.Stats.PtsInsertions, B.Result.Stats.PtsInsertions)
        << "budget " << Budget;
    EXPECT_EQ(A.Result.Stats.Scc.SccsFound, B.Result.Stats.Scc.SccsFound)
        << "budget " << Budget;
    for (VarId V = 0; V < P.numVars(); ++V)
      ASSERT_EQ(A.Result.pt(V).toVector(), B.Result.pt(V).toVector())
          << "budget " << Budget << " var " << V;
  }
  EXPECT_TRUE(SawExhaustion) << "budgets too large: nothing interrupted";
  S->setWorkBudget(~0ULL);
}
