//===- PropagationEquivalenceTest.cpp - delta vs full propagation ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The solver's set-at-a-time delta propagation and the Doop-style full
// re-propagation fallback must compute the same fixpoint. This suite pins
// that equivalence on the real example programs shipped in examples/ (the
// same files the cscpta acceptance pipeline uses), for both the plain CI
// analysis and the full Cut-Shortcut configuration.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "frontend/Parser.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace csc;

namespace {

std::unique_ptr<Program> loadExample(const std::string &File) {
  std::ifstream In(std::string(CSC_EXAMPLES_DIR) + "/" + File);
  if (!In)
    return nullptr;
  std::ostringstream Text;
  Text << In.rdbuf();
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  if (!parseProgram(*P,
                    {{"<stdlib>", stdlibSource()}, {File, Text.str()}},
                    Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << File << ": " << D;
    return nullptr;
  }
  return P;
}

PTAResult solveWith(const Program &P, bool DeltaPropagation, bool UseCsc) {
  SolverOptions Opts;
  Opts.DeltaPropagation = DeltaPropagation;
  Solver S(P, Opts);
  std::unique_ptr<CutShortcutPlugin> Plugin;
  ContainerSpec Spec;
  if (UseCsc) {
    Spec = ContainerSpec::forProgram(P);
    Plugin = std::make_unique<CutShortcutPlugin>(P, Spec);
    S.addPlugin(Plugin.get());
  }
  return S.solve();
}

/// Asserts every client-visible projection of two results is identical.
void expectSameResults(const Program &P, const PTAResult &A,
                       const PTAResult &B, const std::string &Label) {
  ASSERT_FALSE(A.Exhausted) << Label;
  ASSERT_FALSE(B.Exhausted) << Label;
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(A.pt(V).toVector(), B.pt(V).toVector())
        << Label << ": var " << P.var(V).Name;
  for (ObjId O = 0; O < P.numObjs(); ++O)
    EXPECT_EQ(A.ptArray(O).toVector(), B.ptArray(O).toVector())
        << Label << ": array of obj " << O;
  EXPECT_EQ(A.numCallEdgesCI(), B.numCallEdgesCI()) << Label;
  EXPECT_EQ(A.numReachableCI(), B.numReachableCI()) << Label;
  // Call edges per site, order-insensitively.
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    std::vector<MethodId> CA = A.calleesOf(CS);
    std::vector<MethodId> CB = B.calleesOf(CS);
    std::sort(CA.begin(), CA.end());
    std::sort(CB.begin(), CB.end());
    EXPECT_EQ(CA, CB) << Label << ": call site " << CS;
  }
}

class PropagationEquivalenceTest
    : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(PropagationEquivalenceTest, CIFixpointsMatch) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  PTAResult Delta = solveWith(*P, /*DeltaPropagation=*/true, false);
  PTAResult Full = solveWith(*P, /*DeltaPropagation=*/false, false);
  expectSameResults(*P, Delta, Full, std::string("ci/") + GetParam());
}

TEST_P(PropagationEquivalenceTest, CscFixpointsMatch) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  PTAResult Delta = solveWith(*P, /*DeltaPropagation=*/true, true);
  PTAResult Full = solveWith(*P, /*DeltaPropagation=*/false, true);
  expectSameResults(*P, Delta, Full, std::string("csc/") + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Examples, PropagationEquivalenceTest,
                         ::testing::Values("figure1.jir", "containers.jir"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });
