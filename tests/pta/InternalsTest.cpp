//===- InternalsTest.cpp - Solver data-structure unit tests ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/CSManager.h"
#include "pta/CallGraph.h"
#include "pta/PointerFlowGraph.h"
#include "support/Interner.h"

#include <gtest/gtest.h>

using namespace csc;

TEST(CSManagerTest, PointerInterningIsStable) {
  CSManager M;
  PtrId V1 = M.getVarPtr(3, 0);
  PtrId V2 = M.getVarPtr(3, 1);
  PtrId V3 = M.getVarPtr(4, 0);
  EXPECT_NE(V1, V2); // Same var, different context.
  EXPECT_NE(V1, V3);
  EXPECT_EQ(V1, M.getVarPtr(3, 0)); // Idempotent.
  EXPECT_EQ(M.ptr(V1).Kind, PtrKind::Var);
  EXPECT_EQ(M.ptr(V1).A, 3u);
  EXPECT_EQ(M.ptr(V1).B, 0u);
}

TEST(CSManagerTest, AllPointerKindsShareOneIdSpace) {
  CSManager M;
  CSObjId O = M.getCSObj(7, 0);
  PtrId V = M.getVarPtr(1, 0);
  PtrId F = M.getFieldPtr(O, 2);
  PtrId A = M.getArrayPtr(O);
  PtrId S = M.getStaticPtr(5);
  EXPECT_EQ(M.numPtrs(), 4u);
  EXPECT_EQ(M.ptr(V).Kind, PtrKind::Var);
  EXPECT_EQ(M.ptr(F).Kind, PtrKind::Field);
  EXPECT_EQ(M.ptr(F).A, O);
  EXPECT_EQ(M.ptr(F).B, 2u);
  EXPECT_EQ(M.ptr(A).Kind, PtrKind::Array);
  EXPECT_EQ(M.ptr(S).Kind, PtrKind::Static);
  EXPECT_EQ(M.ptr(S).A, 5u);
}

TEST(CSManagerTest, CSObjectsQualifiedByHeapContext) {
  CSManager M;
  CSObjId A = M.getCSObj(9, 0);
  CSObjId B = M.getCSObj(9, 3);
  EXPECT_NE(A, B);
  EXPECT_EQ(A, M.getCSObj(9, 0));
  EXPECT_EQ(M.csObj(B).O, 9u);
  EXPECT_EQ(M.csObj(B).HeapCtx, 3u);
}

TEST(PFGTest, EdgeDeduplication) {
  PointerFlowGraph G;
  EXPECT_TRUE(G.addEdge(1, 2, InvalidId));
  EXPECT_FALSE(G.addEdge(1, 2, InvalidId));
  EXPECT_EQ(G.numEdges(), 1u);
  // A differently-filtered edge between the same nodes is distinct
  // (e.g. two casts between the same variables).
  EXPECT_TRUE(G.addEdge(1, 2, 7));
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_EQ(G.succ(1).size(), 2u);
  EXPECT_EQ(G.pred(2).size(), 2u);
}

TEST(PFGTest, OutOfRangeQueriesAreEmpty) {
  PointerFlowGraph G;
  G.addEdge(0, 1, InvalidId);
  EXPECT_TRUE(G.succ(99).empty());
  EXPECT_TRUE(G.pred(99).empty());
}

TEST(CallGraphTest, EdgeAndCIProjection) {
  CallGraph CG;
  CSCallSiteId CS1 = CG.getCSCallSite(5, 0);
  CSCallSiteId CS1b = CG.getCSCallSite(5, 1); // Same site, another ctx.
  CSMethodId M1 = CG.getCSMethod(10, 0);
  CSMethodId M1b = CG.getCSMethod(10, 2);
  EXPECT_TRUE(CG.addEdge(CS1, M1));
  EXPECT_FALSE(CG.addEdge(CS1, M1)); // CS-level dedup.
  EXPECT_TRUE(CG.addEdge(CS1b, M1b));
  EXPECT_EQ(CG.numCSEdges(), 2u);
  // Both edges project to the single CI edge (5 -> 10).
  ASSERT_EQ(CG.ciEdges().size(), 1u);
  EXPECT_EQ(CG.ciEdges()[0].first, 5u);
  EXPECT_EQ(CG.ciEdges()[0].second, 10u);
}

TEST(CallGraphTest, ReachabilityProjection) {
  CallGraph CG;
  CSMethodId A0 = CG.getCSMethod(1, 0);
  CSMethodId A1 = CG.getCSMethod(1, 4);
  EXPECT_TRUE(CG.addReachable(A0));
  EXPECT_FALSE(CG.addReachable(A0));
  EXPECT_TRUE(CG.addReachable(A1)); // New CS method...
  EXPECT_EQ(CG.reachableMethods().size(), 2u);
  EXPECT_EQ(CG.reachableCI().size(), 1u); // ...same CI method.
  EXPECT_TRUE(CG.isReachableCI(1));
  EXPECT_FALSE(CG.isReachableCI(2));
}

TEST(CallGraphTest, CallersAndCallees) {
  CallGraph CG;
  CSCallSiteId CS = CG.getCSCallSite(0, 0);
  CSMethodId M1 = CG.getCSMethod(1, 0);
  CSMethodId M2 = CG.getCSMethod(2, 0);
  CG.addEdge(CS, M1);
  CG.addEdge(CS, M2);
  EXPECT_EQ(CG.calleesOf(CS).size(), 2u);
  ASSERT_EQ(CG.callersOf(M1).size(), 1u);
  EXPECT_EQ(CG.callersOf(M1)[0], CS);
}

TEST(InternerTest, DenseIdsInInsertionOrder) {
  Interner<std::string> I;
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.intern("b"), 1u);
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.size(), 2u);
  EXPECT_EQ(I.get(1), "b");
  EXPECT_EQ(I.lookup("c"), InvalidId);
  EXPECT_EQ(I.lookup("b"), 1u);
}
