//===- KSensitivityTest.cpp - k-limiting sweeps ---------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Parameterized sweeps over the context depth k: deeper contexts must
// never be less precise (pointwise subset) and must stay sound, for all
// three context kinds. Exercises the k-limiting machinery at depths the
// paper's evaluation doesn't touch (k = 1..3).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "pta/ContextSelector.h"
#include "pta/Solver.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <memory>

using namespace csc;

namespace {

enum class CtxKind { Obj, Type, CallSite };

struct KCase {
  CtxKind Kind;
  unsigned K;
};

std::unique_ptr<ContextSelector> makeSelector(CtxKind Kind, unsigned K) {
  switch (Kind) {
  case CtxKind::Obj:
    return std::make_unique<KObjSelector>(K);
  case CtxKind::Type:
    return std::make_unique<KTypeSelector>(K);
  case CtxKind::CallSite:
    return std::make_unique<KCallSiteSelector>(K);
  }
  return nullptr;
}

const char *kindName(CtxKind Kind) {
  switch (Kind) {
  case CtxKind::Obj:
    return "obj";
  case CtxKind::Type:
    return "type";
  case CtxKind::CallSite:
    return "cs";
  }
  return "?";
}

std::unique_ptr<Program> sweepProgram() {
  WorkloadConfig C;
  C.Name = "ksweep";
  C.Seed = 77;
  C.NumScenarios = 3;
  C.ActionsPerScenario = 7;
  C.NumEntityClasses = 6;
  C.WrapperDepth = 2;
  C.NumFamilies = 3;
  C.FamilySize = 3;
  C.NumSelectors = 2;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  EXPECT_TRUE(Diags.empty());
  return P;
}

class KSensitivityTest : public ::testing::TestWithParam<KCase> {};

} // namespace

TEST_P(KSensitivityTest, DeeperContextsRefine) {
  const KCase &Case = GetParam();
  auto P = sweepProgram();
  ASSERT_NE(P, nullptr);

  auto SelK = makeSelector(Case.Kind, Case.K);
  auto SelK1 = makeSelector(Case.Kind, Case.K + 1);
  SolverOptions OK1, OK2;
  OK1.Selector = SelK.get();
  OK2.Selector = SelK1.get();
  Solver S1(*P, OK1), S2(*P, OK2);
  PTAResult R1 = S1.solve();
  PTAResult R2 = S2.solve();

  // k+1 results are a pointwise subset of k results.
  uint64_t Total1 = 0, Total2 = 0;
  for (VarId V = 0; V < P->numVars(); ++V) {
    Total1 += R1.pt(V).size();
    Total2 += R2.pt(V).size();
    R2.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(R1.pt(V).contains(O))
          << "k+1 invented object for " << P->var(V).Name;
    });
  }
  EXPECT_LE(Total2, Total1);
  EXPECT_LE(R2.numCallEdgesCI(), R1.numCallEdgesCI());
}

TEST_P(KSensitivityTest, StaysSound) {
  const KCase &Case = GetParam();
  auto P = sweepProgram();
  ASSERT_NE(P, nullptr);
  DynamicFacts Dyn = interpretManySeeds(*P, 4);

  auto Sel = makeSelector(Case.Kind, Case.K);
  SolverOptions Opts;
  Opts.Selector = Sel.get();
  Solver S(*P, Opts);
  PTAResult R = S.solve();

  for (MethodId M : Dyn.ReachedMethods)
    EXPECT_TRUE(R.isReachable(M)) << P->methodString(M);
  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O : Objs)
      EXPECT_TRUE(R.pt(V).contains(O)) << P->var(V).Name;
}

INSTANTIATE_TEST_SUITE_P(
    Depths, KSensitivityTest,
    ::testing::Values(KCase{CtxKind::Obj, 1}, KCase{CtxKind::Obj, 2},
                      KCase{CtxKind::Type, 1}, KCase{CtxKind::Type, 2},
                      KCase{CtxKind::CallSite, 1},
                      KCase{CtxKind::CallSite, 2}),
    [](const ::testing::TestParamInfo<KCase> &Info) {
      return std::string(kindName(Info.param.Kind)) +
             std::to_string(Info.param.K) + "_vs_" +
             std::to_string(Info.param.K + 1);
    });

TEST(AliasQueryTest, MayAliasReflectsPointsTo) {
  Program P;
  std::vector<std::string> Diags;
  ASSERT_TRUE(parseProgram(P, {{"t.jir", R"(
class A { }
class Main {
  static method main(): void {
    var a: A;
    var b: A;
    var c: A;
    a = new A;
    b = a;
    c = new A;
  }
}
)"}},
                           Diags));
  Solver S(P, {});
  PTAResult R = S.solve();
  VarId A = InvalidId, B = InvalidId, C = InvalidId;
  for (VarId V = 0; V < P.numVars(); ++V) {
    if (P.var(V).Name == "a")
      A = V;
    if (P.var(V).Name == "b")
      B = V;
    if (P.var(V).Name == "c")
      C = V;
  }
  EXPECT_TRUE(R.mayAlias(A, B));
  EXPECT_FALSE(R.mayAlias(A, C));
  EXPECT_FALSE(R.mayAlias(B, C));
  EXPECT_TRUE(R.mayAlias(A, A));
}
