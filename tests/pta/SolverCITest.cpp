//===- SolverCITest.cpp - Context-insensitive solver tests ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

PTAResult solveCI(const Program &P) {
  Solver S(P, {});
  return S.solve();
}

} // namespace

TEST(SolverCITest, Figure1MergesFlows) {
  auto P = parseOrDie(figure1Source());
  PTAResult R = solveCI(*P);

  MethodId Main = findMethod(*P, "Main", "main");
  VarId Result1 = findVar(*P, Main, "result1");
  VarId Result2 = findVar(*P, Main, "result2");
  VarId Item1 = findVar(*P, Main, "item1");
  VarId Item2 = findVar(*P, Main, "item2");
  ObjId O16 = allocOf(*P, Item1);
  ObjId O21 = allocOf(*P, Item2);

  // CI cannot distinguish the two Cartons: both results point to both items
  // (exactly the imprecision of Fig. 1(a)).
  EXPECT_TRUE(R.pt(Result1).contains(O16));
  EXPECT_TRUE(R.pt(Result1).contains(O21));
  EXPECT_TRUE(R.pt(Result2).contains(O16));
  EXPECT_TRUE(R.pt(Result2).contains(O21));
  EXPECT_EQ(R.pt(Result1).size(), 2u);

  // Field points-to of both cartons is merged too.
  VarId C1 = findVar(*P, Main, "c1");
  ObjId O15 = allocOf(*P, C1);
  FieldId ItemF = P->resolveField(P->typeByName("Carton"), "item");
  EXPECT_EQ(R.ptField(O15, ItemF).size(), 2u);
}

TEST(SolverCITest, Figure1Reachability) {
  auto P = parseOrDie(figure1Source());
  PTAResult R = solveCI(*P);
  EXPECT_TRUE(R.isReachable(findMethod(*P, "Main", "main")));
  EXPECT_TRUE(R.isReachable(findMethod(*P, "Carton", "setItem")));
  EXPECT_TRUE(R.isReachable(findMethod(*P, "Carton", "getItem")));
  EXPECT_EQ(R.numReachableCI(), 3u);
  // Four CI call edges: two to setItem, two to getItem.
  EXPECT_EQ(R.numCallEdgesCI(), 4u);
}

TEST(SolverCITest, VirtualDispatchPolymorphic) {
  auto P = parseOrDie(R"(
class A {
  method id(o: Object): Object { return o; }
}
class B extends A {
  method id(o: Object): Object {
    var x: Object;
    x = new Object;
    return x;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var o: Object;
    var r: Object;
    if ? {
      a = new A;
    } else {
      a = new B;
    }
    o = new Object;
    r = call a.id(o);
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  // r sees o (via A.id) and B.id's fresh object.
  EXPECT_EQ(R.pt(Rv).size(), 2u);
  // The call site resolves to both targets.
  MethodId AId = findMethod(*P, "A", "id");
  MethodId BId = findMethod(*P, "B", "id");
  bool SawA = false, SawB = false;
  for (CallSiteId CS = 0; CS < P->numCallSites(); ++CS)
    for (MethodId M : R.calleesOf(CS)) {
      SawA = SawA || M == AId;
      SawB = SawB || M == BId;
    }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
}

TEST(SolverCITest, UnreachableCodeStaysUnreachable) {
  auto P = parseOrDie(R"(
class Dead {
  method never(): void { }
}
class Main {
  static method main(): void {
    var o: Object;
    o = new Object;
  }
}
)");
  PTAResult R = solveCI(*P);
  EXPECT_FALSE(R.isReachable(findMethod(*P, "Dead", "never")));
  EXPECT_EQ(R.numReachableCI(), 1u);
}

TEST(SolverCITest, CastFiltersIncompatibleObjects) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var o: Object;
    var a: A;
    if ? {
      o = new A;
    } else {
      o = new B;
    }
    a = (A) o;
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId O = findVar(*P, Main, "o");
  VarId A = findVar(*P, Main, "a");
  EXPECT_EQ(R.pt(O).size(), 2u);
  EXPECT_EQ(R.pt(A).size(), 1u); // Only the A object passes the cast.
}

TEST(SolverCITest, StaticFieldsFlowGlobally) {
  auto P = parseOrDie(R"(
class Registry {
  static field instance: Object;
}
class Main {
  static method main(): void {
    var o: Object;
    var r: Object;
    o = new Object;
    Registry::instance = o;
    r = Registry::instance;
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  VarId Ov = findVar(*P, Main, "o");
  EXPECT_EQ(R.pt(Rv).size(), 1u);
  EXPECT_TRUE(R.pt(Rv).contains(allocOf(*P, Ov)));
}

TEST(SolverCITest, ArrayFlowsThroughElements) {
  auto P = parseOrDie(R"(
class A { }
class Main {
  static method main(): void {
    var arr: A[];
    var a: A;
    var r: A;
    arr = new A[];
    a = new A;
    arr[*] = a;
    r = arr[*];
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  EXPECT_EQ(R.pt(Rv).size(), 1u);
}

TEST(SolverCITest, ArrayStoreFilterChecksElementType) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var arr: A[];
    var o: Object;
    var r: A;
    arr = new A[];
    if ? {
      o = new A;
    } else {
      o = new B;
    }
    arr[*] = o;
    r = arr[*];
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  // The B object is rejected by the runtime array-store check.
  EXPECT_EQ(R.pt(Rv).size(), 1u);
}

TEST(SolverCITest, SpecialCallBindsReceiver) {
  auto P = parseOrDie(R"(
class A {
  field f: Object;
  method init(o: Object): void {
    this.f = o;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var o: Object;
    var r: Object;
    a = new A;
    o = new Object;
    dcall a.A.init(o);
    r = a.f;
  }
}
)");
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  VarId Ov = findVar(*P, Main, "o");
  EXPECT_TRUE(R.pt(Rv).contains(allocOf(*P, Ov)));
}

TEST(SolverCITest, WorkBudgetStopsAnalysis) {
  auto P = parseOrDie(figure1Source());
  SolverOptions Opts;
  Opts.WorkBudget = 1;
  Solver S(*P, Opts);
  PTAResult R = S.solve();
  EXPECT_TRUE(R.Exhausted);
}

TEST(SolverCITest, FullPropagationMatchesDelta) {
  auto P = parseOrDie(figure1Source());
  SolverOptions Full;
  Full.DeltaPropagation = false;
  PTAResult RD = solveCI(*P);
  Solver SF(*P, Full);
  PTAResult RF = SF.solve();
  // Same fixpoint regardless of propagation strategy.
  MethodId Main = findMethod(*P, "Main", "main");
  for (VarId V : P->method(Main).Vars)
    EXPECT_EQ(RD.pt(V).toVector(), RF.pt(V).toVector())
        << "var " << P->var(V).Name;
  EXPECT_EQ(RD.numCallEdgesCI(), RF.numCallEdgesCI());
}
