//===- ContextSensitivityTest.cpp - k-obj/k-type/k-cs selectors -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/ContextSelector.h"
#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

PTAResult solveWith(const Program &P, ContextSelector &Sel,
                    uint64_t Budget = ~0ULL) {
  SolverOptions Opts;
  Opts.Selector = &Sel;
  Opts.WorkBudget = Budget;
  Solver S(P, Opts);
  return S.solve();
}

} // namespace

TEST(ContextSensitivityTest, TwoObjSeparatesFigure1) {
  auto P = parseOrDie(figure1Source());
  KObjSelector Sel(2);
  PTAResult R = solveWith(*P, Sel);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  ObjId O21 = allocOf(*P, findVar(*P, Main, "item2"));
  VarId Result1 = findVar(*P, Main, "result1");
  VarId Result2 = findVar(*P, Main, "result2");
  EXPECT_EQ(R.pt(Result1).toVector(), std::vector<uint32_t>{O16});
  EXPECT_EQ(R.pt(Result2).toVector(), std::vector<uint32_t>{O21});
}

TEST(ContextSensitivityTest, TwoTypeMergesSameClassAllocations) {
  // Both Cartons are allocated in the same class (Main), so 2type cannot
  // tell them apart — unlike 2obj. This is the precision gap the paper's
  // Tables 1-2 show between 2obj and 2type.
  auto P = parseOrDie(figure1Source());
  KTypeSelector Sel(2);
  PTAResult R = solveWith(*P, Sel);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Result1 = findVar(*P, Main, "result1");
  EXPECT_EQ(R.pt(Result1).size(), 2u);
}

TEST(ContextSensitivityTest, TwoCallSiteSeparatesLocalFlow) {
  // Call-site sensitivity distinguishes the two select() calls (Fig. 5).
  auto P = parseOrDie(R"(
class A { }
class Util {
  static method select(p1: A, p2: A): A {
    var r: A;
    if ? {
      r = p1;
    } else {
      r = p2;
    }
    return r;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var a3: A;
    var a4: A;
    var r1: A;
    var r2: A;
    a1 = new A;
    a2 = new A;
    r1 = scall Util.select(a1, a2);
    a3 = new A;
    a4 = new A;
    r2 = scall Util.select(a3, a4);
  }
}
)");
  KCallSiteSelector Sel(2);
  PTAResult R = solveWith(*P, Sel);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  EXPECT_EQ(R.pt(R1).size(), 2u); // a1, a2 only.
  ObjId OA3 = allocOf(*P, findVar(*P, Main, "a3"));
  EXPECT_FALSE(R.pt(R1).contains(OA3));
}

TEST(ContextSensitivityTest, ObjSensitivityUsesHeapContexts) {
  // The classic 2obj motivating case: a factory allocating inside a
  // method called on distinct receivers; 1obj merges the products'
  // fields, 2obj keeps them apart via the heap context.
  const char *Src = R"(
class T { }
class Box {
  field f: T;
  method fill(t: T): void {
    this.f = t;
  }
  method read(): T {
    var r: T;
    r = this.f;
    return r;
  }
}
class Factory {
  method make(): Box {
    var b: Box;
    b = new Box;
    return b;
  }
}
class Main {
  static method main(): void {
    var fa: Factory;
    var fb: Factory;
    var b1: Box;
    var b2: Box;
    var t1: T;
    var t2: T;
    var r1: T;
    var r2: T;
    fa = new Factory;
    fb = new Factory;
    b1 = call fa.make();
    b2 = call fb.make();
    t1 = new T;
    t2 = new T;
    call b1.fill(t1);
    call b2.fill(t2);
    r1 = call b1.read();
    r2 = call b2.read();
  }
}
)";
  auto P = parseOrDie(Src);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  VarId R1 = findVar(*P, Main, "r1");

  KObjSelector Two(2);
  PTAResult R2 = solveWith(*P, Two);
  EXPECT_EQ(R2.pt(R1).toVector(), std::vector<uint32_t>{OT1});

  KObjSelector One(1);
  PTAResult R1obj = solveWith(*P, One);
  // 1obj: both boxes are the same (obj, ctx) abstraction -> merged.
  EXPECT_EQ(R1obj.pt(R1).size(), 2u);
}

TEST(ContextSensitivityTest, SelectiveAppliesContextsOnlyToSelected) {
  auto P = parseOrDie(figure1Source());
  MethodId SetItem = findMethod(*P, "Carton", "setItem");
  MethodId GetItem = findMethod(*P, "Carton", "getItem");

  KObjSelector Inner(2);
  SelectiveSelector Sel(Inner, {SetItem, GetItem});
  PTAResult R = solveWith(*P, Sel);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  VarId Result1 = findVar(*P, Main, "result1");
  // Selecting exactly the two accessors recovers full precision here.
  EXPECT_EQ(R.pt(Result1).toVector(), std::vector<uint32_t>{O16});

  SelectiveSelector None(Inner, {});
  PTAResult RN = solveWith(*P, None);
  EXPECT_EQ(RN.pt(Result1).size(), 2u); // Degenerates to CI.
}

TEST(ContextSensitivityTest, ContextManagerKLimiting) {
  ContextManager CM;
  CtxId C1 = CM.push(CM.empty(), 7, 2);
  CtxId C2 = CM.push(C1, 9, 2);
  CtxId C3 = CM.push(C2, 11, 2);
  EXPECT_EQ(CM.elems(C2), (std::vector<uint32_t>{7, 9}));
  EXPECT_EQ(CM.elems(C3), (std::vector<uint32_t>{9, 11})); // 7 dropped.
  EXPECT_EQ(CM.truncate(C2, 1), CM.push(CM.empty(), 9, 1));
  EXPECT_EQ(CM.truncate(C2, 5), C2);
  // Hash-consing: same elements, same id.
  EXPECT_EQ(CM.push(C1, 9, 2), C2);
}

TEST(ContextSensitivityTest, TwoObjIsSoundOnFigure1) {
  auto P = parseOrDie(figure1Source());
  KObjSelector Sel(2);
  PTAResult R2 = solveWith(*P, Sel);
  Solver CI(*P, {});
  PTAResult RCI = CI.solve();
  // 2obj results are a subset of CI results on every variable.
  for (VarId V = 0; V < P->numVars(); ++V)
    R2.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(RCI.pt(V).contains(O))
          << "2obj invented object " << O << " for " << P->var(V).Name;
    });
  EXPECT_EQ(R2.numReachableCI(), RCI.numReachableCI());
}
