//===- SolverRegressionTest.cpp - Focused end-to-end regressions ----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Scenarios that exercised real bugs during development or combine
// features in ways the module-level tests do not.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "workload/Workload.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

PTAResult solveCSC(const Program &P) {
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  CutShortcutPlugin Plugin(P, Spec);
  Solver S(P, {});
  S.addPlugin(&Plugin);
  return S.solve();
}

} // namespace

TEST(SolverRegressionTest, InterfaceDispatchThroughContainer) {
  // Interface-typed retrieval + dispatch: the Cut-Shortcut container
  // shortcut must compose with interface subtyping and cast filters.
  auto P = parseWithStdlib(R"(
interface Task {
  method run(): Object;
}
class Cheap implements Task {
  method run(): Object {
    var r: Object;
    r = new Object;
    return r;
  }
}
class Costly implements Task {
  method run(): Object {
    var r: Object;
    r = new Object;
    return r;
  }
}
class Main {
  static method main(): void {
    var q1: LinkedList;
    var q2: LinkedList;
    var c: Cheap;
    var d: Costly;
    var o: Object;
    var t: Task;
    var r: Object;
    q1 = new LinkedList;
    dcall q1.LinkedList.init();
    q2 = new LinkedList;
    dcall q2.LinkedList.init();
    c = new Cheap;
    d = new Costly;
    call q1.add(c);
    call q2.add(d);
    o = call q1.get();
    t = (Task) o;
    r = call t.run();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId CheapRun = findMethod(*P, "Cheap", "run");
  MethodId CostlyRun = findMethod(*P, "Costly", "run");
  EXPECT_TRUE(R.isReachable(CheapRun));
  EXPECT_FALSE(R.isReachable(CostlyRun))
      << "container separation should keep Costly.run unreachable";
}

TEST(SolverRegressionTest, CutStoreDoesNotLeakThroughSubclassOverride) {
  // A subclass overrides the setter WITHOUT the pattern shape; dispatch
  // must route each receiver to the right implementation and stay sound.
  auto P = parseOrDie(R"(
class T { }
class Base {
  field f: T;
  method set(t: T): void {
    this.f = t;
  }
}
class Weird extends Base {
  field last: T;
  method set(t: T): void {
    var copy: T;
    copy = t;
    this.last = copy;
  }
}
class Main {
  static method main(): void {
    var b: Base;
    var w: Base;
    var t1: T;
    var t2: T;
    var r1: T;
    var r2: T;
    b = new Base;
    w = new Weird;
    t1 = new T;
    t2 = new T;
    call b.set(t1);
    call w.set(t2);
    r1 = b.f;
    r2 = w.f;
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  ObjId OW = allocOf(*P, findVar(*P, Main, "w"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  // Base.set stored t1 into b only; Weird.set stored into .last, so w.f
  // stays empty.
  EXPECT_EQ(R.pt(R1).toVector(), std::vector<uint32_t>{OT1});
  EXPECT_TRUE(R.pt(R2).empty());
  FieldId Last = P->resolveField(P->typeByName("Weird"), "last");
  ObjId OT2 = allocOf(*P, findVar(*P, Main, "t2"));
  EXPECT_TRUE(R.ptField(OW, Last).contains(OT2));
}

TEST(SolverRegressionTest, LoadPatternWithPolymorphicGetter) {
  // Two getter implementations, one qualifying for the load pattern and
  // one not; both dispatched from the same call site.
  auto P = parseOrDie(R"(
class T { }
class Box {
  field f: T;
  method put(t: T): void {
    this.f = t;
  }
  method get(): T {
    var r: T;
    r = this.f;
    return r;
  }
}
class FreshBox extends Box {
  method get(): T {
    var r: T;
    r = new T;
    return r;
  }
}
class Main {
  static method main(): void {
    var b: Box;
    var t: T;
    var r: T;
    if ? {
      b = new Box;
    } else {
      b = new FreshBox;
    }
    t = new T;
    call b.put(t);
    r = call b.get();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  MethodId FreshGet = findMethod(*P, "FreshBox", "get");
  VarId Rv = findVar(*P, Main, "r");
  ObjId OT = allocOf(*P, findVar(*P, Main, "t"));
  ObjId Fresh = allocOf(*P, findVar(*P, FreshGet, "r"));
  EXPECT_TRUE(R.pt(Rv).contains(OT));
  EXPECT_TRUE(R.pt(Rv).contains(Fresh))
      << "the non-pattern override's value must survive";
}

TEST(SolverRegressionTest, StaticFieldsBridgeScenarios) {
  auto P = parseOrDie(R"(
class Registry {
  static field shared: Object;
}
class Producer {
  static method run(): void {
    var o: Object;
    o = new Object;
    Registry::shared = o;
  }
}
class Consumer {
  static method run(): Object {
    var r: Object;
    r = Registry::shared;
    return r;
  }
}
class Main {
  static method main(): void {
    var got: Object;
    scall Producer.run();
    got = scall Consumer.run();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  MethodId Prod = findMethod(*P, "Producer", "run");
  VarId Got = findVar(*P, Main, "got");
  ObjId O = allocOf(*P, findVar(*P, Prod, "o"));
  EXPECT_TRUE(R.pt(Got).contains(O));
}

TEST(SolverRegressionTest, DeeplyNestedBranchesAllAnalyzed) {
  // Flow-insensitivity: every branch of a 6-deep nest contributes.
  std::string Src = "class Main {\n  static method main(): void {\n"
                    "    var o: Object;\n";
  for (int I = 0; I < 6; ++I)
    Src += "    if ? {\n      o = new Object;\n    } else {\n";
  Src += "      o = new Object;\n";
  for (int I = 0; I < 6; ++I)
    Src += "    }\n";
  Src += "  }\n}\n";
  auto P = parseOrDie(Src);
  Solver S(*P, {});
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  VarId O = findVar(*P, Main, "o");
  EXPECT_EQ(R.pt(O).size(), 7u); // 6 then-allocations + 1 innermost else.
}

TEST(SolverRegressionTest, BombedWorkloadBlowsUp2objNotCI) {
  // The scalability-cliff mechanism itself: on a bombed program the 2obj
  // work exceeds CI's by a large factor.
  WorkloadConfig C;
  C.Name = "bombed";
  C.Seed = 9;
  C.NumScenarios = 2;
  C.ActionsPerScenario = 4;
  C.NumEntityClasses = 5;
  C.NumFamilies = 2;
  C.FamilySize = 3;
  C.NumSelectors = 2;
  C.BombWidth = 12;
  C.BombDepth = 5;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);

  Solver CI(*P, {});
  PTAResult RCI = CI.solve();

  KObjSelector Sel(2);
  SolverOptions Opts;
  Opts.Selector = &Sel;
  Solver Obj(*P, Opts);
  PTAResult R2 = Obj.solve();

  EXPECT_GT(R2.Stats.PtsInsertions, RCI.Stats.PtsInsertions * 3)
      << "the context bomb should multiply 2obj's work";
}

TEST(SolverRegressionTest, ContainerElementsFlowingBetweenContainers) {
  // Element moved from one list to another by hand: hosts/pts must chain.
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l1: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var mid: Object;
    var x: Object;
    l1 = new ArrayList;
    dcall l1.ArrayList.init();
    l2 = new ArrayList;
    dcall l2.ArrayList.init();
    a = new Object;
    call l1.add(a);
    mid = call l1.get();
    call l2.add(mid);
    x = call l2.get();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  EXPECT_TRUE(R.pt(X).contains(OA));
}

TEST(SolverRegressionTest, SubtypeCacheConsistentUnderLateTypes) {
  // Subtype queries interleaved with type creation (arrays are created
  // lazily by the parser): the memo cache must never return stale data.
  Program P;
  IRBuilder B(P);
  TypeId A = B.cls("A");
  EXPECT_TRUE(P.isSubtype(A, P.objectType()));
  TypeId BT = B.cls("B", "A");
  EXPECT_TRUE(P.isSubtype(BT, A));
  TypeId ArrB = P.arrayOf(BT);
  TypeId ArrA = P.arrayOf(A);
  EXPECT_TRUE(P.isSubtype(ArrB, ArrA));
  EXPECT_FALSE(P.isSubtype(ArrA, ArrB));
}

TEST(SolverRegressionTest, EmptyProgramWithEntrySolves) {
  auto P = parseOrDie("class Main { static method main(): void { } }");
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_EQ(R.numReachableCI(), 1u);
  EXPECT_EQ(R.numCallEdgesCI(), 0u);
  EXPECT_FALSE(R.Exhausted);
}

TEST(SolverRegressionTest, ResultQueriesOnUnknownIdsAreEmpty) {
  auto P = parseOrDie("class Main { static method main(): void { } }");
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_TRUE(R.pt(999999).empty());
  EXPECT_TRUE(R.ptField(5, 7).empty());
  EXPECT_TRUE(R.ptArray(5).empty());
  EXPECT_TRUE(R.ptStatic(5).empty());
  EXPECT_TRUE(R.calleesOf(12345).empty());
}
