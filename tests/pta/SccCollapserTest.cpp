//===- SccCollapserTest.cpp - Cycle elimination unit tests ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the solver's online cycle-elimination subsystem: the
// UnionFind forest, the SccCollapser's detection/merge mechanics over a
// hand-built PFG, and the solver-level regression pinned by ISSUE 5 —
// shortcut-edge queries (Solver::isShortcutEdge, graph dumps) must stay
// correct after a cycle containing a shortcut endpoint collapses, because
// the ShortcutEdgeKeys set is keyed on original (un-collapsed) pointers
// and the representative layer never rewrites it.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "frontend/Parser.h"
#include "pta/GraphDump.h"
#include "pta/SccCollapser.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace csc;

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFindTest, SingletonsAreTheirOwnReps) {
  UnionFind UF;
  EXPECT_EQ(UF.find(0), 0u);
  EXPECT_EQ(UF.find(12345), 12345u); // Beyond size(): implicit singleton.
  EXPECT_TRUE(UF.isRep(7));
  EXPECT_EQ(UF.numMerges(), 0u);
}

TEST(UnionFindTest, UniteMergesAndReportsWinner) {
  UnionFind UF;
  uint32_t W = InvalidId;
  ASSERT_TRUE(UF.unite(3, 5, W));
  EXPECT_EQ(W, 3u); // Equal rank: smaller id wins.
  EXPECT_EQ(UF.find(5), 3u);
  EXPECT_EQ(UF.find(3), 3u);
  EXPECT_FALSE(UF.unite(5, 3, W)); // Already one class.
  EXPECT_EQ(W, 3u);
  EXPECT_EQ(UF.numMerges(), 1u);
}

TEST(UnionFindTest, RepresentativeIsIdStableAcrossFinds) {
  UnionFind UF;
  uint32_t W = InvalidId;
  for (uint32_t I = 1; I < 64; ++I)
    UF.unite(I - 1, I, W);
  uint32_t Rep = UF.find(63);
  // Path halving mutates parents but never the representative.
  for (int K = 0; K < 4; ++K)
    for (uint32_t I = 0; I < 64; ++I)
      EXPECT_EQ(UF.find(I), Rep);
}

TEST(UnionFindTest, DeterministicWinnerChain) {
  // Two forests built with the same operations elect the same reps.
  UnionFind A, B;
  uint32_t WA = 0, WB = 0;
  uint32_t Pairs[][2] = {{9, 2}, {2, 7}, {4, 5}, {5, 9}, {0, 1}, {1, 9}};
  for (auto &P : Pairs) {
    A.unite(P[0], P[1], WA);
    B.unite(P[0], P[1], WB);
    EXPECT_EQ(WA, WB);
  }
  for (uint32_t I = 0; I < 10; ++I)
    EXPECT_EQ(A.find(I), B.find(I));
}

//===----------------------------------------------------------------------===//
// SccCollapser over a hand-built PFG
//===----------------------------------------------------------------------===//

namespace {

/// 0 -> 1 -> 2 -> 0 cycle plus a filtered 2 -> 3 edge and an acyclic
/// 3 -> 4 tail.
struct TinyGraph {
  PointerFlowGraph PFG;
  SccCollapser C{PFG};
  TinyGraph() {
    addEdge(0, 1, InvalidId);
    addEdge(1, 2, InvalidId);
    addEdge(2, 3, /*Filter=*/7);
    addEdge(3, 4, InvalidId);
  }
  void addEdge(PtrId S, PtrId T, TypeId F) {
    ASSERT_TRUE(PFG.addEdge(S, T, F));
    C.noteEdge(S, T);
  }
};

} // namespace

TEST(SccCollapserTest, FindCycleOnClosingEdge) {
  TinyGraph G;
  // Insert 2 -> 0: closes 0 -> 1 -> 2 -> 0.
  ASSERT_TRUE(G.PFG.addEdge(2, 0, InvalidId));
  G.C.noteEdge(2, 0);
  ASSERT_TRUE(G.C.looksLikeBackEdge(2, 0));
  std::vector<PtrId> Cycle;
  ASSERT_TRUE(G.C.findCycle(2, 0, Cycle));
  std::sort(Cycle.begin(), Cycle.end());
  EXPECT_EQ(Cycle, (std::vector<PtrId>{0, 1, 2}));

  PtrId W = G.C.mergeClass(Cycle);
  EXPECT_EQ(G.C.rep(0), W);
  EXPECT_EQ(G.C.rep(1), W);
  EXPECT_EQ(G.C.rep(2), W);
  EXPECT_EQ(G.C.rep(4), 4u);
  EXPECT_EQ(G.C.classSize(W), 3u);
  ASSERT_NE(G.C.membersOrNull(W), nullptr);
  EXPECT_EQ(*G.C.membersOrNull(W), (std::vector<PtrId>{0, 1, 2}));
  EXPECT_EQ(G.C.stats().SccsFound, 1u);
  EXPECT_EQ(G.C.stats().MembersCollapsed, 2u);
}

TEST(SccCollapserTest, FilteredEdgesNeverCollapse) {
  TinyGraph G;
  // 3 -> 0 makes 0..3 a cycle ONLY through the filtered 2 -> 3 edge;
  // nothing may collapse (a cast filter breaks set equality).
  ASSERT_TRUE(G.PFG.addEdge(3, 0, InvalidId));
  G.C.noteEdge(3, 0);
  std::vector<PtrId> Cycle;
  EXPECT_FALSE(G.C.findCycle(3, 0, Cycle));
  std::vector<std::vector<PtrId>> Sccs;
  G.C.fullPass(Sccs);
  EXPECT_TRUE(Sccs.empty());
}

TEST(SccCollapserTest, FullPassFindsCyclesAndRefreshesOrder) {
  TinyGraph G;
  ASSERT_TRUE(G.PFG.addEdge(2, 0, InvalidId));
  G.C.noteEdge(2, 0);
  std::vector<std::vector<PtrId>> Sccs;
  G.C.fullPass(Sccs);
  ASSERT_EQ(Sccs.size(), 1u);
  std::vector<PtrId> Cycle = Sccs[0];
  std::sort(Cycle.begin(), Cycle.end());
  EXPECT_EQ(Cycle, (std::vector<PtrId>{0, 1, 2}));
  // Reverse-topological order refresh over the unfiltered subgraph
  // (0->1->2->0 cycle and 3->4; the filtered 2->3 edge is ignored):
  // within each component chain, sources order before sinks.
  G.C.mergeClass(Cycle);
  EXPECT_LT(G.C.order(3), G.C.order(4));
}

//===----------------------------------------------------------------------===//
// Solver-level regression: shortcut edges survive collapse (ISSUE 5)
//===----------------------------------------------------------------------===//

namespace {

/// `a` receives a shortcut edge (a -> o_bx.val, from the [CutStore]
/// pattern on Box.set) AND sits on a copy cycle a -> b -> c -> id.x ->
/// id.ret -> a that the collapser merges.
const char *ShortcutCycleSource = R"(
class A { }
class Box {
  field val: Object;
  method set(v: Object): void {
    this.val = v;
  }
}
class Main {
  static method id(x: Object): Object {
    return x;
  }
  static method main(): void {
    var bx: Box;
    bx = new Box;
    var a: Object;
    var b: Object;
    var c: Object;
    a = new A;
    b = a;
    c = b;
    a = scall Main.id(c);
    call bx.set(a);
  }
}
)";

VarId findVar(const Program &P, const std::string &Method,
              const std::string &Var) {
  for (VarId V = 0; V < P.numVars(); ++V)
    if (P.var(V).Name == Var && P.method(P.var(V).Method).Name == Method)
      return V;
  return InvalidId;
}

} // namespace

TEST(SccShortcutRegressionTest, ShortcutEdgesSurviveEndpointCollapse) {
  Program P;
  std::vector<std::string> Diags;
  ASSERT_TRUE(parseProgram(
      P, {{"<stdlib>", stdlibSource()}, {"cycle.jir", ShortcutCycleSource}},
      Diags))
      << (Diags.empty() ? "" : Diags.front());

  // Field pattern only: the local-flow pattern would cut Main.id's return
  // and dissolve the copy cycle this regression needs.
  CutShortcutOptions Opts;
  Opts.Container = false;
  Opts.LocalFlow = false;
  Opts.FieldLoad = false;
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  CutShortcutPlugin Plugin(P, Spec, Opts);
  Solver S(P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  ASSERT_FALSE(R.Exhausted);
  ASSERT_GT(Plugin.stats().ShortcutEdges, 0u);

  VarId AV = findVar(P, "main", "a");
  VarId BV = findVar(P, "main", "b");
  VarId CV = findVar(P, "main", "c");
  VarId BoxV = findVar(P, "main", "bx");
  ASSERT_NE(AV, InvalidId);
  ASSERT_NE(BV, InvalidId);
  ASSERT_NE(CV, InvalidId);
  ASSERT_NE(BoxV, InvalidId);

  PtrId APtr = S.varPtrCI(AV);
  PtrId BPtr = S.varPtrCI(BV);
  PtrId CPtr = S.varPtrCI(CV);

  // The copy cycle collapsed: a, b, c share one representative class.
  EXPECT_EQ(S.representative(APtr), S.representative(BPtr));
  EXPECT_EQ(S.representative(BPtr), S.representative(CPtr));
  EXPECT_GE(R.Stats.Scc.SccsFound, 1u);

  // The shortcut edge a -> o_bx.val is keyed on ORIGINAL pointers and
  // must still answer queries after the collapse absorbed `a`.
  ObjId BoxObj = InvalidId;
  R.pt(BoxV).forEach([&](ObjId O) { BoxObj = O; });
  ASSERT_NE(BoxObj, InvalidId);
  FieldId ValF = InvalidId;
  for (FieldId F = 0; F < P.numFields(); ++F)
    if (P.field(F).Name == "val")
      ValF = F;
  ASSERT_NE(ValF, InvalidId);
  PtrId FieldPtr = S.fieldPtrCI(BoxObj, ValF);
  EXPECT_TRUE(S.isShortcutEdge(APtr, FieldPtr));
  EXPECT_FALSE(S.isShortcutEdge(FieldPtr, APtr));

  // The un-collapsed views agree: every cycle member reports the same
  // points-to set, and the PFG dump still renders the original nodes and
  // the shortcut annotation.
  EXPECT_EQ(S.ptsOf(APtr).toVector(), S.ptsOf(BPtr).toVector());
  EXPECT_EQ(S.ptsOf(BPtr).toVector(), S.ptsOf(CPtr).toVector());
  std::string Dot = dumpPFGDot(S, /*MaxNodes=*/0);
  EXPECT_NE(Dot.find("shortcut"), std::string::npos);
  EXPECT_NE(Dot.find("main.a"), std::string::npos);
  EXPECT_NE(Dot.find("main.b"), std::string::npos);

  // And the semantic result matches a collapse-free run bit for bit.
  SolverOptions Off;
  Off.CycleElimination = false;
  CutShortcutPlugin Plugin2(P, Spec, Opts);
  Solver S2(P, Off);
  S2.addPlugin(&Plugin2);
  PTAResult R2 = S2.solve();
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(R.pt(V).toVector(), R2.pt(V).toVector()) << P.var(V).Name;
  EXPECT_EQ(R.Stats.PtsInsertions, R2.Stats.PtsInsertions);
  EXPECT_EQ(Plugin.stats().ShortcutEdges, Plugin2.stats().ShortcutEdges);
}
