//===- ParallelEquivalenceTest.cpp - par=1 vs par=N determinism -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The parallel sweep engine (SolverOptions::ParallelSweeps, spec parameter
// `par`) must be invisible in every client-observable artifact: for any
// lane count, a completed analysis produces the same PTAResult
// projections, the same precision metrics, the same logical work counter,
// and byte-identical timing-free JSON run reports. This suite extends the
// PropagationEquivalenceTest / SccEquivalence pattern to pin that
// contract for par=1 vs par=2/4/8 across ci/csc/2obj — composed with both
// scc settings and with the Doop engine — on the real example programs
// and the cycle-bearing scale-xs/scale-s workload tiers.
//
// A final pair of tests pins run-to-run determinism of one fixed par
// value under work-budget exhaustion: an interrupted parallel run must
// agree with itself bit-for-bit, the bar BudgetExhaustionMidCollapse set
// for the serial engine. (par=1 vs par=N equality is only promised for
// completed runs: the two engines check the budget at different
// granularities, so they may stop at different — individually
// deterministic — frontiers.)
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "client/Report.h"
#include "frontend/Parser.h"
#include "stdlib/Stdlib.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace csc;

namespace {

std::unique_ptr<Program> loadExample(const std::string &File) {
  std::ifstream In(std::string(CSC_EXAMPLES_DIR) + "/" + File);
  if (!In)
    return nullptr;
  std::ostringstream Text;
  Text << In.rdbuf();
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  if (!parseProgram(*P,
                    {{"<stdlib>", stdlibSource()}, {File, Text.str()}},
                    Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << File << ": " << D;
    return nullptr;
  }
  return P;
}

std::unique_ptr<AnalysisSession> tierSession(const char *Name) {
  for (const WorkloadConfig &C : scalingSuite()) {
    if (C.Name != Name)
      continue;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    std::unique_ptr<AnalysisSession> S;
    if (P)
      S = AnalysisSession::adopt(std::move(P), {}, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << Name << ": " << D;
    return S;
  }
  ADD_FAILURE() << "no such tier: " << Name;
  return nullptr;
}

/// Asserts every client-visible projection of two results is identical.
void expectSameResults(const Program &P, const PTAResult &A,
                       const PTAResult &B, const std::string &Label) {
  ASSERT_FALSE(A.Exhausted) << Label;
  ASSERT_FALSE(B.Exhausted) << Label;
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(A.pt(V).toVector(), B.pt(V).toVector())
        << Label << ": var " << P.var(V).Name;
  for (ObjId O = 0; O < P.numObjs(); ++O)
    EXPECT_EQ(A.ptArray(O).toVector(), B.ptArray(O).toVector())
        << Label << ": array of obj " << O;
  EXPECT_EQ(A.numCallEdgesCI(), B.numCallEdgesCI()) << Label;
  EXPECT_EQ(A.numReachableCI(), B.numReachableCI()) << Label;
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    std::vector<MethodId> CA = A.calleesOf(CS);
    std::vector<MethodId> CB = B.calleesOf(CS);
    std::sort(CA.begin(), CA.end());
    std::sort(CB.begin(), CB.end());
    EXPECT_EQ(CA, CB) << Label << ": call site " << CS;
  }
}

/// The timing-free JSON report of one run (the byte-identity contract).
std::string reportOf(const AnalysisRun &Run) {
  JsonWriter J;
  appendRunJson(J, Run, /*IncludeTimings=*/false);
  return J.take();
}

/// Runs every (spec, scc, par) combination over one session and asserts
/// par=2/4/8 match the par=1 baseline byte for byte.
void expectParEquivalence(AnalysisSession &S, const std::string &Label) {
  const Program &P = S.program();
  for (const char *Spec : {"ci", "csc", "2obj"}) {
    for (const char *Scc : {"1", "0"}) {
      std::string Base = std::string(Spec) + ";scc=" + Scc;
      AnalysisRun Serial = S.run(Base + ";par=1");
      ASSERT_EQ(Serial.Status, RunStatus::Completed)
          << Label << "/" << Base << ": " << Serial.Error;
      Serial.Name = Base;
      std::string SerialReport = reportOf(Serial);
      for (const char *Par : {"2", "4", "8"}) {
        AnalysisRun Parallel = S.run(Base + ";par=" + Par);
        ASSERT_EQ(Parallel.Status, RunStatus::Completed)
            << Label << "/" << Base << "/par=" << Par << ": "
            << Parallel.Error;
        // Only the spec spelling may differ; erase it before comparing.
        Parallel.Name = Base;
        std::string Ctx = Label + "/" + Base + "/par=" + Par;
        EXPECT_EQ(SerialReport, reportOf(Parallel)) << Ctx;
        expectSameResults(P, Serial.Result, Parallel.Result, Ctx);
        EXPECT_EQ(Serial.Result.Stats.PtsInsertions,
                  Parallel.Result.Stats.PtsInsertions)
            << Ctx;
        EXPECT_EQ(Serial.Metrics.FailCasts, Parallel.Metrics.FailCasts)
            << Ctx;
        EXPECT_EQ(Serial.Metrics.PolyCalls, Parallel.Metrics.PolyCalls)
            << Ctx;
        EXPECT_EQ(Serial.Metrics.CallEdges, Parallel.Metrics.CallEdges)
            << Ctx;
      }
    }
  }
}

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ParallelEquivalenceTest, ExamplesIdenticalAcrossLaneCounts) {
  auto P = loadExample(GetParam());
  ASSERT_NE(P, nullptr);
  AnalysisSession S(*P);
  expectParEquivalence(S, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Examples, ParallelEquivalenceTest,
                         ::testing::Values("figure1.jir", "containers.jir"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

TEST(ParallelEquivalenceTiersTest, ScaleXsTierIdentical) {
  auto S = tierSession("scale-xs");
  ASSERT_NE(S, nullptr);
  expectParEquivalence(*S, "scale-xs");
}

TEST(ParallelEquivalenceTiersTest, ScaleSTierIdentical) {
  auto S = tierSession("scale-s");
  ASSERT_NE(S, nullptr);
  expectParEquivalence(*S, "scale-s");
}

TEST(ParallelEquivalenceTiersTest, DoopEngineIdenticalAcrossLaneCounts) {
  // The full re-propagation engine takes a different path through the
  // sweep (snapshot instead of pending merge, direct Pts writes at the
  // merge barrier); pin it separately on the cycle-bearing tier.
  auto S = tierSession("scale-xs");
  ASSERT_NE(S, nullptr);
  const Program &P = S->program();
  AnalysisRun Serial = S->run("csc-doop;par=1");
  ASSERT_EQ(Serial.Status, RunStatus::Completed) << Serial.Error;
  Serial.Name = "csc-doop";
  for (const char *Par : {"2", "4"}) {
    AnalysisRun Parallel = S->run(std::string("csc-doop;par=") + Par);
    ASSERT_EQ(Parallel.Status, RunStatus::Completed) << Parallel.Error;
    Parallel.Name = "csc-doop";
    EXPECT_EQ(reportOf(Serial), reportOf(Parallel)) << "par=" << Par;
    expectSameResults(P, Serial.Result, Parallel.Result,
                      std::string("doop/par=") + Par);
  }
}

TEST(ParallelEquivalenceTiersTest, BudgetExhaustionIsDeterministicPerLane) {
  // An interrupted parallel run must agree with itself bit for bit: the
  // budget is checked at deterministic program points (sweep heads and
  // phase-4 entry boundaries), never from a racing lane.
  auto S = tierSession("scale-s");
  ASSERT_NE(S, nullptr);
  const Program &P = S->program();
  bool SawExhaustion = false;
  for (uint64_t Budget : {300ULL, 900ULL, 60000ULL}) {
    S->setWorkBudget(Budget);
    AnalysisRun A = S->run("ci;par=4");
    AnalysisRun B = S->run("ci;par=4");
    ASSERT_EQ(A.Status, B.Status) << "budget " << Budget;
    SawExhaustion = SawExhaustion || A.exhausted();
    EXPECT_EQ(A.Result.Stats.PtsInsertions, B.Result.Stats.PtsInsertions)
        << "budget " << Budget;
    EXPECT_EQ(A.Result.Stats.Scc.SccsFound, B.Result.Stats.Scc.SccsFound)
        << "budget " << Budget;
    for (VarId V = 0; V < P.numVars(); ++V)
      ASSERT_EQ(A.Result.pt(V).toVector(), B.Result.pt(V).toVector())
          << "budget " << Budget << " var " << V;
  }
  EXPECT_TRUE(SawExhaustion) << "budgets too large: nothing interrupted";
  S->setWorkBudget(~0ULL);
}

TEST(ParallelEquivalenceTiersTest, LaneCountsAgreeWithEachOther) {
  // Transitivity makes this redundant with the par=1 baseline tests, but
  // a direct par=2 vs par=8 byte comparison documents that the contract
  // is between *any* two lane counts, not parallel-vs-serial only.
  auto S = tierSession("scale-xs");
  ASSERT_NE(S, nullptr);
  AnalysisRun A = S->run("csc;par=2");
  AnalysisRun B = S->run("csc;par=8");
  ASSERT_TRUE(A.completed() && B.completed());
  A.Name = B.Name = "csc";
  EXPECT_EQ(reportOf(A), reportOf(B));
}
