//===- StoreFaultTest.cpp - Fault injection against the result store ------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The store's failure discipline, exercised adversarially: truncate
// entries mid-record, flip random bytes, corrupt the index, bump the
// format version, delete files behind a live handle, point the store at
// an unusable path. Every injected fault must degrade to a counted miss
// that recomputes — the warm aggregate stays byte-identical to a
// storeless run — and none may crash, hang, or serve a wrong answer.
// The suite runs under ASan+UBSan in CI's sanitize job, so "never
// crashes" is checked with teeth.
//
//===----------------------------------------------------------------------===//

#include "client/BatchExecutor.h"
#include "store/ResultStore.h"
#include "store/TaskLedger.h"
#include "support/Rng.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace csc;

namespace {

std::vector<std::string> listFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Files;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      Files.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  std::sort(Files.begin(), Files.end());
  return Files;
}

void rmTree(const std::string &Dir) {
  for (const std::string &F : listFiles(Dir)) {
    struct stat St;
    if (::stat(F.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      rmTree(F);
    else
      std::remove(F.c_str());
  }
  ::rmdir(Dir.c_str());
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

class StoreFaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "store-fault-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Root = Template;
    Dir = Root + "/store";

    // Two seeded workloads x three specs = six deterministic runs; the
    // storeless aggregate is the oracle every faulted pass must match.
    for (uint64_t Seed : {7ULL, 19ULL}) {
      WorkloadConfig C;
      C.Name = "fault-" + std::to_string(Seed);
      C.Seed = Seed;
      BatchEntry E;
      E.Label = C.Name;
      E.SourceName = C.Name;
      E.SourceText = generateWorkload(C);
      E.Specs = {"ci", "csc", "2obj"};
      Entries.push_back(std::move(E));
    }
    BatchExecutor Ref;
    Reference = Ref.run(Entries).aggregateJson();
    ASSERT_FALSE(Reference.empty());
  }

  void TearDown() override { rmTree(Root); }

  std::shared_ptr<ResultStore> open() {
    ResultStore::Options O;
    O.Dir = Dir;
    auto Store = std::make_shared<ResultStore>(O);
    EXPECT_TRUE(Store->usable()) << Store->error();
    return Store;
  }

  /// A handle on the fixture's fake clock, optionally with GC bounds.
  std::shared_ptr<ResultStore> openGc(uint64_t MaxBytes,
                                      uint64_t MaxAgeMs) {
    ResultStore::Options O;
    O.Dir = Dir;
    O.MaxBytes = MaxBytes;
    O.MaxAgeMs = MaxAgeMs;
    O.NowMs = [this] { return Clock; };
    auto Store = std::make_shared<ResultStore>(O);
    EXPECT_TRUE(Store->usable()) << Store->error();
    return Store;
  }

  /// Store keys of all six runs, in task order.
  static std::vector<std::string> storeKeys(const BatchReport &R) {
    std::vector<std::string> Keys;
    for (const BatchEntryResult &E : R.Entries)
      for (const BatchRunResult &Run : E.Runs)
        Keys.push_back(Run.StoreKey);
    return Keys;
  }

  uint64_t objectBytes() {
    uint64_t Total = 0;
    for (const std::string &F : listFiles(Dir + "/objects")) {
      struct stat St;
      if (::stat(F.c_str(), &St) == 0)
        Total += static_cast<uint64_t>(St.st_size);
    }
    return Total;
  }

  /// One fresh executor pass against \p Store; the aggregate must be
  /// byte-identical to the storeless oracle no matter what the store has
  /// been through.
  BatchReport runWith(std::shared_ptr<ResultStore> Store) {
    BatchExecutor::Options BO;
    BO.Store = std::move(Store);
    BatchExecutor Exec(BO);
    BatchReport Report = Exec.run(Entries);
    EXPECT_EQ(Report.aggregateJson(), Reference);
    return Report;
  }

  /// Seeds the store with all six results and returns the entry files.
  std::vector<std::string> warmObjects() {
    runWith(open());
    std::vector<std::string> Objects = listFiles(Dir + "/objects");
    EXPECT_EQ(Objects.size(), 6u);
    return Objects;
  }

  std::string Root, Dir;
  std::vector<BatchEntry> Entries;
  std::string Reference;
  uint64_t Clock = 1000000; ///< Fake clock for GC schedules, ms.
};

} // namespace

TEST_F(StoreFaultTest, ColdThenWarmIsByteIdenticalAndFullyServed) {
  BatchReport Cold = runWith(open());
  EXPECT_EQ(Cold.StoreHits, 0u);
  EXPECT_EQ(Cold.StoreMisses, 6u);

  BatchReport Warm = runWith(open());
  EXPECT_EQ(Warm.StoreHits, 6u);
  EXPECT_EQ(Warm.StoreMisses, 0u);
  uint64_t Served = 0;
  for (const BatchEntryResult &E : Warm.Entries)
    for (const BatchRunResult &R : E.Runs)
      Served += R.FromStore ? 1 : 0;
  EXPECT_EQ(Served, 6u);
}

TEST_F(StoreFaultTest, TruncationMidRecordDegradesToCountedMisses) {
  for (const std::string &Obj : warmObjects()) {
    std::string Bytes = readFile(Obj);
    ASSERT_GT(Bytes.size(), 1u);
    writeFile(Obj, Bytes.substr(0, Bytes.size() / 2));
  }
  std::shared_ptr<ResultStore> Store = open();
  BatchReport Report = runWith(Store);
  EXPECT_EQ(Report.StoreHits, 0u);
  ResultStore::Counters C = Store->counters();
  EXPECT_GE(C.CorruptEvictions, 6u);
  // Self-repair: the recomputation republished, so the next pass hits.
  EXPECT_EQ(runWith(open()).StoreHits, 6u);
}

TEST_F(StoreFaultTest, RandomBitFlipsNeverServeWrongBytes) {
  Rng R(0x5eedULL);
  for (int Round = 0; Round != 4; ++Round) {
    std::vector<std::string> Objects = warmObjects();
    for (const std::string &Obj : Objects) {
      std::string Bytes = readFile(Obj);
      ASSERT_FALSE(Bytes.empty());
      size_t Pos = R.nextInRange(static_cast<uint32_t>(Bytes.size()));
      Bytes[Pos] = static_cast<char>(
          Bytes[Pos] ^ static_cast<char>(1u << R.nextInRange(8)));
      writeFile(Obj, Bytes);
    }
    std::shared_ptr<ResultStore> Store = open();
    BatchReport Report = runWith(Store);
    // Every flipped entry must be detected: zero hits, all corrupt.
    EXPECT_EQ(Report.StoreHits, 0u) << "round " << Round;
    EXPECT_GE(Store->counters().CorruptEvictions, 6u)
        << "round " << Round;
  }
}

TEST_F(StoreFaultTest, CorruptIndexTriggersRebuildNotWrongAnswers) {
  warmObjects();
  writeFile(Dir + "/index.bin", "this is not an index");
  std::shared_ptr<ResultStore> Store = open();
  EXPECT_GE(Store->counters().IndexRebuilds, 1u);
  // Entries were untouched: the rebuilt manifest serves all of them.
  EXPECT_EQ(runWith(Store).StoreHits, 6u);

  // A deleted index with surviving entries rebuilds the same way.
  std::remove((Dir + "/index.bin").c_str());
  std::shared_ptr<ResultStore> Store2 = open();
  EXPECT_GE(Store2->counters().IndexRebuilds, 1u);
  EXPECT_EQ(runWith(Store2).StoreHits, 6u);
}

TEST_F(StoreFaultTest, FormatVersionBumpIsCorruptionNotACrash) {
  for (const std::string &Obj : warmObjects()) {
    std::string Bytes = readFile(Obj);
    ASSERT_GT(Bytes.size(), 8u);
    ++Bytes[8]; // little-endian LSB of the u32 format version
    writeFile(Obj, Bytes);
  }
  std::shared_ptr<ResultStore> Store = open();
  BatchReport Report = runWith(Store);
  EXPECT_EQ(Report.StoreHits, 0u);
  EXPECT_GE(Store->counters().CorruptEvictions, 6u);
}

TEST_F(StoreFaultTest, DeletionBehindALiveHandleIsAPlainMiss) {
  warmObjects();
  std::shared_ptr<ResultStore> Store = open(); // index loaded, files gone:
  for (const std::string &Obj : listFiles(Dir + "/objects"))
    std::remove(Obj.c_str());
  BatchReport Report = runWith(Store);
  EXPECT_EQ(Report.StoreHits, 0u);
  EXPECT_EQ(Report.StoreMisses, 6u);
  // Nothing was corrupt — the files were absent, not damaged.
  EXPECT_EQ(Store->counters().CorruptEvictions, 0u);
}

TEST_F(StoreFaultTest, ScrubReportsAndEvictsExactlyTheDamage) {
  std::vector<std::string> Objects = warmObjects();
  ASSERT_EQ(Objects.size(), 6u);
  for (size_t I = 0; I != 2; ++I) { // damage two of six
    std::string Bytes = readFile(Objects[I]);
    Bytes[Bytes.size() / 2] ^= 0x40;
    writeFile(Objects[I], Bytes);
  }
  std::shared_ptr<ResultStore> Store = open();
  ResultStore::ScrubReport R = Store->scrub();
  EXPECT_EQ(R.Valid, 4u);
  EXPECT_EQ(R.Corrupt, 2u);
  EXPECT_GT(R.Bytes, 0u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 4u); // evicted on disk
  runWith(Store); // recomputes the two, still byte-identical
  EXPECT_EQ(Store->scrub().Valid, 6u);
}

TEST_F(StoreFaultTest, UnusableDirectoryDegradesToNoOpStore) {
  std::string File = Root + "/plain-file";
  writeFile(File, "not a directory");
  ResultStore::Options O;
  O.Dir = File + "/store"; // parent is a file: mkdir must fail
  auto Store = std::make_shared<ResultStore>(O);
  EXPECT_FALSE(Store->usable());
  EXPECT_FALSE(Store->error().empty());

  StoredResult Unused;
  EXPECT_FALSE(Store->lookup("some-key", Unused));
  EXPECT_FALSE(Store->publish("some-key", Unused));
  ResultStore::Counters C = Store->counters();
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.PublishFailures, 1u);

  // An executor handed the degraded store still produces the oracle.
  BatchExecutor::Options BO;
  BO.Store = Store;
  BatchExecutor Exec(BO);
  EXPECT_EQ(Exec.run(Entries).aggregateJson(), Reference);
}

TEST_F(StoreFaultTest, ScrubOfAFreshOrDegradedStoreIsAZeroNoOp) {
  // Fresh directory, nothing published yet: scrub and gc both report
  // zeros and leave the (empty) store behind.
  std::shared_ptr<ResultStore> Store = open();
  ResultStore::ScrubReport S = Store->scrub();
  EXPECT_EQ(S.Valid, 0u);
  EXPECT_EQ(S.Corrupt, 0u);
  EXPECT_EQ(S.Bytes, 0u);
  ResultStore::GcReport G = Store->gc();
  EXPECT_EQ(G.Evicted, 0u);
  EXPECT_EQ(G.Pinned, 0u);
  EXPECT_TRUE(Store->usable());

  // A store whose directory never came into existence (degraded
  // handle): the same calls are no-ops, not crashes.
  ResultStore::Options O;
  O.Dir = Root + "/missing-parent/store";
  writeFile(Root + "/missing-parent", "a file where a dir must go");
  ResultStore Degraded(O);
  ASSERT_FALSE(Degraded.usable());
  S = Degraded.scrub();
  EXPECT_EQ(S.Valid, 0u);
  EXPECT_EQ(S.Corrupt, 0u);
  G = Degraded.gc();
  EXPECT_EQ(G.Evicted, 0u);
}

TEST_F(StoreFaultTest, PublishUnderWriteFailureIsACountedNoOp) {
  // Fault-injected ENOSPC: every file write fails. Publishes must
  // degrade to counted failures and the batch must still be the oracle.
  ResultStore::Options O;
  O.Dir = Dir;
  O.TestFailWrites = true;
  auto Enospc = std::make_shared<ResultStore>(O);
  ASSERT_TRUE(Enospc->usable()) << Enospc->error();
  BatchReport Report = runWith(Enospc);
  EXPECT_EQ(Report.StoreHits, 0u);
  ResultStore::Counters C = Enospc->counters();
  EXPECT_EQ(C.Publishes, 0u);
  EXPECT_EQ(C.PublishFailures, 6u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 0u); // nothing landed

  // Reads are unaffected: warm the store healthily, then a
  // write-failing handle still serves every hit.
  warmObjects();
  auto Reader = std::make_shared<ResultStore>(O);
  EXPECT_EQ(runWith(Reader).StoreHits, 6u);
  EXPECT_EQ(Reader->counters().PublishFailures, 0u);
}

TEST_F(StoreFaultTest, GcByteBudgetEvictsLeastRecentlyUsedFirst) {
  // Warm at T0 on the fake clock, then touch two entries at T1: they
  // become the hot set a byte-budgeted reopen must keep.
  std::vector<std::string> Keys = storeKeys(runWith(openGc(0, 0)));
  ASSERT_EQ(Keys.size(), 6u);
  uint64_t Total = objectBytes();
  ASSERT_GT(Total, 0u);

  Clock += 60000;
  {
    std::shared_ptr<ResultStore> Toucher = openGc(0, 0);
    StoredResult R;
    EXPECT_TRUE(Toucher->lookup(Keys[1], R));
    EXPECT_TRUE(Toucher->lookup(Keys[4], R));
  } // destructor flushes the access stamps into the index

  Clock += 1000;
  uint64_t Budget = Total / 2; // room for ~3 of 6 entries
  std::shared_ptr<ResultStore> Store = openGc(Budget, 0);
  EXPECT_GE(Store->counters().GcEvictions, 1u);
  EXPECT_LE(objectBytes(), Budget);

  // The two recently-touched entries were the newest and must survive.
  StoredResult R;
  EXPECT_TRUE(Store->lookup(Keys[1], R));
  EXPECT_TRUE(Store->lookup(Keys[4], R));

  // The evicted entries recompute; the aggregate never changes.
  BatchReport Report = runWith(Store);
  EXPECT_GE(Report.StoreHits, 2u);
  EXPECT_LE(objectBytes(), Budget); // per-publish GC re-enforces
}

TEST_F(StoreFaultTest, GcAgeBoundEvictsEntriesNotAccessedInTime) {
  runWith(openGc(0, 0)); // warm, all stamps at the fake clock's T0
  ASSERT_EQ(listFiles(Dir + "/objects").size(), 6u);

  Clock += 10000; // everything is now 10s stale
  std::shared_ptr<ResultStore> Store = openGc(0, /*MaxAgeMs=*/5000);
  EXPECT_EQ(Store->counters().GcEvictions, 6u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 0u);

  // Recompute-and-republish restores the store; fresh stamps survive
  // the same age bound.
  BatchReport Report = runWith(Store);
  EXPECT_EQ(Report.StoreMisses, 6u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 6u);
  EXPECT_EQ(runWith(openGc(0, 5000)).StoreHits, 6u);
}

TEST_F(StoreFaultTest, AccessFlushDoesNotResurrectGcEvictedEntries) {
  // Regression: a handle's destructor used to flush its in-memory
  // access stamps by re-inserting whole index records for keys missing
  // from the disk index — resurrecting entries another handle had
  // already GC-evicted, as phantom records pointing at deleted object
  // files whose bytes inflated the next GC pass into over-eviction.
  runWith(openGc(0, 0)); // warm at the fake clock's T0
  {
    std::shared_ptr<ResultStore> Reader = openGc(0, 0);
    EXPECT_EQ(runWith(Reader).StoreHits, 6u); // stamps all six in memory

    // While Reader still holds those records, another handle evicts
    // everything under an age bound.
    Clock += 10000;
    std::shared_ptr<ResultStore> Collector = openGc(0, /*MaxAgeMs=*/5000);
    EXPECT_EQ(Collector->counters().GcEvictions, 6u);
    EXPECT_EQ(listFiles(Dir + "/objects").size(), 0u);
    // Scope exit: Collector closes first, then Reader's destructor
    // flushes its stale stamps against the post-eviction disk index.
  }

  // A fresh handle under a 1-byte budget inherits the index as written:
  // resurrection would hand it six phantom records to "evict" again.
  std::shared_ptr<ResultStore> Fresh = openGc(/*MaxBytes=*/1, 0);
  EXPECT_EQ(Fresh->counters().GcEvictions, 0u);
  EXPECT_EQ(runWith(Fresh).StoreMisses, 6u); // recomputes; still oracle
}

TEST_F(StoreFaultTest, GcNeverEvictsKeysPinnedByALiveTaskLedger) {
  std::vector<std::string> Keys = storeKeys(runWith(openGc(0, 0)));
  ASSERT_EQ(Keys.size(), 6u);

  // A live ledger says a coordinator has yet to consume all six
  // results: even an absurd 1-byte budget must not evict them.
  {
    TaskLedger::Options LO;
    LO.Path = Dir + "/ledger.bin";
    TaskLedger Ledger(LO);
    TaskLedger::Config LC;
    LC.TaskCount = 6;
    ASSERT_TRUE(Ledger.create(LC));
    for (uint32_t T = 0; T != 6; ++T) {
      TaskLedger::Lease L;
      uint64_t RetryMs = 0;
      ASSERT_EQ(Ledger.acquire(1, L, RetryMs),
                TaskLedger::AcquireStatus::Acquired);
      ASSERT_TRUE(Ledger.complete(L, 1, Keys[T]));
    }
  }
  Clock += 1000;
  std::shared_ptr<ResultStore> Store = openGc(/*MaxBytes=*/1, 0);
  ResultStore::GcReport G = Store->gc();
  EXPECT_EQ(G.Evicted, 0u);
  EXPECT_EQ(G.Pinned, 6u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 6u);

  // The coordinator consumed everything and removed the ledger: the
  // pins are gone and the budget finally applies.
  std::remove((Dir + "/ledger.bin").c_str());
  std::remove((Dir + "/ledger.bin.lock").c_str());
  G = Store->gc();
  EXPECT_EQ(G.Evicted, 6u);
  EXPECT_GT(G.FreedBytes, 0u);
  EXPECT_EQ(listFiles(Dir + "/objects").size(), 0u);
  runWith(Store); // recomputes; still the oracle
}
