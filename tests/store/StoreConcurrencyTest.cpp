//===- StoreConcurrencyTest.cpp - Racing handles over one store -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// Two ResultStore handles sharing one directory, hammered by racing
// publisher/reader threads. The store's contract under contention: a
// lookup either misses or returns exactly the bytes published for that
// key (atomic rename means no torn reads), racing publishers of one key
// are harmless, and after the dust settles a scrub finds every entry
// valid. This suite is in CI's TSan job, so the handle's internal
// locking is checked with teeth; scripts/store_concurrency.sh covers the
// cross-process half of the same contract.
//
//===----------------------------------------------------------------------===//

#include "client/Report.h"
#include "store/ResultStore.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace csc;

namespace {

void rmTree(const std::string &Dir) {
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name == "." || Name == "..")
        continue;
      std::string Path = Dir + "/" + Name;
      struct stat St;
      if (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
        rmTree(Path);
      else
        std::remove(Path.c_str());
    }
    ::closedir(D);
  }
  ::rmdir(Dir.c_str());
}

class StoreConcurrencyTest : public ::testing::Test {
protected:
  static constexpr size_t NumKeys = 32;

  void SetUp() override {
    char Template[] = "store-conc-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Root = Template;
    Dir = Root + "/store";

    // One real completed run seeds the value shape; per-key variants
    // differ in metrics and report bytes so a cross-key mixup would be
    // caught by the byte comparison below, not just by luck.
    WorkloadConfig C;
    C.Name = "conc";
    C.Seed = 5;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    ASSERT_NE(P, nullptr);
    AnalysisSession S(*P);
    AnalysisRun Run = S.run("ci");
    ASSERT_EQ(Run.Status, RunStatus::Completed) << Run.Error;
    JsonWriter J;
    appendRunJson(J, Run, /*IncludeTimings=*/false);
    Base = storedFromRun(Run, J.take());

    for (size_t I = 0; I != NumKeys; ++I) {
      Keys.push_back("conc-key-" + std::to_string(I));
      StoredResult V = Base;
      V.Metrics.FailCasts = static_cast<uint32_t>(I);
      V.CutStores = I * 7 + 1;
      V.RunJson = Base.RunJson + "#variant-" + std::to_string(I);
      Expected.push_back(serializeStoredResult(V));
      Values.push_back(std::move(V));
    }
  }

  void TearDown() override { rmTree(Root); }

  std::shared_ptr<ResultStore> open() {
    ResultStore::Options O;
    O.Dir = Dir;
    auto Store = std::make_shared<ResultStore>(O);
    EXPECT_TRUE(Store->usable()) << Store->error();
    return Store;
  }

  std::string Root, Dir;
  StoredResult Base;
  std::vector<std::string> Keys;
  std::vector<StoredResult> Values;
  std::vector<std::string> Expected; ///< serializeStoredResult per key.
};

constexpr size_t StoreConcurrencyTest::NumKeys;

} // namespace

TEST_F(StoreConcurrencyTest, TwoHandlesRacePublishAndLookup) {
  std::shared_ptr<ResultStore> A = open();
  std::shared_ptr<ResultStore> B = open();

  std::atomic<uint64_t> ServedOk{0};
  std::atomic<bool> WrongBytes{false};
  auto Worker = [&](ResultStore &Store, size_t Stride) {
    // Each thread walks the key space at its own coprime stride, so
    // publishes and lookups of every key interleave across threads.
    for (int Round = 0; Round != 3; ++Round) {
      for (size_t Step = 0; Step != NumKeys; ++Step) {
        size_t I = (Step * Stride + static_cast<size_t>(Round)) % NumKeys;
        Store.publish(Keys[I], Values[I]);
        StoredResult Out;
        if (Store.lookup(Keys[I], Out)) {
          if (serializeStoredResult(Out) != Expected[I])
            WrongBytes = true;
          else
            ++ServedOk;
        }
      }
    }
  };

  std::vector<std::thread> Threads;
  size_t Strides[] = {1, 3, 5, 7}; // coprime with NumKeys = 32
  for (size_t T = 0; T != 4; ++T)
    Threads.emplace_back(Worker, std::ref(T % 2 ? *B : *A), Strides[T]);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_FALSE(WrongBytes.load())
      << "a racing lookup returned bytes for the wrong key";
  EXPECT_GT(ServedOk.load(), 0u);

  // Post-race: a fresh handle serves every key exactly, and a full scrub
  // finds nothing to evict.
  std::shared_ptr<ResultStore> Fresh = open();
  for (size_t I = 0; I != NumKeys; ++I) {
    StoredResult Out;
    ASSERT_TRUE(Fresh->lookup(Keys[I], Out)) << Keys[I];
    EXPECT_EQ(serializeStoredResult(Out), Expected[I]) << Keys[I];
  }
  ResultStore::ScrubReport R = Fresh->scrub();
  EXPECT_EQ(R.Valid, NumKeys);
  EXPECT_EQ(R.Corrupt, 0u);
}

TEST_F(StoreConcurrencyTest, RacingPublishersOfOneKeyAreHarmless) {
  std::shared_ptr<ResultStore> A = open();
  std::shared_ptr<ResultStore> B = open();

  // Identical bytes from every publisher — the store's documented
  // last-rename-wins assumption — hammered on a single key.
  std::vector<std::thread> Threads;
  for (size_t T = 0; T != 4; ++T)
    Threads.emplace_back([&, T] {
      ResultStore &Store = T % 2 ? *B : *A;
      for (int Round = 0; Round != 50; ++Round) {
        Store.publish(Keys[0], Values[0]);
        StoredResult Out;
        if (Store.lookup(Keys[0], Out)) {
          EXPECT_EQ(serializeStoredResult(Out), Expected[0]);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(A->counters().CorruptEvictions + B->counters().CorruptEvictions,
            0u);
  std::shared_ptr<ResultStore> Fresh = open();
  StoredResult Out;
  ASSERT_TRUE(Fresh->lookup(Keys[0], Out));
  EXPECT_EQ(serializeStoredResult(Out), Expected[0]);
}
