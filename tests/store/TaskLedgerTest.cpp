//===- TaskLedgerTest.cpp - Lease protocol unit tests ---------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The task ledger's lease protocol under a fake clock: acquire/renew/
// complete lifecycles, expiry reclamation with exponential backoff,
// quarantine after the attempt budget with the pinned diagnostic,
// supervisor-observed worker death, stale-heartbeat rejection after a
// reclaim, GC key pinning, and the ENOSPC / corrupt-file degradation
// paths. Everything here is single-process; the cross-process story is
// FleetFaultTest's job.
//
//===----------------------------------------------------------------------===//

#include "store/TaskLedger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace csc;

namespace {

class TaskLedgerTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "task-ledger-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Root = Template;
    Path = Root + "/ledger.bin";
  }

  void TearDown() override {
    std::remove(Path.c_str());
    std::remove((Path + ".lock").c_str());
    ::rmdir(Root.c_str());
  }

  /// A ledger handle driven by the shared fake clock.
  TaskLedger open(bool FailWrites = false) {
    TaskLedger::Options O;
    O.Path = Path;
    O.NowMs = [this] { return Clock; };
    O.TestFailWrites = FailWrites;
    return TaskLedger(O);
  }

  TaskLedger::Config config(uint32_t Tasks, uint32_t MaxAttempts = 3) {
    TaskLedger::Config C;
    C.BatchFingerprint = 0xfeedULL;
    C.TaskCount = Tasks;
    C.LeaseTtlMs = 1000;
    C.MaxAttempts = MaxAttempts;
    C.BackoffBaseMs = 50;
    return C;
  }

  std::string Root, Path;
  uint64_t Clock = 1000000; ///< Fake wall clock, milliseconds.
};

} // namespace

TEST_F(TaskLedgerTest, CreateConfigRoundTripAndFingerprintGuard) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(4)));

  TaskLedger::Config C;
  ASSERT_TRUE(L.config(C));
  EXPECT_EQ(C.BatchFingerprint, 0xfeedULL);
  EXPECT_EQ(C.TaskCount, 4u);
  EXPECT_EQ(C.LeaseTtlMs, 1000u);
  EXPECT_EQ(C.MaxAttempts, 3u);

  // A worker handed a ledger for a different manifest must refuse it.
  ASSERT_TRUE(L.config(C, 0xfeedULL));
  EXPECT_FALSE(L.config(C, 0xbadULL));

  TaskLedger::Summary S;
  ASSERT_TRUE(L.summary(S));
  EXPECT_EQ(S.Total, 4u);
  EXPECT_EQ(S.Pending, 4u);
  EXPECT_FALSE(S.drained());
}

TEST_F(TaskLedgerTest, AcquireLeasesLowestTaskAndCompleteDrains) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(3)));

  uint64_t RetryMs = 0;
  std::vector<TaskLedger::Lease> Leases(3);
  for (uint32_t I = 0; I != 3; ++I) {
    ASSERT_EQ(L.acquire(/*Worker=*/100 + I, Leases[I], RetryMs),
              TaskLedger::AcquireStatus::Acquired);
    EXPECT_EQ(Leases[I].Task, I); // lowest runnable task first
    EXPECT_EQ(Leases[I].Attempt, 1u);
  }

  // All leased: nothing runnable until the nearest lease expires.
  TaskLedger::Lease Extra;
  ASSERT_EQ(L.acquire(999, Extra, RetryMs),
            TaskLedger::AcquireStatus::Retry);
  EXPECT_GE(RetryMs, 1u);
  EXPECT_LE(RetryMs, 1000u);

  ASSERT_TRUE(L.renew(Leases[0], 100));
  for (uint32_t I = 0; I != 3; ++I)
    ASSERT_TRUE(L.complete(Leases[I], 100 + I, "key-" + std::to_string(I)));

  TaskLedger::Summary S;
  ASSERT_TRUE(L.summary(S));
  EXPECT_EQ(S.Done, 3u);
  EXPECT_TRUE(S.drained());
  ASSERT_EQ(L.acquire(999, Extra, RetryMs),
            TaskLedger::AcquireStatus::Drained);

  // Completing an already-done task is idempotent success.
  EXPECT_TRUE(L.complete(Leases[0], 100, "key-0"));

  TaskLedger::Counters C = L.counters();
  EXPECT_EQ(C.Acquires, 3u);
  EXPECT_EQ(C.Renews, 1u);
  EXPECT_EQ(C.Completes, 3u);
  EXPECT_EQ(C.IoFailures, 0u);
}

TEST_F(TaskLedgerTest, ExpiredLeaseIsReclaimedBehindExponentialBackoff) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(1)));

  TaskLedger::Lease First, Second;
  uint64_t RetryMs = 0;
  ASSERT_EQ(L.acquire(1, First, RetryMs),
            TaskLedger::AcquireStatus::Acquired);

  // TTL passes un-renewed: the next acquire reclaims, but the retry
  // backoff (base << 0 = 50ms for attempt 1) gates immediate re-lease.
  Clock += 1000;
  ASSERT_EQ(L.acquire(2, Second, RetryMs),
            TaskLedger::AcquireStatus::Retry);
  EXPECT_EQ(RetryMs, 50u);
  EXPECT_EQ(L.counters().Reclaims, 1u);

  Clock += RetryMs;
  ASSERT_EQ(L.acquire(2, Second, RetryMs),
            TaskLedger::AcquireStatus::Acquired);
  EXPECT_EQ(Second.Task, 0u);
  EXPECT_EQ(Second.Attempt, 2u);

  // Second expiry doubles the backoff: base << 1 = 100ms.
  Clock += 1000;
  ASSERT_EQ(L.acquire(3, Second, RetryMs),
            TaskLedger::AcquireStatus::Retry);
  EXPECT_EQ(RetryMs, 100u);
}

TEST_F(TaskLedgerTest, RenewExtendsTheLeaseAcrossManyTtls) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(1)));

  TaskLedger::Lease Lease, Other;
  uint64_t RetryMs = 0;
  ASSERT_EQ(L.acquire(7, Lease, RetryMs),
            TaskLedger::AcquireStatus::Acquired);

  // A heartbeating worker holds its lease across 10 TTLs of wall time.
  for (int I = 0; I != 10; ++I) {
    Clock += 900; // renew before the 1000ms TTL runs out
    ASSERT_TRUE(L.renew(Lease, 7)) << "renewal " << I;
    ASSERT_EQ(L.acquire(8, Other, RetryMs),
              TaskLedger::AcquireStatus::Retry);
  }
  EXPECT_EQ(L.counters().Reclaims, 0u);
  ASSERT_TRUE(L.complete(Lease, 7, "key"));
}

TEST_F(TaskLedgerTest, StaleRenewAndCompleteAfterReclaimAreRejected) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(1)));

  TaskLedger::Lease Stale, Fresh;
  uint64_t RetryMs = 0;
  ASSERT_EQ(L.acquire(1, Stale, RetryMs),
            TaskLedger::AcquireStatus::Acquired);

  // Worker 1 hangs; its lease expires and worker 2 takes attempt 2.
  Clock += 1000 + 50;
  ASSERT_EQ(L.acquire(2, Fresh, RetryMs),
            TaskLedger::AcquireStatus::Retry); // reclaim pass
  Clock += RetryMs;
  ASSERT_EQ(L.acquire(2, Fresh, RetryMs),
            TaskLedger::AcquireStatus::Acquired);
  EXPECT_EQ(Fresh.Attempt, 2u);

  // Worker 1 wakes up: its heartbeat and completion are both dead.
  EXPECT_FALSE(L.renew(Stale, 1));
  EXPECT_FALSE(L.complete(Stale, 1, "stale-key"));

  // Even the same worker id cannot revive an old attempt.
  EXPECT_FALSE(L.renew(TaskLedger::Lease{0, 1}, 2));

  ASSERT_TRUE(L.complete(Fresh, 2, "fresh-key"));
  TaskLedger::Config Cfg;
  std::vector<TaskLedger::Task> Tasks;
  ASSERT_TRUE(L.snapshot(Cfg, Tasks));
  ASSERT_EQ(Tasks.size(), 1u);
  EXPECT_EQ(Tasks[0].Key, "fresh-key");
}

TEST_F(TaskLedgerTest, QuarantineAfterMaxAttemptsPinsTheDiagnostic) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(1, /*MaxAttempts=*/2)));

  TaskLedger::Lease Lease;
  uint64_t RetryMs = 0;
  for (uint32_t Attempt = 1; Attempt <= 2; ++Attempt) {
    while (L.acquire(40 + Attempt, Lease, RetryMs) !=
           TaskLedger::AcquireStatus::Acquired)
      Clock += RetryMs;
    EXPECT_EQ(Lease.Attempt, Attempt);
    Clock += 1000; // lease dies un-renewed
  }
  ASSERT_EQ(L.acquire(99, Lease, RetryMs),
            TaskLedger::AcquireStatus::Drained);
  EXPECT_EQ(L.counters().Quarantines, 1u);

  TaskLedger::Summary S;
  ASSERT_TRUE(L.summary(S));
  EXPECT_EQ(S.Quarantined, 1u);
  EXPECT_EQ(S.Done, 0u);
  EXPECT_TRUE(S.drained());

  TaskLedger::Config Cfg;
  std::vector<TaskLedger::Task> Tasks;
  ASSERT_TRUE(L.snapshot(Cfg, Tasks));
  ASSERT_EQ(Tasks.size(), 1u);
  EXPECT_EQ(Tasks[0].State, TaskLedger::TaskState::Quarantined);
  EXPECT_EQ(Tasks[0].Diag, "failed 2 of 2 attempts; last worker 42: "
                           "lease expired un-renewed");
}

TEST_F(TaskLedgerTest, NoteWorkerDeathExpiresLeasesAndPinsTheCause) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(1, /*MaxAttempts=*/1)));

  TaskLedger::Lease Lease;
  uint64_t RetryMs = 0;
  ASSERT_EQ(L.acquire(55, Lease, RetryMs),
            TaskLedger::AcquireStatus::Acquired);

  // The supervisor saw worker 55 die: no TTL wait, the cause is kept,
  // and with a single-attempt budget the task quarantines right away.
  ASSERT_TRUE(L.noteWorkerDeath(55, "signal 9"));
  ASSERT_TRUE(L.reclaimExpired());
  EXPECT_EQ(L.counters().Quarantines, 1u);

  TaskLedger::Config Cfg;
  std::vector<TaskLedger::Task> Tasks;
  ASSERT_TRUE(L.snapshot(Cfg, Tasks));
  EXPECT_EQ(Tasks[0].Diag,
            "failed 1 of 1 attempts; last worker 55: signal 9");

  // Reporting the death of an unknown worker is a harmless no-op.
  EXPECT_TRUE(L.noteWorkerDeath(777, "signal 11"));
}

TEST_F(TaskLedgerTest, PinnedKeysListCompletedResultsOfALiveLedger) {
  EXPECT_TRUE(TaskLedger::pinnedKeys(Path).empty()); // no file yet

  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(3)));
  EXPECT_TRUE(TaskLedger::pinnedKeys(Path).empty()); // nothing done yet

  TaskLedger::Lease A, B;
  uint64_t RetryMs = 0;
  ASSERT_EQ(L.acquire(1, A, RetryMs), TaskLedger::AcquireStatus::Acquired);
  ASSERT_EQ(L.acquire(1, B, RetryMs), TaskLedger::AcquireStatus::Acquired);
  ASSERT_TRUE(L.complete(A, 1, "key-a"));
  ASSERT_TRUE(L.complete(B, 1, "")); // spec error: nothing published

  std::vector<std::string> Keys = TaskLedger::pinnedKeys(Path);
  ASSERT_EQ(Keys.size(), 1u);
  EXPECT_EQ(Keys[0], "key-a");
}

TEST_F(TaskLedgerTest, WriteFailureDegradesToErrorNotCorruption) {
  // ENOSPC from the first write: create fails, counted.
  TaskLedger Broken = open(/*FailWrites=*/true);
  EXPECT_FALSE(Broken.create(config(2)));
  EXPECT_GE(Broken.counters().IoFailures, 1u);

  // A healthy handle seeds the ledger; a write-failing handle can still
  // read it but every mutation degrades to Error/false — and the file
  // keeps serving the healthy handle afterwards.
  TaskLedger Good = open();
  ASSERT_TRUE(Good.create(config(2)));

  TaskLedger Enospc = open(/*FailWrites=*/true);
  TaskLedger::Config C;
  EXPECT_TRUE(Enospc.config(C)); // reads still work
  TaskLedger::Lease Lease;
  uint64_t RetryMs = 0;
  EXPECT_EQ(Enospc.acquire(1, Lease, RetryMs),
            TaskLedger::AcquireStatus::Error);
  EXPECT_GE(Enospc.counters().IoFailures, 1u);

  ASSERT_EQ(Good.acquire(2, Lease, RetryMs),
            TaskLedger::AcquireStatus::Acquired);
  EXPECT_EQ(Lease.Task, 0u); // the failed acquire leased nothing
}

TEST_F(TaskLedgerTest, CorruptOrTruncatedLedgerFileIsAnErrorStatus) {
  TaskLedger L = open();
  ASSERT_TRUE(L.create(config(2)));

  // Flip one body byte: the checksum must reject the whole file.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(Bytes.size(), 21u);
    Bytes[21] = static_cast<char>(Bytes[21] ^ 0x20);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  TaskLedger::Config C;
  EXPECT_FALSE(L.config(C));
  TaskLedger::Lease Lease;
  uint64_t RetryMs = 0;
  EXPECT_EQ(L.acquire(1, Lease, RetryMs), TaskLedger::AcquireStatus::Error);
  EXPECT_TRUE(TaskLedger::pinnedKeys(Path).empty());

  // Truncation mid-header is equally fatal and equally graceful.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write("CSCPTAL1", 8);
  }
  EXPECT_FALSE(L.config(C));
  EXPECT_GE(L.counters().IoFailures, 2u);

  // create() resets the damage in place.
  ASSERT_TRUE(L.create(config(2)));
  EXPECT_TRUE(L.config(C));
}

TEST_F(TaskLedgerTest, TwoHandlesShareOneLedgerWithoutDoubleLeasing) {
  // Two handles simulate two processes on the shared file: every task
  // is leased exactly once, and completions interleave safely.
  TaskLedger A = open(), B = open();
  ASSERT_TRUE(A.create(config(4)));

  TaskLedger::Lease LA, LB;
  uint64_t RetryMs = 0;
  ASSERT_EQ(A.acquire(1, LA, RetryMs), TaskLedger::AcquireStatus::Acquired);
  ASSERT_EQ(B.acquire(2, LB, RetryMs), TaskLedger::AcquireStatus::Acquired);
  EXPECT_NE(LA.Task, LB.Task);

  ASSERT_TRUE(A.complete(LA, 1, "a"));
  ASSERT_TRUE(B.complete(LB, 2, "b"));
  ASSERT_EQ(A.acquire(1, LA, RetryMs), TaskLedger::AcquireStatus::Acquired);
  ASSERT_EQ(B.acquire(2, LB, RetryMs), TaskLedger::AcquireStatus::Acquired);
  EXPECT_NE(LA.Task, LB.Task);
  ASSERT_TRUE(A.complete(LA, 1, "c"));
  ASSERT_TRUE(B.complete(LB, 2, "d"));

  TaskLedger::Summary S;
  ASSERT_TRUE(B.summary(S));
  EXPECT_TRUE(S.drained());
  EXPECT_EQ(S.Done, 4u);
}
