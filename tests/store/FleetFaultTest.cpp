//===- FleetFaultTest.cpp - Crash chaos against the worker fleet ----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// End-to-end fault injection against the pull-mode worker fleet: the
// cscpta binary (CSC_CSCPTA_PATH) is run as a coordinator over a real
// manifest while the CSC_FLEET_TEST_* hooks crash, stop, and stall its
// workers at adversarial points. Under every schedule the aggregate
// JSON on stdout must stay byte-identical to a storeless run — crashes
// may cost retries, never results — and the quarantine/fallback paths
// must announce themselves with their pinned diagnostics.
//
// The EINTR regression test drives runWorkerFleet in-process under a
// SIGALRM storm: the supervisor's waitpid loop must shrug off
// interrupted syscalls instead of miscounting worker deaths.
//
//===----------------------------------------------------------------------===//

#include "client/BatchExecutor.h"
#include "store/ResultStore.h"
#include "store/TaskLedger.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace csc;

namespace {

void rmTree(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (D) {
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name == "." || Name == "..")
        continue;
      std::string Path = Dir + "/" + Name;
      struct stat St;
      if (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
        rmTree(Path);
      else
        std::remove(Path.c_str());
    }
    ::closedir(D);
  }
  ::rmdir(Dir.c_str());
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Runs \p Command through the shell, capturing stdout/stderr under
/// \p Dir. Returns the process exit code (-1 when it died abnormally).
int runShell(const std::string &Command, const std::string &Dir,
             std::string &OutBytes, std::string &ErrBytes) {
  std::string Full = Command + " > " + Dir + "/out.bin 2> " + Dir +
                     "/err.txt";
  int St = std::system(Full.c_str());
  OutBytes = readFile(Dir + "/out.bin");
  ErrBytes = readFile(Dir + "/err.txt");
  if (St == -1 || !WIFEXITED(St))
    return -1;
  return WEXITSTATUS(St);
}

class FleetFaultTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "fleet-fault-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Root = Template;
    Manifest = Root + "/batch.json";

    // Two example programs x three specs = six tasks, the same workload
    // shape the batch smoke uses.
    std::ofstream M(Manifest);
    M << "{ \"entries\": [\n"
         "  { \"label\": \"f1\", \"program\": \"" CSC_EXAMPLES_DIR
         "/figure1.jir\", \"specs\": [\"ci\", \"csc\", \"2obj\"] },\n"
         "  { \"label\": \"ct\", \"program\": \"" CSC_EXAMPLES_DIR
         "/containers.jir\", \"specs\": [\"ci\", \"csc\", \"2obj\"] }\n"
         "] }\n";
    ASSERT_TRUE(M.good());
    M.close();

    // The storeless single-process oracle, computed once per suite.
    if (Oracle.empty()) {
      std::string Err;
      ASSERT_EQ(runShell(std::string("'") + CSC_CSCPTA_PATH + "' --batch " +
                             Manifest + " --json",
                         Root, Oracle, Err),
                0)
          << Err;
      ASSERT_FALSE(Oracle.empty());
    }
  }

  void TearDown() override { rmTree(Root); }

  /// One coordinator invocation with a fleet over a fresh store.
  /// \p Env is a shell prefix like "CSC_FLEET_TEST_KILL_TASK=2 ".
  int runFleet(const std::string &Env, const std::string &ExtraFlags,
               std::string &OutBytes, std::string &ErrBytes) {
    return runShell(Env + "'" + CSC_CSCPTA_PATH + "' --batch " + Manifest +
                        " --json --store " + Root + "/store --workers 2 " +
                        ExtraFlags + " --stats",
                    Root, OutBytes, ErrBytes);
  }

  std::string Root, Manifest;
  static std::string Oracle; ///< Storeless aggregate JSON (stdout bytes).
};

std::string FleetFaultTest::Oracle;

} // namespace

TEST_F(FleetFaultTest, HealthyFleetIsByteIdenticalToStorelessRun) {
  std::string Out, Err;
  ASSERT_EQ(runFleet("", "", Out, Err), 0) << Err;
  EXPECT_EQ(Out, Oracle);
  EXPECT_NE(Err.find("[cscpta] fleet stats: spawned 2 workers"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("exited clean"), std::string::npos) << Err;
  EXPECT_NE(Err.find("tasks 6 done, 0 quarantined"), std::string::npos)
      << Err;
}

TEST_F(FleetFaultTest, SigkillMidTaskIsRetriedByteIdentical) {
  // The worker holding task 2 SIGKILLs itself on its first attempt; the
  // supervisor must observe the death, release the lease immediately,
  // respawn, and still deliver the oracle bytes with exit 0.
  std::string Out, Err;
  ASSERT_EQ(runFleet("CSC_FLEET_TEST_KILL_TASK=2 "
                     "CSC_FLEET_TEST_KILL_ATTEMPTS=1 ",
                     "", Out, Err),
            0)
      << Err;
  EXPECT_EQ(Out, Oracle);
  EXPECT_NE(Err.find("died by signal"), std::string::npos) << Err;
  EXPECT_NE(Err.find("tasks 6 done, 0 quarantined"), std::string::npos)
      << Err;
}

TEST_F(FleetFaultTest, CrashLoopingTaskIsQuarantinedWithPinnedDiagnostic) {
  // Task 2 kills every worker that touches it: after the attempt budget
  // the ledger quarantines it, the coordinator recomputes it in-process
  // (the aggregate must not care), and the exit code goes nonzero so CI
  // notices the poisoned task.
  std::string Out, Err;
  ASSERT_EQ(runFleet("CSC_FLEET_TEST_KILL_TASK=2 ",
                     "--max-task-attempts 2 ", Out, Err),
            1)
      << Err;
  EXPECT_EQ(Out, Oracle);
  EXPECT_NE(
      Err.find("error: task 2 (f1: 2obj) quarantined after 2 attempts"),
      std::string::npos)
      << Err;
  EXPECT_NE(Err.find("failed 2 of 2 attempts"), std::string::npos) << Err;
  EXPECT_NE(Err.find("signal 9"), std::string::npos) << Err;
  EXPECT_NE(Err.find("tasks 5 done, 1 quarantined"), std::string::npos)
      << Err;
}

TEST_F(FleetFaultTest, SigstoppedWorkerLosesItsLeaseAndIsKilled) {
  // A SIGSTOPped worker cannot heartbeat: its lease expires, the task
  // is re-run elsewhere (or drained by the coordinator), and the
  // straggler is killed once the ledger settles. Short TTL keeps the
  // stall detector's 2*TTL window test-sized.
  std::string Out, Err;
  ASSERT_EQ(runFleet("CSC_FLEET_TEST_STOP_TASK=1 ", "--lease-ttl 300 ",
                     Out, Err),
            0)
      << Err;
  EXPECT_EQ(Out, Oracle);
  EXPECT_NE(Err.find("straggler"), std::string::npos) << Err;
}

TEST_F(FleetFaultTest, MissingProgramLoadFailureIsAnOrdinaryTaskOutcome) {
  // Regression: runPullWorker used to read Runs[S].StoreKey after a
  // failed program load had cleared the entry's Runs vector —
  // out-of-bounds indexing that crash-looped every worker touching the
  // task until quarantine failed the fleet for an ordinary load
  // failure. The tasks must instead complete with an empty key, nothing
  // may be quarantined, and the aggregate (load diagnostics included)
  // must match the storeless oracle byte for byte, exit code and all.
  std::ofstream M(Manifest, std::ios::trunc);
  M << "{ \"entries\": [\n"
       "  { \"label\": \"gone\", \"program\": \"" CSC_EXAMPLES_DIR
       "/no-such-program.jir\", \"specs\": [\"ci\", \"csc\", \"2obj\"] },\n"
       "  { \"label\": \"ct\", \"program\": \"" CSC_EXAMPLES_DIR
       "/containers.jir\", \"specs\": [\"ci\", \"csc\", \"2obj\"] }\n"
       "] }\n";
  ASSERT_TRUE(M.good());
  M.close();

  std::string LocalOracle, Err;
  int OracleRC = runShell(std::string("'") + CSC_CSCPTA_PATH + "' --batch " +
                              Manifest + " --json",
                          Root, LocalOracle, Err);
  EXPECT_EQ(OracleRC, 1) << Err; // a load failure is a reported nonzero
  ASSERT_FALSE(LocalOracle.empty());

  std::string Out;
  EXPECT_EQ(runFleet("", "", Out, Err), OracleRC) << Err;
  EXPECT_EQ(Out, LocalOracle);
  EXPECT_EQ(Err.find("error: task"), std::string::npos) << Err;
  EXPECT_NE(Err.find("tasks 6 done, 0 quarantined"), std::string::npos)
      << Err;
}

TEST_F(FleetFaultTest, UnusableLedgerFallsBackToInProcessExecution) {
  // ledger.bin pre-created as a *directory*: the atomic rename in
  // TaskLedger::create fails, the fleet never starts, and the
  // coordinator computes the whole batch itself — same bytes, exit 0.
  ASSERT_EQ(::mkdir((Root + "/store").c_str(), 0755), 0);
  ASSERT_EQ(::mkdir((Root + "/store/ledger.bin").c_str(), 0755), 0);
  std::string Out, Err;
  ASSERT_EQ(runFleet("", "", Out, Err), 0) << Err;
  EXPECT_EQ(Out, Oracle);
  EXPECT_NE(Err.find("fleet task ledger unusable; running the batch "
                     "in-process"),
            std::string::npos)
      << Err;
  EXPECT_EQ(Err.find("fleet stats"), std::string::npos) << Err;
}

namespace {
void sigalrmNoop(int) {}
} // namespace

TEST_F(FleetFaultTest, SupervisorSurvivesEintrStorm) {
  // Regression: waitpid in the supervisor used to surface EINTR as "no
  // child changed state", silently dropping death observations. Hammer
  // the supervising process with SIGALRM (no SA_RESTART, so syscalls
  // really are interrupted) for the whole fleet run.
  struct sigaction SA, OldSA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = sigalrmNoop;
  SA.sa_flags = 0; // deliberately not SA_RESTART
  ASSERT_EQ(::sigaction(SIGALRM, &SA, &OldSA), 0);
  struct itimerval Timer, OldTimer;
  Timer.it_interval.tv_sec = 0;
  Timer.it_interval.tv_usec = 2000; // every 2ms
  Timer.it_value = Timer.it_interval;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &Timer, &OldTimer), 0);

  std::vector<BatchEntry> Entries;
  std::string LoadErr;
  ASSERT_TRUE(loadBatchManifest(Manifest, Entries, LoadErr)) << LoadErr;

  WorkerFleetOptions FO;
  FO.Exe = CSC_CSCPTA_PATH;
  FO.ManifestPath = Manifest;
  FO.StoreDir = Root + "/store";
  FO.Workers = 2;
  FO.BatchFingerprint = batchFingerprint(Entries);
  FO.TaskCount = static_cast<uint32_t>(countBatchTasks(Entries));
  {
    ResultStore::Options SO;
    SO.Dir = FO.StoreDir;
    ResultStore Warm(SO); // pre-create the store dir for the workers
    ASSERT_TRUE(Warm.usable()) << Warm.error();
  }
  FleetReport FR = runWorkerFleet(FO);

  // Restore signal state before asserting, so a failure can't leave the
  // rest of the binary under the alarm storm.
  ::setitimer(ITIMER_REAL, &OldTimer, nullptr);
  ::sigaction(SIGALRM, &OldSA, nullptr);

  ASSERT_TRUE(FR.LedgerOk);
  EXPECT_TRUE(FR.Final.drained());
  EXPECT_EQ(FR.Final.Done, 6u);
  EXPECT_EQ(FR.Final.Quarantined, 0u);
  // Every spawned worker's death must have been observed and classified
  // — an EINTR-dropped waitpid would leak workers into the straggler
  // killer or the fork bookkeeping.
  EXPECT_EQ(FR.CleanExits, FR.Spawned);
  EXPECT_EQ(FR.Signaled, 0u);
  EXPECT_EQ(FR.StragglersKilled, 0u);

  // The fleet's published results serve a warm in-process run that is
  // byte-identical to a storeless one.
  ResultStore::Options SO;
  SO.Dir = FO.StoreDir;
  BatchExecutor::Options BO;
  BO.Store = std::make_shared<ResultStore>(SO);
  BatchReport WarmReport = BatchExecutor(BO).run(Entries);
  EXPECT_EQ(WarmReport.StoreHits, 6u);
  EXPECT_EQ(WarmReport.aggregateJson(),
            BatchExecutor().run(Entries).aggregateJson());
}
