//===- ResultCodecTest.cpp - Binary round-trip property tests -------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The persistent store is only as trustworthy as its codec, so this suite
// pins the round-trip property the store's checksums assume: for every
// registered analysis over every example program (plus the differential
// fuzzer's seeded workloads), serialize -> deserialize -> deep-equal, and
// re-serializing the reconstruction yields byte-identical output. It also
// pins the report property warm batches rely on — a run rebuilt from its
// stored form re-serializes to the exact RunJson that was stored — and
// that truncated byte strings always fail to decode instead of crashing
// or fabricating a partial result.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRegistry.h"
#include "client/AnalysisSession.h"
#include "client/Report.h"
#include "store/ResultCodec.h"
#include "support/Rng.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace csc;

namespace {

std::string examplePath(const char *Name) {
  return std::string(CSC_EXAMPLES_DIR) + "/" + Name;
}

/// The same knob derivation as tests/fuzz/DifferentialFuzzTest.cpp: one
/// seed fully determines a workload, so codec coverage rides on programs
/// already known to exercise weird solver topologies.
WorkloadConfig fuzzConfig(uint64_t Seed) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 1);
  WorkloadConfig C;
  C.Name = "codec-fuzz-" + std::to_string(Seed);
  C.Seed = Seed;
  C.NumEntityClasses = 4 + R.nextInRange(8);
  C.WrapperDepth = 1 + R.nextInRange(3);
  C.NumFamilies = 2 + R.nextInRange(4);
  C.FamilySize = 2 + R.nextInRange(3);
  C.NumSelectors = 2 + R.nextInRange(3);
  C.NumScenarios = 3 + R.nextInRange(4);
  C.ActionsPerScenario = 6 + R.nextInRange(8);
  C.FieldDensity = 1 + R.nextInRange(3);
  C.CallChainDepth = R.nextInRange(4);
  C.ContainerMixPct = R.nextInRange(40);
  C.NumSharedHubs = R.nextInRange(3);
  C.HubMixPct = 5 + R.nextInRange(20);
  C.CopyCycleLen = R.nextBool(0.7) ? 2 + R.nextInRange(5) : 0;
  C.BombDepth = R.nextBool(0.5) ? 2 + R.nextInRange(2) : 0;
  C.BombWidth = C.BombDepth ? 2 + R.nextInRange(2) : 0;
  C.BombMultiClass = R.nextBool();
  return C;
}

/// Canonicalizes \p Spec exactly as the batch executor keys the store.
std::string canonicalOf(const AnalysisSession &S, const std::string &Spec) {
  AnalysisSpec Parsed;
  std::string Error;
  EXPECT_TRUE(parseAnalysisSpec(Spec, Parsed, Error)) << Error;
  Parsed.Name = S.registry().resolveName(Parsed.Name);
  return canonicalSpec(Parsed);
}

/// Runs \p Spec and converts the outcome to its stored form, with the
/// RunJson serialized timing-free under the canonical name — the exact
/// bytes every store client publishes.
StoredResult storedOf(AnalysisSession &S, const std::string &Spec,
                      AnalysisRun *RunOut = nullptr) {
  AnalysisRun Run = S.run(Spec);
  EXPECT_EQ(Run.Status, RunStatus::Completed)
      << Spec << ": " << Run.Error;
  Run.Name = canonicalOf(S, Spec);
  JsonWriter J;
  appendRunJson(J, Run, /*IncludeTimings=*/false);
  StoredResult Stored = storedFromRun(Run, J.take());
  if (RunOut)
    *RunOut = std::move(Run);
  return Stored;
}

/// The round-trip property: decode succeeds, every field survives, and
/// the reconstruction re-serializes to the identical bytes.
void expectRoundTrip(const StoredResult &S, const std::string &Label) {
  std::string Bytes = serializeStoredResult(S);
  ASSERT_FALSE(Bytes.empty()) << Label;
  StoredResult D;
  ASSERT_TRUE(deserializeStoredResult(Bytes, D)) << Label;
  EXPECT_EQ(D.Status, S.Status) << Label;
  EXPECT_EQ(D.Error, S.Error) << Label;
  EXPECT_EQ(D.RunJson, S.RunJson) << Label;
  EXPECT_EQ(D.SelectedMethods, S.SelectedMethods) << Label;
  EXPECT_EQ(D.CutStores, S.CutStores) << Label;
  EXPECT_EQ(D.CutReturns, S.CutReturns) << Label;
  EXPECT_EQ(D.ShortcutEdges, S.ShortcutEdges) << Label;
  EXPECT_EQ(D.InvolvedMethods, S.InvolvedMethods) << Label;
  EXPECT_EQ(D.Metrics.FailCasts, S.Metrics.FailCasts) << Label;
  EXPECT_EQ(D.Metrics.ReachMethods, S.Metrics.ReachMethods) << Label;
  EXPECT_EQ(D.Metrics.PolyCalls, S.Metrics.PolyCalls) << Label;
  EXPECT_EQ(D.Metrics.CallEdges, S.Metrics.CallEdges) << Label;
  EXPECT_TRUE(resultsEqual(D.Result, S.Result)) << Label;
  EXPECT_EQ(serializeStoredResult(D), Bytes)
      << Label << ": re-serialization is not byte-identical";
}

/// Every strict prefix of a valid encoding must fail to decode, and so
/// must the encoding with trailing garbage (the codec demands atEnd).
void expectPrefixSafety(const std::string &Bytes, const std::string &Label) {
  // Dense sweep near both ends, sampled stride through the middle: the
  // interesting cuts are header boundaries and the final length checks.
  size_t Stride = std::max<size_t>(1, Bytes.size() / 97);
  for (size_t Cut = 0; Cut < Bytes.size();
       Cut += (Cut < 64 || Cut + 64 > Bytes.size()) ? 1 : Stride) {
    StoredResult D;
    EXPECT_FALSE(deserializeStoredResult(Bytes.substr(0, Cut), D))
        << Label << ": truncation at byte " << Cut << " decoded";
  }
  StoredResult D;
  EXPECT_FALSE(deserializeStoredResult(Bytes + '\0', D))
      << Label << ": trailing garbage decoded";
}

} // namespace

TEST(ResultCodecTest, EverySpecOverEveryExampleRoundTrips) {
  for (const char *Example : {"figure1.jir", "containers.jir"}) {
    std::vector<std::string> Diags;
    std::unique_ptr<AnalysisSession> S =
        AnalysisSession::fromFiles({examplePath(Example)}, {}, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << Example << ": " << D;
    ASSERT_NE(S, nullptr);
    for (const auto &[Name, Desc] : AnalysisRegistry::global().list()) {
      (void)Desc;
      std::string Label = std::string(Example) + "/" + Name;
      expectRoundTrip(storedOf(*S, Name), Label);
    }
  }
}

TEST(ResultCodecTest, FuzzWorkloadsRoundTrip) {
  for (uint64_t Seed : {11ULL, 23ULL, 37ULL, 59ULL, 71ULL, 97ULL, 113ULL,
                        131ULL}) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(fuzzConfig(Seed), Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << "seed " << Seed << ": " << D;
    ASSERT_NE(P, nullptr);
    AnalysisSession S(*P);
    for (const char *Spec : {"ci", "csc", "2obj"}) {
      std::string Label =
          std::string(Spec) + "/seed" + std::to_string(Seed);
      expectRoundTrip(storedOf(S, Spec), Label);
    }
  }
}

TEST(ResultCodecTest, ReconstructedRunReserializesToStoredReport) {
  // A warm batch splices the stored RunJson verbatim; a warm single run
  // rebuilds the AnalysisRun and re-serializes it. Both paths must agree:
  // appendRunJson over the reconstruction == the stored bytes.
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::fromFiles(
      {examplePath("figure1.jir")}, {}, Diags);
  ASSERT_NE(S, nullptr);
  for (const auto &[Name, Desc] : AnalysisRegistry::global().list()) {
    (void)Desc;
    StoredResult Stored = storedOf(*S, Name);
    AnalysisRun Rebuilt = runFromStored(Stored);
    Rebuilt.Name = canonicalOf(*S, Name);
    JsonWriter J;
    appendRunJson(J, Rebuilt, /*IncludeTimings=*/false);
    EXPECT_EQ(J.take(), Stored.RunJson) << Name;
  }
}

TEST(ResultCodecTest, TruncatedAndPaddedBytesNeverDecode) {
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::fromFiles(
      {examplePath("containers.jir")}, {}, Diags);
  ASSERT_NE(S, nullptr);
  for (const char *Spec : {"ci", "csc", "zipper-e"}) {
    StoredResult Stored = storedOf(*S, Spec);
    expectPrefixSafety(serializeStoredResult(Stored), Spec);
  }
}

TEST(ResultCodecTest, PTAResultRoundTripsStandalone) {
  // The PTAResult sub-codec on its own, against the raw session result
  // (no storedFromRun normalization in between).
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(fuzzConfig(23), Diags);
  ASSERT_NE(P, nullptr);
  AnalysisSession S(*P);
  AnalysisRun Run = S.run("csc");
  ASSERT_EQ(Run.Status, RunStatus::Completed) << Run.Error;

  BinaryWriter W;
  serializePTAResult(Run.Result, W);
  std::string Bytes = W.take();
  BinaryReader R(Bytes);
  PTAResult Out;
  ASSERT_TRUE(deserializePTAResult(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_TRUE(resultsEqual(Run.Result, Out));

  BinaryWriter W2;
  serializePTAResult(Out, W2);
  EXPECT_EQ(W2.take(), Bytes);
}
