//===- AnalysisServerTest.cpp - NDJSON protocol & answer identity ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The analysis server's request/response protocol: query answers across
// modes (demand slice, warm resume, cached full run) must be
// byte-identical outside the "meta" object to a fresh oracle server that
// loaded the post-delta program from scratch — the contract CI's server
// smoke job diffs. Also pins delta classification (warm vs full), the
// rejected-delta transaction guarantee, the stats document, the serve()
// loop, and the exact error diagnostics documented in docs/CLI.md.
//
//===----------------------------------------------------------------------===//

#include "server/AnalysisServer.h"

#include "TestUtil.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace csc;
using csc::test::figure1Source;

namespace {

// Grows figure1: a fresh class plus appended entry statements routing a
// third Item through it. Additive and dispatch-preserving (warm).
const char *WarmDelta =
    "class Crate {\n"
    "  field it: Item;\n"
    "  method put(i: Item): Item {\n"
    "    var r: Item;\n"
    "    this.it = i;\n"
    "    r = this.it;\n"
    "    return r;\n"
    "  }\n"
    "}\n"
    "extend class Main {\n"
    "  append method main {\n"
    "    var k1: Crate;\n"
    "    var i3: Item;\n"
    "    var got: Item;\n"
    "    k1 = new Crate;\n"
    "    i3 = new Item;\n"
    "    got = call k1.put(i3);\n"
    "    call c1.setItem(i3);\n"
    "  }\n"
    "}\n";

// A new method on the pre-existing Carton: dispatch-changing, not warm.
const char *DispatchDelta = "extend class Carton {\n"
                            "  method wipe(): void {\n"
                            "  }\n"
                            "}\n";

std::unique_ptr<AnalysisServer>
makeServer(const std::vector<std::pair<std::string, std::string>> &Sources,
           AnalysisServer::Options Opts = {}) {
  auto S = std::make_unique<AnalysisServer>(std::move(Opts));
  std::vector<std::string> Diags;
  if (!S->load(Sources, Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << D;
    return nullptr;
  }
  return S;
}

JsonValue parsed(const std::string &Response) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Response, V, Error))
      << Error << " in: " << Response;
  return V;
}

bool okOf(const JsonValue &V) {
  const JsonValue *Ok = V.get("ok");
  return Ok && Ok->isBool() && Ok->B;
}

std::string errorOf(const JsonValue &V) {
  const JsonValue *E = V.get("error");
  return E && E->isString() ? E->Str : "";
}

/// Drops the trailing "meta" member — the diagnostics CI strips before
/// diffing answers (meta is always the last member of a query response).
std::string stripMeta(const std::string &Response) {
  size_t Pos = Response.find(",\"meta\":");
  if (Pos == std::string::npos)
    return Response;
  return Response.substr(0, Pos) + "}";
}

} // namespace

//===----------------------------------------------------------------------===//
// Query answers and modes
//===----------------------------------------------------------------------===//

TEST(AnalysisServerTest, PointsToAnswersAgreeAcrossModes) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  // The very first query on an eligible spec is answered demand-driven.
  std::string Auto = S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})");
  JsonValue AutoV = parsed(Auto);
  ASSERT_TRUE(okOf(AutoV)) << Auto;
  EXPECT_EQ(AutoV.get("meta")->get("mode")->Str, "demand");
  EXPECT_EQ(AutoV.get("spec")->Str, "ci");
  EXPECT_EQ(AutoV.get("size")->Num, 2); // ci merges both cartons' items
  EXPECT_EQ(AutoV.get("objects")->Arr.size(), 2u);
  EXPECT_EQ(AutoV.get("objects")->Arr[0].get("type")->Str, "Item");

  std::string Full = S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":"full"})");
  EXPECT_EQ(parsed(Full).get("meta")->get("mode")->Str, "full");
  std::string Demand = S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":"demand"})");
  EXPECT_EQ(stripMeta(Full), stripMeta(Demand));
  EXPECT_EQ(stripMeta(Auto), stripMeta(Full));

  // Context-sensitive specs answer through the same machinery, precisely.
  std::string Cs = S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","spec":"2obj"})");
  JsonValue CsV = parsed(Cs);
  ASSERT_TRUE(okOf(CsV)) << Cs;
  EXPECT_EQ(CsV.get("spec")->Str, "2obj");
  EXPECT_EQ(CsV.get("size")->Num, 1);
}

TEST(AnalysisServerTest, MayAliasAndCalleesQueries) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  JsonValue A = parsed(S->handleLine(
      R"({"op":"query","kind":"may-alias","a":"Main.main.result1","b":"Main.main.item1"})"));
  ASSERT_TRUE(okOf(A));
  EXPECT_TRUE(A.get("alias")->B); // ci: result1 ⊇ {item1, item2}
  JsonValue B = parsed(S->handleLine(
      R"({"op":"query","kind":"may-alias","a":"Main.main.c1","b":"Main.main.item1"})"));
  ASSERT_TRUE(okOf(B));
  EXPECT_FALSE(B.get("alias")->B); // a Carton is never an Item

  JsonValue C = parsed(S->handleLine(
      R"({"op":"query","kind":"callees","method":"Main.main"})"));
  ASSERT_TRUE(okOf(C));
  EXPECT_TRUE(C.get("reachable")->B);
  const JsonValue *Sites = C.get("sites");
  ASSERT_TRUE(Sites && Sites->isArray());
  ASSERT_EQ(Sites->Arr.size(), 4u); // four call sites in main
  for (const JsonValue &Site : Sites->Arr) {
    ASSERT_EQ(Site.get("callees")->Arr.size(), 1u);
    const std::string &Callee = Site.get("callees")->Arr[0].Str;
    EXPECT_TRUE(Callee == "Carton.setItem/1" ||
                Callee == "Carton.getItem/0")
        << Callee;
  }
}

//===----------------------------------------------------------------------===//
// add-delta: classification, transactionality, answer identity
//===----------------------------------------------------------------------===//

TEST(AnalysisServerTest, AdditiveDeltaWarmStartsAndMatchesOracle) {
  auto Warm = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(Warm, nullptr);
  // Solve fully first so the post-delta query exercises the warm resume
  // (a cold spec would be answered demand-driven instead).
  for (const char *Spec : {"ci", "2obj"}) {
    std::string Line =
        std::string(R"({"op":"query","kind":"points-to",)") +
        R"("var":"Main.main.result1","mode":"full","spec":")" + Spec +
        R"("})";
    ASSERT_TRUE(okOf(parsed(Warm->handleLine(Line))));
  }

  std::string DeltaReq = R"({"op":"add-delta","name":"d1","source":")";
  {
    JsonWriter W; // JSON-escape the delta source through the writer
    W.beginObject()
        .kv("op", "add-delta")
        .kv("name", "d1")
        .kv("source", WarmDelta)
        .endObject();
    DeltaReq = W.take();
  }
  JsonValue D = parsed(Warm->handleLine(DeltaReq));
  ASSERT_TRUE(okOf(D));
  EXPECT_EQ(D.get("version")->Num, 2);
  EXPECT_TRUE(D.get("warm_start")->B);
  EXPECT_EQ(D.get("new_types")->Num, 1);
  EXPECT_EQ(D.get("new_methods")->Num, 1);
  EXPECT_GT(D.get("new_stmts")->Num, 0);
  EXPECT_EQ(Warm->version(), 2u);

  // Oracle: a fresh server that loaded base + delta from scratch.
  auto Oracle =
      makeServer({{"fig.jir", figure1Source()}, {"d1", WarmDelta}});
  ASSERT_NE(Oracle, nullptr);

  const char *Queries[] = {
      // result1 now also sees i3 through the appended setItem call.
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})",
      R"({"op":"query","kind":"points-to","var":"Main.main.got","spec":"2obj"})",
      R"({"op":"query","kind":"may-alias","a":"Main.main.got","b":"Main.main.i3"})",
      R"({"op":"query","kind":"callees","method":"Main.main","spec":"2obj"})",
      R"({"op":"query","kind":"callees","method":"Crate.put"})",
  };
  for (const char *Q : Queries) {
    std::string A = Warm->handleLine(Q);
    std::string B = Oracle->handleLine(Q);
    ASSERT_TRUE(okOf(parsed(A))) << A;
    EXPECT_EQ(stripMeta(A), stripMeta(B)) << Q;
  }

  // The ci answer above came from a warm resume, not a re-solve.
  JsonValue R = parsed(Warm->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})"));
  EXPECT_EQ(R.get("meta")->get("mode")->Str, "full");
  EXPECT_TRUE(R.get("meta")->get("warm_start")->B);
  EXPECT_EQ(R.get("size")->Num, 3);
}

TEST(AnalysisServerTest, DispatchChangingDeltaForcesFullResolve) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(okOf(parsed(S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":"full"})"))));
  JsonWriter W;
  W.beginObject()
      .kv("op", "add-delta")
      .kv("source", DispatchDelta)
      .endObject();
  JsonValue D = parsed(S->handleLine(W.take()));
  ASSERT_TRUE(okOf(D));
  EXPECT_FALSE(D.get("warm_start")->B);

  JsonValue Q = parsed(S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})"));
  ASSERT_TRUE(okOf(Q));
  EXPECT_FALSE(Q.get("meta")->get("warm_start")->B);
  EXPECT_EQ(Q.get("size")->Num, 2);
}

TEST(AnalysisServerTest, RejectedDeltaLeavesTheSessionUntouched) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  std::string Before = stripMeta(S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})"));

  // References an unknown class: fails the trial parse.
  JsonValue Bad = parsed(S->handleLine(
      R"({"op":"add-delta","source":"extend class Nope { }"})"));
  EXPECT_FALSE(okOf(Bad));
  EXPECT_EQ(errorOf(Bad), "delta rejected");
  const JsonValue *Errs = Bad.get("errors");
  ASSERT_TRUE(Errs && Errs->isArray());
  EXPECT_FALSE(Errs->Arr.empty());

  // Nothing changed: same version, same program, same answers.
  EXPECT_EQ(S->version(), 1u);
  JsonValue Stats = parsed(S->handleLine(R"({"op":"stats"})"));
  EXPECT_EQ(Stats.get("deltas")->Num, 0);
  std::string After = stripMeta(S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})"));
  EXPECT_EQ(Before, After);
}

//===----------------------------------------------------------------------===//
// stats, serve loop, budgets
//===----------------------------------------------------------------------===//

TEST(AnalysisServerTest, StatsDocumentTracksSpecsAndSolves) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  // demand (cold auto), then a full solve, then a csc fallback run.
  S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1"})");
  S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":"full"})");
  S->handleLine(
      R"({"op":"query","kind":"points-to","var":"Main.main.result1","spec":"csc"})");

  JsonValue V = parsed(S->handleLine(R"({"op":"stats"})"));
  ASSERT_TRUE(okOf(V));
  EXPECT_EQ(V.get("version")->Num, 1);
  EXPECT_EQ(V.get("program")->get("stmts")->Num,
            static_cast<double>(S->program().numStmts()));
  const JsonValue *Specs = V.get("specs");
  ASSERT_TRUE(Specs && Specs->isArray());
  ASSERT_EQ(Specs->Arr.size(), 2u); // "ci" and "csc", sorted
  const JsonValue &Ci = Specs->Arr[0];
  EXPECT_EQ(Ci.get("spec")->Str, "ci");
  EXPECT_TRUE(Ci.get("incremental")->B);
  EXPECT_EQ(Ci.get("demand_solves")->Num, 1);
  EXPECT_EQ(Ci.get("full_solves")->Num, 1);
  EXPECT_EQ(Ci.get("warm_resumes")->Num, 0);
  EXPECT_TRUE(Ci.get("current")->B);
  const JsonValue &Csc = Specs->Arr[1];
  EXPECT_EQ(Csc.get("spec")->Str, "csc");
  EXPECT_FALSE(Csc.get("incremental")->B);
  EXPECT_EQ(Csc.get("full_solves")->Num, 1);
  EXPECT_TRUE(Csc.get("current")->B);
}

TEST(AnalysisServerTest, ServeLoopStopsAtShutdown) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  std::istringstream In(
      "{\"op\":\"query\",\"kind\":\"points-to\",\"var\":\"Main.main.result1\"}\n"
      "\n" // blank lines are skipped, not answered
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n"); // never reached
  std::ostringstream Out;
  EXPECT_EQ(S->serve(In, Out), 0);
  std::istringstream Lines(Out.str());
  std::vector<std::string> Responses;
  for (std::string L; std::getline(Lines, L);)
    Responses.push_back(L);
  ASSERT_EQ(Responses.size(), 3u);
  EXPECT_TRUE(okOf(parsed(Responses[0])));
  EXPECT_EQ(parsed(Responses[1]).get("op")->Str, "stats");
  EXPECT_EQ(parsed(Responses[2]).get("op")->Str, "shutdown");
}

TEST(AnalysisServerTest, ExhaustedBudgetIsReportedNotAnswered) {
  AnalysisServer::Options O;
  O.WorkBudget = 1;
  auto S = makeServer({{"fig.jir", figure1Source()}}, O);
  ASSERT_NE(S, nullptr);
  for (const char *Mode : {"demand", "full"}) {
    JsonValue V = parsed(S->handleLine(
        std::string(
            R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":")") +
        Mode + R"("})"));
    EXPECT_FALSE(okOf(V)) << Mode;
    EXPECT_EQ(errorOf(V), "analysis budget exhausted") << Mode;
  }
}

//===----------------------------------------------------------------------===//
// Pinned error diagnostics (documented in docs/CLI.md)
//===----------------------------------------------------------------------===//

TEST(AnalysisServerTest, PinnedErrorDiagnostics) {
  auto S = makeServer({{"fig.jir", figure1Source()}});
  ASSERT_NE(S, nullptr);
  auto ErrorFor = [&](const std::string &Line) {
    JsonValue V = parsed(S->handleLine(Line));
    EXPECT_FALSE(okOf(V)) << Line;
    return errorOf(V);
  };

  EXPECT_EQ(ErrorFor("nonsense").rfind("parse error: ", 0), 0u);
  EXPECT_EQ(ErrorFor("[1,2]"), "request is not a JSON object");
  EXPECT_EQ(ErrorFor(R"({"kind":"points-to"})"),
            "missing or non-string 'op'");
  EXPECT_EQ(ErrorFor(R"({"op":"reload"})"), "unknown op 'reload'");
  EXPECT_EQ(ErrorFor(R"({"op":"query","kind":"pt","var":"x"})"),
            "unknown query kind 'pt'");
  EXPECT_EQ(ErrorFor(R"({"op":"query","kind":"points-to"})"),
            "missing or non-string 'var'");
  EXPECT_EQ(
      ErrorFor(
          R"({"op":"query","kind":"points-to","var":"Main.main.nope"})"),
      "unknown variable 'Main.main.nope'");
  EXPECT_EQ(ErrorFor(R"({"op":"query","kind":"callees","method":"Main.nope"})"),
            "unknown method 'Main.nope'");
  EXPECT_EQ(
      ErrorFor(
          R"({"op":"query","kind":"points-to","var":"Main.main.result1","mode":"lazy"})"),
      "unknown query mode 'lazy'");
  EXPECT_EQ(
      ErrorFor(
          R"({"op":"query","kind":"points-to","var":"Main.main.result1","spec":"nope"})")
          .rfind("unknown analysis 'nope'", 0),
      0u);
  EXPECT_EQ(
      ErrorFor(
          R"({"op":"query","kind":"points-to","var":"Main.main.result1","spec":"csc","mode":"demand"})"),
      "demand mode is not available for spec 'csc'");
  EXPECT_EQ(ErrorFor(R"({"op":"add-delta"})"),
            "missing or non-string 'source'");
}
