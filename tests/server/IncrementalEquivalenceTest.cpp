//===- IncrementalEquivalenceTest.cpp - warm resume vs from-scratch -------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The analysis server's equivalence contract: after an additive program
// delta, a warm-started IncrementalSolver (Solver::resolveIncrement over
// the retained fixpoint) must produce a PTAResult identical to a
// from-scratch solve of the post-delta program — every points-to
// projection, the call graph, and the state-determined solver counters,
// under context-insensitive and context-sensitive specs, with cycle
// elimination and parallel sweeps both on and off. Pinned on the real
// example programs (scripted delta sequences) and the scale-xs/scale-s
// workload tiers, plus the forced full re-solve path taken for
// non-monotone (dispatch-changing) deltas.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRegistry.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "server/IncrementalSolver.h"
#include "stdlib/Stdlib.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace csc;

namespace {

std::string readExample(const std::string &File) {
  std::ifstream In(std::string(CSC_EXAMPLES_DIR) + "/" + File);
  if (!In) {
    ADD_FAILURE() << "cannot open example " << File;
    return "";
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

std::unique_ptr<Program>
parseAll(const std::vector<std::pair<std::string, std::string>> &Named,
         bool WithStdlib) {
  auto P = std::make_unique<Program>();
  std::vector<std::pair<std::string, std::string>> All;
  if (WithStdlib)
    All.emplace_back("<stdlib>", stdlibSource());
  All.insert(All.end(), Named.begin(), Named.end());
  std::vector<std::string> Diags;
  if (!parseProgram(*P, All, Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << D;
    return nullptr;
  }
  return P;
}

std::unique_ptr<Program> buildTier(const char *Name) {
  for (const WorkloadConfig &C : scalingSuite()) {
    if (C.Name != Name)
      continue;
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << Name << ": " << D;
    return P;
  }
  ADD_FAILURE() << "no such tier: " << Name;
  return nullptr;
}

AnalysisRecipe recipeFor(const std::string &Spec) {
  AnalysisRecipe R;
  std::string Error;
  EXPECT_TRUE(AnalysisRegistry::global().build(Spec, R, Error))
      << Spec << ": " << Error;
  return R;
}

/// A program-agnostic additive delta: a fresh class (so no pre-existing
/// object can dispatch into it — warm-startable by the server's
/// classification) plus statements appended to the entry method that
/// allocate, store through, and call into it.
std::string deltaFor(const Program &P, int N) {
  const MethodInfo &Entry = P.method(P.entry());
  std::string Cls = "DeltaNode" + std::to_string(N);
  std::string V = "dv" + std::to_string(N);
  std::ostringstream S;
  S << "class " << Cls << " {\n"
    << "  field next: " << Cls << ";\n"
    << "  method link(n: " << Cls << "): " << Cls << " {\n"
    << "    var r: " << Cls << ";\n"
    << "    this.next = n;\n"
    << "    r = this.next;\n"
    << "    return r;\n"
    << "  }\n"
    << "}\n"
    << "extend class " << P.type(Entry.Owner).Name << " {\n"
    << "  append method " << Entry.Name << " {\n"
    << "    var " << V << "a: " << Cls << ";\n"
    << "    var " << V << "b: " << Cls << ";\n"
    << "    var " << V << "c: " << Cls << ";\n"
    << "    " << V << "a = new " << Cls << ";\n"
    << "    " << V << "b = new " << Cls << ";\n"
    << "    " << V << "c = call " << V << "a.link(" << V << "b);\n"
    << "  }\n"
    << "}\n";
  return S.str();
}

/// Parses \p Source into the live \p P — the server's add-delta path —
/// and returns the server's monotonicity classification (false when a
/// new method landed on a pre-existing type).
bool applyDelta(Program &P, const std::string &Source,
                const std::string &Name) {
  uint32_t OldTypes = P.numTypes();
  uint32_t OldMethods = P.numMethods();
  Parser LP(P);
  bool Ok = LP.parseSource(Source, Name) && LP.finalize();
  for (const std::string &D : LP.diagnostics())
    ADD_FAILURE() << Name << ": " << D;
  EXPECT_TRUE(Ok);
  P.invalidateHierarchyCaches();
  for (MethodId M = OldMethods; M < P.numMethods(); ++M)
    if (P.method(M).Owner < OldTypes)
      return false;
  return true;
}

/// Asserts two completed results are identical: every projection and
/// every state-determined solver counter. (WorklistPops and the SCC
/// diagnostics are scheduling-dependent and excluded, as in result JSON.)
void expectIdenticalResults(const Program &P, const PTAResult &A,
                            const PTAResult &B, const std::string &Label) {
  ASSERT_FALSE(A.Exhausted) << Label;
  ASSERT_FALSE(B.Exhausted) << Label;
  for (VarId V = 0; V < P.numVars(); ++V)
    EXPECT_EQ(A.pt(V).toVector(), B.pt(V).toVector())
        << Label << ": var " << P.var(V).Name;
  auto FieldKeys = [](const PTAResult &R) {
    std::vector<std::pair<uint32_t, uint32_t>> Keys;
    for (const auto &KV : R.FieldPts)
      Keys.push_back(KV.first);
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  };
  std::vector<std::pair<uint32_t, uint32_t>> Union = FieldKeys(A);
  for (const auto &K : FieldKeys(B))
    Union.push_back(K);
  std::sort(Union.begin(), Union.end());
  Union.erase(std::unique(Union.begin(), Union.end()), Union.end());
  for (const auto &[O, F] : Union)
    EXPECT_EQ(A.ptField(O, F).toVector(), B.ptField(O, F).toVector())
        << Label << ": field (" << O << ", " << F << ")";
  for (ObjId O = 0; O < P.numObjs(); ++O)
    EXPECT_EQ(A.ptArray(O).toVector(), B.ptArray(O).toVector())
        << Label << ": array of obj " << O;
  std::vector<uint32_t> StaticKeys;
  for (const auto &KV : A.StaticPts)
    StaticKeys.push_back(KV.first);
  for (const auto &KV : B.StaticPts)
    StaticKeys.push_back(KV.first);
  std::sort(StaticKeys.begin(), StaticKeys.end());
  StaticKeys.erase(std::unique(StaticKeys.begin(), StaticKeys.end()),
                   StaticKeys.end());
  for (uint32_t F : StaticKeys)
    EXPECT_EQ(A.ptStatic(F).toVector(), B.ptStatic(F).toVector())
        << Label << ": static field " << F;
  // Sorted by the projection step, so plain equality pins byte-identity.
  EXPECT_EQ(A.CalleesPerSite, B.CalleesPerSite) << Label;
  EXPECT_EQ(A.Reachable, B.Reachable) << Label;
  EXPECT_EQ(A.NumCallEdgesCI, B.NumCallEdgesCI) << Label;
  EXPECT_EQ(A.Stats.PtsInsertions, B.Stats.PtsInsertions) << Label;
  EXPECT_EQ(A.Stats.PFGEdges, B.Stats.PFGEdges) << Label;
  EXPECT_EQ(A.Stats.CallEdgesCS, B.Stats.CallEdgesCS) << Label;
  EXPECT_EQ(A.Stats.NumPtrs, B.Stats.NumPtrs) << Label;
  EXPECT_EQ(A.Stats.NumCSObjs, B.Stats.NumCSObjs) << Label;
  EXPECT_EQ(A.Stats.NumContexts, B.Stats.NumContexts) << Label;
  EXPECT_EQ(A.Stats.ReachableCS, B.Stats.ReachableCS) << Label;
  EXPECT_EQ(A.Stats.ReachableCI, B.Stats.ReachableCI) << Label;
}

/// The spec matrix the contract is pinned under.
std::vector<std::string> specMatrix() {
  std::vector<std::string> Specs;
  for (const char *Name : {"ci", "2obj"})
    for (const char *Scc : {"1", "0"})
      for (const char *Par : {"1", "4"})
        Specs.push_back(std::string(Name) + ";scc=" + Scc + ";par=" + Par);
  return Specs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Examples: single delta, full spec matrix
//===----------------------------------------------------------------------===//

TEST(IncrementalEquivalenceTest, WarmResumeMatchesFromScratchOnExamples) {
  for (const char *File : {"figure1.jir", "containers.jir"}) {
    std::string Base = readExample(File);
    ASSERT_FALSE(Base.empty());
    for (const std::string &Spec : specMatrix()) {
      std::string Label = std::string(File) + "/" + Spec;
      auto WarmP = parseAll({{File, Base}}, /*WithStdlib=*/true);
      ASSERT_NE(WarmP, nullptr) << Label;
      AnalysisRecipe R = recipeFor(Spec);
      ASSERT_TRUE(IncrementalSolver::eligible(R)) << Label;
      IncrementalSolver Warm(*WarmP, R, IncrementalSolver::Options());
      Warm.ensureCurrent();
      EXPECT_EQ(Warm.fullSolves(), 1u) << Label;

      std::string Delta = deltaFor(*WarmP, 1);
      ASSERT_TRUE(applyDelta(*WarmP, Delta, "<d1>")) << Label;
      Warm.noteDelta(/*CanWarmStart=*/true);
      EXPECT_FALSE(Warm.current()) << Label;
      const PTAResult &RW = Warm.ensureCurrent();
      EXPECT_TRUE(Warm.lastWasWarm()) << Label;
      EXPECT_EQ(Warm.warmResumes(), 1u) << Label;
      EXPECT_EQ(Warm.fullSolves(), 1u) << Label;

      auto FreshP =
          parseAll({{File, Base}, {"<d1>", Delta}}, /*WithStdlib=*/true);
      ASSERT_NE(FreshP, nullptr) << Label;
      // The delta parse assigned exactly the ids a from-scratch parse of
      // the concatenation does — the property the contract rests on.
      ASSERT_EQ(printProgram(*WarmP), printProgram(*FreshP)) << Label;
      IncrementalSolver Fresh(*FreshP, R, IncrementalSolver::Options());
      expectIdenticalResults(*WarmP, RW, Fresh.ensureCurrent(), Label);
    }
  }
}

//===----------------------------------------------------------------------===//
// Scripted delta sequences: each step must stay equivalent
//===----------------------------------------------------------------------===//

TEST(IncrementalEquivalenceTest, DeltaSequenceStaysEquivalentAtEveryStep) {
  std::string Base = readExample("figure1.jir");
  ASSERT_FALSE(Base.empty());
  for (const char *Spec : {"ci;scc=1;par=1", "2obj;scc=0;par=4"}) {
    auto WarmP = parseAll({{"figure1.jir", Base}}, /*WithStdlib=*/true);
    ASSERT_NE(WarmP, nullptr);
    AnalysisRecipe R = recipeFor(Spec);
    IncrementalSolver Warm(*WarmP, R, IncrementalSolver::Options());
    Warm.ensureCurrent();

    std::vector<std::pair<std::string, std::string>> Sources = {
        {"figure1.jir", Base}};
    for (int K = 1; K <= 3; ++K) {
      std::string Label =
          std::string(Spec) + "/delta-" + std::to_string(K);
      std::string Delta = deltaFor(*WarmP, K);
      std::string Name = "<d" + std::to_string(K) + ">";
      ASSERT_TRUE(applyDelta(*WarmP, Delta, Name)) << Label;
      Sources.emplace_back(Name, Delta);
      Warm.noteDelta(/*CanWarmStart=*/true);
      const PTAResult &RW = Warm.ensureCurrent();
      EXPECT_EQ(Warm.warmResumes(), static_cast<uint64_t>(K)) << Label;

      auto FreshP = parseAll(Sources, /*WithStdlib=*/true);
      ASSERT_NE(FreshP, nullptr) << Label;
      IncrementalSolver Fresh(*FreshP, R, IncrementalSolver::Options());
      expectIdenticalResults(*WarmP, RW, Fresh.ensureCurrent(), Label);
    }
  }
}

//===----------------------------------------------------------------------===//
// Workload tiers: warm resume at scale, scc/par on and off
//===----------------------------------------------------------------------===//

namespace {

void expectTierEquivalence(const char *Tier,
                           const std::vector<const char *> &Specs) {
  for (const char *Spec : Specs) {
    std::string Label = std::string(Tier) + "/" + Spec;
    auto WarmP = buildTier(Tier);
    ASSERT_NE(WarmP, nullptr) << Label;
    AnalysisRecipe R = recipeFor(Spec);
    IncrementalSolver Warm(*WarmP, R, IncrementalSolver::Options());
    Warm.ensureCurrent();

    std::string Delta = deltaFor(*WarmP, 1);
    ASSERT_TRUE(applyDelta(*WarmP, Delta, "<d1>")) << Label;
    Warm.noteDelta(/*CanWarmStart=*/true);
    const PTAResult &RW = Warm.ensureCurrent();
    EXPECT_TRUE(Warm.lastWasWarm()) << Label;

    // The workload builder is deterministic: a second build plus the same
    // delta is the from-scratch post-delta program.
    auto FreshP = buildTier(Tier);
    ASSERT_NE(FreshP, nullptr) << Label;
    ASSERT_TRUE(applyDelta(*FreshP, Delta, "<d1>")) << Label;
    ASSERT_EQ(printProgram(*WarmP), printProgram(*FreshP)) << Label;
    IncrementalSolver Fresh(*FreshP, R, IncrementalSolver::Options());
    expectIdenticalResults(*WarmP, RW, Fresh.ensureCurrent(), Label);
  }
}

} // namespace

TEST(IncrementalEquivalenceTest, ScaleXsWarmResumeMatchesFromScratch) {
  expectTierEquivalence("scale-xs", {"ci;scc=1;par=4", "2obj;scc=0;par=1"});
}

TEST(IncrementalEquivalenceTest, ScaleSWarmResumeMatchesFromScratch) {
  expectTierEquivalence("scale-s", {"ci;scc=0;par=4", "2obj;scc=1;par=4"});
}

//===----------------------------------------------------------------------===//
// Non-monotone deltas force (and survive) a full re-solve
//===----------------------------------------------------------------------===//

TEST(IncrementalEquivalenceTest, NonMonotoneDeltaForcesFullResolve) {
  std::string Base = readExample("figure1.jir");
  ASSERT_FALSE(Base.empty());
  auto WarmP = parseAll({{"figure1.jir", Base}}, /*WithStdlib=*/true);
  ASSERT_NE(WarmP, nullptr);
  AnalysisRecipe R = recipeFor("2obj");
  IncrementalSolver Warm(*WarmP, R, IncrementalSolver::Options());
  Warm.ensureCurrent();

  // A new method on a pre-existing class: the server classifies this as
  // dispatch-changing, so the resident fixpoint must be discarded.
  std::string Delta = "extend class Carton {\n"
                      "  method reset(): Item {\n"
                      "    var r: Item;\n"
                      "    r = new Item;\n"
                      "    this.item = r;\n"
                      "    return r;\n"
                      "  }\n"
                      "}\n"
                      "extend class Main {\n"
                      "  append method main {\n"
                      "    var fresh: Item;\n"
                      "    fresh = call c1.reset();\n"
                      "  }\n"
                      "}\n";
  EXPECT_FALSE(applyDelta(*WarmP, Delta, "<d1>"));
  Warm.noteDelta(/*CanWarmStart=*/false);
  const PTAResult &RW = Warm.ensureCurrent();
  EXPECT_FALSE(Warm.lastWasWarm());
  EXPECT_EQ(Warm.warmResumes(), 0u);
  EXPECT_EQ(Warm.fullSolves(), 2u);

  auto FreshP =
      parseAll({{"figure1.jir", Base}, {"<d1>", Delta}}, /*WithStdlib=*/true);
  ASSERT_NE(FreshP, nullptr);
  IncrementalSolver Fresh(*FreshP, R, IncrementalSolver::Options());
  expectIdenticalResults(*WarmP, RW, Fresh.ensureCurrent(), "forced-full");
}
