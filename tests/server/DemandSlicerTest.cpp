//===- DemandSlicerTest.cpp - demand slices vs whole-program runs ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
//
// The demand-driven query path: a DemandSlicer slice solved by a
// restricted solver must reproduce the whole-program points-to set for
// every queried root (under any context selector) while enabling only a
// subset of the statements, and the call-graph core must keep dispatch
// exact even with no roots at all. The strongest case is exhaustive:
// every variable of every example program, queried one at a time, against
// the whole-program fixpoint.
//
//===----------------------------------------------------------------------===//

#include "server/DemandSlicer.h"

#include "TestUtil.h"
#include "client/AnalysisRegistry.h"
#include "server/IncrementalSolver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace csc;
using csc::test::figure1Source;
using csc::test::findMethod;
using csc::test::findVar;
using csc::test::parseWithStdlib;

namespace {

std::unique_ptr<Program> loadExample(const std::string &File) {
  std::ifstream In(std::string(CSC_EXAMPLES_DIR) + "/" + File);
  if (!In) {
    ADD_FAILURE() << "cannot open example " << File;
    return nullptr;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  auto P = std::make_unique<Program>();
  std::vector<std::string> Diags;
  if (!parseProgram(*P, {{"<stdlib>", stdlibSource()}, {File, Text.str()}},
                    Diags)) {
    for (const std::string &D : Diags)
      ADD_FAILURE() << File << ": " << D;
    return nullptr;
  }
  return P;
}

AnalysisRecipe recipeFor(const std::string &Spec) {
  AnalysisRecipe R;
  std::string Error;
  EXPECT_TRUE(AnalysisRegistry::global().build(Spec, R, Error))
      << Spec << ": " << Error;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural slice properties
//===----------------------------------------------------------------------===//

TEST(DemandSlicerTest, SliceEnablesEveryInvokeAndStaysProper) {
  auto P = loadExample("figure1.jir");
  ASSERT_NE(P, nullptr);
  MethodId Main = findMethod(*P, "Main", "main");
  ASSERT_NE(Main, InvalidId);
  VarId Result1 = findVar(*P, Main, "result1");
  ASSERT_NE(Result1, InvalidId);

  DemandSlicer DS(*P);
  DemandSlicer::Slice Slice = DS.sliceFor({Result1});
  ASSERT_EQ(Slice.Enabled.size(), P->numStmts());
  // The call-graph core: every invoke site is enabled so the restricted
  // run discovers the exact on-the-fly call graph.
  for (StmtId S = 0; S < P->numStmts(); ++S) {
    if (P->stmt(S).Kind == StmtKind::Invoke) {
      EXPECT_TRUE(Slice.Enabled[S]) << "invoke stmt " << S << " disabled";
    }
  }
  // ... and the slice is the point: a proper subset of the program.
  EXPECT_LT(Slice.EnabledStmts, P->numStmts());
  EXPECT_GT(Slice.EnabledStmts, 0u);
  uint32_t SetBits = 0;
  for (uint8_t E : Slice.Enabled)
    SetBits += E ? 1 : 0;
  EXPECT_EQ(SetBits, Slice.EnabledStmts);
  EXPECT_GT(Slice.RelevantVars, 0u);
}

//===----------------------------------------------------------------------===//
// Exhaustive per-variable equivalence with the whole-program fixpoint
//===----------------------------------------------------------------------===//

TEST(DemandSlicerTest, EveryVariableMatchesWholeProgramRun) {
  for (const char *File : {"figure1.jir", "containers.jir"}) {
    auto P = loadExample(File);
    ASSERT_NE(P, nullptr);
    DemandSlicer DS(*P);
    for (const char *Spec : {"ci", "2obj"}) {
      std::string Label = std::string(File) + "/" + Spec;
      AnalysisRecipe R = recipeFor(Spec);
      IncrementalSolver Inc(*P, R, IncrementalSolver::Options());
      const PTAResult &Full = Inc.ensureCurrent();
      ASSERT_FALSE(Full.Exhausted) << Label;
      for (VarId V = 0; V < P->numVars(); ++V) {
        DemandSlicer::Slice Slice = DS.sliceFor({V});
        PTAResult Demand = Inc.demandSolve(Slice.Enabled);
        ASSERT_FALSE(Demand.Exhausted) << Label;
        EXPECT_EQ(Demand.pt(V).toVector(), Full.pt(V).toVector())
            << Label << ": var " << P->var(V).Name << " (" << V << ")";
      }
    }
  }
}

TEST(DemandSlicerTest, MultiRootSliceAnswersEveryRoot) {
  auto P = loadExample("figure1.jir");
  ASSERT_NE(P, nullptr);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Result1 = findVar(*P, Main, "result1");
  VarId Result2 = findVar(*P, Main, "result2");
  ASSERT_NE(Result1, InvalidId);
  ASSERT_NE(Result2, InvalidId);

  DemandSlicer DS(*P);
  DemandSlicer::Slice Slice = DS.sliceFor({Result1, Result2});
  for (const char *Spec : {"ci", "2obj"}) {
    AnalysisRecipe R = recipeFor(Spec);
    IncrementalSolver Inc(*P, R, IncrementalSolver::Options());
    const PTAResult &Full = Inc.ensureCurrent();
    PTAResult Demand = Inc.demandSolve(Slice.Enabled);
    EXPECT_EQ(Demand.pt(Result1).toVector(), Full.pt(Result1).toVector())
        << Spec;
    EXPECT_EQ(Demand.pt(Result2).toVector(), Full.pt(Result2).toVector())
        << Spec;
    // Under 2obj the two cartons stay separate; the demand run must be
    // exactly as precise, not merely sound.
    if (std::string(Spec) == "2obj") {
      EXPECT_EQ(Demand.pt(Result1).size(), 1u);
    }
  }
}

//===----------------------------------------------------------------------===//
// The call-graph core alone keeps dispatch exact (callees queries)
//===----------------------------------------------------------------------===//

TEST(DemandSlicerTest, EmptyRootsSliceComputesExactCallGraph) {
  for (const char *File : {"figure1.jir", "containers.jir"}) {
    auto P = loadExample(File);
    ASSERT_NE(P, nullptr);
    DemandSlicer DS(*P);
    DemandSlicer::Slice Slice = DS.sliceFor({});
    for (const char *Spec : {"ci", "2obj"}) {
      std::string Label = std::string(File) + "/" + Spec;
      AnalysisRecipe R = recipeFor(Spec);
      IncrementalSolver Inc(*P, R, IncrementalSolver::Options());
      const PTAResult &Full = Inc.ensureCurrent();
      PTAResult Demand = Inc.demandSolve(Slice.Enabled);
      ASSERT_FALSE(Demand.Exhausted) << Label;
      EXPECT_EQ(Demand.CalleesPerSite, Full.CalleesPerSite) << Label;
      EXPECT_EQ(Demand.Reachable, Full.Reachable) << Label;
      EXPECT_EQ(Demand.NumCallEdgesCI, Full.NumCallEdgesCI) << Label;
    }
  }
}

//===----------------------------------------------------------------------===//
// reindex() after a program delta
//===----------------------------------------------------------------------===//

TEST(DemandSlicerTest, ReindexCoversDeltaStatements) {
  auto P = parseWithStdlib(figure1Source());
  ASSERT_NE(P, nullptr);
  DemandSlicer DS(*P); // indexed before the delta

  const char *Delta = "class Crate {\n"
                      "  field it: Item;\n"
                      "  method put(i: Item): Item {\n"
                      "    var r: Item;\n"
                      "    this.it = i;\n"
                      "    r = this.it;\n"
                      "    return r;\n"
                      "  }\n"
                      "}\n"
                      "extend class Main {\n"
                      "  append method main {\n"
                      "    var k1: Crate;\n"
                      "    var i3: Item;\n"
                      "    var got: Item;\n"
                      "    k1 = new Crate;\n"
                      "    i3 = new Item;\n"
                      "    got = call k1.put(i3);\n"
                      "  }\n"
                      "}\n";
  Parser LP(*P);
  ASSERT_TRUE(LP.parseSource(Delta, "<d1>") && LP.finalize())
      << (LP.diagnostics().empty() ? "" : LP.diagnostics().front());
  P->invalidateHierarchyCaches();
  DS.reindex();

  MethodId Main = findMethod(*P, "Main", "main");
  VarId Got = findVar(*P, Main, "got");
  ASSERT_NE(Got, InvalidId);
  DemandSlicer::Slice Slice = DS.sliceFor({Got});
  ASSERT_EQ(Slice.Enabled.size(), P->numStmts());

  for (const char *Spec : {"ci", "2obj"}) {
    AnalysisRecipe R = recipeFor(Spec);
    IncrementalSolver Inc(*P, R, IncrementalSolver::Options());
    const PTAResult &Full = Inc.ensureCurrent();
    PTAResult Demand = Inc.demandSolve(Slice.Enabled);
    EXPECT_EQ(Demand.pt(Got).toVector(), Full.pt(Got).toVector()) << Spec;
    EXPECT_EQ(Demand.pt(Got).size(), 1u) << Spec; // exactly the i3 alloc
  }
}
