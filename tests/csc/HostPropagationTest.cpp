//===- HostPropagationTest.cpp - [PropHost] rule specifics ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Fine-grained checks of the pointer-host map propagation (Fig. 10):
// hosts flow along ordinary PFG edges but are NOT propagated along the
// return edges of Transfer methods — the rule's exclusion that keeps
// iterators of different containers apart even though the iterator
// objects themselves are one merged abstraction.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "workload/Workload.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(HostPropagationTest, TransferReturnEdgeExcluded) {
  // Two lists, two iterators. Without the [PropHost] exclusion, the
  // merged iterator allocation inside ArrayList.iterator() would carry
  // BOTH hosts to BOTH iterator variables, merging the elements again.
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l1: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var b: Object;
    var it1: Iterator;
    var it2: Iterator;
    l1 = new ArrayList;
    dcall l1.ArrayList.init();
    l2 = new ArrayList;
    dcall l2.ArrayList.init();
    a = new Object;
    b = new Object;
    call l1.add(a);
    call l2.add(b);
    it1 = call l1.iterator();
    it2 = call l2.iterator();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId L1 = allocOf(*P, findVar(*P, Main, "l1"));
  ObjId L2 = allocOf(*P, findVar(*P, Main, "l2"));
  PtrId It1 = S.varPtrCI(findVar(*P, Main, "it1"));
  PtrId It2 = S.varPtrCI(findVar(*P, Main, "it2"));
  // Each iterator carries exactly its own list's host.
  EXPECT_TRUE(Plugin.container()->hostsOf(It1).contains(L1));
  EXPECT_FALSE(Plugin.container()->hostsOf(It1).contains(L2));
  EXPECT_TRUE(Plugin.container()->hostsOf(It2).contains(L2));
  EXPECT_FALSE(Plugin.container()->hostsOf(It2).contains(L1));
}

TEST(HostPropagationTest, HostsFlowThroughLocalAssignments) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var alias: ArrayList;
    var a: Object;
    var x: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    alias = l;
    a = new Object;
    call alias.add(a);
    x = call alias.get();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId L = allocOf(*P, findVar(*P, Main, "l"));
  PtrId Alias = S.varPtrCI(findVar(*P, Main, "alias"));
  EXPECT_TRUE(Plugin.container()->hostsOf(Alias).contains(L));
  VarId X = findVar(*P, Main, "x");
  EXPECT_TRUE(R.pt(X).contains(allocOf(*P, findVar(*P, Main, "a"))));
}

TEST(HostPropagationTest, IteratorPassedAcrossMethods) {
  // The iterator travels through a helper method; hosts must follow via
  // parameter and return edges (which are ordinary PFG edges).
  auto P = parseWithStdlib(R"(
class Util {
  static method consume(it: Iterator): Object {
    var r: Object;
    r = call it.next();
    return r;
  }
}
class Main {
  static method main(): void {
    var l: ArrayList;
    var a: Object;
    var it: Iterator;
    var x: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    a = new Object;
    call l.add(a);
    it = call l.iterator();
    x = scall Util.consume(it);
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  EXPECT_TRUE(R.pt(X).contains(allocOf(*P, findVar(*P, Main, "a"))))
      << "host must follow the iterator into the helper";
}

TEST(HostPropagationTest, EmptyContainerRetrievalIsEmpty) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var x: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    x = call l.get();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  EXPECT_TRUE(R.pt(X).empty()) << "nothing was ever added";
}

TEST(HostPropagationTest, PrinterRoundTripsWorkloadWithStdlib) {
  // Full-scale printer/parser round trip: stdlib + a generated workload.
  WorkloadConfig C;
  C.Name = "roundtrip";
  C.Seed = 13;
  C.NumScenarios = 3;
  C.ActionsPerScenario = 6;
  std::vector<std::string> Diags;
  auto P1 = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P1, nullptr);
  std::string Printed = printProgram(*P1);
  Program P2;
  std::vector<std::string> Diags2;
  ASSERT_TRUE(parseProgram(P2, {{"rt.jir", Printed}}, Diags2))
      << (Diags2.empty() ? "" : Diags2[0]);
  EXPECT_EQ(P1->numTypes(), P2.numTypes());
  EXPECT_EQ(P1->numMethods(), P2.numMethods());
  EXPECT_EQ(P1->numStmts(), P2.numStmts());
  EXPECT_EQ(Printed, printProgram(P2));
  // The round-tripped program analyzes identically (same CI stats).
  Solver S1(*P1, {}), S2(P2, {});
  PTAResult R1 = S1.solve();
  PTAResult R2 = S2.solve();
  EXPECT_EQ(R1.Stats.PtsInsertions, R2.Stats.PtsInsertions);
  EXPECT_EQ(R1.numCallEdgesCI(), R2.numCallEdgesCI());
}

TEST(HostPropagationTest, InterpreterIsDeterministicPerSeed) {
  WorkloadConfig C;
  C.Name = "det";
  C.Seed = 21;
  C.NumScenarios = 3;
  C.ActionsPerScenario = 6;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);
  InterpOptions O;
  O.Seed = 5;
  DynamicFacts F1 = interpret(*P, O);
  DynamicFacts F2 = interpret(*P, O);
  EXPECT_EQ(F1.Steps, F2.Steps);
  EXPECT_EQ(F1.CallEdges, F2.CallEdges);
  EXPECT_EQ(F1.ReachedMethods, F2.ReachedMethods);
}
