//===- CscPropertyTest.cpp - Cross-analysis properties of Cut-Shortcut ----===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Properties the approach must satisfy on arbitrary (generated) programs:
//  * CSC is never less precise than CI, pointwise on every variable and
//    on the call graph;
//  * with all patterns disabled, CSC degenerates to exactly CI;
//  * results and statistics are deterministic;
//  * each precision metric is monotone across CI -> CSC;
//  * the doop variant (no load handling) sits between CI and full CSC.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

WorkloadConfig propertyConfig(uint64_t Seed) {
  WorkloadConfig C;
  C.Name = "prop";
  C.Seed = Seed;
  C.NumScenarios = 5;
  C.ActionsPerScenario = 9;
  C.NumEntityClasses = 9;
  C.WrapperDepth = 2;
  C.NumFamilies = 4;
  C.FamilySize = 3;
  C.NumSelectors = 3;
  return C;
}

class CscPropertyTest : public ::testing::TestWithParam<uint64_t> {};

/// Builds the seeded workload program into a session (or fails the test).
std::unique_ptr<AnalysisSession> makeSession(uint64_t Seed) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(propertyConfig(Seed), Diags);
  std::unique_ptr<AnalysisSession> S;
  if (P)
    S = AnalysisSession::adopt(std::move(P), {}, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_NE(S, nullptr);
  return S;
}

AnalysisRun run(AnalysisSession &S, const std::string &Spec) {
  AnalysisRun O = S.run(Spec);
  EXPECT_EQ(O.Status, RunStatus::Completed) << Spec << ": " << O.Error;
  return O;
}

} // namespace

TEST_P(CscPropertyTest, NeverLessPreciseThanCI) {
  auto S = makeSession(GetParam());
  ASSERT_NE(S, nullptr);
  const Program *P = &S->program();
  AnalysisRun CI = run(*S, "ci");
  AnalysisRun CSC = run(*S, "csc");

  uint64_t CIPts = 0, CSCPts = 0;
  for (VarId V = 0; V < P->numVars(); ++V) {
    CIPts += CI.Result.pt(V).size();
    CSCPts += CSC.Result.pt(V).size();
    CSC.Result.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(CI.Result.pt(V).contains(O))
          << P->var(V).Name << " in "
          << P->methodString(P->var(V).Method);
    });
  }
  EXPECT_LE(CSCPts, CIPts);
  // Call graph containment.
  for (CallSiteId CS = 0; CS < P->numCallSites(); ++CS)
    for (MethodId M : CSC.Result.calleesOf(CS)) {
      bool Found = false;
      for (MethodId CIM : CI.Result.calleesOf(CS))
        Found = Found || CIM == M;
      EXPECT_TRUE(Found) << "CSC invented a call edge";
    }
  for (MethodId M : CSC.Result.reachableMethods())
    EXPECT_TRUE(CI.Result.isReachable(M));
}

TEST_P(CscPropertyTest, MetricsMonotone) {
  auto S = makeSession(GetParam());
  ASSERT_NE(S, nullptr);
  AnalysisRun CI = run(*S, "ci");
  AnalysisRun CSC = run(*S, "csc");
  EXPECT_LE(CSC.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(CSC.Metrics.ReachMethods, CI.Metrics.ReachMethods);
  EXPECT_LE(CSC.Metrics.PolyCalls, CI.Metrics.PolyCalls);
  EXPECT_LE(CSC.Metrics.CallEdges, CI.Metrics.CallEdges);
  // And CSC genuinely improves something on these workloads.
  EXPECT_LT(CSC.Metrics.FailCasts, CI.Metrics.FailCasts);
}

TEST_P(CscPropertyTest, AllPatternsOffEqualsCI) {
  auto S = makeSession(GetParam());
  ASSERT_NE(S, nullptr);
  const Program *P = &S->program();
  AnalysisRun CI = run(*S, "ci");
  AnalysisRun Null = run(*S, "csc;field=0;load=0;container=0;local=0");
  for (VarId V = 0; V < P->numVars(); ++V)
    EXPECT_EQ(Null.Result.pt(V).toVector(), CI.Result.pt(V).toVector());
  EXPECT_EQ(Null.Metrics.CallEdges, CI.Metrics.CallEdges);
  EXPECT_EQ(Null.Metrics.FailCasts, CI.Metrics.FailCasts);
}

TEST_P(CscPropertyTest, DoopVariantBetweenCIAndFull) {
  auto S = makeSession(GetParam());
  ASSERT_NE(S, nullptr);
  const Program *P = &S->program();
  AnalysisRun CI = run(*S, "ci");
  AnalysisRun Doop = run(*S, "csc;load=0");
  AnalysisRun Full = run(*S, "csc");
  EXPECT_LE(Doop.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(Full.Metrics.FailCasts, Doop.Metrics.FailCasts);
  // The doop variant stays sound: still a subset of CI pointwise.
  for (VarId V = 0; V < P->numVars(); ++V)
    Doop.Result.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(CI.Result.pt(V).contains(O));
    });
}

TEST_P(CscPropertyTest, Deterministic) {
  std::vector<std::string> Diags1, Diags2;
  auto P1 = buildWorkloadProgram(propertyConfig(GetParam()), Diags1);
  auto P2 = buildWorkloadProgram(propertyConfig(GetParam()), Diags2);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);

  ContainerSpec S1 = ContainerSpec::forProgram(*P1);
  ContainerSpec S2 = ContainerSpec::forProgram(*P2);
  CutShortcutPlugin Pl1(*P1, S1), Pl2(*P2, S2);
  Solver Sol1(*P1, {}), Sol2(*P2, {});
  Sol1.addPlugin(&Pl1);
  Sol2.addPlugin(&Pl2);
  PTAResult R1 = Sol1.solve();
  PTAResult R2 = Sol2.solve();

  EXPECT_EQ(R1.Stats.PtsInsertions, R2.Stats.PtsInsertions);
  EXPECT_EQ(R1.Stats.PFGEdges, R2.Stats.PFGEdges);
  EXPECT_EQ(Pl1.stats().CutStores, Pl2.stats().CutStores);
  EXPECT_EQ(Pl1.stats().CutReturns, Pl2.stats().CutReturns);
  EXPECT_EQ(Pl1.stats().ShortcutEdges, Pl2.stats().ShortcutEdges);
  for (VarId V = 0; V < P1->numVars(); ++V)
    EXPECT_EQ(R1.pt(V).toVector(), R2.pt(V).toVector());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CscPropertyTest,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

TEST(CscContextGuardTest, TwoObjPlusCscAsserts) {
  // The plugin is defined for the CI solver only (§3.1: "no contexts are
  // applied to any methods"); combining it with a context-sensitive
  // selector is a usage error caught in debug builds. In release builds
  // we simply document the restriction; nothing to check here beyond the
  // CI path working, which other tests cover.
  SUCCEED();
}
