//===- CscPropertyTest.cpp - Cross-analysis properties of Cut-Shortcut ----===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Properties the approach must satisfy on arbitrary (generated) programs:
//  * CSC is never less precise than CI, pointwise on every variable and
//    on the call graph;
//  * with all patterns disabled, CSC degenerates to exactly CI;
//  * results and statistics are deterministic;
//  * each precision metric is monotone across CI -> CSC;
//  * the doop variant (no load handling) sits between CI and full CSC.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRunner.h"
#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

WorkloadConfig propertyConfig(uint64_t Seed) {
  WorkloadConfig C;
  C.Name = "prop";
  C.Seed = Seed;
  C.NumScenarios = 5;
  C.ActionsPerScenario = 9;
  C.NumEntityClasses = 9;
  C.WrapperDepth = 2;
  C.NumFamilies = 4;
  C.FamilySize = 3;
  C.NumSelectors = 3;
  return C;
}

class CscPropertyTest : public ::testing::TestWithParam<uint64_t> {};

RunOutcome run(const Program &P, AnalysisKind K,
               CutShortcutOptions Opts = {}) {
  RunConfig C;
  C.Kind = K;
  C.Csc = Opts;
  return runAnalysis(P, C);
}

} // namespace

TEST_P(CscPropertyTest, NeverLessPreciseThanCI) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(propertyConfig(GetParam()), Diags);
  ASSERT_NE(P, nullptr);
  RunOutcome CI = run(*P, AnalysisKind::CI);
  RunOutcome CSC = run(*P, AnalysisKind::CSC);

  uint64_t CIPts = 0, CSCPts = 0;
  for (VarId V = 0; V < P->numVars(); ++V) {
    CIPts += CI.Result.pt(V).size();
    CSCPts += CSC.Result.pt(V).size();
    CSC.Result.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(CI.Result.pt(V).contains(O))
          << P->var(V).Name << " in "
          << P->methodString(P->var(V).Method);
    });
  }
  EXPECT_LE(CSCPts, CIPts);
  // Call graph containment.
  for (CallSiteId CS = 0; CS < P->numCallSites(); ++CS)
    for (MethodId M : CSC.Result.calleesOf(CS)) {
      bool Found = false;
      for (MethodId CIM : CI.Result.calleesOf(CS))
        Found = Found || CIM == M;
      EXPECT_TRUE(Found) << "CSC invented a call edge";
    }
  for (MethodId M : CSC.Result.reachableMethods())
    EXPECT_TRUE(CI.Result.isReachable(M));
}

TEST_P(CscPropertyTest, MetricsMonotone) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(propertyConfig(GetParam()), Diags);
  ASSERT_NE(P, nullptr);
  RunOutcome CI = run(*P, AnalysisKind::CI);
  RunOutcome CSC = run(*P, AnalysisKind::CSC);
  EXPECT_LE(CSC.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(CSC.Metrics.ReachMethods, CI.Metrics.ReachMethods);
  EXPECT_LE(CSC.Metrics.PolyCalls, CI.Metrics.PolyCalls);
  EXPECT_LE(CSC.Metrics.CallEdges, CI.Metrics.CallEdges);
  // And CSC genuinely improves something on these workloads.
  EXPECT_LT(CSC.Metrics.FailCasts, CI.Metrics.FailCasts);
}

TEST_P(CscPropertyTest, AllPatternsOffEqualsCI) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(propertyConfig(GetParam()), Diags);
  ASSERT_NE(P, nullptr);
  CutShortcutOptions Off;
  Off.FieldStore = Off.FieldLoad = Off.Container = Off.LocalFlow = false;
  RunOutcome CI = run(*P, AnalysisKind::CI);
  RunOutcome Null = run(*P, AnalysisKind::CSC, Off);
  for (VarId V = 0; V < P->numVars(); ++V)
    EXPECT_EQ(Null.Result.pt(V).toVector(), CI.Result.pt(V).toVector());
  EXPECT_EQ(Null.Metrics.CallEdges, CI.Metrics.CallEdges);
  EXPECT_EQ(Null.Metrics.FailCasts, CI.Metrics.FailCasts);
}

TEST_P(CscPropertyTest, DoopVariantBetweenCIAndFull) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(propertyConfig(GetParam()), Diags);
  ASSERT_NE(P, nullptr);
  CutShortcutOptions NoLoad;
  NoLoad.FieldLoad = false;
  RunOutcome CI = run(*P, AnalysisKind::CI);
  RunOutcome Doop = run(*P, AnalysisKind::CSC, NoLoad);
  RunOutcome Full = run(*P, AnalysisKind::CSC);
  EXPECT_LE(Doop.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(Full.Metrics.FailCasts, Doop.Metrics.FailCasts);
  // The doop variant stays sound: still a subset of CI pointwise.
  for (VarId V = 0; V < P->numVars(); ++V)
    Doop.Result.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(CI.Result.pt(V).contains(O));
    });
}

TEST_P(CscPropertyTest, Deterministic) {
  std::vector<std::string> Diags1, Diags2;
  auto P1 = buildWorkloadProgram(propertyConfig(GetParam()), Diags1);
  auto P2 = buildWorkloadProgram(propertyConfig(GetParam()), Diags2);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);

  ContainerSpec S1 = ContainerSpec::forProgram(*P1);
  ContainerSpec S2 = ContainerSpec::forProgram(*P2);
  CutShortcutPlugin Pl1(*P1, S1), Pl2(*P2, S2);
  Solver Sol1(*P1, {}), Sol2(*P2, {});
  Sol1.addPlugin(&Pl1);
  Sol2.addPlugin(&Pl2);
  PTAResult R1 = Sol1.solve();
  PTAResult R2 = Sol2.solve();

  EXPECT_EQ(R1.Stats.PtsInsertions, R2.Stats.PtsInsertions);
  EXPECT_EQ(R1.Stats.PFGEdges, R2.Stats.PFGEdges);
  EXPECT_EQ(Pl1.stats().CutStores, Pl2.stats().CutStores);
  EXPECT_EQ(Pl1.stats().CutReturns, Pl2.stats().CutReturns);
  EXPECT_EQ(Pl1.stats().ShortcutEdges, Pl2.stats().ShortcutEdges);
  for (VarId V = 0; V < P1->numVars(); ++V)
    EXPECT_EQ(R1.pt(V).toVector(), R2.pt(V).toVector());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CscPropertyTest,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

TEST(CscContextGuardTest, TwoObjPlusCscAsserts) {
  // The plugin is defined for the CI solver only (§3.1: "no contexts are
  // applied to any methods"); combining it with a context-sensitive
  // selector is a usage error caught in debug builds. In release builds
  // we simply document the restriction; nothing to check here beyond the
  // CI path working, which other tests cover.
  SUCCEED();
}
