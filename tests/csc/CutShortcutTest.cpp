//===- CutShortcutTest.cpp - The paper's examples, end to end -------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Each motivating example of the paper (Figs. 1, 3, 4, 5) is translated to
// `.jir` and checked: Cut-Shortcut must reach the precise result the paper
// derives, while remaining sound (a superset of nothing real is lost —
// checked against expected exact sets) and never less precise than CI.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

PTAResult solveCSC(const Program &P, CutShortcutOptions Opts = {},
                   CutShortcutStats *StatsOut = nullptr) {
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  CutShortcutPlugin Plugin(P, Spec, Opts);
  Solver S(P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  if (StatsOut)
    *StatsOut = Plugin.stats();
  return R;
}

PTAResult solveCI(const Program &P) {
  Solver S(P, {});
  return S.solve();
}

/// CSC must be sound AND at least as precise as CI on every variable:
/// each CSC points-to set is a subset of the CI one.
void expectNoLessPreciseThanCI(const Program &P, const PTAResult &CSC,
                               const PTAResult &CI) {
  for (VarId V = 0; V < P.numVars(); ++V) {
    CSC.pt(V).forEach([&](ObjId O) {
      EXPECT_TRUE(CI.pt(V).contains(O))
          << "CSC added object " << O << " to "
          << P.methodString(P.var(V).Method) << "." << P.var(V).Name
          << " that CI does not have";
    });
  }
  // Call graph: CSC reachable ⊆ CI reachable.
  for (MethodId M : CSC.reachableMethods())
    EXPECT_TRUE(CI.isReachable(M)) << P.methodString(M);
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 1: field access pattern (store + load)
//===----------------------------------------------------------------------===//

TEST(CutShortcutTest, Figure1PreciseResults) {
  auto P = parseOrDie(figure1Source());
  PTAResult R = solveCSC(*P);

  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O15 = allocOf(*P, findVar(*P, Main, "c1"));
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  ObjId O20 = allocOf(*P, findVar(*P, Main, "c2"));
  ObjId O21 = allocOf(*P, findVar(*P, Main, "item2"));
  FieldId ItemF = P->resolveField(P->typeByName("Carton"), "item");

  // Store handling (§3.2.1): pt(o15.item) = {o16}, pt(o20.item) = {o21}.
  EXPECT_EQ(R.ptField(O15, ItemF).toVector(), std::vector<uint32_t>{O16});
  EXPECT_EQ(R.ptField(O20, ItemF).toVector(), std::vector<uint32_t>{O21});

  // Load handling (§3.2.2): pt(result1) = {o16}, pt(result2) = {o21}.
  VarId Result1 = findVar(*P, Main, "result1");
  VarId Result2 = findVar(*P, Main, "result2");
  EXPECT_EQ(R.pt(Result1).toVector(), std::vector<uint32_t>{O16});
  EXPECT_EQ(R.pt(Result2).toVector(), std::vector<uint32_t>{O21});
}

TEST(CutShortcutTest, Figure1RegistersCutsAndShortcuts) {
  auto P = parseOrDie(figure1Source());
  CutShortcutStats Stats;
  solveCSC(*P, {}, &Stats);
  EXPECT_GE(Stats.CutStores, 1u);   // setItem's store.
  EXPECT_GE(Stats.CutReturns, 1u);  // getItem's return.
  EXPECT_GE(Stats.ShortcutEdges, 4u);
  // setItem, getItem, and main are involved.
  EXPECT_GE(Stats.Involved.size(), 3u);
}

TEST(CutShortcutTest, Figure1NoLessPreciseThanCI) {
  auto P = parseOrDie(figure1Source());
  PTAResult CSC = solveCSC(*P);
  PTAResult CI = solveCI(*P);
  expectNoLessPreciseThanCI(*P, CSC, CI);
  // Reachability is identical on this example.
  EXPECT_EQ(CSC.numReachableCI(), CI.numReachableCI());
}

TEST(CutShortcutTest, StoreOnlyStillImprovesFields) {
  auto P = parseOrDie(figure1Source());
  CutShortcutOptions Opts;
  Opts.FieldLoad = false;
  Opts.Container = false;
  Opts.LocalFlow = false;
  PTAResult R = solveCSC(*P, Opts);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O15 = allocOf(*P, findVar(*P, Main, "c1"));
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  FieldId ItemF = P->resolveField(P->typeByName("Carton"), "item");
  // Fields are precise...
  EXPECT_EQ(R.ptField(O15, ItemF).toVector(), std::vector<uint32_t>{O16});
  // ...but without load handling, getItem still merges both cartons'
  // fields into r, so the call results stay merged (CI-level there).
  VarId Result1 = findVar(*P, Main, "result1");
  EXPECT_EQ(R.pt(Result1).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Figure 3: nested calls for field access
//===----------------------------------------------------------------------===//

namespace {

const char *figure3Source() {
  return R"(
class T { }
class A {
  field f: T;
  method init(t: T): void {
    call this.set(t);
  }
  method set(p: T): void {
    this.f = p;
  }
}
class Main {
  static method main(): void {
    var t1: T;
    var a1: A;
    var t2: T;
    var a2: A;
    t1 = new T;
    a1 = new A;
    dcall a1.A.init(t1);
    t2 = new T;
    a2 = new A;
    dcall a2.A.init(t2);
  }
}
)";
}

} // namespace

TEST(CutShortcutTest, Figure3NestedStorePropagation) {
  auto P = parseOrDie(figure3Source());
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA1 = allocOf(*P, findVar(*P, Main, "a1"));
  ObjId OA2 = allocOf(*P, findVar(*P, Main, "a2"));
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  ObjId OT2 = allocOf(*P, findVar(*P, Main, "t2"));
  FieldId F = P->resolveField(P->typeByName("A"), "f");
  // §3.2.3: the tempStore must travel through A.init to main's call sites.
  EXPECT_EQ(R.ptField(OA1, F).toVector(), std::vector<uint32_t>{OT1});
  EXPECT_EQ(R.ptField(OA2, F).toVector(), std::vector<uint32_t>{OT2});
}

TEST(CutShortcutTest, Figure3CIBaselineIsMerged) {
  auto P = parseOrDie(figure3Source());
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA1 = allocOf(*P, findVar(*P, Main, "a1"));
  FieldId F = P->resolveField(P->typeByName("A"), "f");
  EXPECT_EQ(R.ptField(OA1, F).size(), 2u); // Both T objects.
}

TEST(CutShortcutTest, NestedLoadPropagation) {
  // The dual of Fig. 3 for loads: a getter wrapped by another method.
  auto P = parseOrDie(R"(
class T { }
class A {
  field f: T;
  method setF(t: T): void {
    this.f = t;
  }
  method getF(): T {
    var r: T;
    r = this.f;
    return r;
  }
  method getViaWrapper(): T {
    var r: T;
    r = call this.getF();
    return r;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var t1: T;
    var t2: T;
    var r1: T;
    var r2: T;
    a1 = new A;
    a2 = new A;
    t1 = new T;
    t2 = new T;
    call a1.setF(t1);
    call a2.setF(t2);
    r1 = call a1.getViaWrapper();
    r2 = call a2.getViaWrapper();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  ObjId OT2 = allocOf(*P, findVar(*P, Main, "t2"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(), std::vector<uint32_t>{OT1});
  EXPECT_EQ(R.pt(R2).toVector(), std::vector<uint32_t>{OT2});
}

TEST(CutShortcutTest, MixedReturnSourcesStaySound) {
  // A cut-load return variable that is also assigned a fresh default:
  // [RelayEdge] must relay the non-load in-edge to every call site.
  auto P = parseOrDie(R"(
class Box {
  field f: Object;
  method set(o: Object): void {
    this.f = o;
  }
  method getOrDefault(): Object {
    var r: Object;
    var d: Object;
    r = this.f;
    if ? {
      d = new Object;
      r = d;
    }
    return r;
  }
}
class Main {
  static method main(): void {
    var b1: Box;
    var b2: Box;
    var o1: Object;
    var o2: Object;
    var r1: Object;
    var r2: Object;
    b1 = new Box;
    b2 = new Box;
    o1 = new Object;
    o2 = new Object;
    call b1.set(o1);
    call b2.set(o2);
    r1 = call b1.getOrDefault();
    r2 = call b2.getOrDefault();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  MethodId GetOrDefault = findMethod(*P, "Box", "getOrDefault");
  ObjId O1 = allocOf(*P, findVar(*P, Main, "o1"));
  ObjId O2 = allocOf(*P, findVar(*P, Main, "o2"));
  ObjId ODef = allocOf(*P, findVar(*P, GetOrDefault, "d"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  // Soundness: both the stored object and the default must be seen.
  EXPECT_TRUE(R.pt(R1).contains(O1));
  EXPECT_TRUE(R.pt(R1).contains(ODef));
  EXPECT_TRUE(R.pt(R2).contains(O2));
  EXPECT_TRUE(R.pt(R2).contains(ODef));
  // Precision: the load part stays separated per box.
  EXPECT_FALSE(R.pt(R1).contains(O2));
  EXPECT_FALSE(R.pt(R2).contains(O1));
}

//===----------------------------------------------------------------------===//
// Figure 4: container access pattern
//===----------------------------------------------------------------------===//

namespace {

const char *figure4Source() {
  return R"(
class Main {
  static method main(): void {
    var l1: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var b: Object;
    var x: Object;
    var y: Object;
    var it1: Iterator;
    var it2: Iterator;
    var r1: Object;
    var r2: Object;
    l1 = new ArrayList;
    dcall l1.ArrayList.init();
    a = new Object;
    call l1.add(a);
    x = call l1.get();
    l2 = new ArrayList;
    dcall l2.ArrayList.init();
    b = new Object;
    call l2.add(b);
    y = call l2.get();
    it1 = call l1.iterator();
    r1 = call it1.next();
    it2 = call l2.iterator();
    r2 = call it2.next();
  }
}
)";
}

} // namespace

TEST(CutShortcutTest, Figure4ContainersSeparated) {
  auto P = parseWithStdlib(figure4Source());
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  ObjId OB = allocOf(*P, findVar(*P, Main, "b"));
  VarId X = findVar(*P, Main, "x");
  VarId Y = findVar(*P, Main, "y");
  EXPECT_EQ(R.pt(X).toVector(), std::vector<uint32_t>{OA});
  EXPECT_EQ(R.pt(Y).toVector(), std::vector<uint32_t>{OB});
}

TEST(CutShortcutTest, Figure4IteratorsHostDependent) {
  auto P = parseWithStdlib(figure4Source());
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  ObjId OB = allocOf(*P, findVar(*P, Main, "b"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  // §3.3.2: iterators separate per host even though the iterator objects
  // themselves are merged abstract objects.
  EXPECT_EQ(R.pt(R1).toVector(), std::vector<uint32_t>{OA});
  EXPECT_EQ(R.pt(R2).toVector(), std::vector<uint32_t>{OB});
}

TEST(CutShortcutTest, Figure4NoLessPreciseThanCI) {
  auto P = parseWithStdlib(figure4Source());
  PTAResult CSC = solveCSC(*P);
  PTAResult CI = solveCI(*P);
  expectNoLessPreciseThanCI(*P, CSC, CI);
}

TEST(CutShortcutTest, AliasedContainersShareElements) {
  // l2 aliases l1: adding through one alias must be visible through the
  // other (ptH is computed with the pointer analysis, §3.3.2 end).
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l1: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var x: Object;
    l1 = new ArrayList;
    dcall l1.ArrayList.init();
    l2 = l1;
    a = new Object;
    call l2.add(a);
    x = call l1.get();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  EXPECT_TRUE(R.pt(X).contains(OA)) << "aliasing lost: unsound";
}

TEST(CutShortcutTest, ContainerInFieldKeepsSoundness) {
  // The container flows through the heap; hosts must follow via
  // [PropHost] over load/store edges.
  auto P = parseWithStdlib(R"(
class Holder {
  field list: ArrayList;
  method setList(l: ArrayList): void {
    this.list = l;
  }
  method getList(): ArrayList {
    var r: ArrayList;
    r = this.list;
    return r;
  }
}
class Main {
  static method main(): void {
    var h: Holder;
    var l: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var x: Object;
    h = new Holder;
    l = new ArrayList;
    dcall l.ArrayList.init();
    call h.setList(l);
    a = new Object;
    call l.add(a);
    l2 = call h.getList();
    x = call l2.get();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  EXPECT_TRUE(R.pt(X).contains(OA)) << "heap-borne host lost: unsound";
}

TEST(CutShortcutTest, MapKeysAndValuesSeparatedByCategory) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var k: Object;
    var v: Object;
    var gv: Object;
    var ks: Collection;
    var ki: Iterator;
    var gk: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    k = new Object;
    v = new Object;
    call m.put(k, v);
    gv = call m.get(k);
    ks = call m.keySet();
    ki = call ks.iterator();
    gk = call ki.next();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OK = allocOf(*P, findVar(*P, Main, "k"));
  ObjId OV = allocOf(*P, findVar(*P, Main, "v"));
  VarId GV = findVar(*P, Main, "gv");
  VarId GK = findVar(*P, Main, "gk");
  // map.get must see only values; keySet iteration only keys.
  EXPECT_EQ(R.pt(GV).toVector(), std::vector<uint32_t>{OV});
  EXPECT_EQ(R.pt(GK).toVector(), std::vector<uint32_t>{OK});
}

TEST(CutShortcutTest, TwoMapsSeparated) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var m1: HashMap;
    var m2: HashMap;
    var k: Object;
    var v1: Object;
    var v2: Object;
    var g1: Object;
    var g2: Object;
    m1 = new HashMap;
    dcall m1.HashMap.init();
    m2 = new HashMap;
    dcall m2.HashMap.init();
    k = new Object;
    v1 = new Object;
    v2 = new Object;
    call m1.put(k, v1);
    call m2.put(k, v2);
    g1 = call m1.get(k);
    g2 = call m2.get(k);
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OV1 = allocOf(*P, findVar(*P, Main, "v1"));
  ObjId OV2 = allocOf(*P, findVar(*P, Main, "v2"));
  VarId G1 = findVar(*P, Main, "g1");
  VarId G2 = findVar(*P, Main, "g2");
  EXPECT_EQ(R.pt(G1).toVector(), std::vector<uint32_t>{OV1});
  EXPECT_EQ(R.pt(G2).toVector(), std::vector<uint32_t>{OV2});
}

//===----------------------------------------------------------------------===//
// Figure 5: local flow pattern
//===----------------------------------------------------------------------===//

namespace {

const char *figure5Source() {
  return R"(
class A { }
class Util {
  static method select(p1: A, p2: A): A {
    var r: A;
    if ? {
      r = p1;
    } else {
      r = p2;
    }
    return r;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var a3: A;
    var a4: A;
    var r1: A;
    var r2: A;
    a1 = new A;
    a2 = new A;
    r1 = scall Util.select(a1, a2);
    a3 = new A;
    a4 = new A;
    r2 = scall Util.select(a3, a4);
  }
}
)";
}

} // namespace

TEST(CutShortcutTest, Figure5LocalFlowSeparated) {
  auto P = parseOrDie(figure5Source());
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O10 = allocOf(*P, findVar(*P, Main, "a1"));
  ObjId O11 = allocOf(*P, findVar(*P, Main, "a2"));
  ObjId O14 = allocOf(*P, findVar(*P, Main, "a3"));
  ObjId O15 = allocOf(*P, findVar(*P, Main, "a4"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(), (std::vector<uint32_t>{O10, O11}));
  EXPECT_EQ(R.pt(R2).toVector(), (std::vector<uint32_t>{O14, O15}));
}

TEST(CutShortcutTest, Figure5CIBaselineMerges) {
  auto P = parseOrDie(figure5Source());
  PTAResult R = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  EXPECT_EQ(R.pt(R1).size(), 4u); // All four objects merge.
}

TEST(CutShortcutTest, LocalFlowThroughAssignmentChains) {
  auto P = parseOrDie(R"(
class A { }
class Util {
  static method relay(p: A): A {
    var x: A;
    var y: A;
    x = p;
    y = x;
    return y;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var r1: A;
    var r2: A;
    a1 = new A;
    a2 = new A;
    r1 = scall Util.relay(a1);
    r2 = scall Util.relay(a2);
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "a1"))});
  EXPECT_EQ(R.pt(R2).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "a2"))});
}

TEST(CutShortcutTest, LocalFlowReturnsThis) {
  // Fluent interfaces: `return this` qualifies with k = 0 (the receiver).
  auto P = parseOrDie(R"(
class Builder {
  method step(): Builder {
    return this;
  }
}
class Main {
  static method main(): void {
    var b1: Builder;
    var b2: Builder;
    var r1: Builder;
    var r2: Builder;
    b1 = new Builder;
    b2 = new Builder;
    r1 = call b1.step();
    r2 = call b2.step();
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "b1"))});
  EXPECT_EQ(R.pt(R2).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "b2"))});
}

TEST(CutShortcutTest, LocalFlowRejectsMixedSources) {
  // r is fed by a parameter AND an allocation: the pattern must not fire
  // (the local-flow rule requires all defs to be local assignments).
  auto P = parseOrDie(R"(
class A { }
class Util {
  static method maybeFresh(p: A): A {
    var r: A;
    r = p;
    if ? {
      r = new A;
    }
    return r;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var r1: A;
    a1 = new A;
    r1 = scall Util.maybeFresh(a1);
  }
}
)");
  PTAResult CSC = solveCSC(*P);
  PTAResult CI = solveCI(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  // Both objects must be present (identical to CI here).
  EXPECT_EQ(CSC.pt(R1).size(), 2u);
  EXPECT_EQ(CSC.pt(R1).toVector(), CI.pt(R1).toVector());
}

TEST(CutShortcutTest, LocalFlowRedefinedParamNotCut) {
  // A parameter that is re-assigned inside the method must disqualify the
  // pattern: its value is a mix of incoming arguments and redefinitions.
  auto P = parseOrDie(R"(
class A { }
class Util {
  static method tricky(p: A): A {
    if ? {
      p = new A;
    }
    return p;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var r1: A;
    a1 = new A;
    r1 = scall Util.tricky(a1);
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  EXPECT_EQ(R.pt(R1).size(), 2u) << "must keep both arg and fresh object";
}

//===----------------------------------------------------------------------===//
// Cross-cutting properties
//===----------------------------------------------------------------------===//

TEST(CutShortcutTest, AllPatternsTogetherNoLessPreciseThanCI) {
  for (const char *Src :
       {figure1Source(), figure3Source(), figure5Source()}) {
    auto P = parseOrDie(Src);
    PTAResult CSC = solveCSC(*P);
    PTAResult CI = solveCI(*P);
    expectNoLessPreciseThanCI(*P, CSC, CI);
  }
}

TEST(CutShortcutTest, DoopModeOmitsLoadHandling) {
  // The paper's Doop implementation cannot express [CutPropLoad];
  // Cut-Shortcut must still be sound and keep the store-side precision.
  auto P = parseOrDie(figure1Source());
  CutShortcutOptions DoopOpts;
  DoopOpts.FieldLoad = false;
  PTAResult R = solveCSC(*P, DoopOpts);
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId O15 = allocOf(*P, findVar(*P, Main, "c1"));
  ObjId O16 = allocOf(*P, findVar(*P, Main, "item1"));
  FieldId ItemF = P->resolveField(P->typeByName("Carton"), "item");
  EXPECT_EQ(R.ptField(O15, ItemF).toVector(), std::vector<uint32_t>{O16});
}

TEST(CutShortcutTest, StringBuilderFluentChain) {
  // StringBuilder.append returns `this` — the stdlib exercises the local
  // flow pattern on user code.
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var sb1: StringBuilder;
    var sb2: StringBuilder;
    var s: String;
    var r1: StringBuilder;
    var r2: StringBuilder;
    sb1 = new StringBuilder;
    sb2 = new StringBuilder;
    s = new String;
    r1 = call sb1.append(s);
    r2 = call sb2.append(s);
  }
}
)");
  PTAResult R = solveCSC(*P);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "sb1"))});
  EXPECT_EQ(R.pt(R2).toVector(),
            std::vector<uint32_t>{allocOf(*P, findVar(*P, Main, "sb2"))});
}
