//===- PatternUnitTest.cpp - Pattern-level unit tests ---------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// White-box tests of the individual pattern components: the ⟨m,k⟩↣x masks
// of the local flow analysis (Fig. 11), the ptH pointer-host map of the
// container pattern (Fig. 10), and corner cases of the field access
// pattern (Figs. 8-9).
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"
#include "csc/LocalFlowPattern.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

/// Computes the local-flow mask of variable `Var` in `Cls.Mth` of `Src`.
uint64_t maskOf(const char *Src, const char *Cls, const char *Mth,
                const char *Var) {
  auto P = parseOrDie(Src);
  Solver S(*P, {});
  CscState St;
  St.S = &S;
  LocalFlowPattern LF(St);
  MethodId M = findMethod(*P, Cls, Mth);
  VarId V = findVar(*P, M, Var);
  return LF.paramMaskOf(M, V);
}

} // namespace

TEST(LocalFlowMaskTest, DirectParamReturn) {
  uint64_t Mask = maskOf(R"(
class A {
  static method id(p: Object): Object {
    return p;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "id", "p");
  EXPECT_EQ(Mask, 0b1u); // Static: argument slot 0.
}

TEST(LocalFlowMaskTest, ThisCountsAsSlotZero) {
  uint64_t Mask = maskOf(R"(
class A {
  method self(): A {
    return this;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "self", "this");
  EXPECT_EQ(Mask, 0b1u);
}

TEST(LocalFlowMaskTest, BranchesUnionMasks) {
  uint64_t Mask = maskOf(R"(
class A {
  static method pick(a: Object, b: Object): Object {
    var r: Object;
    if ? {
      r = a;
    } else {
      r = b;
    }
    return r;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "pick", "r");
  EXPECT_EQ(Mask, 0b11u);
}

TEST(LocalFlowMaskTest, InstanceMethodShiftsSlots) {
  uint64_t Mask = maskOf(R"(
class A {
  method pick(a: Object, b: Object): Object {
    var r: Object;
    r = b;
    return r;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "pick", "r");
  EXPECT_EQ(Mask, 0b100u); // this=0, a=1, b=2.
}

TEST(LocalFlowMaskTest, ChainsPropagate) {
  uint64_t Mask = maskOf(R"(
class A {
  static method relay(p: Object): Object {
    var x: Object;
    var y: Object;
    x = p;
    y = x;
    return y;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "relay", "y");
  EXPECT_EQ(Mask, 0b1u);
}

TEST(LocalFlowMaskTest, AllocationDefDisqualifies) {
  uint64_t Mask = maskOf(R"(
class A {
  static method maybe(p: Object): Object {
    var r: Object;
    r = p;
    if ? {
      r = new Object;
    }
    return r;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "maybe", "r");
  EXPECT_EQ(Mask, 0u);
}

TEST(LocalFlowMaskTest, LoadDefDisqualifies) {
  uint64_t Mask = maskOf(R"(
class A {
  field f: Object;
  static method viaField(p: A): Object {
    var r: Object;
    r = p.f;
    return r;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "viaField", "r");
  EXPECT_EQ(Mask, 0u);
}

TEST(LocalFlowMaskTest, RedefinedParamDisqualified) {
  uint64_t Mask = maskOf(R"(
class A {
  static method shadow(p: Object): Object {
    var x: Object;
    x = new Object;
    p = x;
    return p;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "shadow", "p");
  EXPECT_EQ(Mask, 0u);
}

TEST(LocalFlowMaskTest, CyclicAssignmentsWithoutParamSource) {
  uint64_t Mask = maskOf(R"(
class A {
  static method cyc(p: Object): Object {
    var x: Object;
    var y: Object;
    x = y;
    y = x;
    return y;
  }
}
class Main { static method main(): void { } }
)",
                         "A", "cyc", "y");
  EXPECT_EQ(Mask, 0u); // No values can ever flow; must not qualify.
}

//===----------------------------------------------------------------------===//
// Container pattern internals: the ptH host map.
//===----------------------------------------------------------------------===//

TEST(ContainerHostsTest, IteratorInheritsHost) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var it: Iterator;
    var o: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    o = new Object;
    call l.add(o);
    it = call l.iterator();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  S.solve();

  MethodId Main = findMethod(*P, "Main", "main");
  VarId L = findVar(*P, Main, "l");
  VarId It = findVar(*P, Main, "it");
  ObjId ListObj = allocOf(*P, L);
  ASSERT_NE(Plugin.container(), nullptr);
  // [ColHost]: the list is its own host; [TransferHost]: the iterator
  // variable inherits it.
  EXPECT_TRUE(Plugin.container()->hostsOf(S.varPtrCI(L)).contains(ListObj));
  EXPECT_TRUE(
      Plugin.container()->hostsOf(S.varPtrCI(It)).contains(ListObj));
}

TEST(ContainerHostsTest, MapViewChainsHosts) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var ks: Collection;
    var ki: Iterator;
    var k: Object;
    var v: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    k = new Object;
    v = new Object;
    call m.put(k, v);
    ks = call m.keySet();
    ki = call ks.iterator();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  S.solve();

  MethodId Main = findMethod(*P, "Main", "main");
  ObjId MapObj = allocOf(*P, findVar(*P, Main, "m"));
  VarId KS = findVar(*P, Main, "ks");
  VarId KI = findVar(*P, Main, "ki");
  // The view inherits the map host, and the view's iterator inherits it
  // transitively (keySet and KeySetView.iterator are both Transfers).
  EXPECT_TRUE(
      Plugin.container()->hostsOf(S.varPtrCI(KS)).contains(MapObj));
  EXPECT_TRUE(
      Plugin.container()->hostsOf(S.varPtrCI(KI)).contains(MapObj));
}

//===----------------------------------------------------------------------===//
// Field access pattern corner cases.
//===----------------------------------------------------------------------===//

TEST(FieldPatternTest, SelfStoreIsPreciseAndSound) {
  // x.f = x with x a parameter: base and source coincide.
  auto P = parseOrDie(R"(
class Node {
  field self: Node;
  method tie(n: Node): void {
    n.self = n;
  }
}
class Main {
  static method main(): void {
    var a: Node;
    var b: Node;
    var h: Node;
    var r: Node;
    h = new Node;
    a = new Node;
    b = new Node;
    call h.tie(a);
    call h.tie(b);
    r = a.self;
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  VarId Rv = findVar(*P, Main, "r");
  EXPECT_EQ(R.pt(Rv).toVector(), std::vector<uint32_t>{OA});
}

TEST(FieldPatternTest, ThreeLevelNestedStore) {
  auto P = parseOrDie(R"(
class T { }
class A {
  field f: T;
  method l1(t: T): void {
    call this.l2(t);
  }
  method l2(t: T): void {
    call this.l3(t);
  }
  method l3(t: T): void {
    this.f = t;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var t1: T;
    var t2: T;
    a1 = new A;
    a2 = new A;
    t1 = new T;
    t2 = new T;
    call a1.l1(t1);
    call a2.l1(t2);
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA1 = allocOf(*P, findVar(*P, Main, "a1"));
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  FieldId F = P->resolveField(P->typeByName("A"), "f");
  EXPECT_EQ(R.ptField(OA1, F).toVector(), std::vector<uint32_t>{OT1});
}

TEST(FieldPatternTest, ThreeLevelNestedLoad) {
  auto P = parseOrDie(R"(
class T { }
class A {
  field f: T;
  method set(t: T): void {
    this.f = t;
  }
  method g3(): T {
    var r: T;
    r = this.f;
    return r;
  }
  method g2(): T {
    var r: T;
    r = call this.g3();
    return r;
  }
  method g1(): T {
    var r: T;
    r = call this.g2();
    return r;
  }
}
class Main {
  static method main(): void {
    var a1: A;
    var a2: A;
    var t1: T;
    var t2: T;
    var r1: T;
    var r2: T;
    a1 = new A;
    a2 = new A;
    t1 = new T;
    t2 = new T;
    call a1.set(t1);
    call a2.set(t2);
    r1 = call a1.g1();
    r2 = call a2.g1();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OT1 = allocOf(*P, findVar(*P, Main, "t1"));
  ObjId OT2 = allocOf(*P, findVar(*P, Main, "t2"));
  VarId R1 = findVar(*P, Main, "r1");
  VarId R2 = findVar(*P, Main, "r2");
  EXPECT_EQ(R.pt(R1).toVector(), std::vector<uint32_t>{OT1});
  EXPECT_EQ(R.pt(R2).toVector(), std::vector<uint32_t>{OT2});
}

TEST(FieldPatternTest, RecursiveAccessorTerminates) {
  // Pass-through recursion must not loop the tempStore propagation.
  auto P = parseOrDie(R"(
class T { }
class A {
  field f: T;
  method store(t: T): void {
    call this.store(t);
    this.f = t;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var t: T;
    a = new A;
    t = new T;
    call a.store(t);
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  ObjId OT = allocOf(*P, findVar(*P, Main, "t"));
  FieldId F = P->resolveField(P->typeByName("A"), "f");
  EXPECT_TRUE(R.ptField(OA, F).contains(OT)) << "recursion lost the store";
}

TEST(FieldPatternTest, MutuallyRecursiveWrappersStaySound) {
  // Two pass-through wrappers calling each other: the deferred-return
  // dependency chain is cyclic and is resolved by the fixpoint flush.
  // Soundness: the fallback allocation must reach the callers.
  auto P = parseOrDie(R"(
class T { }
class A {
  method pingPong(): T {
    var r: T;
    r = call this.pong();
    return r;
  }
  method pong(): T {
    var r: T;
    if ? {
      r = call this.pingPong();
    } else {
      r = new T;
    }
    return r;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var r: T;
    a = new A;
    r = call a.pingPong();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  MethodId Pong = findMethod(*P, "A", "pong");
  VarId Rv = findVar(*P, Main, "r");
  ObjId Fresh = allocOf(*P, findVar(*P, Pong, "r"));
  EXPECT_TRUE(R.pt(Rv).contains(Fresh))
      << "cyclic deferral swallowed the return value";
}

TEST(FieldPatternTest, PureRecursiveWrapperTerminates) {
  // A wrapper that only ever returns its own recursion can never produce
  // a value; the analysis must terminate with an empty result.
  auto P = parseOrDie(R"(
class T { }
class A {
  method spin(): T {
    var r: T;
    r = call this.spin();
    return r;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var r: T;
    a = new A;
    r = call a.spin();
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Rv = findVar(*P, Main, "r");
  EXPECT_TRUE(R.pt(Rv).empty());
}

TEST(FieldPatternTest, ArgumentArityMismatchIsSound) {
  // Calling a setter through a dispatch target with fewer arguments than
  // parameters must not crash nor lose soundness.
  auto P = parseOrDie(R"(
class T { }
class A {
  field f: T;
  method set(t: T): void {
    this.f = t;
  }
}
class Main {
  static method main(): void {
    var a: A;
    var t: T;
    a = new A;
    t = new T;
    call a.set(t);
  }
}
)");
  ContainerSpec Spec = ContainerSpec::forProgram(*P);
  CutShortcutPlugin Plugin(*P, Spec);
  Solver S(*P, {});
  S.addPlugin(&Plugin);
  PTAResult R = S.solve();
  EXPECT_GE(Plugin.stats().CutStores, 1u);
  MethodId Main = findMethod(*P, "Main", "main");
  FieldId F = P->resolveField(P->typeByName("A"), "f");
  EXPECT_EQ(
      R.ptField(allocOf(*P, findVar(*P, Main, "a")), F).size(), 1u);
}
