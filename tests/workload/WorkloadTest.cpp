//===- WorkloadTest.cpp - Synthetic benchmark generator tests -------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "pta/Solver.h"

#include <gtest/gtest.h>

using namespace csc;

TEST(WorkloadTest, GeneratesParsableVerifiablePrograms) {
  WorkloadConfig C;
  C.Seed = 7;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(verifyProgram(*P).empty());
  EXPECT_NE(P->entry(), InvalidId);
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadConfig C;
  C.Seed = 99;
  EXPECT_EQ(generateWorkload(C), generateWorkload(C));
  C.Seed = 100;
  WorkloadConfig C2 = C;
  C2.Seed = 101;
  EXPECT_NE(generateWorkload(C), generateWorkload(C2));
}

TEST(WorkloadTest, AllPaperProfilesBuild) {
  for (const WorkloadConfig &C : paperBenchmarkSuite()) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << C.Name << ": " << D;
    ASSERT_NE(P, nullptr) << C.Name;
    std::vector<std::string> Errors = verifyProgram(*P);
    for (const std::string &E : Errors)
      ADD_FAILURE() << C.Name << ": " << E;
    EXPECT_NE(P->entry(), InvalidId) << C.Name;
  }
}

TEST(WorkloadTest, ProgramsAreAnalyzable) {
  WorkloadConfig C;
  C.Seed = 5;
  C.NumScenarios = 4;
  C.ActionsPerScenario = 6;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_FALSE(R.Exhausted);
  EXPECT_GT(R.numReachableCI(), 10u);
  EXPECT_GT(R.numCallEdgesCI(), 20u);
}

TEST(WorkloadTest, ProgramsAreExecutable) {
  WorkloadConfig C;
  C.Seed = 6;
  C.NumScenarios = 4;
  C.ActionsPerScenario = 6;
  C.BombWidth = 4;
  C.BombDepth = 3;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);
  DynamicFacts F = interpret(*P);
  EXPECT_FALSE(F.Truncated);
  EXPECT_GT(F.ReachedMethods.size(), 10u);
  EXPECT_GT(F.Steps, 100u);
}

TEST(WorkloadTest, BombShapesDiffer) {
  WorkloadConfig Obj;
  Obj.BombWidth = 4;
  Obj.BombDepth = 3;
  Obj.BombMultiClass = false;
  WorkloadConfig Multi = Obj;
  Multi.BombMultiClass = true;
  std::string SObj = generateWorkload(Obj);
  std::string SMulti = generateWorkload(Multi);
  EXPECT_EQ(SObj.find("BombMk_"), std::string::npos);
  EXPECT_NE(SMulti.find("BombMk_"), std::string::npos);
}
