//===- WorkloadTest.cpp - Synthetic benchmark generator tests -------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "pta/Solver.h"

#include <gtest/gtest.h>

using namespace csc;

TEST(WorkloadTest, GeneratesParsableVerifiablePrograms) {
  WorkloadConfig C;
  C.Seed = 7;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(verifyProgram(*P).empty());
  EXPECT_NE(P->entry(), InvalidId);
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadConfig C;
  C.Seed = 99;
  EXPECT_EQ(generateWorkload(C), generateWorkload(C));
  C.Seed = 100;
  WorkloadConfig C2 = C;
  C2.Seed = 101;
  EXPECT_NE(generateWorkload(C), generateWorkload(C2));
}

TEST(WorkloadTest, AllPaperProfilesBuild) {
  for (const WorkloadConfig &C : paperBenchmarkSuite()) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << C.Name << ": " << D;
    ASSERT_NE(P, nullptr) << C.Name;
    std::vector<std::string> Errors = verifyProgram(*P);
    for (const std::string &E : Errors)
      ADD_FAILURE() << C.Name << ": " << E;
    EXPECT_NE(P->entry(), InvalidId) << C.Name;
  }
}

TEST(WorkloadTest, CopyCycleKnobInjectsCollapsibleCycles) {
  WorkloadConfig C;
  C.Seed = 17;
  C.NumScenarios = 6;
  C.ActionsPerScenario = 10;
  C.CopyCycleLen = 5;
  std::string Src = generateWorkload(C);
  EXPECT_NE(Src.find("Cyc"), std::string::npos);
  EXPECT_NE(Src.find("pass_0"), std::string::npos);

  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(verifyProgram(*P).empty());

  // The injected copy cycles must actually exercise the solver's cycle
  // elimination, and collapsing must not change the result.
  Solver SOn(*P, {});
  PTAResult ROn = SOn.solve();
  ASSERT_FALSE(ROn.Exhausted);
  EXPECT_GT(ROn.Stats.Scc.SccsFound, 0u);
  EXPECT_GT(ROn.Stats.Scc.MembersCollapsed, 0u);

  SolverOptions Off;
  Off.CycleElimination = false;
  Solver SOff(*P, Off);
  PTAResult ROff = SOff.solve();
  EXPECT_EQ(ROn.Stats.PtsInsertions, ROff.Stats.PtsInsertions);
  for (VarId V = 0; V < P->numVars(); ++V)
    ASSERT_EQ(ROn.pt(V).toVector(), ROff.pt(V).toVector());
}

TEST(WorkloadTest, ScalingTiersCarryCycleMaterial) {
  for (const WorkloadConfig &C : scalingSuite())
    EXPECT_GT(C.CopyCycleLen, 0u) << C.Name;
}

TEST(WorkloadTest, ProgramsAreAnalyzable) {
  WorkloadConfig C;
  C.Seed = 5;
  C.NumScenarios = 4;
  C.ActionsPerScenario = 6;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_FALSE(R.Exhausted);
  EXPECT_GT(R.numReachableCI(), 10u);
  EXPECT_GT(R.numCallEdgesCI(), 20u);
}

TEST(WorkloadTest, ProgramsAreExecutable) {
  WorkloadConfig C;
  C.Seed = 6;
  C.NumScenarios = 4;
  C.ActionsPerScenario = 6;
  C.BombWidth = 4;
  C.BombDepth = 3;
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(C, Diags);
  ASSERT_NE(P, nullptr);
  DynamicFacts F = interpret(*P);
  EXPECT_FALSE(F.Truncated);
  EXPECT_GT(F.ReachedMethods.size(), 10u);
  EXPECT_GT(F.Steps, 100u);
}

TEST(WorkloadTest, ScalingTiersBuildAndGrow) {
  std::vector<WorkloadConfig> Suite = scalingSuite();
  ASSERT_GE(Suite.size(), 4u);
  uint32_t PrevStmts = 0;
  for (const WorkloadConfig &C : Suite) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << C.Name << ": " << D;
    ASSERT_NE(P, nullptr) << C.Name;
    EXPECT_TRUE(verifyProgram(*P).empty()) << C.Name;
    EXPECT_NE(P->entry(), InvalidId) << C.Name;
    // Each tier must be strictly larger than the previous one.
    EXPECT_GT(P->numStmts(), PrevStmts) << C.Name;
    PrevStmts = P->numStmts();
  }
}

TEST(WorkloadTest, SmallestScalingTierIsAnalyzable) {
  std::vector<std::string> Diags;
  auto P = buildWorkloadProgram(scalingSuite().front(), Diags);
  ASSERT_NE(P, nullptr);
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_FALSE(R.Exhausted);
  EXPECT_GT(R.numReachableCI(), 10u);
}

TEST(WorkloadTest, FieldDensityAddsSlots) {
  WorkloadConfig C;
  C.FieldDensity = 3;
  std::string Src = generateWorkload(C);
  EXPECT_NE(Src.find("val_1"), std::string::npos);
  EXPECT_NE(Src.find("setVal_2"), std::string::npos);
  C.FieldDensity = 1;
  EXPECT_EQ(generateWorkload(C).find("val_1"), std::string::npos);
  std::vector<std::string> Diags;
  C.FieldDensity = 3;
  auto P = buildWorkloadProgram(C, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(verifyProgram(*P).empty());
}

TEST(WorkloadTest, CallChainDepthEmitsRelays) {
  WorkloadConfig C;
  C.CallChainDepth = 4;
  std::string Src = generateWorkload(C);
  EXPECT_NE(Src.find("relay_4"), std::string::npos);
  EXPECT_NE(Src.find("relay_0"), std::string::npos);
  C.CallChainDepth = 0;
  EXPECT_EQ(generateWorkload(C).find("class Chain"), std::string::npos);
  std::vector<std::string> Diags;
  C.CallChainDepth = 4;
  auto P = buildWorkloadProgram(C, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(verifyProgram(*P).empty());
}

TEST(WorkloadTest, ContainerMixShiftsActionBlend) {
  WorkloadConfig None;
  None.ContainerMixPct = 0;
  WorkloadConfig All = None;
  All.ContainerMixPct = 100;
  std::string SrcNone = generateWorkload(None);
  std::string SrcAll = generateWorkload(All);
  // At 100% every action is a list/map round trip; at 0% none is.
  EXPECT_EQ(SrcNone.find("HashMap"), std::string::npos);
  EXPECT_NE(SrcAll.find(".add("), std::string::npos);
  EXPECT_EQ(SrcAll.find("Util.select"), std::string::npos);
  for (WorkloadConfig C : {None, All}) {
    std::vector<std::string> Diags;
    auto P = buildWorkloadProgram(C, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << D;
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(verifyProgram(*P).empty());
  }
}

TEST(WorkloadTest, BombShapesDiffer) {
  WorkloadConfig Obj;
  Obj.BombWidth = 4;
  Obj.BombDepth = 3;
  Obj.BombMultiClass = false;
  WorkloadConfig Multi = Obj;
  Multi.BombMultiClass = true;
  std::string SObj = generateWorkload(Obj);
  std::string SMulti = generateWorkload(Multi);
  EXPECT_EQ(SObj.find("BombMk_"), std::string::npos);
  EXPECT_NE(SMulti.find("BombMk_"), std::string::npos);
}
