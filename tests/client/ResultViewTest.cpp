//===- ResultViewTest.cpp - Query layer vs dynamic ground truth -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Validates the ResultView query API on examples/figure1.jir (loaded from
// disk, stdlib prepended — the exact cscpta pipeline) against the
// interpreter's dynamic facts: every dynamically observed points-to fact,
// call edge and reached method must be over-approximated by pointsTo /
// calleesAt / reachableMethods, for both CI and CSC. On top of soundness,
// CSC's precision claims on Figure 1 are checked through the view
// (mayAlias separates the two cartons' results).
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace csc;

#ifndef CSC_EXAMPLES_DIR
#error "CSC_EXAMPLES_DIR must be defined by the build"
#endif

namespace {

class ResultViewTest : public ::testing::TestWithParam<const char *> {
protected:
  void SetUp() override {
    std::vector<std::string> Diags;
    S = AnalysisSession::fromFiles(
        {std::string(CSC_EXAMPLES_DIR) + "/figure1.jir"}, {}, Diags);
    for (const std::string &D : Diags)
      ADD_FAILURE() << D;
    ASSERT_NE(S, nullptr);
    Run = S->run(GetParam());
    ASSERT_TRUE(Run.completed()) << Run.Error;
  }

  std::unique_ptr<AnalysisSession> S;
  AnalysisRun Run;
};

} // namespace

TEST_P(ResultViewTest, SoundlyOverApproximatesDynamicFacts) {
  const Program &P = S->program();
  ResultView View = S->view(Run);
  DynamicFacts Dyn = interpret(P);
  ASSERT_FALSE(Dyn.Truncated);
  ASSERT_GE(Dyn.ReachedMethods.size(), 3u);

  for (MethodId M : Dyn.ReachedMethods) {
    EXPECT_TRUE(View.isReachable(M)) << P.methodString(M);
    std::vector<MethodId> Reach = View.reachableMethods();
    EXPECT_TRUE(std::binary_search(Reach.begin(), Reach.end(), M));
  }

  for (uint64_t E : Dyn.CallEdges) {
    CallSiteId CS = static_cast<CallSiteId>(E >> 32);
    MethodId M = static_cast<MethodId>(E & 0xFFFFFFFFu);
    const std::vector<MethodId> &Callees = View.calleesAt(CS);
    EXPECT_NE(std::find(Callees.begin(), Callees.end(), M), Callees.end())
        << "missed dynamic call edge to " << P.methodString(M);
  }

  for (const auto &[V, Objs] : Dyn.VarPointsTo)
    for (ObjId O : Objs)
      EXPECT_TRUE(View.pointsTo(V).contains(O))
          << "missed dynamic points-to " << P.var(V).Name << " -> o" << O;

  // Dynamic aliasing implies static mayAlias: result1/item1 share their
  // object at run time under both analyses.
  VarId Result1 = View.findVar("Main.main.result1");
  VarId Item1 = View.findVar("Main.main.item1");
  ASSERT_NE(Result1, InvalidId);
  ASSERT_NE(Item1, InvalidId);
  EXPECT_TRUE(View.mayAlias(Result1, Item1));
}

TEST_P(ResultViewTest, NameBasedLookups) {
  ResultView View = S->view(Run);
  EXPECT_NE(View.findMethod("Carton.getItem"), InvalidId);
  EXPECT_NE(View.findMethod("Main.main"), InvalidId);
  EXPECT_EQ(View.findMethod("Carton.noSuchMethod"), InvalidId);
  EXPECT_EQ(View.findMethod("NoSuchClass.m"), InvalidId);
  EXPECT_EQ(View.findMethod("nodots"), InvalidId);
  EXPECT_NE(View.findVar("Main.main.c1"), InvalidId);
  EXPECT_EQ(View.findVar("Main.main.zzz"), InvalidId);
  EXPECT_EQ(View.findVar("Main.nosuch.c1"), InvalidId);
}

TEST_P(ResultViewTest, CallSitesResolveToCartonMethods) {
  const Program &P = S->program();
  ResultView View = S->view(Run);
  MethodId Main = View.findMethod("Main.main");
  MethodId SetItem = View.findMethod("Carton.setItem");
  MethodId GetItem = View.findMethod("Carton.getItem");
  ASSERT_NE(Main, InvalidId);

  std::vector<CallSiteId> Sites = View.callSitesIn(Main);
  ASSERT_EQ(Sites.size(), 4u) << "main has four virtual calls";
  uint32_t SetCalls = 0, GetCalls = 0;
  for (CallSiteId CS : Sites) {
    const std::vector<MethodId> &Callees = View.calleesAt(CS);
    ASSERT_EQ(Callees.size(), 1u)
        << "monomorphic dispatch at " << P.callSite(CS).S;
    SetCalls += Callees[0] == SetItem ? 1 : 0;
    GetCalls += Callees[0] == GetItem ? 1 : 0;
  }
  EXPECT_EQ(SetCalls, 2u);
  EXPECT_EQ(GetCalls, 2u);
}

TEST_P(ResultViewTest, NoFailingCastsOrPolyCallsInFigure1) {
  ResultView View = S->view(Run);
  EXPECT_TRUE(View.mayFailCasts().empty());
  EXPECT_TRUE(View.polyCallSites().empty());
}

INSTANTIATE_TEST_SUITE_P(Analyses, ResultViewTest,
                         ::testing::Values("ci", "csc"));

// The precision side (beyond soundness): CSC separates the cartons where
// CI conflates them — observed through the query API alone.
TEST(ResultViewPrecisionTest, CscSeparatesWhereCIConflates) {
  std::vector<std::string> Diags;
  auto S = AnalysisSession::fromFiles(
      {std::string(CSC_EXAMPLES_DIR) + "/figure1.jir"}, {}, Diags);
  ASSERT_NE(S, nullptr);

  AnalysisRun CI = S->run("ci");
  AnalysisRun Csc = S->run("csc");
  ASSERT_TRUE(CI.completed());
  ASSERT_TRUE(Csc.completed());

  ResultView CIView = S->view(CI);
  ResultView CscView = S->view(Csc);
  VarId R1 = CIView.findVar("Main.main.result1");
  VarId R2 = CIView.findVar("Main.main.result2");
  ASSERT_NE(R1, InvalidId);
  ASSERT_NE(R2, InvalidId);

  EXPECT_TRUE(CIView.mayAlias(R1, R2)) << "CI merges the cartons";
  EXPECT_FALSE(CscView.mayAlias(R1, R2)) << "CSC separates the cartons";
  EXPECT_EQ(CIView.pointsTo(R1).size(), 2u);
  EXPECT_EQ(CscView.pointsTo(R1).size(), 1u);
}
