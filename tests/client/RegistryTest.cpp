//===- RegistryTest.cpp - Spec parser, name table, registry ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Covers the analysis-registry layer: the kind<->name round trips that pin
// the enum and the strings together, the spec grammar, parameter handling,
// error reporting, and custom registration.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRegistry.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

AnalysisRecipe buildOrDie(const std::string &Spec) {
  AnalysisRecipe R;
  std::string Error;
  EXPECT_TRUE(AnalysisRegistry::global().build(Spec, R, Error))
      << Spec << ": " << Error;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Kind <-> name round trips (the enum and strings can never drift)
//===----------------------------------------------------------------------===//

TEST(AnalysisNamesTest, EveryKindRoundTrips) {
  size_t Count = 0;
  const AnalysisNameEntry *Table = analysisNameTable(Count);
  ASSERT_EQ(Count, 6u) << "update the table when adding kinds";
  for (size_t I = 0; I != Count; ++I) {
    AnalysisKind K = Table[I].Kind;
    AnalysisKind Back;
    ASSERT_TRUE(parseAnalysisKind(analysisName(K), Back))
        << analysisName(K);
    EXPECT_EQ(Back, K) << analysisName(K);
  }
}

TEST(AnalysisNamesTest, AliasesAndCaseFoldResolve) {
  AnalysisKind K;
  ASSERT_TRUE(parseAnalysisKind("CSC", K));
  EXPECT_EQ(K, AnalysisKind::CSC);
  ASSERT_TRUE(parseAnalysisKind("Zipper", K));
  EXPECT_EQ(K, AnalysisKind::ZipperE);
  ASSERT_TRUE(parseAnalysisKind("k-obj", K));
  EXPECT_EQ(K, AnalysisKind::TwoObj);
  ASSERT_TRUE(parseAnalysisKind("2CallSite", K));
  EXPECT_EQ(K, AnalysisKind::TwoCallSite);
  EXPECT_FALSE(parseAnalysisKind("3obj", K));
  EXPECT_FALSE(parseAnalysisKind("", K));
}

TEST(AnalysisNamesTest, EveryCanonicalNameIsRegistered) {
  size_t Count = 0;
  const AnalysisNameEntry *Table = analysisNameTable(Count);
  const AnalysisRegistry &Reg = AnalysisRegistry::global();
  for (size_t I = 0; I != Count; ++I) {
    EXPECT_TRUE(Reg.known(Table[I].Canonical)) << Table[I].Canonical;
    for (const char *A : Table[I].Aliases) {
      if (A) {
        EXPECT_TRUE(Reg.known(A)) << A;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

TEST(SpecParserTest, NameOnly) {
  AnalysisSpec S;
  std::string Error;
  ASSERT_TRUE(parseAnalysisSpec("  CSC  ", S, Error)) << Error;
  EXPECT_EQ(S.Name, "csc");
  EXPECT_TRUE(S.Params.empty());
  EXPECT_EQ(S.Text, "CSC");
}

TEST(SpecParserTest, Params) {
  AnalysisSpec S;
  std::string Error;
  ASSERT_TRUE(parseAnalysisSpec("k-type; k = 3 ;engine=DOOP", S, Error))
      << Error;
  EXPECT_EQ(S.Name, "k-type");
  ASSERT_EQ(S.Params.size(), 2u);
  EXPECT_EQ(*S.param("k"), "3");
  EXPECT_EQ(*S.param("engine"), "doop");
  EXPECT_EQ(S.param("missing"), nullptr);
}

TEST(SpecParserTest, Malformed) {
  AnalysisSpec S;
  std::string Error;
  EXPECT_FALSE(parseAnalysisSpec("", S, Error));
  EXPECT_FALSE(parseAnalysisSpec("   ", S, Error));
  EXPECT_FALSE(parseAnalysisSpec("k=3", S, Error)); // no name head
  EXPECT_FALSE(parseAnalysisSpec("csc;kk", S, Error)); // no '='
  EXPECT_FALSE(parseAnalysisSpec("csc;=3", S, Error)); // empty key
}

TEST(SpecParserTest, SplitList) {
  std::vector<std::string> L =
      splitSpecList(" ci, k-type;k=3 ,,csc;container=0 ");
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0], "ci");
  EXPECT_EQ(L[1], "k-type;k=3");
  EXPECT_EQ(L[2], "csc;container=0");
  EXPECT_TRUE(splitSpecList("").empty());
}

//===----------------------------------------------------------------------===//
// Built-in recipes
//===----------------------------------------------------------------------===//

TEST(RegistryTest, BuildsEveryBuiltin) {
  for (const auto &[Name, Desc] : AnalysisRegistry::global().list()) {
    (void)Desc;
    AnalysisRecipe R = buildOrDie(Name);
    EXPECT_EQ(R.Name, Name);
  }
}

TEST(RegistryTest, KindRecipesMatchHandRolledWiring) {
  AnalysisRecipe CI = buildOrDie("ci");
  EXPECT_FALSE(CI.UseCsc);
  EXPECT_FALSE(CI.UseZipper);
  EXPECT_EQ(CI.MakeSelector, nullptr);
  EXPECT_FALSE(CI.DoopMode);

  AnalysisRecipe Csc = buildOrDie("csc");
  EXPECT_TRUE(Csc.UseCsc);
  EXPECT_TRUE(Csc.Csc.FieldLoad);
  EXPECT_EQ(Csc.Kind, AnalysisKind::CSC);

  AnalysisRecipe CscDoop = buildOrDie("csc-doop");
  EXPECT_TRUE(CscDoop.UseCsc);
  EXPECT_TRUE(CscDoop.DoopMode);
  EXPECT_FALSE(CscDoop.Csc.FieldLoad) << "Datalog cannot express CutPropLoad";

  AnalysisRecipe Z = buildOrDie("zipper-e;pv=0.05;k=3");
  EXPECT_TRUE(Z.UseZipper);
  EXPECT_EQ(Z.Zipper.K, 3u);
  EXPECT_DOUBLE_EQ(Z.Zipper.CostFraction, 0.05);
  EXPECT_NE(Z.MakeSelector, nullptr);

  AnalysisRecipe TwoObj = buildOrDie("2obj");
  EXPECT_NE(TwoObj.MakeSelector, nullptr);
  EXPECT_NE(TwoObj.MakeSelector(), nullptr);
  EXPECT_EQ(TwoObj.Kind, AnalysisKind::TwoObj);

  AnalysisRecipe KType = buildOrDie("k-type;k=3");
  EXPECT_EQ(KType.Kind, AnalysisKind::TwoType);

  AnalysisRecipe Doop2cs = buildOrDie("2cs;engine=doop");
  EXPECT_TRUE(Doop2cs.DoopMode);
}

TEST(RegistryTest, RejectsBadSpecs) {
  const AnalysisRegistry &Reg = AnalysisRegistry::global();
  AnalysisRecipe R;
  std::string Error;
  EXPECT_FALSE(Reg.build("no-such-analysis", R, Error));
  EXPECT_NE(Error.find("unknown analysis"), std::string::npos) << Error;
  EXPECT_FALSE(Reg.build("ci;k=2", R, Error)) << "ci takes no k";
  EXPECT_FALSE(Reg.build("2obj;k=0", R, Error));
  EXPECT_FALSE(Reg.build("2obj;k=banana", R, Error));
  EXPECT_FALSE(Reg.build("csc;container=maybe", R, Error));
  EXPECT_FALSE(Reg.build("csc;engine=dopo", R, Error));
}

TEST(RegistryTest, CustomRegistration) {
  AnalysisRegistry Reg = AnalysisRegistry::withBuiltins();
  Reg.add("csc-lite", "CSC without the container pattern",
          [](const AnalysisSpec &Spec, AnalysisRecipe &Out,
             std::string &Error) {
            (void)Error;
            Out = makeKindRecipe(AnalysisKind::CSC, 2, false, {}, {});
            Out.Csc.Container = false;
            Out.Name = Spec.Text;
            return true;
          });
  Reg.addAlias("lite", "csc-lite");
  EXPECT_TRUE(Reg.known("csc-lite"));
  EXPECT_TRUE(Reg.known("LITE"));

  AnalysisRecipe R;
  std::string Error;
  ASSERT_TRUE(Reg.build("lite", R, Error)) << Error;
  EXPECT_TRUE(R.UseCsc);
  EXPECT_FALSE(R.Csc.Container);

  // The custom name is local to this registry.
  EXPECT_FALSE(AnalysisRegistry::global().known("csc-lite"));
}
