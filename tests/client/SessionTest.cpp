//===- SessionTest.cpp - AnalysisSession behaviors ------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Session-level contracts: construction paths and their diagnostics,
// explicit run statuses, spec errors, progress callbacks, Zipper
// pre-analysis caching, JSON reports, and the deprecated runAnalysis
// wrapper staying faithful to the new API.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "client/AnalysisRunner.h"
#include "client/Report.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

std::unique_ptr<AnalysisSession> figure1Session(
    AnalysisSession::Options O = [] {
      AnalysisSession::Options Def;
      Def.WithStdlib = false;
      return Def;
    }()) {
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::fromSource(
      "fig1.jir", figure1Source(), std::move(O), Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_NE(S, nullptr);
  return S;
}

} // namespace

TEST(SessionTest, ParseErrorsAreReported) {
  std::vector<std::string> Diags;
  AnalysisSession::Options O;
  O.WithStdlib = false;
  EXPECT_EQ(AnalysisSession::fromSource("bad.jir", "class {", std::move(O),
                                        Diags),
            nullptr);
  EXPECT_FALSE(Diags.empty());
}

TEST(SessionTest, MissingEntryPointIsReported) {
  std::vector<std::string> Diags;
  AnalysisSession::Options O;
  O.WithStdlib = false;
  EXPECT_EQ(AnalysisSession::fromSource("noentry.jir", "class A { }",
                                        std::move(O), Diags),
            nullptr);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.back().find("entry"), std::string::npos);
}

TEST(SessionTest, FromFilesReportsMissingFile) {
  std::vector<std::string> Diags;
  EXPECT_EQ(AnalysisSession::fromFiles({"/nonexistent/x.jir"}, {}, Diags),
            nullptr);
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags.front().find("cannot open"), std::string::npos);
}

TEST(SessionTest, SpecErrorsYieldStatusNotCrash) {
  auto S = figure1Session();
  ASSERT_NE(S, nullptr);
  AnalysisRun Bad = S->run("definitely-not-an-analysis");
  EXPECT_EQ(Bad.Status, RunStatus::SpecError);
  EXPECT_FALSE(Bad.completed());
  EXPECT_NE(Bad.Error.find("unknown analysis"), std::string::npos);

  AnalysisRun BadParam = S->run("2obj;k=zero");
  EXPECT_EQ(BadParam.Status, RunStatus::SpecError);
}

TEST(SessionTest, ExhaustionIsAnExplicitStatus) {
  AnalysisSession::Options O;
  O.WithStdlib = false;
  O.WorkBudget = 1;
  auto S = figure1Session(std::move(O));
  ASSERT_NE(S, nullptr);
  AnalysisRun Out = S->run("ci");
  EXPECT_EQ(Out.Status, RunStatus::BudgetExhausted);
  EXPECT_TRUE(Out.exhausted());
  // Exhausted runs carry no metrics (they would not be meaningful).
  EXPECT_EQ(Out.Metrics.ReachMethods, 0u);
  EXPECT_STREQ(runStatusName(Out.Status), "budget-exhausted");
}

TEST(SessionTest, ProgressCallbackSeesPhases) {
  std::vector<std::string> Phases;
  AnalysisSession::Options O;
  O.WithStdlib = false;
  O.Progress = [&](const char *Phase, const std::string &) {
    Phases.push_back(Phase);
  };
  auto S = figure1Session(std::move(O));
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->run("zipper-e").completed());

  auto Has = [&](const char *P) {
    for (const std::string &X : Phases)
      if (X == P)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("parse"));
  EXPECT_TRUE(Has("verify"));
  EXPECT_TRUE(Has("zipper-pre"));
  EXPECT_TRUE(Has("solve"));
  EXPECT_TRUE(Has("metrics"));
}

TEST(SessionTest, ZipperCacheIsKeyedOnOptions) {
  auto S = figure1Session();
  ASSERT_NE(S, nullptr);
  AnalysisRun A = S->run("zipper-e");
  ASSERT_TRUE(A.completed());
  EXPECT_FALSE(A.PreFromCache);

  // Same options: cached.
  AnalysisRun B = S->run("zipper-e");
  EXPECT_TRUE(B.PreFromCache);

  // Different k: a fresh pre-analysis (k feeds the cost model).
  AnalysisRun C = S->run("zipper-e;k=3");
  EXPECT_FALSE(C.PreFromCache);

  // And the first key is still cached.
  AnalysisRun D = S->run("zipper-e");
  EXPECT_TRUE(D.PreFromCache);
}

TEST(SessionTest, PhaseTimingsAddUp) {
  auto S = figure1Session();
  ASSERT_NE(S, nullptr);
  AnalysisRun Out = S->run("csc");
  ASSERT_TRUE(Out.completed());
  EXPECT_GT(Out.Timings.TotalMs, 0.0);
  EXPECT_GT(Out.Timings.MainMs, 0.0);
  EXPECT_LE(Out.Timings.MainMs, Out.Timings.TotalMs);
  EXPECT_EQ(Out.Timings.PreMs, 0.0) << "no pre-analysis for csc";
}

TEST(SessionTest, RunJsonIsBalancedAndCarriesMetrics) {
  auto S = figure1Session();
  ASSERT_NE(S, nullptr);
  AnalysisRun Out = S->run("csc");
  ASSERT_TRUE(Out.completed());
  std::string Json = runJson(Out);
  EXPECT_NE(Json.find("\"analysis\":\"csc\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"status\":\"completed\""), std::string::npos);
  EXPECT_NE(Json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(Json.find("\"cut_shortcut\":"), std::string::npos);

  // Structural sanity: braces and brackets balance.
  int Depth = 0;
  for (char C : Json) {
    Depth += (C == '{' || C == '[') ? 1 : 0;
    Depth -= (C == '}' || C == ']') ? 1 : 0;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(SessionTest, JsonEscapesControlCharacters) {
  JsonWriter J;
  J.beginObject().kv("k", "a\"b\\c\nd\te\x01").endObject();
  EXPECT_EQ(J.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(SessionTest, DeprecatedRunnerMatchesSession) {
  auto P = parseOrDie(figure1Source());
  AnalysisSession S(*P);
  AnalysisRun New = S.run("csc");
  ASSERT_TRUE(New.completed());

  RunConfig C;
  C.Kind = AnalysisKind::CSC;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  RunOutcome Old = runAnalysis(*P, C);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  EXPECT_FALSE(Old.Exhausted);
  EXPECT_EQ(Old.Metrics.FailCasts, New.Metrics.FailCasts);
  EXPECT_EQ(Old.Metrics.ReachMethods, New.Metrics.ReachMethods);
  EXPECT_EQ(Old.Metrics.PolyCalls, New.Metrics.PolyCalls);
  EXPECT_EQ(Old.Metrics.CallEdges, New.Metrics.CallEdges);
  EXPECT_EQ(Old.Csc.ShortcutEdges, New.Csc.ShortcutEdges);
  for (VarId V = 0; V < P->numVars(); ++V)
    EXPECT_EQ(Old.Result.pt(V).toVector(), New.Result.pt(V).toVector());
}
