//===- EndToEndSmokeTest.cpp - AnalysisSession end-to-end smoke -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Runs the full parse -> verify -> analyze pipeline on the paper's Figure 1
// program through one AnalysisSession under CI, 2obj and Cut-Shortcut, and
// checks that the precision ordering the paper establishes holds: every
// context-sensitive (or CSC) points-to set is a subset of the
// context-insensitive one, and the derived metrics never get worse.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "client/AnalysisSession.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

AnalysisRun runSpec(AnalysisSession &S, const std::string &Spec) {
  AnalysisRun O = S.run(Spec);
  EXPECT_EQ(O.Status, RunStatus::Completed)
      << Spec << ": " << O.Error;
  return O;
}

/// True if pt(V) under Sub is a subset of pt(V) under Super, for every
/// variable of the program.
void expectPointwiseSubset(const Program &P, const PTAResult &Sub,
                           const PTAResult &Super, const char *SubName) {
  for (VarId V = 0; V < P.numVars(); ++V) {
    const PointsToSet &S = Sub.pt(V);
    const PointsToSet &Sup = Super.pt(V);
    S.forEach([&](ObjId O) {
      EXPECT_TRUE(Sup.contains(O))
          << SubName << ": pt(" << P.var(V).Name << ") contains o" << O
          << " which CI's set does not — unsound refinement";
    });
  }
}

std::unique_ptr<AnalysisSession> sessionOrDie(const std::string &Source) {
  std::vector<std::string> Diags;
  AnalysisSession::Options O;
  O.WithStdlib = false;
  std::unique_ptr<AnalysisSession> S =
      AnalysisSession::fromSource("test.jir", Source, std::move(O), Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_NE(S, nullptr);
  return S;
}

} // namespace

TEST(EndToEndSmoke, PrecisionOrderingOnFigure1) {
  std::unique_ptr<AnalysisSession> S = sessionOrDie(figure1Source());
  ASSERT_NE(S, nullptr);
  const Program &P = S->program();

  // One session, many analyses — the program is parsed and verified once.
  AnalysisRun CI = runSpec(*S, "ci");
  AnalysisRun TwoObj = runSpec(*S, "2obj");
  AnalysisRun Csc = runSpec(*S, "csc");

  // Every analysis must reach main and the Carton methods.
  EXPECT_GE(CI.Metrics.ReachMethods, 3u);

  // Refinements only: CSC and 2obj points-to sets are subsets of CI's.
  expectPointwiseSubset(P, Csc.Result, CI.Result, "CSC");
  expectPointwiseSubset(P, TwoObj.Result, CI.Result, "2obj");

  // Aggregate metrics never get worse than CI (smaller is better).
  EXPECT_LE(Csc.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(Csc.Metrics.PolyCalls, CI.Metrics.PolyCalls);
  EXPECT_LE(Csc.Metrics.CallEdges, CI.Metrics.CallEdges);
  EXPECT_LE(Csc.Metrics.ReachMethods, CI.Metrics.ReachMethods);
  EXPECT_LE(TwoObj.Metrics.FailCasts, CI.Metrics.FailCasts);
  EXPECT_LE(TwoObj.Metrics.PolyCalls, CI.Metrics.PolyCalls);
  EXPECT_LE(TwoObj.Metrics.CallEdges, CI.Metrics.CallEdges);
}

TEST(EndToEndSmoke, CscSeparatesFigure1Cartons) {
  std::unique_ptr<AnalysisSession> S = sessionOrDie(figure1Source());
  ASSERT_NE(S, nullptr);
  const Program &P = S->program();
  MethodId Main = findMethod(P, "Main", "main");
  ASSERT_NE(Main, InvalidId);
  VarId Result1 = findVar(P, Main, "result1");
  VarId Result2 = findVar(P, Main, "result2");
  VarId Item1 = findVar(P, Main, "item1");
  VarId Item2 = findVar(P, Main, "item2");
  ObjId OItem1 = allocOf(P, Item1);
  ObjId OItem2 = allocOf(P, Item2);

  // CI conflates the two cartons' contents (Fig. 1a)...
  AnalysisRun CI = runSpec(*S, "ci");
  EXPECT_EQ(CI.Result.pt(Result1).size(), 2u);
  EXPECT_TRUE(CI.Result.mayAlias(Result1, Result2));

  // ...Cut-Shortcut keeps them apart without any contexts (Fig. 1b).
  AnalysisRun Csc = runSpec(*S, "csc");
  EXPECT_EQ(Csc.Result.pt(Result1).toVector(), std::vector<uint32_t>{OItem1});
  EXPECT_EQ(Csc.Result.pt(Result2).toVector(), std::vector<uint32_t>{OItem2});
  EXPECT_GT(Csc.Csc.ShortcutEdges, 0u);
}

TEST(EndToEndSmoke, RunAllReproducesFigure1Ordering) {
  std::unique_ptr<AnalysisSession> S = sessionOrDie(figure1Source());
  ASSERT_NE(S, nullptr);

  // The cscpta acceptance pipeline: one spec list, in order.
  std::vector<AnalysisRun> Runs = S->runAll("ci,csc,2obj");
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_EQ(Runs[0].Name, "ci");
  EXPECT_EQ(Runs[1].Name, "csc");
  EXPECT_EQ(Runs[2].Name, "2obj");
  for (const AnalysisRun &R : Runs)
    ASSERT_TRUE(R.completed()) << R.Name;

  // CSC and 2obj agree on Figure 1 and are never worse than CI.
  EXPECT_EQ(Runs[1].Metrics.FailCasts, Runs[2].Metrics.FailCasts);
  EXPECT_LE(Runs[1].Metrics.CallEdges, Runs[0].Metrics.CallEdges);
  EXPECT_LE(Runs[2].Metrics.CallEdges, Runs[0].Metrics.CallEdges);
}
