//===- SpecErrorTest.cpp - Exact spec-parser diagnostics ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Pins the EXACT diagnostic text of every spec-parser and registry error
// path. These strings are user-facing contract: docs/CLI.md quotes them
// verbatim, so a change here must update the docs (and vice versa).
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRegistry.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

std::string specParseError(const std::string &Text) {
  AnalysisSpec S;
  std::string Error;
  EXPECT_FALSE(parseAnalysisSpec(Text, S, Error)) << Text;
  return Error;
}

std::string buildError(const std::string &Text) {
  AnalysisRecipe R;
  std::string Error;
  EXPECT_FALSE(AnalysisRegistry::global().build(Text, R, Error)) << Text;
  return Error;
}

} // namespace

//===----------------------------------------------------------------------===//
// Grammar-level errors (parseAnalysisSpec)
//===----------------------------------------------------------------------===//

TEST(SpecErrorTest, EmptySpec) {
  EXPECT_EQ(specParseError(""), "empty analysis spec");
  EXPECT_EQ(specParseError("   "), "empty analysis spec");
}

TEST(SpecErrorTest, MissingNameHead) {
  EXPECT_EQ(specParseError("k=3"),
            "analysis spec must start with a name: 'k=3'");
}

TEST(SpecErrorTest, MalformedParameter) {
  EXPECT_EQ(specParseError("csc;kk"),
            "malformed parameter 'kk' in spec 'csc;kk' "
            "(expected key=value)");
  EXPECT_EQ(specParseError("csc;=3"),
            "malformed parameter '=3' in spec 'csc;=3' "
            "(expected key=value)");
}

TEST(SpecErrorTest, DuplicateParameterKey) {
  EXPECT_EQ(specParseError("2obj;k=2;k=3"),
            "duplicate parameter 'k' in spec '2obj;k=2;k=3'");
  // Case-folded keys collide too.
  EXPECT_EQ(specParseError("2obj;K=2;k=3"),
            "duplicate parameter 'k' in spec '2obj;K=2;k=3'");
}

//===----------------------------------------------------------------------===//
// Registry-level errors (AnalysisRegistry::build)
//===----------------------------------------------------------------------===//

TEST(SpecErrorTest, UnknownAnalysisListsKnownNames) {
  EXPECT_EQ(buildError("no-such-analysis"),
            "unknown analysis 'no-such-analysis' "
            "(known: 2cs 2obj 2type ci csc csc-doop zipper-e)");
}

TEST(SpecErrorTest, UnknownParameterListsKnownKeys) {
  EXPECT_EQ(buildError("ci;q=1"),
            "analysis 'ci' does not accept parameter 'q' "
            "(known: engine scc par)");
  EXPECT_EQ(buildError("csc;k=2"),
            "analysis 'csc' does not accept parameter 'k' "
            "(known: engine scc par field load container local)");
}

TEST(SpecErrorTest, MalformedParameterValues) {
  EXPECT_EQ(buildError("2obj;k=banana"),
            "parameter 'k' expects a positive integer, got 'banana'");
  EXPECT_EQ(buildError("2obj;k=0"),
            "parameter 'k' expects a positive integer, got '0'");
  EXPECT_EQ(buildError("zipper-e;pv=x"),
            "parameter 'pv' expects a number, got 'x'");
  EXPECT_EQ(buildError("csc;container=maybe"),
            "parameter 'container' expects a boolean (0/1), got 'maybe'");
  EXPECT_EQ(buildError("ci;scc=maybe"),
            "parameter 'scc' expects a boolean (0/1), got 'maybe'");
  EXPECT_EQ(buildError("ci;engine=dopo"),
            "unknown engine 'dopo' (expected doop or taie)");
}

TEST(SpecErrorTest, MalformedParValues) {
  // `par` accepts 1..64 on every analysis; anything else fails with a
  // pinned diagnostic (docs/CLI.md quotes these).
  EXPECT_EQ(buildError("ci;par=0"),
            "parameter 'par' expects a positive integer, got '0'");
  EXPECT_EQ(buildError("csc;par=many"),
            "parameter 'par' expects a positive integer, got 'many'");
  EXPECT_EQ(buildError("2obj;par=1000"),
            "parameter 'par' expects at most 64 lanes, got '1000'");
  EXPECT_EQ(buildError("csc-doop;par=-2"),
            "parameter 'par' expects a positive integer, got '-2'");
}

//===----------------------------------------------------------------------===//
// Canonicalization (the result-cache key)
//===----------------------------------------------------------------------===//

TEST(SpecErrorTest, CanonicalSpecNormalizesSpellingAndOrder) {
  std::string A, B, Error;
  ASSERT_TRUE(canonicalSpec("CSC; engine=doop ;container=0", A, Error))
      << Error;
  ASSERT_TRUE(canonicalSpec("csc;container=0;engine=doop", B, Error))
      << Error;
  EXPECT_EQ(A, B);
  EXPECT_EQ(A, "csc;container=0;engine=doop");

  ASSERT_TRUE(canonicalSpec("  ci  ", A, Error)) << Error;
  EXPECT_EQ(A, "ci");

  // Malformed input propagates the parse diagnostic.
  EXPECT_FALSE(canonicalSpec("k=3", A, Error));
  EXPECT_EQ(Error, "analysis spec must start with a name: 'k=3'");
}
