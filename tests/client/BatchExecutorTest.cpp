//===- BatchExecutorTest.cpp - Batch engine, cache, manifest --------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Covers the batch analysis engine: determinism across --jobs (the
// aggregate report must be byte-identical for 1 vs 8 pool threads),
// result-cache behavior within and across run() calls, program
// fingerprinting, manifest parsing, and failure sequencing.
//
//===----------------------------------------------------------------------===//

#include "client/BatchExecutor.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

// Fig. 1-shaped program: two Cartons storing distinct Items.
const char *FigSource = R"(
class Item { }
class Carton {
  field item: Item;
  method setItem(item: Item): void {
    this.item = item;
  }
  method getItem(): Item {
    var r: Item;
    r = this.item;
    return r;
  }
}
class Main {
  static method main(): void {
    var c1: Carton;
    var c2: Carton;
    var i1: Item;
    var i2: Item;
    var r1: Item;
    var r2: Item;
    c1 = new Carton;
    c2 = new Carton;
    i1 = new Item;
    i2 = new Item;
    call c1.setItem(i1);
    call c2.setItem(i2);
    r1 = call c1.getItem();
    r2 = call c2.getItem();
  }
}
)";

// A second, structurally different program.
const char *OtherSource = R"(
class Payload { }
class Box {
  field v: Payload;
  method set(x: Payload): void {
    this.v = x;
  }
}
class Main {
  static method main(): void {
    var b: Box;
    var o: Payload;
    b = new Box;
    o = new Payload;
    call b.set(o);
  }
}
)";

std::vector<BatchEntry> twoProgramBatch() {
  BatchEntry A;
  A.Label = "fig";
  A.SourceName = "fig.jir";
  A.SourceText = FigSource;
  A.Specs = {"ci", "csc", "2obj"};
  BatchEntry B;
  B.Label = "other";
  B.SourceName = "other.jir";
  B.SourceText = OtherSource;
  B.Specs = {"ci", "csc"};
  return {A, B};
}

BatchExecutor::Options withJobs(unsigned Jobs) {
  BatchExecutor::Options O;
  O.Jobs = Jobs;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism and correctness
//===----------------------------------------------------------------------===//

TEST(BatchExecutorTest, AggregateIsByteIdenticalAcrossJobs) {
  std::vector<BatchEntry> Entries = twoProgramBatch();
  BatchExecutor Seq(withJobs(1));
  BatchExecutor Par(withJobs(8));
  BatchReport R1 = Seq.run(Entries);
  BatchReport R8 = Par.run(Entries);
  EXPECT_EQ(R1.Jobs, 1u);
  EXPECT_EQ(R8.Jobs, 8u);
  EXPECT_EQ(R1.aggregateJson(), R8.aggregateJson());
  EXPECT_EQ(R1.totalRuns(), 5u);
  EXPECT_EQ(R1.exitCode(), 0);
}

TEST(BatchExecutorTest, BatchMatchesDirectSessionRuns) {
  std::vector<BatchEntry> Entries = twoProgramBatch();
  BatchReport R = BatchExecutor(withJobs(4)).run(Entries);
  ASSERT_EQ(R.Entries.size(), 2u);
  ASSERT_EQ(R.Entries[0].Runs.size(), 3u);

  std::vector<std::string> Diags;
  auto S = AnalysisSession::fromSource("fig.jir", FigSource, {}, Diags);
  ASSERT_NE(S, nullptr);
  for (size_t I = 0; I != 3; ++I) {
    AnalysisRun Direct = S->run(R.Entries[0].Runs[I].Spec);
    EXPECT_EQ(R.Entries[0].Runs[I].Status, Direct.Status);
    EXPECT_EQ(R.Entries[0].Runs[I].Metrics.FailCasts,
              Direct.Metrics.FailCasts);
    EXPECT_EQ(R.Entries[0].Runs[I].Metrics.ReachMethods,
              Direct.Metrics.ReachMethods);
    EXPECT_EQ(R.Entries[0].Runs[I].Metrics.CallEdges,
              Direct.Metrics.CallEdges);
  }
}

TEST(BatchExecutorTest, SecondIdenticalRunIsServedFromCache) {
  std::vector<BatchEntry> Entries = twoProgramBatch();
  BatchExecutor Exec(withJobs(2));
  BatchReport First = Exec.run(Entries);
  EXPECT_EQ(First.CacheHits, 0u);
  EXPECT_EQ(First.CacheMisses, First.totalRuns());

  BatchReport Second = Exec.run(Entries);
  EXPECT_EQ(Second.CacheHits, Second.totalRuns());
  EXPECT_EQ(Second.CacheMisses, 0u);
  for (const BatchEntryResult &E : Second.Entries)
    for (const BatchRunResult &R : E.Runs)
      EXPECT_TRUE(R.FromCache) << E.Label << " " << R.Spec;
  // Cached results serialize identically to computed ones.
  EXPECT_EQ(First.aggregateJson(), Second.aggregateJson());
}

TEST(BatchExecutorTest, DuplicateWorkWithinOneBatchHitsTheCache) {
  // The same (program, spec) pair under two labels and spec spellings:
  // content fingerprint + canonical spec dedupe them.
  BatchEntry A;
  A.Label = "a";
  A.SourceName = "fig.jir";
  A.SourceText = FigSource;
  A.Specs = {"csc"};
  BatchEntry B = A;
  B.Label = "b";
  B.SourceName = "fig-copy.jir"; // different identity, same content
  B.Specs = {" CSC "};
  BatchReport R = BatchExecutor(withJobs(1)).run({A, B});
  EXPECT_EQ(R.CacheMisses, 1u);
  EXPECT_EQ(R.CacheHits, 1u);
  ASSERT_EQ(R.Entries[1].Runs.size(), 1u);
  EXPECT_TRUE(R.Entries[1].Runs[0].FromCache);
  // Both report under the canonical name regardless of spelling.
  EXPECT_EQ(R.Entries[0].Runs[0].RunJson, R.Entries[1].Runs[0].RunJson);
}

TEST(BatchExecutorTest, SpecAndLoadFailuresAreSequenced) {
  BatchEntry Bad;
  Bad.Label = "bad-program";
  Bad.SourceName = "bad.jir";
  Bad.SourceText = "class Broken {"; // parse error
  Bad.Specs = {"ci"};
  BatchEntry BadSpec;
  BadSpec.Label = "bad-spec";
  BadSpec.SourceName = "fig.jir";
  BadSpec.SourceText = FigSource;
  BadSpec.Specs = {"no-such-analysis", "ci"};
  BatchReport R = BatchExecutor(withJobs(4)).run({Bad, BadSpec});

  ASSERT_EQ(R.Entries.size(), 2u);
  EXPECT_TRUE(R.Entries[0].LoadFailed);
  EXPECT_FALSE(R.Entries[0].LoadDiags.empty());
  EXPECT_TRUE(R.Entries[0].Runs.empty());

  EXPECT_FALSE(R.Entries[1].LoadFailed);
  ASSERT_EQ(R.Entries[1].Runs.size(), 2u);
  EXPECT_EQ(R.Entries[1].Runs[0].Status, RunStatus::SpecError);
  EXPECT_NE(R.Entries[1].Runs[0].Error.find("unknown analysis"),
            std::string::npos);
  EXPECT_EQ(R.Entries[1].Runs[1].Status, RunStatus::Completed);

  EXPECT_TRUE(R.anyLoadFailed());
  EXPECT_TRUE(R.anySpecError());
  EXPECT_EQ(R.exitCode(), 1);
}

TEST(BatchExecutorTest, AliasedSpellingsShareOneCacheKey) {
  // "k-type" is a registry alias of "2type": identical configuration,
  // so the second entry must be a cache hit and both must serialize
  // under the one canonical name.
  BatchEntry A;
  A.Label = "canonical";
  A.SourceName = "fig.jir";
  A.SourceText = FigSource;
  A.Specs = {"2type;k=3"};
  BatchEntry B = A;
  B.Label = "aliased";
  B.Specs = {"k-type;k=3"};
  BatchReport R = BatchExecutor(withJobs(1)).run({A, B});
  EXPECT_EQ(R.CacheMisses, 1u);
  EXPECT_EQ(R.CacheHits, 1u);
  ASSERT_EQ(R.Entries[1].Runs.size(), 1u);
  EXPECT_TRUE(R.Entries[1].Runs[0].FromCache);
  EXPECT_EQ(R.Entries[0].Runs[0].Canonical, "2type;k=3");
  EXPECT_EQ(R.Entries[1].Runs[0].Canonical, "2type;k=3");
  EXPECT_EQ(R.Entries[0].Runs[0].RunJson, R.Entries[1].Runs[0].RunJson);
}

TEST(BatchExecutorTest, WallClockExhaustionIsNotCached) {
  // Wall-clock timeouts are machine/load-dependent; caching one would
  // poison every later identical request. (A work-budget exhaustion, by
  // contrast, is exact — CacheKeyCoversSessionBudgets relies on it.)
  BatchExecutor::Options O;
  O.Jobs = 1;
  O.TimeBudgetMs = 1e-9; // exhausts at the solver's first budget check
  BatchExecutor Exec(O);
  BatchEntry E;
  E.Label = "timeout";
  E.SourceName = "fig.jir";
  E.SourceText = FigSource;
  E.Specs = {"ci"};
  BatchReport First = Exec.run({E});
  ASSERT_EQ(First.Entries[0].Runs.size(), 1u);
  EXPECT_EQ(First.Entries[0].Runs[0].Status, RunStatus::BudgetExhausted);
  BatchReport Second = Exec.run({E});
  EXPECT_EQ(Second.CacheHits, 0u) << "timed-out result must recompute";
  EXPECT_EQ(Second.Entries[0].Runs[0].Status,
            RunStatus::BudgetExhausted);
}

TEST(BatchExecutorTest, CacheKeyCoversSessionBudgets) {
  // Same program content under two different budgets must not
  // cross-serve: the tight-budget entry exhausts, the unlimited one
  // completes, and neither hits the other's cache line.
  std::vector<std::string> Diags;
  AnalysisSession::Options Tight;
  Tight.WorkBudget = 1;
  std::shared_ptr<AnalysisSession> A =
      AnalysisSession::fromSource("fig.jir", FigSource, Tight, Diags);
  std::shared_ptr<AnalysisSession> B =
      AnalysisSession::fromSource("fig.jir", FigSource, {}, Diags);
  ASSERT_TRUE(A && B);
  BatchEntry EA;
  EA.Label = "tight";
  EA.Session = std::move(A);
  EA.Specs = {"ci"};
  BatchEntry EB;
  EB.Label = "free";
  EB.Session = std::move(B);
  EB.Specs = {"ci"};
  BatchReport R = BatchExecutor(withJobs(1)).run({EA, EB});
  ASSERT_EQ(R.Entries.size(), 2u);
  ASSERT_EQ(R.Entries[0].Runs.size(), 1u);
  ASSERT_EQ(R.Entries[1].Runs.size(), 1u);
  EXPECT_EQ(R.Entries[0].Runs[0].Status, RunStatus::BudgetExhausted);
  EXPECT_EQ(R.Entries[1].Runs[0].Status, RunStatus::Completed);
  EXPECT_EQ(R.CacheHits, 0u);
  EXPECT_EQ(R.exitCode(), 3);
}

TEST(BatchExecutorTest, FingerprintTracksContentNotIdentity) {
  std::vector<std::string> Diags;
  auto A = AnalysisSession::fromSource("a.jir", FigSource, {}, Diags);
  auto B = AnalysisSession::fromSource("b.jir", FigSource, {}, Diags);
  auto C = AnalysisSession::fromSource("c.jir", OtherSource, {}, Diags);
  ASSERT_TRUE(A && B && C);
  EXPECT_EQ(programFingerprint(A->program()),
            programFingerprint(B->program()));
  EXPECT_NE(programFingerprint(A->program()),
            programFingerprint(C->program()));
}

//===----------------------------------------------------------------------===//
// Result-cache byte budget (LRU)
//===----------------------------------------------------------------------===//

namespace {

// One entry of this shape costs key(1) + json(100) + error(0) + 64
// fixed overhead = 165 estimated bytes.
ResultCache::Value valueOfJsonBytes(size_t N) {
  ResultCache::Value V;
  V.RunJson.assign(N, 'x');
  return V;
}
constexpr uint64_t EntryCost = 1 + 100 + 64;

} // namespace

TEST(ResultCacheTest, ZeroBudgetIsUnlimited) {
  ResultCache C;
  EXPECT_EQ(C.byteBudget(), 0u);
  for (int I = 0; I != 32; ++I)
    C.store(std::string(1, static_cast<char>('a' + I)),
            valueOfJsonBytes(100));
  EXPECT_EQ(C.size(), 32u);
  EXPECT_EQ(C.evictions(), 0u);
  EXPECT_EQ(C.bytesUsed(), 32 * EntryCost);
}

TEST(ResultCacheTest, EvictsLeastRecentlyStoredOverBudget) {
  ResultCache C;
  C.setByteBudget(2 * EntryCost); // room for exactly two entries
  C.store("a", valueOfJsonBytes(100));
  C.store("b", valueOfJsonBytes(100));
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.evictions(), 0u);
  C.store("c", valueOfJsonBytes(100)); // evicts "a", the oldest
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.evictions(), 1u);
  EXPECT_EQ(C.bytesUsed(), 2 * EntryCost);
  ResultCache::Value Out;
  EXPECT_FALSE(C.lookup("a", Out));
  EXPECT_TRUE(C.lookup("b", Out));
  EXPECT_TRUE(C.lookup("c", Out));
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(ResultCacheTest, LookupRefreshesRecency) {
  ResultCache C;
  C.setByteBudget(2 * EntryCost);
  C.store("a", valueOfJsonBytes(100));
  C.store("b", valueOfJsonBytes(100));
  ResultCache::Value Out;
  ASSERT_TRUE(C.lookup("a", Out)); // "a" becomes most recently used
  C.store("c", valueOfJsonBytes(100)); // so "b" is the one evicted
  EXPECT_TRUE(C.lookup("a", Out));
  EXPECT_FALSE(C.lookup("b", Out));
  EXPECT_TRUE(C.lookup("c", Out));
}

TEST(ResultCacheTest, LoweringTheBudgetEvictsImmediately) {
  ResultCache C;
  C.store("a", valueOfJsonBytes(100));
  C.store("b", valueOfJsonBytes(100));
  C.store("c", valueOfJsonBytes(100));
  C.setByteBudget(EntryCost); // keeps only the most recent entry
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(C.evictions(), 2u);
  ResultCache::Value Out;
  EXPECT_TRUE(C.lookup("c", Out));
  EXPECT_FALSE(C.lookup("a", Out));
}

TEST(ResultCacheTest, OversizedEntryNeverBecomesResident) {
  ResultCache C;
  C.setByteBudget(EntryCost - 1);
  C.store("a", valueOfJsonBytes(100)); // larger than the whole budget
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.evictions(), 1u);
  EXPECT_EQ(C.bytesUsed(), 0u);
  ResultCache::Value Out;
  EXPECT_FALSE(C.lookup("a", Out));
}

TEST(BatchExecutorTest, TinyCacheBudgetOnlyCostsHits) {
  // A budget too small to retain anything degrades hit rate, never
  // results: the aggregate report stays byte-identical to the unlimited
  // executor's, and a second identical run recomputes instead of hitting.
  std::vector<BatchEntry> Entries = twoProgramBatch();
  BatchExecutor::Options O;
  O.Jobs = 2;
  O.CacheBudgetBytes = 1;
  BatchExecutor Tiny(O);
  BatchReport First = Tiny.run(Entries);
  BatchReport Second = Tiny.run(Entries);
  EXPECT_EQ(Second.CacheHits, 0u);
  EXPECT_EQ(Tiny.cache().size(), 0u);
  EXPECT_GT(Tiny.cache().evictions(), 0u);

  BatchReport Unlimited = BatchExecutor(withJobs(2)).run(Entries);
  EXPECT_EQ(First.aggregateJson(), Unlimited.aggregateJson());
  EXPECT_EQ(Second.aggregateJson(), Unlimited.aggregateJson());
}

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

TEST(BatchManifestTest, ParsesEntriesAndResolvesPaths) {
  std::vector<BatchEntry> Out;
  std::string Error;
  ASSERT_TRUE(parseBatchManifest(
      R"({"entries": [
           {"label": "one", "program": "a.jir", "specs": ["ci", "csc"]},
           {"program": ["x.jir", "/abs/y.jir"], "specs": "2obj, 2type"}
         ]})",
      Out, Error, "/base"))
      << Error;
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Label, "one");
  ASSERT_EQ(Out[0].Files.size(), 1u);
  EXPECT_EQ(Out[0].Files[0], "/base/a.jir");
  EXPECT_EQ(Out[0].Specs, (std::vector<std::string>{"ci", "csc"}));
  EXPECT_EQ(Out[1].Files,
            (std::vector<std::string>{"/base/x.jir", "/abs/y.jir"}));
  EXPECT_EQ(Out[1].Specs, (std::vector<std::string>{"2obj", "2type"}));
}

TEST(BatchManifestTest, RejectsMalformedManifests) {
  std::vector<BatchEntry> Out;
  std::string Error;

  EXPECT_FALSE(parseBatchManifest("[", Out, Error));
  EXPECT_EQ(Error.rfind("manifest: line 1:", 0), 0u) << Error;

  EXPECT_FALSE(parseBatchManifest("[]", Out, Error));
  EXPECT_NE(Error.find("top level must be an object"), std::string::npos);

  EXPECT_FALSE(parseBatchManifest("{}", Out, Error));
  EXPECT_NE(Error.find("missing \"entries\""), std::string::npos);

  EXPECT_FALSE(parseBatchManifest(R"({"entries": []})", Out, Error));
  EXPECT_NE(Error.find("\"entries\" is empty"), std::string::npos);

  EXPECT_FALSE(parseBatchManifest(
      R"({"entries": [{"specs": ["ci"]}]})", Out, Error));
  EXPECT_EQ(Error, "manifest: entry 0: missing \"program\"");

  EXPECT_FALSE(parseBatchManifest(
      R"({"entries": [{"program": "a.jir"}]})", Out, Error));
  EXPECT_EQ(Error, "manifest: entry 0: missing \"specs\"");

  EXPECT_FALSE(parseBatchManifest(
      R"({"entries": [{"program": "a.jir", "specs": []}]})", Out, Error));
  EXPECT_EQ(Error, "manifest: entry 0: \"specs\" is empty");

  EXPECT_FALSE(parseBatchManifest(
      R"({"entries": [{"program": 3, "specs": ["ci"]}]})", Out, Error));
  EXPECT_NE(Error.find("\"program\" must be a path"), std::string::npos);
}
