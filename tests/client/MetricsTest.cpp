//===- MetricsTest.cpp - Precision clients & analysis session -------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "client/Metrics.h"
#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

/// Two lists of differently-typed elements; retrieval casts to the
/// expected type. CI merges the lists (both casts may fail); Cut-Shortcut
/// separates them (neither can fail).
const char *castWorkload() {
  return R"(
class Apple { }
class Banana { }
class Main {
  static method main(): void {
    var apples: ArrayList;
    var bananas: ArrayList;
    var a: Apple;
    var b: Banana;
    var oa: Object;
    var ob: Object;
    var ra: Apple;
    var rb: Banana;
    apples = new ArrayList;
    dcall apples.ArrayList.init();
    bananas = new ArrayList;
    dcall bananas.ArrayList.init();
    a = new Apple;
    b = new Banana;
    call apples.add(a);
    call bananas.add(b);
    oa = call apples.get();
    ob = call bananas.get();
    ra = (Apple) oa;
    rb = (Banana) ob;
  }
}
)";
}

std::unique_ptr<AnalysisSession>
sessionWithStdlib(const std::string &Source,
                  AnalysisSession::Options O = {}) {
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S =
      AnalysisSession::fromSource("test.jir", Source, std::move(O), Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_NE(S, nullptr);
  return S;
}

} // namespace

TEST(MetricsTest, FailCastsDropUnderCSC) {
  auto S = sessionWithStdlib(castWorkload());
  ASSERT_NE(S, nullptr);
  AnalysisRun RCI = S->run("ci");
  AnalysisRun RCSC = S->run("csc");

  EXPECT_EQ(RCI.Metrics.FailCasts, 2u) << "CI merges the two lists";
  EXPECT_EQ(RCSC.Metrics.FailCasts, 0u) << "CSC separates the two lists";
}

TEST(MetricsTest, PolyCallCounting) {
  auto P = parseOrDie(R"(
class A {
  method m(): void { }
}
class B extends A {
  method m(): void { }
}
class Main {
  static method main(): void {
    var x: A;
    var y: A;
    if ? {
      x = new A;
    } else {
      x = new B;
    }
    call x.m();
    y = new A;
    call y.m();
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  PrecisionMetrics M = computeMetrics(*P, R);
  EXPECT_EQ(M.PolyCalls, 1u); // Only x.m() is polymorphic.
  EXPECT_EQ(M.CallEdges, 3u); // x.m -> A.m, B.m; y.m -> A.m.
  EXPECT_EQ(M.ReachMethods, 3u);
}

TEST(MetricsTest, MayFailCastIdentifiesStatement) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var o: Object;
    var a: A;
    var b: B;
    o = new A;
    a = (A) o;
    b = (B) o;
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  std::vector<StmtId> Fails = mayFailCasts(*P, R);
  ASSERT_EQ(Fails.size(), 1u);
  EXPECT_EQ(P->stmt(Fails[0]).Type, P->typeByName("B"));
}

TEST(MetricsTest, UnreachableCastsIgnored) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Dead {
  method never(o: Object): void {
    var b: B;
    b = (B) o;
  }
}
class Main {
  static method main(): void {
    var o: Object;
    o = new A;
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_TRUE(mayFailCasts(*P, R).empty());
}

TEST(MetricsTest, AllAnalysisSpecsAgreeOnSoundness) {
  auto S = sessionWithStdlib(castWorkload());
  ASSERT_NE(S, nullptr);
  AnalysisRun CI = S->run("ci");
  ASSERT_TRUE(CI.completed());
  for (const AnalysisRun &Out :
       S->runAll("csc,zipper-e,2obj,2type,2cs")) {
    EXPECT_EQ(Out.Status, RunStatus::Completed) << Out.Name << Out.Error;
    // Precision metrics never exceed CI's (smaller is better and CI is
    // the least precise sound analysis here).
    EXPECT_LE(Out.Metrics.FailCasts, CI.Metrics.FailCasts) << Out.Name;
    EXPECT_LE(Out.Metrics.CallEdges, CI.Metrics.CallEdges) << Out.Name;
    EXPECT_LE(Out.Metrics.ReachMethods, CI.Metrics.ReachMethods)
        << Out.Name;
    EXPECT_LE(Out.Metrics.PolyCalls, CI.Metrics.PolyCalls) << Out.Name;
  }
}

TEST(MetricsTest, DoopModeDisablesLoadPattern) {
  std::vector<std::string> Diags;
  AnalysisSession::Options O;
  O.WithStdlib = false;
  auto S = AnalysisSession::fromSource("fig1.jir", figure1Source(),
                                       std::move(O), Diags);
  ASSERT_NE(S, nullptr);
  AnalysisRun Out = S->run("csc-doop");
  ASSERT_TRUE(Out.completed());
  // Store-side cuts fire; the load side is disabled in doop mode, so the
  // call results are merged like CI.
  MethodId Main = findMethod(S->program(), "Main", "main");
  VarId Result1 = findVar(S->program(), Main, "result1");
  EXPECT_EQ(Out.Result.pt(Result1).size(), 2u);
  EXPECT_GE(Out.Csc.CutStores, 1u);
}

TEST(MetricsTest, SessionReportsBudgetExhaustion) {
  AnalysisSession::Options O;
  O.WorkBudget = 2;
  auto S = sessionWithStdlib(castWorkload(), std::move(O));
  ASSERT_NE(S, nullptr);
  AnalysisRun Out = S->run("2obj");
  EXPECT_EQ(Out.Status, RunStatus::BudgetExhausted);
  EXPECT_FALSE(Out.completed());
}
