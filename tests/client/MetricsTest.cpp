//===- MetricsTest.cpp - Precision clients & analysis runner --------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRunner.h"
#include "client/Metrics.h"
#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

/// Two lists of differently-typed elements; retrieval casts to the
/// expected type. CI merges the lists (both casts may fail); Cut-Shortcut
/// separates them (neither can fail).
const char *castWorkload() {
  return R"(
class Apple { }
class Banana { }
class Main {
  static method main(): void {
    var apples: ArrayList;
    var bananas: ArrayList;
    var a: Apple;
    var b: Banana;
    var oa: Object;
    var ob: Object;
    var ra: Apple;
    var rb: Banana;
    apples = new ArrayList;
    dcall apples.ArrayList.init();
    bananas = new ArrayList;
    dcall bananas.ArrayList.init();
    a = new Apple;
    b = new Banana;
    call apples.add(a);
    call bananas.add(b);
    oa = call apples.get();
    ob = call bananas.get();
    ra = (Apple) oa;
    rb = (Banana) ob;
  }
}
)";
}

} // namespace

TEST(MetricsTest, FailCastsDropUnderCSC) {
  auto P = parseWithStdlib(castWorkload());
  RunConfig CI;
  CI.Kind = AnalysisKind::CI;
  RunOutcome RCI = runAnalysis(*P, CI);
  RunConfig CSC;
  CSC.Kind = AnalysisKind::CSC;
  RunOutcome RCSC = runAnalysis(*P, CSC);

  EXPECT_EQ(RCI.Metrics.FailCasts, 2u) << "CI merges the two lists";
  EXPECT_EQ(RCSC.Metrics.FailCasts, 0u) << "CSC separates the two lists";
}

TEST(MetricsTest, PolyCallCounting) {
  auto P = parseOrDie(R"(
class A {
  method m(): void { }
}
class B extends A {
  method m(): void { }
}
class Main {
  static method main(): void {
    var x: A;
    var y: A;
    if ? {
      x = new A;
    } else {
      x = new B;
    }
    call x.m();
    y = new A;
    call y.m();
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  PrecisionMetrics M = computeMetrics(*P, R);
  EXPECT_EQ(M.PolyCalls, 1u); // Only x.m() is polymorphic.
  EXPECT_EQ(M.CallEdges, 3u); // x.m -> A.m, B.m; y.m -> A.m.
  EXPECT_EQ(M.ReachMethods, 3u);
}

TEST(MetricsTest, MayFailCastIdentifiesStatement) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Main {
  static method main(): void {
    var o: Object;
    var a: A;
    var b: B;
    o = new A;
    a = (A) o;
    b = (B) o;
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  std::vector<StmtId> Fails = mayFailCasts(*P, R);
  ASSERT_EQ(Fails.size(), 1u);
  EXPECT_EQ(P->stmt(Fails[0]).Type, P->typeByName("B"));
}

TEST(MetricsTest, UnreachableCastsIgnored) {
  auto P = parseOrDie(R"(
class A { }
class B { }
class Dead {
  method never(o: Object): void {
    var b: B;
    b = (B) o;
  }
}
class Main {
  static method main(): void {
    var o: Object;
    o = new A;
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_TRUE(mayFailCasts(*P, R).empty());
}

TEST(MetricsTest, RunnerAllAnalysisKindsAgreeOnSoundness) {
  auto P = parseWithStdlib(castWorkload());
  RunConfig Base;
  RunOutcome CI = runAnalysis(*P, Base);
  for (AnalysisKind K :
       {AnalysisKind::CSC, AnalysisKind::ZipperE, AnalysisKind::TwoObj,
        AnalysisKind::TwoType, AnalysisKind::TwoCallSite}) {
    RunConfig C;
    C.Kind = K;
    RunOutcome Out = runAnalysis(*P, C);
    EXPECT_FALSE(Out.Exhausted) << analysisName(K);
    // Precision metrics never exceed CI's (smaller is better and CI is
    // the least precise sound analysis here).
    EXPECT_LE(Out.Metrics.FailCasts, CI.Metrics.FailCasts)
        << analysisName(K);
    EXPECT_LE(Out.Metrics.CallEdges, CI.Metrics.CallEdges)
        << analysisName(K);
    EXPECT_LE(Out.Metrics.ReachMethods, CI.Metrics.ReachMethods)
        << analysisName(K);
    EXPECT_LE(Out.Metrics.PolyCalls, CI.Metrics.PolyCalls)
        << analysisName(K);
  }
}

TEST(MetricsTest, RunnerDoopModeDisablesLoadPattern) {
  auto P = parseOrDie(figure1Source());
  RunConfig C;
  C.Kind = AnalysisKind::CSC;
  C.DoopMode = true;
  RunOutcome Out = runAnalysis(*P, C);
  // Store-side cuts fire; the load side is disabled in doop mode, so the
  // call results are merged like CI.
  MethodId Main = findMethod(*P, "Main", "main");
  VarId Result1 = findVar(*P, Main, "result1");
  EXPECT_EQ(Out.Result.pt(Result1).size(), 2u);
  EXPECT_GE(Out.Csc.CutStores, 1u);
}

TEST(MetricsTest, RunnerReportsBudgetExhaustion) {
  auto P = parseWithStdlib(castWorkload());
  RunConfig C;
  C.Kind = AnalysisKind::TwoObj;
  C.WorkBudget = 2;
  RunOutcome Out = runAnalysis(*P, C);
  EXPECT_TRUE(Out.Exhausted);
}
