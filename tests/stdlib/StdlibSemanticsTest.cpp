//===- StdlibSemanticsTest.cpp - Modelled library runtime semantics -------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// Executes the modelled containers with the interpreter and checks that
// their runtime behaviour matches what the container spec promises
// (Assumption 1 in action: elements flow in through Entrances and out
// through Exits/Transfers only), and that static analysis of the same
// programs over-approximates them.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

namespace {

struct ContainerRoundTrip {
  const char *Name;
  const char *Source; ///< main storing `a` and retrieving into `x`.
};

class StdlibSemanticsTest
    : public ::testing::TestWithParam<ContainerRoundTrip> {};

} // namespace

TEST_P(StdlibSemanticsTest, DynamicRoundTripAndStaticRecall) {
  auto P = parseWithStdlib(GetParam().Source);
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));

  // Dynamic: the element stored must be the element retrieved.
  DynamicFacts F = interpret(*P);
  ASSERT_EQ(F.VarPointsTo.count(X), 1u)
      << "retrieval produced no value at run time";
  EXPECT_TRUE(F.VarPointsTo[X].count(OA));

  // Static (CI): must over-approximate the dynamic fact.
  Solver S(*P, {});
  PTAResult R = S.solve();
  EXPECT_TRUE(R.pt(X).contains(OA));
}

INSTANTIATE_TEST_SUITE_P(
    Containers, StdlibSemanticsTest,
    ::testing::Values(
        ContainerRoundTrip{"ArrayListGet", R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var a: Object;
    var x: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    a = new Object;
    call l.add(a);
    x = call l.get();
  }
}
)"},
        ContainerRoundTrip{"ArrayListIterator", R"(
class Main {
  static method main(): void {
    var l: ArrayList;
    var a: Object;
    var it: Iterator;
    var x: Object;
    l = new ArrayList;
    dcall l.ArrayList.init();
    a = new Object;
    call l.add(a);
    it = call l.iterator();
    x = call it.next();
  }
}
)"},
        ContainerRoundTrip{"LinkedListGet", R"(
class Main {
  static method main(): void {
    var l: LinkedList;
    var a: Object;
    var x: Object;
    l = new LinkedList;
    dcall l.LinkedList.init();
    a = new Object;
    call l.add(a);
    x = call l.get();
  }
}
)"},
        ContainerRoundTrip{"LinkedListIterator", R"(
class Main {
  static method main(): void {
    var l: LinkedList;
    var a: Object;
    var it: Iterator;
    var x: Object;
    l = new LinkedList;
    dcall l.LinkedList.init();
    a = new Object;
    call l.add(a);
    it = call l.iterator();
    x = call it.next();
  }
}
)"},
        ContainerRoundTrip{"HashSetIterator", R"(
class Main {
  static method main(): void {
    var s: HashSet;
    var a: Object;
    var it: Iterator;
    var x: Object;
    s = new HashSet;
    dcall s.HashSet.init();
    a = new Object;
    call s.add(a);
    it = call s.iterator();
    x = call it.next();
  }
}
)"},
        ContainerRoundTrip{"HashMapGetValue", R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var k: Object;
    var a: Object;
    var x: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    k = new Object;
    a = new Object;
    call m.put(k, a);
    x = call m.get(k);
  }
}
)"},
        ContainerRoundTrip{"KeySetIteration", R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var a: Object;
    var v: Object;
    var ks: Collection;
    var it: Iterator;
    var x: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    a = new Object;
    v = new Object;
    call m.put(a, v);
    ks = call m.keySet();
    it = call ks.iterator();
    x = call it.next();
  }
}
)"},
        ContainerRoundTrip{"ValuesIteration", R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var k: Object;
    var a: Object;
    var vs: Collection;
    var it: Iterator;
    var x: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    k = new Object;
    a = new Object;
    call m.put(k, a);
    vs = call m.values();
    it = call vs.iterator();
    x = call it.next();
  }
}
)"},
        ContainerRoundTrip{"KeySetViewGet", R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var a: Object;
    var v: Object;
    var ks: Collection;
    var x: Object;
    m = new HashMap;
    dcall m.HashMap.init();
    a = new Object;
    v = new Object;
    call m.put(a, v);
    ks = call m.keySet();
    x = call ks.get();
  }
}
)"},
        ContainerRoundTrip{"StringBuilderFluent", R"(
class Main {
  static method main(): void {
    var a: StringBuilder;
    var s: String;
    var x: StringBuilder;
    a = new StringBuilder;
    s = new String;
    x = call a.append(s);
  }
}
)"}),
    [](const ::testing::TestParamInfo<ContainerRoundTrip> &Info) {
      return Info.param.Name;
    });

TEST(StdlibSemanticsTest, MapKeysAndValuesAreDistinctAtRuntime) {
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var m: HashMap;
    var k: Object;
    var v: Object;
    var gk: Object;
    var gv: Object;
    var ks: Collection;
    var vs: Collection;
    m = new HashMap;
    dcall m.HashMap.init();
    k = new Object;
    v = new Object;
    call m.put(k, v);
    ks = call m.keySet();
    gk = call ks.get();
    vs = call m.values();
    gv = call vs.get();
  }
}
)");
  MethodId Main = findMethod(*P, "Main", "main");
  ObjId OK = allocOf(*P, findVar(*P, Main, "k"));
  ObjId OV = allocOf(*P, findVar(*P, Main, "v"));
  DynamicFacts F = interpret(*P);
  VarId GK = findVar(*P, Main, "gk");
  VarId GV = findVar(*P, Main, "gv");
  EXPECT_EQ(F.VarPointsTo[GK], (std::unordered_set<ObjId>{OK}));
  EXPECT_EQ(F.VarPointsTo[GV], (std::unordered_set<ObjId>{OV}));
}

TEST(StdlibSemanticsTest, SpecCoversEveryExitWithEntrances) {
  // Assumption 1 sanity: every Exit's element category on a host class is
  // fed by at least one Entrance of the same category somewhere in the
  // spec (otherwise cutting its returns could never be compensated).
  Program P;
  std::vector<std::string> Diags;
  ASSERT_TRUE(loadStdlib(P, Diags));
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  bool HasEntrance[3] = {false, false, false};
  for (MethodId M = 0; M < P.numMethods(); ++M) {
    if (Spec.isEntrance(M)) {
      for (const auto &EP : Spec.entranceParams(M))
        HasEntrance[static_cast<int>(EP.Cat)] = true;
    }
  }
  for (MethodId M = 0; M < P.numMethods(); ++M) {
    if (Spec.isExit(M)) {
      EXPECT_TRUE(HasEntrance[static_cast<int>(Spec.exitCategory(M))])
          << "exit " << P.methodString(M) << " has no feeding entrance";
    }
  }
}
