//===- StdlibTest.cpp - Modelled library & container spec tests -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"

#include "ir/Verifier.h"
#include "pta/Solver.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace csc;
using namespace csc::test;

TEST(StdlibTest, ParsesAndVerifies) {
  Program P;
  std::vector<std::string> Diags;
  bool Ok = loadStdlib(P, Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << D;
  EXPECT_TRUE(Ok);
  EXPECT_TRUE(verifyProgram(P).empty());
  for (const char *Cls :
       {"Collection", "Map", "Iterator", "ArrayList", "LinkedList",
        "HashSet", "HashMap", "KeySetView", "ValuesView", "String",
        "StringBuilder"})
    EXPECT_TRUE(P.type(P.typeByName(Cls)).Defined) << Cls;
}

TEST(StdlibTest, HierarchyRootsForHostRules) {
  Program P;
  std::vector<std::string> Diags;
  ASSERT_TRUE(loadStdlib(P, Diags));
  TypeId Col = P.typeByName("Collection");
  TypeId Map = P.typeByName("Map");
  EXPECT_TRUE(P.isSubtype(P.typeByName("ArrayList"), Col));
  EXPECT_TRUE(P.isSubtype(P.typeByName("LinkedList"), Col));
  EXPECT_TRUE(P.isSubtype(P.typeByName("HashSet"), Col));
  EXPECT_TRUE(P.isSubtype(P.typeByName("KeySetView"), Col));
  EXPECT_TRUE(P.isSubtype(P.typeByName("HashMap"), Map));
  EXPECT_FALSE(P.isSubtype(P.typeByName("HashMap"), Col));
  EXPECT_FALSE(P.isSubtype(P.typeByName("ArrayListIterator"), Col));
}

TEST(StdlibTest, ContainerSpecResolvesAllRoles) {
  Program P;
  std::vector<std::string> Diags;
  ASSERT_TRUE(loadStdlib(P, Diags));
  ContainerSpec Spec = ContainerSpec::forProgram(P);

  TypeId AL = P.typeByName("ArrayList");
  MethodId Add = P.lookupMethod(AL, "add", 1);
  MethodId Get = P.lookupMethod(AL, "get", 0);
  MethodId Iter = P.lookupMethod(AL, "iterator", 0);
  EXPECT_TRUE(Spec.isEntrance(Add));
  ASSERT_EQ(Spec.entranceParams(Add).size(), 1u);
  EXPECT_EQ(Spec.entranceParams(Add)[0].ParamIdx, 1u);
  EXPECT_EQ(Spec.entranceParams(Add)[0].Cat, ElemCategory::ColValue);
  EXPECT_TRUE(Spec.isExit(Get));
  EXPECT_EQ(Spec.exitCategory(Get), ElemCategory::ColValue);
  EXPECT_TRUE(Spec.isTransfer(Iter));

  TypeId HM = P.typeByName("HashMap");
  MethodId Put = P.lookupMethod(HM, "put", 2);
  ASSERT_TRUE(Spec.isEntrance(Put));
  EXPECT_EQ(Spec.entranceParams(Put).size(), 2u); // Key and value.
  MethodId MGet = P.lookupMethod(HM, "get", 1);
  EXPECT_EQ(Spec.exitCategory(MGet), ElemCategory::MapValue);
  EXPECT_TRUE(Spec.isTransfer(P.lookupMethod(HM, "keySet", 0)));
  EXPECT_TRUE(Spec.isTransfer(P.lookupMethod(HM, "values", 0)));
}

TEST(StdlibTest, EmptySpecWithoutStdlib) {
  Program P; // No stdlib loaded.
  ContainerSpec Spec = ContainerSpec::forProgram(P);
  EXPECT_EQ(Spec.collectionType(), InvalidId);
  EXPECT_EQ(Spec.mapType(), InvalidId);
}

TEST(StdlibTest, CIAnalysisOfContainersIsSoundButMerged) {
  // Without Cut-Shortcut, two lists' contents merge — the baseline the
  // container pattern exists to fix.
  auto P = parseWithStdlib(R"(
class Main {
  static method main(): void {
    var l1: ArrayList;
    var l2: ArrayList;
    var a: Object;
    var b: Object;
    var x: Object;
    var y: Object;
    l1 = new ArrayList;
    dcall l1.ArrayList.init();
    l2 = new ArrayList;
    dcall l2.ArrayList.init();
    a = new Object;
    b = new Object;
    call l1.add(a);
    call l2.add(b);
    x = call l1.get();
    y = call l2.get();
  }
}
)");
  Solver S(*P, {});
  PTAResult R = S.solve();
  MethodId Main = findMethod(*P, "Main", "main");
  VarId X = findVar(*P, Main, "x");
  ObjId OA = allocOf(*P, findVar(*P, Main, "a"));
  ObjId OB = allocOf(*P, findVar(*P, Main, "b"));
  EXPECT_TRUE(R.pt(X).contains(OA));
  EXPECT_TRUE(R.pt(X).contains(OB)); // Merged: the CI imprecision.
}
