//===- JsonParseTest.cpp - Minimal JSON parser unit tests -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace csc;

namespace {

JsonValue parseOrDie(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Text, V, Error)) << Text << ": " << Error;
  return V;
}

std::string parseError(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(parseJson(Text, V, Error)) << Text;
  return Error;
}

} // namespace

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parseOrDie("null").isNull());
  EXPECT_TRUE(parseOrDie("true").B);
  EXPECT_FALSE(parseOrDie("false").B);
  EXPECT_DOUBLE_EQ(parseOrDie("42").Num, 42.0);
  EXPECT_DOUBLE_EQ(parseOrDie("-3.5e2").Num, -350.0);
  EXPECT_EQ(parseOrDie("\"hi\"").Str, "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parseOrDie(R"("a\"b\\c\/d\n\t")").Str, "a\"b\\c/d\n\t");
  // ASCII \u escapes decode; non-ASCII ones are preserved verbatim
  // (documented limitation). Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parseOrDie("\"\\u0041\"").Str, "A");
  EXPECT_EQ(parseOrDie("\"\\u00e9\"").Str, "\\u00e9");
  EXPECT_EQ(parseOrDie("\"\xc3\xa9\"").Str, "\xc3\xa9");
}

TEST(JsonParseTest, NestedContainers) {
  JsonValue V = parseOrDie(
      R"({"entries": [{"program": "a.jir", "specs": ["ci", "csc"]},
          {"n": 2, "ok": true}], "empty": {}, "none": []})");
  ASSERT_TRUE(V.isObject());
  const JsonValue *Entries = V.get("entries");
  ASSERT_NE(Entries, nullptr);
  ASSERT_TRUE(Entries->isArray());
  ASSERT_EQ(Entries->Arr.size(), 2u);
  EXPECT_EQ(Entries->Arr[0].get("program")->Str, "a.jir");
  EXPECT_EQ(Entries->Arr[0].get("specs")->Arr[1].Str, "csc");
  EXPECT_DOUBLE_EQ(Entries->Arr[1].get("n")->Num, 2.0);
  EXPECT_TRUE(V.get("empty")->isObject());
  EXPECT_TRUE(V.get("empty")->Obj.empty());
  EXPECT_TRUE(V.get("none")->isArray());
  EXPECT_EQ(V.get("missing"), nullptr);
}

TEST(JsonParseTest, ObjectKeepsInsertionOrder) {
  JsonValue V = parseOrDie(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(V.Obj.size(), 3u);
  EXPECT_EQ(V.Obj[0].first, "z");
  EXPECT_EQ(V.Obj[1].first, "a");
  EXPECT_EQ(V.Obj[2].first, "m");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter W;
  W.beginObject()
      .kv("name", "batch \"quoted\"")
      .kv("count", static_cast<uint64_t>(7))
      .kv("ratio", 0.25)
      .kv("on", true)
      .key("items")
      .beginArray()
      .value("a\nb")
      .value(static_cast<int64_t>(-1))
      .null()
      .endArray()
      .endObject();
  JsonValue V = parseOrDie(W.str());
  EXPECT_EQ(V.get("name")->Str, "batch \"quoted\"");
  EXPECT_DOUBLE_EQ(V.get("count")->Num, 7.0);
  EXPECT_DOUBLE_EQ(V.get("ratio")->Num, 0.25);
  EXPECT_TRUE(V.get("on")->B);
  ASSERT_EQ(V.get("items")->Arr.size(), 3u);
  EXPECT_EQ(V.get("items")->Arr[0].Str, "a\nb");
  EXPECT_TRUE(V.get("items")->Arr[2].isNull());
}

TEST(JsonParseTest, Malformed) {
  EXPECT_NE(parseError("").find("unexpected end"), std::string::npos);
  EXPECT_NE(parseError("{\"a\": }").find("invalid token"),
            std::string::npos);
  EXPECT_NE(parseError("[1, 2").find("expected ',' or ']'"),
            std::string::npos);
  EXPECT_NE(parseError("{1: 2}").find("string object key"),
            std::string::npos);
  EXPECT_NE(parseError("{\"a\" 2}").find("expected ':'"),
            std::string::npos);
  EXPECT_NE(parseError("\"unterminated").find("unterminated"),
            std::string::npos);
  EXPECT_NE(parseError("{} trailing").find("trailing content"),
            std::string::npos);
  EXPECT_NE(parseError("nope").find("invalid token"), std::string::npos);
  EXPECT_NE(parseError("1.2.3").find("malformed number"),
            std::string::npos);
}

TEST(JsonParseTest, ErrorsCarryLineNumbers) {
  std::string E = parseError("{\n  \"a\": 1,\n  \"b\": oops\n}");
  EXPECT_EQ(E.rfind("line 3:", 0), 0u) << E;
}

TEST(JsonParseTest, DeepNestingIsAnErrorNotACrash) {
  // Past the depth limit the parser must diagnose, not overflow the
  // stack.
  std::string Deep(100000, '[');
  EXPECT_NE(parseError(Deep).find("too deeply nested"),
            std::string::npos);
  // A document at modest depth still parses.
  std::string Ok = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_TRUE(parseOrDie(Ok).isArray());
}
