//===- PointsToSetTest.cpp - Unit tests for the hybrid set ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/PointsToSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace csc;

TEST(PointsToSetTest, EmptyOnConstruction) {
  PointsToSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(0));
  EXPECT_TRUE(S.toVector().empty());
}

TEST(PointsToSetTest, InsertReportsNovelty) {
  PointsToSet S;
  EXPECT_TRUE(S.insert(7));
  EXPECT_FALSE(S.insert(7));
  EXPECT_TRUE(S.insert(3));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(7));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(5));
}

TEST(PointsToSetTest, IterationIsSortedSmall) {
  PointsToSet S;
  for (uint32_t O : {9u, 1u, 5u, 3u})
    S.insert(O);
  EXPECT_EQ(S.toVector(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST(PointsToSetTest, PromotionPreservesContents) {
  PointsToSet S;
  std::vector<uint32_t> Expected;
  // Insert enough spread-out values to force bitmap promotion.
  for (uint32_t I = 0; I < 200; ++I) {
    uint32_t O = I * 37 + 5;
    S.insert(O);
    Expected.push_back(O);
  }
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(S.size(), Expected.size());
  EXPECT_EQ(S.toVector(), Expected);
  for (uint32_t O : Expected)
    EXPECT_TRUE(S.contains(O));
  EXPECT_FALSE(S.contains(4));
}

TEST(PointsToSetTest, InsertAfterPromotionReportsNovelty) {
  PointsToSet S;
  for (uint32_t I = 0; I < 100; ++I)
    S.insert(I);
  EXPECT_FALSE(S.insert(50));
  EXPECT_TRUE(S.insert(100000));
  EXPECT_TRUE(S.contains(100000));
}

TEST(PointsToSetTest, IntersectsBothRepresentations) {
  PointsToSet Small1, Small2, Big;
  Small1.insert(4);
  Small1.insert(8);
  Small2.insert(9);
  for (uint32_t I = 0; I < 100; ++I)
    Big.insert(I * 2);
  EXPECT_FALSE(Small1.intersects(Small2));
  EXPECT_TRUE(Small1.intersects(Big));  // 4 is even.
  EXPECT_FALSE(Small2.intersects(Big)); // 9 is odd.
  EXPECT_TRUE(Big.intersects(Big));
}

/// Property sweep: the hybrid set must behave exactly like std::set under
/// random insert/query sequences, across sizes that cross the promotion
/// threshold.
class PointsToSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PointsToSetPropertyTest, MatchesReferenceSet) {
  Rng R(GetParam());
  PointsToSet S;
  std::set<uint32_t> Ref;
  uint32_t Universe = 1 + R.nextInRange(500);
  for (int I = 0; I < 400; ++I) {
    uint32_t O = R.nextInRange(Universe);
    bool NewToRef = Ref.insert(O).second;
    EXPECT_EQ(S.insert(O), NewToRef) << "element " << O;
    uint32_t Q = R.nextInRange(Universe);
    EXPECT_EQ(S.contains(Q), Ref.count(Q) != 0) << "query " << Q;
  }
  EXPECT_EQ(S.size(), Ref.size());
  std::vector<uint32_t> Expected(Ref.begin(), Ref.end());
  EXPECT_EQ(S.toVector(), Expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointsToSetPropertyTest,
                         ::testing::Range(1, 21));
