//===- PointsToSetTest.cpp - Unit tests for the hybrid set ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/PointsToSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace csc;

TEST(PointsToSetTest, EmptyOnConstruction) {
  PointsToSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(0));
  EXPECT_TRUE(S.toVector().empty());
}

TEST(PointsToSetTest, InsertReportsNovelty) {
  PointsToSet S;
  EXPECT_TRUE(S.insert(7));
  EXPECT_FALSE(S.insert(7));
  EXPECT_TRUE(S.insert(3));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(7));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(5));
}

TEST(PointsToSetTest, IterationIsSortedSmall) {
  PointsToSet S;
  for (uint32_t O : {9u, 1u, 5u, 3u})
    S.insert(O);
  EXPECT_EQ(S.toVector(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST(PointsToSetTest, PromotionPreservesContents) {
  PointsToSet S;
  std::vector<uint32_t> Expected;
  // Insert enough spread-out values to force bitmap promotion.
  for (uint32_t I = 0; I < 200; ++I) {
    uint32_t O = I * 37 + 5;
    S.insert(O);
    Expected.push_back(O);
  }
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(S.size(), Expected.size());
  EXPECT_EQ(S.toVector(), Expected);
  for (uint32_t O : Expected)
    EXPECT_TRUE(S.contains(O));
  EXPECT_FALSE(S.contains(4));
}

TEST(PointsToSetTest, InsertAfterPromotionReportsNovelty) {
  PointsToSet S;
  for (uint32_t I = 0; I < 100; ++I)
    S.insert(I);
  EXPECT_FALSE(S.insert(50));
  EXPECT_TRUE(S.insert(100000));
  EXPECT_TRUE(S.contains(100000));
}

TEST(PointsToSetTest, IntersectsBothRepresentations) {
  PointsToSet Small1, Small2, Big;
  Small1.insert(4);
  Small1.insert(8);
  Small2.insert(9);
  for (uint32_t I = 0; I < 100; ++I)
    Big.insert(I * 2);
  EXPECT_FALSE(Small1.intersects(Small2));
  EXPECT_TRUE(Small1.intersects(Big));  // 4 is even.
  EXPECT_FALSE(Small2.intersects(Big)); // 9 is odd.
  EXPECT_TRUE(Big.intersects(Big));
}

TEST(PointsToSetTest, UnionWithReportsDelta) {
  PointsToSet A, B, Delta;
  for (uint32_t O : {1u, 5u, 9u})
    A.insert(O);
  for (uint32_t O : {5u, 9u, 12u, 40u})
    B.insert(O);
  EXPECT_EQ(A.unionWith(B, Delta), 2u);
  EXPECT_EQ(Delta.toVector(), (std::vector<uint32_t>{12, 40}));
  EXPECT_EQ(A.toVector(), (std::vector<uint32_t>{1, 5, 9, 12, 40}));
  // Re-union: nothing new; the delta out-param is cleared.
  EXPECT_EQ(A.unionWith(B, Delta), 0u);
  EXPECT_TRUE(Delta.empty());
}

TEST(PointsToSetTest, UnionWithSelfIsNoop) {
  PointsToSet S;
  for (uint32_t I = 0; I < 100; ++I)
    S.insert(I * 3);
  EXPECT_EQ(S.unionWith(S), 0u);
  EXPECT_EQ(S.size(), 100u);
}

TEST(PointsToSetTest, UnionWithFilteredAndExcluding) {
  PointsToSet Dst, Src, Mask, Excl;
  for (uint32_t I = 0; I < 200; ++I)
    Src.insert(I);
  for (uint32_t I = 0; I < 200; I += 2)
    Mask.insert(I); // evens
  for (uint32_t I = 0; I < 200; I += 4)
    Excl.insert(I); // every fourth
  EXPECT_EQ(Dst.unionWithFiltered(Src, Mask, Excl), 50u);
  Dst.forEach([](uint32_t O) {
    EXPECT_EQ(O % 2, 0u);
    EXPECT_NE(O % 4, 0u);
  });
  PointsToSet Dst2;
  EXPECT_EQ(Dst2.unionWithFiltered(Src, Mask), 100u);
  EXPECT_EQ(Dst2.unionWithExcluding(Src, Mask), 100u); // the odds
  EXPECT_EQ(Dst2.size(), 200u);
}

TEST(PointsToSetTest, ClearKeepsSetUsable) {
  PointsToSet S;
  for (uint32_t I = 0; I < 500; ++I)
    S.insert(I * 7);
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(7));
  EXPECT_TRUE(S.insert(3));
  EXPECT_EQ(S.toVector(), std::vector<uint32_t>{3});
}

TEST(PointsToSetTest, IntersectWithAndCount) {
  PointsToSet A, B;
  for (uint32_t I = 0; I < 300; I += 2)
    A.insert(I);
  for (uint32_t I = 0; I < 300; I += 3)
    B.insert(I);
  PointsToSet C = A.intersectWith(B);
  EXPECT_EQ(C.size(), 50u); // multiples of 6 below 300
  C.forEach([](uint32_t O) { EXPECT_EQ(O % 6, 0u); });
  EXPECT_EQ(A.intersectCount(B), 50u);
  PointsToSet SmallSet;
  SmallSet.insert(6);
  SmallSet.insert(7);
  EXPECT_EQ(SmallSet.intersectCount(A), 1u);
  EXPECT_EQ(SmallSet.intersectWith(B).toVector(),
            std::vector<uint32_t>{6});
}

/// Property sweep: the hybrid set must behave exactly like std::set under
/// random insert/query sequences, across sizes that cross the promotion
/// threshold.
class PointsToSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PointsToSetPropertyTest, MatchesReferenceSet) {
  Rng R(GetParam());
  PointsToSet S;
  std::set<uint32_t> Ref;
  uint32_t Universe = 1 + R.nextInRange(500);
  for (int I = 0; I < 400; ++I) {
    uint32_t O = R.nextInRange(Universe);
    bool NewToRef = Ref.insert(O).second;
    EXPECT_EQ(S.insert(O), NewToRef) << "element " << O;
    uint32_t Q = R.nextInRange(Universe);
    EXPECT_EQ(S.contains(Q), Ref.count(Q) != 0) << "query " << Q;
  }
  EXPECT_EQ(S.size(), Ref.size());
  std::vector<uint32_t> Expected(Ref.begin(), Ref.end());
  EXPECT_EQ(S.toVector(), Expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointsToSetPropertyTest,
                         ::testing::Range(1, 21));
