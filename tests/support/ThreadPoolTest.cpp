//===- ThreadPoolTest.cpp - Work-stealing pool unit tests -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace csc;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait(); // must not hang
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1);
      for (int K = 0; K != 5; ++K)
        Pool.submit([&Count] { Count.fetch_add(1); });
    });
  Pool.wait(); // covers the children submitted from inside tasks
  EXPECT_EQ(Count.load(), 10 + 10 * 5);
}

TEST(ThreadPoolTest, LongTaskDoesNotStrandQueuedWork) {
  // One slow task must not block the rest of the batch: with stealing,
  // the other workers drain the queue while the slow task runs.
  ThreadPool Pool(4);
  std::atomic<bool> SlowDone{false};
  std::atomic<int> FastDone{0};
  Pool.submit([&SlowDone] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    SlowDone.store(true);
  });
  for (int I = 0; I != 64; ++I)
    Pool.submit([&FastDone] { FastDone.fetch_add(1); });
  // The fast tasks should all finish well before the slow one.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  while (FastDone.load() != 64 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(FastDone.load(), 64);
  EXPECT_FALSE(SlowDone.load());
  Pool.wait();
  EXPECT_TRUE(SlowDone.load());
}

TEST(ThreadPoolTest, WorkSpreadsOverMultipleThreads) {
  ThreadPool Pool(4);
  std::mutex M;
  std::set<std::thread::id> Ids;
  for (int I = 0; I != 200; ++I)
    Pool.submit([&M, &Ids] {
      // A short stall so a single worker cannot race through the queue
      // before the others wake.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      std::lock_guard<std::mutex> G(M);
      Ids.insert(std::this_thread::get_id());
    });
  Pool.wait();
  EXPECT_GE(Ids.size(), 2u) << "all 200 tasks ran on one thread";
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}
