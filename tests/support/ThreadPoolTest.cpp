//===- ThreadPoolTest.cpp - Work-stealing pool unit tests -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace csc;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait(); // must not hang
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1);
      for (int K = 0; K != 5; ++K)
        Pool.submit([&Count] { Count.fetch_add(1); });
    });
  Pool.wait(); // covers the children submitted from inside tasks
  EXPECT_EQ(Count.load(), 10 + 10 * 5);
}

TEST(ThreadPoolTest, LongTaskDoesNotStrandQueuedWork) {
  // One slow task must not block the rest of the batch: with stealing,
  // the other workers drain the queue while the slow task runs.
  ThreadPool Pool(4);
  std::atomic<bool> SlowDone{false};
  std::atomic<int> FastDone{0};
  Pool.submit([&SlowDone] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    SlowDone.store(true);
  });
  for (int I = 0; I != 64; ++I)
    Pool.submit([&FastDone] { FastDone.fetch_add(1); });
  // The fast tasks should all finish well before the slow one.
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  while (FastDone.load() != 64 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(FastDone.load(), 64);
  EXPECT_FALSE(SlowDone.load());
  Pool.wait();
  EXPECT_TRUE(SlowDone.load());
}

TEST(ThreadPoolTest, WorkSpreadsOverMultipleThreads) {
  ThreadPool Pool(4);
  std::mutex M;
  std::set<std::thread::id> Ids;
  for (int I = 0; I != 200; ++I)
    Pool.submit([&M, &Ids] {
      // A short stall so a single worker cannot race through the queue
      // before the others wake.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      std::lock_guard<std::mutex> G(M);
      Ids.insert(std::this_thread::get_id());
    });
  Pool.wait();
  EXPECT_GE(Ids.size(), 2u) << "all 200 tasks ran on one thread";
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPoolStressTest, RepeatedWaitResubmitCycles) {
  // The parallel sweep engine's exact usage pattern: many short
  // submit-all / wait barriers against one long-lived pool. A lost
  // wakeup, a stale Queued count, or any reuse bug in the wait protocol
  // turns one of these iterations into a hang or a missed task.
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int Cycle = 0; Cycle != 500; ++Cycle) {
    const int Batch = 1 + (Cycle % 32);
    for (int I = 0; I != Batch; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    ASSERT_EQ(Count.exchange(0), Batch) << "cycle " << Cycle;
  }
}

TEST(ThreadPoolStressTest, TasksSpawningTasksAcrossWaitCycles) {
  // Nested spawning combined with barrier reuse: each root task fans out
  // children, children fan out grandchildren, and wait() must cover the
  // whole transitively submitted tree, every cycle.
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Cycle = 0; Cycle != 100; ++Cycle) {
    for (int I = 0; I != 8; ++I)
      Pool.submit([&Pool, &Count] {
        Count.fetch_add(1);
        for (int C = 0; C != 3; ++C)
          Pool.submit([&Pool, &Count] {
            Count.fetch_add(1);
            Pool.submit([&Count] { Count.fetch_add(1); });
          });
      });
    Pool.wait();
    ASSERT_EQ(Count.exchange(0), 8 + 8 * 3 + 8 * 3) << "cycle " << Cycle;
  }
}

TEST(ThreadPoolStressTest, SingleThreadNestedSpawnChain) {
  // One worker, a deep chain of tasks each spawning the next: exercises
  // self-submission with no second thread to steal, where any accounting
  // slip between Queued and Outstanding deadlocks wait() immediately.
  ThreadPool Pool(1);
  std::atomic<int> Depth{0};
  std::function<void()> Step = [&Pool, &Depth, &Step] {
    if (Depth.fetch_add(1) < 199)
      Pool.submit(Step);
  };
  Pool.submit(Step);
  Pool.wait();
  EXPECT_EQ(Depth.load(), 200);
}

TEST(ThreadPoolStressTest, ConcurrentExternalWaiters) {
  // wait() is documented thread-safe from outside the pool: two external
  // threads block on the same barrier while the main thread submits.
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I != 64; ++I)
    Pool.submit([&Count] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      Count.fetch_add(1);
    });
  std::thread W1([&Pool] { Pool.wait(); });
  std::thread W2([&Pool] { Pool.wait(); });
  Pool.wait();
  W1.join();
  W2.join();
  EXPECT_EQ(Count.load(), 64);
}
