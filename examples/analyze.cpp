//===- analyze.cpp - Command-line analyzer for .jir programs ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// A small driver exposing the whole toolchain: parse a `.jir` file (with
// the modelled standard library unless --no-stdlib), run the requested
// analysis, and print the four precision metrics plus solver statistics.
//
// Usage:
//   build/examples/analyze <file.jir> [--analysis=ci|csc|zipper|2obj|2type|2cs]
//                          [--doop] [--no-stdlib] [--budget-ms=N]
//                          [--dump-ir]
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRunner.h"
#include "csc/CutShortcutPlugin.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pta/GraphDump.h"
#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace csc;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <file.jir> [--analysis=ci|csc|zipper|2obj|2type|2cs]\n"
      "          [--doop] [--no-stdlib] [--budget-ms=N] [--dump-ir]\n"
      "          [--dump-pfg] [--dump-callgraph]\n",
      Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File;
  std::string Analysis = "csc";
  bool UseStdlib = true;
  bool DoopMode = false;
  bool DumpIR = false;
  bool DumpPFG = false;
  bool DumpCG = false;
  double BudgetMs = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--analysis=", 0) == 0)
      Analysis = Arg.substr(11);
    else if (Arg == "--no-stdlib")
      UseStdlib = false;
    else if (Arg == "--doop")
      DoopMode = true;
    else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--dump-pfg")
      DumpPFG = true;
    else if (Arg == "--dump-callgraph")
      DumpCG = true;
    else if (Arg.rfind("--budget-ms=", 0) == 0)
      BudgetMs = std::atof(Arg.c_str() + 12);
    else if (Arg.rfind("--", 0) == 0)
      return usage(Argv[0]);
    else if (File.empty())
      File = Arg;
    else
      return usage(Argv[0]);
  }
  if (File.empty())
    return usage(Argv[0]);

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Program P;
  std::vector<std::pair<std::string, std::string>> Sources;
  if (UseStdlib)
    Sources.emplace_back("<stdlib>", stdlibSource());
  Sources.emplace_back(File, Buf.str());
  std::vector<std::string> Diags;
  if (!parseProgram(P, Sources, Diags)) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }
  std::vector<std::string> Errors = verifyProgram(P);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    return 1;
  }
  if (P.entry() == InvalidId) {
    std::fprintf(stderr, "error: no static main() entry point\n");
    return 1;
  }
  if (DumpIR)
    std::printf("%s\n", printProgram(P).c_str());

  RunConfig C;
  if (Analysis == "ci")
    C.Kind = AnalysisKind::CI;
  else if (Analysis == "csc")
    C.Kind = AnalysisKind::CSC;
  else if (Analysis == "zipper")
    C.Kind = AnalysisKind::ZipperE;
  else if (Analysis == "2obj")
    C.Kind = AnalysisKind::TwoObj;
  else if (Analysis == "2type")
    C.Kind = AnalysisKind::TwoType;
  else if (Analysis == "2cs")
    C.Kind = AnalysisKind::TwoCallSite;
  else
    return usage(Argv[0]);
  C.DoopMode = DoopMode;
  C.TimeBudgetMs = BudgetMs;

  RunOutcome O = runAnalysis(P, C);
  std::printf("analysis:     %s%s\n", analysisName(C.Kind),
              DoopMode ? " (doop engine mode)" : "");
  std::printf("program:      %u classes, %u methods, %u statements\n",
              P.numTypes(), P.numMethods(), P.numStmts());
  if (O.Exhausted) {
    std::printf("result:       budget exhausted\n");
    return 3;
  }
  std::printf("time:         %.1f ms\n", O.TotalMs);
  std::printf("#fail-cast:   %u\n", O.Metrics.FailCasts);
  std::printf("#reach-mtd:   %u\n", O.Metrics.ReachMethods);
  std::printf("#poly-call:   %u\n", O.Metrics.PolyCalls);
  std::printf("#call-edge:   %llu\n",
              static_cast<unsigned long long>(O.Metrics.CallEdges));
  std::printf("pts work:     %llu insertions, %llu PFG edges\n",
              static_cast<unsigned long long>(O.Result.Stats.PtsInsertions),
              static_cast<unsigned long long>(O.Result.Stats.PFGEdges));
  if (C.Kind == AnalysisKind::CSC)
    std::printf("cut-shortcut: %llu cut stores, %llu cut returns, %llu "
                "shortcut edges, %zu involved methods\n",
                static_cast<unsigned long long>(O.Csc.CutStores),
                static_cast<unsigned long long>(O.Csc.CutReturns),
                static_cast<unsigned long long>(O.Csc.ShortcutEdges),
                O.Csc.Involved.size());
  if (C.Kind == AnalysisKind::ZipperE)
    std::printf("zipper-e:     %u selected methods, pre-analysis %.1f ms\n",
                O.SelectedMethods, O.PreMs);

  if (DumpCG)
    std::printf("%s", dumpCallGraphDot(P, O.Result).c_str());
  if (DumpPFG) {
    // The PFG lives inside the solver; re-run CI/CSC directly to dump it.
    if (C.Kind != AnalysisKind::CI && C.Kind != AnalysisKind::CSC) {
      std::fprintf(stderr,
                   "--dump-pfg is supported for ci and csc only\n");
      return 2;
    }
    ContainerSpec Spec = ContainerSpec::forProgram(P);
    std::unique_ptr<CutShortcutPlugin> Plugin;
    Solver S(P, {});
    if (C.Kind == AnalysisKind::CSC) {
      Plugin = std::make_unique<CutShortcutPlugin>(P, Spec);
      S.addPlugin(Plugin.get());
    }
    S.solve();
    std::printf("%s", dumpPFGDot(S).c_str());
  }
  return 0;
}
