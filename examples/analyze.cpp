//===- analyze.cpp - Minimal session-API walkthrough ------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// A compact tour of the client API: load a `.jir` file into an
// AnalysisSession, run one registered analysis spec, print metrics, and
// optionally dump the IR / call graph / pointer-flow graph. The
// full-featured end-user driver is `tools/cscpta.cpp`; this example stays
// small on purpose.
//
// Usage:
//   build/examples/example_analyze <file.jir> [--analysis=<spec>]
//                                  [--no-stdlib] [--budget-ms=N]
//                                  [--dump-ir] [--dump-pfg]
//                                  [--dump-callgraph]
//
// <spec> is any registered analysis spec, e.g. ci, csc, csc-doop,
// zipper-e;pv=0.05, k-type;k=3 (see `cscpta --list`).
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "csc/CutShortcutPlugin.h"
#include "ir/Printer.h"
#include "pta/GraphDump.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace csc;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <file.jir> [--analysis=<spec>] [--no-stdlib]\n"
               "          [--budget-ms=N] [--dump-ir] [--dump-pfg]\n"
               "          [--dump-callgraph]\n",
               Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File;
  std::string Analysis = "csc";
  bool UseStdlib = true;
  bool DumpIR = false;
  bool DumpPFG = false;
  bool DumpCG = false;
  double BudgetMs = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--analysis=", 0) == 0)
      Analysis = Arg.substr(11);
    else if (Arg == "--no-stdlib")
      UseStdlib = false;
    else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--dump-pfg")
      DumpPFG = true;
    else if (Arg == "--dump-callgraph")
      DumpCG = true;
    else if (Arg.rfind("--budget-ms=", 0) == 0)
      BudgetMs = std::atof(Arg.c_str() + 12);
    else if (Arg.rfind("--", 0) == 0)
      return usage(Argv[0]);
    else if (File.empty())
      File = Arg;
    else
      return usage(Argv[0]);
  }
  if (File.empty())
    return usage(Argv[0]);

  AnalysisSession::Options SO;
  SO.WithStdlib = UseStdlib;
  SO.TimeBudgetMs = BudgetMs;
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S =
      AnalysisSession::fromFiles({File}, std::move(SO), Diags);
  if (!S) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }
  const Program &P = S->program();
  if (DumpIR)
    std::printf("%s\n", printProgram(P).c_str());

  AnalysisRun Run = S->run(Analysis);
  if (Run.Status == RunStatus::SpecError) {
    std::fprintf(stderr, "error: %s\n", Run.Error.c_str());
    return usage(Argv[0]);
  }
  std::printf("analysis:     %s\n", Run.Name.c_str());
  std::printf("program:      %u classes, %u methods, %u statements\n",
              P.numTypes(), P.numMethods(), P.numStmts());
  if (!Run.completed()) {
    std::printf("result:       budget exhausted\n");
    return 3;
  }
  std::printf("time:         %.1f ms\n", Run.Timings.TotalMs);
  std::printf("#fail-cast:   %u\n", Run.Metrics.FailCasts);
  std::printf("#reach-mtd:   %u\n", Run.Metrics.ReachMethods);
  std::printf("#poly-call:   %u\n", Run.Metrics.PolyCalls);
  std::printf("#call-edge:   %llu\n",
              static_cast<unsigned long long>(Run.Metrics.CallEdges));
  std::printf("pts work:     %llu insertions, %llu PFG edges\n",
              static_cast<unsigned long long>(Run.Result.Stats.PtsInsertions),
              static_cast<unsigned long long>(Run.Result.Stats.PFGEdges));
  if (Run.Csc.CutStores || Run.Csc.ShortcutEdges)
    std::printf("cut-shortcut: %llu cut stores, %llu cut returns, %llu "
                "shortcut edges, %zu involved methods\n",
                static_cast<unsigned long long>(Run.Csc.CutStores),
                static_cast<unsigned long long>(Run.Csc.CutReturns),
                static_cast<unsigned long long>(Run.Csc.ShortcutEdges),
                Run.Csc.Involved.size());
  if (Run.SelectedMethods)
    std::printf("zipper-e:     %u selected methods, pre-analysis %.1f ms\n",
                Run.SelectedMethods, Run.Timings.PreMs);

  if (DumpCG)
    std::printf("%s", dumpCallGraphDot(P, Run.Result).c_str());
  if (DumpPFG) {
    // The PFG lives inside the solver; re-run CI/CSC directly to dump it.
    if (Analysis != "ci" && Analysis != "csc") {
      std::fprintf(stderr, "--dump-pfg is supported for ci and csc only\n");
      return 2;
    }
    ContainerSpec Spec = ContainerSpec::forProgram(P);
    std::unique_ptr<CutShortcutPlugin> Plugin;
    Solver Slv(P, {});
    if (Analysis == "csc") {
      Plugin = std::make_unique<CutShortcutPlugin>(P, Spec);
      Slv.addPlugin(Plugin.get());
    }
    Slv.solve();
    std::printf("%s", dumpPFGDot(Slv).c_str());
  }
  return 0;
}
