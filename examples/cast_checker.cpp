//===- cast_checker.cpp - A downcast-safety client --------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// A realistic client built on the #fail-cast metric: an inventory
// application keeps differently-typed items in separate collections and
// downcasts on retrieval. Context-insensitive analysis merges the
// collections and reports every downcast as possibly failing; Cut-Shortcut
// proves the clean ones safe and still flags the one real bug.
//
// Run: build/examples/cast_checker
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace csc;

namespace {

const char *InventoryApp = R"(
class Book extends Object {
  field title: String;
}
class Dvd extends Object {
  field label: String;
}
class Inventory {
  field books: ArrayList;
  field dvds: ArrayList;
  method init(): void {
    var b: ArrayList;
    var d: ArrayList;
    b = new ArrayList;
    dcall b.ArrayList.init();
    d = new ArrayList;
    dcall d.ArrayList.init();
    this.books = b;
    this.dvds = d;
  }
  method addBook(b: Book): void {
    var l: ArrayList;
    l = this.books;
    call l.add(b);
  }
  method addDvd(d: Dvd): void {
    var l: ArrayList;
    l = this.dvds;
    call l.add(d);
  }
  method anyBook(): Object {
    var l: ArrayList;
    var r: Object;
    l = this.books;
    r = call l.get();
    return r;
  }
  method anyDvd(): Object {
    var l: ArrayList;
    var r: Object;
    l = this.dvds;
    r = call l.get();
    return r;
  }
}
class Main {
  static method main(): void {
    var inv: Inventory;
    var bk: Book;
    var dv: Dvd;
    var o1: Object;
    var o2: Object;
    var o3: Object;
    var rb: Book;
    var rd: Dvd;
    var oops: Dvd;
    inv = new Inventory;
    dcall inv.Inventory.init();
    bk = new Book;
    dv = new Dvd;
    call inv.addBook(bk);
    call inv.addDvd(dv);
    o1 = call inv.anyBook();
    rb = (Book) o1;        // safe: books only contains Book
    o2 = call inv.anyDvd();
    rd = (Dvd) o2;         // safe: dvds only contains Dvd
    o3 = call inv.anyBook();
    oops = (Dvd) o3;       // real bug: a Book is not a Dvd
  }
}
)";

void report(const char *Label, const ResultView &View) {
  const Program &P = View.program();
  std::vector<StmtId> Fails = View.mayFailCasts();
  std::printf("%s: %zu of 3 downcasts may fail\n", Label, Fails.size());
  for (StmtId S : Fails)
    std::printf("  line %u: %s\n", P.stmt(S).Line,
                printStmt(P, S).c_str());
}

} // namespace

int main() {
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::fromSource(
      "inventory.jir", InventoryApp, {}, Diags);
  if (!S) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }

  AnalysisRun CI = S->run("ci");
  report("context-insensitive", S->view(CI));

  std::printf("\n");

  AnalysisRun Csc = S->run("csc");
  report("cut-shortcut       ", S->view(Csc));

  std::printf("\nCut-Shortcut separates the two collections, proving the "
              "two clean casts safe\nwhile still flagging the genuine "
              "Book-as-Dvd bug.\n");
  return 0;
}
