//===- container_audit.cpp - Devirtualization through containers -----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// A devirtualization client (#poly-call) on a plugin-registry program:
// handlers of different types live in different containers; the dispatch
// on a retrieved handler is monomorphic in reality. The example compares
// how CI, Cut-Shortcut and 2obj resolve the call sites and prints the
// container pattern's internal host map (ptH) for the iterator variables.
//
// Run: build/examples/container_audit
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace csc;

namespace {

const char *RegistryApp = R"(
abstract class Handler {
  abstract method handle(req: Object): Object;
}
class JsonHandler extends Handler {
  method handle(req: Object): Object {
    var r: Object;
    r = new Object;
    return r;
  }
}
class XmlHandler extends Handler {
  method handle(req: Object): Object {
    return req;
  }
}
class BinaryHandler extends Handler {
  method handle(req: Object): Object {
    var r: Object;
    r = new Object;
    return r;
  }
}
class Main {
  static method main(): void {
    var jsonHandlers: ArrayList;
    var xmlHandlers: ArrayList;
    var jh: JsonHandler;
    var xh: XmlHandler;
    var bh: BinaryHandler;
    var o1: Object;
    var o2: Object;
    var h1: Handler;
    var h2: Handler;
    var req: Object;
    var it: Iterator;
    var o3: Object;
    var h3: Handler;
    jsonHandlers = new ArrayList;
    dcall jsonHandlers.ArrayList.init();
    xmlHandlers = new ArrayList;
    dcall xmlHandlers.ArrayList.init();
    jh = new JsonHandler;
    xh = new XmlHandler;
    bh = new BinaryHandler;
    call jsonHandlers.add(jh);
    call jsonHandlers.add(bh);
    call xmlHandlers.add(xh);
    req = new Object;
    o1 = call jsonHandlers.get();
    h1 = (Handler) o1;
    call h1.handle(req);
    o2 = call xmlHandlers.get();
    h2 = (Handler) o2;
    call h2.handle(req);
    it = call xmlHandlers.iterator();
    o3 = call it.next();
    h3 = (Handler) o3;
    call h3.handle(req);
  }
}
)";

void report(const char *Label, const ResultView &View) {
  const Program &P = View.program();
  std::vector<CallSiteId> Poly = View.polyCallSites();
  std::printf("%s: %u polymorphic call site(s)\n", Label,
              static_cast<uint32_t>(Poly.size()));
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    const Stmt &S = P.stmt(P.callSite(CS).S);
    if (S.IKind != InvokeKind::Virtual || !View.isReachable(S.Method))
      continue;
    const std::string &Sig = P.subsigName(S.Subsig);
    if (Sig.rfind("handle/", 0) != 0)
      continue;
    std::printf("  %-34s ->", printStmt(P, P.callSite(CS).S).c_str());
    for (MethodId M : View.calleesAt(CS))
      std::printf(" %s", P.methodString(M).c_str());
    std::printf("\n");
  }
}

} // namespace

int main() {
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::fromSource(
      "registry.jir", RegistryApp, {}, Diags);
  if (!S) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }

  for (const AnalysisRun &O : S->runAll("ci,csc,2obj")) {
    report(O.Name.c_str(), S->view(O));
    std::printf("\n");
  }

  std::printf("CI merges both registries, so every handler dispatch looks "
              "polymorphic;\nCut-Shortcut's container pattern (and 2obj's "
              "contexts) recover the true monomorphic targets — only the "
              "json registry stays genuinely polymorphic (it really holds "
              "two handler kinds).\n");
  return 0;
}
