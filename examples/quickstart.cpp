//===- quickstart.cpp - Build IR in C++, compare CI vs Cut-Shortcut --------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The paper's Figure 1 example, constructed through the programmatic
// IRBuilder API (no text parsing) and handed to an AnalysisSession, which
// verifies it once and runs both analyses. Prints the points-to sets the
// paper discusses in §2.
//
// Run: build/examples/example_quickstart
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "ir/IRBuilder.h"

#include <cstdio>

using namespace csc;

namespace {

/// Builds Figure 1: class Carton { Item item; setItem; getItem } plus a
/// main storing and retrieving two items through two cartons.
struct Figure1 {
  std::unique_ptr<Program> P = std::make_unique<Program>();
  VarId Result1, Result2, Item1, Item2;
  ObjId O16, O21;

  Figure1() {
    IRBuilder B(*P);
    TypeId Item = B.cls("Item");
    TypeId Carton = B.cls("Carton");
    FieldId ItemF = B.field(Carton, "item", Item);

    MethodBuilder Set = B.method(Carton, "setItem", {Item}, InvalidId);
    Set.store(Set.thisVar(), ItemF, Set.param(0));

    MethodBuilder Get = B.method(Carton, "getItem", {}, Item);
    VarId R = Get.local("r", Item);
    Get.load(R, Get.thisVar(), ItemF);
    Get.ret(R);

    TypeId MainCls = B.cls("Main");
    MethodBuilder Main =
        B.method(MainCls, "main", {}, InvalidId, /*IsStatic=*/true);
    VarId C1 = Main.local("c1", Carton);
    Item1 = Main.local("item1", Item);
    Result1 = Main.local("result1", Item);
    VarId C2 = Main.local("c2", Carton);
    Item2 = Main.local("item2", Item);
    Result2 = Main.local("result2", Item);
    Main.newObj(C1, Carton);
    StmtId NewItem1 = Main.newObj(Item1, Item);
    Main.callVirtual(InvalidId, C1, "setItem", {Item1});
    Main.callVirtual(Result1, C1, "getItem", {});
    Main.newObj(C2, Carton);
    StmtId NewItem2 = Main.newObj(Item2, Item);
    Main.callVirtual(InvalidId, C2, "setItem", {Item2});
    Main.callVirtual(Result2, C2, "getItem", {});
    P->setEntry(Main.method());

    O16 = P->stmt(NewItem1).Obj;
    O21 = P->stmt(NewItem2).Obj;
  }
};

void printPts(const Program &P, const char *Name, const PointsToSet &S) {
  std::printf("  pt(%s) = {", Name);
  bool First = true;
  S.forEach([&](ObjId O) {
    std::printf("%so%u:%s", First ? "" : ", ", O,
                P.type(P.obj(O).Type).Name.c_str());
    First = false;
  });
  std::printf("}\n");
}

} // namespace

int main() {
  Figure1 Fig;

  // IRBuilder handoff: the session takes ownership and verifies once.
  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S =
      AnalysisSession::adopt(std::move(Fig.P), {}, Diags);
  if (!S) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }
  const Program &P = S->program();

  std::printf("=== Context-insensitive analysis (Fig. 1a) ===\n");
  {
    AnalysisRun CI = S->run("ci");
    ResultView View = S->view(CI);
    printPts(P, "result1", View.pointsTo(Fig.Result1));
    printPts(P, "result2", View.pointsTo(Fig.Result2));
    std::printf("  -> the two cartons' items are merged (imprecise)\n\n");
  }

  std::printf("=== Cut-Shortcut (Fig. 1b) ===\n");
  {
    AnalysisRun Csc = S->run("csc");
    ResultView View = S->view(Csc);
    printPts(P, "result1", View.pointsTo(Fig.Result1));
    printPts(P, "result2", View.pointsTo(Fig.Result2));
    std::printf("  -> context-sensitive precision without contexts:\n");
    std::printf("     %llu store edge(s) cut, %llu return cut(s), "
                "%llu shortcut edge(s)\n",
                static_cast<unsigned long long>(Csc.Csc.CutStores),
                static_cast<unsigned long long>(Csc.Csc.CutReturns),
                static_cast<unsigned long long>(Csc.Csc.ShortcutEdges));
  }
  return 0;
}
