#!/usr/bin/env bash
# Crash-schedule contract of the lease-based worker fleet: under every
# injected fault — workers SIGKILLed mid-task, workers SIGSTOPped until
# their lease expires, a task that crash-loops every worker that leases
# it — the coordinator's aggregate JSON must stay byte-identical to the
# storeless single-process oracle. A poisoned task must be quarantined
# after its attempt budget with the pinned diagnostic and a nonzero
# exit. Finally the store GC smoke: filling a store past
# --store-max-bytes must evict down to the byte budget while keeping
# the hot (most recently used) set intact, so the warm hit-rate gate
# the CI store smoke enforces (>= 95%) still passes.
#
# Registered with CTest as cscpta_fleet_chaos; the in-process half
# lives in tests/store/FleetFaultTest.cpp and TaskLedgerTest.cpp.
#
# Usage: fleet_chaos.sh <path-to-cscpta> <examples-dir>
set -euo pipefail

CSCPTA=${1:?usage: fleet_chaos.sh <cscpta> <examples-dir>}
EXAMPLES=${2:?usage: fleet_chaos.sh <cscpta> <examples-dir>}
CSCPTA=$(cd "$(dirname "$CSCPTA")" && pwd)/$(basename "$CSCPTA")
EXAMPLES=$(cd "$EXAMPLES" && pwd)

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Six tasks (2 programs x 3 specs); task 2 is figure1:2obj.
cat > "$TMP/manifest.json" <<EOF
{
  "entries": [
    { "label": "figure1", "program": "$EXAMPLES/figure1.jir",
      "specs": ["ci", "csc", "2obj"] },
    { "label": "containers", "program": "$EXAMPLES/containers.jir",
      "specs": ["ci", "csc", "2obj"] }
  ]
}
EOF

# The storeless oracle every crash schedule must reproduce.
"$CSCPTA" --batch "$TMP/manifest.json" --json > "$TMP/ref.json"

echo "== schedule 1: SIGKILL mid-task, one attempt =="
# The worker holding task 2 kills itself on attempt 1; the supervisor
# observes the death, releases the lease, respawns, and retries.
CSC_FLEET_TEST_KILL_TASK=2 CSC_FLEET_TEST_KILL_ATTEMPTS=1 \
  "$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/s1" \
  --workers 2 --stats > "$TMP/kill.json" 2> "$TMP/kill.log"
cmp "$TMP/ref.json" "$TMP/kill.json"
grep -q "died by signal" "$TMP/kill.log"
grep -q "tasks 6 done, 0 quarantined" "$TMP/kill.log"

echo "== schedule 2: crash-looping task quarantines =="
# Task 2 kills *every* worker that leases it: after the attempt budget
# the ledger quarantines it with the pinned diagnostic, the coordinator
# recomputes it in-process (same bytes), and the exit code goes 1.
RC=0
CSC_FLEET_TEST_KILL_TASK=2 \
  "$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/s2" \
  --workers 2 --max-task-attempts 2 --stats \
  > "$TMP/poison.json" 2> "$TMP/poison.log" || RC=$?
test "$RC" -eq 1
cmp "$TMP/ref.json" "$TMP/poison.json"
grep -q "quarantined after 2 attempts" "$TMP/poison.log"
grep -q "failed 2 of 2 attempts" "$TMP/poison.log"
grep -q "tasks 5 done, 1 quarantined" "$TMP/poison.log"

echo "== schedule 3: SIGSTOPped worker loses its lease =="
# A stopped worker cannot heartbeat; its lease expires, the work is
# redone elsewhere, and the straggler is killed after the drain.
CSC_FLEET_TEST_STOP_TASK=1 \
  "$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/s3" \
  --workers 2 --lease-ttl 300 --stats \
  > "$TMP/stop.json" 2> "$TMP/stop.log"
cmp "$TMP/ref.json" "$TMP/stop.json"
grep -q "straggler" "$TMP/stop.log"

echo "== store GC smoke: byte budget keeps the hot set =="
# A second manifest whose six results are the designated cold set.
cat > "$TMP/cold.json" <<EOF
{
  "entries": [
    { "label": "figure1", "program": "$EXAMPLES/figure1.jir",
      "specs": ["2cs", "2type", "csc-doop"] },
    { "label": "containers", "program": "$EXAMPLES/containers.jir",
      "specs": ["2cs", "2type", "csc-doop"] }
  ]
}
EOF

objects_bytes() {
  find "$1/objects" -type f -name '*.csce' -printf '%s\n' 2>/dev/null |
    awk '{ s += $1 } END { print s + 0 }'
}

# Measure the hot set alone to size the budget.
"$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/sz" \
  > /dev/null
HOT_BYTES=$(objects_bytes "$TMP/sz")
test "$HOT_BYTES" -gt 0
BUDGET=$((HOT_BYTES + 200))

# Fill the real store past the budget: cold entries first, then hot —
# publish order makes the hot set the most recently used.
"$CSCPTA" --batch "$TMP/cold.json" --json --store "$TMP/s4" > /dev/null
"$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/s4" \
  > /dev/null
test "$(objects_bytes "$TMP/s4")" -gt "$BUDGET"

# The bounded warm pass: GC evicts the cold set down to the budget and
# the hot set serves every run — the same >= 95% hit-rate gate CI's
# store smoke applies must hold on what GC retained.
"$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/s4" \
  --store-max-bytes "$BUDGET" --stats \
  > "$TMP/gc.json" 2> "$TMP/gc.log"
cmp "$TMP/ref.json" "$TMP/gc.json"
grep -q "store stats: served 6/6 runs" "$TMP/gc.log"
grep -Eq "gc_evictions [1-9]" "$TMP/gc.log"
awk '/store stats/ { split($5, R, "/");
  if (R[1] / R[2] < 0.95) exit 1 }' "$TMP/gc.log"
FINAL=$(objects_bytes "$TMP/s4")
test "$FINAL" -le "$BUDGET"

echo "fleet_chaos: OK"
