#!/usr/bin/env bash
# Documentation guard, run by the CI docs job (and locally):
#   1. every relative markdown link in README.md / docs/*.md must resolve
#      to an existing file,
#   2. every analysis name registered in the code (the AnalysisNames
#      table plus extra AnalysisRegistry registrations) must be
#      documented in docs/CLI.md,
#   3. every --flag the cscpta driver accepts must be documented in
#      docs/CLI.md, and
#   4. every request op the analysis server dispatches on must be
#      documented in docs/CLI.md.
# Usage: scripts/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. Relative link check -------------------------------------------------
for doc in README.md docs/*.md; do
  # [text](target) links; strip #anchors; skip absolute URLs.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'') continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue # pure in-page anchor
    # Resolve exactly as GitHub does: relative to the linking document's
    # directory (never the repo root).
    base="$(dirname "$doc")"
    if [ ! -e "$base/$path" ]; then
      echo "error: $doc links to '$target' but '$base/$path' does not" \
           "exist"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. Every registered analysis name appears in docs/CLI.md ---------------
# Canonical names come from the one kind<->name table; names registered
# directly on the registry (csc-doop) from AnalysisRegistry.cpp.
# `|| true` keeps set -e/pipefail from aborting the substitution when a
# pattern stops matching — the empty-names diagnostic below must fire
# instead.
names="$(
  { grep -oE '\{AnalysisKind::[A-Za-z]+, "[a-z0-9-]+"' \
        src/client/AnalysisNames.cpp \
      | grep -oE '"[a-z0-9-]+"' | tr -d '"'; } || true
  { grep -oE 'R\.add\("[a-z0-9-]+"' src/client/AnalysisRegistry.cpp \
      | grep -oE '"[a-z0-9-]+"' | tr -d '"'; } || true
)"
if [ -z "$names" ]; then
  echo "error: could not extract any analysis names from the sources" \
       "(did the registration syntax change?)"
  fail=1
fi
for name in $names; do
  if ! grep -qE "\`$name\`" docs/CLI.md; then
    echo "error: registered analysis '$name' is not documented in" \
         "docs/CLI.md (add it as \`$name\`)"
    fail=1
  fi
done

# --- 3. Every cscpta flag appears in docs/CLI.md ----------------------------
# Flags are matched in the driver either via matchesOpt(Argv[I], "--x")
# (value-taking) or via Arg == "--x" (boolean).
flags="$(
  { grep -oE 'matchesOpt\(Argv\[I\], "--[a-z-]+"' tools/cscpta.cpp \
      | grep -oE '"--[a-z-]+"' | tr -d '"'; } || true
  { grep -oE 'Arg == "--[a-z-]+"' tools/cscpta.cpp \
      | grep -oE '"--[a-z-]+"' | tr -d '"'; } || true
)"
if [ -z "$flags" ]; then
  echo "error: could not extract any flags from tools/cscpta.cpp" \
       "(did the option-matching syntax change?)"
  fail=1
fi
for flag in $flags; do
  if ! grep -qE -- "\`$flag" docs/CLI.md; then
    echo "error: cscpta flag '$flag' is not documented in docs/CLI.md" \
         "(add it as \`$flag\`)"
    fail=1
  fi
done

# --- 4. Every server request op appears in docs/CLI.md ----------------------
ops="$(
  { grep -oE '\*Op == "[a-z-]+"' src/server/AnalysisServer.cpp \
      | grep -oE '"[a-z-]+"' | tr -d '"'; } || true
)"
if [ -z "$ops" ]; then
  echo "error: could not extract any request ops from" \
       "src/server/AnalysisServer.cpp (did the dispatch syntax change?)"
  fail=1
fi
for op in $ops; do
  if ! grep -qE "\`$op\`" docs/CLI.md; then
    echo "error: server request op '$op' is not documented in" \
         "docs/CLI.md (add it as \`$op\`)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK ($(echo "$names" | wc -l) analysis names," \
     "$(echo "$flags" | sort -u | wc -l) driver flags," \
     "$(echo "$ops" | wc -l) server ops, links in README.md + docs/*.md)"
