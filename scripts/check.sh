#!/usr/bin/env bash
# Tier-1 verify in one command: configure + build + ctest, exactly as the
# ROADMAP specifies. Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"

cmake -B build -S . "$@"
cmake --build build --parallel "$JOBS"
cd build
ctest --output-on-failure -j"$JOBS"
