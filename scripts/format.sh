#!/usr/bin/env bash
# Formats the C++ sources with clang-format (in place by default).
# Usage: scripts/format.sh [--check]
#   --check   verify formatting only (clang-format --dry-run -Werror);
#             non-zero exit if any file needs reformatting. This is what
#             the CI `format` job runs.
# The binary can be overridden with CLANG_FORMAT=<path>.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=fix
if [[ "${1:-}" == "--check" ]]; then
  MODE=check
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--check]" >&2
  exit 2
fi

FMT="${CLANG_FORMAT:-}"
if [[ -z "$FMT" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
      clang-format-17 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      FMT="$candidate"
      break
    fi
  done
fi
if [[ -z "$FMT" ]]; then
  echo "error: clang-format not found (set CLANG_FORMAT=<path>)" >&2
  exit 1
fi

mapfile -t FILES < <(find src tests bench tools \
  \( -name '*.cpp' -o -name '*.h' \) | sort)

if [[ "$MODE" == "check" ]]; then
  "$FMT" --dry-run -Werror "${FILES[@]}"
  echo "format: ${#FILES[@]} files clean"
else
  "$FMT" -i "${FILES[@]}"
  echo "format: ${#FILES[@]} files formatted"
fi
