#!/usr/bin/env bash
# Cross-process contract of the persistent result store: uncoordinated
# cscpta processes racing one store directory must each emit the
# storeless aggregate byte for byte, leave only checksum-valid entries
# behind, serve a warm repeat entirely from the store, and agree with a
# --workers fleet. Registered with CTest as cscpta_store_concurrency;
# tests/store/StoreConcurrencyTest.cpp covers the in-process half.
#
# Usage: store_concurrency.sh <path-to-cscpta> <examples-dir>
set -euo pipefail

CSCPTA=${1:?usage: store_concurrency.sh <cscpta> <examples-dir>}
EXAMPLES=${2:?usage: store_concurrency.sh <cscpta> <examples-dir>}
# Manifest-relative program paths resolve against the manifest's
# directory (a temp dir here), so both arguments must be absolute.
CSCPTA=$(cd "$(dirname "$CSCPTA")" && pwd)/$(basename "$CSCPTA")
EXAMPLES=$(cd "$EXAMPLES" && pwd)

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Six runs, no duplicate (program, spec) pairs — every task is a store
# interaction, so the warm pass must report served 6/6.
cat > "$TMP/manifest.json" <<EOF
{
  "entries": [
    { "label": "figure1", "program": "$EXAMPLES/figure1.jir",
      "specs": ["ci", "csc", "2obj"] },
    { "label": "containers", "program": "$EXAMPLES/containers.jir",
      "specs": ["ci", "csc", "2obj"] }
  ]
}
EOF

# The storeless oracle every store-assisted pass must reproduce.
"$CSCPTA" --batch "$TMP/manifest.json" --json > "$TMP/ref.json"

# Two uncoordinated processes race one cold store.
"$CSCPTA" --batch "$TMP/manifest.json" --json \
  --store "$TMP/store" > "$TMP/a.json" &
PID_A=$!
"$CSCPTA" --batch "$TMP/manifest.json" --json \
  --store "$TMP/store" > "$TMP/b.json" &
PID_B=$!
wait "$PID_A"
wait "$PID_B"
cmp "$TMP/ref.json" "$TMP/a.json"
cmp "$TMP/ref.json" "$TMP/b.json"

# Only checksum-valid entries may survive the race.
"$CSCPTA" --scrub --store "$TMP/store" | tee "$TMP/scrub.txt"
grep -q ", 0 corrupt" "$TMP/scrub.txt"

# Warm repeat: byte-identical and fully store-served.
"$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/store" \
  --stats > "$TMP/warm.json" 2> "$TMP/warm.log"
cmp "$TMP/ref.json" "$TMP/warm.json"
grep -q "store stats: served 6/6 runs" "$TMP/warm.log"

# A worker fleet over a fresh store agrees with everything above, and
# the pinned fleet stats line classifies every worker's exit cause.
"$CSCPTA" --batch "$TMP/manifest.json" --json --store "$TMP/store2" \
  --workers 2 --stats > "$TMP/fleet.json" 2> "$TMP/fleet.log"
cmp "$TMP/ref.json" "$TMP/fleet.json"
grep -q "fleet stats: spawned 2 workers (0 respawns), 2 exited clean" \
  "$TMP/fleet.log"
grep -q "tasks 6 done, 0 quarantined" "$TMP/fleet.log"

echo "store_concurrency: OK"
