#!/usr/bin/env python3
"""Strip wall-clock timings from a cscpta/bench JSON document.

Usage: strip_timings.py INPUT.json OUTPUT.json

Removes every "timings" object and every "*_ms" key (recursively) and
rewrites the document with sorted keys, producing a canonical
timing-free form. Two runs of
the same analyses are required to agree on this form byte-for-byte no
matter the `par` lane count, the host's core count, or scheduler
interleaving — the CI parallel-sweep identity smoke and local A/B
checks diff the output of this script with `cmp`.
"""

import json
import sys


def scrub(node):
    if isinstance(node, dict):
        return {k: scrub(v) for k, v in node.items()
                if k != "timings" and not k.endswith("_ms")}
    if isinstance(node, list):
        return [scrub(v) for v in node]
    return node


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {sys.argv[1]}: {exc}", file=sys.stderr)
        return 2
    with open(sys.argv[2], "w", encoding="utf-8") as fh:
        json.dump(scrub(doc), fh, sort_keys=True)
        fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
