#!/usr/bin/env python3
"""Compare two BenchJson documents and flag wall-time regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
           [--margin PATTERN=FRACTION ...]

Both inputs are documents written by the bench harnesses' --json flag
(see docs/BENCHMARKS.md for the schema). Runs are keyed by
(program, analysis); a run regresses when it completed in both documents
and its total_ms grew by more than the threshold (default 25%). Runs
that appear in only one document (tier or spec changes) are reported but
never fail the comparison; a run that flipped from completed to
budget-exhausted always fails.

--margin overrides the global threshold for runs whose "program/analysis"
label matches a glob PATTERN (fnmatch syntax). Repeatable; the first
matching pattern in command-line order wins. Small tiers need wide
margins (sub-millisecond runs are all scheduler noise) while the large
tiers are stable, e.g.:

    bench_compare.py base.json cur.json --threshold 0.25 \\
        --margin 'scale-xs/*=1.00' --margin 'scale-s/*=0.60' \\
        --margin '*par=*=0.40'

Exit codes: 0 no regression, 1 regression(s), 2 usage/input error.
"""

import argparse
import fnmatch
import json
import sys


def load_runs(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    runs = {}
    for record in doc.get("records", []):
        run = record.get("run")
        if not isinstance(run, dict):
            continue  # program-size / custom records carry no timings
        key = (record.get("program", "?"), run.get("analysis", "?"))
        runs[key] = {
            "status": run.get("status", "?"),
            "total_ms": run.get("timings", {}).get("total_ms"),
        }
    return doc.get("bench", "?"), runs


def parse_margins(specs):
    """'PATTERN=FRACTION' strings -> [(pattern, fraction)] in given order."""
    margins = []
    for spec in specs:
        pattern, eq, value = spec.rpartition("=")
        try:
            if not eq or not pattern:
                raise ValueError
            fraction = float(value)
            if fraction < 0:
                raise ValueError
        except ValueError:
            print(f"error: bad --margin '{spec}' "
                  f"(expected PATTERN=FRACTION, fraction >= 0)",
                  file=sys.stderr)
            sys.exit(2)
        margins.append((pattern, fraction))
    return margins


def margin_for(label, margins, default):
    for pattern, fraction in margins:
        if fnmatch.fnmatchcase(label, pattern):
            return fraction
    return default


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional wall-time growth that counts as a "
                         "regression (default 0.25 = +25%%)")
    ap.add_argument("--margin", action="append", default=[],
                    metavar="PATTERN=FRACTION",
                    help="per-run threshold override: glob PATTERN matched "
                         "against 'program/analysis', first match wins "
                         "(repeatable)")
    args = ap.parse_args()
    margins = parse_margins(args.margin)

    base_name, base = load_runs(args.baseline)
    cur_name, cur = load_runs(args.current)
    if base_name != cur_name:
        print(f"note: comparing different benches "
              f"({base_name} vs {cur_name})", file=sys.stderr)

    regressions, improvements, skipped = [], [], []
    for key in sorted(base.keys() | cur.keys()):
        label = f"{key[0]}/{key[1]}"
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            skipped.append(f"{label}: only in "
                           f"{'current' if b is None else 'baseline'}")
            continue
        if b["status"] == "completed" and c["status"] != "completed":
            regressions.append(f"{label}: completed -> {c['status']}")
            continue
        if b["status"] != "completed" or c["status"] != "completed":
            skipped.append(f"{label}: status {b['status']} vs {c['status']}")
            continue
        if not b["total_ms"]:
            skipped.append(f"{label}: baseline has no timing")
            continue
        threshold = margin_for(label, margins, args.threshold)
        ratio = c["total_ms"] / b["total_ms"]
        line = (f"{label}: {b['total_ms']:.1f} ms -> {c['total_ms']:.1f} ms "
                f"({ratio:.2f}x, margin +{threshold:.0%})")
        if ratio > 1.0 + threshold:
            regressions.append(line)
        elif ratio < 1.0 - threshold:
            improvements.append(line)

    for line in skipped:
        print(f"skip  {line}")
    for line in improvements:
        print(f"good  {line}")
    for line in regressions:
        print(f"REGR  {line}")
    compared = len(base.keys() & cur.keys())
    print(f"compared {compared} runs, {len(regressions)} regression(s) "
          f"(threshold +{args.threshold:.0%})")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
