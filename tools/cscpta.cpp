//===- cscpta.cpp - Cut-Shortcut pointer-analysis driver ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
// The end-user entry point: loads one or more `.jir` files (the modelled
// standard library prepended unless --no-stdlib), runs a comma-separated
// list of registered analysis specs over the one parsed program, and
// reports per-analysis precision metrics as a human table or JSON.
//
// Usage:
//   cscpta [options] <file.jir>...
//   cscpta [options] --batch <manifest.json>
//   cscpta [options] --serve <file.jir>...
//     --analyses <list>    comma-separated specs (default: csc); e.g.
//                          "ci,csc,2obj" or "k-type;k=3,zipper-e;pv=0.05"
//     --json               emit a JSON report on stdout
//     --points-to <v>      also query pt() of "Class.method.var"
//                          (repeatable and comma-separable; one fixpoint
//                          serves all queries; not available with --batch)
//     --demand             answer --points-to queries demand-driven: solve
//                          only the backward slice reaching the queried
//                          variables instead of the whole program
//     --serve              long-lived NDJSON request/response session on
//                          stdin/stdout (see docs/CLI.md)
//     --budget-ms <n>      wall-clock budget per analysis (0 = unlimited)
//     --work-budget <n>    points-to-insertion budget per analysis
//     --jobs <n>           run analyses on up to n pool threads
//     --batch <manifest>   run a {program, specs[]} manifest (see
//                          docs/CLI.md for the schema)
//     --repeat <n>         run the batch n times in-process (cache demo)
//     --cache-budget <n>   batch result-cache byte budget (0 = unlimited)
//     --store <dir>        persistent result store: completed runs are
//                          published to <dir> and served back on later
//                          invocations (single runs, --batch, --serve)
//     --workers <n>        distribute the batch over n pull-mode worker
//                          processes coordinating through a task ledger
//                          in --store (crash-tolerant; see docs/CLI.md)
//     --worker-shard <k/N> internal legacy mode: compute only every Nth
//                          task starting at k (static slicing)
//     --worker-pull        internal (spawned by --workers): pull task
//                          leases from the store's ledger until drained
//     --lease-ttl <ms>     task lease TTL for --workers (default 5000)
//     --max-task-attempts <n>  quarantine a task after n failed leases
//                          (default 3)
//     --store-max-bytes <n>    GC: evict least-recently-used store
//                          entries once objects/ exceeds n bytes
//     --store-max-age <s>      GC: evict store entries unused for more
//                          than s seconds
//     --scrub              validate every --store entry and exit
//     --stats              per-run solver/SCC statistics on stderr (with
//                          --batch: result-cache statistics)
//     --no-stdlib          do not prepend the modelled standard library
//     --verbose            phase progress on stderr
//     --list               list registered analyses and exit
//
// Exit codes: 0 success, 1 load/spec failure, 2 usage error, 3 at least
// one analysis exhausted its budget.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"
#include "client/BatchExecutor.h"
#include "client/Report.h"
#include "server/AnalysisServer.h"
#include "store/ResultStore.h"
#include "server/DemandSlicer.h"
#include "server/IncrementalSolver.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace csc;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <file.jir>...\n"
      "       %s [options] --batch <manifest.json>\n"
      "       %s [options] --serve <file.jir>...\n"
      "  --analyses <list>  comma-separated analysis specs (default: csc)\n"
      "  --json             emit a JSON report on stdout\n"
      "  --points-to <var>  query pt() of \"Class.method.var\" (repeatable,\n"
      "                     comma-separable; one fixpoint serves all)\n"
      "  --demand           solve only the slice reaching --points-to vars\n"
      "  --serve            NDJSON request/response session on stdin/stdout\n"
      "  --budget-ms <n>    wall-clock budget per analysis in ms\n"
      "  --work-budget <n>  points-to-insertion budget per analysis\n"
      "  --jobs <n>         run analyses on up to n pool threads\n"
      "  --batch <manifest> run a {program, specs[]} manifest\n"
      "  --repeat <n>       run the batch n times in-process\n"
      "  --cache-budget <n> batch result-cache byte budget (0 = unlimited)\n"
      "  --store <dir>      persistent result store (serves repeat runs\n"
      "                     across processes; see docs/CLI.md)\n"
      "  --workers <n>      distribute --batch over n pull-mode workers\n"
      "                     coordinating through a task ledger in --store\n"
      "  --worker-shard k/N internal: compute only static shard k of N\n"
      "  --worker-pull      internal: pull task leases until drained\n"
      "  --lease-ttl <ms>   task lease TTL for --workers (default 5000)\n"
      "  --max-task-attempts <n> quarantine a task after n failed leases\n"
      "  --store-max-bytes <n>  GC --store down to n bytes (LRU)\n"
      "  --store-max-age <s>    GC --store entries unused for s seconds\n"
      "  --scrub            validate every --store entry and exit\n"
      "  --stats            per-run solver/SCC statistics on stderr\n"
      "  --no-stdlib        do not prepend the modelled standard library\n"
      "  --verbose          phase progress on stderr\n"
      "  --list             list registered analyses and exit\n",
      Prog, Prog, Prog);
  return 2;
}

struct CliOptions {
  std::vector<std::string> Files;
  std::string Analyses = "csc";
  bool AnalysesSet = false; ///< --analyses given (conflicts with --batch).
  std::vector<std::string> PointsToQueries;
  std::string BatchManifest;
  std::string StoreDir;
  unsigned Workers = 0;    ///< 0 = no worker fleet.
  unsigned ShardIndex = 0; ///< --worker-shard k/N.
  unsigned ShardCount = 1;
  bool ShardSet = false; ///< --worker-shard given (worker process mode).
  bool WorkerPull = false; ///< --worker-pull (lease-pulling worker).
  uint64_t LeaseTtlMs = 5000;
  unsigned MaxTaskAttempts = 3;
  uint64_t StoreMaxBytes = 0; ///< 0 = no byte-budget GC.
  uint64_t StoreMaxAgeS = 0;  ///< 0 = no age GC.
  bool Scrub = false;
  double BudgetMs = 0;
  uint64_t WorkBudget = ~0ULL;
  uint64_t CacheBudget = 0;
  bool CacheBudgetSet = false;
  unsigned Jobs = 1;
  unsigned Repeat = 1;
  bool Json = false;
  bool Stats = false;
  bool NoStdlib = false;
  bool Verbose = false;
  bool List = false;
  bool Serve = false;
  bool Demand = false;
};

/// Accepts "--opt value" and "--opt=value".
bool takeValue(int Argc, char **Argv, int &I, const char *Opt,
               std::string &Out) {
  std::string Arg = Argv[I];
  std::string Prefix = std::string(Opt) + "=";
  if (Arg.rfind(Prefix, 0) == 0) {
    Out = Arg.substr(Prefix.size());
    return true;
  }
  if (Arg == Opt) {
    if (I + 1 >= Argc)
      return false;
    Out = Argv[++I];
    return true;
  }
  return false;
}

bool matchesOpt(const char *Arg, const char *Opt) {
  std::string A = Arg;
  return A == Opt || A.rfind(std::string(Opt) + "=", 0) == 0;
}

bool parseDoubleArg(const std::string &Val, const char *Opt, double &Out) {
  errno = 0;
  char *End = nullptr;
  double D = std::strtod(Val.c_str(), &End);
  if (errno != 0 || End == Val.c_str() || *End != '\0' || D < 0) {
    std::fprintf(stderr,
                 "error: %s expects a non-negative number, got '%s'\n", Opt,
                 Val.c_str());
    return false;
  }
  Out = D;
  return true;
}

bool parseUint64Arg(const std::string &Val, const char *Opt, uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(Val.c_str(), &End, 10);
  if (errno != 0 || End == Val.c_str() || *End != '\0') {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got '%s'\n", Opt,
                 Val.c_str());
    return false;
  }
  Out = N;
  return true;
}

bool parsePositiveArg(const std::string &Val, const char *Opt,
                      unsigned &Out) {
  uint64_t N = 0;
  if (!parseUint64Arg(Val, Opt, N))
    return false; // already diagnosed
  if (N == 0 || N > 1024) {
    std::fprintf(stderr, "error: %s expects a positive integer <= 1024\n",
                 Opt);
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

/// Parses a "--worker-shard k/N" selector: 0 <= k < N <= 1024.
bool parseShardArg(const std::string &Val, unsigned &Index,
                   unsigned &Count) {
  size_t Slash = Val.find('/');
  uint64_t K = 0, N = 0;
  if (Slash == std::string::npos ||
      !parseUint64Arg(Val.substr(0, Slash), "--worker-shard", K) ||
      !parseUint64Arg(Val.substr(Slash + 1), "--worker-shard", N))
    return false;
  if (N == 0 || N > 1024 || K >= N) {
    std::fprintf(stderr,
                 "error: --worker-shard expects k/N with k < N <= 1024, "
                 "got '%s'\n",
                 Val.c_str());
    return false;
  }
  Index = static_cast<unsigned>(K);
  Count = static_cast<unsigned>(N);
  return true;
}

//===----------------------------------------------------------------------===//
// Persistent result store
//===----------------------------------------------------------------------===//

/// Opens --store, degrading to "no store" with a warning when the
/// directory is unusable — a broken store must never fail the analysis.
std::shared_ptr<ResultStore> openStore(const CliOptions &Cli) {
  if (Cli.StoreDir.empty())
    return nullptr;
  ResultStore::Options SO;
  SO.Dir = Cli.StoreDir;
  SO.MaxBytes = Cli.StoreMaxBytes;
  SO.MaxAgeMs = Cli.StoreMaxAgeS * 1000;
  auto Store = std::make_shared<ResultStore>(SO);
  if (!Store->usable()) {
    std::fprintf(stderr,
                 "warning: result store '%s' is unusable (%s); "
                 "continuing without it\n",
                 Cli.StoreDir.c_str(), Store->error().c_str());
    return nullptr;
  }
  return Store;
}

/// `--stats` store counter line; \p Served / \p Total are the runs of
/// this invocation answered straight from the store.
void printStoreStats(const ResultStore &Store, uint64_t Served,
                     uint64_t Total) {
  ResultStore::Counters C = Store.counters();
  std::fprintf(stderr,
               "[cscpta] store stats: served %llu/%llu runs, hits %llu, "
               "misses %llu, publishes %llu, corrupt_evictions %llu, "
               "index_rebuilds %llu, gc_evictions %llu\n",
               static_cast<unsigned long long>(Served),
               static_cast<unsigned long long>(Total),
               static_cast<unsigned long long>(C.Hits),
               static_cast<unsigned long long>(C.Misses),
               static_cast<unsigned long long>(C.Publishes),
               static_cast<unsigned long long>(C.CorruptEvictions),
               static_cast<unsigned long long>(C.IndexRebuilds),
               static_cast<unsigned long long>(C.GcEvictions));
}

/// The cscpta binary to exec as a --workers child: /proc/self/exe where
/// available (immune to $PATH and cwd changes), else how we were run.
std::string workerExePath(const char *Argv0) {
  std::FILE *F = std::fopen("/proc/self/exe", "rb");
  if (F) {
    std::fclose(F);
    return "/proc/self/exe";
  }
  return Argv0;
}

//===----------------------------------------------------------------------===//
// Batch mode
//===----------------------------------------------------------------------===//

void printBatchHuman(const BatchReport &Report) {
  std::printf("%-18s %-18s %-16s %10s %10s %10s %10s %12s\n", "entry",
              "analysis", "status", "time(ms)", "#fail-cast", "#reach-mtd",
              "#poly-call", "#call-edge");
  for (const BatchEntryResult &E : Report.Entries) {
    if (E.LoadFailed) {
      std::printf("%-18s %-18s %-16s\n", E.Label.c_str(), "-",
                  "load-failed");
      continue;
    }
    for (const BatchRunResult &R : E.Runs) {
      if (R.Skipped)
        continue; // sharded away; the coordinator reports it
      if (R.Status != RunStatus::Completed) {
        std::printf("%-18s %-18s %-16s %10.1f %10s %10s %10s %12s\n",
                    E.Label.c_str(), R.Spec.c_str(),
                    runStatusName(R.Status), R.WallMs, "-", "-", "-", "-");
        continue;
      }
      std::printf("%-18s %-18s %-13s%3s %10.1f %10u %10u %10u %12llu\n",
                  E.Label.c_str(), R.Spec.c_str(), runStatusName(R.Status),
                  R.FromCache    ? "(c)"
                  : R.FromStore  ? "(s)"
                                 : "",
                  R.WallMs, R.Metrics.FailCasts,
                  R.Metrics.ReachMethods, R.Metrics.PolyCalls,
                  static_cast<unsigned long long>(R.Metrics.CallEdges));
    }
  }
}

void printBatchStats(const BatchReport &Report, unsigned Pass,
                     unsigned Passes) {
  double Secs = Report.WallMs / 1000.0;
  std::fprintf(stderr,
               "[cscpta] batch pass %u/%u: %zu runs, jobs %u, %.1f ms "
               "(%.1f specs/s), cache hits %llu, misses %llu\n",
               Pass, Passes, Report.totalRuns(), Report.Jobs,
               Report.WallMs,
               Secs > 0 ? static_cast<double>(Report.totalRuns()) / Secs
                        : 0.0,
               static_cast<unsigned long long>(Report.CacheHits),
               static_cast<unsigned long long>(Report.CacheMisses));
}

/// Maps a ledger task id back to its (entry label, spec) for
/// diagnostics, using the shared linear numbering.
std::pair<std::string, std::string>
taskName(const std::vector<BatchEntry> &Entries, uint32_t Task) {
  size_t Linear = 0;
  for (const BatchEntry &E : Entries)
    for (const std::string &Spec : E.Specs) {
      if (Linear == Task) {
        std::string Label = !E.Label.empty()
                                ? E.Label
                                : !E.Files.empty() ? E.Files.front()
                                                   : "<batch>";
        return {Label, Spec};
      }
      ++Linear;
    }
  return {"<unknown>", "?"};
}

int runBatch(const CliOptions &Cli, const char *Argv0) {
  std::vector<BatchEntry> Entries;
  std::string Error;
  if (!loadBatchManifest(Cli.BatchManifest, Entries, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::shared_ptr<ResultStore> Store = openStore(Cli);
  // --worker-shard / --worker-pull: a spawned worker. It computes its
  // share, publishes into the store, and stays silent on stdout — the
  // coordinator prints the one authoritative report.
  bool WorkerMode = Cli.ShardSet;

  if (Cli.WorkerPull) {
    if (!Store)
      return 2; // nothing to coordinate through; supervisor compensates
    BatchExecutor::Options WO;
    WO.Jobs = Cli.Jobs;
    WO.WithStdlib = !Cli.NoStdlib;
    WO.WorkBudget = Cli.WorkBudget;
    WO.TimeBudgetMs = Cli.BudgetMs;
    WO.CacheBudgetBytes = Cli.CacheBudget;
    WO.Store = Store;
    return runPullWorker(Entries, WO, Cli.StoreDir + "/ledger.bin",
                         batchFingerprint(Entries));
  }

  bool FleetRan = false;
  bool HadQuarantine = false;
  if (Cli.Workers > 0) {
    if (!Store) {
      // Unusable store: the fleet has nothing to coordinate through.
      std::fprintf(stderr, "warning: --workers needs a usable --store; "
                           "running the batch in-process\n");
    } else {
      WorkerFleetOptions FO;
      FO.Exe = workerExePath(Argv0);
      FO.ManifestPath = Cli.BatchManifest;
      FO.StoreDir = Cli.StoreDir;
      FO.Workers = Cli.Workers;
      FO.Jobs = Cli.Jobs;
      FO.WithStdlib = !Cli.NoStdlib;
      FO.WorkBudget = Cli.WorkBudget;
      FO.TimeBudgetMs = Cli.BudgetMs;
      FO.Verbose = Cli.Verbose;
      FO.BatchFingerprint = batchFingerprint(Entries);
      FO.TaskCount = static_cast<uint32_t>(countBatchTasks(Entries));
      FO.LeaseTtlMs = static_cast<uint32_t>(Cli.LeaseTtlMs);
      FO.MaxAttempts = Cli.MaxTaskAttempts;
      FO.RestartBudget = Cli.Workers * Cli.MaxTaskAttempts + 4;
      FleetReport FR = runWorkerFleet(FO);
      FleetRan = FR.LedgerOk;
      if (!FR.LedgerOk)
        std::fprintf(stderr,
                     "warning: fleet task ledger unusable; running the "
                     "batch in-process\n");
      if (Cli.Stats && FR.LedgerOk)
        std::fprintf(stderr,
                     "[cscpta] fleet stats: spawned %u workers "
                     "(%u respawns), %s; tasks %u done, %u quarantined\n",
                     FR.Spawned, FR.Respawns,
                     FR.exitCauseSummary().c_str(), FR.Final.Done,
                     FR.Final.Quarantined);
      for (uint32_t T = 0; T != FR.Tasks.size(); ++T) {
        const TaskLedger::Task &Task = FR.Tasks[T];
        if (Task.State != TaskLedger::TaskState::Quarantined)
          continue;
        HadQuarantine = true;
        auto [Label, Spec] = taskName(Entries, T);
        std::fprintf(stderr,
                     "error: task %u (%s: %s) quarantined after %u "
                     "attempts: %s\n",
                     T, Label.c_str(), Spec.c_str(), Task.Attempts,
                     Task.Diag.c_str());
      }
      // Fall through: the coordinator's own batch run below serves the
      // fleet's published results from the warm store and computes
      // whatever the fleet didn't finish — including quarantined tasks,
      // so the aggregate stays byte-identical under any crash schedule.
    }
  }

  BatchExecutor::Options BO;
  BO.Jobs = Cli.Jobs;
  BO.WithStdlib = !Cli.NoStdlib;
  BO.WorkBudget = Cli.WorkBudget;
  BO.TimeBudgetMs = Cli.BudgetMs;
  BO.CacheBudgetBytes = Cli.CacheBudget;
  BO.Store = Store;
  BO.ShardIndex = Cli.ShardIndex;
  BO.ShardCount = Cli.ShardCount;
  BatchExecutor Exec(BO);

  BatchReport Report;
  for (unsigned Pass = 1; Pass <= Cli.Repeat; ++Pass) {
    Report = Exec.run(Entries);
    if (!WorkerMode || Cli.Verbose)
      printBatchStats(Report, Pass, Cli.Repeat);
  }

  // The authoritative report has consumed everything the fleet
  // published: retire the ledger (and with it the GC pins on its store
  // keys), then let GC re-enforce the configured bounds.
  if (FleetRan) {
    std::remove((Cli.StoreDir + "/ledger.bin").c_str());
    std::remove((Cli.StoreDir + "/ledger.bin.lock").c_str());
    if (Store)
      Store->gc();
  }

  if (Cli.Stats) {
    const ResultCache &C = Exec.cache();
    std::fprintf(stderr,
                 "[cscpta] cache stats: hits %llu, misses %llu, evictions "
                 "%llu, resident %llu bytes in %zu entries (budget %llu)\n",
                 static_cast<unsigned long long>(C.hits()),
                 static_cast<unsigned long long>(C.misses()),
                 static_cast<unsigned long long>(C.evictions()),
                 static_cast<unsigned long long>(C.bytesUsed()), C.size(),
                 static_cast<unsigned long long>(C.byteBudget()));
    if (Store) {
      uint64_t Served = 0, Total = 0;
      for (const BatchEntryResult &E : Report.Entries)
        for (const BatchRunResult &R : E.Runs) {
          if (R.Skipped)
            continue;
          ++Total;
          if (R.FromStore)
            ++Served;
        }
      printStoreStats(*Store, Served, Total);
    }
  }

  if (WorkerMode) {
    // stdout stays silent; stderr already carried any statistics.
  } else if (Cli.Json) {
    std::printf("%s\n", Report.aggregateJson().c_str());
  } else {
    printBatchHuman(Report);
    std::printf("batch: %zu runs over %zu entries, jobs %u, last pass "
                "%.1f ms, cache hits %llu\n",
                Report.totalRuns(), Report.Entries.size(), Report.Jobs,
                Report.WallMs,
                static_cast<unsigned long long>(Report.CacheHits));
  }
  for (const BatchEntryResult &E : Report.Entries) {
    for (const std::string &D : E.LoadDiags)
      std::fprintf(stderr, "%s: %s\n", E.Label.c_str(), D.c_str());
    for (const BatchRunResult &R : E.Runs)
      if (R.Status == RunStatus::SpecError)
        std::fprintf(stderr, "error: %s: %s\n", E.Label.c_str(),
                     R.Error.c_str());
  }
  int RC = Report.exitCode();
  // A quarantined task means some worker crash-looped: the aggregate is
  // still complete (recomputed in-process), but the condition needs
  // operator attention — fail the coordinator.
  if (HadQuarantine && RC == 0)
    RC = 1;
  return RC;
}

/// `--stats`: one stderr line per completed run with the scheduling
/// diagnostics deliberately kept out of the JSON report (worklist pops,
/// cycle-elimination counters). stderr so `--json` stdout stays pure.
void printRunStats(const AnalysisRun &Run) {
  if (!Run.completed())
    return;
  const SolverStats &S = Run.Result.Stats;
  const SccStats &C = S.Scc;
  std::fprintf(
      stderr,
      "[cscpta] stats %s: pops %llu, pts-insertions %llu, pfg-edges %llu"
      " | scc: %llu collapsed (%llu members; %llu online, %llu full "
      "passes), ~%llu propagations saved\n",
      Run.Name.c_str(), static_cast<unsigned long long>(S.WorklistPops),
      static_cast<unsigned long long>(S.PtsInsertions),
      static_cast<unsigned long long>(S.PFGEdges),
      static_cast<unsigned long long>(C.SccsFound),
      static_cast<unsigned long long>(C.MembersCollapsed),
      static_cast<unsigned long long>(C.OnlineCollapses),
      static_cast<unsigned long long>(C.FullPasses),
      static_cast<unsigned long long>(C.PropagationsSaved));
}

void printPointsTo(const ResultView &View, const std::string &Query) {
  VarId V = View.findVar(Query);
  if (V == InvalidId) {
    std::printf("  pt(%s) = <no such variable>\n", Query.c_str());
    return;
  }
  std::printf("  pt(%s) = {", Query.c_str());
  bool First = true;
  const Program &P = View.program();
  View.pointsTo(V).forEach([&](ObjId O) {
    std::printf("%so%u:%s", First ? "" : ", ", O,
                P.type(P.obj(O).Type).Name.c_str());
    First = false;
  });
  std::printf("}\n");
}

void appendPointsToJson(JsonWriter &J, const ResultView &View,
                        const std::string &Query) {
  J.beginObject().kv("var", Query);
  VarId V = View.findVar(Query);
  if (V == InvalidId) {
    J.kv("found", false).endObject();
    return;
  }
  J.kv("found", true).key("objects").beginArray();
  const Program &P = View.program();
  View.pointsTo(V).forEach([&](ObjId O) {
    J.beginObject()
        .kv("obj", O)
        .kv("type", P.type(P.obj(O).Type).Name)
        .endObject();
  });
  J.endArray().endObject();
}

/// `--demand`: answers the --points-to queries per spec by solving only
/// the backward slice reaching the queried variables (one slice serves
/// every spec — it is selector-independent).
int runDemand(const CliOptions &Cli, const AnalysisSession &S) {
  const Program &P = S.program();
  std::vector<std::string> Specs = splitSpecList(Cli.Analyses);
  if (Specs.empty()) {
    std::fprintf(stderr, "error: no analyses requested\n");
    return 2;
  }

  PTAResult NoResult; // name lookups only touch the program
  ResultView Names(P, NoResult);
  std::vector<VarId> Roots;
  for (const std::string &Q : Cli.PointsToQueries) {
    VarId V = Names.findVar(Q);
    if (V != InvalidId)
      Roots.push_back(V);
  }
  DemandSlicer Slicer(P);
  DemandSlicer::Slice Slice = Slicer.sliceFor(Roots);

  bool AnySpecError = false, AnyExhausted = false;
  JsonWriter J;
  if (Cli.Json) {
    J.beginObject().kv("tool", "cscpta").kv("demand", true);
    J.key("slice")
        .beginObject()
        .kv("enabled_stmts", Slice.EnabledStmts)
        .kv("total_stmts", P.numStmts())
        .kv("relevant_vars", Slice.RelevantVars)
        .endObject();
    J.key("queries").beginArray();
  } else {
    std::printf("demand slice: %u/%u statements enabled, %u relevant "
                "variables\n",
                Slice.EnabledStmts, P.numStmts(), Slice.RelevantVars);
  }

  for (const std::string &SpecText : Specs) {
    AnalysisRecipe Recipe;
    std::string Error;
    if (!AnalysisRegistry::global().build(SpecText, Recipe, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      AnySpecError = true;
      continue;
    }
    if (!IncrementalSolver::eligible(Recipe)) {
      std::fprintf(stderr,
                   "error: --demand is not available for spec '%s'\n",
                   Recipe.Name.c_str());
      AnySpecError = true;
      continue;
    }
    IncrementalSolver::Options IO;
    IO.WorkBudget = Cli.WorkBudget;
    IO.TimeBudgetMs = Cli.BudgetMs;
    IncrementalSolver Inc(P, Recipe, IO);
    PTAResult R = Inc.demandSolve(Slice.Enabled);
    if (R.Exhausted) {
      std::fprintf(stderr, "error: %s: analysis budget exhausted\n",
                   Recipe.Name.c_str());
      AnyExhausted = true;
      continue;
    }
    if (Cli.Stats)
      std::fprintf(stderr,
                   "[cscpta] stats %s (demand): pops %llu, pts-insertions "
                   "%llu, pfg-edges %llu\n",
                   Recipe.Name.c_str(),
                   static_cast<unsigned long long>(R.Stats.WorklistPops),
                   static_cast<unsigned long long>(R.Stats.PtsInsertions),
                   static_cast<unsigned long long>(R.Stats.PFGEdges));
    ResultView View(P, R);
    if (Cli.Json) {
      for (const std::string &Q : Cli.PointsToQueries) {
        J.beginObject().kv("analysis", Recipe.Name).key("points_to");
        appendPointsToJson(J, View, Q);
        J.endObject();
      }
    } else {
      std::printf("%s (demand):\n", Recipe.Name.c_str());
      for (const std::string &Q : Cli.PointsToQueries)
        printPointsTo(View, Q);
    }
  }

  if (Cli.Json) {
    J.endArray().endObject();
    std::printf("%s\n", J.str().c_str());
  }
  if (AnySpecError)
    return 1;
  if (AnyExhausted)
    return 3;
  return 0;
}

/// Single-run path with a persistent store: per-spec store lookups, one
/// runAll over the misses, publish-back of the cacheable computed runs.
/// \p Served counts the specs answered straight from the store.
std::vector<AnalysisRun> runAllWithStore(AnalysisSession &S,
                                         const CliOptions &Cli,
                                         ResultStore &Store,
                                         uint64_t &Served) {
  std::vector<std::string> Specs = splitSpecList(Cli.Analyses);
  std::vector<AnalysisRun> Runs(Specs.size());
  if (Specs.empty())
    return Runs;
  uint64_t ProgFp = programFingerprint(S.program());
  uint64_t RegFp = registryFingerprint(S.registry());
  const AnalysisSession::Options &SO = S.options();

  std::vector<std::string> Keys(Specs.size()), Canons(Specs.size());
  std::vector<size_t> MissIdx;
  std::string MissList;
  for (size_t I = 0; I != Specs.size(); ++I) {
    AnalysisSpec Parsed;
    std::string Error;
    if (parseAnalysisSpec(Specs[I], Parsed, Error)) {
      Parsed.Name = S.registry().resolveName(Parsed.Name);
      Canons[I] = canonicalSpec(Parsed);
      Keys[I] = resultStoreKey(ProgFp, SO.WorkBudget, SO.TimeBudgetMs,
                               RegFp, Canons[I]);
      StoredResult SR;
      if (Store.lookup(Keys[I], SR)) {
        Runs[I] = runFromStored(SR);
        Runs[I].Name = Parsed.Text; // display the requested spelling
        ++Served;
        continue;
      }
    }
    // Misses (and unparsable specs, which runAll turns into SpecError
    // runs carrying the same diagnostic) compute below in one pass.
    MissIdx.push_back(I);
    if (!MissList.empty())
      MissList += ',';
    MissList += Specs[I];
  }

  if (!MissIdx.empty()) {
    std::vector<AnalysisRun> Computed = S.runAll(MissList, Cli.Jobs);
    for (size_t K = 0; K != MissIdx.size() && K != Computed.size(); ++K) {
      size_t I = MissIdx[K];
      Runs[I] = std::move(Computed[K]);
      AnalysisRun &R = Runs[I];
      // Same cacheability rule as the batch executor: wall-clock
      // exhaustion is nondeterministic, spec errors carry no result.
      bool Cacheable = R.Status != RunStatus::BudgetExhausted ||
                       SO.TimeBudgetMs == 0;
      if (Keys[I].empty() || !Cacheable ||
          R.Status == RunStatus::SpecError)
        continue;
      // Serialize the timing-free report under the canonical name, as
      // the batch executor does, so every client mode shares entries.
      std::string DisplayName = R.Name;
      R.Name = Canons[I];
      JsonWriter J;
      appendRunJson(J, R, /*IncludeTimings=*/false);
      Store.publish(Keys[I], storedFromRun(R, J.take()));
      R.Name = DisplayName;
    }
  }
  return Runs;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string Val;
    if (matchesOpt(Argv[I], "--analyses")) {
      if (!takeValue(Argc, Argv, I, "--analyses", Cli.Analyses))
        return usage(Argv[0]);
      Cli.AnalysesSet = true;
    } else if (matchesOpt(Argv[I], "--points-to")) {
      if (!takeValue(Argc, Argv, I, "--points-to", Val))
        return usage(Argv[0]);
      // Comma-separable: variable names never contain commas, and one
      // fixpoint amortizes across however many queries arrive.
      size_t Start = 0;
      while (Start <= Val.size()) {
        size_t Comma = Val.find(',', Start);
        std::string Q = Val.substr(
            Start, Comma == std::string::npos ? Comma : Comma - Start);
        if (!Q.empty())
          Cli.PointsToQueries.push_back(Q);
        if (Comma == std::string::npos)
          break;
        Start = Comma + 1;
      }
    } else if (matchesOpt(Argv[I], "--cache-budget")) {
      if (!takeValue(Argc, Argv, I, "--cache-budget", Val) ||
          !parseUint64Arg(Val, "--cache-budget", Cli.CacheBudget))
        return usage(Argv[0]);
      Cli.CacheBudgetSet = true;
    } else if (matchesOpt(Argv[I], "--budget-ms")) {
      if (!takeValue(Argc, Argv, I, "--budget-ms", Val) ||
          !parseDoubleArg(Val, "--budget-ms", Cli.BudgetMs))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--work-budget")) {
      if (!takeValue(Argc, Argv, I, "--work-budget", Val) ||
          !parseUint64Arg(Val, "--work-budget", Cli.WorkBudget))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--jobs")) {
      if (!takeValue(Argc, Argv, I, "--jobs", Val) ||
          !parsePositiveArg(Val, "--jobs", Cli.Jobs))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--repeat")) {
      if (!takeValue(Argc, Argv, I, "--repeat", Val) ||
          !parsePositiveArg(Val, "--repeat", Cli.Repeat))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--batch")) {
      if (!takeValue(Argc, Argv, I, "--batch", Cli.BatchManifest))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--store")) {
      if (!takeValue(Argc, Argv, I, "--store", Cli.StoreDir) ||
          Cli.StoreDir.empty())
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--workers")) {
      if (!takeValue(Argc, Argv, I, "--workers", Val) ||
          !parsePositiveArg(Val, "--workers", Cli.Workers))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--worker-shard")) {
      if (!takeValue(Argc, Argv, I, "--worker-shard", Val) ||
          !parseShardArg(Val, Cli.ShardIndex, Cli.ShardCount))
        return usage(Argv[0]);
      Cli.ShardSet = true;
    } else if (Arg == "--worker-pull") {
      Cli.WorkerPull = true;
    } else if (matchesOpt(Argv[I], "--lease-ttl")) {
      if (!takeValue(Argc, Argv, I, "--lease-ttl", Val) ||
          !parseUint64Arg(Val, "--lease-ttl", Cli.LeaseTtlMs))
        return usage(Argv[0]);
      if (Cli.LeaseTtlMs == 0 || Cli.LeaseTtlMs > 3600000) {
        std::fprintf(stderr, "error: --lease-ttl expects milliseconds in "
                             "[1, 3600000]\n");
        return usage(Argv[0]);
      }
    } else if (matchesOpt(Argv[I], "--max-task-attempts")) {
      if (!takeValue(Argc, Argv, I, "--max-task-attempts", Val) ||
          !parsePositiveArg(Val, "--max-task-attempts",
                            Cli.MaxTaskAttempts))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--store-max-bytes")) {
      if (!takeValue(Argc, Argv, I, "--store-max-bytes", Val) ||
          !parseUint64Arg(Val, "--store-max-bytes", Cli.StoreMaxBytes))
        return usage(Argv[0]);
    } else if (matchesOpt(Argv[I], "--store-max-age")) {
      if (!takeValue(Argc, Argv, I, "--store-max-age", Val) ||
          !parseUint64Arg(Val, "--store-max-age", Cli.StoreMaxAgeS))
        return usage(Argv[0]);
    } else if (Arg == "--scrub") {
      Cli.Scrub = true;
    } else if (Arg == "--json") {
      Cli.Json = true;
    } else if (Arg == "--serve") {
      Cli.Serve = true;
    } else if (Arg == "--demand") {
      Cli.Demand = true;
    } else if (Arg == "--stats") {
      Cli.Stats = true;
    } else if (Arg == "--no-stdlib") {
      Cli.NoStdlib = true;
    } else if (Arg == "--verbose") {
      Cli.Verbose = true;
    } else if (Arg == "--list") {
      Cli.List = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Cli.Files.push_back(Arg);
    }
  }

  if (Cli.List) {
    std::printf("registered analyses:\n");
    for (const auto &[Name, Desc] : AnalysisRegistry::global().list())
      std::printf("  %-10s %s\n", Name.c_str(), Desc.c_str());
    std::printf("spec syntax: name[;key=value]..., comma-separated; e.g. "
                "\"ci,k-type;k=3,zipper-e;pv=0.05\"\n");
    return 0;
  }
  if (Cli.Scrub) {
    if (Cli.StoreDir.empty()) {
      std::fprintf(stderr, "error: --scrub requires --store\n");
      return usage(Argv[0]);
    }
    if (!Cli.Files.empty() || !Cli.BatchManifest.empty() || Cli.Serve) {
      std::fprintf(stderr,
                   "error: --scrub takes no programs, --batch, or "
                   "--serve\n");
      return usage(Argv[0]);
    }
    ResultStore::Options SO;
    SO.Dir = Cli.StoreDir;
    ResultStore Store(SO);
    if (!Store.usable()) {
      std::fprintf(stderr, "error: result store '%s' is unusable (%s)\n",
                   Cli.StoreDir.c_str(), Store.error().c_str());
      return 1;
    }
    ResultStore::ScrubReport R = Store.scrub();
    std::printf("[cscpta] store scrub: %llu entries valid, %llu corrupt "
                "(evicted), %llu bytes\n",
                static_cast<unsigned long long>(R.Valid),
                static_cast<unsigned long long>(R.Corrupt),
                static_cast<unsigned long long>(R.Bytes));
    return 0;
  }
  if ((Cli.Workers > 0 || Cli.ShardSet || Cli.WorkerPull) &&
      (Cli.BatchManifest.empty() || Cli.StoreDir.empty())) {
    std::fprintf(stderr, "error: %s requires --batch and --store\n",
                 Cli.Workers > 0      ? "--workers"
                 : Cli.WorkerPull     ? "--worker-pull"
                                      : "--worker-shard");
    return usage(Argv[0]);
  }
  if ((Cli.Workers > 0 && (Cli.ShardSet || Cli.WorkerPull)) ||
      (Cli.ShardSet && Cli.WorkerPull)) {
    std::fprintf(stderr, "error: --workers, --worker-shard, and "
                         "--worker-pull are mutually exclusive\n");
    return usage(Argv[0]);
  }
  if (Cli.StoreDir.empty() &&
      (Cli.StoreMaxBytes != 0 || Cli.StoreMaxAgeS != 0)) {
    std::fprintf(stderr, "error: --store-max-bytes/--store-max-age "
                         "require --store\n");
    return usage(Argv[0]);
  }
  if (Cli.Serve) {
    if (!Cli.BatchManifest.empty()) {
      std::fprintf(stderr, "error: --serve conflicts with --batch\n");
      return usage(Argv[0]);
    }
    if (!Cli.PointsToQueries.empty()) {
      std::fprintf(stderr, "error: --points-to is not available with "
                           "--serve (send query requests instead)\n");
      return usage(Argv[0]);
    }
    if (Cli.Demand) {
      std::fprintf(stderr, "error: --demand is not available with --serve "
                           "(send mode \"demand\" queries instead)\n");
      return usage(Argv[0]);
    }
    if (Cli.Json) {
      std::fprintf(stderr, "error: --json is not available with --serve "
                           "(responses are always JSON)\n");
      return usage(Argv[0]);
    }
    if (Cli.Repeat != 1) {
      std::fprintf(stderr, "error: --repeat requires --batch\n");
      return usage(Argv[0]);
    }
    if (Cli.CacheBudgetSet) {
      std::fprintf(stderr, "error: --cache-budget requires --batch\n");
      return usage(Argv[0]);
    }
    if (Cli.Files.empty())
      return usage(Argv[0]);
    AnalysisServer::Options AO;
    AO.WithStdlib = !Cli.NoStdlib;
    AO.WorkBudget = Cli.WorkBudget;
    AO.TimeBudgetMs = Cli.BudgetMs;
    AO.Store = openStore(Cli);
    if (Cli.AnalysesSet) {
      std::vector<std::string> Specs = splitSpecList(Cli.Analyses);
      if (Specs.size() != 1) {
        std::fprintf(stderr,
                     "error: --serve takes a single --analyses spec (the "
                     "default for queries that omit \"spec\")\n");
        return usage(Argv[0]);
      }
      AO.DefaultSpec = Specs.front();
    } else {
      AO.DefaultSpec = "ci"; // incremental/demand-capable default
    }
    AnalysisServer Server(AO);
    std::vector<std::string> Diags;
    if (!Server.loadFiles(Cli.Files, Diags)) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "%s\n", D.c_str());
      return 1;
    }
    if (Cli.Verbose)
      std::fprintf(stderr, "[cscpta] serving %zu file(s), default spec "
                           "'%s'\n",
                   Cli.Files.size(), AO.DefaultSpec.c_str());
    return Server.serve(std::cin, std::cout);
  }
  if (!Cli.BatchManifest.empty()) {
    if (!Cli.Files.empty()) {
      std::fprintf(stderr,
                   "error: --batch takes programs from the manifest; "
                   "positional .jir files are not allowed\n");
      return usage(Argv[0]);
    }
    if (!Cli.PointsToQueries.empty()) {
      std::fprintf(stderr,
                   "error: --points-to is not available with --batch\n");
      return usage(Argv[0]);
    }
    if (Cli.Demand) {
      std::fprintf(stderr,
                   "error: --demand is not available with --batch\n");
      return usage(Argv[0]);
    }
    if (Cli.AnalysesSet) {
      std::fprintf(stderr, "error: --analyses conflicts with --batch "
                           "(specs come from the manifest)\n");
      return usage(Argv[0]);
    }
    return runBatch(Cli, Argv[0]);
  }
  if (Cli.Repeat != 1) {
    std::fprintf(stderr, "error: --repeat requires --batch\n");
    return usage(Argv[0]);
  }
  if (Cli.CacheBudgetSet) {
    std::fprintf(stderr, "error: --cache-budget requires --batch\n");
    return usage(Argv[0]);
  }
  if (Cli.Demand && Cli.PointsToQueries.empty()) {
    std::fprintf(stderr, "error: --demand requires --points-to\n");
    return usage(Argv[0]);
  }
  if (Cli.Files.empty())
    return usage(Argv[0]);

  AnalysisSession::Options SO;
  SO.WithStdlib = !Cli.NoStdlib;
  SO.TimeBudgetMs = Cli.BudgetMs;
  SO.WorkBudget = Cli.WorkBudget;
  if (Cli.Verbose)
    SO.Progress = [](const char *Phase, const std::string &Detail) {
      std::fprintf(stderr, "[cscpta] %s %s\n", Phase, Detail.c_str());
    };

  std::vector<std::string> Diags;
  std::unique_ptr<AnalysisSession> S =
      AnalysisSession::fromFiles(Cli.Files, std::move(SO), Diags);
  if (!S) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "%s\n", D.c_str());
    return 1;
  }
  const Program &P = S->program();

  if (Cli.Demand) {
    // The default spec list is "csc", which needs its plugin and cannot
    // run restricted; default the demand path to the plugin-free "ci".
    if (!Cli.AnalysesSet)
      Cli.Analyses = "ci";
    return runDemand(Cli, *S);
  }

  std::shared_ptr<ResultStore> Store = openStore(Cli);
  uint64_t StoreServed = 0;
  std::vector<AnalysisRun> Runs =
      Store ? runAllWithStore(*S, Cli, *Store, StoreServed)
            : S->runAll(Cli.Analyses, Cli.Jobs);
  if (Runs.empty()) {
    std::fprintf(stderr, "error: no analyses requested\n");
    return usage(Argv[0]);
  }

  bool AnySpecError = false, AnyExhausted = false;
  for (const AnalysisRun &Run : Runs) {
    if (Run.Status == RunStatus::SpecError) {
      AnySpecError = true;
      std::fprintf(stderr, "error: %s\n", Run.Error.c_str());
    }
    AnyExhausted = AnyExhausted || Run.exhausted();
    if (Cli.Stats)
      printRunStats(Run);
  }
  if (Cli.Stats && Store)
    printStoreStats(*Store, StoreServed, Runs.size());

  if (Cli.Json) {
    JsonWriter J;
    J.beginObject();
    J.kv("tool", "cscpta");
    J.key("files").beginArray();
    for (const std::string &F : Cli.Files)
      J.value(F);
    J.endArray();
    J.key("program");
    appendProgramSummaryJson(J, P);
    J.kv("parse_ms", S->parseMs()).kv("verify_ms", S->verifyMs());
    J.key("runs").beginArray();
    for (const AnalysisRun &Run : Runs)
      appendRunJson(J, Run);
    J.endArray();
    if (!Cli.PointsToQueries.empty()) {
      J.key("queries").beginArray();
      for (const AnalysisRun &Run : Runs) {
        if (!Run.completed())
          continue;
        ResultView View = S->view(Run);
        for (const std::string &Q : Cli.PointsToQueries) {
          J.beginObject().kv("analysis", Run.Name).key("points_to");
          appendPointsToJson(J, View, Q);
          J.endObject();
        }
      }
      J.endArray();
    }
    J.endObject();
    std::printf("%s\n", J.str().c_str());
  } else {
    std::printf("program: %u classes, %u methods, %u statements "
                "(%zu file(s), parse %.1f ms)\n",
                P.numTypes(), P.numMethods(), P.numStmts(),
                Cli.Files.size(), S->parseMs());
    std::printf("%-18s %-16s %10s %10s %10s %10s %12s\n", "analysis",
                "status", "time(ms)", "#fail-cast", "#reach-mtd",
                "#poly-call", "#call-edge");
    for (const AnalysisRun &Run : Runs) {
      if (Run.Status == RunStatus::SpecError) {
        std::printf("%-18s %-16s\n", Run.Name.c_str(),
                    runStatusName(Run.Status));
        continue;
      }
      if (!Run.completed()) {
        std::printf("%-18s %-16s %10.1f %10s %10s %10s %12s\n",
                    Run.Name.c_str(), runStatusName(Run.Status),
                    Run.Timings.TotalMs, "-", "-", "-", "-");
        continue;
      }
      std::printf("%-18s %-16s %10.1f %10u %10u %10u %12llu\n",
                  Run.Name.c_str(), runStatusName(Run.Status),
                  Run.Timings.TotalMs, Run.Metrics.FailCasts,
                  Run.Metrics.ReachMethods, Run.Metrics.PolyCalls,
                  static_cast<unsigned long long>(Run.Metrics.CallEdges));
      if (Run.Csc.ShortcutEdges || Run.Csc.CutStores)
        std::printf("  cut-shortcut: %llu cut stores, %llu cut returns, "
                    "%llu shortcut edges, %zu involved methods\n",
                    static_cast<unsigned long long>(Run.Csc.CutStores),
                    static_cast<unsigned long long>(Run.Csc.CutReturns),
                    static_cast<unsigned long long>(Run.Csc.ShortcutEdges),
                    Run.Csc.Involved.size());
      if (Run.SelectedMethods)
        std::printf("  zipper-e: %u selected methods, pre-analysis %.1f ms"
                    "%s\n",
                    Run.SelectedMethods, Run.Timings.PreMs,
                    Run.PreFromCache ? " (cached)" : "");
      if (!Cli.PointsToQueries.empty()) {
        ResultView View = S->view(Run);
        for (const std::string &Q : Cli.PointsToQueries)
          printPointsTo(View, Q);
      }
    }
  }

  if (AnySpecError)
    return 1;
  if (AnyExhausted)
    return 3;
  return 0;
}
