//===- Parser.cpp - Recursive-descent parser for .jir ---------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>
#include <sstream>

using namespace csc;

std::string Parser::here() const {
  std::ostringstream OS;
  OS << File << ":" << cur().Line;
  return OS.str();
}

void Parser::error(const std::string &Msg) { errorAt(cur().Line, Msg); }

void Parser::errorAt(uint32_t Line, const std::string &Msg) {
  std::ostringstream OS;
  OS << File << ":" << Line << ": error: " << Msg;
  Diags.push_back(OS.str());
}

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  advance();
  return true;
}

bool Parser::acceptIdent(const char *KW) {
  if (!atIdent(KW))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokKind K, const char *What) {
  if (accept(K))
    return true;
  error(std::string("expected ") + What + ", found '" + cur().Text + "'");
  return false;
}

std::string Parser::expectIdent(const char *What) {
  if (at(TokKind::Ident)) {
    std::string Name = cur().Text;
    advance();
    return Name;
  }
  error(std::string("expected ") + What + ", found '" + cur().Text + "'");
  return "";
}

void Parser::syncToStmtEnd() {
  while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
    advance();
  accept(TokKind::Semi);
}

bool Parser::parseSource(const std::string &Source,
                         const std::string &FileName) {
  Toks = lex(Source);
  Pos = 0;
  File = FileName;
  DiagsAtSourceStart = Diags.size();

  for (const Token &T : Toks)
    if (T.Kind == TokKind::Error)
      errorAt(T.Line, T.Text);

  while (!at(TokKind::Eof)) {
    if (atIdent("class") || atIdent("interface") || atIdent("abstract")) {
      parseClassDecl();
      continue;
    }
    if (atIdent("extend")) {
      parseExtendDecl();
      continue;
    }
    error("expected class or interface declaration, found '" + cur().Text +
          "'");
    advance();
  }
  return Diags.size() == DiagsAtSourceStart;
}

void Parser::skipBracedBlock() {
  while (!at(TokKind::Eof) && !at(TokKind::LBrace))
    advance();
  int Depth = 0;
  do {
    if (at(TokKind::LBrace))
      ++Depth;
    if (at(TokKind::RBrace))
      --Depth;
    advance();
  } while (!at(TokKind::Eof) && Depth > 0);
}

void Parser::parseClassDecl() {
  bool IsAbstract = acceptIdent("abstract");
  bool IsInterface = false;
  if (acceptIdent("interface"))
    IsInterface = true;
  else if (!acceptIdent("class")) {
    error("expected 'class' after 'abstract'");
    advance();
    return;
  }

  std::string Name = expectIdent("class name");
  if (Name.empty())
    return;

  TypeId Existing = P.typeByName(Name);
  if (Existing != InvalidId && P.type(Existing).Defined) {
    error("type '" + Name + "' defined twice");
    // Skip the body to keep parsing.
    while (!at(TokKind::Eof) && !at(TokKind::LBrace))
      advance();
    int Depth = 0;
    do {
      if (at(TokKind::LBrace))
        ++Depth;
      if (at(TokKind::RBrace))
        --Depth;
      advance();
    } while (!at(TokKind::Eof) && Depth > 0);
    return;
  }

  TypeId Super = InvalidId;
  std::vector<TypeId> Interfaces;
  if (IsInterface) {
    if (acceptIdent("extends")) {
      do {
        std::string IName = expectIdent("interface name");
        if (!IName.empty())
          Interfaces.push_back(P.getOrCreateType(IName));
      } while (accept(TokKind::Comma));
    }
  } else {
    if (acceptIdent("extends")) {
      std::string SName = expectIdent("superclass name");
      if (!SName.empty())
        Super = P.getOrCreateType(SName);
    }
    if (acceptIdent("implements")) {
      do {
        std::string IName = expectIdent("interface name");
        if (!IName.empty())
          Interfaces.push_back(P.getOrCreateType(IName));
      } while (accept(TokKind::Comma));
    }
  }

  TypeId T = P.defineClass(Name, Super, std::move(Interfaces),
                           IsInterface ? TypeKind::Interface
                                       : TypeKind::Class,
                           IsAbstract);

  if (!expect(TokKind::LBrace, "'{'"))
    return;
  if (IsInterface)
    parseInterfaceBody(T);
  else
    parseClassBody(T);
}

void Parser::parseInterfaceBody(TypeId T) {
  while (!at(TokKind::Eof) && !at(TokKind::RBrace)) {
    if (acceptIdent("method")) {
      parseMethodDecl(T, /*IsStatic=*/false, /*IsAbstract=*/true);
      continue;
    }
    error("interfaces may only declare methods");
    syncToStmtEnd();
  }
  expect(TokKind::RBrace, "'}'");
}

void Parser::parseClassBody(TypeId T) {
  while (!at(TokKind::Eof) && !at(TokKind::RBrace)) {
    bool IsStatic = acceptIdent("static");
    bool IsAbstract = acceptIdent("abstract");
    if (acceptIdent("field")) {
      if (IsAbstract)
        error("fields cannot be abstract");
      parseFieldDecl(T, IsStatic);
      continue;
    }
    if (acceptIdent("method")) {
      parseMethodDecl(T, IsStatic, IsAbstract);
      continue;
    }
    error("expected field or method declaration, found '" + cur().Text +
          "'");
    syncToStmtEnd();
  }
  expect(TokKind::RBrace, "'}'");
}

void Parser::parseExtendDecl() {
  advance(); // 'extend'
  if (!acceptIdent("class")) {
    error("expected 'class' after 'extend'");
    advance();
    return;
  }
  std::string Name = expectIdent("class name");
  if (Name.empty())
    return;
  TypeId T = P.typeByName(Name);
  if (T == InvalidId || !P.type(T).Defined) {
    error("cannot extend undefined class '" + Name + "'");
    skipBracedBlock();
    return;
  }
  if (P.type(T).Kind != TypeKind::Class) {
    error("'extend class' target '" + Name + "' is not a class");
    skipBracedBlock();
    return;
  }
  if (!expect(TokKind::LBrace, "'{'"))
    return;
  while (!at(TokKind::Eof) && !at(TokKind::RBrace)) {
    if (acceptIdent("append")) {
      if (!acceptIdent("method")) {
        error("expected 'method' after 'append'");
        syncToStmtEnd();
        continue;
      }
      parseAppendMethod(T);
      continue;
    }
    bool IsStatic = acceptIdent("static");
    bool IsAbstract = acceptIdent("abstract");
    if (acceptIdent("field")) {
      if (IsAbstract)
        error("fields cannot be abstract");
      parseFieldDecl(T, IsStatic);
      continue;
    }
    if (acceptIdent("method")) {
      parseMethodDecl(T, IsStatic, IsAbstract);
      continue;
    }
    error("expected field, method, or append declaration, found '" +
          cur().Text + "'");
    syncToStmtEnd();
  }
  expect(TokKind::RBrace, "'}'");
}

void Parser::parseAppendMethod(TypeId T) {
  std::string Name = expectIdent("method name");
  if (Name.empty())
    return;
  MethodId Target = InvalidId;
  bool Ambiguous = false;
  for (MethodId M : P.type(T).Methods)
    if (P.method(M).Name == Name) {
      if (Target != InvalidId)
        Ambiguous = true;
      Target = M;
    }
  if (Target == InvalidId) {
    error("class '" + P.type(T).Name + "' has no method '" + Name +
          "' to append to");
    skipBracedBlock();
    return;
  }
  if (Ambiguous) {
    error("method '" + Name + "' is overloaded in '" + P.type(T).Name +
          "'; append is ambiguous");
    skipBracedBlock();
    return;
  }
  if (P.method(Target).IsAbstract) {
    error("cannot append to abstract method '" + Name + "'");
    skipBracedBlock();
    return;
  }

  // The method's existing locals (parameters and `this` included) come
  // back into scope; new `var` declarations extend the method.
  Scope.clear();
  for (VarId V : P.method(Target).Vars)
    Scope[P.var(V).Name] = V;

  MethodBuilder MB(P, Target);
  expect(TokKind::LBrace, "'{'");
  while (!at(TokKind::Eof) && !at(TokKind::RBrace))
    parseStmt(MB);
  expect(TokKind::RBrace, "'}'");
}

void Parser::parseFieldDecl(TypeId T, bool IsStatic) {
  std::string Name = expectIdent("field name");
  expect(TokKind::Colon, "':'");
  TypeId FT = parseType(/*AllowVoid=*/false);
  expect(TokKind::Semi, "';'");
  if (Name.empty() || FT == InvalidId)
    return;
  if (P.resolveField(T, Name) != InvalidId) {
    error("field '" + Name + "' already declared in '" + P.type(T).Name +
          "' or a superclass");
    return;
  }
  P.addField(T, Name, FT, IsStatic);
}

TypeId Parser::parseType(bool AllowVoid) {
  std::string Name = expectIdent("type name");
  if (Name.empty())
    return InvalidId;
  if (Name == "void") {
    if (!AllowVoid)
      error("'void' is only valid as a return type");
    return InvalidId;
  }
  TypeId T = P.getOrCreateType(Name);
  while (at(TokKind::LBracket) && peek().Kind == TokKind::RBracket) {
    advance();
    advance();
    T = P.arrayOf(T);
  }
  return T;
}

void Parser::parseMethodDecl(TypeId T, bool IsStatic, bool IsAbstract) {
  std::string Name = expectIdent("method name");
  expect(TokKind::LParen, "'('");
  std::vector<std::string> ParamNames;
  std::vector<TypeId> ParamTypes;
  if (!at(TokKind::RParen)) {
    do {
      std::string PName = expectIdent("parameter name");
      expect(TokKind::Colon, "':'");
      TypeId PT = parseType(/*AllowVoid=*/false);
      if (!PName.empty() && PT != InvalidId) {
        ParamNames.push_back(PName);
        ParamTypes.push_back(PT);
      }
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "')'");
  expect(TokKind::Colon, "':'");
  TypeId RetType = parseType(/*AllowVoid=*/true);

  if (Name.empty())
    return;
  if (P.lookupMethod(T, Name, ParamTypes.size()) != InvalidId &&
      P.type(T).Methods.size() > 0) {
    // Overriding a superclass method is fine; redefining within the same
    // class is an error.
    for (MethodId M : P.type(T).Methods)
      if (P.method(M).Name == Name &&
          P.method(M).ParamTypes.size() == ParamTypes.size()) {
        error("method '" + Name + "' defined twice in '" + P.type(T).Name +
              "'");
        break;
      }
  }

  MethodId M = P.addMethod(T, Name, ParamTypes, RetType, IsStatic,
                           IsAbstract);

  if (IsAbstract) {
    expect(TokKind::Semi, "';' after abstract method");
    return;
  }

  // Rename parameter variables to their declared names and build the scope.
  Scope.clear();
  const MethodInfo &MI = P.method(M);
  size_t FirstParam = IsStatic ? 0 : 1;
  if (!IsStatic)
    Scope["this"] = MI.Params[0];
  for (size_t I = 0; I != ParamNames.size(); ++I) {
    VarId V = MI.Params[FirstParam + I];
    P.varMut(V).Name = ParamNames[I];
    if (Scope.count(ParamNames[I]))
      error("duplicate parameter name '" + ParamNames[I] + "'");
    Scope[ParamNames[I]] = V;
  }

  MethodBuilder MB(P, M);
  expect(TokKind::LBrace, "'{'");
  while (!at(TokKind::Eof) && !at(TokKind::RBrace))
    parseStmt(MB);
  expect(TokKind::RBrace, "'}'");
}

void Parser::parseBlock(MethodBuilder &MB) {
  expect(TokKind::LBrace, "'{'");
  while (!at(TokKind::Eof) && !at(TokKind::RBrace))
    parseStmt(MB);
  expect(TokKind::RBrace, "'}'");
}

VarId Parser::lookupVar(const std::string &Name) {
  auto It = Scope.find(Name);
  if (It != Scope.end())
    return It->second;
  error("use of undeclared variable '" + Name + "'");
  return InvalidId;
}

std::vector<VarId> Parser::parseArgs() {
  std::vector<VarId> Args;
  expect(TokKind::LParen, "'('");
  if (!at(TokKind::RParen)) {
    do {
      std::string Name = expectIdent("argument");
      if (!Name.empty()) {
        VarId V = lookupVar(Name);
        if (V != InvalidId)
          Args.push_back(V);
      }
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "')'");
  return Args;
}

void Parser::parseStmt(MethodBuilder &MB) {
  uint32_t Line = cur().Line;

  // var ID : Type ;
  if (atIdent("var") && peek().Kind == TokKind::Ident &&
      peek(2).Kind == TokKind::Colon) {
    advance();
    std::string Name = expectIdent("variable name");
    expect(TokKind::Colon, "':'");
    TypeId T = parseType(/*AllowVoid=*/false);
    expect(TokKind::Semi, "';'");
    if (Name.empty() || T == InvalidId)
      return;
    if (Scope.count(Name)) {
      error("variable '" + Name + "' already declared");
      return;
    }
    Scope[Name] = MB.local(Name, T);
    return;
  }

  // return [ID] ;
  if (atIdent("return")) {
    advance();
    VarId V = InvalidId;
    if (at(TokKind::Ident)) {
      V = lookupVar(cur().Text);
      advance();
    }
    expect(TokKind::Semi, "';'");
    StmtId S = MB.ret(V);
    P.stmtMut(S).Line = Line;
    return;
  }

  // if ? { ... } [else { ... }]
  if (atIdent("if")) {
    advance();
    expect(TokKind::Question, "'?'");
    MB.beginIf();
    parseBlock(MB);
    if (acceptIdent("else")) {
      MB.elseBranch();
      parseBlock(MB);
    }
    MB.endIf();
    return;
  }

  // Calls without a left-hand side.
  if (atIdent("call") || atIdent("scall") || atIdent("dcall")) {
    std::string Kind = cur().Text;
    advance();
    std::string A = expectIdent("name");
    expect(TokKind::Dot, "'.'");
    std::string B = expectIdent("name");
    std::string C;
    if (Kind == "dcall") {
      expect(TokKind::Dot, "'.'");
      C = expectIdent("method name");
    }
    std::vector<VarId> Args = parseArgs();
    expect(TokKind::Semi, "';'");
    StmtId S;
    if (Kind == "call") {
      VarId Base = lookupVar(A);
      if (Base == InvalidId)
        return;
      S = MB.callVirtual(InvalidId, Base, B, std::move(Args));
    } else if (Kind == "scall") {
      size_t N = Args.size();
      S = MB.callStatic(InvalidId, InvalidId, std::move(Args));
      PendingCalls.push_back({S, A, B, N, false, here()});
    } else {
      VarId Base = lookupVar(A);
      if (Base == InvalidId)
        return;
      size_t N = Args.size();
      S = MB.callSpecial(InvalidId, Base, InvalidId, std::move(Args));
      PendingCalls.push_back({S, B, C, N, true, here()});
    }
    P.stmtMut(S).Line = Line;
    return;
  }

  // Remaining statements start with an identifier.
  if (!at(TokKind::Ident)) {
    error("expected statement, found '" + cur().Text + "'");
    syncToStmtEnd();
    return;
  }

  std::string First = cur().Text;

  // ID . field = ID ;   (store)
  if (peek().Kind == TokKind::Dot && peek(3).Kind == TokKind::Eq) {
    advance();
    advance();
    std::string FieldName = expectIdent("field name");
    expect(TokKind::Eq, "'='");
    std::string SrcName = expectIdent("source variable");
    expect(TokKind::Semi, "';'");
    VarId Base = lookupVar(First);
    VarId From = SrcName.empty() ? InvalidId : lookupVar(SrcName);
    if (Base == InvalidId || From == InvalidId)
      return;
    StmtId S = MB.store(Base, InvalidId, From);
    P.stmtMut(S).Line = Line;
    PendingFields.push_back({S, FieldName, here()});
    return;
  }

  // ID [ * ] = ID ;  (array store)
  if (peek().Kind == TokKind::LBracket) {
    advance();
    advance();
    expect(TokKind::Star, "'*'");
    expect(TokKind::RBracket, "']'");
    expect(TokKind::Eq, "'='");
    std::string SrcName = expectIdent("source variable");
    expect(TokKind::Semi, "';'");
    VarId Base = lookupVar(First);
    VarId From = SrcName.empty() ? InvalidId : lookupVar(SrcName);
    if (Base == InvalidId || From == InvalidId)
      return;
    StmtId S = MB.arrayStore(Base, From);
    P.stmtMut(S).Line = Line;
    return;
  }

  // Class :: field = ID ;  (static store)
  if (peek().Kind == TokKind::ColonColon && peek(3).Kind == TokKind::Eq) {
    advance();
    advance();
    std::string FieldName = expectIdent("field name");
    expect(TokKind::Eq, "'='");
    std::string SrcName = expectIdent("source variable");
    expect(TokKind::Semi, "';'");
    VarId From = SrcName.empty() ? InvalidId : lookupVar(SrcName);
    if (From == InvalidId)
      return;
    StmtId S = MB.staticStore(InvalidId, From);
    P.stmtMut(S).Line = Line;
    PendingStaticFields.push_back({S, First, FieldName, here()});
    return;
  }

  // Everything else: ID = <rhs> ;
  if (peek().Kind != TokKind::Eq) {
    error("expected statement, found '" + cur().Text + "'");
    syncToStmtEnd();
    return;
  }
  VarId To = lookupVar(First);
  advance();
  advance();
  if (To == InvalidId) {
    syncToStmtEnd();
    return;
  }

  // x = new Type ;  or  x = new Type[] ;
  if (atIdent("new")) {
    advance();
    TypeId T = parseType(/*AllowVoid=*/false);
    expect(TokKind::Semi, "';'");
    if (T == InvalidId)
      return;
    StmtId S;
    // parseType already folded "[]" suffixes into an array type.
    if (P.type(T).Kind == TypeKind::Array)
      S = MB.newArray(To, T);
    else
      S = MB.newObj(To, T);
    P.stmtMut(S).Line = Line;
    return;
  }

  // x = ( Type ) y ;
  if (at(TokKind::LParen)) {
    advance();
    TypeId T = parseType(/*AllowVoid=*/false);
    expect(TokKind::RParen, "')'");
    std::string SrcName = expectIdent("source variable");
    expect(TokKind::Semi, "';'");
    VarId From = SrcName.empty() ? InvalidId : lookupVar(SrcName);
    if (T == InvalidId || From == InvalidId)
      return;
    StmtId S = MB.cast(To, T, From);
    P.stmtMut(S).Line = Line;
    return;
  }

  // x = call/scall/dcall ...
  if (atIdent("call") || atIdent("scall") || atIdent("dcall")) {
    std::string Kind = cur().Text;
    advance();
    std::string A = expectIdent("name");
    expect(TokKind::Dot, "'.'");
    std::string B = expectIdent("name");
    std::string C;
    if (Kind == "dcall") {
      expect(TokKind::Dot, "'.'");
      C = expectIdent("method name");
    }
    std::vector<VarId> Args = parseArgs();
    expect(TokKind::Semi, "';'");
    StmtId S;
    if (Kind == "call") {
      VarId Base = lookupVar(A);
      if (Base == InvalidId)
        return;
      S = MB.callVirtual(To, Base, B, std::move(Args));
    } else if (Kind == "scall") {
      size_t N = Args.size();
      S = MB.callStatic(To, InvalidId, std::move(Args));
      PendingCalls.push_back({S, A, B, N, false, here()});
    } else {
      VarId Base = lookupVar(A);
      if (Base == InvalidId)
        return;
      size_t N = Args.size();
      S = MB.callSpecial(To, Base, InvalidId, std::move(Args));
      PendingCalls.push_back({S, B, C, N, true, here()});
    }
    P.stmtMut(S).Line = Line;
    return;
  }

  // x = y ... (assign, load, array load, static load)
  std::string SrcName = expectIdent("source");
  if (SrcName.empty()) {
    syncToStmtEnd();
    return;
  }

  if (at(TokKind::Dot)) {
    advance();
    std::string FieldName = expectIdent("field name");
    expect(TokKind::Semi, "';'");
    VarId Base = lookupVar(SrcName);
    if (Base == InvalidId)
      return;
    StmtId S = MB.load(To, Base, InvalidId);
    P.stmtMut(S).Line = Line;
    PendingFields.push_back({S, FieldName, here()});
    return;
  }
  if (at(TokKind::LBracket)) {
    advance();
    expect(TokKind::Star, "'*'");
    expect(TokKind::RBracket, "']'");
    expect(TokKind::Semi, "';'");
    VarId Base = lookupVar(SrcName);
    if (Base == InvalidId)
      return;
    StmtId S = MB.arrayLoad(To, Base);
    P.stmtMut(S).Line = Line;
    return;
  }
  if (at(TokKind::ColonColon)) {
    advance();
    std::string FieldName = expectIdent("field name");
    expect(TokKind::Semi, "';'");
    StmtId S = MB.staticLoad(To, InvalidId);
    P.stmtMut(S).Line = Line;
    PendingStaticFields.push_back({S, SrcName, FieldName, here()});
    return;
  }
  expect(TokKind::Semi, "';'");
  VarId From = lookupVar(SrcName);
  if (From == InvalidId)
    return;
  StmtId S = MB.assign(To, From);
  P.stmtMut(S).Line = Line;
}

bool Parser::finalize() {
  size_t DiagsBefore = Diags.size();

  // Forward references that never materialized.
  for (TypeId T = 0; T < P.numTypes(); ++T)
    if (!P.type(T).Defined)
      Diags.push_back("error: type '" + P.type(T).Name +
                      "' referenced but never defined");

  // Instance field accesses: resolve via the base variable's declared type.
  for (const PendingField &PF : PendingFields) {
    Stmt &S = P.stmtMut(PF.S);
    VarId Base = S.Kind == StmtKind::Load ? S.Base : S.Base;
    TypeId BT = P.var(Base).DeclaredType;
    FieldId F = P.resolveField(BT, PF.Name);
    if (F == InvalidId) {
      Diags.push_back(PF.Where + ": error: type '" + P.type(BT).Name +
                      "' has no field '" + PF.Name + "'");
      continue;
    }
    if (P.field(F).IsStatic) {
      Diags.push_back(PF.Where + ": error: field '" + PF.Name +
                      "' is static; use '::'");
      continue;
    }
    S.Field = F;
  }
  PendingFields.clear();

  // Static and special calls.
  for (const PendingCall &PC : PendingCalls) {
    TypeId T = P.typeByName(PC.ClassName);
    if (T == InvalidId || !P.type(T).Defined) {
      Diags.push_back(PC.Where + ": error: unknown class '" + PC.ClassName +
                      "'");
      continue;
    }
    MethodId M = P.lookupMethod(T, PC.Name, PC.Arity);
    if (M == InvalidId) {
      Diags.push_back(PC.Where + ": error: class '" + PC.ClassName +
                      "' has no method '" + PC.Name + "/" +
                      std::to_string(PC.Arity) + "'");
      continue;
    }
    const MethodInfo &MI = P.method(M);
    if (PC.IsSpecial && MI.IsStatic) {
      Diags.push_back(PC.Where + ": error: 'dcall' target '" + PC.Name +
                      "' is static");
      continue;
    }
    if (!PC.IsSpecial && !MI.IsStatic) {
      Diags.push_back(PC.Where + ": error: 'scall' target '" + PC.Name +
                      "' is not static");
      continue;
    }
    if (MI.IsAbstract) {
      Diags.push_back(PC.Where + ": error: direct call to abstract method '" +
                      PC.Name + "'");
      continue;
    }
    P.stmtMut(PC.S).DirectCallee = M;
  }
  PendingCalls.clear();

  // Static field references.
  for (const PendingStaticField &PSF : PendingStaticFields) {
    TypeId T = P.typeByName(PSF.ClassName);
    if (T == InvalidId || !P.type(T).Defined) {
      Diags.push_back(PSF.Where + ": error: unknown class '" +
                      PSF.ClassName + "'");
      continue;
    }
    FieldId F = P.resolveField(T, PSF.Name);
    if (F == InvalidId || !P.field(F).IsStatic) {
      Diags.push_back(PSF.Where + ": error: class '" + PSF.ClassName +
                      "' has no static field '" + PSF.Name + "'");
      continue;
    }
    P.stmtMut(PSF.S).Field = F;
  }
  PendingStaticFields.clear();

  // Entry point: the unique static `main()` if present.
  if (P.entry() == InvalidId) {
    MethodId Main = InvalidId;
    for (MethodId M = 0; M < P.numMethods(); ++M) {
      const MethodInfo &MI = P.method(M);
      if (MI.IsStatic && MI.Name == "main" && MI.ParamTypes.empty()) {
        if (Main != InvalidId) {
          Diags.push_back("error: multiple static main() methods");
          break;
        }
        Main = M;
      }
    }
    if (Main != InvalidId)
      P.setEntry(Main);
  }

  return Diags.size() == DiagsBefore;
}

bool csc::parseProgram(
    Program &P,
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    std::vector<std::string> &Diags) {
  Parser Psr(P);
  bool Ok = true;
  for (const auto &[Name, Source] : NamedSources)
    Ok = Psr.parseSource(Source, Name) && Ok;
  Ok = Psr.finalize() && Ok;
  Diags.insert(Diags.end(), Psr.diagnostics().begin(),
               Psr.diagnostics().end());
  return Ok;
}
