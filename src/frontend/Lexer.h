//===- Lexer.h - Tokenizer for the .jir textual IR --------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer for the `.jir` syntax. Produces the whole token
/// stream up front (the grammar is small and files are modest), which keeps
/// the parser's lookahead trivial.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_FRONTEND_LEXER_H
#define CSC_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace csc {

enum class TokKind : uint8_t {
  Ident,      // identifiers and keywords (parser distinguishes)
  LBrace,     // {
  RBrace,     // }
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  Comma,      // ,
  Semi,       // ;
  Colon,      // :
  ColonColon, // ::
  Dot,        // .
  Eq,         // =
  Question,   // ?
  Star,       // *
  Eof,
  Error,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// Tokenizes \p Source. Lexical errors become TokKind::Error tokens whose
/// Text holds the message; the stream always ends with an Eof token.
std::vector<Token> lex(const std::string &Source);

} // namespace csc

#endif // CSC_FRONTEND_LEXER_H
