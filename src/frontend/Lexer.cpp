//===- Lexer.cpp - Tokenizer for the .jir textual IR ----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

using namespace csc;

static bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
         C == '$' || C == '<' || C == '>';
}

static bool isIdentChar(char C) {
  return isIdentStart(C) || (C >= '0' && C <= '9');
}

std::vector<Token> csc::lex(const std::string &Source) {
  std::vector<Token> Toks;
  uint32_t Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto push = [&](TokKind K, std::string Text, uint32_t L, uint32_t C) {
    Toks.push_back({K, std::move(Text), L, C});
  };

  while (I < N) {
    char C = Source[I];
    uint32_t TokLine = Line, TokCol = Col;

    // Whitespace.
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      ++Col;
      continue;
    }
    if (C == '\n') {
      ++I;
      ++Line;
      Col = 1;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      Col += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n') {
          ++Line;
          Col = 1;
        } else {
          ++Col;
        }
        ++I;
      }
      if (I + 1 < N) {
        I += 2;
        Col += 2;
      } else {
        push(TokKind::Error, "unterminated block comment", TokLine, TokCol);
        I = N;
      }
      continue;
    }

    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < N && isIdentChar(Source[I])) {
        ++I;
        ++Col;
      }
      push(TokKind::Ident, Source.substr(Start, I - Start), TokLine, TokCol);
      continue;
    }

    auto single = [&](TokKind K) {
      push(K, std::string(1, C), TokLine, TokCol);
      ++I;
      ++Col;
    };

    switch (C) {
    case '{':
      single(TokKind::LBrace);
      break;
    case '}':
      single(TokKind::RBrace);
      break;
    case '(':
      single(TokKind::LParen);
      break;
    case ')':
      single(TokKind::RParen);
      break;
    case '[':
      single(TokKind::LBracket);
      break;
    case ']':
      single(TokKind::RBracket);
      break;
    case ',':
      single(TokKind::Comma);
      break;
    case ';':
      single(TokKind::Semi);
      break;
    case '.':
      single(TokKind::Dot);
      break;
    case '=':
      single(TokKind::Eq);
      break;
    case '?':
      single(TokKind::Question);
      break;
    case '*':
      single(TokKind::Star);
      break;
    case ':':
      if (I + 1 < N && Source[I + 1] == ':') {
        push(TokKind::ColonColon, "::", TokLine, TokCol);
        I += 2;
        Col += 2;
      } else {
        single(TokKind::Colon);
      }
      break;
    default:
      push(TokKind::Error, std::string("unexpected character '") + C + "'",
           TokLine, TokCol);
      ++I;
      ++Col;
      break;
    }
  }

  push(TokKind::Eof, "", Line, Col);
  return Toks;
}
