//===- Parser.h - Recursive-descent parser for .jir -------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses `.jir` sources into a Program. Multiple sources may be parsed
/// into the same program (the modelled standard library first, then user
/// code); cross-source references are resolved by finalize().
///
/// Grammar sketch:
/// \code
///   program   := (classDecl | extendDecl)*
///   classDecl := ["abstract"] "class" ID ["extends" ID]
///                  ["implements" ID ("," ID)*] "{" member* "}"
///              | "interface" ID ["extends" ID ("," ID)*] "{" sig* "}"
///   member    := ["static"] "field" ID ":" type ";"
///              | ["static"] ["abstract"] "method" ID "(" params? ")"
///                  ":" type (block | ";")
///   type      := ID ("[]")*              -- "void" only as return type
///   stmt      := "var" ID ":" type ";"
///              | ID "=" "new" type ";"
///              | ID "=" "(" type ")" ID ";"
///              | ID "=" ID ";"
///              | ID "=" ID "." ID ";"        | ID "." ID "=" ID ";"
///              | ID "=" ID "[" "*" "]" ";"   | ID "[" "*" "]" "=" ID ";"
///              | ID "=" ID "::" ID ";"       | ID "::" ID "=" ID ";"
///              | [ID "="] "call"  ID "." ID "(" args? ")" ";"
///              | [ID "="] "scall" ID "." ID "(" args? ")" ";"
///              | [ID "="] "dcall" ID "." ID "." ID "(" args? ")" ";"
///              | "return" [ID] ";"
///              | "if" "?" block ["else" block]
///
///   -- Delta form (analysis server add-delta; also valid in any source
///   -- parsed after the class's definition):
///   extendDecl := "extend" "class" ID "{" extendMember* "}"
///   extendMember := member
///                 | "append" "method" ID block
/// \endcode
///
/// `extend class` reopens an already-defined class to add fields and
/// methods; `append method` appends statements to the body of the named
/// (non-overloaded, concrete) method, with the method's existing locals
/// back in scope. A delta source parsed after the base sources produces
/// exactly the entity ids a from-scratch parse of the concatenation
/// would — the property the incremental solver's equivalence contract
/// rests on.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_FRONTEND_PARSER_H
#define CSC_FRONTEND_PARSER_H

#include "frontend/Lexer.h"
#include "ir/IRBuilder.h"
#include "ir/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace csc {

/// Builds IR from `.jir` text. Collects diagnostics instead of throwing.
class Parser {
public:
  explicit Parser(Program &P) : P(P) {}

  /// Parses one source buffer; returns false if any diagnostic was emitted.
  bool parseSource(const std::string &Source, const std::string &FileName);

  /// Resolves deferred references (fields, static/special callees, entry
  /// point). Must be called once after all sources are parsed.
  bool finalize();

  const std::vector<std::string> &diagnostics() const { return Diags; }

private:
  // Token stream helpers.
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t N = 1) const {
    size_t I = Pos + N;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atIdent(const char *KW) const {
    return cur().Kind == TokKind::Ident && cur().Text == KW;
  }
  bool accept(TokKind K);
  bool acceptIdent(const char *KW);
  bool expect(TokKind K, const char *What);
  std::string expectIdent(const char *What);
  void error(const std::string &Msg);
  void errorAt(uint32_t Line, const std::string &Msg);
  void syncToStmtEnd();

  // Grammar productions.
  void parseClassDecl();
  void parseExtendDecl();
  void parseAppendMethod(TypeId T);
  void skipBracedBlock();
  void parseInterfaceBody(TypeId T);
  void parseClassBody(TypeId T);
  void parseFieldDecl(TypeId T, bool IsStatic);
  void parseMethodDecl(TypeId T, bool IsStatic, bool IsAbstract);
  TypeId parseType(bool AllowVoid);
  void parseBlock(MethodBuilder &MB);
  void parseStmt(MethodBuilder &MB);
  std::vector<VarId> parseArgs();
  VarId lookupVar(const std::string &Name);

  // Deferred resolutions.
  struct PendingField {
    StmtId S;
    std::string Name;
    std::string Where;
  };
  struct PendingCall {
    StmtId S;
    std::string ClassName;
    std::string Name;
    size_t Arity;
    bool IsSpecial;
    std::string Where;
  };
  struct PendingStaticField {
    StmtId S;
    std::string ClassName;
    std::string Name;
    std::string Where;
  };

  std::string here() const;

  Program &P;
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string File;
  std::vector<std::string> Diags;
  size_t DiagsAtSourceStart = 0;

  std::unordered_map<std::string, VarId> Scope; ///< Current method scope.
  std::vector<PendingField> PendingFields;
  std::vector<PendingCall> PendingCalls;
  std::vector<PendingStaticField> PendingStaticFields;
};

/// Convenience: parse sources in order into \p P and finalize.
/// Appends diagnostics to \p Diags; returns true on success.
bool parseProgram(Program &P,
                  const std::vector<std::pair<std::string, std::string>>
                      &NamedSources,
                  std::vector<std::string> &Diags);

} // namespace csc

#endif // CSC_FRONTEND_PARSER_H
