//===- Zipper.h - Selective context sensitivity (Zipper-e) ------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation, in spirit, of Zipper-e [Li et al. 2020a], the
/// state-of-the-art selective context-sensitivity baseline the paper
/// compares against (§5.3). Zipper-e consists of:
///
///  1. a context-insensitive pre-analysis,
///  2. a selection phase that finds "precision-critical" classes — classes
///     exhibiting IN→OUT object flows through their methods (direct
///     parameter-to-return flow, wrapped flow through a field store, or
///     unwrapped flow through a field load) — and selects their methods,
///  3. an efficiency guard that unselects classes whose estimated
///     context-sensitive cost threatens scalability,
///  4. a main analysis applying k-object sensitivity only to the selected
///     methods.
///
/// The exact flow-graph construction of the original differs in detail;
/// this version preserves the architecture (pre-analysis → per-class
/// IN/OUT flow detection → cost guard → selective main analysis) and the
/// efficiency/precision trade-off position the paper reports: more
/// precise than CI, cheaper than 2obj, slower than Cut-Shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_ZIPPER_ZIPPER_H
#define CSC_ZIPPER_ZIPPER_H

#include "ir/Program.h"
#include "pta/PTAResult.h"

#include <unordered_set>

namespace csc {

struct ZipperOptions {
  /// k for the object-sensitive main analysis of selected methods.
  unsigned K = 2;
  /// Classes whose estimated cost exceeds this fraction of the whole
  /// program's points-to volume are unselected (the "e" in Zipper-e).
  double CostFraction = 0.5;
  /// Classes below this absolute cost are never unselected; keeps the
  /// guard from firing on small programs where every class is a large
  /// fraction of a tiny total.
  uint64_t MinCostFloor = 10000;
  /// Budgets forwarded to the pre-analysis.
  uint64_t PreWorkBudget = ~0ULL;
};

struct ZipperSelection {
  std::unordered_set<MethodId> Selected;
  double PreAnalysisMs = 0; ///< CI pre-analysis + selection time.
  bool PreExhausted = false;
  uint32_t CriticalClasses = 0;
  uint32_t UnselectedByCostGuard = 0;
};

/// Runs the pre-analysis and computes the method selection.
ZipperSelection runZipperSelection(const Program &P,
                                   const ZipperOptions &Opts = {});

} // namespace csc

#endif // CSC_ZIPPER_ZIPPER_H
