//===- Zipper.cpp - Selective context sensitivity (Zipper-e) --------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "zipper/Zipper.h"

#include "pta/Solver.h"
#include "support/Timer.h"

#include <algorithm>
#include <unordered_map>

using namespace csc;

namespace {

/// Intraprocedural value-flow facts for one method: which variables carry
/// parameter values forward (param-flow) and which reach a return variable
/// backward (return-flow), both through local assignments.
struct MethodFlows {
  std::unordered_set<VarId> FromParam;
  std::unordered_set<VarId> ToReturn;
};

MethodFlows computeMethodFlows(const Program &P, MethodId M) {
  MethodFlows F;
  const MethodInfo &MI = P.method(M);
  for (VarId V : MI.Params)
    F.FromParam.insert(V);
  for (VarId V : MI.RetVars)
    F.ToReturn.insert(V);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (StmtId S : MI.AllStmts) {
      const Stmt &St = P.stmt(S);
      switch (St.Kind) {
      case StmtKind::Assign:
      case StmtKind::Cast:
        if (F.FromParam.count(St.From) && F.FromParam.insert(St.To).second)
          Changed = true;
        if (F.ToReturn.count(St.To) && F.ToReturn.insert(St.From).second)
          Changed = true;
        break;
      case StmtKind::Load:
      case StmtKind::ArrayLoad:
        // Objects reachable from parameters: loading through a
        // param-flow base yields param-flow values (Zipper's object flow
        // graph follows such heap hops).
        if (F.FromParam.count(St.Base) && F.FromParam.insert(St.To).second)
          Changed = true;
        break;
      default:
        break;
      }
    }
  }
  return F;
}

/// True if method M exhibits an IN→OUT flow: direct (param reaches
/// return), wrapped (param value stored into a field of a param object),
/// or unwrapped (a field of a param object loaded into a return).
bool hasInOutFlow(const Program &P, MethodId M) {
  const MethodInfo &MI = P.method(M);
  if (MI.AllStmts.empty())
    return false;
  MethodFlows F = computeMethodFlows(P, M);
  // Direct flow.
  for (VarId RV : MI.RetVars)
    if (F.FromParam.count(RV))
      return true;
  for (StmtId S : MI.AllStmts) {
    const Stmt &St = P.stmt(S);
    // Wrapped flow: param value flows into a field (or array slot) of a
    // param-reachable object.
    if ((St.Kind == StmtKind::Store || St.Kind == StmtKind::ArrayStore) &&
        F.FromParam.count(St.Base) && F.FromParam.count(St.From))
      return true;
    // Unwrapped flow: field (or array slot) of a param-reachable object
    // flows to the return.
    if ((St.Kind == StmtKind::Load || St.Kind == StmtKind::ArrayLoad) &&
        F.FromParam.count(St.Base) && F.ToReturn.count(St.To))
      return true;
    // Calls relaying params whose result reaches the return behave like
    // direct flows once callees are inlined; treat conservatively.
    if (St.Kind == StmtKind::Invoke && St.To != InvalidId &&
        F.ToReturn.count(St.To)) {
      for (size_t K = 0, E = P.numCallArgs(St); K != E; ++K) {
        VarId A = P.callArg(St, K);
        if (A != InvalidId && F.FromParam.count(A))
          return true;
      }
    }
  }
  return false;
}

} // namespace

ZipperSelection csc::runZipperSelection(const Program &P,
                                        const ZipperOptions &Opts) {
  Timer Clock;
  ZipperSelection Sel;

  // Phase 1: context-insensitive pre-analysis.
  SolverOptions PreOpts;
  PreOpts.WorkBudget = Opts.PreWorkBudget;
  Solver Pre(P, PreOpts);
  PTAResult PreR = Pre.solve();
  Sel.PreExhausted = PreR.Exhausted;

  // Phase 2: per-class IN→OUT flow detection over reachable methods.
  std::unordered_set<TypeId> CriticalClasses;
  for (MethodId M : PreR.reachableMethods())
    if (hasInOutFlow(P, M))
      CriticalClasses.insert(P.method(M).Owner);
  Sel.CriticalClasses = static_cast<uint32_t>(CriticalClasses.size());

  // Phase 3: efficiency guard. Estimate the context-sensitive cost of a
  // class as the points-to volume accumulated in its methods during the
  // pre-analysis; classes above the CostFraction of the program total are
  // scalability threats and stay context-insensitive.
  std::unordered_map<TypeId, uint64_t> ClassCost;
  uint64_t TotalCost = 0;
  for (MethodId M : PreR.reachableMethods()) {
    uint64_t Cost = 0;
    for (VarId V : P.method(M).Vars)
      Cost += PreR.pt(V).size();
    ClassCost[P.method(M).Owner] += Cost;
    TotalCost += Cost;
  }
  uint64_t Threshold = std::max(
      Opts.MinCostFloor,
      static_cast<uint64_t>(Opts.CostFraction *
                            static_cast<double>(TotalCost)));

  for (TypeId C : CriticalClasses) {
    if (ClassCost[C] > Threshold) {
      ++Sel.UnselectedByCostGuard;
      continue;
    }
    for (MethodId M : P.type(C).Methods)
      if (!P.method(M).IsAbstract)
        Sel.Selected.insert(M);
  }

  Sel.PreAnalysisMs = Clock.elapsedMs();
  return Sel;
}
