//===- Interpreter.cpp - Concrete IR interpreter --------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/Rng.h"

#include <cassert>
#include <vector>

using namespace csc;

void DynamicFacts::merge(const DynamicFacts &Other) {
  ReachedMethods.insert(Other.ReachedMethods.begin(),
                        Other.ReachedMethods.end());
  CallEdges.insert(Other.CallEdges.begin(), Other.CallEdges.end());
  for (const auto &[V, Objs] : Other.VarPointsTo)
    VarPointsTo[V].insert(Objs.begin(), Objs.end());
  for (const auto &[K, Objs] : Other.FieldPointsTo)
    FieldPointsTo[K].insert(Objs.begin(), Objs.end());
  for (const auto &[K, Objs] : Other.ArrayPointsTo)
    ArrayPointsTo[K].insert(Objs.begin(), Objs.end());
  for (const auto &[K, Objs] : Other.StaticPointsTo)
    StaticPointsTo[K].insert(Objs.begin(), Objs.end());
  FailedCasts.insert(Other.FailedCasts.begin(), Other.FailedCasts.end());
  Steps += Other.Steps;
  Truncated = Truncated || Other.Truncated;
}

namespace {

/// References are 1-based heap indices; 0 is null.
using Ref = uint32_t;
constexpr Ref Null = 0;

struct HeapObj {
  ObjId Alloc = InvalidId;
  TypeId Type = InvalidId;
  std::unordered_map<FieldId, Ref> Fields;
  std::vector<Ref> Elems; ///< Array storage.
};

class Interp {
public:
  Interp(const Program &P, const InterpOptions &Opts)
      : P(P), Opts(Opts), R(Opts.Seed) {}

  DynamicFacts run() {
    if (P.entry() != InvalidId)
      callMethod(P.entry(), Null, {}, 0);
    return std::move(Facts);
  }

private:
  struct Frame {
    std::unordered_map<VarId, Ref> Locals;
    Ref RetVal = Null;
    bool Returned = false;
  };

  Ref allocate(const Stmt &S) {
    HeapObj O;
    O.Alloc = S.Obj;
    O.Type = S.Type;
    Heap.push_back(std::move(O));
    return static_cast<Ref>(Heap.size()); // 1-based.
  }

  HeapObj &deref(Ref R) {
    assert(R != Null && "null dereference");
    return Heap[R - 1];
  }

  void setVar(Frame &F, VarId V, Ref Val) {
    F.Locals[V] = Val;
    if (Val != Null)
      Facts.VarPointsTo[V].insert(deref(Val).Alloc);
  }

  Ref getVar(Frame &F, VarId V) const {
    auto It = F.Locals.find(V);
    return It == F.Locals.end() ? Null : It->second;
  }

  bool budgetExceeded() {
    if (++Facts.Steps > Opts.MaxSteps) {
      Facts.Truncated = true;
      return true;
    }
    return false;
  }

  /// Returns the callee's return value (Null for void / skipped calls).
  Ref callMethod(MethodId M, Ref This, const std::vector<Ref> &Args,
                 uint32_t Depth) {
    if (Depth > Opts.MaxDepth) {
      Facts.Truncated = true;
      return Null;
    }
    Facts.ReachedMethods.insert(M);
    const MethodInfo &MI = P.method(M);
    Frame F;
    size_t FirstParam = 0;
    if (!MI.IsStatic) {
      setVar(F, MI.Params[0], This);
      FirstParam = 1;
    }
    for (size_t I = 0; I + FirstParam < MI.Params.size(); ++I)
      setVar(F, MI.Params[FirstParam + I], I < Args.size() ? Args[I] : Null);
    execBlock(F, MI.Body, Depth);
    return F.RetVal;
  }

  void execBlock(Frame &F, const std::vector<StmtId> &Body, uint32_t Depth) {
    for (StmtId S : Body) {
      if (F.Returned || Facts.Truncated)
        return;
      execStmt(F, S, Depth);
    }
  }

  void execStmt(Frame &F, StmtId SId, uint32_t Depth) {
    if (budgetExceeded())
      return;
    const Stmt &S = P.stmt(SId);
    switch (S.Kind) {
    case StmtKind::New:
    case StmtKind::NewArray:
      setVar(F, S.To, allocate(S));
      break;
    case StmtKind::Assign:
      setVar(F, S.To, getVar(F, S.From));
      break;
    case StmtKind::Cast: {
      Ref V = getVar(F, S.From);
      if (V != Null && !P.isSubtype(deref(V).Type, S.Type)) {
        // ClassCastException: record and leave the target unassigned.
        Facts.FailedCasts.insert(SId);
        break;
      }
      setVar(F, S.To, V);
      break;
    }
    case StmtKind::Load: {
      Ref Base = getVar(F, S.Base);
      if (Base == Null)
        break; // NPE path: no facts to record.
      auto It = deref(Base).Fields.find(S.Field);
      setVar(F, S.To, It == deref(Base).Fields.end() ? Null : It->second);
      break;
    }
    case StmtKind::Store: {
      Ref Base = getVar(F, S.Base);
      Ref Val = getVar(F, S.From);
      if (Base == Null)
        break;
      deref(Base).Fields[S.Field] = Val;
      if (Val != Null)
        Facts.FieldPointsTo[packPair(deref(Base).Alloc, S.Field)].insert(
            deref(Val).Alloc);
      break;
    }
    case StmtKind::ArrayLoad: {
      Ref Base = getVar(F, S.Base);
      if (Base == Null || deref(Base).Elems.empty())
        break;
      // Index-free IR: read a random element.
      Ref V = deref(Base).Elems[R.nextInRange(
          static_cast<uint32_t>(deref(Base).Elems.size()))];
      setVar(F, S.To, V);
      break;
    }
    case StmtKind::ArrayStore: {
      Ref Base = getVar(F, S.Base);
      Ref Val = getVar(F, S.From);
      if (Base == Null || Val == Null)
        break;
      deref(Base).Elems.push_back(Val);
      Facts.ArrayPointsTo[deref(Base).Alloc].insert(deref(Val).Alloc);
      break;
    }
    case StmtKind::StaticLoad:
      setVar(F, S.To, Statics.count(S.Field) ? Statics[S.Field] : Null);
      break;
    case StmtKind::StaticStore: {
      Ref Val = getVar(F, S.From);
      Statics[S.Field] = Val;
      if (Val != Null)
        Facts.StaticPointsTo[S.Field].insert(deref(Val).Alloc);
      break;
    }
    case StmtKind::Invoke: {
      MethodId Callee = InvalidId;
      Ref This = Null;
      if (S.IKind == InvokeKind::Static) {
        Callee = S.DirectCallee;
      } else {
        This = getVar(F, S.Base);
        if (This == Null)
          break; // NPE path.
        Callee = S.IKind == InvokeKind::Virtual
                     ? P.dispatch(deref(This).Type, S.Subsig)
                     : S.DirectCallee;
        if (Callee == InvalidId)
          break;
      }
      Facts.CallEdges.insert(packPair(S.CallSite, Callee));
      std::vector<Ref> Args;
      Args.reserve(S.Args.size());
      for (VarId A : S.Args)
        Args.push_back(getVar(F, A));
      Ref Result = callMethod(Callee, This, Args, Depth + 1);
      if (S.To != InvalidId)
        setVar(F, S.To, Result);
      break;
    }
    case StmtKind::Return:
      if (S.From != InvalidId)
        F.RetVal = getVar(F, S.From);
      F.Returned = true;
      break;
    case StmtKind::If:
      if (R.nextBool())
        execBlock(F, S.ThenBody, Depth);
      else
        execBlock(F, S.ElseBody, Depth);
      break;
    }
  }

  const Program &P;
  InterpOptions Opts;
  Rng R;
  DynamicFacts Facts;
  std::vector<HeapObj> Heap;
  std::unordered_map<FieldId, Ref> Statics;
};

} // namespace

DynamicFacts csc::interpret(const Program &P, const InterpOptions &Opts) {
  return Interp(P, Opts).run();
}

DynamicFacts csc::interpretManySeeds(const Program &P, unsigned NumSeeds,
                                     const InterpOptions &Base) {
  DynamicFacts All;
  for (unsigned I = 1; I <= NumSeeds; ++I) {
    InterpOptions O = Base;
    O.Seed = I;
    All.merge(interpret(P, O));
  }
  return All;
}
