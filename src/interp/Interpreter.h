//===- Interpreter.h - Concrete IR interpreter ------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter of the IR, standing in for the instrumented JVM
/// runs of the paper's recall experiment (§5.1): it executes the program
/// (resolving `if ?` branches with a seeded RNG) and records the methods
/// reached, call edges taken, concrete points-to facts, and casts that
/// actually failed. Every sound static analysis must over-approximate
/// these facts — the property the recall bench and tests check.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_INTERP_INTERPRETER_H
#define CSC_INTERP_INTERPRETER_H

#include "ir/Program.h"
#include "support/Hash.h"

#include <unordered_map>
#include <unordered_set>

namespace csc {

struct InterpOptions {
  uint64_t Seed = 1;
  uint64_t MaxSteps = 1000000;
  uint32_t MaxDepth = 256;
};

/// Under-approximate ground truth from one execution.
struct DynamicFacts {
  std::unordered_set<MethodId> ReachedMethods;
  /// (CallSiteId << 32 | MethodId) pairs.
  std::unordered_set<uint64_t> CallEdges;
  std::unordered_map<VarId, std::unordered_set<ObjId>> VarPointsTo;
  /// (base allocation site << 32 | FieldId) -> pointed-to allocation sites.
  std::unordered_map<uint64_t, std::unordered_set<ObjId>> FieldPointsTo;
  std::unordered_map<ObjId, std::unordered_set<ObjId>> ArrayPointsTo;
  std::unordered_map<FieldId, std::unordered_set<ObjId>> StaticPointsTo;
  /// Cast statements that threw at run time.
  std::unordered_set<StmtId> FailedCasts;
  uint64_t Steps = 0;
  bool Truncated = false; ///< Step/depth budget was hit.

  bool hasCallEdge(CallSiteId CS, MethodId M) const {
    return CallEdges.count(packPair(CS, M)) != 0;
  }

  /// Merges the facts of another run (multi-seed recall experiments).
  void merge(const DynamicFacts &Other);
};

/// Executes the program from its entry point.
DynamicFacts interpret(const Program &P, const InterpOptions &Opts = {});

/// Convenience: merged facts over seeds 1..NumSeeds.
DynamicFacts interpretManySeeds(const Program &P, unsigned NumSeeds,
                                const InterpOptions &Base = {});

} // namespace csc

#endif // CSC_INTERP_INTERPRETER_H
