//===- AnalysisServer.cpp - Long-lived NDJSON analysis service ------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/AnalysisServer.h"

#include "client/BatchExecutor.h"
#include "client/Report.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "stdlib/Stdlib.h"
#include "store/ResultStore.h"
#include "support/Json.h"

#include <cassert>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

using namespace csc;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

namespace {

/// Name-based lookups over the program alone (ResultView needs a result;
/// demand queries resolve names before any solving happens). Semantics
/// match ResultView::findMethod / findVar exactly.
MethodId findMethodByName(const Program &P, std::string_view Qualified) {
  size_t Dot = Qualified.rfind('.');
  if (Dot == std::string_view::npos)
    return InvalidId;
  TypeId T = P.typeByName(std::string(Qualified.substr(0, Dot)));
  if (T == InvalidId)
    return InvalidId;
  std::string_view Name = Qualified.substr(Dot + 1);
  for (MethodId M : P.type(T).Methods)
    if (P.method(M).Name == Name)
      return M;
  return InvalidId;
}

VarId findVarByName(const Program &P, std::string_view Qualified) {
  size_t Dot = Qualified.rfind('.');
  if (Dot == std::string_view::npos)
    return InvalidId;
  MethodId M = findMethodByName(P, Qualified.substr(0, Dot));
  if (M == InvalidId)
    return InvalidId;
  std::string_view Name = Qualified.substr(Dot + 1);
  for (VarId V : P.method(M).Vars)
    if (P.var(V).Name == Name)
      return V;
  return InvalidId;
}

std::string errorResponse(const std::string &Msg) {
  JsonWriter W;
  W.beginObject().kv("ok", false).kv("error", Msg).endObject();
  return W.take();
}

/// Fetches a required string member; null with a pinned diagnostic.
const std::string *stringField(const JsonValue &Req, const char *Key,
                               std::string &Error) {
  const JsonValue *V = Req.get(Key);
  if (!V || !V->isString()) {
    Error = std::string("missing or non-string '") + Key + "'";
    return nullptr;
  }
  return &V->Str;
}

void writeObjects(JsonWriter &W, const Program &P, const PointsToSet &Pts) {
  W.key("objects").beginArray();
  Pts.forEach([&](ObjId O) {
    W.beginObject()
        .kv("obj", O)
        .kv("type", P.type(P.obj(O).Type).Name)
        .endObject();
  });
  W.endArray();
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction / loading
//===----------------------------------------------------------------------===//

AnalysisServer::AnalysisServer() : AnalysisServer(Options()) {}
AnalysisServer::AnalysisServer(Options O) : Opts(std::move(O)) {}
AnalysisServer::~AnalysisServer() = default;

const AnalysisRegistry &AnalysisServer::registry() const {
  return Opts.Registry ? *Opts.Registry : AnalysisRegistry::global();
}

bool AnalysisServer::load(
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    std::vector<std::string> &Diags) {
  auto NewProg = std::make_unique<Program>();
  std::vector<std::pair<std::string, std::string>> All;
  if (Opts.WithStdlib)
    All.emplace_back("<stdlib>", stdlibSource());
  All.insert(All.end(), NamedSources.begin(), NamedSources.end());
  if (!parseProgram(*NewProg, All, Diags))
    return false;
  std::vector<std::string> Errors = verifyProgram(*NewProg);
  for (const std::string &E : Errors)
    Diags.push_back("verifier: " + E);
  if (!Errors.empty())
    return false;
  if (NewProg->entry() == InvalidId) {
    Diags.push_back("error: no static main() entry point");
    return false;
  }
  Prog = std::move(NewProg);
  Slicer = std::make_unique<DemandSlicer>(*Prog);
  Specs.clear();
  Version = 1;
  Deltas = 0;
  return true;
}

bool AnalysisServer::loadFiles(const std::vector<std::string> &Paths,
                               std::vector<std::string> &Diags) {
  std::vector<std::pair<std::string, std::string>> Named;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      Diags.push_back("error: cannot open '" + Path + "'");
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Named.emplace_back(Path, Buf.str());
  }
  if (Named.empty()) {
    Diags.push_back("error: no input files");
    return false;
  }
  return load(Named, Diags);
}

//===----------------------------------------------------------------------===//
// Per-spec resident state
//===----------------------------------------------------------------------===//

AnalysisServer::SpecState *
AnalysisServer::specState(const std::string &SpecText, std::string &Error) {
  AnalysisSpec Spec;
  if (!parseAnalysisSpec(SpecText, Spec, Error))
    return nullptr;
  Spec.Name = registry().resolveName(Spec.Name);
  std::string Key = canonicalSpec(Spec);
  auto It = Specs.find(Key);
  if (It != Specs.end())
    return &It->second;

  SpecState St;
  St.StoreCanon = Key;
  if (!registry().build(Spec, St.Recipe, Error))
    return nullptr;
  if (IncrementalSolver::eligible(St.Recipe)) {
    IncrementalSolver::Options IOpts;
    IOpts.WorkBudget = Opts.WorkBudget;
    IOpts.TimeBudgetMs = Opts.TimeBudgetMs;
    St.Inc = std::make_unique<IncrementalSolver>(*Prog, St.Recipe, IOpts);
  }
  return &Specs.emplace(std::move(Key), std::move(St)).first->second;
}

uint64_t AnalysisServer::programFp() {
  if (ProgFpVersion != Version) {
    ProgFp = programFingerprint(*Prog);
    ProgFpVersion = Version;
  }
  return ProgFp;
}

uint64_t AnalysisServer::registryFp() {
  if (!RegFpSet) {
    RegFp = registryFingerprint(registry());
    RegFpSet = true;
  }
  return RegFp;
}

//===----------------------------------------------------------------------===//
// query
//===----------------------------------------------------------------------===//

std::string AnalysisServer::handleQuery(const JsonValue &Req) {
  std::string Error;
  const std::string *Kind = stringField(Req, "kind", Error);
  if (!Kind)
    return errorResponse(Error);
  bool IsPointsTo = *Kind == "points-to";
  bool IsMayAlias = *Kind == "may-alias";
  bool IsCallees = *Kind == "callees";
  if (!IsPointsTo && !IsMayAlias && !IsCallees)
    return errorResponse("unknown query kind '" + *Kind + "'");

  std::string SpecText = Opts.DefaultSpec;
  if (const JsonValue *V = Req.get("spec")) {
    if (!V->isString())
      return errorResponse("missing or non-string 'spec'");
    SpecText = V->Str;
  }
  std::string Mode = "auto";
  if (const JsonValue *V = Req.get("mode")) {
    if (!V->isString())
      return errorResponse("missing or non-string 'mode'");
    Mode = V->Str;
  }
  if (Mode != "auto" && Mode != "full" && Mode != "demand")
    return errorResponse("unknown query mode '" + Mode + "'");

  // Resolve names before solving anything.
  VarId QueryVar = InvalidId, AliasA = InvalidId, AliasB = InvalidId;
  MethodId QueryMethod = InvalidId;
  std::string VarName, AName, BName, MethodName;
  if (IsPointsTo) {
    const std::string *S = stringField(Req, "var", Error);
    if (!S)
      return errorResponse(Error);
    VarName = *S;
    QueryVar = findVarByName(*Prog, VarName);
    if (QueryVar == InvalidId)
      return errorResponse("unknown variable '" + VarName + "'");
  } else if (IsMayAlias) {
    const std::string *A = stringField(Req, "a", Error);
    if (!A)
      return errorResponse(Error);
    const std::string *B = stringField(Req, "b", Error);
    if (!B)
      return errorResponse(Error);
    AName = *A;
    BName = *B;
    AliasA = findVarByName(*Prog, AName);
    if (AliasA == InvalidId)
      return errorResponse("unknown variable '" + AName + "'");
    AliasB = findVarByName(*Prog, BName);
    if (AliasB == InvalidId)
      return errorResponse("unknown variable '" + BName + "'");
  } else {
    const std::string *S = stringField(Req, "method", Error);
    if (!S)
      return errorResponse(Error);
    MethodName = *S;
    QueryMethod = findMethodByName(*Prog, MethodName);
    if (QueryMethod == InvalidId)
      return errorResponse("unknown method '" + MethodName + "'");
  }

  SpecState *St = specState(SpecText, Error);
  if (!St)
    return errorResponse(Error);
  const std::string &Canonical = St->Recipe.Name;
  if (Mode == "demand" && !St->Inc)
    return errorResponse("demand mode is not available for spec '" +
                         Canonical + "'");

  // Mode resolution. "auto" answers demand-driven only while the spec has
  // never been fully solved (the cold-query case); once a resident
  // fixpoint exists, keeping it current via warm resume is cheaper than
  // slicing per query.
  bool UseDemand = Mode == "demand";
  if (Mode == "auto" && St->Inc && St->Inc->fullSolves() == 0 &&
      St->Inc->warmResumes() == 0)
    UseDemand = true;

  PTAResult DemandResult;
  const PTAResult *R = nullptr;
  DemandSlicer::Slice Slice;
  bool WarmStart = false;
  double FullRunMs = 0;
  if (UseDemand) {
    std::vector<VarId> Roots;
    if (IsPointsTo)
      Roots.push_back(QueryVar);
    else if (IsMayAlias) {
      Roots.push_back(AliasA);
      Roots.push_back(AliasB);
    } // callees: the call-graph core alone answers it.
    Slice = Slicer->sliceFor(Roots);
    DemandResult = St->Inc->demandSolve(Slice.Enabled);
    ++St->DemandSolves;
    R = &DemandResult;
  } else if (St->Inc) {
    R = &St->Inc->ensureCurrent();
    WarmStart = St->Inc->lastWasWarm();
  } else {
    // Plugin / pre-analysis recipes: cached from-scratch run per version.
    if (St->RunVersion != Version) {
      // Persistent store first: a batch run or an earlier server session
      // over the same program may already hold this exact result.
      std::string SKey;
      if (Opts.Store) {
        SKey = resultStoreKey(programFp(), Opts.WorkBudget,
                              Opts.TimeBudgetMs, registryFp(),
                              St->StoreCanon);
        StoredResult SR;
        if (Opts.Store->lookup(SKey, SR)) {
          St->Run = runFromStored(SR);
          St->Run.Name = St->Recipe.Name;
          St->RunVersion = Version;
        }
      }
      if (St->RunVersion != Version) {
        AnalysisSession::Options SOpts;
        SOpts.WithStdlib = Opts.WithStdlib;
        SOpts.WorkBudget = Opts.WorkBudget;
        SOpts.TimeBudgetMs = Opts.TimeBudgetMs;
        SOpts.Registry = Opts.Registry;
        AnalysisSession Sess(*Prog, SOpts);
        St->Run = Sess.run(St->Recipe);
        St->RunVersion = Version;
        // Publish under the batch executor's rules: never wall-clock
        // exhaustion (nondeterministic), never spec errors. The RunJson
        // is serialized under the canonical name so batch aggregates
        // served from this entry stay byte-identical.
        bool Cacheable = St->Run.Status != RunStatus::BudgetExhausted ||
                         Opts.TimeBudgetMs == 0;
        if (Opts.Store && Cacheable &&
            St->Run.Status != RunStatus::SpecError) {
          std::string Display = St->Run.Name;
          St->Run.Name = St->StoreCanon;
          JsonWriter RJ;
          appendRunJson(RJ, St->Run, /*IncludeTimings=*/false);
          Opts.Store->publish(SKey, storedFromRun(St->Run, RJ.take()));
          St->Run.Name = Display;
        }
      }
    }
    if (St->Run.Status != RunStatus::Completed)
      return errorResponse("analysis budget exhausted");
    R = &St->Run.Result;
    FullRunMs = St->Run.Timings.TotalMs;
  }
  if (R->Exhausted)
    return errorResponse("analysis budget exhausted");

  JsonWriter W;
  W.beginObject()
      .kv("ok", true)
      .kv("op", "query")
      .kv("kind", *Kind)
      .kv("spec", Canonical);
  if (IsPointsTo) {
    W.kv("var", VarName);
    const PointsToSet &Pts = R->pt(QueryVar);
    W.kv("size", static_cast<uint64_t>(Pts.size()));
    writeObjects(W, *Prog, Pts);
  } else if (IsMayAlias) {
    W.kv("a", AName).kv("b", BName).kv("alias", R->mayAlias(AliasA, AliasB));
  } else {
    W.kv("method", MethodName)
        .kv("reachable", R->isReachable(QueryMethod));
    W.key("sites").beginArray();
    for (StmtId SId : Prog->method(QueryMethod).AllStmts) {
      const Stmt &S = Prog->stmt(SId);
      if (S.Kind != StmtKind::Invoke)
        continue;
      W.beginObject().kv("line", S.Line).key("callees").beginArray();
      for (MethodId Callee : R->calleesOf(S.CallSite))
        W.value(Prog->methodString(Callee));
      W.endArray().endObject();
    }
    W.endArray();
  }

  // Diagnostics: session version, mode, work, timing. Everything in here
  // may legitimately differ between a warm resume, a demand slice, and a
  // cold oracle run — CI strips it (with timings) before diffing answers.
  W.key("meta").beginObject();
  W.kv("version", Version);
  W.kv("mode", UseDemand ? "demand" : "full");
  if (UseDemand) {
    W.kv("enabled_stmts", Slice.EnabledStmts)
        .kv("relevant_vars", Slice.RelevantVars)
        .kv("pts_insertions", R->Stats.PtsInsertions);
  } else {
    W.kv("warm_start", WarmStart);
  }
  W.kv("time_ms", St->Inc ? R->TimeMs : FullRunMs);
  W.endObject().endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// add-delta
//===----------------------------------------------------------------------===//

std::string AnalysisServer::handleAddDelta(const JsonValue &Req) {
  std::string Error;
  const std::string *Source = stringField(Req, "source", Error);
  if (!Source)
    return errorResponse(Error);
  std::string Name = "<delta-" + std::to_string(Deltas + 1) + ">";
  if (const JsonValue *V = Req.get("name")) {
    if (!V->isString())
      return errorResponse("missing or non-string 'name'");
    Name = V->Str;
  }

  // Trial-apply on a copy: the live program (and every resident solver
  // borrowing it) is only touched once the delta is known to be valid.
  {
    Program Trial = *Prog;
    Parser TP(Trial);
    std::vector<std::string> Errs;
    if (!TP.parseSource(*Source, Name) || !TP.finalize()) {
      Errs = TP.diagnostics();
    } else {
      for (const std::string &E : verifyProgram(Trial))
        Errs.push_back("verifier: " + E);
    }
    if (!Errs.empty()) {
      JsonWriter W;
      W.beginObject().kv("ok", false).kv("error", "delta rejected");
      W.key("errors").beginArray();
      for (const std::string &E : Errs)
        W.value(E);
      W.endArray().endObject();
      return W.take();
    }
  }

  uint32_t OldTypes = Prog->numTypes();
  uint32_t OldMethods = Prog->numMethods();
  uint32_t OldStmts = Prog->numStmts();
  Parser LP(*Prog);
  bool Ok = LP.parseSource(*Source, Name) && LP.finalize();
  (void)Ok;
  assert(Ok && "delta passed trial parse but failed on the live program");
  Prog->invalidateHierarchyCaches();
  Slicer->reindex();

  // Monotonicity classification: a new method on a pre-existing class can
  // change dispatch for objects already flowing through the fixpoint —
  // the retained solution is no longer a valid starting point. Methods
  // owned by types the delta itself introduced cannot be dispatch targets
  // of any pre-delta points-to fact.
  bool Warm = true;
  for (MethodId M = OldMethods; M < Prog->numMethods(); ++M)
    if (Prog->method(M).Owner < OldTypes)
      Warm = false;

  ++Version;
  ++Deltas;
  for (auto &[Key, St] : Specs)
    if (St.Inc)
      St.Inc->noteDelta(Warm);

  JsonWriter W;
  W.beginObject()
      .kv("ok", true)
      .kv("op", "add-delta")
      .kv("name", Name)
      .kv("version", Version)
      .kv("warm_start", Warm)
      .kv("new_types", Prog->numTypes() - OldTypes)
      .kv("new_methods", Prog->numMethods() - OldMethods)
      .kv("new_stmts", Prog->numStmts() - OldStmts)
      .endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// stats / dispatch / serve
//===----------------------------------------------------------------------===//

std::string AnalysisServer::handleStats() {
  JsonWriter W;
  W.beginObject()
      .kv("ok", true)
      .kv("op", "stats")
      .kv("version", Version)
      .kv("deltas", Deltas);
  W.key("program")
      .beginObject()
      .kv("types", Prog->numTypes())
      .kv("methods", Prog->numMethods())
      .kv("vars", Prog->numVars())
      .kv("stmts", Prog->numStmts())
      .kv("call_sites", Prog->numCallSites())
      .endObject();
  W.key("specs").beginArray();
  for (const auto &[Key, St] : Specs) {
    W.beginObject().kv("spec", Key).kv("incremental", St.Inc != nullptr);
    if (St.Inc) {
      W.kv("full_solves", St.Inc->fullSolves())
          .kv("warm_resumes", St.Inc->warmResumes())
          .kv("current", St.Inc->current());
    } else {
      W.kv("full_solves",
           static_cast<uint64_t>(St.RunVersion != 0 ? 1 : 0))
          .kv("current", St.RunVersion == Version);
    }
    W.kv("demand_solves", St.DemandSolves).endObject();
  }
  W.endArray();
  if (Opts.Store) {
    ResultStore::Counters C = Opts.Store->counters();
    W.key("store")
        .beginObject()
        .kv("hits", C.Hits)
        .kv("misses", C.Misses)
        .kv("publishes", C.Publishes)
        .kv("corrupt_evictions", C.CorruptEvictions)
        .kv("index_rebuilds", C.IndexRebuilds)
        .kv("gc_evictions", C.GcEvictions)
        .endObject();
  }
  W.endObject();
  return W.take();
}

std::string AnalysisServer::handleLine(const std::string &Line,
                                       bool *Shutdown) {
  assert(Prog && "handleLine before load()");
  JsonValue Req;
  std::string Error;
  if (!parseJson(Line, Req, Error))
    return errorResponse("parse error: " + Error);
  if (!Req.isObject())
    return errorResponse("request is not a JSON object");
  std::string OpError;
  const std::string *Op = stringField(Req, "op", OpError);
  if (!Op)
    return errorResponse(OpError);
  if (*Op == "query")
    return handleQuery(Req);
  if (*Op == "add-delta")
    return handleAddDelta(Req);
  if (*Op == "stats")
    return handleStats();
  if (*Op == "shutdown") {
    if (Shutdown)
      *Shutdown = true;
    JsonWriter W;
    W.beginObject().kv("ok", true).kv("op", "shutdown").endObject();
    return W.take();
  }
  return errorResponse("unknown op '" + *Op + "'");
}

int AnalysisServer::serve(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    bool Shutdown = false;
    Out << handleLine(Line, &Shutdown) << "\n" << std::flush;
    if (Shutdown)
      break;
  }
  return 0;
}
