//===- IncrementalSolver.h - Resident solver with warm restarts -*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived solving layer for one (program, analysis recipe) pair, the
/// incremental half of the analysis server. It keeps the Solver — pointer
/// flow graph, points-to sets, call graph, contexts — resident between
/// requests and, after an additive program delta, resumes the fixpoint via
/// Solver::resolveIncrement instead of re-solving from scratch: only the
/// new statements are replayed, so re-analysis cost tracks delta size.
///
/// The equivalence contract (every answer byte-identical to a from-scratch
/// run on the post-delta program) rests on monotonicity: additive deltas
/// only ever grow the solution, so the retained fixpoint is a valid
/// starting point. The caller classifies each delta via noteDelta():
/// deltas that could change dispatch on already-flowing objects (a new
/// method on a pre-existing class) are non-monotone in the call graph and
/// must be reported with CanWarmStart=false, forcing a full re-solve.
///
/// Also hosts the demand-driven one-shot path: demandSolve() runs a fresh
/// restricted solver over a DemandSlicer slice without touching the
/// resident state, for cold queries where a whole-program fixpoint would
/// be wasteful.
///
/// Eligibility: recipes with plugins (csc) or a pre-analysis (zipper-e)
/// cannot warm-start — plugin state is not replayed and the zipper method
/// selection itself depends on the pre-delta program. eligible() screens
/// them out; the server falls back to full AnalysisSession runs for those.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SERVER_INCREMENTALSOLVER_H
#define CSC_SERVER_INCREMENTALSOLVER_H

#include "client/AnalysisRegistry.h"
#include "pta/ContextSelector.h"
#include "pta/Solver.h"

#include <memory>

namespace csc {

class IncrementalSolver {
public:
  struct Options {
    uint64_t WorkBudget = ~0ULL; ///< Per solve; ~0 = unlimited.
    double TimeBudgetMs = 0;     ///< Per solve; 0 = unlimited.
  };

  /// True if \p R can be hosted: no solver plugins, no zipper
  /// pre-analysis. (Context-sensitive selectors are fine — selection is
  /// stateless and new methods/objects get contexts on first discovery.)
  static bool eligible(const AnalysisRecipe &R) {
    return !R.UseCsc && !R.UseZipper;
  }

  /// Borrows \p P (which may grow; must outlive this object). \p R must
  /// satisfy eligible().
  IncrementalSolver(const Program &P, const AnalysisRecipe &R, Options O);
  ~IncrementalSolver();

  /// Marks the held result stale after a program delta. \p CanWarmStart
  /// is the caller's monotonicity classification: false forces the next
  /// ensureCurrent() to rebuild and solve from scratch.
  void noteDelta(bool CanWarmStart);

  /// Returns the result for the current program, (re)solving if stale.
  /// The reference stays valid until the next noteDelta/ensureCurrent.
  const PTAResult &ensureCurrent();

  /// Runs a fresh solver restricted to \p EnabledStmts (a DemandSlicer
  /// slice) and returns its result. Leaves the resident state untouched.
  PTAResult demandSolve(const std::vector<uint8_t> &EnabledStmts) const;

  bool current() const { return Valid; }
  bool lastWasWarm() const { return LastWarm; }
  uint64_t warmResumes() const { return WarmResumesV; }
  uint64_t fullSolves() const { return FullSolvesV; }
  const AnalysisRecipe &recipe() const { return Recipe; }

private:
  SolverOptions solverOptions() const;

  const Program &P;
  AnalysisRecipe Recipe;
  Options Opts;

  // Selector chain owned here so the resident solver (and any demand
  // solver) can reference it; all selectors are stateless.
  std::unique_ptr<ContextSelector> Inner;
  std::unique_ptr<SelectiveSelector> Selective;
  ContextSelector *Selector = nullptr; ///< May be null (CI).

  std::unique_ptr<Solver> S;
  PTAResult Last;
  uint32_t SolvedStmts = 0; ///< P.numStmts() when Last was computed.
  bool Valid = false;
  bool ForceFull = false;
  bool LastWarm = false;
  uint64_t WarmResumesV = 0;
  uint64_t FullSolvesV = 0;
};

} // namespace csc

#endif // CSC_SERVER_INCREMENTALSOLVER_H
