//===- IncrementalSolver.cpp - Resident solver with warm restarts ---------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/IncrementalSolver.h"

#include <cassert>

using namespace csc;

IncrementalSolver::IncrementalSolver(const Program &P,
                                     const AnalysisRecipe &R, Options O)
    : P(P), Recipe(R), Opts(O) {
  assert(eligible(R) && "recipe needs plugins / pre-analysis; use a full "
                        "AnalysisSession instead");
  if (Recipe.MakeSelector)
    Inner = Recipe.MakeSelector();
  if (Inner && Recipe.SelectOnly) {
    Selective = std::make_unique<SelectiveSelector>(*Inner, *Recipe.SelectOnly);
    Selector = Selective.get();
  } else if (Inner) {
    Selector = Inner.get();
  }
}

IncrementalSolver::~IncrementalSolver() = default;

SolverOptions IncrementalSolver::solverOptions() const {
  SolverOptions SOpts;
  SOpts.DeltaPropagation = !Recipe.DoopMode;
  SOpts.CycleElimination = Recipe.CycleElimination;
  SOpts.ParallelSweeps = Recipe.ParallelSweeps;
  SOpts.WorkBudget = Opts.WorkBudget;
  SOpts.TimeBudgetMs = Opts.TimeBudgetMs;
  SOpts.Selector = Selector;
  return SOpts;
}

void IncrementalSolver::noteDelta(bool CanWarmStart) {
  Valid = false;
  if (!CanWarmStart)
    ForceFull = true;
}

const PTAResult &IncrementalSolver::ensureCurrent() {
  if (Valid && SolvedStmts == P.numStmts())
    return Last;
  if (!ForceFull && S && S->canResume() && P.numStmts() >= SolvedStmts) {
    Last = S->resolveIncrement(SolvedStmts);
    ++WarmResumesV;
    LastWarm = true;
  } else {
    S = std::make_unique<Solver>(P, solverOptions());
    Last = S->solve();
    ++FullSolvesV;
    LastWarm = false;
  }
  SolvedStmts = P.numStmts();
  Valid = true;
  ForceFull = false;
  return Last;
}

PTAResult
IncrementalSolver::demandSolve(const std::vector<uint8_t> &EnabledStmts) const {
  SolverOptions SOpts = solverOptions();
  SOpts.EnabledStmts = &EnabledStmts;
  Solver DS(P, SOpts);
  return DS.solve();
}
