//===- DemandSlicer.cpp - Backward PFG slices for demand queries ----------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/DemandSlicer.h"

using namespace csc;

DemandSlicer::DemandSlicer(const Program &P) : P(P) { reindex(); }

void DemandSlicer::reindex() {
  for (StmtId S = IndexedStmts; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    switch (St.Kind) {
    case StmtKind::Store:
      StoresByField[St.Field].push_back(S);
      break;
    case StmtKind::StaticStore:
      StaticStoresByField[St.Field].push_back(S);
      break;
    case StmtKind::ArrayStore:
      ArrayStores.push_back(S);
      break;
    case StmtKind::Invoke:
      if (St.IKind == InvokeKind::Virtual)
        SitesBySubsig[St.Subsig].push_back(S);
      else
        SitesByCallee[St.DirectCallee].push_back(S);
      break;
    default:
      break;
    }
  }
  IndexedStmts = P.numStmts();

  // Method index rebuilt from scratch: methods are few relative to
  // statements and may gain bodies (append) without changing identity.
  MethodsBySubsig.clear();
  for (MethodId M = 0; M < P.numMethods(); ++M) {
    const MethodInfo &MI = P.method(M);
    if (!MI.IsAbstract)
      MethodsBySubsig[MI.Subsig].push_back(M);
  }
}

DemandSlicer::Slice
DemandSlicer::sliceFor(const std::vector<VarId> &Roots) const {
  Slice Out;
  Out.Enabled.assign(P.numStmts(), 0);
  std::vector<uint8_t> Relevant(P.numVars(), 0);
  std::vector<VarId> Work;

  auto MarkVar = [&](VarId V) {
    if (V == InvalidId || V >= Relevant.size() || Relevant[V])
      return;
    Relevant[V] = 1;
    ++Out.RelevantVars;
    Work.push_back(V);
  };
  auto Enable = [&](StmtId S) {
    if (!Out.Enabled[S]) {
      Out.Enabled[S] = 1;
      ++Out.EnabledStmts;
    }
  };

  // Call-graph core: every invoke runs, and every receiver's set must be
  // exact for dispatch (and reachability) to match the full analysis.
  for (StmtId S = 0; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    if (St.Kind != StmtKind::Invoke)
      continue;
    Enable(S);
    if (St.IKind != InvokeKind::Static)
      MarkVar(St.Base);
  }
  for (VarId V : Roots)
    MarkVar(V);

  while (!Work.empty()) {
    VarId V = Work.back();
    Work.pop_back();

    // Backward over V's defining statements.
    for (StmtId SId : P.var(V).Defs) {
      const Stmt &S = P.stmt(SId);
      switch (S.Kind) {
      case StmtKind::New:
      case StmtKind::NewArray:
        Enable(SId);
        break;
      case StmtKind::Assign:
      case StmtKind::Cast:
        Enable(SId);
        MarkVar(S.From);
        break;
      case StmtKind::Load: {
        Enable(SId);
        MarkVar(S.Base);
        auto It = StoresByField.find(S.Field);
        if (It != StoresByField.end())
          for (StmtId StoreId : It->second) {
            const Stmt &St = P.stmt(StoreId);
            Enable(StoreId);
            MarkVar(St.From);
            MarkVar(St.Base);
          }
        break;
      }
      case StmtKind::ArrayLoad:
        Enable(SId);
        MarkVar(S.Base);
        // Index-insensitive arrays: any array store may feed any load.
        for (StmtId StoreId : ArrayStores) {
          const Stmt &St = P.stmt(StoreId);
          Enable(StoreId);
          MarkVar(St.From);
          MarkVar(St.Base);
        }
        break;
      case StmtKind::StaticLoad: {
        Enable(SId);
        auto It = StaticStoresByField.find(S.Field);
        if (It != StaticStoresByField.end())
          for (StmtId StoreId : It->second) {
            Enable(StoreId);
            MarkVar(P.stmt(StoreId).From);
          }
        break;
      }
      case StmtKind::Invoke: {
        // V receives a callee's return value: the CHA-approximated
        // callees' return variables flow in ([Return] edges are wired per
        // discovered call edge, which the enabled invokes make exact).
        if (S.IKind == InvokeKind::Virtual) {
          auto It = MethodsBySubsig.find(S.Subsig);
          if (It != MethodsBySubsig.end())
            for (MethodId CM : It->second)
              for (VarId RV : P.method(CM).RetVars)
                MarkVar(RV);
        } else if (S.DirectCallee != InvalidId) {
          for (VarId RV : P.method(S.DirectCallee).RetVars)
            MarkVar(RV);
        }
        break;
      }
      default:
        break;
      }
    }

    // Parameter inflow: objects reach a parameter from the matching
    // argument of any CHA-plausible caller site.
    const VarInfo &VI = P.var(V);
    if (VI.Method == InvalidId)
      continue;
    const MethodInfo &MI = P.method(VI.Method);
    size_t FirstParam = MI.IsStatic ? 0 : 1;
    for (size_t K = 0; K < MI.Params.size(); ++K) {
      if (MI.Params[K] != V)
        continue;
      if (K < FirstParam)
        break; // `this`: receiver bases are already in the core.
      size_t ArgIdx = K - FirstParam;
      auto BindAt = [&](StmtId SId) {
        const Stmt &S = P.stmt(SId);
        if (ArgIdx < S.Args.size())
          MarkVar(S.Args[ArgIdx]);
      };
      if (!MI.IsStatic) {
        auto It = SitesBySubsig.find(MI.Subsig);
        if (It != SitesBySubsig.end())
          for (StmtId SId : It->second)
            BindAt(SId);
      }
      auto It = SitesByCallee.find(VI.Method);
      if (It != SitesByCallee.end())
        for (StmtId SId : It->second)
          BindAt(SId);
      break;
    }
  }
  return Out;
}
