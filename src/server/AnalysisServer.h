//===- AnalysisServer.h - Long-lived NDJSON analysis service ----*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cscpta --serve` subsystem: a resident analysis service that loads
/// a program once and then answers newline-delimited JSON requests — one
/// request object per line on stdin, one response object per line on
/// stdout. Editor integrations and scripts keep a session open instead of
/// paying parse + solve from scratch per question.
///
/// Requests (see docs/CLI.md for the full reference):
///
///   {"op":"query","kind":"points-to","var":"A.main.x"[,"spec":S][,"mode":M]}
///   {"op":"query","kind":"may-alias","a":"A.main.x","b":"A.main.y",...}
///   {"op":"query","kind":"callees","method":"A.main",...}
///   {"op":"add-delta","source":"extend class A {...}"[,"name":N]}
///   {"op":"stats"}
///   {"op":"shutdown"}
///
/// Per analysis spec the server keeps either an IncrementalSolver (plugin-
/// free recipes: the solver stays resident; additive deltas warm-start the
/// fixpoint, dispatch-changing ones trigger a full re-solve) or a cached
/// full AnalysisSession run keyed by program version (csc / zipper-e
/// recipes). Cold queries on incremental-eligible specs are answered
/// demand-driven: a DemandSlicer slice restricted to the queried
/// variables, solved by a throwaway restricted solver.
///
/// Determinism contract: every field of a query answer outside the "meta"
/// object is a pure function of the post-delta program and the spec —
/// byte-identical whether produced by a warm resume, a demand slice, or a
/// from-scratch session (CI's server smoke diffs exactly this). "meta"
/// carries mode/work/timing diagnostics and is stripped before diffing,
/// like timings in batch reports.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SERVER_ANALYSISSERVER_H
#define CSC_SERVER_ANALYSISSERVER_H

#include "client/AnalysisSession.h"
#include "server/DemandSlicer.h"
#include "server/IncrementalSolver.h"
#include "support/JsonParse.h"

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace csc {

class ResultStore;

class AnalysisServer {
public:
  struct Options {
    /// Spec used by queries that omit "spec".
    std::string DefaultSpec = "ci";
    bool WithStdlib = true;
    uint64_t WorkBudget = ~0ULL; ///< Per solve; ~0 = unlimited.
    double TimeBudgetMs = 0;     ///< Per solve; 0 = unlimited.
    const AnalysisRegistry *Registry = nullptr; ///< null = global().
    /// Optional persistent result store: the fallback full-run path
    /// (non-incremental recipes at the unmodified program, version 1)
    /// consults it before solving and publishes after. Demand slices and
    /// post-delta programs are never stored — their results are not
    /// whole-program facts of an on-disk-addressable input.
    std::shared_ptr<ResultStore> Store;
  };

  AnalysisServer();
  explicit AnalysisServer(Options O);
  ~AnalysisServer();

  /// Parses and verifies the initial program (stdlib prepended when
  /// Options::WithStdlib). False with diagnostics on \p Diags on failure.
  bool load(const std::vector<std::pair<std::string, std::string>>
                &NamedSources,
            std::vector<std::string> &Diags);
  /// Convenience: read \p Paths and load().
  bool loadFiles(const std::vector<std::string> &Paths,
                 std::vector<std::string> &Diags);

  /// Handles one request line, returning the response JSON (no trailing
  /// newline). Never throws; malformed input yields {"ok":false,...}.
  /// \p Shutdown (if non-null) is set when the request was a well-formed
  /// shutdown op.
  std::string handleLine(const std::string &Line, bool *Shutdown = nullptr);

  /// Request/response loop until shutdown or EOF. Returns 0.
  int serve(std::istream &In, std::ostream &Out);

  /// Current program version: 1 after load(), +1 per accepted delta.
  uint64_t version() const { return Version; }
  const Program &program() const { return *Prog; }

private:
  /// Per-spec resident state: exactly one of Inc (incremental-eligible
  /// recipes) or the version-keyed full-run cache is active.
  struct SpecState {
    AnalysisRecipe Recipe;
    std::string StoreCanon; ///< canonicalSpec text (the Specs map key).
    std::unique_ptr<IncrementalSolver> Inc;
    AnalysisRun Run;            ///< Fallback path: last full run.
    uint64_t RunVersion = 0;    ///< Version Run was computed at; 0 = none.
    uint64_t DemandSolves = 0;
  };

  const AnalysisRegistry &registry() const;
  /// Resolves \p SpecText to resident state (creating it on first use);
  /// null with \p Error set on a malformed/unknown spec.
  SpecState *specState(const std::string &SpecText, std::string &Error);

  std::string handleQuery(const JsonValue &Req);
  std::string handleAddDelta(const JsonValue &Req);
  std::string handleStats();

  /// Store-key halves, computed lazily (the program one per version,
  /// the registry one once) — only touched when Options::Store is set.
  uint64_t programFp();
  uint64_t registryFp();

  Options Opts;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<DemandSlicer> Slicer;
  uint64_t Version = 0;
  uint64_t Deltas = 0;
  uint64_t ProgFp = 0;
  uint64_t ProgFpVersion = 0; ///< Version ProgFp was computed at.
  uint64_t RegFp = 0;
  bool RegFpSet = false;
  std::map<std::string, SpecState> Specs; ///< Keyed by canonical spec.
};

} // namespace csc

#endif // CSC_SERVER_ANALYSISSERVER_H
