//===- DemandSlicer.h - Backward PFG slices for demand queries --*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the set of statements a fixpoint restricted to a handful of
/// queried variables needs — the demand-driven half of the analysis
/// server, per Lazy Pointer Analysis (PAPERS.md): a query for pt(v) only
/// has to evaluate the backward slice of the pointer flow graph reaching
/// v, so cold-query latency is bounded by slice size, not program size.
///
/// The slice is syntactic (computed before any solving) and closed under
/// every rule that can add an object to a relevant pointer's set:
///
///  * the roots, and transitively every variable whose value can flow
///    into a relevant variable (assign/cast sources, field-matched
///    store sources and their bases, array-store sources and bases,
///    static-store sources, CHA-approximated callee return variables,
///    CHA-approximated caller arguments for relevant parameters);
///  * the "call-graph core": every invoke statement plus every invoke
///    receiver base, so the restricted run builds the exact on-the-fly
///    call graph (receivers dispatch on points-to facts, and parameter /
///    return bindings are wired per discovered call edge — identical to
///    the whole-program run). The CHA closures above only decide which
///    *value-flow* statements join the slice; they over-approximate
///    dispatch, which is always sound.
///
/// Soundness is per-variable and selector-independent: for every variable
/// marked relevant, the restricted fixpoint computes exactly the
/// whole-program points-to set under any ContextSelector (the slice never
/// mentions contexts). Variables outside the slice may see smaller sets —
/// that is the point — so results of a restricted run must only be read
/// for the queried roots (and the call graph, which stays exact).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SERVER_DEMANDSLICER_H
#define CSC_SERVER_DEMANDSLICER_H

#include "ir/Program.h"

#include <unordered_map>
#include <vector>

namespace csc {

class DemandSlicer {
public:
  /// Indexes \p P (stores by field, call sites by callee); O(#stmts).
  /// The slicer borrows the program and must be rebuilt (or refreshed via
  /// reindex()) after it grows.
  explicit DemandSlicer(const Program &P);

  /// Re-indexes statements added since construction / the last reindex.
  void reindex();

  struct Slice {
    /// Per-StmtId enable bit, sized to the program at slicing time; feed
    /// as SolverOptions::EnabledStmts. Ids beyond the vector (statements
    /// added later) are treated as enabled by the solver.
    std::vector<uint8_t> Enabled;
    uint32_t EnabledStmts = 0;  ///< Number of set bits.
    uint32_t RelevantVars = 0;  ///< Variables in the backward closure.
  };

  /// The backward slice for pt-queries on \p Roots.
  Slice sliceFor(const std::vector<VarId> &Roots) const;

private:
  const Program &P;
  uint32_t IndexedStmts = 0;

  // Value-flow indexes, each in ascending statement order.
  std::unordered_map<FieldId, std::vector<StmtId>> StoresByField;
  std::unordered_map<FieldId, std::vector<StmtId>> StaticStoresByField;
  std::vector<StmtId> ArrayStores;
  /// Virtual invoke sites by dispatch subsignature (CHA approximation).
  std::unordered_map<uint32_t, std::vector<StmtId>> SitesBySubsig;
  /// Static/special invoke sites by resolved direct callee.
  std::unordered_map<MethodId, std::vector<StmtId>> SitesByCallee;
  /// Concrete methods by subsignature (CHA callee approximation).
  std::unordered_map<uint32_t, std::vector<MethodId>> MethodsBySubsig;
};

} // namespace csc

#endif // CSC_SERVER_DEMANDSLICER_H
