//===- CscState.h - Shared state of the Cut-Shortcut patterns ---*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State shared by the three pattern implementations: the solver handle,
/// deduplicated counters for cut/shortcut statistics, and the "involved
/// methods" set reported in the paper's Table 3.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CSC_CSCSTATE_H
#define CSC_CSC_CSCSTATE_H

#include "pta/Solver.h"

#include <unordered_set>

namespace csc {

struct CutShortcutStats {
  uint64_t CutStores = 0;
  uint64_t CutReturns = 0;
  uint64_t ShortcutEdges = 0;
  /// Methods involved in cut or shortcut edges (Table 3 metric).
  std::unordered_set<MethodId> Involved;
};

/// Thin wrapper over the solver's Fig. 7 sets with deduplicated counting.
struct CscState {
  Solver *S = nullptr;
  CutShortcutStats Stats;

  void cutStore(StmtId St) {
    if (!S->isCutStore(St)) {
      S->addCutStore(St);
      ++Stats.CutStores;
    }
  }
  void cutReturn(VarId V) {
    if (!S->isCutReturn(V)) {
      S->addCutReturn(V);
      ++Stats.CutReturns;
    }
  }
  bool shortcut(PtrId Src, PtrId Dst) {
    if (!S->addShortcutEdge(Src, Dst))
      return false;
    ++Stats.ShortcutEdges;
    return true;
  }
  void involve(MethodId M) { Stats.Involved.insert(M); }
  void involveVar(VarId V) { involve(S->program().var(V).Method); }

  /// The call-argument index of \p V if it is a never-redefined parameter
  /// of \p M ([Arg2Var]'s def_x = ∅ requirement); InvalidId otherwise.
  /// Index 0 is `this` for instance methods.
  uint32_t paramIndexOf(MethodId M, VarId V) const {
    const Program &P = S->program();
    if (!P.var(V).Defs.empty())
      return InvalidId;
    const MethodInfo &MI = P.method(M);
    for (size_t K = 0; K != MI.Params.size(); ++K)
      if (MI.Params[K] == V)
        return static_cast<uint32_t>(K);
    return InvalidId;
  }

  /// True if \p V is one of \p M's return variables.
  bool isRetVar(MethodId M, VarId V) const {
    for (VarId R : S->program().method(M).RetVars)
      if (R == V)
        return true;
    return false;
  }
};

} // namespace csc

#endif // CSC_CSC_CSCSTATE_H
