//===- FieldAccessPattern.h - §3.2 / Figs. 8–9 ------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The field access pattern of Cut-Shortcut (§3.2, formalized in Figs. 8
/// and 9):
///
///  * Store side — a store `x.f = y` whose base and source are both
///    never-redefined parameters merges argument flows from every call
///    site; the store edges are cut ([CutStore]) and tempStores are
///    propagated up nested call chains ([PropStore]) until they anchor at
///    a level where base/source are not pass-through parameters, where
///    shortcut edges `from -> o.f` are emitted ([ShortcutStore]).
///
///  * Load side — a load `to = base.f` whose base is a never-redefined
///    parameter and whose target is a return variable returns merged
///    loads; the return edges are cut and tempLoads propagate to callers
///    ([CutPropLoad]), emitting `o.f -> lhs` shortcuts ([ShortcutLoad]).
///    In-edges of the cut return variable that did not come from the
///    qualifying loads (tracked as returnLoadEdges) are relayed to every
///    call-site LHS to preserve soundness ([RelayEdge]).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CSC_FIELDACCESSPATTERN_H
#define CSC_CSC_FIELDACCESSPATTERN_H

#include "csc/CscState.h"
#include "support/DenseTable.h"

#include <unordered_map>
#include <unordered_set>

namespace csc {

class FieldAccessPattern {
public:
  FieldAccessPattern(CscState &St, bool HandleStores, bool HandleLoads)
      : St(St), HandleStores(HandleStores), HandleLoads(HandleLoads) {}

  void onNewMethod(MethodId M);
  void onNewCallEdge(CSCallSiteId CS, CSMethodId Callee);
  void onNewPointsTo(PtrId P, const PointsToSet &Delta);
  void onNewPFGEdge(PtrId Src, PtrId Dst, EdgeOrigin Origin);
  void onFixpoint();

private:
  // --- Store side ---

  /// A tempStore still travelling up the call chain: `Base.F = From` where
  /// Base/From are the KBase/KFrom-th parameters of the hosting method.
  struct PropStore {
    VarId Base;
    FieldId F;
    VarId From;
    uint32_t KBase;
    uint32_t KFrom;
  };
  /// A tempStore that anchored: shortcut `From -> o.F` for o in pt(Base).
  struct TerminalStore {
    FieldId F;
    VarId From;
  };

  void addTempStore(MethodId InMethod, VarId Base, FieldId F, VarId From);
  void propagateStoreToCaller(const PropStore &PS, const Stmt &CallStmt);

  std::unordered_map<MethodId, std::vector<PropStore>> PropagatingStores;
  std::unordered_map<VarId, std::vector<TerminalStore>> TerminalByBase;
  /// Dense fast-reject flags mirroring the sparse maps above: the solver
  /// fires onNewPointsTo/onNewPFGEdge for every pointer, and almost no
  /// variable has terminal stores/loads or cut returns — a byte test
  /// avoids the hash lookup on that hot path.
  std::vector<uint8_t> HasTerminalStore; ///< TerminalByBase keys.
  std::vector<uint8_t> HasTerminalLoad;  ///< TermLoadByBase keys.
  std::vector<uint8_t> HasCutLoadRet;    ///< CutLoadRets keys.
  std::vector<uint8_t> HasPropStores;    ///< PropagatingStores keys.
  std::vector<uint8_t> HasCutLoadVars;   ///< CutLoadVarsByMethod keys.
  std::vector<uint8_t> HasFlushStmt;     ///< FlushOnResolve keys.

  static void setFlag(std::vector<uint8_t> &F, uint32_t I) {
    denseAssign<uint8_t>(F, I, 1, 0);
  }
  static bool testFlag(const std::vector<uint8_t> &F, uint32_t I) {
    return denseGet<uint8_t>(F, I, 0) != 0;
  }
  /// Dedup of tempStores: (Base, From) -> fields already handled.
  std::unordered_map<std::pair<uint32_t, uint32_t>,
                     std::unordered_set<FieldId>, PairHash>
      SeenTempStores;

  // --- Load side ---

  /// One qualifying (possibly temp) load feeding a cut return variable:
  /// values of BaseVar (the KBase-th parameter / the call argument) are
  /// loaded through field F.
  struct LoadEntry {
    uint32_t KBase;
    FieldId F;
    VarId BaseVar;
  };
  /// A tempLoad that anchored at a call site: shortcut `o.F -> Target`
  /// for o in pt of the base argument.
  struct TerminalLoad {
    FieldId F;
    VarId Target;
  };

  void registerCutLoadVar(MethodId M, VarId RetV, LoadEntry E);
  void processLoadCallEdge(const Stmt &CallStmt, MethodId Callee);
  bool isReturnLoadEdge(VarId RetV, PtrId Src) const;
  void markNestedCandidates(MethodId M);

  std::unordered_map<VarId, std::vector<LoadEntry>> CutLoadRets;
  std::unordered_map<MethodId, std::vector<VarId>> CutLoadVarsByMethod;
  std::unordered_map<VarId, std::vector<PtrId>> RelayTargets;
  std::unordered_map<VarId, std::unordered_set<PtrId>> RelaySeen;
  std::unordered_map<VarId, std::vector<PtrId>> NonRLEIn;
  std::unordered_map<VarId, std::unordered_set<PtrId>> NonRLESeen;
  std::unordered_map<VarId, std::vector<TerminalLoad>> TermLoadByBase;
  /// Dedup of tempLoads: (Target, Base) -> fields already handled.
  std::unordered_map<std::pair<uint32_t, uint32_t>,
                     std::unordered_set<FieldId>, PairHash>
      SeenTempLoads;
  /// Deferred-return bookkeeping: invoke statements whose resolution
  /// decides the deferred LHS variable's fate.
  std::unordered_map<StmtId, VarId> FlushOnResolve;
  /// Chains: a deferred variable waiting on a callee return variable that
  /// is itself still deferred (3+-level nested accessors).
  struct DeferDep {
    StmtId CallStmt;
    MethodId Callee;
    VarId Var;
  };
  std::unordered_map<VarId, std::vector<DeferDep>> DeferDeps;
  std::vector<VarId> DeferredRegistry;

  void decideDeferred(StmtId CallStmt, MethodId Callee, VarId V);
  void undeferAndNotify(VarId V);
  void resolveDependents(VarId V);

  CscState &St;
  bool HandleStores;
  bool HandleLoads;
};

} // namespace csc

#endif // CSC_CSC_FIELDACCESSPATTERN_H
