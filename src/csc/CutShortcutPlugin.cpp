//===- CutShortcutPlugin.cpp - The Cut-Shortcut analysis ------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "csc/CutShortcutPlugin.h"

#include <cassert>

using namespace csc;

CutShortcutPlugin::CutShortcutPlugin(const Program &P,
                                     const ContainerSpec &Spec,
                                     CutShortcutOptions Opts)
    : P(P), Opts(Opts) {
  if (Opts.FieldStore || Opts.FieldLoad)
    Field = std::make_unique<FieldAccessPattern>(State, Opts.FieldStore,
                                                 Opts.FieldLoad);
  if (Opts.Container)
    Cont = std::make_unique<ContainerPattern>(State, Spec);
  if (Opts.LocalFlow)
    Local = std::make_unique<LocalFlowPattern>(State);
}

CutShortcutPlugin::~CutShortcutPlugin() = default;

void CutShortcutPlugin::onStart(Solver &S) {
  State.S = &S;
  // Cut-Shortcut applies no contexts to any method (§3.1); it must run on
  // the context-insensitive solver.
}

void CutShortcutPlugin::onNewMethod(CSMethodId M) {
  CallGraph &CG = State.S->callGraph();
  const CSMethodInfo &MI = CG.csMethod(M);
  assert(MI.Ctx == State.S->ctxManager().empty() &&
         "Cut-Shortcut requires the context-insensitive solver");
  if (!SeenMethods.insert(MI.M).second)
    return;
  if (Field)
    Field->onNewMethod(MI.M);
  if (Cont)
    Cont->onNewMethod(MI.M);
  if (Local)
    Local->onNewMethod(MI.M);
}

void CutShortcutPlugin::onNewPointsTo(PtrId Pr, const PointsToSet &Delta) {
  if (Field)
    Field->onNewPointsTo(Pr, Delta);
  if (Cont)
    Cont->onNewPointsTo(Pr, Delta);
}

void CutShortcutPlugin::onNewCallEdge(CSCallSiteId CS, CSMethodId Callee) {
  if (Field)
    Field->onNewCallEdge(CS, Callee);
  if (Cont)
    Cont->onNewCallEdge(CS, Callee);
  if (Local)
    Local->onNewCallEdge(CS, Callee);
}

void CutShortcutPlugin::onNewPFGEdge(PtrId Src, PtrId Dst,
                                     EdgeOrigin Origin) {
  if (Field)
    Field->onNewPFGEdge(Src, Dst, Origin);
  if (Cont)
    Cont->onNewPFGEdge(Src, Dst, Origin);
}

void CutShortcutPlugin::onFixpoint() {
  if (Field)
    Field->onFixpoint();
}
