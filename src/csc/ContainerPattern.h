//===- ContainerPattern.h - §3.3 / Fig. 10 ----------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container access pattern (§3.3, formalized in Fig. 10). Return edges
/// of Exit methods are cut ([CutContainer]); the pointer-host map ptH is
/// computed on the fly ([ColHost]/[MapHost]/[TransferHost]/[PropHost]); at
/// call sites of Entrances/Exits whose receivers share a host of matching
/// element category, shortcut edges connect the entrance argument to the
/// exit LHS ([HostSource]/[HostTarget]/[ShortcutContainer]).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CSC_CONTAINERPATTERN_H
#define CSC_CSC_CONTAINERPATTERN_H

#include "csc/CscState.h"
#include "stdlib/ContainerSpec.h"
#include "support/DenseTable.h"
#include "support/Hash.h"
#include "support/PointsToSet.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace csc {

class ContainerPattern {
public:
  ContainerPattern(CscState &St, const ContainerSpec &Spec)
      : St(St), Spec(Spec) {}

  void onNewMethod(MethodId M);
  void onNewCallEdge(CSCallSiteId CS, CSMethodId Callee);
  void onNewPointsTo(PtrId P, const PointsToSet &Delta);
  void onNewPFGEdge(PtrId Src, PtrId Dst, EdgeOrigin Origin);

  /// ptH(P): hosts associated with a pointer (for tests/diagnostics).
  const PointsToSet &hostsOf(PtrId P) const {
    static const PointsToSet None;
    auto It = Hosts.find(P);
    return It == Hosts.end() ? None : It->second;
  }

private:
  /// A call site subscribed to its receiver's hosts, with the container
  /// role of the resolved callee.
  struct Sub {
    StmtId S;
    MethodId Callee;
  };

  /// Per (host object, element category): matched Sources and Targets.
  struct Matches {
    std::vector<PtrId> Sources;
    std::vector<PtrId> Targets;
    std::unordered_set<PtrId> SeenSources;
    std::unordered_set<PtrId> SeenTargets;
  };

  void pendHost(PtrId P, ObjId H);
  void drain();
  void processSub(const Sub &SubInfo, ObjId Host);
  void addSource(ObjId H, ElemCategory C, PtrId Src);
  void addTarget(ObjId H, ElemCategory C, PtrId Tgt);
  static uint64_t edgeKey(PtrId S, PtrId T) { return packPair(S, T); }
  static uint64_t matchKey(ObjId H, ElemCategory C) {
    return (static_cast<uint64_t>(H) << 2) | static_cast<uint64_t>(C);
  }

  bool typeIsHost(TypeId T);
  bool methodIsContainer(MethodId M);

  CscState &St;
  const ContainerSpec &Spec;

  std::unordered_map<PtrId, std::vector<Sub>> RecvSubs;
  std::unordered_set<uint64_t> SeenSubs; ///< (recvPtr, stmt) dedup.
  std::unordered_map<PtrId, PointsToSet> Hosts;
  /// Dense fast paths for the per-pop/per-edge hooks: memoized host-type
  /// classification by TypeId and a byte per PtrId marking Hosts keys, so
  /// the common no-host case costs no hash lookup.
  std::vector<int8_t> HostTypeMemo;        ///< -1 unknown, else 0/1.
  std::vector<int8_t> ContainerMethodMemo; ///< -1 unknown, else 0/1.
  std::vector<uint8_t> HasHosts;
  std::unordered_map<uint64_t, Matches> MatchesByHostCat;
  std::unordered_set<uint64_t> ExcludedEdges; ///< Transfer return edges.
  std::deque<std::pair<PtrId, ObjId>> HostWL;
  bool Draining = false;
};

} // namespace csc

#endif // CSC_CSC_CONTAINERPATTERN_H
