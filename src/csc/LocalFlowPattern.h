//===- LocalFlowPattern.h - §3.4 / Fig. 11 ----------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local flow pattern (§3.4, formalized in Fig. 11). An intraprocedural
/// value-flow analysis computes ⟨m,k⟩ ↣ x — "x's values all come from m's
/// k-th parameter via local assignments". Return variables that qualify
/// have their return edges cut ([CutLFlow]) and each call site gets
/// shortcut edges from the corresponding arguments to its LHS
/// ([ShortcutLFlow]).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CSC_LOCALFLOWPATTERN_H
#define CSC_CSC_LOCALFLOWPATTERN_H

#include "csc/CscState.h"

#include <unordered_map>

namespace csc {

class LocalFlowPattern {
public:
  explicit LocalFlowPattern(CscState &St) : St(St) {}

  void onNewMethod(MethodId M);
  void onNewCallEdge(CSCallSiteId CS, CSMethodId Callee);

  /// The ⟨m,k⟩ ↣ x parameter mask computed for a variable (bit k set means
  /// values flow from call-argument k); 0 if the variable does not qualify.
  /// Exposed for tests.
  uint64_t paramMaskOf(MethodId M, VarId V);

private:
  struct CutRet {
    VarId V;
    uint64_t Mask; ///< Bit k: values come from call-argument k.
  };

  /// Computes ⟨m,k⟩↣x for all variables of M (least fixed point).
  std::unordered_map<VarId, uint64_t> computeFlows(MethodId M) const;

  std::unordered_map<MethodId, std::vector<CutRet>> CutRets;

  CscState &St;
};

} // namespace csc

#endif // CSC_CSC_LOCALFLOWPATTERN_H
