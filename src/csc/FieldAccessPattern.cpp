//===- FieldAccessPattern.cpp - §3.2 / Figs. 8–9 --------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "csc/FieldAccessPattern.h"

using namespace csc;

void FieldAccessPattern::onNewMethod(MethodId M) {
  const Program &P = St.S->program();
  const MethodInfo &MI = P.method(M);
  for (StmtId SId : MI.AllStmts) {
    const Stmt &S = P.stmt(SId);
    if (HandleStores && S.Kind == StmtKind::Store) {
      // [CutStore]: both base and source are never-redefined parameters.
      uint32_t KBase = St.paramIndexOf(M, S.Base);
      uint32_t KFrom = St.paramIndexOf(M, S.From);
      if (KBase != InvalidId && KFrom != InvalidId) {
        St.cutStore(SId);
        St.involve(M);
        addTempStore(M, S.Base, S.Field, S.From);
      }
    }
    if (HandleLoads && S.Kind == StmtKind::Load) {
      // [CutPropLoad] innermost case: base is a never-redefined parameter
      // and the target is a return variable.
      uint32_t KBase = St.paramIndexOf(M, S.Base);
      if (KBase != InvalidId && St.isRetVar(M, S.To))
        registerCutLoadVar(M, S.To, {KBase, S.Field, S.Base});
    }
  }
  if (HandleLoads)
    markNestedCandidates(M);
}

void FieldAccessPattern::markNestedCandidates(MethodId M) {
  // A return variable defined by an invoke that passes a never-redefined
  // parameter may become a cut return once the callee's tempLoads
  // propagate ([CutPropLoad] recursion). Its return edges are withheld
  // until the first such call edge decides; undecided edges are flushed.
  const Program &P = St.S->program();
  const MethodInfo &MI = P.method(M);
  for (VarId RV : MI.RetVars) {
    if (St.S->isCutReturn(RV))
      continue;
    for (StmtId D : P.var(RV).Defs) {
      const Stmt &DS = P.stmt(D);
      if (DS.Kind != StmtKind::Invoke || DS.To != RV)
        continue;
      bool HasParamArg = false;
      size_t NArgs = P.numCallArgs(DS);
      for (size_t K = 0; K != NArgs && !HasParamArg; ++K) {
        VarId Arg = P.callArg(DS, K);
        HasParamArg = Arg != InvalidId && St.paramIndexOf(M, Arg) != InvalidId;
      }
      if (!HasParamArg)
        continue;
      if (!St.S->isDeferredReturn(RV))
        DeferredRegistry.push_back(RV);
      St.S->addDeferredReturn(RV);
      FlushOnResolve.emplace(D, RV);
      setFlag(HasFlushStmt, D);
    }
  }
}

void FieldAccessPattern::decideDeferred(StmtId CallStmt, MethodId Callee,
                                        VarId V) {
  // V's return edges are withheld. This call edge (one of V's defining
  // invokes) was a chance for V to become a nested cut return. Outcomes:
  //  * V got cut (registerCutLoadVar fired) — the solver cleared the
  //    deferral and the shortcut machinery covers V's flows;
  //  * the callee's own return variables are still deferred — their fate
  //    decides V's, so wait ([CutPropLoad] chains of depth >= 3);
  //  * otherwise — V cannot be cut through this edge; flush the withheld
  //    return edges (soundness requires them).
  if (!St.S->isDeferredReturn(V))
    return;
  bool Wait = false;
  for (VarId RV : St.S->program().method(Callee).RetVars)
    if (RV != V && St.S->isDeferredReturn(RV)) {
      DeferDeps[RV].push_back({CallStmt, Callee, V});
      Wait = true;
    }
  if (!Wait)
    undeferAndNotify(V);
}

void FieldAccessPattern::undeferAndNotify(VarId V) {
  St.S->undeferReturn(V);
  resolveDependents(V);
}

void FieldAccessPattern::resolveDependents(VarId V) {
  auto It = DeferDeps.find(V);
  if (It == DeferDeps.end())
    return;
  std::vector<DeferDep> Deps = std::move(It->second);
  DeferDeps.erase(It);
  for (const DeferDep &D : Deps)
    decideDeferred(D.CallStmt, D.Callee, D.Var);
}

void FieldAccessPattern::onFixpoint() {
  // Cycle breaker: deferred variables whose deciding chain never resolved
  // (mutually recursive pass-through wrappers). At a fixpoint no further
  // cut can be discovered without new flows, so flushing is the sound
  // default; the solver resumes to propagate the flushed edges.
  std::vector<VarId> Registry = DeferredRegistry;
  for (VarId V : Registry)
    if (St.S->isDeferredReturn(V))
      undeferAndNotify(V);
}

//===----------------------------------------------------------------------===//
// Store side
//===----------------------------------------------------------------------===//

void FieldAccessPattern::addTempStore(MethodId InMethod, VarId Base,
                                      FieldId F, VarId From) {
  if (!SeenTempStores[{Base, From}].insert(F).second)
    return;
  uint32_t KBase = St.paramIndexOf(InMethod, Base);
  uint32_t KFrom = St.paramIndexOf(InMethod, From);
  if (KBase != InvalidId && KFrom != InvalidId) {
    // [PropStore]: both operands are pass-through parameters; the temp
    // store travels to every (current and future) caller.
    PropStore PS{Base, F, From, KBase, KFrom};
    PropagatingStores[InMethod].push_back(PS);
    setFlag(HasPropStores, InMethod);
    CallGraph &CG = St.S->callGraph();
    const Program &P = St.S->program();
    CSMethodId CSM =
        CG.getCSMethod(InMethod, St.S->ctxManager().empty());
    // Copy: propagation may add further callers while we iterate.
    std::vector<CSCallSiteId> Callers = CG.callersOf(CSM);
    for (CSCallSiteId CS : Callers) {
      const Stmt &CallStmt = P.stmt(P.callSite(CG.csCallSite(CS).CS).S);
      propagateStoreToCaller(PS, CallStmt);
    }
    return;
  }
  // [ShortcutStore]: anchored — emit `From -> o.F` for o in pt(Base), now
  // and as pt(Base) grows.
  St.involveVar(Base);
  St.involveVar(From);
  TerminalByBase[Base].push_back({F, From});
  setFlag(HasTerminalStore, Base);
  PtrId BasePtr = St.S->varPtrCI(Base);
  PtrId FromPtr = St.S->varPtrCI(From);
  const CSManager &CSM = St.S->csManager();
  St.S->ptsOf(BasePtr).forEach([&](CSObjId O) {
    St.shortcut(FromPtr,
                St.S->fieldPtrCI(CSM.csObj(O).O, F));
  });
}

void FieldAccessPattern::propagateStoreToCaller(const PropStore &PS,
                                                const Stmt &CallStmt) {
  const Program &P = St.S->program();
  VarId CallerBase = P.callArg(CallStmt, PS.KBase);
  VarId CallerFrom = P.callArg(CallStmt, PS.KFrom);
  if (CallerBase == InvalidId || CallerFrom == InvalidId)
    return; // Arity mismatch: no values flow through these parameters.
  addTempStore(CallStmt.Method, CallerBase, PS.F, CallerFrom);
}

//===----------------------------------------------------------------------===//
// Load side
//===----------------------------------------------------------------------===//

void FieldAccessPattern::registerCutLoadVar(MethodId M, VarId RetV,
                                            LoadEntry E) {
  if (!SeenTempLoads[{RetV, E.BaseVar}].insert(E.F).second)
    return;
  bool First = CutLoadRets.find(RetV) == CutLoadRets.end();
  CutLoadRets[RetV].push_back(E);
  setFlag(HasCutLoadRet, RetV);
  if (First) {
    St.cutReturn(RetV);
    St.involve(M);
    CutLoadVarsByMethod[M].push_back(RetV);
    setFlag(HasCutLoadVars, M);
    // Classify in-edges that already exist (the nested-discovery case,
    // where RetV was cut after its method was analyzed).
    PtrId RetPtr = St.S->varPtrCI(RetV);
    std::vector<PtrId> Preds = St.S->pfg().pred(RetPtr);
    for (PtrId Src : Preds) {
      if (isReturnLoadEdge(RetV, Src))
        continue;
      if (NonRLESeen[RetV].insert(Src).second)
        NonRLEIn[RetV].push_back(Src);
    }
    // Re-process existing call edges of M for this newly cut variable.
    CallGraph &CG = St.S->callGraph();
    const Program &P = St.S->program();
    CSMethodId CSM = CG.getCSMethod(M, St.S->ctxManager().empty());
    std::vector<CSCallSiteId> Callers = CG.callersOf(CSM);
    for (CSCallSiteId CS : Callers) {
      const Stmt &CallStmt = P.stmt(P.callSite(CG.csCallSite(CS).CS).S);
      processLoadCallEdge(CallStmt, M);
    }
    // Deferred variables waiting on RetV's fate can now be decided (the
    // nested registration above may have cut them; otherwise they flush).
    resolveDependents(RetV);
  }
}

bool FieldAccessPattern::isReturnLoadEdge(VarId RetV, PtrId Src) const {
  const PtrInfo &PI = St.S->csManager().ptr(Src);
  if (PI.Kind != PtrKind::Field)
    return false;
  auto It = CutLoadRets.find(RetV);
  if (It == CutLoadRets.end())
    return false;
  for (const LoadEntry &E : It->second) {
    if (E.F != PI.B)
      continue;
    // Src is o.F; it is a returnLoadEdge if o came through the qualifying
    // load's base ([CutPropLoad]'s o_n ∈ pt(base)).
    PtrId BasePtr = St.S->varPtrCI(E.BaseVar);
    if (St.S->ptsOf(BasePtr).contains(PI.A))
      return true;
  }
  return false;
}

void FieldAccessPattern::processLoadCallEdge(const Stmt &CallStmt,
                                             MethodId Callee) {
  if (!testFlag(HasCutLoadVars, Callee))
    return;
  auto It = CutLoadVarsByMethod.find(Callee);
  if (It == CutLoadVarsByMethod.end())
    return;
  if (CallStmt.To == InvalidId)
    return;
  const Program &P = St.S->program();
  PtrId TargetPtr = St.S->varPtrCI(CallStmt.To);
  // Copy: nested registration can invalidate iterators.
  std::vector<VarId> Vars = It->second;
  for (VarId RetV : Vars) {
    // [RelayEdge]: non-returnLoad in-edges of RetV flow to this LHS.
    if (RelaySeen[RetV].insert(TargetPtr).second) {
      RelayTargets[RetV].push_back(TargetPtr);
      std::vector<PtrId> Srcs = NonRLEIn[RetV];
      for (PtrId Src : Srcs)
        St.shortcut(Src, TargetPtr);
    }
    std::vector<LoadEntry> Entries = CutLoadRets[RetV];
    for (const LoadEntry &E : Entries) {
      VarId ArgVar = P.callArg(CallStmt, E.KBase);
      if (ArgVar == InvalidId)
        continue;
      // tempLoad ⟨CallStmt.To, ArgVar, E.F⟩.
      if (!SeenTempLoads[{CallStmt.To, ArgVar}].insert(E.F).second)
        continue;
      St.involveVar(ArgVar);
      St.involveVar(CallStmt.To);
      // [ShortcutLoad]: o.F -> lhs for o in pt(ArgVar), now and later.
      TermLoadByBase[ArgVar].push_back({E.F, CallStmt.To});
      setFlag(HasTerminalLoad, ArgVar);
      PtrId ArgPtr = St.S->varPtrCI(ArgVar);
      const CSManager &CSMgr = St.S->csManager();
      FieldId F = E.F;
      St.S->ptsOf(ArgPtr).forEach([&](CSObjId O) {
        St.shortcut(St.S->fieldPtrCI(CSMgr.csObj(O).O, F), TargetPtr);
      });
      // [CutPropLoad] recursion: the LHS is itself a return variable fed
      // by a pass-through parameter -> cut the caller too. We must re-add
      // the dedup slot first; registerCutLoadVar re-checks it.
      MethodId CallerM = CallStmt.Method;
      uint32_t KArg = St.paramIndexOf(CallerM, ArgVar);
      if (KArg != InvalidId && St.isRetVar(CallerM, CallStmt.To)) {
        SeenTempLoads[{CallStmt.To, ArgVar}].erase(E.F);
        registerCutLoadVar(CallerM, CallStmt.To, {KArg, E.F, ArgVar});
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Hook plumbing
//===----------------------------------------------------------------------===//

void FieldAccessPattern::onNewCallEdge(CSCallSiteId CS, CSMethodId Callee) {
  const Program &P = St.S->program();
  CallGraph &CG = St.S->callGraph();
  MethodId M = CG.csMethod(Callee).M;
  StmtId CallSId = P.callSite(CG.csCallSite(CS).CS).S;
  const Stmt &CallStmt = P.stmt(CallSId);

  if (HandleStores && testFlag(HasPropStores, M)) {
    auto It = PropagatingStores.find(M);
    if (It != PropagatingStores.end()) {
      std::vector<PropStore> Stores = It->second;
      for (const PropStore &PS : Stores)
        propagateStoreToCaller(PS, CallStmt);
    }
  }
  if (HandleLoads) {
    processLoadCallEdge(CallStmt, M);
    if (testFlag(HasFlushStmt, CallSId)) {
      auto It = FlushOnResolve.find(CallSId);
      if (It != FlushOnResolve.end())
        decideDeferred(CallSId, M, It->second);
    }
  }
}

void FieldAccessPattern::onNewPointsTo(PtrId Pr, const PointsToSet &Delta) {
  const PtrInfo &PI = St.S->csManager().ptr(Pr);
  if (PI.Kind != PtrKind::Var)
    return;
  VarId V = PI.A;
  const CSManager &CSMgr = St.S->csManager();

  if (HandleStores && testFlag(HasTerminalStore, V)) {
    auto It = TerminalByBase.find(V);
    if (It != TerminalByBase.end()) {
      std::vector<TerminalStore> Stores = It->second;
      for (const TerminalStore &TS : Stores) {
        PtrId FromPtr = St.S->varPtrCI(TS.From);
        Delta.forEach([&](CSObjId O) {
          St.shortcut(FromPtr,
                      St.S->fieldPtrCI(CSMgr.csObj(O).O, TS.F));
        });
      }
    }
  }
  if (HandleLoads && testFlag(HasTerminalLoad, V)) {
    auto It = TermLoadByBase.find(V);
    if (It != TermLoadByBase.end()) {
      std::vector<TerminalLoad> Loads = It->second;
      for (const TerminalLoad &TL : Loads) {
        PtrId TargetPtr = St.S->varPtrCI(TL.Target);
        Delta.forEach([&](CSObjId O) {
          St.shortcut(St.S->fieldPtrCI(CSMgr.csObj(O).O, TL.F),
                      TargetPtr);
        });
      }
    }
  }
}

void FieldAccessPattern::onNewPFGEdge(PtrId Src, PtrId Dst,
                                      EdgeOrigin Origin) {
  if (!HandleLoads)
    return;
  (void)Origin;
  const PtrInfo &PI = St.S->csManager().ptr(Dst);
  if (PI.Kind != PtrKind::Var)
    return;
  VarId V = PI.A;
  if (!testFlag(HasCutLoadRet, V))
    return;
  auto It = CutLoadRets.find(V);
  if (It == CutLoadRets.end())
    return;
  if (isReturnLoadEdge(V, Src))
    return;
  if (!NonRLESeen[V].insert(Src).second)
    return;
  NonRLEIn[V].push_back(Src);
  std::vector<PtrId> Targets = RelayTargets[V];
  for (PtrId T : Targets)
    St.shortcut(Src, T);
}
