//===- ContainerPattern.cpp - §3.3 / Fig. 10 ------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "csc/ContainerPattern.h"

using namespace csc;

void ContainerPattern::onNewMethod(MethodId M) {
  // [CutContainer]: all return edges of Exit methods are cut.
  if (!Spec.isExit(M))
    return;
  St.involve(M);
  for (VarId RV : St.S->program().method(M).RetVars)
    St.cutReturn(RV);
}

bool ContainerPattern::methodIsContainer(MethodId M) {
  int8_t Memo = denseGet<int8_t>(ContainerMethodMemo, M, -1);
  if (Memo < 0) {
    Memo = Spec.isContainerMethod(M) ? 1 : 0;
    denseAssign<int8_t>(ContainerMethodMemo, M, Memo, -1);
  }
  return Memo != 0;
}

void ContainerPattern::onNewCallEdge(CSCallSiteId CS, CSMethodId Callee) {
  CallGraph &CG = St.S->callGraph();
  MethodId M = CG.csMethod(Callee).M;
  if (!methodIsContainer(M))
    return;
  const Program &P = St.S->program();
  StmtId SId = P.callSite(CG.csCallSite(CS).CS).S;
  const Stmt &S = P.stmt(SId);
  if (S.IKind == InvokeKind::Static)
    return; // Container methods are instance methods.
  St.involve(S.Method);
  St.involve(M);
  PtrId RecvPtr = St.S->varPtrCI(S.Base);
  uint64_t Key = edgeKey(RecvPtr, SId);
  if (SeenSubs.insert(Key).second) {
    Sub SubInfo{SId, M};
    RecvSubs[RecvPtr].push_back(SubInfo);
    // Process hosts the receiver already carries.
    std::vector<ObjId> Existing = hostsOf(RecvPtr).toVector();
    for (ObjId H : Existing)
      processSub(SubInfo, H);
  }
  drain();
}

bool ContainerPattern::typeIsHost(TypeId T) {
  int8_t Memo = denseGet<int8_t>(HostTypeMemo, T, -1);
  if (Memo < 0) {
    Memo = Spec.isHostType(St.S->program(), T) ? 1 : 0;
    denseAssign<int8_t>(HostTypeMemo, T, Memo, -1);
  }
  return Memo != 0;
}

void ContainerPattern::onNewPointsTo(PtrId P, const PointsToSet &Delta) {
  // [ColHost] / [MapHost]: container objects are their own hosts, at every
  // pointer that points to them.
  const Program &Prog = St.S->program();
  const CSManager &CSMgr = St.S->csManager();
  Delta.forEach([&](CSObjId O) {
    ObjId Obj = CSMgr.csObj(O).O;
    if (typeIsHost(Prog.obj(Obj).Type))
      pendHost(P, Obj);
  });
  drain();
}

void ContainerPattern::onNewPFGEdge(PtrId Src, PtrId Dst,
                                    EdgeOrigin Origin) {
  // [PropHost]: hosts flow along PFG edges, except return edges of
  // Transfer methods ([TransferHost] already covers those and merging
  // hosts inside the transfer method would be imprecise).
  if (Origin == EdgeOrigin::Return) {
    const PtrInfo &PI = St.S->csManager().ptr(Src);
    if (PI.Kind == PtrKind::Var &&
        Spec.isTransfer(St.S->program().var(PI.A).Method)) {
      ExcludedEdges.insert(edgeKey(Src, Dst));
      return;
    }
  }
  if (denseGet<uint8_t>(HasHosts, Src, 0)) {
    auto It = Hosts.find(Src);
    if (It != Hosts.end()) {
      std::vector<ObjId> Existing = It->second.toVector();
      for (ObjId H : Existing)
        pendHost(Dst, H);
    }
    drain();
  }
}

void ContainerPattern::pendHost(PtrId P, ObjId H) {
  HostWL.emplace_back(P, H);
}

void ContainerPattern::drain() {
  if (Draining)
    return;
  Draining = true;
  while (!HostWL.empty()) {
    auto [P, H] = HostWL.front();
    HostWL.pop_front();
    if (!Hosts[P].insert(H))
      continue;
    denseAssign<uint8_t>(HasHosts, P, 1, 0);
    // Propagate along current out-edges ([PropHost]).
    for (const PFGEdge &E : St.S->pfg().succ(P))
      if (!ExcludedEdges.count(edgeKey(P, E.To)))
        pendHost(E.To, H);
    // Wake subscribed container call sites on this receiver.
    auto It = RecvSubs.find(P);
    if (It != RecvSubs.end()) {
      std::vector<Sub> Subs = It->second;
      for (const Sub &SubInfo : Subs)
        processSub(SubInfo, H);
    }
  }
  Draining = false;
}

void ContainerPattern::processSub(const Sub &SubInfo, ObjId Host) {
  const Program &P = St.S->program();
  const Stmt &S = P.stmt(SubInfo.S);
  MethodId M = SubInfo.Callee;
  // [HostSource]: entrance arguments become Sources of the host.
  if (Spec.isEntrance(M)) {
    for (const ContainerSpec::EntranceParam &EP : Spec.entranceParams(M)) {
      VarId Arg = P.callArg(S, EP.ParamIdx);
      if (Arg != InvalidId)
        addSource(Host, EP.Cat, St.S->varPtrCI(Arg));
    }
  }
  // [HostTarget]: exit LHS variables become Targets of the host.
  if (Spec.isExit(M) && S.To != InvalidId)
    addTarget(Host, Spec.exitCategory(M), St.S->varPtrCI(S.To));
  // [TransferHost]: the LHS inherits the receiver's hosts.
  if (Spec.isTransfer(M) && S.To != InvalidId)
    pendHost(St.S->varPtrCI(S.To), Host);
}

void ContainerPattern::addSource(ObjId H, ElemCategory C, PtrId Src) {
  Matches &MT = MatchesByHostCat[matchKey(H, C)];
  if (!MT.SeenSources.insert(Src).second)
    return;
  MT.Sources.push_back(Src);
  // [ShortcutContainer]: connect to every matched Target.
  std::vector<PtrId> Targets = MT.Targets;
  for (PtrId T : Targets)
    St.shortcut(Src, T);
}

void ContainerPattern::addTarget(ObjId H, ElemCategory C, PtrId Tgt) {
  Matches &MT = MatchesByHostCat[matchKey(H, C)];
  if (!MT.SeenTargets.insert(Tgt).second)
    return;
  MT.Targets.push_back(Tgt);
  std::vector<PtrId> Sources = MT.Sources;
  for (PtrId S : Sources)
    St.shortcut(S, Tgt);
}
