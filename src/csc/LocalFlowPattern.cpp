//===- LocalFlowPattern.cpp - §3.4 / Fig. 11 ------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "csc/LocalFlowPattern.h"

#include "support/Hash.h"

using namespace csc;

std::unordered_map<VarId, uint64_t>
LocalFlowPattern::computeFlows(MethodId M) const {
  const Program &P = St.S->program();
  const MethodInfo &MI = P.method(M);
  std::unordered_map<VarId, uint64_t> Mask;
  if (MI.Params.size() > 64)
    return Mask; // Mask width exceeded; pattern disabled for this method.

  // [Param2Var]: never-redefined parameters qualify with their own index.
  // Parameters with definitions do NOT qualify: their values mix incoming
  // arguments with the redefinitions, which the shortcut edges could not
  // cover soundly.
  for (size_t K = 0; K != MI.Params.size(); ++K)
    if (P.var(MI.Params[K]).Defs.empty())
      Mask[MI.Params[K]] = 1ULL << K;

  // [Param2VarRec]: least fixed point — x qualifies if it has definitions
  // and every definition is a local assignment from a qualifying variable.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (VarId V : MI.Vars) {
      const VarInfo &VI = P.var(V);
      if (VI.Defs.empty())
        continue;
      // Parameters never re-qualify through definitions (see above).
      bool IsParam = false;
      for (VarId PV : MI.Params)
        IsParam = IsParam || PV == V;
      if (IsParam)
        continue;
      uint64_t Combined = 0;
      bool AllQualify = true;
      for (StmtId D : VI.Defs) {
        const Stmt &DS = P.stmt(D);
        if (DS.Kind != StmtKind::Assign) {
          AllQualify = false;
          break;
        }
        auto It = Mask.find(DS.From);
        if (It == Mask.end() || It->second == 0) {
          AllQualify = false;
          break;
        }
        Combined |= It->second;
      }
      if (!AllQualify)
        continue;
      uint64_t &Cur = Mask[V];
      if (Cur != Combined) {
        Cur = Combined;
        Changed = true;
      }
    }
  }
  return Mask;
}

uint64_t LocalFlowPattern::paramMaskOf(MethodId M, VarId V) {
  auto Flows = computeFlows(M);
  auto It = Flows.find(V);
  return It == Flows.end() ? 0 : It->second;
}

void LocalFlowPattern::onNewMethod(MethodId M) {
  const Program &P = St.S->program();
  const MethodInfo &MI = P.method(M);
  if (MI.RetVars.empty())
    return;
  auto Flows = computeFlows(M);
  std::vector<CutRet> Cuts;
  for (VarId RV : MI.RetVars) {
    auto It = Flows.find(RV);
    if (It == Flows.end() || It->second == 0)
      continue;
    // [CutLFlow].
    St.cutReturn(RV);
    St.involve(M);
    Cuts.push_back({RV, It->second});
  }
  if (!Cuts.empty())
    CutRets.emplace(M, std::move(Cuts));
}

void LocalFlowPattern::onNewCallEdge(CSCallSiteId CS, CSMethodId Callee) {
  CallGraph &CG = St.S->callGraph();
  MethodId M = CG.csMethod(Callee).M;
  auto It = CutRets.find(M);
  if (It == CutRets.end())
    return;
  const Program &P = St.S->program();
  const Stmt &S = P.stmt(P.callSite(CG.csCallSite(CS).CS).S);
  if (S.To == InvalidId)
    return;
  St.involve(S.Method);
  PtrId TargetPtr = St.S->varPtrCI(S.To);
  for (const CutRet &CR : It->second) {
    // [ShortcutLFlow]: argument k -> call-site LHS for each flowing k.
    uint64_t Mask = CR.Mask;
    while (Mask) {
      unsigned K = countTrailingZeros(Mask);
      Mask &= Mask - 1;
      VarId Arg = P.callArg(S, K);
      if (Arg != InvalidId)
        St.shortcut(St.S->varPtrCI(Arg), TargetPtr);
    }
  }
}
