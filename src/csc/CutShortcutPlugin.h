//===- CutShortcutPlugin.h - The Cut-Shortcut analysis ----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution as a solver plugin: runs the standard
/// context-insensitive analysis on a transformed PFG' = (N, E \ cut ∪
/// shortcuts), with the three program patterns deciding the cuts and
/// shortcuts on the fly. Options allow disabling individual patterns (the
/// Doop version omits the field-load handling; the ablation bench enables
/// one pattern at a time).
///
/// Usage:
/// \code
///   ContainerSpec Spec = ContainerSpec::forProgram(P);
///   CutShortcutPlugin CSC(P, Spec);
///   Solver S(P, {});          // CI selector: no contexts anywhere.
///   S.addPlugin(&CSC);
///   PTAResult R = S.solve();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CSC_CUTSHORTCUTPLUGIN_H
#define CSC_CSC_CUTSHORTCUTPLUGIN_H

#include "csc/ContainerPattern.h"
#include "csc/CscState.h"
#include "csc/FieldAccessPattern.h"
#include "csc/LocalFlowPattern.h"
#include "stdlib/ContainerSpec.h"

#include <memory>
#include <unordered_set>

namespace csc {

struct CutShortcutOptions {
  bool FieldStore = true;
  bool FieldLoad = true; ///< False reproduces the paper's Doop version.
  bool Container = true;
  bool LocalFlow = true;
};

class CutShortcutPlugin : public SolverPlugin {
public:
  CutShortcutPlugin(const Program &P, const ContainerSpec &Spec,
                    CutShortcutOptions Opts = {});
  ~CutShortcutPlugin() override;

  void onStart(Solver &S) override;
  void onNewMethod(CSMethodId M) override;
  void onNewPointsTo(PtrId P, const PointsToSet &Delta) override;
  void onNewCallEdge(CSCallSiteId CS, CSMethodId Callee) override;
  void onNewPFGEdge(PtrId Src, PtrId Dst, EdgeOrigin Origin) override;
  void onFixpoint() override;

  const CutShortcutStats &stats() const { return State.Stats; }
  /// Methods involved in cut/shortcut edges (Table 3's "Involved methods").
  const std::unordered_set<MethodId> &involvedMethods() const {
    return State.Stats.Involved;
  }
  const ContainerPattern *container() const { return Cont.get(); }

private:
  const Program &P;
  CutShortcutOptions Opts;
  CscState State;
  std::unique_ptr<FieldAccessPattern> Field;
  std::unique_ptr<ContainerPattern> Cont;
  std::unique_ptr<LocalFlowPattern> Local;
  std::unordered_set<MethodId> SeenMethods;
};

} // namespace csc

#endif // CSC_CSC_CUTSHORTCUTPLUGIN_H
