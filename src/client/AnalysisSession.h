//===- AnalysisSession.h - Parse once, analyze many times -------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-facing entry point: a session owns (or borrows) one verified
/// Program and runs any number of registered analyses over it. Compared to
/// the deprecated one-shot runAnalysis façade it adds
///
///  * spec-string dispatch through an AnalysisRegistry ("csc",
///    "k-type;k=3", "zipper-e;pv=0.05", ...),
///  * caching of the Zipper-e pre-analysis across runs,
///  * structured phase timings, optional progress callbacks, and an
///    explicit run status (Completed / BudgetExhausted / SpecError)
///    instead of metrics that are silently "not meaningful",
///  * a ResultView query layer over each run's PTAResult.
///
/// Thread-safety: once constructed, a session is safe to share across
/// threads — the program is immutable, each run() builds its own solver,
/// and the Zipper pre-analysis cache is internally synchronized (one
/// computation per key, concurrent requesters block on it). Construction,
/// setWorkBudget/setTimeBudgetMs, and destruction are NOT thread-safe and
/// must not race with runs. The batch executor (client/BatchExecutor.h)
/// builds on exactly this contract.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_ANALYSISSESSION_H
#define CSC_CLIENT_ANALYSISSESSION_H

#include "client/AnalysisRegistry.h"
#include "client/Metrics.h"
#include "client/ResultView.h"
#include "csc/CutShortcutPlugin.h"
#include "ir/Program.h"
#include "pta/PTAResult.h"
#include "zipper/Zipper.h"

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace csc {

enum class RunStatus {
  Completed,       ///< Fixpoint reached; metrics are meaningful.
  BudgetExhausted, ///< Work/time budget hit; metrics are NOT populated.
  SpecError,       ///< The spec did not name a buildable analysis.
};

const char *runStatusName(RunStatus S);

struct PhaseTimings {
  double PreMs = 0;  ///< Zipper-e pre-analysis + selection.
  double MainMs = 0; ///< Main (solver) analysis.
  double TotalMs = 0;
};

/// The result of one analysis run over the session's program.
struct AnalysisRun {
  std::string Name; ///< The spec the run was built from.
  RunStatus Status = RunStatus::Completed;
  std::string Error; ///< Populated for SpecError.
  PTAResult Result;
  PrecisionMetrics Metrics; ///< Valid only when completed().
  PhaseTimings Timings;
  bool PreFromCache = false; ///< Zipper pre-analysis reused from cache.
  uint32_t SelectedMethods = 0; ///< Zipper-e selection size.
  CutShortcutStats Csc;         ///< Cut-Shortcut statistics.

  bool completed() const { return Status == RunStatus::Completed; }
  bool exhausted() const { return Status == RunStatus::BudgetExhausted; }
};

/// Phase callback: ("parse"|"verify"|"zipper-pre"|"solve"|"metrics",
/// detail). Invoked synchronously at phase starts.
using ProgressFn = std::function<void(const char *Phase,
                                      const std::string &Detail)>;

class AnalysisSession {
public:
  struct Options {
    bool WithStdlib = true; ///< Prepend the modelled stdlib when parsing.
    /// Work budget (points-to insertions) emulating the paper's timeout.
    uint64_t WorkBudget = ~0ULL;
    double TimeBudgetMs = 0; ///< Wall-clock cap per run (0 = unlimited).
    ProgressFn Progress;
    const AnalysisRegistry *Registry = nullptr; ///< Null = global().
  };

  /// Borrows an already-built (and externally verified) program.
  explicit AnalysisSession(const Program &P) : P(&P) {}
  AnalysisSession(const Program &P, Options O);

  /// Takes ownership of a built program (IRBuilder handoff); verifies it.
  /// Returns null with \p Diags filled on verification failure.
  static std::unique_ptr<AnalysisSession>
  adopt(std::unique_ptr<Program> P, Options O, std::vector<std::string> &Diags);

  /// Parses named `.jir` sources (stdlib prepended unless disabled),
  /// verifies, and checks for an entry point.
  static std::unique_ptr<AnalysisSession>
  fromSources(const std::vector<std::pair<std::string, std::string>> &Named,
              Options O, std::vector<std::string> &Diags);
  static std::unique_ptr<AnalysisSession>
  fromSource(const std::string &Name, const std::string &Text, Options O,
             std::vector<std::string> &Diags);
  /// Reads and parses `.jir` files from disk.
  static std::unique_ptr<AnalysisSession>
  fromFiles(const std::vector<std::string> &Paths, Options O,
            std::vector<std::string> &Diags);

  /// The verified program every run analyzes (immutable for the
  /// session's lifetime).
  const Program &program() const { return *P; }
  /// The options the session was built with.
  const Options &options() const { return Opts; }
  /// Adjusts the per-run work budget. NOT thread-safe: do not call
  /// while runs are in flight.
  void setWorkBudget(uint64_t B) { Opts.WorkBudget = B; }
  /// Adjusts the per-run wall-clock budget. NOT thread-safe (see above).
  void setTimeBudgetMs(double Ms) { Opts.TimeBudgetMs = Ms; }
  /// The registry specs resolve against (Options::Registry or global()).
  const AnalysisRegistry &registry() const;

  /// Wall time spent parsing / verifying at construction (0 for adopted
  /// or borrowed programs that skipped the phase).
  double parseMs() const { return ParseMsV; }
  double verifyMs() const { return VerifyMsV; }

  /// Runs one analysis named by a spec string. A bad spec yields a run
  /// with Status == SpecError and the message in Error. Thread-safe:
  /// any number of threads may run() concurrently over the one shared
  /// program (each run builds its own solver; the Zipper cache is
  /// internally locked). The Progress callback, if set, must itself be
  /// thread-safe when runs are concurrent.
  AnalysisRun run(const std::string &SpecText);
  /// Runs a pre-built recipe. Thread-safe (see run(spec)).
  AnalysisRun run(const AnalysisRecipe &Recipe);
  /// Runs every spec of a comma-separated list, in order.
  std::vector<AnalysisRun> runAll(const std::string &SpecList);
  /// Like runAll, but runs the specs on up to \p Jobs pool threads. The
  /// returned vector is in spec order regardless of completion order,
  /// and each run's result is identical to its sequential counterpart
  /// (the solver itself stays single-threaded). Jobs <= 1 falls back to
  /// the sequential runAll.
  std::vector<AnalysisRun> runAll(const std::string &SpecList,
                                  unsigned Jobs);

  /// Query view over a run's result. The session and the run must both
  /// outlive the view (it borrows, never copies).
  ResultView view(const AnalysisRun &Run) const {
    return ResultView(*P, Run.Result);
  }

  /// The Zipper-e pre-analysis for \p ZOpts, computed on first use and
  /// cached across runs (keyed on k / cost fraction / floor / budget).
  /// Thread-safe: concurrent calls with the same key block until the one
  /// computing thread finishes, so the pre-analysis runs exactly once per
  /// key; distinct keys compute in parallel.
  const ZipperSelection &zipperSelection(const ZipperOptions &ZOpts,
                                         bool *FromCache = nullptr);

private:
  AnalysisSession(std::unique_ptr<Program> Owned, Options O);

  void progress(const char *Phase, const std::string &Detail) const {
    if (Opts.Progress)
      Opts.Progress(Phase, Detail);
  }

  const Program *P = nullptr;
  std::unique_ptr<Program> Owned;
  Options Opts;
  double ParseMsV = 0;
  double VerifyMsV = 0;

  struct ZipperKey {
    unsigned K;
    double CostFraction;
    uint64_t MinCostFloor;
    uint64_t PreWorkBudget;
    bool operator==(const ZipperKey &O) const {
      return K == O.K && CostFraction == O.CostFraction &&
             MinCostFloor == O.MinCostFloor &&
             PreWorkBudget == O.PreWorkBudget;
    }
  };
  /// One cached pre-analysis. The entry is registered in the cache under
  /// ZipperMutex, but the (possibly long) computation itself runs inside
  /// call_once outside the lock: concurrent requests for the same key
  /// block on the once_flag, requests for other keys proceed.
  struct ZipperEntry {
    explicit ZipperEntry(const ZipperKey &K) : Key(K) {}
    ZipperKey Key;
    std::once_flag Once;
    ZipperSelection Sel;
  };
  // deque: cached selections must stay address-stable across inserts,
  // and ZipperEntry (once_flag) is neither movable nor copyable.
  std::deque<ZipperEntry> ZipperCache;
  std::mutex ZipperMutex; ///< Guards ZipperCache lookups/inserts only.
};

} // namespace csc

#endif // CSC_CLIENT_ANALYSISSESSION_H
