//===- AnalysisNames.cpp - Kind enum and its one name table ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisNames.h"

#include <cctype>

using namespace csc;

namespace {

// The one table. Canonical names double as registry keys; aliases cover
// the spellings the old drivers and the paper use.
const AnalysisNameEntry Table[] = {
    {AnalysisKind::CI, "ci", {"context-insensitive", nullptr, nullptr},
     "context-insensitive baseline"},
    {AnalysisKind::CSC, "csc", {"cut-shortcut", nullptr, nullptr},
     "Cut-Shortcut (params: field/load/container/local=0|1, "
     "engine=doop|taie)"},
    {AnalysisKind::ZipperE, "zipper-e", {"zipper", "zippere", nullptr},
     "Zipper-e selective k-obj (params: k, pv|cf cost fraction, floor)"},
    {AnalysisKind::TwoObj, "2obj", {"k-obj", "obj", nullptr},
     "k-object sensitivity (param: k, default 2)"},
    {AnalysisKind::TwoType, "2type", {"k-type", "type", nullptr},
     "k-type sensitivity (param: k, default 2)"},
    {AnalysisKind::TwoCallSite, "2cs", {"k-cs", "2callsite", nullptr},
     "k-call-site sensitivity (param: k, default 2)"},
};

bool equalsLower(std::string_view A, const char *B) {
  size_t I = 0;
  for (; I < A.size() && B[I]; ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return I == A.size() && B[I] == '\0';
}

} // namespace

const AnalysisNameEntry *csc::analysisNameTable(size_t &Count) {
  Count = sizeof(Table) / sizeof(Table[0]);
  return Table;
}

const char *csc::analysisName(AnalysisKind K) {
  for (const AnalysisNameEntry &E : Table)
    if (E.Kind == K)
      return E.Canonical;
  return "?";
}

bool csc::parseAnalysisKind(std::string_view Name, AnalysisKind &Out) {
  for (const AnalysisNameEntry &E : Table) {
    if (equalsLower(Name, E.Canonical)) {
      Out = E.Kind;
      return true;
    }
    for (const char *A : E.Aliases)
      if (A && equalsLower(Name, A)) {
        Out = E.Kind;
        return true;
      }
  }
  return false;
}
