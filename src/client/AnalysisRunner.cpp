//===- AnalysisRunner.cpp - Deprecated one-call façade --------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRunner.h"

using namespace csc;

AnalysisRecipe csc::recipeFor(const RunConfig &C) {
  ZipperOptions Z = C.Zipper;
  Z.K = C.K;
  AnalysisRecipe R = makeKindRecipe(C.Kind, C.K, C.DoopMode, Z, C.Csc);
  return R;
}

RunOutcome csc::runAnalysis(const Program &P, const RunConfig &C) {
  AnalysisSession::Options SO;
  SO.WorkBudget = C.WorkBudget;
  SO.TimeBudgetMs = C.TimeBudgetMs;
  AnalysisSession S(P, std::move(SO));
  AnalysisRun Run = S.run(recipeFor(C));

  RunOutcome Out;
  Out.Result = std::move(Run.Result);
  Out.Metrics = Run.Metrics;
  Out.TotalMs = Run.Timings.TotalMs;
  Out.PreMs = Run.Timings.PreMs;
  Out.MainMs = Run.Timings.MainMs;
  Out.Exhausted = Run.exhausted();
  Out.SelectedMethods = Run.SelectedMethods;
  Out.Csc = Run.Csc;
  return Out;
}
