//===- AnalysisRunner.cpp - One-call façade for every analysis ------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRunner.h"

#include "pta/ContextSelector.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "support/Timer.h"

#include <memory>

using namespace csc;

const char *csc::analysisName(AnalysisKind K) {
  switch (K) {
  case AnalysisKind::CI:
    return "CI";
  case AnalysisKind::CSC:
    return "CSC";
  case AnalysisKind::ZipperE:
    return "Zipper-e";
  case AnalysisKind::TwoObj:
    return "2obj";
  case AnalysisKind::TwoType:
    return "2type";
  case AnalysisKind::TwoCallSite:
    return "2cs";
  }
  return "?";
}

RunOutcome csc::runAnalysis(const Program &P, const RunConfig &C) {
  RunOutcome Out;
  Timer Total;

  SolverOptions SOpts;
  SOpts.DeltaPropagation = !C.DoopMode;
  SOpts.WorkBudget = C.WorkBudget;
  SOpts.TimeBudgetMs = C.TimeBudgetMs;

  std::unique_ptr<ContextSelector> Inner;
  std::unique_ptr<SelectiveSelector> Selective;
  std::unique_ptr<CutShortcutPlugin> Plugin;
  ContainerSpec Spec;

  switch (C.Kind) {
  case AnalysisKind::CI:
    break;
  case AnalysisKind::CSC: {
    Spec = ContainerSpec::forProgram(P);
    CutShortcutOptions Opts = C.Csc;
    if (C.DoopMode)
      Opts.FieldLoad = false; // Datalog cannot express [CutPropLoad].
    Plugin = std::make_unique<CutShortcutPlugin>(P, Spec, Opts);
    break;
  }
  case AnalysisKind::ZipperE: {
    ZipperOptions ZOpts = C.Zipper;
    ZOpts.K = C.K;
    ZOpts.PreWorkBudget = C.WorkBudget;
    ZipperSelection Sel = runZipperSelection(P, ZOpts);
    Out.PreMs = Sel.PreAnalysisMs;
    Out.SelectedMethods = static_cast<uint32_t>(Sel.Selected.size());
    if (Sel.PreExhausted) {
      Out.Exhausted = true;
      Out.TotalMs = Total.elapsedMs();
      return Out;
    }
    Inner = std::make_unique<KObjSelector>(C.K);
    Selective = std::make_unique<SelectiveSelector>(*Inner,
                                                    std::move(Sel.Selected));
    SOpts.Selector = Selective.get();
    break;
  }
  case AnalysisKind::TwoObj:
    Inner = std::make_unique<KObjSelector>(C.K);
    SOpts.Selector = Inner.get();
    break;
  case AnalysisKind::TwoType:
    Inner = std::make_unique<KTypeSelector>(C.K);
    SOpts.Selector = Inner.get();
    break;
  case AnalysisKind::TwoCallSite:
    Inner = std::make_unique<KCallSiteSelector>(C.K);
    SOpts.Selector = Inner.get();
    break;
  }

  Timer Main;
  Solver S(P, SOpts);
  if (Plugin)
    S.addPlugin(Plugin.get());
  Out.Result = S.solve();
  Out.MainMs = Main.elapsedMs();
  Out.Exhausted = Out.Result.Exhausted;
  if (Plugin)
    Out.Csc = Plugin->stats();
  if (!Out.Exhausted)
    Out.Metrics = computeMetrics(P, Out.Result);
  Out.TotalMs = Total.elapsedMs();
  return Out;
}
