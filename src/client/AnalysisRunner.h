//===- AnalysisRunner.h - Deprecated one-call façade ------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original one-shot entry point, kept as a thin deprecated wrapper
/// over the session/registry API so external callers keep compiling during
/// migration. New code should use AnalysisSession (parse once, run many
/// registered analyses, query results through ResultView):
///
/// \code
///   AnalysisSession S(P);                 // or ::fromSources / ::adopt
///   AnalysisRun Run = S.run("csc");       // any registered spec
///   if (Run.completed()) use(S.view(Run), Run.Metrics);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_ANALYSISRUNNER_H
#define CSC_CLIENT_ANALYSISRUNNER_H

#include "client/AnalysisNames.h"
#include "client/AnalysisSession.h"
#include "client/Metrics.h"
#include "csc/CutShortcutPlugin.h"
#include "pta/PTAResult.h"
#include "zipper/Zipper.h"

#include <string>

namespace csc {

struct RunConfig {
  AnalysisKind Kind = AnalysisKind::CI;
  /// Doop emulation: full re-propagation engine; CSC without load pattern.
  bool DoopMode = false;
  /// Work budget (points-to insertions) emulating the paper's 2h timeout.
  uint64_t WorkBudget = ~0ULL;
  double TimeBudgetMs = 0;
  unsigned K = 2; ///< Context depth for 2obj/2type/2cs.
  ZipperOptions Zipper;
  CutShortcutOptions Csc;
};

struct RunOutcome {
  PTAResult Result;
  PrecisionMetrics Metrics;
  double TotalMs = 0;
  double PreMs = 0;  ///< Zipper-e pre-analysis + selection.
  double MainMs = 0; ///< Main (context-sensitive) analysis.
  bool Exhausted = false;
  uint32_t SelectedMethods = 0; ///< Zipper-e selection size.
  CutShortcutStats Csc;         ///< Cut-Shortcut statistics.
};

/// The recipe a RunConfig maps to — useful while migrating callers that
/// carry full option structs onto AnalysisSession::run.
AnalysisRecipe recipeFor(const RunConfig &C);

/// Runs the configured analysis; never throws. If the work budget is hit,
/// Outcome.Exhausted is true and metrics are not meaningful.
[[deprecated("use AnalysisSession::run over an AnalysisRegistry spec; see "
             "docs/ARCHITECTURE.md")]]
RunOutcome runAnalysis(const Program &P, const RunConfig &C);

} // namespace csc

#endif // CSC_CLIENT_ANALYSISRUNNER_H
