//===- AnalysisRunner.h - One-call façade for every analysis ----*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs any of the evaluated analyses (CI, Cut-Shortcut, Zipper-e, 2obj,
/// 2type, 2cs) on a program and returns results, metrics and timing — the
/// entry point used by the benchmark harnesses and the examples.
///
/// "Doop mode" switches the engine to full re-propagation and disables the
/// Cut-Shortcut load handling, emulating the paper's Datalog framework
/// (Table 1); the default "Tai-e mode" is incremental with the full plugin
/// (Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_ANALYSISRUNNER_H
#define CSC_CLIENT_ANALYSISRUNNER_H

#include "client/Metrics.h"
#include "csc/CutShortcutPlugin.h"
#include "pta/PTAResult.h"
#include "zipper/Zipper.h"

#include <string>

namespace csc {

enum class AnalysisKind { CI, CSC, ZipperE, TwoObj, TwoType, TwoCallSite };

const char *analysisName(AnalysisKind K);

struct RunConfig {
  AnalysisKind Kind = AnalysisKind::CI;
  /// Doop emulation: full re-propagation engine; CSC without load pattern.
  bool DoopMode = false;
  /// Work budget (points-to insertions) emulating the paper's 2h timeout.
  uint64_t WorkBudget = ~0ULL;
  double TimeBudgetMs = 0;
  unsigned K = 2; ///< Context depth for 2obj/2type/2cs.
  ZipperOptions Zipper;
  CutShortcutOptions Csc;
};

struct RunOutcome {
  PTAResult Result;
  PrecisionMetrics Metrics;
  double TotalMs = 0;
  double PreMs = 0;  ///< Zipper-e pre-analysis + selection.
  double MainMs = 0; ///< Main (context-sensitive) analysis.
  bool Exhausted = false;
  uint32_t SelectedMethods = 0; ///< Zipper-e selection size.
  CutShortcutStats Csc;         ///< Cut-Shortcut statistics.
};

/// Runs the configured analysis; never throws. If the work budget is hit,
/// Outcome.Exhausted is true and metrics are not meaningful.
RunOutcome runAnalysis(const Program &P, const RunConfig &C);

} // namespace csc

#endif // CSC_CLIENT_ANALYSISRUNNER_H
