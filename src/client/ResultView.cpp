//===- ResultView.cpp - Query API over one analysis result ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/ResultView.h"

#include "client/Metrics.h"

#include <algorithm>

using namespace csc;

std::vector<CallSiteId> ResultView::callSitesIn(MethodId M) const {
  std::vector<CallSiteId> Out;
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS)
    if (P.callSite(CS).Caller == M)
      Out.push_back(CS);
  return Out;
}

std::vector<MethodId> ResultView::reachableMethods() const {
  std::vector<MethodId> Out(R.reachableMethods().begin(),
                            R.reachableMethods().end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<StmtId> ResultView::mayFailCasts() const {
  return csc::mayFailCasts(P, R);
}

std::vector<CallSiteId> ResultView::polyCallSites() const {
  return csc::polyCallSites(P, R);
}

MethodId ResultView::findMethod(std::string_view Qualified) const {
  size_t Dot = Qualified.rfind('.');
  if (Dot == std::string_view::npos)
    return InvalidId;
  TypeId T = P.typeByName(std::string(Qualified.substr(0, Dot)));
  if (T == InvalidId)
    return InvalidId;
  std::string_view Name = Qualified.substr(Dot + 1);
  for (MethodId M : P.type(T).Methods)
    if (P.method(M).Name == Name)
      return M;
  return InvalidId;
}

VarId ResultView::findVar(MethodId M, std::string_view Name) const {
  if (M == InvalidId)
    return InvalidId;
  for (VarId V : P.method(M).Vars)
    if (P.var(V).Name == Name)
      return V;
  return InvalidId;
}

VarId ResultView::findVar(std::string_view Qualified) const {
  size_t Dot = Qualified.rfind('.');
  if (Dot == std::string_view::npos)
    return InvalidId;
  return findVar(findMethod(Qualified.substr(0, Dot)),
                 Qualified.substr(Dot + 1));
}
