//===- Report.h - JSON serialization of analysis runs -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable reports: serializes metrics, solver statistics, phase
/// timings and whole analysis runs to JSON. Shared by the cscpta driver
/// and the bench harnesses' --json output.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_REPORT_H
#define CSC_CLIENT_REPORT_H

#include "client/AnalysisSession.h"
#include "support/Json.h"

#include <string>

namespace csc {

/// Appends {"fail_casts":..,"reach_methods":..,...} (one object).
/// Thread-safe for distinct writers (all functions here only touch the
/// passed-in JsonWriter and read the run).
void appendMetricsJson(JsonWriter &J, const PrecisionMetrics &M);

/// Appends the solver work counters (one object).
void appendStatsJson(JsonWriter &J, const SolverStats &S);

/// Appends one run as an object: name, status, timings, and — when the
/// run completed — metrics, stats, and per-analysis extras (cut/shortcut
/// statistics, Zipper selection size). With \p IncludeTimings false the
/// wall-clock fields (and the cache flag) are omitted, making the output
/// a pure function of (program, spec, budgets) as long as the run's
/// outcome is deterministic (work budgets are; wall-clock budgets can
/// flip boundary runs) — the batch executor relies on this for its
/// byte-identical-across---jobs aggregate reports and cached-result
/// reuse.
void appendRunJson(JsonWriter &J, const AnalysisRun &Run,
                   bool IncludeTimings = true);

/// Appends a program summary object (classes/methods/stmts/...).
void appendProgramSummaryJson(JsonWriter &J, const Program &P);

/// One run as a standalone JSON document (timings included).
std::string runJson(const AnalysisRun &Run);

} // namespace csc

#endif // CSC_CLIENT_REPORT_H
