//===- Report.h - JSON serialization of analysis runs -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable reports: serializes metrics, solver statistics, phase
/// timings and whole analysis runs to JSON. Shared by the cscpta driver
/// and the bench harnesses' --json output.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_REPORT_H
#define CSC_CLIENT_REPORT_H

#include "client/AnalysisSession.h"
#include "support/Json.h"

#include <string>

namespace csc {

/// Appends {"fail_casts":..,"reach_methods":..,...} (one object).
void appendMetricsJson(JsonWriter &J, const PrecisionMetrics &M);

/// Appends the solver work counters (one object).
void appendStatsJson(JsonWriter &J, const SolverStats &S);

/// Appends one run as an object: name, status, timings, and — when the
/// run completed — metrics, stats, and per-analysis extras (cut/shortcut
/// statistics, Zipper selection size).
void appendRunJson(JsonWriter &J, const AnalysisRun &Run);

/// Appends a program summary object (classes/methods/stmts/...).
void appendProgramSummaryJson(JsonWriter &J, const Program &P);

/// One run as a standalone JSON document.
std::string runJson(const AnalysisRun &Run);

} // namespace csc

#endif // CSC_CLIENT_REPORT_H
