//===- Metrics.cpp - The paper's four precision clients -------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/Metrics.h"

using namespace csc;

std::vector<StmtId> csc::mayFailCasts(const Program &P, const PTAResult &R) {
  std::vector<StmtId> Out;
  // Per cast target type, a bitmap over source TypeIds that would fail
  // the cast. Built once per target type (numTypes subtype queries), it
  // turns the per-pointee check into a bit test — points-to sets here can
  // hold hundreds of objects per cast on container-heavy programs.
  std::unordered_map<TypeId, PointsToSet> FailTypeMasks;
  for (StmtId S = 0; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    if (St.Kind != StmtKind::Cast || !R.isReachable(St.Method))
      continue;
    auto [It, New] = FailTypeMasks.try_emplace(St.Type);
    PointsToSet &Mask = It->second;
    if (New)
      for (TypeId T = 0; T < P.numTypes(); ++T)
        if (!P.isSubtype(T, St.Type))
          Mask.insert(T);
    bool MayFail = false;
    R.pt(St.From).forEach([&](ObjId O) {
      MayFail = MayFail || Mask.contains(P.obj(O).Type);
    });
    if (MayFail)
      Out.push_back(S);
  }
  return Out;
}

std::vector<CallSiteId> csc::polyCallSites(const Program &P,
                                           const PTAResult &R) {
  std::vector<CallSiteId> Out;
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    const Stmt &St = P.stmt(P.callSite(CS).S);
    if (St.IKind != InvokeKind::Virtual || !R.isReachable(St.Method))
      continue;
    if (R.calleesOf(CS).size() >= 2)
      Out.push_back(CS);
  }
  return Out;
}

PrecisionMetrics csc::computeMetrics(const Program &P, const PTAResult &R) {
  PrecisionMetrics M;
  M.FailCasts = static_cast<uint32_t>(mayFailCasts(P, R).size());
  M.ReachMethods = R.numReachableCI();
  M.PolyCalls = static_cast<uint32_t>(polyCallSites(P, R).size());
  M.CallEdges = R.numCallEdgesCI();
  return M;
}
