//===- AnalysisNames.h - Kind enum and its one name table -------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-kind enum of the evaluation and the single kind<->name
/// table shared by analysisName(), parseAnalysisKind() and the registry's
/// built-in registrations — so the enum and the strings can never drift.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_ANALYSISNAMES_H
#define CSC_CLIENT_ANALYSISNAMES_H

#include <cstddef>
#include <string_view>

namespace csc {

enum class AnalysisKind { CI, CSC, ZipperE, TwoObj, TwoType, TwoCallSite };

/// One row of the kind<->name table: the canonical spec name, accepted
/// aliases (all matched case-insensitively), and the registry description
/// — everything about a kind lives in this one row.
struct AnalysisNameEntry {
  AnalysisKind Kind;
  const char *Canonical;
  const char *Aliases[3]; ///< Null-terminated; fewer than 3 allowed.
  const char *Description;
};

/// The shared table, in enum order.
const AnalysisNameEntry *analysisNameTable(size_t &Count);

/// Canonical spec name of a kind ("ci", "csc", "zipper-e", "2obj",
/// "2type", "2cs").
const char *analysisName(AnalysisKind K);

/// Parses a canonical name or alias (case-insensitive) back to its kind.
/// Returns false if \p Name matches no table row.
bool parseAnalysisKind(std::string_view Name, AnalysisKind &Out);

} // namespace csc

#endif // CSC_CLIENT_ANALYSISNAMES_H
