//===- AnalysisSession.cpp - Parse once, analyze many times ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisSession.h"

#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "pta/Solver.h"
#include "stdlib/ContainerSpec.h"
#include "stdlib/Stdlib.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace csc;

const char *csc::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Completed:
    return "completed";
  case RunStatus::BudgetExhausted:
    return "budget-exhausted";
  case RunStatus::SpecError:
    return "spec-error";
  }
  return "?";
}

AnalysisSession::AnalysisSession(const Program &P, Options O)
    : P(&P), Opts(std::move(O)) {}

AnalysisSession::AnalysisSession(std::unique_ptr<Program> OwnedP, Options O)
    : P(OwnedP.get()), Owned(std::move(OwnedP)), Opts(std::move(O)) {}

const AnalysisRegistry &AnalysisSession::registry() const {
  return Opts.Registry ? *Opts.Registry : AnalysisRegistry::global();
}

//===----------------------------------------------------------------------===//
// Construction from sources / files / built programs
//===----------------------------------------------------------------------===//

namespace {

/// Verifies \p P and requires an entry point; appends to \p Diags.
bool verifyForSession(const Program &P, std::vector<std::string> &Diags) {
  std::vector<std::string> Errors = verifyProgram(P);
  for (const std::string &E : Errors)
    Diags.push_back("verifier: " + E);
  if (!Errors.empty())
    return false;
  if (P.entry() == InvalidId) {
    Diags.push_back("error: no static main() entry point");
    return false;
  }
  return true;
}

} // namespace

std::unique_ptr<AnalysisSession>
AnalysisSession::adopt(std::unique_ptr<Program> Prog, Options O,
                       std::vector<std::string> &Diags) {
  if (!Prog) {
    Diags.push_back("error: adopt() called with a null program");
    return nullptr;
  }
  Timer V;
  if (!verifyForSession(*Prog, Diags))
    return nullptr;
  auto S = std::unique_ptr<AnalysisSession>(
      new AnalysisSession(std::move(Prog), std::move(O)));
  S->VerifyMsV = V.elapsedMs();
  return S;
}

std::unique_ptr<AnalysisSession> AnalysisSession::fromSources(
    const std::vector<std::pair<std::string, std::string>> &Named, Options O,
    std::vector<std::string> &Diags) {
  auto Prog = std::make_unique<Program>();
  std::vector<std::pair<std::string, std::string>> All;
  if (O.WithStdlib)
    All.emplace_back("<stdlib>", stdlibSource());
  All.insert(All.end(), Named.begin(), Named.end());

  if (O.Progress)
    O.Progress("parse", std::to_string(All.size()) + " source(s)");
  Timer ParseT;
  if (!parseProgram(*Prog, All, Diags))
    return nullptr;
  double ParseMs = ParseT.elapsedMs();

  if (O.Progress)
    O.Progress("verify", "");
  Timer VerifyT;
  if (!verifyForSession(*Prog, Diags))
    return nullptr;
  double VerifyMs = VerifyT.elapsedMs();

  auto S = std::unique_ptr<AnalysisSession>(
      new AnalysisSession(std::move(Prog), std::move(O)));
  S->ParseMsV = ParseMs;
  S->VerifyMsV = VerifyMs;
  return S;
}

std::unique_ptr<AnalysisSession>
AnalysisSession::fromSource(const std::string &Name, const std::string &Text,
                            Options O, std::vector<std::string> &Diags) {
  return fromSources({{Name, Text}}, std::move(O), Diags);
}

std::unique_ptr<AnalysisSession>
AnalysisSession::fromFiles(const std::vector<std::string> &Paths, Options O,
                           std::vector<std::string> &Diags) {
  std::vector<std::pair<std::string, std::string>> Named;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      Diags.push_back("error: cannot open '" + Path + "'");
      return nullptr;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Named.emplace_back(Path, Buf.str());
  }
  if (Named.empty()) {
    Diags.push_back("error: no input files");
    return nullptr;
  }
  return fromSources(Named, std::move(O), Diags);
}

//===----------------------------------------------------------------------===//
// Running analyses
//===----------------------------------------------------------------------===//

const ZipperSelection &
AnalysisSession::zipperSelection(const ZipperOptions &ZOpts,
                                 bool *FromCache) {
  ZipperKey Key{ZOpts.K, ZOpts.CostFraction, ZOpts.MinCostFloor,
                ZOpts.PreWorkBudget};
  ZipperEntry *Entry = nullptr;
  bool Created = false;
  {
    std::lock_guard<std::mutex> G(ZipperMutex);
    for (ZipperEntry &E : ZipperCache)
      if (E.Key == Key) {
        Entry = &E;
        break;
      }
    if (!Entry) {
      ZipperCache.emplace_back(Key);
      Entry = &ZipperCache.back();
      Created = true;
    }
  }
  // The computation runs outside the cache lock: same-key requesters
  // block on the once_flag until it finishes, other keys proceed. Exactly
  // one thread computes; everyone else observes a cache hit.
  std::call_once(Entry->Once, [&] {
    progress("zipper-pre", "k=" + std::to_string(ZOpts.K));
    Entry->Sel = runZipperSelection(*P, ZOpts);
  });
  if (FromCache)
    *FromCache = !Created;
  return Entry->Sel;
}

AnalysisRun AnalysisSession::run(const std::string &SpecText) {
  AnalysisRecipe Recipe;
  std::string Error;
  if (!registry().build(SpecText, Recipe, Error)) {
    AnalysisRun Out;
    Out.Name = SpecText;
    Out.Status = RunStatus::SpecError;
    Out.Error = Error;
    return Out;
  }
  return run(Recipe);
}

std::vector<AnalysisRun> AnalysisSession::runAll(const std::string &SpecList) {
  std::vector<AnalysisRun> Out;
  for (const std::string &Spec : splitSpecList(SpecList))
    Out.push_back(run(Spec));
  return Out;
}

std::vector<AnalysisRun> AnalysisSession::runAll(const std::string &SpecList,
                                                 unsigned Jobs) {
  if (Jobs <= 1)
    return runAll(SpecList);
  std::vector<std::string> Specs = splitSpecList(SpecList);
  std::vector<AnalysisRun> Out(Specs.size());
  ThreadPool Pool(std::min<unsigned>(
      Jobs, Specs.empty() ? 1u : static_cast<unsigned>(Specs.size())));
  for (size_t I = 0; I != Specs.size(); ++I)
    Pool.submit([this, &Out, &Specs, I] { Out[I] = run(Specs[I]); });
  Pool.wait();
  return Out;
}

AnalysisRun AnalysisSession::run(const AnalysisRecipe &Recipe) {
  AnalysisRun Out;
  Out.Name = Recipe.Name;
  Timer Total;

  SolverOptions SOpts;
  SOpts.DeltaPropagation = !Recipe.DoopMode;
  SOpts.CycleElimination = Recipe.CycleElimination;
  SOpts.ParallelSweeps = Recipe.ParallelSweeps;
  SOpts.WorkBudget = Opts.WorkBudget;
  SOpts.TimeBudgetMs = Opts.TimeBudgetMs;

  std::unique_ptr<ContextSelector> Inner;
  std::unique_ptr<SelectiveSelector> Selective;
  std::unique_ptr<CutShortcutPlugin> Plugin;
  ContainerSpec Spec;

  if (Recipe.MakeSelector)
    Inner = Recipe.MakeSelector();

  if (Recipe.UseZipper) {
    ZipperOptions ZOpts = Recipe.Zipper;
    ZOpts.PreWorkBudget = Opts.WorkBudget;
    bool FromCache = false;
    const ZipperSelection &Sel = zipperSelection(ZOpts, &FromCache);
    Out.Timings.PreMs = Sel.PreAnalysisMs;
    Out.PreFromCache = FromCache;
    Out.SelectedMethods = static_cast<uint32_t>(Sel.Selected.size());
    if (Sel.PreExhausted) {
      Out.Status = RunStatus::BudgetExhausted;
      Out.Timings.TotalMs = Total.elapsedMs();
      return Out;
    }
    if (!Inner)
      Inner = std::make_unique<KObjSelector>(ZOpts.K);
    Selective = std::make_unique<SelectiveSelector>(*Inner, Sel.Selected);
    SOpts.Selector = Selective.get();
  } else if (Inner && Recipe.SelectOnly) {
    Selective =
        std::make_unique<SelectiveSelector>(*Inner, *Recipe.SelectOnly);
    SOpts.Selector = Selective.get();
  } else if (Inner) {
    SOpts.Selector = Inner.get();
  }

  if (Recipe.UseCsc) {
    Spec = ContainerSpec::forProgram(*P);
    Plugin = std::make_unique<CutShortcutPlugin>(*P, Spec, Recipe.Csc);
  }

  progress("solve", Recipe.Name);
  Timer Main;
  Solver S(*P, SOpts);
  if (Plugin)
    S.addPlugin(Plugin.get());
  Out.Result = S.solve();
  Out.Timings.MainMs = Main.elapsedMs();
  if (Plugin)
    Out.Csc = Plugin->stats();
  if (Out.Result.Exhausted) {
    Out.Status = RunStatus::BudgetExhausted;
  } else {
    progress("metrics", Recipe.Name);
    Out.Metrics = computeMetrics(*P, Out.Result);
  }
  Out.Timings.TotalMs = Total.elapsedMs();
  return Out;
}
