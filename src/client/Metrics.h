//===- Metrics.h - The paper's four precision clients -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four precision metrics of the evaluation (§5): a cast-resolution
/// client (#fail-cast), method reachability (#reach-mtd), devirtualization
/// (#poly-call) and call-graph construction (#call-edge). For every metric,
/// smaller is better.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_METRICS_H
#define CSC_CLIENT_METRICS_H

#include "ir/Program.h"
#include "pta/PTAResult.h"

#include <vector>

namespace csc {

struct PrecisionMetrics {
  uint32_t FailCasts = 0;   ///< Casts that may fail at run time.
  uint32_t ReachMethods = 0; ///< Reachable methods.
  uint32_t PolyCalls = 0;   ///< Virtual call sites with >= 2 targets.
  uint64_t CallEdges = 0;   ///< CI-projected call-graph edges.
};

/// Computes all four metrics from an analysis result.
PrecisionMetrics computeMetrics(const Program &P, const PTAResult &R);

/// The cast statements (in reachable methods) that may fail: pt(source)
/// contains an object incompatible with the cast type.
std::vector<StmtId> mayFailCasts(const Program &P, const PTAResult &R);

/// The reachable virtual call sites with two or more resolved targets.
std::vector<CallSiteId> polyCallSites(const Program &P, const PTAResult &R);

} // namespace csc

#endif // CSC_CLIENT_METRICS_H
