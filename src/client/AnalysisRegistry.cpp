//===- AnalysisRegistry.cpp - Named, pluggable analyses -------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/AnalysisRegistry.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace csc;

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

std::string lowered(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

} // namespace

const std::string *AnalysisSpec::param(std::string_view Key) const {
  for (const auto &[K, V] : Params)
    if (K == Key)
      return &V;
  return nullptr;
}

bool AnalysisSpec::paramUnsigned(std::string_view Key, unsigned &Out,
                                 std::string &Error) const {
  const std::string *V = param(Key);
  if (!V)
    return true;
  errno = 0;
  char *End = nullptr;
  unsigned long N = std::strtoul(V->c_str(), &End, 10);
  if (errno != 0 || End == V->c_str() || *End != '\0' || N == 0 ||
      N > 1u << 20) {
    Error = "parameter '" + std::string(Key) + "' expects a positive " +
            "integer, got '" + *V + "'";
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

bool AnalysisSpec::paramDouble(std::string_view Key, double &Out,
                               std::string &Error) const {
  const std::string *V = param(Key);
  if (!V)
    return true;
  errno = 0;
  char *End = nullptr;
  double D = std::strtod(V->c_str(), &End);
  if (errno != 0 || End == V->c_str() || *End != '\0') {
    Error = "parameter '" + std::string(Key) + "' expects a number, got '" +
            *V + "'";
    return false;
  }
  Out = D;
  return true;
}

bool AnalysisSpec::paramBool(std::string_view Key, bool &Out,
                             std::string &Error) const {
  const std::string *V = param(Key);
  if (!V)
    return true;
  if (*V == "1" || *V == "true" || *V == "on" || *V == "yes") {
    Out = true;
    return true;
  }
  if (*V == "0" || *V == "false" || *V == "off" || *V == "no") {
    Out = false;
    return true;
  }
  Error = "parameter '" + std::string(Key) + "' expects a boolean (0/1), " +
          "got '" + *V + "'";
  return false;
}

bool AnalysisSpec::checkKnownParams(const char *const *Known,
                                    std::string &Error) const {
  for (const auto &[K, V] : Params) {
    (void)V;
    bool Found = false;
    for (const char *const *P = Known; *P; ++P)
      Found = Found || K == *P;
    if (!Found) {
      Error = "analysis '" + Name + "' does not accept parameter '" + K +
              "' (known:";
      for (const char *const *P = Known; *P; ++P)
        Error += std::string(" ") + *P;
      Error += ")";
      return false;
    }
  }
  return true;
}

bool csc::parseAnalysisSpec(std::string_view Text, AnalysisSpec &Out,
                            std::string &Error) {
  Out = AnalysisSpec();
  std::string_view Rest = trim(Text);
  Out.Text = std::string(Rest);
  if (Rest.empty()) {
    Error = "empty analysis spec";
    return false;
  }
  bool First = true;
  while (!Rest.empty()) {
    size_t Semi = Rest.find(';');
    std::string_view Tok = trim(Rest.substr(0, Semi));
    Rest = Semi == std::string_view::npos ? std::string_view()
                                          : Rest.substr(Semi + 1);
    if (First) {
      if (Tok.empty() || Tok.find('=') != std::string_view::npos) {
        Error = "analysis spec must start with a name: '" +
                std::string(Text) + "'";
        return false;
      }
      Out.Name = lowered(Tok);
      First = false;
      continue;
    }
    size_t Eq = Tok.find('=');
    std::string_view Key = trim(Tok.substr(0, Eq));
    if (Eq == std::string_view::npos || Key.empty()) {
      Error = "malformed parameter '" + std::string(Tok) +
              "' in spec '" + std::string(Text) + "' (expected key=value)";
      return false;
    }
    std::string KeyL = lowered(Key);
    if (Out.param(KeyL)) {
      Error = "duplicate parameter '" + KeyL + "' in spec '" +
              std::string(Text) + "'";
      return false;
    }
    Out.Params.emplace_back(std::move(KeyL),
                            lowered(trim(Tok.substr(Eq + 1))));
  }
  return true;
}

std::string csc::canonicalSpec(const AnalysisSpec &Spec) {
  std::vector<std::pair<std::string, std::string>> Sorted = Spec.Params;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out = Spec.Name;
  for (const auto &[K, V] : Sorted) {
    Out += ';';
    Out += K;
    Out += '=';
    Out += V;
  }
  return Out;
}

bool csc::canonicalSpec(std::string_view SpecText, std::string &Out,
                        std::string &Error) {
  AnalysisSpec Spec;
  if (!parseAnalysisSpec(SpecText, Spec, Error))
    return false;
  Out = canonicalSpec(Spec);
  return true;
}

std::vector<std::string> csc::splitSpecList(std::string_view ListText) {
  std::vector<std::string> Out;
  while (!ListText.empty()) {
    size_t Comma = ListText.find(',');
    std::string_view Item = trim(ListText.substr(0, Comma));
    if (!Item.empty())
      Out.emplace_back(Item);
    ListText = Comma == std::string_view::npos ? std::string_view()
                                               : ListText.substr(Comma + 1);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Recipes
//===----------------------------------------------------------------------===//

AnalysisRecipe csc::makeKindRecipe(AnalysisKind Kind, unsigned K,
                                   bool DoopMode,
                                   const ZipperOptions &Zipper,
                                   const CutShortcutOptions &Csc) {
  AnalysisRecipe R;
  R.Name = analysisName(Kind);
  R.Kind = Kind;
  R.DoopMode = DoopMode;
  switch (Kind) {
  case AnalysisKind::CI:
    break;
  case AnalysisKind::CSC:
    R.UseCsc = true;
    R.Csc = Csc;
    if (DoopMode)
      R.Csc.FieldLoad = false; // Datalog cannot express [CutPropLoad].
    break;
  case AnalysisKind::ZipperE:
    R.UseZipper = true;
    R.Zipper = Zipper;
    R.Zipper.K = K;
    R.MakeSelector = [K] { return std::make_unique<KObjSelector>(K); };
    break;
  case AnalysisKind::TwoObj:
    R.MakeSelector = [K] { return std::make_unique<KObjSelector>(K); };
    break;
  case AnalysisKind::TwoType:
    R.MakeSelector = [K] { return std::make_unique<KTypeSelector>(K); };
    break;
  case AnalysisKind::TwoCallSite:
    R.MakeSelector = [K] { return std::make_unique<KCallSiteSelector>(K); };
    break;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// Applies the common "engine=doop|taie" parameter. Doop mode implies the
/// Cut-Shortcut load pattern is off (the paper's Datalog limitation).
bool applyEngineParam(const AnalysisSpec &Spec, AnalysisRecipe &Out,
                      std::string &Error) {
  const std::string *E = Spec.param("engine");
  if (!E)
    return true;
  if (*E == "doop")
    Out.DoopMode = true;
  else if (*E == "taie" || *E == "tai-e")
    Out.DoopMode = false;
  else {
    Error = "unknown engine '" + *E + "' (expected doop or taie)";
    return false;
  }
  if (Out.DoopMode && Out.UseCsc)
    Out.Csc.FieldLoad = false;
  return true;
}

AnalysisRegistry::Factory kindFactory(AnalysisKind Kind) {
  return [Kind](const AnalysisSpec &Spec, AnalysisRecipe &Out,
                std::string &Error) {
    unsigned K = 2;
    ZipperOptions Z;
    CutShortcutOptions C;
    bool SccOn = true; // `scc`: solver cycle elimination, every analysis.
    unsigned Par = 1;  // `par`: parallel sweep lanes, every analysis.
    switch (Kind) {
    case AnalysisKind::CI: {
      static const char *Known[] = {"engine", "scc", "par", nullptr};
      if (!Spec.checkKnownParams(Known, Error))
        return false;
      break;
    }
    case AnalysisKind::CSC: {
      static const char *Known[] = {"engine", "scc", "par", "field",
                                    "load",   "container", "local",
                                    nullptr};
      if (!Spec.checkKnownParams(Known, Error) ||
          !Spec.paramBool("field", C.FieldStore, Error) ||
          !Spec.paramBool("load", C.FieldLoad, Error) ||
          !Spec.paramBool("container", C.Container, Error) ||
          !Spec.paramBool("local", C.LocalFlow, Error))
        return false;
      break;
    }
    case AnalysisKind::ZipperE: {
      static const char *Known[] = {"engine", "scc", "par", "k",
                                    "pv",     "cf",  "floor", nullptr};
      double Floor = -1;
      if (!Spec.checkKnownParams(Known, Error) ||
          !Spec.paramUnsigned("k", K, Error) ||
          !Spec.paramDouble("pv", Z.CostFraction, Error) ||
          !Spec.paramDouble("cf", Z.CostFraction, Error) ||
          !Spec.paramDouble("floor", Floor, Error))
        return false;
      if (Floor >= 0)
        Z.MinCostFloor = static_cast<uint64_t>(Floor);
      break;
    }
    case AnalysisKind::TwoObj:
    case AnalysisKind::TwoType:
    case AnalysisKind::TwoCallSite: {
      static const char *Known[] = {"engine", "scc", "par", "k", nullptr};
      if (!Spec.checkKnownParams(Known, Error) ||
          !Spec.paramUnsigned("k", K, Error))
        return false;
      break;
    }
    }
    if (!Spec.paramBool("scc", SccOn, Error))
      return false;
    if (!Spec.paramUnsigned("par", Par, Error))
      return false;
    if (Par > 64) {
      // Oversubscription beyond this is never useful and a typo like
      // par=1000 should fail loudly rather than spawn a thread herd.
      Error = "parameter 'par' expects at most 64 lanes, got '" +
              *Spec.param("par") + "'";
      return false;
    }
    Out = makeKindRecipe(Kind, K, /*DoopMode=*/false, Z, C);
    Out.Name = Spec.Text;
    Out.CycleElimination = SccOn;
    Out.ParallelSweeps = Par;
    return applyEngineParam(Spec, Out, Error);
  };
}

} // namespace

void AnalysisRegistry::add(std::string Name, std::string Description,
                           Factory F) {
  Entries[lowered(Name)] = Entry{std::move(Description), std::move(F)};
}

void AnalysisRegistry::addAlias(std::string Alias, std::string Canonical) {
  Aliases[lowered(Alias)] = lowered(Canonical);
}

bool AnalysisRegistry::known(std::string_view Name) const {
  std::string N = lowered(Name);
  return Entries.count(N) != 0 || Aliases.count(N) != 0;
}

std::string AnalysisRegistry::resolveName(std::string_view Name) const {
  std::string N = lowered(Name);
  auto It = Aliases.find(N);
  return It == Aliases.end() ? N : It->second;
}

std::vector<std::pair<std::string, std::string>>
AnalysisRegistry::list() const {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const auto &[Name, E] : Entries)
    Out.emplace_back(Name, E.Description);
  return Out; // std::map iteration is already name-sorted.
}

bool AnalysisRegistry::build(const AnalysisSpec &Spec, AnalysisRecipe &Out,
                             std::string &Error) const {
  std::string Name = Spec.Name;
  auto AliasIt = Aliases.find(Name);
  if (AliasIt != Aliases.end())
    Name = AliasIt->second;
  auto It = Entries.find(Name);
  if (It == Entries.end()) {
    Error = "unknown analysis '" + Spec.Name + "' (known:";
    for (const auto &[N, E] : Entries) {
      (void)E;
      Error += " " + N;
    }
    Error += ")";
    return false;
  }
  return It->second.F(Spec, Out, Error);
}

bool AnalysisRegistry::build(std::string_view SpecText, AnalysisRecipe &Out,
                             std::string &Error) const {
  AnalysisSpec Spec;
  if (!parseAnalysisSpec(SpecText, Spec, Error))
    return false;
  return build(Spec, Out, Error);
}

AnalysisRegistry AnalysisRegistry::withBuiltins() {
  AnalysisRegistry R;
  size_t Count = 0;
  const AnalysisNameEntry *Table = analysisNameTable(Count);
  for (size_t I = 0; I != Count; ++I) {
    const AnalysisNameEntry &E = Table[I];
    R.add(E.Canonical, E.Description, kindFactory(E.Kind));
    for (const char *A : E.Aliases)
      if (A)
        R.addAlias(A, E.Canonical);
  }
  // The paper's Doop variant of Cut-Shortcut as a first-class name.
  Factory CscF = kindFactory(AnalysisKind::CSC);
  R.add("csc-doop",
        "Cut-Shortcut, Doop variant (full re-propagation, no load pattern)",
        [CscF](const AnalysisSpec &Spec, AnalysisRecipe &Out,
               std::string &Error) {
          if (!CscF(Spec, Out, Error))
            return false;
          Out.DoopMode = true;
          Out.Csc.FieldLoad = false;
          return true;
        });
  return R;
}

const AnalysisRegistry &AnalysisRegistry::global() {
  static const AnalysisRegistry R = withBuiltins();
  return R;
}
