//===- Report.cpp - JSON serialization of analysis runs -------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/Report.h"

using namespace csc;

void csc::appendMetricsJson(JsonWriter &J, const PrecisionMetrics &M) {
  J.beginObject()
      .kv("fail_casts", M.FailCasts)
      .kv("reach_methods", M.ReachMethods)
      .kv("poly_calls", M.PolyCalls)
      .kv("call_edges", M.CallEdges)
      .endObject();
}

void csc::appendStatsJson(JsonWriter &J, const SolverStats &S) {
  // Only fixpoint-determined counters are serialized: the report must be
  // a pure function of the computed result, byte-identical across solver
  // scheduling choices (worklist order, cycle elimination on/off).
  // Scheduling diagnostics — WorklistPops, the SccStats block — are
  // surfaced via `cscpta --stats` instead.
  J.beginObject()
      .kv("pts_insertions", S.PtsInsertions)
      .kv("pfg_edges", S.PFGEdges)
      .kv("call_edges_cs", S.CallEdgesCS)
      .kv("pointers", S.NumPtrs)
      .kv("cs_objects", S.NumCSObjs)
      .kv("contexts", S.NumContexts)
      .kv("reachable_cs", S.ReachableCS)
      .kv("reachable_ci", S.ReachableCI)
      .endObject();
}

void csc::appendRunJson(JsonWriter &J, const AnalysisRun &Run,
                        bool IncludeTimings) {
  J.beginObject();
  J.kv("analysis", Run.Name);
  J.kv("status", runStatusName(Run.Status));
  if (Run.Status == RunStatus::SpecError) {
    J.kv("error", Run.Error);
    J.endObject();
    return;
  }
  if (IncludeTimings)
    J.key("timings")
        .beginObject()
        .kv("pre_ms", Run.Timings.PreMs)
        .kv("main_ms", Run.Timings.MainMs)
        .kv("total_ms", Run.Timings.TotalMs)
        .kv("pre_from_cache", Run.PreFromCache)
        .endObject();
  if (Run.completed()) {
    J.key("metrics");
    appendMetricsJson(J, Run.Metrics);
    J.key("stats");
    appendStatsJson(J, Run.Result.Stats);
  }
  if (Run.Csc.CutStores || Run.Csc.CutReturns || Run.Csc.ShortcutEdges)
    J.key("cut_shortcut")
        .beginObject()
        .kv("cut_stores", Run.Csc.CutStores)
        .kv("cut_returns", Run.Csc.CutReturns)
        .kv("shortcut_edges", Run.Csc.ShortcutEdges)
        .kv("involved_methods", static_cast<uint64_t>(Run.Csc.Involved.size()))
        .endObject();
  if (Run.SelectedMethods)
    J.key("zipper")
        .beginObject()
        .kv("selected_methods", Run.SelectedMethods)
        .endObject();
  J.endObject();
}

void csc::appendProgramSummaryJson(JsonWriter &J, const Program &P) {
  J.beginObject()
      .kv("classes", P.numTypes())
      .kv("fields", P.numFields())
      .kv("methods", P.numMethods())
      .kv("vars", P.numVars())
      .kv("stmts", P.numStmts())
      .kv("alloc_sites", P.numObjs())
      .kv("call_sites", P.numCallSites())
      .endObject();
}

std::string csc::runJson(const AnalysisRun &Run) {
  JsonWriter J;
  appendRunJson(J, Run);
  return J.take();
}
