//===- BatchExecutor.cpp - Parallel batch analysis engine -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/BatchExecutor.h"

#include "client/Report.h"
#include "ir/Printer.h"
#include "store/ResultStore.h"
#include "support/JsonParse.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace csc;

//===----------------------------------------------------------------------===//
// Program fingerprint
//===----------------------------------------------------------------------===//

uint64_t csc::programFingerprint(const Program &P) {
  // FNV-1a over the printed IR: stable across how the program was built
  // (files, inline source, IRBuilder) and cheap relative to one solve.
  std::string Text = printProgram(P);
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

uint64_t ResultCache::entryBytes(const std::string &Key, const Value &V) {
  // Estimated resident cost: the strings dominate; the constant stands in
  // for list/map node and bookkeeping overhead.
  return Key.size() + V.RunJson.size() + V.Error.size() + 64;
}

void ResultCache::evictOverBudgetLocked() {
  if (Budget == 0)
    return;
  while (Bytes > Budget && !Lru.empty()) {
    const auto &[Key, V] = Lru.back();
    Bytes -= entryBytes(Key, V);
    Index.erase(Key);
    Lru.pop_back();
    ++Evictions;
  }
}

void ResultCache::setByteBudget(uint64_t BytesIn) {
  std::lock_guard<std::mutex> G(M);
  Budget = BytesIn;
  evictOverBudgetLocked();
}

uint64_t ResultCache::byteBudget() const {
  std::lock_guard<std::mutex> G(M);
  return Budget;
}

bool ResultCache::lookup(const std::string &Key, Value &Out) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  Out = It->second->second;
  return true;
}

void ResultCache::store(const std::string &Key, Value V) {
  std::lock_guard<std::mutex> G(M);
  if (Index.count(Key))
    return; // first writer wins on a race
  Bytes += entryBytes(Key, V);
  Lru.emplace_front(Key, std::move(V));
  Index.emplace(Key, Lru.begin());
  evictOverBudgetLocked();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> G(M);
  return Hits;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> G(M);
  return Misses;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> G(M);
  return Evictions;
}

uint64_t ResultCache::bytesUsed() const {
  std::lock_guard<std::mutex> G(M);
  return Bytes;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> G(M);
  return Lru.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> G(M);
  Lru.clear();
  Index.clear();
  Bytes = 0;
  Hits = Misses = Evictions = 0;
}

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

namespace {

bool isAbsolutePath(const std::string &P) {
  return !P.empty() && P[0] == '/';
}

std::string joinPath(const std::string &Base, const std::string &Rel) {
  if (Base.empty() || isAbsolutePath(Rel))
    return Rel;
  if (Base.back() == '/')
    return Base + Rel;
  return Base + "/" + Rel;
}

bool manifestError(std::string &Error, size_t EntryIdx,
                   const std::string &Msg) {
  Error = "manifest: entry " + std::to_string(EntryIdx) + ": " + Msg;
  return false;
}

} // namespace

bool csc::parseBatchManifest(const std::string &Text,
                             std::vector<BatchEntry> &Out,
                             std::string &Error,
                             const std::string &BaseDir) {
  Out.clear();
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error)) {
    Error = "manifest: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "manifest: top level must be an object with an \"entries\" "
            "array";
    return false;
  }
  const JsonValue *Entries = Doc.get("entries");
  if (!Entries || !Entries->isArray()) {
    Error = "manifest: missing \"entries\" array";
    return false;
  }
  if (Entries->Arr.empty()) {
    Error = "manifest: \"entries\" is empty";
    return false;
  }
  for (size_t I = 0; I != Entries->Arr.size(); ++I) {
    const JsonValue &E = Entries->Arr[I];
    if (!E.isObject())
      return manifestError(Error, I, "must be an object");
    BatchEntry B;

    const JsonValue *Prog = E.get("program");
    if (!Prog)
      return manifestError(Error, I, "missing \"program\"");
    if (Prog->isString()) {
      B.Files.push_back(joinPath(BaseDir, Prog->Str));
    } else if (Prog->isArray()) {
      for (const JsonValue &F : Prog->Arr) {
        if (!F.isString())
          return manifestError(Error, I,
                               "\"program\" array must hold strings");
        B.Files.push_back(joinPath(BaseDir, F.Str));
      }
      if (B.Files.empty())
        return manifestError(Error, I, "\"program\" array is empty");
    } else {
      return manifestError(
          Error, I, "\"program\" must be a path or an array of paths");
    }

    const JsonValue *Specs = E.get("specs");
    if (!Specs)
      return manifestError(Error, I, "missing \"specs\"");
    if (Specs->isString()) {
      B.Specs = splitSpecList(Specs->Str);
    } else if (Specs->isArray()) {
      for (const JsonValue &S : Specs->Arr) {
        if (!S.isString())
          return manifestError(Error, I,
                               "\"specs\" array must hold strings");
        B.Specs.push_back(S.Str);
      }
    } else {
      return manifestError(
          Error, I,
          "\"specs\" must be an array of specs or a comma-separated "
          "string");
    }
    if (B.Specs.empty())
      return manifestError(Error, I, "\"specs\" is empty");

    if (const JsonValue *L = E.get("label")) {
      if (!L->isString())
        return manifestError(Error, I, "\"label\" must be a string");
      B.Label = L->Str;
    }
    Out.push_back(std::move(B));
  }
  return true;
}

bool csc::loadBatchManifest(const std::string &Path,
                            std::vector<BatchEntry> &Out,
                            std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open manifest '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string BaseDir;
  size_t Slash = Path.rfind('/');
  if (Slash != std::string::npos)
    BaseDir = Path.substr(0, Slash);
  return parseBatchManifest(Buf.str(), Out, Error, BaseDir);
}

//===----------------------------------------------------------------------===//
// BatchReport
//===----------------------------------------------------------------------===//

bool BatchReport::anyLoadFailed() const {
  for (const BatchEntryResult &E : Entries)
    if (E.LoadFailed)
      return true;
  return false;
}

bool BatchReport::anySpecError() const {
  for (const BatchEntryResult &E : Entries)
    for (const BatchRunResult &R : E.Runs)
      if (R.Status == RunStatus::SpecError)
        return true;
  return false;
}

bool BatchReport::anyExhausted() const {
  for (const BatchEntryResult &E : Entries)
    for (const BatchRunResult &R : E.Runs)
      if (R.Status == RunStatus::BudgetExhausted)
        return true;
  return false;
}

size_t BatchReport::totalRuns() const {
  size_t N = 0;
  for (const BatchEntryResult &E : Entries)
    N += E.Runs.size();
  return N;
}

int BatchReport::exitCode() const {
  if (anyLoadFailed() || anySpecError())
    return 1;
  if (anyExhausted())
    return 3;
  return 0;
}

std::string BatchReport::aggregateJson() const {
  JsonWriter J;
  J.beginObject();
  J.kv("tool", "cscpta-batch");
  J.key("entries").beginArray();
  for (const BatchEntryResult &E : Entries) {
    J.beginObject();
    J.kv("label", E.Label);
    J.key("files").beginArray();
    for (const std::string &F : E.Files)
      J.value(F);
    J.endArray();
    if (E.LoadFailed) {
      J.kv("ok", false);
      J.key("errors").beginArray();
      for (const std::string &D : E.LoadDiags)
        J.value(D);
      J.endArray();
      J.endObject();
      continue;
    }
    J.kv("ok", true);
    // A fully skipped entry (sharded run) never loads its program.
    if (E.ProgramJson.empty())
      J.key("program").raw("null");
    else
      J.key("program").raw(E.ProgramJson);
    J.key("runs").beginArray();
    for (const BatchRunResult &R : E.Runs) {
      if (R.Skipped)
        J.beginObject().kv("analysis", R.Spec).kv("skipped", true)
            .endObject();
      else
        J.raw(R.RunJson);
    }
    J.endArray();
    J.endObject();
  }
  J.endArray().endObject();
  return J.take();
}

//===----------------------------------------------------------------------===//
// BatchExecutor
//===----------------------------------------------------------------------===//

BatchExecutor::ProgramSlot &BatchExecutor::slotFor(const BatchEntry &E) {
  // The slot key is the program's *identity* (how it is named), not its
  // content — content dedup happens at the result cache via the
  // fingerprint. Identity keying keeps "load once per distinct program"
  // cheap and lets repeats reuse sessions across run() calls.
  std::string Key;
  if (E.Session) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "session:%p",
                  static_cast<const void *>(E.Session.get()));
    Key = Buf;
  } else if (!E.Files.empty()) {
    Key = "files:";
    for (const std::string &F : E.Files) {
      Key += F;
      Key += '\n';
    }
  } else {
    Key = "source:" + E.SourceName + "\n" + E.SourceText;
  }
  std::lock_guard<std::mutex> G(SlotM);
  for (ProgramSlot &S : Slots)
    if (S.Key == Key)
      return S;
  Slots.emplace_back(std::move(Key));
  return Slots.back();
}

void BatchExecutor::loadSlot(ProgramSlot &Slot, const BatchEntry &E) {
  if (E.Session) {
    Slot.S = E.Session;
  } else {
    AnalysisSession::Options SO;
    SO.WithStdlib = Opts.WithStdlib;
    SO.WorkBudget = Opts.WorkBudget;
    SO.TimeBudgetMs = Opts.TimeBudgetMs;
    if (!E.Files.empty())
      Slot.S = AnalysisSession::fromFiles(E.Files, std::move(SO),
                                          Slot.Diags);
    else
      Slot.S = AnalysisSession::fromSource(
          E.SourceName.empty() ? "<batch>" : E.SourceName, E.SourceText,
          std::move(SO), Slot.Diags);
  }
  if (!Slot.S)
    return;
  Slot.Fingerprint = programFingerprint(Slot.S->program());
  if (Opts.Store)
    Slot.RegistryFp = registryFingerprint(Slot.S->registry());
  JsonWriter J;
  appendProgramSummaryJson(J, Slot.S->program());
  Slot.ProgramJson = J.take();
}

void BatchExecutor::runSpec(ProgramSlot &Slot, const std::string &Spec,
                            BatchRunResult &Out) {
  Timer T;
  Out.Spec = Spec;
  // Canonicalize for the cache key, resolving registry aliases so
  // "k-type;k=3" and "2type;k=3" share one key (and one report name).
  AnalysisSpec Parsed;
  std::string CanonError;
  bool HaveCanon = parseAnalysisSpec(Spec, Parsed, CanonError);
  if (HaveCanon) {
    Parsed.Name = Slot.S->registry().resolveName(Parsed.Name);
    Out.Canonical = canonicalSpec(Parsed);
  }

  std::string Key;
  ResultCache::Value V;
  if (HaveCanon) {
    // The key must cover everything the result depends on: program
    // content, canonical spec, the budgets of the session that runs it
    // (pre-built sessions may carry budgets differing from the
    // executor's), and the registry resolving the spec (a custom
    // Options::Registry may bind the same name to a different recipe;
    // its address identifies it within this process) — otherwise
    // entries differing in any of these could cross-serve results.
    const AnalysisSession::Options &SO = Slot.S->options();
    char Cfg[96];
    std::snprintf(Cfg, sizeof(Cfg), "|w%llu|t%.17g|r%p|",
                  static_cast<unsigned long long>(SO.WorkBudget),
                  SO.TimeBudgetMs,
                  static_cast<const void *>(&Slot.S->registry()));
    Key = std::to_string(Slot.Fingerprint) + Cfg + Out.Canonical;
    if (Cache.lookup(Key, V)) {
      Out.FromCache = true;
      Out.Status = V.Status;
      Out.Error = V.Error;
      Out.Metrics = V.Metrics;
      Out.RunJson = V.RunJson;
      Out.WallMs = T.elapsedMs();
      return;
    }
  }

  // L1 miss: consult the persistent store before solving. A hit also
  // populates the in-process cache so repeats stay off the disk.
  std::string SKey;
  if (HaveCanon && Opts.Store) {
    const AnalysisSession::Options &SO = Slot.S->options();
    SKey = resultStoreKey(Slot.Fingerprint, SO.WorkBudget, SO.TimeBudgetMs,
                          Slot.RegistryFp, Out.Canonical);
    StoredResult SR;
    if (Opts.Store->lookup(SKey, SR)) {
      Out.FromStore = true;
      Out.Status = SR.Status;
      Out.Error = SR.Error;
      Out.Metrics = SR.Metrics;
      Out.RunJson = SR.RunJson;
      Out.WallMs = T.elapsedMs();
      V.Status = SR.Status;
      V.Error = SR.Error;
      V.Metrics = SR.Metrics;
      V.RunJson = SR.RunJson;
      Cache.store(Key, std::move(V));
      return;
    }
  }

  // Miss (or an unparsable spec, which the session turns into a
  // SpecError run with the same diagnostic): compute, then publish.
  AnalysisRun R = Slot.S->run(Spec);
  // Serialize under the canonical name so the report is independent of
  // which spelling computed first — required for byte-identical
  // aggregates when duplicate work races under --jobs.
  if (HaveCanon)
    R.Name = Out.Canonical;
  Out.Status = R.Status;
  Out.Error = R.Error;
  Out.Metrics = R.Metrics;
  {
    JsonWriter J;
    appendRunJson(J, R, /*IncludeTimings=*/false);
    Out.RunJson = J.take();
  }
  Out.WallMs = T.elapsedMs();
  // Wall-clock exhaustion is nondeterministic (a transiently loaded
  // machine can time out a run that would normally complete); caching it
  // would poison every later identical request in the process. Work
  // -budget exhaustion (TimeBudgetMs == 0) is exact and safe to cache.
  bool CacheableOutcome = R.Status != RunStatus::BudgetExhausted ||
                          Slot.S->options().TimeBudgetMs == 0;
  if (HaveCanon && CacheableOutcome) {
    V.Status = R.Status;
    V.Error = R.Error;
    V.Metrics = R.Metrics;
    V.RunJson = Out.RunJson;
    Cache.store(Key, std::move(V));
    // Publish to the persistent store under the same cacheability rule,
    // except spec errors: they carry no result and cost nothing to
    // rediagnose, so the store keeps only completed analyses.
    if (Opts.Store && !SKey.empty() && R.Status != RunStatus::SpecError)
      Opts.Store->publish(SKey, storedFromRun(R, Out.RunJson));
  }
}

BatchReport BatchExecutor::run(const std::vector<BatchEntry> &Entries) {
  Timer Wall;
  uint64_t Hits0 = Cache.hits(), Misses0 = Cache.misses();
  ResultStore::Counters Store0;
  if (Opts.Store)
    Store0 = Opts.Store->counters();

  BatchReport Report;
  Report.Jobs = std::max(1u, Opts.Jobs);
  Report.Entries.resize(Entries.size());

  // Pre-assign result slots so completion order cannot reorder output.
  std::vector<ProgramSlot *> EntrySlots(Entries.size());
  for (size_t I = 0; I != Entries.size(); ++I) {
    Report.Entries[I].Label =
        !Entries[I].Label.empty() ? Entries[I].Label
        : !Entries[I].Files.empty()
            ? Entries[I].Files.front()
            : (Entries[I].SourceName.empty() ? "<batch>"
                                             : Entries[I].SourceName);
    Report.Entries[I].Files = Entries[I].Files;
    Report.Entries[I].Runs.resize(Entries[I].Specs.size());
    EntrySlots[I] = &slotFor(Entries[I]);
  }

  // SpecIdx == npos loads the program without running anything (entries
  // with an empty spec list still need their load outcome).
  constexpr size_t LoadOnly = static_cast<size_t>(-1);
  auto RunTask = [this, &Entries, &Report, &EntrySlots](size_t EntryIdx,
                                                        size_t SpecIdx) {
    ProgramSlot &Slot = *EntrySlots[EntryIdx];
    std::call_once(Slot.Once,
                   [&] { loadSlot(Slot, Entries[EntryIdx]); });
    if (!Slot.S || SpecIdx == LoadOnly)
      return; // load outcome is sequenced below
    runSpec(Slot, Entries[EntryIdx].Specs[SpecIdx],
            Report.Entries[EntryIdx].Runs[SpecIdx]);
  };

  // Select this shard's tasks. Spec tasks are numbered in manifest order
  // (the same numbering in every process over one manifest, which is
  // what partitions a worker fleet); skipped tasks are recorded, and
  // load-only entries are skipped entirely in shard mode — a worker has
  // no use for a load outcome it will not report.
  unsigned ShardCount = std::max(1u, Opts.ShardCount);
  unsigned ShardIndex = Opts.ShardIndex % ShardCount;
  std::vector<std::pair<size_t, size_t>> Tasks;
  std::vector<bool> Attempted(Entries.size(), false);
  size_t Linear = 0;
  for (size_t E = 0; E != Entries.size(); ++E) {
    if (Entries[E].Specs.empty()) {
      if (ShardCount == 1) {
        Tasks.emplace_back(E, LoadOnly);
        Attempted[E] = true;
      }
      continue;
    }
    for (size_t S = 0; S != Entries[E].Specs.size(); ++S) {
      if (Linear++ % ShardCount == ShardIndex) {
        Tasks.emplace_back(E, S);
        Attempted[E] = true;
      } else {
        Report.Entries[E].Runs[S].Spec = Entries[E].Specs[S];
        Report.Entries[E].Runs[S].Skipped = true;
      }
    }
  }

  if (Report.Jobs <= 1) {
    for (const auto &[E, S] : Tasks)
      RunTask(E, S);
  } else {
    ThreadPool Pool(Report.Jobs);
    for (const auto &[E, S] : Tasks)
      Pool.submit([&RunTask, E = E, S = S] { RunTask(E, S); });
    Pool.wait();
  }

  // Sequence load outcomes (deterministic: slot diags don't depend on
  // which task loaded the program). Entries this shard never touched
  // keep their default state — all-skipped runs, no load verdict.
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (!Attempted[I])
      continue;
    ProgramSlot &Slot = *EntrySlots[I];
    if (!Slot.S) {
      Report.Entries[I].LoadFailed = true;
      Report.Entries[I].LoadDiags = Slot.Diags;
      Report.Entries[I].Runs.clear();
    } else {
      Report.Entries[I].ProgramJson = Slot.ProgramJson;
    }
  }

  Report.WallMs = Wall.elapsedMs();
  Report.CacheHits = Cache.hits() - Hits0;
  Report.CacheMisses = Cache.misses() - Misses0;
  if (Opts.Store) {
    ResultStore::Counters Store1 = Opts.Store->counters();
    Report.StoreHits = Store1.Hits - Store0.Hits;
    Report.StoreMisses = Store1.Misses - Store0.Misses;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Worker fleet
//===----------------------------------------------------------------------===//

unsigned csc::runWorkerFleet(const WorkerFleetOptions &O) {
  unsigned Workers = std::max(1u, O.Workers);
#ifndef _WIN32
  unsigned Failures = 0;
  std::vector<pid_t> Pids;
  for (unsigned W = 0; W != Workers; ++W) {
    std::vector<std::string> Args;
    Args.push_back(O.Exe);
    Args.push_back("--batch");
    Args.push_back(O.ManifestPath);
    Args.push_back("--store");
    Args.push_back(O.StoreDir);
    char Shard[48];
    std::snprintf(Shard, sizeof(Shard), "%u/%u", W, Workers);
    Args.push_back("--worker-shard");
    Args.push_back(Shard);
    Args.push_back("--jobs");
    Args.push_back(std::to_string(std::max(1u, O.Jobs)));
    if (!O.WithStdlib)
      Args.push_back("--no-stdlib");
    if (O.WorkBudget != ~0ULL) {
      Args.push_back("--work-budget");
      Args.push_back(std::to_string(O.WorkBudget));
    }
    if (O.TimeBudgetMs > 0) {
      char Budget[40];
      std::snprintf(Budget, sizeof(Budget), "%.17g", O.TimeBudgetMs);
      Args.push_back("--budget-ms");
      Args.push_back(Budget);
    }
    if (O.Verbose)
      Args.push_back("--stats");

    pid_t Pid = ::fork();
    if (Pid == 0) {
      std::vector<char *> Argv;
      Argv.reserve(Args.size() + 1);
      for (std::string &A : Args)
        Argv.push_back(&A[0]);
      Argv.push_back(nullptr);
      ::execv(O.Exe.c_str(), Argv.data());
      _exit(127); // exec failed; the parent counts the failure
    }
    if (Pid < 0) {
      ++Failures; // fork failed: the coordinator computes this shard
      continue;
    }
    Pids.push_back(Pid);
  }
  for (pid_t Pid : Pids) {
    int St = 0;
    if (::waitpid(Pid, &St, 0) < 0) {
      ++Failures;
      continue;
    }
    // Exit 3 (budget exhausted) is a clean outcome: the worker ran and
    // published what it could.
    if (!WIFEXITED(St) ||
        (WEXITSTATUS(St) != 0 && WEXITSTATUS(St) != 3))
      ++Failures;
  }
  return Failures;
#else
  return Workers; // no fork/exec: the caller computes everything itself
#endif
}
