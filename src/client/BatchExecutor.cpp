//===- BatchExecutor.cpp - Parallel batch analysis engine -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "client/BatchExecutor.h"

#include "client/Report.h"
#include "ir/Printer.h"
#include "store/ResultStore.h"
#include "support/Hash.h"
#include "support/JsonParse.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace csc;

//===----------------------------------------------------------------------===//
// Program fingerprint
//===----------------------------------------------------------------------===//

uint64_t csc::programFingerprint(const Program &P) {
  // FNV-1a over the printed IR: stable across how the program was built
  // (files, inline source, IRBuilder) and cheap relative to one solve.
  std::string Text = printProgram(P);
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

uint64_t ResultCache::entryBytes(const std::string &Key, const Value &V) {
  // Estimated resident cost: the strings dominate; the constant stands in
  // for list/map node and bookkeeping overhead.
  return Key.size() + V.RunJson.size() + V.Error.size() + 64;
}

void ResultCache::evictOverBudgetLocked() {
  if (Budget == 0)
    return;
  while (Bytes > Budget && !Lru.empty()) {
    const auto &[Key, V] = Lru.back();
    Bytes -= entryBytes(Key, V);
    Index.erase(Key);
    Lru.pop_back();
    ++Evictions;
  }
}

void ResultCache::setByteBudget(uint64_t BytesIn) {
  std::lock_guard<std::mutex> G(M);
  Budget = BytesIn;
  evictOverBudgetLocked();
}

uint64_t ResultCache::byteBudget() const {
  std::lock_guard<std::mutex> G(M);
  return Budget;
}

bool ResultCache::lookup(const std::string &Key, Value &Out) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // refresh recency
  Out = It->second->second;
  return true;
}

void ResultCache::store(const std::string &Key, Value V) {
  std::lock_guard<std::mutex> G(M);
  if (Index.count(Key))
    return; // first writer wins on a race
  Bytes += entryBytes(Key, V);
  Lru.emplace_front(Key, std::move(V));
  Index.emplace(Key, Lru.begin());
  evictOverBudgetLocked();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> G(M);
  return Hits;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> G(M);
  return Misses;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> G(M);
  return Evictions;
}

uint64_t ResultCache::bytesUsed() const {
  std::lock_guard<std::mutex> G(M);
  return Bytes;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> G(M);
  return Lru.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> G(M);
  Lru.clear();
  Index.clear();
  Bytes = 0;
  Hits = Misses = Evictions = 0;
}

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

namespace {

bool isAbsolutePath(const std::string &P) {
  return !P.empty() && P[0] == '/';
}

std::string joinPath(const std::string &Base, const std::string &Rel) {
  if (Base.empty() || isAbsolutePath(Rel))
    return Rel;
  if (Base.back() == '/')
    return Base + Rel;
  return Base + "/" + Rel;
}

bool manifestError(std::string &Error, size_t EntryIdx,
                   const std::string &Msg) {
  Error = "manifest: entry " + std::to_string(EntryIdx) + ": " + Msg;
  return false;
}

} // namespace

bool csc::parseBatchManifest(const std::string &Text,
                             std::vector<BatchEntry> &Out,
                             std::string &Error,
                             const std::string &BaseDir) {
  Out.clear();
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error)) {
    Error = "manifest: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "manifest: top level must be an object with an \"entries\" "
            "array";
    return false;
  }
  const JsonValue *Entries = Doc.get("entries");
  if (!Entries || !Entries->isArray()) {
    Error = "manifest: missing \"entries\" array";
    return false;
  }
  if (Entries->Arr.empty()) {
    Error = "manifest: \"entries\" is empty";
    return false;
  }
  for (size_t I = 0; I != Entries->Arr.size(); ++I) {
    const JsonValue &E = Entries->Arr[I];
    if (!E.isObject())
      return manifestError(Error, I, "must be an object");
    BatchEntry B;

    const JsonValue *Prog = E.get("program");
    if (!Prog)
      return manifestError(Error, I, "missing \"program\"");
    if (Prog->isString()) {
      B.Files.push_back(joinPath(BaseDir, Prog->Str));
    } else if (Prog->isArray()) {
      for (const JsonValue &F : Prog->Arr) {
        if (!F.isString())
          return manifestError(Error, I,
                               "\"program\" array must hold strings");
        B.Files.push_back(joinPath(BaseDir, F.Str));
      }
      if (B.Files.empty())
        return manifestError(Error, I, "\"program\" array is empty");
    } else {
      return manifestError(
          Error, I, "\"program\" must be a path or an array of paths");
    }

    const JsonValue *Specs = E.get("specs");
    if (!Specs)
      return manifestError(Error, I, "missing \"specs\"");
    if (Specs->isString()) {
      B.Specs = splitSpecList(Specs->Str);
    } else if (Specs->isArray()) {
      for (const JsonValue &S : Specs->Arr) {
        if (!S.isString())
          return manifestError(Error, I,
                               "\"specs\" array must hold strings");
        B.Specs.push_back(S.Str);
      }
    } else {
      return manifestError(
          Error, I,
          "\"specs\" must be an array of specs or a comma-separated "
          "string");
    }
    if (B.Specs.empty())
      return manifestError(Error, I, "\"specs\" is empty");

    if (const JsonValue *L = E.get("label")) {
      if (!L->isString())
        return manifestError(Error, I, "\"label\" must be a string");
      B.Label = L->Str;
    }
    Out.push_back(std::move(B));
  }
  return true;
}

bool csc::loadBatchManifest(const std::string &Path,
                            std::vector<BatchEntry> &Out,
                            std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open manifest '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string BaseDir;
  size_t Slash = Path.rfind('/');
  if (Slash != std::string::npos)
    BaseDir = Path.substr(0, Slash);
  return parseBatchManifest(Buf.str(), Out, Error, BaseDir);
}

//===----------------------------------------------------------------------===//
// BatchReport
//===----------------------------------------------------------------------===//

bool BatchReport::anyLoadFailed() const {
  for (const BatchEntryResult &E : Entries)
    if (E.LoadFailed)
      return true;
  return false;
}

bool BatchReport::anySpecError() const {
  for (const BatchEntryResult &E : Entries)
    for (const BatchRunResult &R : E.Runs)
      if (R.Status == RunStatus::SpecError)
        return true;
  return false;
}

bool BatchReport::anyExhausted() const {
  for (const BatchEntryResult &E : Entries)
    for (const BatchRunResult &R : E.Runs)
      if (R.Status == RunStatus::BudgetExhausted)
        return true;
  return false;
}

size_t BatchReport::totalRuns() const {
  size_t N = 0;
  for (const BatchEntryResult &E : Entries)
    N += E.Runs.size();
  return N;
}

int BatchReport::exitCode() const {
  if (anyLoadFailed() || anySpecError())
    return 1;
  if (anyExhausted())
    return 3;
  return 0;
}

std::string BatchReport::aggregateJson() const {
  JsonWriter J;
  J.beginObject();
  J.kv("tool", "cscpta-batch");
  J.key("entries").beginArray();
  for (const BatchEntryResult &E : Entries) {
    J.beginObject();
    J.kv("label", E.Label);
    J.key("files").beginArray();
    for (const std::string &F : E.Files)
      J.value(F);
    J.endArray();
    if (E.LoadFailed) {
      J.kv("ok", false);
      J.key("errors").beginArray();
      for (const std::string &D : E.LoadDiags)
        J.value(D);
      J.endArray();
      J.endObject();
      continue;
    }
    J.kv("ok", true);
    // A fully skipped entry (sharded run) never loads its program.
    if (E.ProgramJson.empty())
      J.key("program").raw("null");
    else
      J.key("program").raw(E.ProgramJson);
    J.key("runs").beginArray();
    for (const BatchRunResult &R : E.Runs) {
      if (R.Skipped)
        J.beginObject().kv("analysis", R.Spec).kv("skipped", true)
            .endObject();
      else
        J.raw(R.RunJson);
    }
    J.endArray();
    J.endObject();
  }
  J.endArray().endObject();
  return J.take();
}

//===----------------------------------------------------------------------===//
// BatchExecutor
//===----------------------------------------------------------------------===//

BatchExecutor::ProgramSlot &BatchExecutor::slotFor(const BatchEntry &E) {
  // The slot key is the program's *identity* (how it is named), not its
  // content — content dedup happens at the result cache via the
  // fingerprint. Identity keying keeps "load once per distinct program"
  // cheap and lets repeats reuse sessions across run() calls.
  std::string Key;
  if (E.Session) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "session:%p",
                  static_cast<const void *>(E.Session.get()));
    Key = Buf;
  } else if (!E.Files.empty()) {
    Key = "files:";
    for (const std::string &F : E.Files) {
      Key += F;
      Key += '\n';
    }
  } else {
    Key = "source:" + E.SourceName + "\n" + E.SourceText;
  }
  std::lock_guard<std::mutex> G(SlotM);
  for (ProgramSlot &S : Slots)
    if (S.Key == Key)
      return S;
  Slots.emplace_back(std::move(Key));
  return Slots.back();
}

void BatchExecutor::loadSlot(ProgramSlot &Slot, const BatchEntry &E) {
  if (E.Session) {
    Slot.S = E.Session;
  } else {
    AnalysisSession::Options SO;
    SO.WithStdlib = Opts.WithStdlib;
    SO.WorkBudget = Opts.WorkBudget;
    SO.TimeBudgetMs = Opts.TimeBudgetMs;
    if (!E.Files.empty())
      Slot.S = AnalysisSession::fromFiles(E.Files, std::move(SO),
                                          Slot.Diags);
    else
      Slot.S = AnalysisSession::fromSource(
          E.SourceName.empty() ? "<batch>" : E.SourceName, E.SourceText,
          std::move(SO), Slot.Diags);
  }
  if (!Slot.S)
    return;
  Slot.Fingerprint = programFingerprint(Slot.S->program());
  if (Opts.Store)
    Slot.RegistryFp = registryFingerprint(Slot.S->registry());
  JsonWriter J;
  appendProgramSummaryJson(J, Slot.S->program());
  Slot.ProgramJson = J.take();
}

void BatchExecutor::runSpec(ProgramSlot &Slot, const std::string &Spec,
                            BatchRunResult &Out) {
  Timer T;
  Out.Spec = Spec;
  // Canonicalize for the cache key, resolving registry aliases so
  // "k-type;k=3" and "2type;k=3" share one key (and one report name).
  AnalysisSpec Parsed;
  std::string CanonError;
  bool HaveCanon = parseAnalysisSpec(Spec, Parsed, CanonError);
  if (HaveCanon) {
    Parsed.Name = Slot.S->registry().resolveName(Parsed.Name);
    Out.Canonical = canonicalSpec(Parsed);
  }

  std::string Key;
  ResultCache::Value V;
  if (HaveCanon) {
    // The key must cover everything the result depends on: program
    // content, canonical spec, the budgets of the session that runs it
    // (pre-built sessions may carry budgets differing from the
    // executor's), and the registry resolving the spec (a custom
    // Options::Registry may bind the same name to a different recipe;
    // its address identifies it within this process) — otherwise
    // entries differing in any of these could cross-serve results.
    const AnalysisSession::Options &SO = Slot.S->options();
    char Cfg[96];
    std::snprintf(Cfg, sizeof(Cfg), "|w%llu|t%.17g|r%p|",
                  static_cast<unsigned long long>(SO.WorkBudget),
                  SO.TimeBudgetMs,
                  static_cast<const void *>(&Slot.S->registry()));
    Key = std::to_string(Slot.Fingerprint) + Cfg + Out.Canonical;
    if (Cache.lookup(Key, V)) {
      Out.FromCache = true;
      Out.Status = V.Status;
      Out.Error = V.Error;
      Out.Metrics = V.Metrics;
      Out.RunJson = V.RunJson;
      Out.WallMs = T.elapsedMs();
      return;
    }
  }

  // L1 miss: consult the persistent store before solving. A hit also
  // populates the in-process cache so repeats stay off the disk.
  std::string SKey;
  if (HaveCanon && Opts.Store) {
    const AnalysisSession::Options &SO = Slot.S->options();
    SKey = resultStoreKey(Slot.Fingerprint, SO.WorkBudget, SO.TimeBudgetMs,
                          Slot.RegistryFp, Out.Canonical);
    StoredResult SR;
    if (Opts.Store->lookup(SKey, SR)) {
      Out.FromStore = true;
      Out.StoreKey = SKey;
      Out.Status = SR.Status;
      Out.Error = SR.Error;
      Out.Metrics = SR.Metrics;
      Out.RunJson = SR.RunJson;
      Out.WallMs = T.elapsedMs();
      V.Status = SR.Status;
      V.Error = SR.Error;
      V.Metrics = SR.Metrics;
      V.RunJson = SR.RunJson;
      Cache.store(Key, std::move(V));
      return;
    }
  }

  // Miss (or an unparsable spec, which the session turns into a
  // SpecError run with the same diagnostic): compute, then publish.
  AnalysisRun R = Slot.S->run(Spec);
  // Serialize under the canonical name so the report is independent of
  // which spelling computed first — required for byte-identical
  // aggregates when duplicate work races under --jobs.
  if (HaveCanon)
    R.Name = Out.Canonical;
  Out.Status = R.Status;
  Out.Error = R.Error;
  Out.Metrics = R.Metrics;
  {
    JsonWriter J;
    appendRunJson(J, R, /*IncludeTimings=*/false);
    Out.RunJson = J.take();
  }
  Out.WallMs = T.elapsedMs();
  // Wall-clock exhaustion is nondeterministic (a transiently loaded
  // machine can time out a run that would normally complete); caching it
  // would poison every later identical request in the process. Work
  // -budget exhaustion (TimeBudgetMs == 0) is exact and safe to cache.
  bool CacheableOutcome = R.Status != RunStatus::BudgetExhausted ||
                          Slot.S->options().TimeBudgetMs == 0;
  if (HaveCanon && CacheableOutcome) {
    V.Status = R.Status;
    V.Error = R.Error;
    V.Metrics = R.Metrics;
    V.RunJson = Out.RunJson;
    Cache.store(Key, std::move(V));
    // Publish to the persistent store under the same cacheability rule,
    // except spec errors: they carry no result and cost nothing to
    // rediagnose, so the store keeps only completed analyses.
    if (Opts.Store && !SKey.empty() && R.Status != RunStatus::SpecError &&
        Opts.Store->publish(SKey, storedFromRun(R, Out.RunJson)))
      Out.StoreKey = SKey;
  }
}

BatchReport BatchExecutor::run(const std::vector<BatchEntry> &Entries) {
  return runImpl(Entries, nullptr);
}

BatchReport BatchExecutor::run(const std::vector<BatchEntry> &Entries,
                               const std::vector<size_t> &OnlyTasks) {
  return runImpl(Entries, &OnlyTasks);
}

BatchReport BatchExecutor::runImpl(const std::vector<BatchEntry> &Entries,
                                   const std::vector<size_t> *Only) {
  Timer Wall;
  uint64_t Hits0 = Cache.hits(), Misses0 = Cache.misses();
  ResultStore::Counters Store0;
  if (Opts.Store)
    Store0 = Opts.Store->counters();

  BatchReport Report;
  Report.Jobs = std::max(1u, Opts.Jobs);
  Report.Entries.resize(Entries.size());

  // Pre-assign result slots so completion order cannot reorder output.
  std::vector<ProgramSlot *> EntrySlots(Entries.size());
  for (size_t I = 0; I != Entries.size(); ++I) {
    Report.Entries[I].Label =
        !Entries[I].Label.empty() ? Entries[I].Label
        : !Entries[I].Files.empty()
            ? Entries[I].Files.front()
            : (Entries[I].SourceName.empty() ? "<batch>"
                                             : Entries[I].SourceName);
    Report.Entries[I].Files = Entries[I].Files;
    Report.Entries[I].Runs.resize(Entries[I].Specs.size());
    EntrySlots[I] = &slotFor(Entries[I]);
  }

  // SpecIdx == npos loads the program without running anything (entries
  // with an empty spec list still need their load outcome).
  constexpr size_t LoadOnly = static_cast<size_t>(-1);
  auto RunTask = [this, &Entries, &Report, &EntrySlots](size_t EntryIdx,
                                                        size_t SpecIdx) {
    ProgramSlot &Slot = *EntrySlots[EntryIdx];
    std::call_once(Slot.Once,
                   [&] { loadSlot(Slot, Entries[EntryIdx]); });
    if (!Slot.S || SpecIdx == LoadOnly)
      return; // load outcome is sequenced below
    runSpec(Slot, Entries[EntryIdx].Specs[SpecIdx],
            Report.Entries[EntryIdx].Runs[SpecIdx]);
  };

  // Select this process's tasks. Spec tasks are numbered in manifest
  // order (the same numbering in every process over one manifest, which
  // is what partitions a worker fleet — static shards and ledger task
  // ids alike); skipped tasks are recorded, and load-only entries are
  // skipped entirely in shard/filtered mode — a worker has no use for a
  // load outcome it will not report.
  unsigned ShardCount = std::max(1u, Opts.ShardCount);
  unsigned ShardIndex = Opts.ShardIndex % ShardCount;
  std::vector<std::pair<size_t, size_t>> Tasks;
  std::vector<bool> Attempted(Entries.size(), false);
  size_t Linear = 0;
  for (size_t E = 0; E != Entries.size(); ++E) {
    if (Entries[E].Specs.empty()) {
      if (ShardCount == 1 && !Only) {
        Tasks.emplace_back(E, LoadOnly);
        Attempted[E] = true;
      }
      continue;
    }
    for (size_t S = 0; S != Entries[E].Specs.size(); ++S) {
      bool Mine = Only ? std::find(Only->begin(), Only->end(), Linear) !=
                             Only->end()
                       : Linear % ShardCount == ShardIndex;
      ++Linear;
      if (Mine) {
        Tasks.emplace_back(E, S);
        Attempted[E] = true;
      } else {
        Report.Entries[E].Runs[S].Spec = Entries[E].Specs[S];
        Report.Entries[E].Runs[S].Skipped = true;
      }
    }
  }

  if (Report.Jobs <= 1) {
    for (const auto &[E, S] : Tasks)
      RunTask(E, S);
  } else {
    ThreadPool Pool(Report.Jobs);
    for (const auto &[E, S] : Tasks)
      Pool.submit([&RunTask, E = E, S = S] { RunTask(E, S); });
    Pool.wait();
  }

  // Sequence load outcomes (deterministic: slot diags don't depend on
  // which task loaded the program). Entries this shard never touched
  // keep their default state — all-skipped runs, no load verdict.
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (!Attempted[I])
      continue;
    ProgramSlot &Slot = *EntrySlots[I];
    if (!Slot.S) {
      Report.Entries[I].LoadFailed = true;
      Report.Entries[I].LoadDiags = Slot.Diags;
      Report.Entries[I].Runs.clear();
    } else {
      Report.Entries[I].ProgramJson = Slot.ProgramJson;
    }
  }

  Report.WallMs = Wall.elapsedMs();
  Report.CacheHits = Cache.hits() - Hits0;
  Report.CacheMisses = Cache.misses() - Misses0;
  if (Opts.Store) {
    ResultStore::Counters Store1 = Opts.Store->counters();
    Report.StoreHits = Store1.Hits - Store0.Hits;
    Report.StoreMisses = Store1.Misses - Store0.Misses;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Task numbering + batch identity
//===----------------------------------------------------------------------===//

size_t csc::countBatchTasks(const std::vector<BatchEntry> &Entries) {
  size_t N = 0;
  for (const BatchEntry &E : Entries)
    N += E.Specs.size();
  return N;
}

uint64_t csc::batchFingerprint(const std::vector<BatchEntry> &Entries) {
  // Everything that shapes task numbering or task content, with NUL
  // separators for unambiguity. Paths are part of identity: two
  // manifests naming different files are different batches even if the
  // file contents happen to match.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](const std::string &S) {
    H = fnv1a64(S.data(), S.size(), H);
    H = fnv1a64("\0", 1, H);
  };
  for (const BatchEntry &E : Entries) {
    Mix(E.Label);
    for (const std::string &F : E.Files)
      Mix(F);
    Mix(E.SourceName);
    Mix(E.SourceText);
    for (const std::string &S : E.Specs)
      Mix(S);
    Mix("");
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Pull worker
//===----------------------------------------------------------------------===//

namespace {

/// Environment fault hooks for the chaos tests — consulted only inside
/// the pull-worker loop, never by a coordinator or plain batch, so an
/// injected fault can kill workers without poisoning the in-process
/// drain that makes the final aggregate correct anyway:
///
///   CSC_FLEET_TEST_KILL_TASK=<id>     raise(SIGKILL) on leasing task id
///   CSC_FLEET_TEST_KILL_ATTEMPTS=<n>  ...only while attempt <= n
///                                     (unset: every attempt)
///   CSC_FLEET_TEST_STOP_TASK=<id>     raise(SIGSTOP) on leasing task id
///   CSC_FLEET_TEST_SLOW_MS=<ms>       sleep before running each task
///
/// The hooks fire at a controlled point — after acquire() returned, so
/// never while holding the ledger flock.
bool envTaskMatches(const char *Var, uint32_t Task) {
  const char *V = std::getenv(Var);
  return V && std::strtoul(V, nullptr, 10) == Task;
}

uint64_t envMs(const char *Var) {
  const char *V = std::getenv(Var);
  return V ? std::strtoull(V, nullptr, 10) : 0;
}

} // namespace

int csc::runPullWorker(const std::vector<BatchEntry> &Entries,
                       const BatchExecutor::Options &ExecOpts,
                       const std::string &LedgerPath,
                       uint64_t ExpectFingerprint) {
#ifndef _WIN32
  TaskLedger::Options LO;
  LO.Path = LedgerPath;
  TaskLedger Ledger(std::move(LO));
  TaskLedger::Config Cfg;
  if (!Ledger.config(Cfg, ExpectFingerprint))
    return 2; // absent, unreadable, or some other batch's ledger
  if (Cfg.TaskCount != countBatchTasks(Entries))
    return 2;

  // Linear task id -> (entry, spec) — needed to find the store key the
  // completed run reports back onto the lease.
  std::vector<std::pair<size_t, size_t>> TaskMap;
  TaskMap.reserve(Cfg.TaskCount);
  for (size_t E = 0; E != Entries.size(); ++E)
    for (size_t S = 0; S != Entries[E].Specs.size(); ++S)
      TaskMap.emplace_back(E, S);

  BatchExecutor::Options EO = ExecOpts;
  EO.ShardIndex = 0;
  EO.ShardCount = 1; // pull mode replaces static sharding outright
  BatchExecutor Ex(EO);
  uint64_t Wid = static_cast<uint64_t>(::getpid());

  while (true) {
    TaskLedger::Lease L;
    uint64_t RetryInMs = 0;
    switch (Ledger.acquire(Wid, L, RetryInMs)) {
    case TaskLedger::AcquireStatus::Drained:
      return 0;
    case TaskLedger::AcquireStatus::Error:
      return 2; // the supervisor observes the exit and compensates
    case TaskLedger::AcquireStatus::Retry:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min<uint64_t>(RetryInMs, 250)));
      continue;
    case TaskLedger::AcquireStatus::Acquired:
      break;
    }

    if (envTaskMatches("CSC_FLEET_TEST_KILL_TASK", L.Task)) {
      uint64_t Upto = envMs("CSC_FLEET_TEST_KILL_ATTEMPTS");
      if (Upto == 0 || L.Attempt <= Upto)
        ::raise(SIGKILL);
    }
    if (envTaskMatches("CSC_FLEET_TEST_STOP_TASK", L.Task))
      ::raise(SIGSTOP); // hang un-renewed until the TTL reclaims us
    if (uint64_t Slow = envMs("CSC_FLEET_TEST_SLOW_MS"))
      std::this_thread::sleep_for(std::chrono::milliseconds(Slow));

    // Heartbeat at TTL/3 for the whole solve: a healthy long run never
    // loses its lease; a renewal that fails means the lease was already
    // reclaimed, and the harmless worst case is a duplicate publish of
    // identical bytes.
    std::mutex Hm;
    std::condition_variable Hcv;
    bool HDone = false;
    std::thread Heart([&] {
      std::unique_lock<std::mutex> G(Hm);
      auto Period =
          std::chrono::milliseconds(std::max(1u, Cfg.LeaseTtlMs / 3));
      while (!Hcv.wait_for(G, Period, [&] { return HDone; }))
        Ledger.renew(L, Wid);
    });

    BatchReport R = Ex.run(Entries, {static_cast<size_t>(L.Task)});

    {
      std::lock_guard<std::mutex> G(Hm);
      HDone = true;
    }
    Hcv.notify_one();
    Heart.join();

    // A failed program load clears the entry's Runs vector, so the slot
    // may not exist: complete with an empty key (nothing was published)
    // and let the coordinator's drain re-derive the load diagnostic —
    // a load failure is an ordinary task outcome, not a worker fault.
    auto [E, S] = TaskMap[L.Task];
    const auto &Runs = R.Entries[E].Runs;
    Ledger.complete(L, Wid,
                    S < Runs.size() ? Runs[S].StoreKey : std::string());
  }
#else
  (void)Entries;
  (void)ExecOpts;
  (void)LedgerPath;
  (void)ExpectFingerprint;
  return 2;
#endif
}

//===----------------------------------------------------------------------===//
// Fleet supervisor
//===----------------------------------------------------------------------===//

std::string FleetReport::exitCauseSummary() const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "%u exited clean, %u exited nonzero, %u died by signal, "
                "%u stragglers killed",
                CleanExits, FailedExits, Signaled, StragglersKilled);
  return Buf;
}

#ifndef _WIN32
namespace {

/// waitpid that retries on EINTR: a signal delivered to the coordinator
/// (timers, terminal signals with handlers) must not be mistaken for a
/// worker failure or lose a child's exit status.
pid_t waitpidEintr(pid_t Pid, int *St, int Flags) {
  while (true) {
    pid_t R = ::waitpid(Pid, St, Flags);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

uint64_t steadyMs() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
          .count());
}

} // namespace
#endif

FleetReport csc::runWorkerFleet(const WorkerFleetOptions &O) {
  FleetReport R;
#ifndef _WIN32
  std::string LedgerPath = O.StoreDir + "/ledger.bin";
  TaskLedger::Options LO;
  LO.Path = LedgerPath;
  TaskLedger Ledger(std::move(LO));
  TaskLedger::Config Cfg;
  Cfg.BatchFingerprint = O.BatchFingerprint;
  Cfg.TaskCount = O.TaskCount;
  Cfg.LeaseTtlMs = std::max(1u, O.LeaseTtlMs);
  Cfg.MaxAttempts = std::max(1u, O.MaxAttempts);
  if (O.TaskCount == 0 || !Ledger.create(Cfg))
    return R; // LedgerOk false: the caller computes everything itself
  R.LedgerOk = true;

  unsigned Workers = std::max(1u, O.Workers);
  auto Spawn = [&]() -> pid_t {
    std::vector<std::string> Args;
    Args.push_back(O.Exe);
    Args.push_back("--batch");
    Args.push_back(O.ManifestPath);
    Args.push_back("--store");
    Args.push_back(O.StoreDir);
    Args.push_back("--worker-pull");
    Args.push_back("--jobs");
    Args.push_back(std::to_string(std::max(1u, O.Jobs)));
    if (!O.WithStdlib)
      Args.push_back("--no-stdlib");
    if (O.WorkBudget != ~0ULL) {
      Args.push_back("--work-budget");
      Args.push_back(std::to_string(O.WorkBudget));
    }
    if (O.TimeBudgetMs > 0) {
      char Budget[40];
      std::snprintf(Budget, sizeof(Budget), "%.17g", O.TimeBudgetMs);
      Args.push_back("--budget-ms");
      Args.push_back(Budget);
    }
    if (O.Verbose)
      Args.push_back("--stats");
    pid_t Pid = ::fork();
    if (Pid == 0) {
      std::vector<char *> Argv;
      Argv.reserve(Args.size() + 1);
      for (std::string &A : Args)
        Argv.push_back(&A[0]);
      Argv.push_back(nullptr);
      ::execv(O.Exe.c_str(), Argv.data());
      _exit(127); // exec failed; the parent observes the exit code
    }
    return Pid;
  };

  std::vector<pid_t> Live;
  for (unsigned W = 0; W != Workers; ++W) {
    pid_t Pid = Spawn();
    if (Pid < 0) {
      ++R.ForkFailures; // the coordinator will drain the difference
      continue;
    }
    Live.push_back(Pid);
    ++R.Spawned;
  }

  // Supervision loop: reap deaths (releasing their leases immediately),
  // respawn while undone work and budget remain, and watch for stalls.
  // Renewed leases count as progress, so only a fleet that is neither
  // completing nor heartbeating (all hung/stopped) trips the stall
  // exit — at which point the coordinator drains in-process.
  const uint64_t StallMs = 2ull * Cfg.LeaseTtlMs + 2000;
  uint64_t LastProgress = steadyMs();
  uint64_t LastSig = ~0ULL;
  while (true) {
    while (!Live.empty()) {
      int St = 0;
      pid_t Pid = waitpidEintr(-1, &St, WNOHANG);
      if (Pid <= 0)
        break; // no exits pending (or no children at all)
      Live.erase(std::remove(Live.begin(), Live.end(), Pid), Live.end());
      std::string Cause;
      if (WIFEXITED(St)) {
        int Code = WEXITSTATUS(St);
        if (Code == 0 || Code == 3) // budget exhaustion is a clean run
          ++R.CleanExits;
        else {
          ++R.FailedExits;
          Cause = "exit " + std::to_string(Code);
        }
      } else if (WIFSIGNALED(St)) {
        ++R.Signaled;
        Cause = "signal " + std::to_string(WTERMSIG(St));
      }
      if (Cause.empty())
        continue;
      Ledger.noteWorkerDeath(static_cast<uint64_t>(Pid), Cause);
      TaskLedger::Summary Sum;
      if (Ledger.summary(Sum) && !Sum.drained() &&
          R.Respawns < O.RestartBudget) {
        pid_t NewPid = Spawn();
        if (NewPid < 0) {
          ++R.ForkFailures;
        } else {
          Live.push_back(NewPid);
          ++R.Spawned;
          ++R.Respawns;
        }
      }
    }

    Ledger.reclaimExpired();
    TaskLedger::Summary Sum;
    if (!Ledger.summary(Sum)) {
      R.LedgerOk = false; // ledger went unreadable mid-fleet
      break;
    }
    if (Sum.drained() || Live.empty())
      break;

    // Progress signature: completion counts, state mix, and lease
    // expiries (renewals move them forward). Each count is hashed in
    // full width — bit-packing would alias fields once a batch exceeds
    // a few thousand tasks.
    TaskLedger::Config SnapCfg;
    std::vector<TaskLedger::Task> Tasks;
    uint64_t Sig = 1469598103934665603ULL;
    for (uint64_t Count : {(uint64_t)Sum.Done, (uint64_t)Sum.Quarantined,
                           (uint64_t)Sum.Pending, (uint64_t)Sum.Leased})
      Sig = fnv1a64(&Count, sizeof(Count), Sig);
    if (Ledger.snapshot(SnapCfg, Tasks))
      for (const TaskLedger::Task &T : Tasks)
        Sig = fnv1a64(&T.LeaseExpiryMs, sizeof(T.LeaseExpiryMs), Sig);
    uint64_t Now = steadyMs();
    if (Sig != LastSig) {
      LastSig = Sig;
      LastProgress = Now;
    } else if (Now - LastProgress > StallMs) {
      break; // nobody is completing or even heartbeating — give up
    }
    ::usleep(20000);
  }

  // Give surviving workers a moment to observe the drained ledger and
  // exit on their own; whoever remains (SIGSTOPped or hung) is killed —
  // their leases are already expired or irrelevant.
  uint64_t GraceEnd = steadyMs() + 2000;
  while (!Live.empty() && steadyMs() < GraceEnd) {
    int St = 0;
    pid_t Pid = waitpidEintr(-1, &St, WNOHANG);
    if (Pid > 0) {
      Live.erase(std::remove(Live.begin(), Live.end(), Pid), Live.end());
      if (WIFEXITED(St) &&
          (WEXITSTATUS(St) == 0 || WEXITSTATUS(St) == 3))
        ++R.CleanExits;
      else if (WIFSIGNALED(St))
        ++R.Signaled;
      else
        ++R.FailedExits;
      continue;
    }
    ::usleep(20000);
  }
  for (pid_t Pid : Live) {
    ::kill(Pid, SIGKILL);
    int St = 0;
    waitpidEintr(Pid, &St, 0);
    ++R.StragglersKilled;
  }

  Ledger.reclaimExpired(); // final accounting: quarantine what expired
  TaskLedger::Config FinalCfg;
  Ledger.snapshot(FinalCfg, R.Tasks);
  Ledger.summary(R.Final);
#else
  (void)O;
#endif
  return R;
}
