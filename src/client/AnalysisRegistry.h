//===- AnalysisRegistry.h - Named, pluggable analyses -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyses as named configurations of the one solver engine, mirroring
/// how Tai-e exposes its analyses. A spec string names an analysis plus
/// optional parameters:
///
///   spec      := name (";" key "=" value)*
///   specList  := spec ("," spec)*
///
/// Examples: "ci", "csc", "csc-doop", "2obj", "k-type;k=3",
/// "zipper-e;pv=0.05", "csc;container=0;engine=doop".
///
/// The registry maps spec names to factories producing an AnalysisRecipe —
/// the selector/plugin/engine-mode wiring the AnalysisSession consumes.
/// Built-in names come from the shared AnalysisNames table; clients may
/// register additional analyses (or override built-ins in a copy).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_ANALYSISREGISTRY_H
#define CSC_CLIENT_ANALYSISREGISTRY_H

#include "client/AnalysisNames.h"
#include "csc/CutShortcutPlugin.h"
#include "pta/ContextSelector.h"
#include "zipper/Zipper.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace csc {

/// A parsed "name;key=value;..." analysis spec.
struct AnalysisSpec {
  std::string Name; ///< Lowercased head.
  std::vector<std::pair<std::string, std::string>> Params; ///< In order.
  std::string Text; ///< The trimmed original spelling.

  /// Value of \p Key or nullptr.
  const std::string *param(std::string_view Key) const;
  /// Typed accessors: leave \p Out untouched and return true when the key
  /// is absent; false (with \p Error set) on a malformed value.
  bool paramUnsigned(std::string_view Key, unsigned &Out,
                     std::string &Error) const;
  bool paramDouble(std::string_view Key, double &Out,
                   std::string &Error) const;
  bool paramBool(std::string_view Key, bool &Out, std::string &Error) const;
  /// Rejects params whose key is not in \p Known (null-terminated array).
  bool checkKnownParams(const char *const *Known, std::string &Error) const;
};

/// Parses one spec. Returns false with \p Error set on malformed input
/// (empty spec, missing name head, parameter without '=', empty or
/// duplicate parameter key). The exact diagnostic strings are documented
/// in docs/CLI.md and pinned by tests/client/SpecErrorTest.cpp.
bool parseAnalysisSpec(std::string_view Text, AnalysisSpec &Out,
                       std::string &Error);

/// The canonical cache spelling of a parsed spec: lowercased name plus
/// params sorted by key ("csc;container=0;engine=doop"). Normalizes
/// case, whitespace, and parameter order; registry aliases are NOT
/// resolved here (this is a registry-free function) — resolve the name
/// through AnalysisRegistry::resolveName first when alias-insensitive
/// keys are needed, as the batch executor's result cache does.
std::string canonicalSpec(const AnalysisSpec &Spec);
/// Parses, then canonicalizes. False with \p Error on a malformed spec.
bool canonicalSpec(std::string_view SpecText, std::string &Out,
                   std::string &Error);

/// Splits a comma-separated spec list ("ci,k-type;k=3,csc"); parameters
/// never contain commas, so this is a plain split with trimming. Empty
/// items are dropped.
std::vector<std::string> splitSpecList(std::string_view ListText);

/// Everything the session needs to run one analysis: the engine mode, an
/// optional context-selector factory (null = context-insensitive), the
/// Cut-Shortcut plugin configuration, and the Zipper-e pre-analysis
/// request. Custom factories may combine the fields freely (e.g. CSC plus
/// a selective selector).
struct AnalysisRecipe {
  std::string Name; ///< Display name (the canonical spec).
  AnalysisKind Kind = AnalysisKind::CI; ///< Informational/compat tag.
  bool DoopMode = false; ///< Full re-propagation engine (Table 1).
  /// Online cycle elimination in the solver (spec parameter `scc`,
  /// default on). Engine-level only: results are identical either way.
  bool CycleElimination = true;
  /// Parallel sweep lanes in the solver (spec parameter `par`, default
  /// 1 = serial). Engine-level only: results and timing-free reports are
  /// byte-identical for every value (SolverOptions::ParallelSweeps).
  unsigned ParallelSweeps = 1;
  bool UseCsc = false;   ///< Attach a CutShortcutPlugin.
  CutShortcutOptions Csc;
  bool UseZipper = false; ///< Run (or reuse) the Zipper-e pre-analysis.
  ZipperOptions Zipper;
  /// Builds the context selector (the inner selector for Zipper recipes);
  /// null means context insensitivity.
  std::function<std::unique_ptr<ContextSelector>()> MakeSelector;
  /// If set (and UseZipper is off), restrict the selector to exactly these
  /// methods via a SelectiveSelector — the §3.4 hybrid-selection knob.
  std::shared_ptr<const std::unordered_set<MethodId>> SelectOnly;
};

/// Builds the canonical recipe for a kind — the single place the
/// selector/plugin/engine wiring of the evaluated analyses lives. Used by
/// the built-in factories and the deprecated RunConfig path alike.
AnalysisRecipe makeKindRecipe(AnalysisKind Kind, unsigned K, bool DoopMode,
                              const ZipperOptions &Zipper,
                              const CutShortcutOptions &Csc);

/// String-keyed analysis factory table.
///
/// Thread-safety: a fully built registry is immutable through its const
/// API — build()/known()/list() are safe from any number of threads
/// (this is how batch tasks resolve specs concurrently). add()/addAlias()
/// mutate and must not race with readers; global() is a const magic
/// static and always safe.
class AnalysisRegistry {
public:
  /// Fills \p Out from \p Spec; returns false with \p Error on bad params.
  using Factory = std::function<bool(const AnalysisSpec &Spec,
                                     AnalysisRecipe &Out,
                                     std::string &Error)>;

  /// Registers (or replaces) an analysis under \p Name (lowercased).
  void add(std::string Name, std::string Description, Factory F);
  /// Registers \p Alias to resolve to \p Canonical.
  void addAlias(std::string Alias, std::string Canonical);

  /// True when \p Name (or an alias, case-insensitively) is registered.
  bool known(std::string_view Name) const;
  /// Resolves an alias (case-insensitively) to its canonical registered
  /// name; returns the lowercased input unchanged when it is not an
  /// alias. The batch executor maps spec names through this before
  /// canonicalSpec() so aliased spellings ("k-type" vs "2type") share
  /// one result-cache key.
  std::string resolveName(std::string_view Name) const;
  /// (name, description) pairs of primary entries, sorted by name.
  std::vector<std::pair<std::string, std::string>> list() const;

  /// Builds a recipe from a parsed spec / a spec string.
  bool build(const AnalysisSpec &Spec, AnalysisRecipe &Out,
             std::string &Error) const;
  bool build(std::string_view SpecText, AnalysisRecipe &Out,
             std::string &Error) const;

  /// A fresh registry preloaded with the built-in analyses.
  static AnalysisRegistry withBuiltins();
  /// The shared default registry (built-ins only).
  static const AnalysisRegistry &global();

private:
  struct Entry {
    std::string Description;
    Factory F;
  };
  std::map<std::string, Entry> Entries;
  std::map<std::string, std::string> Aliases;
};

} // namespace csc

#endif // CSC_CLIENT_ANALYSISREGISTRY_H
