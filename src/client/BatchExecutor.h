//===- BatchExecutor.h - Parallel batch analysis engine ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N analysis specs over M programs concurrently on a work-stealing
/// thread pool, with two layers of sharing:
///
///  * one immutable, verified AnalysisSession per distinct program —
///    loaded once (compute-once under contention) and shared by every
///    spec task over it, including the session's internally synchronized
///    Zipper pre-analysis cache, and
///  * an in-process ResultCache keyed by (program content fingerprint,
///    canonicalized spec) — a repeated (program, spec) pair anywhere in
///    the batch, or across run() calls on one executor, reuses the
///    serialized result instead of re-solving.
///
/// Results are written into pre-assigned slots and sequenced after the
/// pool drains, and the per-run JSON is timing-free, so the aggregate
/// report is byte-identical regardless of --jobs (given deterministic
/// run outcomes — work budgets are exact, wall-clock budgets can flip
/// boundary runs). Wall-clock numbers and cache statistics live on the
/// BatchReport next to the deterministic document, never inside it.
///
/// Thread-safety: one BatchExecutor may be driven from one thread at a
/// time (run() is not reentrant); all internal parallelism is managed by
/// the executor itself on top of the AnalysisSession sharing contract
/// (see AnalysisSession.h).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_BATCHEXECUTOR_H
#define CSC_CLIENT_BATCHEXECUTOR_H

#include "client/AnalysisSession.h"
#include "store/TaskLedger.h"

#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace csc {

class ResultStore;

/// 64-bit FNV-1a hash over the printed program — the program half of the
/// result-cache key. Two programs with identical IR content (regardless
/// of how they were built: files, inline source, IRBuilder) fingerprint
/// identically.
uint64_t programFingerprint(const Program &P);

/// Thread-safe in-process cache of completed analysis results. Values
/// carry everything a report needs (status, metrics, extras, and the
/// deterministic run JSON) — never the PTAResult itself, so a cached
/// batch stays cheap in memory.
///
/// Residency is bounded by an optional byte budget (setByteBudget):
/// entries are kept in least-recently-used order (lookups refresh
/// recency) and evicted oldest-first once the estimated resident size
/// exceeds the budget. The default budget of 0 means unlimited — exactly
/// the pre-budget behavior.
class ResultCache {
public:
  struct Value {
    RunStatus Status = RunStatus::Completed;
    std::string Error; ///< Populated for SpecError.
    PrecisionMetrics Metrics;
    std::string RunJson; ///< Timing-free run report (appendRunJson);
                         ///< carries the cut/shortcut & Zipper extras.
  };

  /// Caps the estimated resident bytes (keys + serialized values + fixed
  /// per-entry overhead); 0 = unlimited. Lowering the budget below the
  /// current usage evicts immediately. An entry larger than the whole
  /// budget is evicted as soon as it is stored — the cache never holds
  /// more than the budget, at the price of such entries never hitting.
  void setByteBudget(uint64_t Bytes);
  uint64_t byteBudget() const;

  /// True (and fills \p Out) when \p Key is cached; counts a hit/miss
  /// and refreshes the entry's recency.
  bool lookup(const std::string &Key, Value &Out);
  /// Stores \p V under \p Key (first writer wins on a race; identical
  /// values by construction, since the key fingerprints the inputs).
  void store(const std::string &Key, Value V);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t bytesUsed() const;
  size_t size() const;
  void clear();

private:
  using LruList = std::list<std::pair<std::string, Value>>;

  static uint64_t entryBytes(const std::string &Key, const Value &V);
  void evictOverBudgetLocked();

  mutable std::mutex M;
  LruList Lru; ///< Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> Index;
  uint64_t Budget = 0; ///< 0 = unlimited.
  uint64_t Bytes = 0;  ///< Estimated resident size of Lru.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

/// One unit of batch work: a program (given as files, inline source, or a
/// pre-built session) plus the specs to run over it.
struct BatchEntry {
  std::string Label;              ///< Display name; defaulted if empty.
  std::vector<std::string> Files; ///< `.jir` paths, or ...
  std::string SourceName;         ///< ... an inline source, or ...
  std::string SourceText;
  std::shared_ptr<AnalysisSession> Session; ///< ... a pre-built session.
  std::vector<std::string> Specs; ///< Analysis specs to run.
};

/// Parses a `--batch` manifest document: {"entries": [{"label"?,
/// "program": <path or [paths]>, "specs": <[specs] or "a,b">}, ...]}.
/// Relative program paths are resolved against \p BaseDir when non-empty.
/// Returns false with a diagnostic in \p Error on malformed input.
bool parseBatchManifest(const std::string &Text,
                        std::vector<BatchEntry> &Out, std::string &Error,
                        const std::string &BaseDir = "");

/// Reads and parses a manifest file; paths resolve relative to it.
bool loadBatchManifest(const std::string &Path,
                       std::vector<BatchEntry> &Out, std::string &Error);

/// The outcome of one (entry, spec) task.
struct BatchRunResult {
  std::string Spec;      ///< As requested in the entry.
  std::string Canonical; ///< Cache spelling (canonicalSpec).
  RunStatus Status = RunStatus::Completed;
  std::string Error;
  PrecisionMetrics Metrics; ///< Valid only when Status == Completed.
  double WallMs = 0;     ///< This task's wall time (~0 on a cache hit).
  bool FromCache = false; ///< Served by the in-process result cache.
  bool FromStore = false; ///< Served by the persistent result store.
  /// True when a sharded run (Options::ShardCount > 1) assigned this
  /// task to another worker: nothing was computed and RunJson is empty.
  bool Skipped = false;
  std::string RunJson; ///< Deterministic per-run report.
  /// The persistent-store key this result lives under — set when the
  /// run was served from the store or published into it; empty
  /// otherwise. Pull workers record it on the task lease so store GC
  /// pins the entry until the coordinator consumes it.
  std::string StoreKey;
};

/// The outcome of one batch entry: the load result plus one
/// BatchRunResult per requested spec (empty when the load failed).
struct BatchEntryResult {
  std::string Label;
  std::vector<std::string> Files;
  bool LoadFailed = false;
  std::vector<std::string> LoadDiags;
  std::string ProgramJson; ///< Program summary (empty when load failed).
  std::vector<BatchRunResult> Runs;
};

/// Everything one BatchExecutor::run produced.
struct BatchReport {
  std::vector<BatchEntryResult> Entries; ///< In input order.
  unsigned Jobs = 1;
  double WallMs = 0;        ///< Whole-batch wall time.
  uint64_t CacheHits = 0;   ///< Result-cache hits during this run.
  uint64_t CacheMisses = 0; ///< Result-cache misses during this run.
  uint64_t StoreHits = 0;   ///< Persistent-store hits during this run.
  uint64_t StoreMisses = 0; ///< Persistent-store misses during this run.

  bool anyLoadFailed() const;
  bool anySpecError() const;
  bool anyExhausted() const;
  size_t totalRuns() const;
  /// 0 ok, 1 load/spec failure, 3 budget exhausted — cscpta conventions.
  int exitCode() const;

  /// The deterministic aggregate document: byte-identical for the same
  /// entries regardless of Jobs or cache state (no wall-clock or cache
  /// fields inside).
  std::string aggregateJson() const;
};

class BatchExecutor {
public:
  struct Options {
    unsigned Jobs = 1;      ///< <= 1 runs inline on the caller's thread.
    bool WithStdlib = true; ///< Prepend the modelled stdlib when loading.
    uint64_t WorkBudget = ~0ULL; ///< Per-run insertion budget.
    double TimeBudgetMs = 0;     ///< Per-run wall budget (0 = unlimited).
    /// Result-cache byte budget (ResultCache::setByteBudget); 0 = unlimited.
    uint64_t CacheBudgetBytes = 0;
    /// Optional persistent L2 under the in-process cache: misses consult
    /// the store before computing, and cacheable computed results are
    /// published back. Shared freely across executors and processes.
    std::shared_ptr<ResultStore> Store;
    /// Shard selection for multi-process batch splitting: this executor
    /// runs only the (entry, spec) tasks whose position in manifest
    /// order satisfies `index % ShardCount == ShardIndex`; the rest are
    /// marked Skipped. ShardCount <= 1 runs everything (the default).
    unsigned ShardIndex = 0;
    unsigned ShardCount = 1;
  };

  BatchExecutor() = default;
  explicit BatchExecutor(Options O) : Opts(std::move(O)) {
    Cache.setByteBudget(Opts.CacheBudgetBytes);
  }

  /// Runs every (entry, spec) pair, loading each distinct program once
  /// and consulting the result cache per pair. Sessions and cache persist
  /// across run() calls on one executor — an identical second batch is
  /// served entirely from cache.
  BatchReport run(const std::vector<BatchEntry> &Entries);

  /// Runs only the (entry, spec) tasks whose linear position in manifest
  /// order appears in \p OnlyTasks (the numbering countBatchTasks
  /// describes — the same numbering shard mode uses); everything else is
  /// marked Skipped. The pull worker's per-lease entry point.
  BatchReport run(const std::vector<BatchEntry> &Entries,
                  const std::vector<size_t> &OnlyTasks);

  const Options &options() const { return Opts; }
  ResultCache &cache() { return Cache; }
  const ResultCache &cache() const { return Cache; }

private:
  /// Compute-once slot for one distinct program (same pattern as the
  /// session's Zipper cache: registered under a lock, loaded inside
  /// call_once outside it).
  struct ProgramSlot {
    explicit ProgramSlot(std::string K) : Key(std::move(K)) {}
    std::string Key;
    std::once_flag Once;
    std::shared_ptr<AnalysisSession> S;
    uint64_t Fingerprint = 0;
    uint64_t RegistryFp = 0; ///< Store-key half; set when a store is on.
    std::vector<std::string> Diags;
    std::string ProgramJson;
  };

  ProgramSlot &slotFor(const BatchEntry &E);
  void loadSlot(ProgramSlot &Slot, const BatchEntry &E);
  void runSpec(ProgramSlot &Slot, const std::string &Spec,
               BatchRunResult &Out);
  BatchReport runImpl(const std::vector<BatchEntry> &Entries,
                      const std::vector<size_t> *Only);

  Options Opts;
  ResultCache Cache;
  std::mutex SlotM; ///< Guards Slots lookups/inserts only.
  // deque: slots must stay address-stable across inserts, and once_flag
  // is neither movable nor copyable.
  std::deque<ProgramSlot> Slots;
};

/// The number of linear (entry, spec) tasks a manifest yields — the
/// task numbering shared by shard mode, run(Entries, OnlyTasks), and
/// the task ledger.
size_t countBatchTasks(const std::vector<BatchEntry> &Entries);

/// Content fingerprint of a parsed manifest (labels, program identity,
/// specs) — the identity guard embedded in a task ledger so a worker
/// handed a ledger from some other batch refuses to run. Independent of
/// the manifest's path or formatting.
uint64_t batchFingerprint(const std::vector<BatchEntry> &Entries);

/// Pull-mode worker loop (`cscpta --worker-pull`): validates the ledger
/// at \p LedgerPath against \p ExpectFingerprint, then acquires leases
/// one at a time, runs each task with a heartbeat renewing the lease,
/// publishes results through \p ExecOpts.Store, and completes the lease
/// with the published store key. Returns a process exit code: 0 when
/// the ledger drained (including "someone else finished everything"),
/// 2 when the ledger was unusable or belongs to a different batch.
int runPullWorker(const std::vector<BatchEntry> &Entries,
                  const BatchExecutor::Options &ExecOpts,
                  const std::string &LedgerPath,
                  uint64_t ExpectFingerprint);

/// How to supervise a fleet of pull-mode cscpta workers over one
/// manifest. Each worker runs `Exe --batch Manifest --store StoreDir
/// --worker-pull ...`, pulling task leases from the ledger at
/// `StoreDir/ledger.bin` and publishing every result into the shared
/// store; the caller then re-runs the batch locally against the warm
/// store to produce the authoritative report.
struct WorkerFleetOptions {
  std::string Exe; ///< cscpta binary to exec (e.g. /proc/self/exe).
  std::string ManifestPath;
  std::string StoreDir;
  unsigned Workers = 2;
  unsigned Jobs = 1; ///< --jobs forwarded to each worker.
  bool WithStdlib = true;
  uint64_t WorkBudget = ~0ULL;
  double TimeBudgetMs = 0;
  bool Verbose = false; ///< Let workers keep their stderr statistics.
  uint64_t BatchFingerprint = 0; ///< batchFingerprint of the manifest.
  uint32_t TaskCount = 0;        ///< countBatchTasks of the manifest.
  uint32_t LeaseTtlMs = 5000;
  uint32_t MaxAttempts = 3; ///< Task quarantine threshold.
  /// Workers respawned beyond the initial fleet before the supervisor
  /// gives up and lets the coordinator drain the remainder in-process.
  unsigned RestartBudget = 16;
};

/// What supervising the fleet observed. Worker failures and quarantines
/// degrade to in-process recomputation by the coordinator — never lost
/// results — so everything here is diagnostic.
struct FleetReport {
  unsigned Spawned = 0;    ///< Processes forked (initial + respawns).
  unsigned Respawns = 0;   ///< Replacements for dead workers.
  unsigned CleanExits = 0; ///< Exit 0 or 3 (budget exhaustion is clean).
  unsigned FailedExits = 0;     ///< Other exit codes.
  unsigned Signaled = 0;        ///< Deaths by signal (crash/kill).
  unsigned StragglersKilled = 0; ///< Alive after drain; SIGKILLed.
  unsigned ForkFailures = 0;
  bool LedgerOk = false; ///< Ledger was created and stayed readable.
  TaskLedger::Summary Final;        ///< Ledger state after the fleet.
  std::vector<TaskLedger::Task> Tasks; ///< Final snapshot (diags live
                                       ///< on quarantined tasks).
  /// Pinned per-cause wording for the fleet stats line, e.g.
  /// "3 exited clean, 1 exited nonzero, 2 died by signal".
  std::string exitCauseSummary() const;
};

/// Creates the task ledger, forks the initial fleet, and supervises it
/// to convergence: dead workers release their leases immediately
/// (observed deaths) or at TTL expiry (hangs), and are respawned while
/// undone work and restart budget remain. Returns once the ledger is
/// drained or the fleet cannot make progress; stragglers still alive
/// after a drained ledger (e.g. SIGSTOPped workers) are killed. On
/// non-POSIX hosts (or when the ledger cannot be created) no workers
/// run — the caller computes everything itself.
FleetReport runWorkerFleet(const WorkerFleetOptions &O);

} // namespace csc

#endif // CSC_CLIENT_BATCHEXECUTOR_H
