//===- ResultView.h - Query API over one analysis result --------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A client-facing query layer over a PTAResult: points-to sets, aliasing,
/// call-site resolution, reachability, and the derived precision clients
/// (may-fail casts, polymorphic sites) — plus name-based lookups
/// ("Class.method.var") so drivers and tools can query without holding
/// raw ids. The view borrows the program and result; both must outlive it.
///
/// Thread-safety: a view is read-only over immutable data — any number
/// of threads may query one view (or distinct views over the same
/// result) concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_CLIENT_RESULTVIEW_H
#define CSC_CLIENT_RESULTVIEW_H

#include "ir/Program.h"
#include "pta/PTAResult.h"

#include <string_view>
#include <vector>

namespace csc {

class ResultView {
public:
  /// Borrows \p P and \p R; both must outlive the view.
  ResultView(const Program &P, const PTAResult &R) : P(P), R(R) {}

  /// The borrowed program / raw result the view queries.
  const Program &program() const { return P; }
  const PTAResult &result() const { return R; }

  //===--------------------------------------------------------------------===
  // Core queries
  //===--------------------------------------------------------------------===

  /// CI-projected points-to set of a variable.
  const PointsToSet &pointsTo(VarId V) const { return R.pt(V); }
  /// Points-to set of an instance field of an abstract object.
  const PointsToSet &pointsTo(ObjId Base, FieldId F) const {
    return R.ptField(Base, F);
  }
  /// True if two variables may point to a common object.
  bool mayAlias(VarId A, VarId B) const { return R.mayAlias(A, B); }

  /// Deduplicated callees resolved at a call site.
  const std::vector<MethodId> &calleesAt(CallSiteId CS) const {
    return R.calleesOf(CS);
  }
  /// Call sites contained in a method, in statement order.
  std::vector<CallSiteId> callSitesIn(MethodId M) const;

  bool isReachable(MethodId M) const { return R.isReachable(M); }
  /// Reachable methods, sorted by id (deterministic order for clients).
  std::vector<MethodId> reachableMethods() const;

  //===--------------------------------------------------------------------===
  // Derived precision clients
  //===--------------------------------------------------------------------===

  /// Reachable cast statements that may fail.
  std::vector<StmtId> mayFailCasts() const;
  /// Reachable virtual call sites with >= 2 resolved targets.
  std::vector<CallSiteId> polyCallSites() const;

  //===--------------------------------------------------------------------===
  // Name-based lookups
  //===--------------------------------------------------------------------===

  /// Finds a method "Class.name" (any arity); InvalidId if absent.
  MethodId findMethod(std::string_view Qualified) const;
  /// Finds a local variable by name within a method; InvalidId if absent.
  VarId findVar(MethodId M, std::string_view Name) const;
  /// Finds a variable "Class.method.var"; InvalidId if absent.
  VarId findVar(std::string_view Qualified) const;

private:
  const Program &P;
  const PTAResult &R;
};

} // namespace csc

#endif // CSC_CLIENT_RESULTVIEW_H
