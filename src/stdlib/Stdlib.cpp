//===- Stdlib.cpp - Modelled standard library -----------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "stdlib/Stdlib.h"

#include "frontend/Parser.h"

using namespace csc;

const char *csc::stdlibSource() {
  return R"JIR(
// ===== Modelled standard library ("JDK") =====
// Collection roots. Kept as abstract classes (not interfaces) so every
// container object has a class chain rooted at Collection / Map, which the
// container pattern's [ColHost] / [MapHost] rules key on.

abstract class Collection {
  abstract method add(e: Object): void;
  abstract method get(): Object;
  abstract method iterator(): Iterator;
}

abstract class Map {
  abstract method put(k: Object, v: Object): void;
  abstract method get(k: Object): Object;
  abstract method keySet(): Collection;
  abstract method values(): Collection;
}

abstract class Iterator {
  abstract method next(): Object;
}

// --- ArrayList: backed by an Object[] ---

class ArrayList extends Collection {
  field data: Object[];
  method init(): void {
    var d: Object[];
    d = new Object[];
    this.data = d;
  }
  method add(e: Object): void {
    var d: Object[];
    d = this.data;
    d[*] = e;
  }
  method get(): Object {
    var d: Object[];
    var r: Object;
    d = this.data;
    r = d[*];
    return r;
  }
  method iterator(): Iterator {
    var it: ArrayListIterator;
    it = new ArrayListIterator;
    dcall it.ArrayListIterator.initIt(this);
    return it;
  }
}

class ArrayListIterator extends Iterator {
  field owner: ArrayList;
  method initIt(list: ArrayList): void {
    this.owner = list;
  }
  method next(): Object {
    var o: ArrayList;
    var d: Object[];
    var r: Object;
    o = this.owner;
    d = o.data;
    r = d[*];
    return r;
  }
}

// --- LinkedList: backed by a chain of nodes ---

class LLNode {
  field value: Object;
  field nextNode: LLNode;
  method initNode(v: Object): void {
    this.value = v;
  }
}

class LinkedList extends Collection {
  field head: LLNode;
  method init(): void {
  }
  method add(e: Object): void {
    var n: LLNode;
    var h: LLNode;
    n = new LLNode;
    dcall n.LLNode.initNode(e);
    h = this.head;
    n.nextNode = h;
    this.head = n;
  }
  method get(): Object {
    var h: LLNode;
    var r: Object;
    h = this.head;
    r = h.value;
    return r;
  }
  method iterator(): Iterator {
    var it: LinkedListIterator;
    it = new LinkedListIterator;
    dcall it.LinkedListIterator.initIt(this);
    return it;
  }
}

class LinkedListIterator extends Iterator {
  field owner: LinkedList;
  field cursor: LLNode;
  method initIt(list: LinkedList): void {
    var h: LLNode;
    this.owner = list;
    h = list.head;
    this.cursor = h;
  }
  method next(): Object {
    var c: LLNode;
    var n: LLNode;
    var r: Object;
    c = this.cursor;
    r = c.value;
    n = c.nextNode;
    this.cursor = n;
    return r;
  }
}

// --- HashSet: array-backed set model ---

class HashSet extends Collection {
  field data: Object[];
  method init(): void {
    var d: Object[];
    d = new Object[];
    this.data = d;
  }
  method add(e: Object): void {
    var d: Object[];
    d = this.data;
    d[*] = e;
  }
  method get(): Object {
    var d: Object[];
    var r: Object;
    d = this.data;
    r = d[*];
    return r;
  }
  method iterator(): Iterator {
    var it: HashSetIterator;
    it = new HashSetIterator;
    dcall it.HashSetIterator.initIt(this);
    return it;
  }
}

class HashSetIterator extends Iterator {
  field owner: HashSet;
  method initIt(set: HashSet): void {
    this.owner = set;
  }
  method next(): Object {
    var o: HashSet;
    var d: Object[];
    var r: Object;
    o = this.owner;
    d = o.data;
    r = d[*];
    return r;
  }
}

// --- HashMap: array of key/value nodes, plus keySet()/values() views ---

class HMNode {
  field key: Object;
  field value: Object;
  field nextNode: HMNode;
  method initNode(k: Object, v: Object): void {
    this.key = k;
    this.value = v;
  }
}

class HashMap extends Map {
  field table: HMNode[];
  method init(): void {
    var t: HMNode[];
    t = new HMNode[];
    this.table = t;
  }
  method put(k: Object, v: Object): void {
    var n: HMNode;
    var t: HMNode[];
    n = new HMNode;
    dcall n.HMNode.initNode(k, v);
    t = this.table;
    t[*] = n;
  }
  method get(k: Object): Object {
    var t: HMNode[];
    var n: HMNode;
    var r: Object;
    t = this.table;
    n = t[*];
    r = n.value;
    return r;
  }
  method keySet(): Collection {
    var ks: KeySetView;
    ks = new KeySetView;
    dcall ks.KeySetView.initView(this);
    return ks;
  }
  method values(): Collection {
    var vs: ValuesView;
    vs = new ValuesView;
    dcall vs.ValuesView.initView(this);
    return vs;
  }
}

// Collection views of a map: host-dependent objects (§3.3.2).

class KeySetView extends Collection {
  field owner: HashMap;
  method initView(m: HashMap): void {
    this.owner = m;
  }
  method add(e: Object): void {
  }
  method get(): Object {
    var m: HashMap;
    var t: HMNode[];
    var n: HMNode;
    var r: Object;
    m = this.owner;
    t = m.table;
    n = t[*];
    r = n.key;
    return r;
  }
  method iterator(): Iterator {
    var it: KeyIterator;
    var m: HashMap;
    m = this.owner;
    it = new KeyIterator;
    dcall it.KeyIterator.initIt(m);
    return it;
  }
}

class ValuesView extends Collection {
  field owner: HashMap;
  method initView(m: HashMap): void {
    this.owner = m;
  }
  method add(e: Object): void {
  }
  method get(): Object {
    var m: HashMap;
    var t: HMNode[];
    var n: HMNode;
    var r: Object;
    m = this.owner;
    t = m.table;
    n = t[*];
    r = n.value;
    return r;
  }
  method iterator(): Iterator {
    var it: ValueIterator;
    var m: HashMap;
    m = this.owner;
    it = new ValueIterator;
    dcall it.ValueIterator.initIt(m);
    return it;
  }
}

class KeyIterator extends Iterator {
  field owner: HashMap;
  method initIt(m: HashMap): void {
    this.owner = m;
  }
  method next(): Object {
    var m: HashMap;
    var t: HMNode[];
    var n: HMNode;
    var r: Object;
    m = this.owner;
    t = m.table;
    n = t[*];
    r = n.key;
    return r;
  }
}

class ValueIterator extends Iterator {
  field owner: HashMap;
  method initIt(m: HashMap): void {
    this.owner = m;
  }
  method next(): Object {
    var m: HashMap;
    var t: HMNode[];
    var n: HMNode;
    var r: Object;
    m = this.owner;
    t = m.table;
    n = t[*];
    r = n.value;
    return r;
  }
}

// --- Strings ---

class String {
}

class StringBuilder {
  field buf: Object;
  method append(s: String): StringBuilder {
    this.buf = s;
    return this;
  }
  method toString(): String {
    var s: String;
    s = new String;
    return s;
  }
}
)JIR";
}

bool csc::loadStdlib(Program &P, std::vector<std::string> &Diags) {
  return parseProgram(P, {{"<stdlib>", stdlibSource()}}, Diags);
}
