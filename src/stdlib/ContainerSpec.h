//===- ContainerSpec.h - Entrance/Exit/Transfer API spec --------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container API specification the paper's container access pattern
/// consumes (§3.3, §4.3): which methods are Entrances (objects flow into a
/// container through parameter k, with an element category), Exits (objects
/// of a category flow out through the return value), and Transfers (host
/// objects transfer from the receiver to the LHS — iterators, map views).
///
/// The paper reports it took one author five hours to specify the JDK's
/// APIs; our modelled library needs the table below. Assumption 1 (complete
/// Entrances/Transfers w.r.t. the modelled containers) holds by
/// construction — the soundness property tests check it.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_STDLIB_CONTAINERSPEC_H
#define CSC_STDLIB_CONTAINERSPEC_H

#include "ir/Program.h"

#include <unordered_map>
#include <vector>

namespace csc {

/// Element categories (the `c` superscripts of Fig. 10): distinguishing map
/// keys from map values from plain collection elements.
enum class ElemCategory : uint8_t { ColValue, MapKey, MapValue };

class ContainerSpec {
public:
  /// Resolves the specification against \p P (after loadStdlib). Entries
  /// whose classes/methods are absent are skipped, so programs without the
  /// stdlib still work (with an empty spec).
  static ContainerSpec forProgram(const Program &P);

  struct EntranceParam {
    uint32_t ParamIdx; ///< Call-argument index; 0 is the receiver.
    ElemCategory Cat;
  };

  bool isEntrance(MethodId M) const { return Entrances.count(M) != 0; }
  const std::vector<EntranceParam> &entranceParams(MethodId M) const {
    static const std::vector<EntranceParam> None;
    auto It = Entrances.find(M);
    return It == Entrances.end() ? None : It->second;
  }

  bool isExit(MethodId M) const { return Exits.count(M) != 0; }
  ElemCategory exitCategory(MethodId M) const { return Exits.at(M); }

  bool isTransfer(MethodId M) const { return Transfers.count(M) != 0; }

  /// True if \p M plays any container role.
  bool isContainerMethod(MethodId M) const {
    return isEntrance(M) || isExit(M) || isTransfer(M);
  }

  /// The host root types for [ColHost] / [MapHost]; InvalidId if the
  /// stdlib is not loaded.
  TypeId collectionType() const { return CollectionTy; }
  TypeId mapType() const { return MapTy; }

  /// True if objects of \p T are container hosts.
  bool isHostType(const Program &P, TypeId T) const {
    return (CollectionTy != InvalidId && P.isSubtype(T, CollectionTy)) ||
           (MapTy != InvalidId && P.isSubtype(T, MapTy));
  }

private:
  std::unordered_map<MethodId, std::vector<EntranceParam>> Entrances;
  std::unordered_map<MethodId, ElemCategory> Exits;
  std::unordered_map<MethodId, bool> Transfers;
  TypeId CollectionTy = InvalidId;
  TypeId MapTy = InvalidId;
};

} // namespace csc

#endif // CSC_STDLIB_CONTAINERSPEC_H
