//===- ContainerSpec.cpp - Entrance/Exit/Transfer API spec ----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "stdlib/ContainerSpec.h"

using namespace csc;

namespace {

/// One row of the specification table.
struct SpecRow {
  const char *Class;
  const char *Method;
  size_t Arity; ///< Excluding the receiver.
  enum RoleKind { Entrance, Exit, Transfer } Role;
  uint32_t ParamIdx;    ///< Entrance only (call-arg index; 0 = receiver).
  ElemCategory Cat;     ///< Entrance/Exit only.
};

constexpr ElemCategory CV = ElemCategory::ColValue;
constexpr ElemCategory MK = ElemCategory::MapKey;
constexpr ElemCategory MV = ElemCategory::MapValue;

const SpecRow Table[] = {
    // Collections: add is the Entrance, get/next are Exits,
    // iterator is a Transfer.
    {"ArrayList", "add", 1, SpecRow::Entrance, 1, CV},
    {"ArrayList", "get", 0, SpecRow::Exit, 0, CV},
    {"ArrayList", "iterator", 0, SpecRow::Transfer, 0, CV},
    {"ArrayListIterator", "next", 0, SpecRow::Exit, 0, CV},

    {"LinkedList", "add", 1, SpecRow::Entrance, 1, CV},
    {"LinkedList", "get", 0, SpecRow::Exit, 0, CV},
    {"LinkedList", "iterator", 0, SpecRow::Transfer, 0, CV},
    {"LinkedListIterator", "next", 0, SpecRow::Exit, 0, CV},

    {"HashSet", "add", 1, SpecRow::Entrance, 1, CV},
    {"HashSet", "get", 0, SpecRow::Exit, 0, CV},
    {"HashSet", "iterator", 0, SpecRow::Transfer, 0, CV},
    {"HashSetIterator", "next", 0, SpecRow::Exit, 0, CV},

    // Maps: put feeds both key and value categories; views and their
    // iterators are host-dependent (§3.3.2).
    {"HashMap", "put", 2, SpecRow::Entrance, 1, MK},
    {"HashMap", "put", 2, SpecRow::Entrance, 2, MV},
    {"HashMap", "get", 1, SpecRow::Exit, 0, MV},
    {"HashMap", "keySet", 0, SpecRow::Transfer, 0, MK},
    {"HashMap", "values", 0, SpecRow::Transfer, 0, MV},
    {"KeySetView", "get", 0, SpecRow::Exit, 0, MK},
    {"KeySetView", "iterator", 0, SpecRow::Transfer, 0, MK},
    {"ValuesView", "get", 0, SpecRow::Exit, 0, MV},
    {"ValuesView", "iterator", 0, SpecRow::Transfer, 0, MV},
    {"KeyIterator", "next", 0, SpecRow::Exit, 0, MK},
    {"ValueIterator", "next", 0, SpecRow::Exit, 0, MV},
};

} // namespace

ContainerSpec ContainerSpec::forProgram(const Program &P) {
  ContainerSpec Spec;
  Spec.CollectionTy = P.typeByName("Collection");
  Spec.MapTy = P.typeByName("Map");
  for (const SpecRow &Row : Table) {
    TypeId T = P.typeByName(Row.Class);
    if (T == InvalidId || !P.type(T).Defined)
      continue;
    MethodId M = P.lookupMethod(T, Row.Method, Row.Arity);
    if (M == InvalidId || P.method(M).IsAbstract)
      continue;
    switch (Row.Role) {
    case SpecRow::Entrance:
      Spec.Entrances[M].push_back({Row.ParamIdx, Row.Cat});
      break;
    case SpecRow::Exit:
      Spec.Exits.emplace(M, Row.Cat);
      break;
    case SpecRow::Transfer:
      Spec.Transfers.emplace(M, true);
      break;
    }
  }
  return Spec;
}
