//===- Stdlib.h - Modelled standard library ---------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modelled "JDK" the analysis ships with: collections backed by real
/// internal pointer flows (backing arrays, linked nodes, hash nodes),
/// iterators and map views (the paper's host-dependent objects, §3.3.2),
/// String and StringBuilder. Written in `.jir` and parsed into the user's
/// program, so context-insensitive analysis of these bodies merges flows
/// exactly like analysis of the real JDK does — which is precisely what the
/// container pattern must untangle.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_STDLIB_STDLIB_H
#define CSC_STDLIB_STDLIB_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace csc {

/// The `.jir` source text of the modelled library.
const char *stdlibSource();

/// Parses the modelled library into \p P (call before parsing user code).
/// Returns false and fills \p Diags on error (which would be a bug).
bool loadStdlib(Program &P, std::vector<std::string> &Diags);

} // namespace csc

#endif // CSC_STDLIB_STDLIB_H
