//===- Json.h - Minimal JSON writer -----------------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON emitter used by the result query layer,
/// the cscpta driver and the bench harnesses. Keys are emitted in call
/// order; numbers use shortest-round-trip-ish %.10g formatting. The writer
/// validates nesting with asserts only — callers are trusted to emit
/// well-formed documents (the unit tests check balance explicitly).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_JSON_H
#define CSC_SUPPORT_JSON_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace csc {

/// Escapes \p S for inclusion in a JSON string literal (no quotes added).
inline std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Streaming JSON document builder.
class JsonWriter {
public:
  JsonWriter &beginObject() {
    beforeValue();
    Out += '{';
    Stack.push_back(false);
    return *this;
  }
  JsonWriter &endObject() {
    assert(!Stack.empty() && !AfterKey);
    Stack.pop_back();
    Out += '}';
    return *this;
  }
  JsonWriter &beginArray() {
    beforeValue();
    Out += '[';
    Stack.push_back(false);
    return *this;
  }
  JsonWriter &endArray() {
    assert(!Stack.empty() && !AfterKey);
    Stack.pop_back();
    Out += ']';
    return *this;
  }

  JsonWriter &key(std::string_view K) {
    assert(!Stack.empty() && !AfterKey);
    comma();
    Out += '"';
    Out += jsonEscape(K);
    Out += "\":";
    AfterKey = true;
    return *this;
  }

  JsonWriter &value(std::string_view V) {
    beforeValue();
    Out += '"';
    Out += jsonEscape(V);
    Out += '"';
    return *this;
  }
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(const std::string &V) {
    return value(std::string_view(V));
  }
  JsonWriter &value(bool V) {
    beforeValue();
    Out += V ? "true" : "false";
    return *this;
  }
  JsonWriter &value(double V) {
    beforeValue();
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.10g", V);
    Out += Buf;
    return *this;
  }
  JsonWriter &value(uint64_t V) {
    beforeValue();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(int64_t V) {
    beforeValue();
    Out += std::to_string(V);
    return *this;
  }
  JsonWriter &value(uint32_t V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &null() {
    beforeValue();
    Out += "null";
    return *this;
  }
  /// Appends \p Json verbatim as one value. The caller guarantees it is a
  /// complete, well-formed JSON value (the batch executor uses this to
  /// splice cached, pre-serialized run reports into aggregate documents).
  JsonWriter &raw(std::string_view Json) {
    beforeValue();
    Out += Json;
    return *this;
  }

  /// Convenience: key + scalar value in one call.
  template <typename T> JsonWriter &kv(std::string_view K, const T &V) {
    key(K);
    return value(V);
  }

  /// True once every container opened has been closed.
  bool balanced() const { return Stack.empty() && !AfterKey; }

  const std::string &str() const {
    assert(balanced());
    return Out;
  }
  std::string take() {
    assert(balanced());
    return std::move(Out);
  }

private:
  void comma() {
    if (!Stack.empty() && Stack.back())
      Out += ',';
    if (!Stack.empty())
      Stack.back() = true;
  }
  void beforeValue() {
    if (AfterKey)
      AfterKey = false;
    else
      comma();
  }

  std::string Out;
  std::vector<bool> Stack; ///< Per container: an element was emitted.
  bool AfterKey = false;
};

} // namespace csc

#endif // CSC_SUPPORT_JSON_H
