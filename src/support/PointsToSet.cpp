//===- PointsToSet.cpp - Hybrid set of abstract object ids ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/PointsToSet.h"

#include <algorithm>

using namespace csc;

bool PointsToSet::insert(uint32_t O) {
  if (!UseBits) {
    if (Small.empty()) {
      // Inline tier: the first few elements live in the object itself,
      // so the typical tiny set never touches the heap.
      uint32_t I = 0;
      while (I < Count && Inline[I] < O)
        ++I;
      if (I < Count && Inline[I] == O)
        return false;
      if (Count < InlineLimit) {
        for (uint32_t J = Count; J > I; --J)
          Inline[J] = Inline[J - 1];
        Inline[I] = O;
        ++Count;
        return true;
      }
      // Overflow: spill the inline elements (plus O) into Small, sized
      // for the full small tier in one allocation.
      Small.reserve(SmallLimit);
      Small.assign(Inline, Inline + InlineLimit);
      Small.insert(Small.begin() + I, O);
      ++Count;
      return true;
    }
    auto It = std::lower_bound(Small.begin(), Small.end(), O);
    if (It != Small.end() && *It == O)
      return false;
    if (Small.size() < SmallLimit) {
      Small.insert(It, O);
      ++Count;
      return true;
    }
    promote();
  }
  size_t Word = O / 64;
  if (Word >= Bits.size())
    Bits.resize(Word + 1, 0);
  uint64_t Mask = 1ULL << (O % 64);
  if (Bits[Word] & Mask)
    return false;
  Bits[Word] |= Mask;
  ++Count;
  return true;
}

bool PointsToSet::contains(uint32_t O) const {
  if (!UseBits) {
    if (Small.empty()) {
      for (uint32_t I = 0; I < Count; ++I)
        if (Inline[I] == O)
          return true;
      return false;
    }
    return std::binary_search(Small.begin(), Small.end(), O);
  }
  size_t Word = O / 64;
  if (Word >= Bits.size())
    return false;
  return (Bits[Word] >> (O % 64)) & 1;
}

void PointsToSet::clear() {
  // O(1): reverting to the small representation empties the word vector
  // (capacity is retained, and vector growth zero-fills re-exposed words),
  // so scratch sets clear for free no matter how large they once were.
  Small.clear();
  Bits.clear();
  UseBits = false;
  Count = 0;
}

void PointsToSet::promote() {
  // Bits is empty here: insert-driven growth keeps it tight and clear()
  // empties it, so Bits.size() is always the exact word extent (max id
  // seen / 64 + 1) — bulk operations never scan stale capacity.
  uint32_t N;
  const uint32_t *Elems = smallData(N);
  UseBits = true;
  if (N != 0) {
    Bits.resize(Elems[N - 1] / 64 + 1, 0);
    for (uint32_t I = 0; I != N; ++I)
      Bits[Elems[I] / 64] |= 1ULL << (Elems[I] % 64);
  }
  Small.clear();
}

std::vector<uint32_t> PointsToSet::toVector() const {
  std::vector<uint32_t> Out;
  Out.reserve(Count);
  forEach([&Out](uint32_t O) { Out.push_back(O); });
  return Out;
}

//===----------------------------------------------------------------------===//
// Word-parallel bulk operations
//===----------------------------------------------------------------------===//

/// The shared union kernel: this |= ((Other ∩ Mask) ∖ Exclude), with new
/// elements reported through DeltaOut. Null Mask/Exclude/DeltaOut skip the
/// respective step. Word-parallel whenever every participating operand is
/// in bitmap representation; small operands fall back to element-at-a-time
/// (they hold at most SmallLimit elements, so the fallback is cheap).
uint32_t PointsToSet::unionImpl(const PointsToSet &Other,
                                const PointsToSet *Mask,
                                const PointsToSet *Exclude,
                                PointsToSet *DeltaOut) {
  if (DeltaOut)
    DeltaOut->clear();
  if (Other.empty() || &Other == this)
    return 0;

  bool WordParallel = Other.UseBits && (!Mask || Mask->UseBits) &&
                      (!Exclude || Exclude->UseBits);
  uint32_t Added = 0;
  if (!WordParallel) {
    Other.forEach([&](uint32_t O) {
      if (Mask && !Mask->contains(O))
        return;
      if (Exclude && Exclude->contains(O))
        return;
      if (insert(O)) {
        ++Added;
        if (DeltaOut)
          DeltaOut->insert(O);
      }
    });
    return Added;
  }

  const size_t Words = Other.Bits.size();
  if (!UseBits) {
    // A masked/excluded union may shrink far below Other's size, so count
    // the incoming elements word-parallel first: if everything fits under
    // the promotion threshold the set stays a small vector (huge bitmaps
    // must not leak into the many tiny sets a run produces). Unmasked
    // unions skip the pre-pass — Other alone already exceeds the limit.
    uint64_t Incoming = Other.Count;
    if (Mask || Exclude) {
      Incoming = 0;
      for (size_t W = 0; W < Words && Count + Incoming <= SmallLimit; ++W) {
        uint64_t In = Other.Bits[W];
        if (Mask)
          In &= Mask->wordAt(W);
        if (Exclude)
          In &= ~Exclude->wordAt(W);
        Incoming += popCount(In);
      }
    }
    if (Count + Incoming <= SmallLimit) {
      for (size_t W = 0; W < Words; ++W) {
        uint64_t In = Other.Bits[W];
        if (Mask)
          In &= Mask->wordAt(W);
        if (Exclude)
          In &= ~Exclude->wordAt(W);
        while (In) {
          uint32_t O = static_cast<uint32_t>(W * 64 + countTrailingZeros(In));
          In &= In - 1;
          if (insert(O)) {
            ++Added;
            if (DeltaOut)
              DeltaOut->insert(O);
          }
        }
      }
      return Added;
    }
    promote();
  }

  if (Bits.size() < Words)
    Bits.resize(Words, 0);
  for (size_t W = 0; W < Words; ++W) {
    uint64_t In = Other.Bits[W];
    if (!In)
      continue;
    if (Mask)
      In &= Mask->wordAt(W);
    if (Exclude)
      In &= ~Exclude->wordAt(W);
    uint64_t New = In & ~Bits[W];
    if (!New)
      continue;
    Bits[W] |= New;
    Added += popCount(New);
    if (DeltaOut) {
      uint64_t Rest = New;
      while (Rest) {
        DeltaOut->insert(
            static_cast<uint32_t>(W * 64 + countTrailingZeros(Rest)));
        Rest &= Rest - 1;
      }
    }
  }
  Count += Added;
  return Added;
}

uint32_t PointsToSet::unionWith(const PointsToSet &Other) {
  return unionImpl(Other, nullptr, nullptr, nullptr);
}

uint32_t PointsToSet::unionWith(const PointsToSet &Other,
                                PointsToSet &DeltaOut) {
  return unionImpl(Other, nullptr, nullptr, &DeltaOut);
}

uint32_t PointsToSet::unionWithFiltered(const PointsToSet &Other,
                                        const PointsToSet &Mask) {
  return unionImpl(Other, &Mask, nullptr, nullptr);
}

uint32_t PointsToSet::unionWithFiltered(const PointsToSet &Other,
                                        const PointsToSet &Mask,
                                        const PointsToSet &Exclude) {
  return unionImpl(Other, &Mask, &Exclude, nullptr);
}

uint32_t PointsToSet::unionWithExcluding(const PointsToSet &Other,
                                         const PointsToSet &Exclude) {
  return unionImpl(Other, nullptr, &Exclude, nullptr);
}

PointsToSet PointsToSet::intersectWith(const PointsToSet &Other) const {
  PointsToSet Out;
  if (UseBits && Other.UseBits) {
    size_t Words = std::min(Bits.size(), Other.Bits.size());
    size_t Needed = 0;
    for (size_t W = 0; W < Words; ++W)
      if (Bits[W] & Other.Bits[W])
        Needed = W + 1;
    uint32_t Common = 0;
    for (size_t W = 0; W < Needed; ++W)
      Common += popCount(Bits[W] & Other.Bits[W]);
    if (Common > SmallLimit) {
      Out.UseBits = true;
      Out.Bits.resize(Needed, 0);
      for (size_t W = 0; W < Needed; ++W)
        Out.Bits[W] = Bits[W] & Other.Bits[W];
      Out.Count = Common;
      return Out;
    }
    for (size_t W = 0; W < Needed; ++W) {
      uint64_t Word = Bits[W] & Other.Bits[W];
      while (Word) {
        Out.insert(static_cast<uint32_t>(W * 64 + countTrailingZeros(Word)));
        Word &= Word - 1;
      }
    }
    return Out;
  }
  // At least one side is small: iterate it, probe the other.
  const PointsToSet &S = !UseBits ? *this : Other;
  const PointsToSet &L = !UseBits ? Other : *this;
  uint32_t N;
  const uint32_t *Elems = S.smallData(N);
  for (uint32_t I = 0; I != N; ++I)
    if (L.contains(Elems[I]))
      Out.insert(Elems[I]);
  return Out;
}

uint32_t PointsToSet::intersectCount(const PointsToSet &Other) const {
  if (UseBits && Other.UseBits) {
    size_t Words = std::min(Bits.size(), Other.Bits.size());
    uint32_t N = 0;
    for (size_t W = 0; W < Words; ++W)
      N += popCount(Bits[W] & Other.Bits[W]);
    return N;
  }
  const PointsToSet &S = !UseBits ? *this : Other;
  const PointsToSet &L = !UseBits ? Other : *this;
  uint32_t N;
  const uint32_t *Elems = S.smallData(N);
  uint32_t Common = 0;
  for (uint32_t I = 0; I != N; ++I)
    if (L.contains(Elems[I]))
      ++Common;
  return Common;
}

bool PointsToSet::intersects(const PointsToSet &Other) const {
  if (UseBits && Other.UseBits) {
    size_t Words = std::min(Bits.size(), Other.Bits.size());
    for (size_t W = 0; W < Words; ++W)
      if (Bits[W] & Other.Bits[W])
        return true;
    return false;
  }
  const PointsToSet &S = !UseBits ? *this : Other;
  const PointsToSet &L = !UseBits ? Other : *this;
  uint32_t N;
  const uint32_t *Elems = S.smallData(N);
  for (uint32_t I = 0; I != N; ++I)
    if (L.contains(Elems[I]))
      return true;
  return false;
}
