//===- PointsToSet.cpp - Hybrid set of abstract object ids ---------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/PointsToSet.h"

#include <algorithm>

using namespace csc;

bool PointsToSet::insert(uint32_t O) {
  if (!UseBits) {
    auto It = std::lower_bound(Small.begin(), Small.end(), O);
    if (It != Small.end() && *It == O)
      return false;
    if (Small.size() < SmallLimit) {
      Small.insert(It, O);
      ++Count;
      return true;
    }
    promote();
  }
  size_t Word = O / 64;
  if (Word >= Bits.size())
    Bits.resize(Word + 1, 0);
  uint64_t Mask = 1ULL << (O % 64);
  if (Bits[Word] & Mask)
    return false;
  Bits[Word] |= Mask;
  ++Count;
  return true;
}

bool PointsToSet::contains(uint32_t O) const {
  if (!UseBits)
    return std::binary_search(Small.begin(), Small.end(), O);
  size_t Word = O / 64;
  if (Word >= Bits.size())
    return false;
  return (Bits[Word] >> (O % 64)) & 1;
}

void PointsToSet::promote() {
  UseBits = true;
  if (!Small.empty()) {
    size_t Words = Small.back() / 64 + 1;
    Bits.resize(Words, 0);
    for (uint32_t O : Small)
      Bits[O / 64] |= 1ULL << (O % 64);
  }
  Small.clear();
  Small.shrink_to_fit();
}

std::vector<uint32_t> PointsToSet::toVector() const {
  std::vector<uint32_t> Out;
  Out.reserve(Count);
  forEach([&Out](uint32_t O) { Out.push_back(O); });
  return Out;
}

bool PointsToSet::intersects(const PointsToSet &Other) const {
  // Iterate the smaller set, probe the larger one.
  const PointsToSet &A = size() <= Other.size() ? *this : Other;
  const PointsToSet &B = size() <= Other.size() ? Other : *this;
  bool Found = false;
  A.forEach([&](uint32_t O) { Found = Found || B.contains(O); });
  return Found;
}
