//===- Rng.h - Deterministic random number generator ------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG. Used by the workload generator and
/// the interpreter's nondeterministic branches so that every experiment is
/// reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_RNG_H
#define CSC_SUPPORT_RNG_H

#include <cstdint>

namespace csc {

/// Deterministic 64-bit RNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, N). \p N must be > 0.
  uint32_t nextInRange(uint32_t N) {
    return static_cast<uint32_t>(next() % N);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace csc

#endif // CSC_SUPPORT_RNG_H
