//===- JsonParse.h - Minimal JSON parser ------------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader — the counterpart of the
/// JsonWriter in Json.h — used by the batch executor to load
/// `--batch <manifest.json>` files. Parses a complete document into a
/// JsonValue tree; object members keep their insertion order. Numbers are
/// stored as double (the manifests carry no 64-bit-precision integers);
/// \uXXXX escapes outside ASCII are preserved as-is rather than decoded
/// (manifest content is file paths and spec strings).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_JSONPARSE_H
#define CSC_SUPPORT_JSONPARSE_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csc {

/// One parsed JSON value; a tagged union over the six JSON kinds.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj; ///< In file order.

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Member \p Key of an object, or null if absent (or not an object).
  const JsonValue *get(std::string_view Key) const {
    for (const auto &[MemberKey, V] : Obj)
      if (MemberKey == Key)
        return &V;
    return nullptr;
  }
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing content not). Returns false with a "line N: ..." message in
/// \p Error on malformed input. Container nesting is capped (256 levels)
/// so pathological documents fail cleanly instead of overflowing the
/// stack.
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Error);

} // namespace csc

#endif // CSC_SUPPORT_JSONPARSE_H
