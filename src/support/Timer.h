//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal steady-clock timer used for analysis timing and bench tables.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_TIMER_H
#define CSC_SUPPORT_TIMER_H

#include <chrono>

namespace csc {

/// Measures elapsed wall-clock time since construction or the last reset().
class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Milliseconds elapsed since construction / last reset.
  double elapsedMs() const {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(Now - Start).count();
  }

  /// Seconds elapsed since construction / last reset.
  double elapsedSec() const { return elapsedMs() / 1000.0; }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace csc

#endif // CSC_SUPPORT_TIMER_H
