//===- Interner.h - Generic hash-consing table ------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic interner mapping values to dense ids. Ids are assigned in
/// first-insertion order, which keeps every table deterministic given a
/// deterministic insertion sequence.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_INTERNER_H
#define CSC_SUPPORT_INTERNER_H

#include "support/Ids.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace csc {

/// Interns values of type \p T, handing out dense uint32_t ids.
///
/// \p Hasher must hash T; T must be equality-comparable and copyable.
template <typename T, typename Hasher = std::hash<T>> class Interner {
public:
  /// Returns the id of \p Value, inserting it if not yet present.
  uint32_t intern(const T &Value) {
    auto It = Index.find(Value);
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Items.size());
    Items.push_back(Value);
    Index.emplace(Value, Id);
    return Id;
  }

  /// Returns the id of \p Value or InvalidId if it was never interned.
  uint32_t lookup(const T &Value) const {
    auto It = Index.find(Value);
    return It == Index.end() ? InvalidId : It->second;
  }

  /// Returns the value with id \p Id.
  const T &get(uint32_t Id) const {
    assert(Id < Items.size() && "interner id out of range");
    return Items[Id];
  }

  uint32_t size() const { return static_cast<uint32_t>(Items.size()); }
  bool empty() const { return Items.empty(); }

  /// All interned values in id order.
  const std::vector<T> &items() const { return Items; }

private:
  std::vector<T> Items;
  std::unordered_map<T, uint32_t, Hasher> Index;
};

} // namespace csc

#endif // CSC_SUPPORT_INTERNER_H
