//===- Ids.h - Integer id types used across the analysis -------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain integer id aliases for the entities manipulated by the IR and the
/// pointer analysis. All ids are dense indices into per-kind tables owned by
/// the Program / CSManager; \c InvalidId marks "no entity".
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_IDS_H
#define CSC_SUPPORT_IDS_H

#include <cstdint>

namespace csc {

/// Index of a class/interface/array type in the Program's type table.
using TypeId = uint32_t;
/// Index of a field declaration (instance or static).
using FieldId = uint32_t;
/// Index of a method.
using MethodId = uint32_t;
/// Program-wide index of a local variable (each method's variables get
/// globally unique ids; the owning method is recorded in VarInfo).
using VarId = uint32_t;
/// Program-wide index of a statement.
using StmtId = uint32_t;
/// Index of an abstract heap object (allocation-site abstraction).
using ObjId = uint32_t;
/// Program-wide index of a call site (an Invoke statement).
using CallSiteId = uint32_t;

/// Interned analysis-time ids (owned by ContextManager / CSManager).
using CtxId = uint32_t;
using PtrId = uint32_t;
using CSObjId = uint32_t;
using CSMethodId = uint32_t;
using CSCallSiteId = uint32_t;

/// Sentinel for "no entity" in any of the id spaces above.
inline constexpr uint32_t InvalidId = 0xFFFFFFFFu;

} // namespace csc

#endif // CSC_SUPPORT_IDS_H
