//===- Hash.h - Hash combinators for interned keys --------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash helpers used by the interners. We deliberately keep hashing
/// simple and deterministic (no per-process seeding) so that analysis id
/// assignment is reproducible across runs.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_HASH_H
#define CSC_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace csc {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit variant).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// 64-bit FNV-1a over a byte range. Process-independent by construction
/// (fixed offset basis and prime, no seeding) — the program fingerprint,
/// the persistent result store's entry checksums, and the store's key
/// hashing all rely on it producing the same value in every process.
inline uint64_t fnv1a64(const void *Data, size_t Size,
                        uint64_t Seed = 1469598103934665603ULL) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ULL;
  }
  return H;
}

/// Number of trailing zero bits of \p Word (C++17-portable stand-in for
/// std::countr_zero, including its zero-input contract of 64).
inline unsigned countTrailingZeros(uint64_t Word) {
  if (Word == 0)
    return 64;
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(Word));
#else
  unsigned N = 0;
  while (!(Word & 1)) {
    Word >>= 1;
    ++N;
  }
  return N;
#endif
}

/// Number of set bits of \p Word (C++17-portable stand-in for
/// std::popcount).
inline unsigned popCount(uint64_t Word) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_popcountll(Word));
#else
  unsigned N = 0;
  while (Word) {
    Word &= Word - 1;
    ++N;
  }
  return N;
#endif
}

/// Packs two 32-bit ids into one lossless 64-bit key, \p Hi in the high
/// word. All entity ids (PtrId, StmtId, CallSiteId, ...) are 32-bit dense
/// indices, so this never truncates; use it wherever an (id, id) pair keys
/// an unordered container.
inline uint64_t packPair(uint32_t Hi, uint32_t Lo) {
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
}

/// Hashes a pair of 32-bit ids into one size_t.
inline size_t hashPair(uint32_t A, uint32_t B) {
  size_t Seed = A;
  hashCombine(Seed, B);
  return Seed;
}

/// Hash functor for std::pair<uint32_t, uint32_t> keys.
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t> &P) const {
    return hashPair(P.first, P.second);
  }
};

/// Hash functor for small id vectors (context strings).
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t> &V) const {
    size_t Seed = V.size();
    for (uint32_t E : V)
      hashCombine(Seed, E);
    return Seed;
  }
};

} // namespace csc

#endif // CSC_SUPPORT_HASH_H
