//===- Hash.h - Hash combinators for interned keys --------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash helpers used by the interners. We deliberately keep hashing
/// simple and deterministic (no per-process seeding) so that analysis id
/// assignment is reproducible across runs.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_HASH_H
#define CSC_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace csc {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit variant).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes a pair of 32-bit ids into one size_t.
inline size_t hashPair(uint32_t A, uint32_t B) {
  size_t Seed = A;
  hashCombine(Seed, B);
  return Seed;
}

/// Hash functor for std::pair<uint32_t, uint32_t> keys.
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t> &P) const {
    return hashPair(P.first, P.second);
  }
};

/// Hash functor for small id vectors (context strings).
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t> &V) const {
    size_t Seed = V.size();
    for (uint32_t E : V)
      hashCombine(Seed, E);
    return Seed;
  }
};

} // namespace csc

#endif // CSC_SUPPORT_HASH_H
