//===- ThreadPool.cpp - Small work-stealing thread pool -------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace csc;

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultThreadCount();
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  Stop.store(true);
  {
    std::lock_guard<std::mutex> G(WakeM);
    WakeCV.notify_all();
  }
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  size_t Q = NextQueue.fetch_add(1) % Workers.size();
  Outstanding.fetch_add(1);
  Queued.fetch_add(1);
  {
    std::lock_guard<std::mutex> G(Workers[Q]->M);
    Workers[Q]->Tasks.push_back(std::move(Task));
  }
  // Queued is incremented before the notify and re-checked by the wait
  // predicate under WakeM, so a wakeup can never be lost.
  std::lock_guard<std::mutex> G(WakeM);
  WakeCV.notify_one();
}

std::function<void()> ThreadPool::takeTask(unsigned Me) {
  // Queued is decremented at claim time, under the deque lock the task
  // is popped from. Decrementing later (after takeTask returned) left a
  // window where sleeping workers saw a stale Queued > 0, woke, found
  // every deque empty, and spun back to sleep — a busy-wake storm under
  // repeated submit/wait cycles (the parallel sweep's barrier pattern)
  // that the ThreadPoolTest stress cases surfaced.
  //
  // Own deque first, newest task (LIFO keeps the working set warm) ...
  {
    Worker &W = *Workers[Me];
    std::lock_guard<std::mutex> G(W.M);
    if (!W.Tasks.empty()) {
      std::function<void()> T = std::move(W.Tasks.back());
      W.Tasks.pop_back();
      Queued.fetch_sub(1);
      return T;
    }
  }
  // ... then steal the oldest task of some other worker (FIFO keeps the
  // victim's warm end untouched).
  for (size_t Off = 1; Off != Workers.size(); ++Off) {
    Worker &W = *Workers[(Me + Off) % Workers.size()];
    std::lock_guard<std::mutex> G(W.M);
    if (!W.Tasks.empty()) {
      std::function<void()> T = std::move(W.Tasks.front());
      W.Tasks.pop_front();
      Queued.fetch_sub(1);
      return T;
    }
  }
  return nullptr;
}

void ThreadPool::workerLoop(unsigned Me) {
  while (true) {
    std::function<void()> Task = takeTask(Me);
    if (Task) {
      Task();
      if (Outstanding.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> G(WakeM);
        IdleCV.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> L(WakeM);
    WakeCV.wait(L, [this] { return Stop.load() || Queued.load() > 0; });
    if (Stop.load() && Queued.load() == 0)
      return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(WakeM);
  IdleCV.wait(L, [this] { return Outstanding.load() == 0; });
}
