//===- PointsToSet.h - Hybrid set of abstract object ids -------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation used by the solver, with three tiers:
/// the first few elements live inline in the object (no heap allocation at
/// all — the vast majority of sets an analysis produces stay this small),
/// mid-size sets are sorted unique vectors (cheap to iterate, cache
/// friendly), and once a set grows past a threshold it is promoted to a
/// bitmap, which makes the very hot insert/contains operations O(1) for
/// the handful of huge sets that a context-insensitive analysis produces.
///
/// Beyond element-at-a-time insert/contains, the set supports word-parallel
/// bulk operations — union (with the newly added elements reported as a
/// delta), masked union (set-valued type filters), exclusion (pending-work
/// diffing) and intersection — which the solver uses to move whole
/// points-to sets per step instead of materializing per-element copies.
///
/// Concurrency / ownership discipline: a PointsToSet carries no locks and
/// no atomics; instead the parallel sweep engine (Solver::runParallelSweep)
/// follows a single-writer-per-set rule that this class's operations are
/// designed around:
///
///  * At most one thread may run a mutating operation (insert, clear, any
///    unionWith* as the destination) on a given set at a time, and no
///    other thread may read that set while it does. The solver guarantees
///    this structurally: every sweep entry is a distinct representative,
///    so the entry's Pts/Pending slots are touched by exactly one lane.
///  * Any number of threads may concurrently use the same set as a
///    *source* operand (contains, forEach, the Other/Mask/Exclude sides
///    of the bulk operations) while no writer exists — all reads go
///    through plain loads over the frozen representation, and the sweep's
///    barrier (ThreadPool::wait) orders them after the writes of the
///    previous phase.
///  * Sets are content-canonical: equal contents compare equal however
///    they were accumulated, so unions are commutative and associative.
///    This is what lets the sweep merge per-bucket shard contributions in
///    a fixed bucket order and still be bit-identical for any lane count.
///
/// Striped locking was considered and rejected for the concurrent-target
/// case: it would put a lock acquisition on the hottest serial-engine path
/// to serve a mode that never actually shares a destination.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_POINTSTOSET_H
#define CSC_SUPPORT_POINTSTOSET_H

#include "support/Hash.h"
#include "support/Ids.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csc {

/// A set of ObjId (or CSObjId) values with hybrid representation.
class PointsToSet {
public:
  /// Inserts \p O; returns true if it was not already present.
  bool insert(uint32_t O);

  /// Returns true if \p O is in the set.
  bool contains(uint32_t O) const;

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Removes every element. Keeps allocated buffers so scratch sets can be
  /// reused across solver iterations without churn; reverts to the
  /// small-vector representation.
  void clear();

  /// Forces the bitmap representation (used for long-lived filter masks
  /// that bulk operations should always be able to intersect with
  /// word-parallel).
  void ensureBitmap() {
    if (!UseBits)
      promote();
  }

  //===--------------------------------------------------------------------===
  // Word-parallel bulk operations
  //===--------------------------------------------------------------------===

  /// this |= Other. Returns the number of newly inserted elements.
  uint32_t unionWith(const PointsToSet &Other);

  /// this |= Other; the newly inserted elements are collected into
  /// \p DeltaOut (cleared first). Returns the number of new elements.
  uint32_t unionWith(const PointsToSet &Other, PointsToSet &DeltaOut);

  /// this |= (Other ∩ Mask). Returns the number of new elements.
  uint32_t unionWithFiltered(const PointsToSet &Other,
                             const PointsToSet &Mask);

  /// this |= (Other ∩ Mask) ∖ Exclude. Returns the number of new elements.
  uint32_t unionWithFiltered(const PointsToSet &Other,
                             const PointsToSet &Mask,
                             const PointsToSet &Exclude);

  /// this |= (Other ∖ Exclude). Returns the number of new elements.
  uint32_t unionWithExcluding(const PointsToSet &Other,
                              const PointsToSet &Exclude);

  /// The elements common to both sets.
  PointsToSet intersectWith(const PointsToSet &Other) const;

  /// |this ∩ Other| without materializing the intersection.
  uint32_t intersectCount(const PointsToSet &Other) const;

  /// Returns true if this set and \p Other share an element.
  bool intersects(const PointsToSet &Other) const;

  /// Calls \p Fn(ObjId) for every element in ascending id order.
  template <typename F> void forEach(F &&Fn) const {
    if (!UseBits) {
      uint32_t N;
      const uint32_t *Elems = smallData(N);
      for (uint32_t I = 0; I != N; ++I)
        Fn(Elems[I]);
      return;
    }
    for (std::size_t W = 0, E = Bits.size(); W != E; ++W) {
      uint64_t Word = Bits[W];
      while (Word) {
        unsigned Bit = countTrailingZeros(Word);
        Fn(static_cast<uint32_t>(W * 64 + Bit));
        Word &= Word - 1;
      }
    }
  }

  /// All elements, ascending. Convenience for tests and clients.
  std::vector<uint32_t> toVector() const;

private:
  void promote();
  uint32_t unionImpl(const PointsToSet &Other, const PointsToSet *Mask,
                     const PointsToSet *Exclude, PointsToSet *DeltaOut);
  uint64_t wordAt(std::size_t W) const {
    return W < Bits.size() ? Bits[W] : 0;
  }
  /// Contiguous elements while !UseBits (inline buffer or Small vector).
  const uint32_t *smallData(uint32_t &N) const {
    if (Small.empty()) {
      N = Count;
      return Inline;
    }
    N = static_cast<uint32_t>(Small.size());
    return Small.data();
  }
  bool inlineMode() const { return !UseBits && Small.empty(); }

  static constexpr uint32_t InlineLimit = 4;
  static constexpr uint32_t SmallLimit = 24;

  uint32_t Inline[InlineLimit] = {}; ///< Sorted ids while inlineMode().
  std::vector<uint32_t> Small;   ///< Sorted unique ids while !UseBits.
  std::vector<uint64_t> Bits;    ///< Bitmap words once promoted.
  uint32_t Count = 0;
  bool UseBits = false;
};

} // namespace csc

#endif // CSC_SUPPORT_POINTSTOSET_H
