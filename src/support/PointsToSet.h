//===- PointsToSet.h - Hybrid set of abstract object ids -------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation used by the solver. Small sets are kept
/// as sorted unique vectors (cheap to iterate, cache friendly); once a set
/// grows past a threshold it is promoted to a bitmap, which makes the very
/// hot insert/contains operations O(1) for the handful of huge sets that a
/// context-insensitive analysis produces.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_POINTSTOSET_H
#define CSC_SUPPORT_POINTSTOSET_H

#include "support/Hash.h"
#include "support/Ids.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csc {

/// A set of ObjId (or CSObjId) values with hybrid representation.
class PointsToSet {
public:
  /// Inserts \p O; returns true if it was not already present.
  bool insert(uint32_t O);

  /// Returns true if \p O is in the set.
  bool contains(uint32_t O) const;

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Calls \p Fn(ObjId) for every element in ascending id order.
  template <typename F> void forEach(F &&Fn) const {
    if (!UseBits) {
      for (uint32_t O : Small)
        Fn(O);
      return;
    }
    for (std::size_t W = 0, E = Bits.size(); W != E; ++W) {
      uint64_t Word = Bits[W];
      while (Word) {
        unsigned Bit = countTrailingZeros(Word);
        Fn(static_cast<uint32_t>(W * 64 + Bit));
        Word &= Word - 1;
      }
    }
  }

  /// All elements, ascending. Convenience for tests and clients.
  std::vector<uint32_t> toVector() const;

  /// Returns true if this set and \p Other share an element.
  bool intersects(const PointsToSet &Other) const;

private:
  void promote();

  static constexpr uint32_t SmallLimit = 24;

  std::vector<uint32_t> Small;  ///< Sorted unique ids while !UseBits.
  std::vector<uint64_t> Bits;   ///< Bitmap words once promoted.
  uint32_t Count = 0;
  bool UseBits = false;
};

} // namespace csc

#endif // CSC_SUPPORT_POINTSTOSET_H
