//===- BinaryIO.h - Little-endian binary encode/decode ----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal binary serialization layer for the persistent result store:
/// a writer appending fixed-width little-endian fields to a byte string,
/// and a bounds-checked reader over such bytes. The encoding is explicit
/// byte shifts — never memcpy of host integers — so entries written on
/// any host decode identically on any other.
///
/// The reader is designed for untrusted input (the store validates
/// checksums first, but truncated or hostile bytes must still never
/// crash): every accessor returns false once the buffer is exhausted,
/// failure is sticky, and fits() lets callers sanity-check an element
/// count against the remaining bytes before sizing a container with it.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_BINARYIO_H
#define CSC_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstring>
#include <string>

namespace csc {

/// Appends little-endian fields to an owned byte buffer.
class BinaryWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  /// IEEE-754 bit pattern, little-endian — round-trips exactly.
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  /// u32 length prefix + raw bytes.
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }

  const std::string &data() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::string Buf;
};

/// Bounds-checked reader over bytes produced by BinaryWriter. All
/// accessors return false (leaving \p Out unspecified) once the input is
/// exhausted or a prior read failed — callers can chain reads and check
/// ok() once, or check each read.
class BinaryReader {
public:
  BinaryReader(const char *Data, size_t Size)
      : P(reinterpret_cast<const unsigned char *>(Data)), N(Size) {}
  explicit BinaryReader(const std::string &Bytes)
      : BinaryReader(Bytes.data(), Bytes.size()) {}

  bool u8(uint8_t &Out) {
    if (!take(1))
      return false;
    Out = P[Pos - 1];
    return true;
  }

  bool u32(uint32_t &Out) {
    if (!take(4))
      return false;
    Out = 0;
    for (int I = 0; I != 4; ++I)
      Out |= static_cast<uint32_t>(P[Pos - 4 + I]) << (8 * I);
    return true;
  }

  bool u64(uint64_t &Out) {
    if (!take(8))
      return false;
    Out = 0;
    for (int I = 0; I != 8; ++I)
      Out |= static_cast<uint64_t>(P[Pos - 8 + I]) << (8 * I);
    return true;
  }

  bool f64(double &Out) {
    uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&Out, &Bits, sizeof(Out));
    return true;
  }

  bool str(std::string &Out) {
    uint32_t Len;
    if (!u32(Len) || !take(Len))
      return false;
    Out.assign(reinterpret_cast<const char *>(P + Pos - Len), Len);
    return true;
  }

  /// True when \p Count elements of \p ElemBytes each could still fit in
  /// the remaining input — the guard that keeps a corrupted count from
  /// driving a huge container allocation before the reads fail.
  bool fits(uint64_t Count, uint64_t ElemBytes) const {
    if (Failed)
      return false;
    uint64_t Rem = N - Pos;
    return ElemBytes == 0 || Count <= Rem / ElemBytes;
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return !Failed && Pos == N; }
  size_t remaining() const { return Failed ? 0 : N - Pos; }

private:
  bool take(size_t Bytes) {
    if (Failed || N - Pos < Bytes) {
      Failed = true;
      return false;
    }
    Pos += Bytes;
    return true;
  }

  const unsigned char *P;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace csc

#endif // CSC_SUPPORT_BINARYIO_H
