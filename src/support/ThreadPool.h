//===- ThreadPool.h - Small work-stealing thread pool -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with per-worker deques and work
/// stealing, backing the batch analysis executor. Submitted tasks are
/// distributed round-robin over the worker deques; a worker pops its own
/// deque LIFO (cache-warm) and steals FIFO from the other workers when its
/// own deque drains, so long-running tasks (a scale-xxl solve) do not
/// strand queued work behind them.
///
/// The pool makes no fairness or ordering promises — callers that need a
/// deterministic result order (the batch executor) write results into
/// pre-assigned slots and sequence them after wait().
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_THREADPOOL_H
#define CSC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace csc {

class ThreadPool {
public:
  /// Spawns \p Threads workers (0 = defaultThreadCount()).
  explicit ThreadPool(unsigned Threads = 0);
  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker. Thread-safe; tasks may
  /// themselves submit further tasks. Tasks must not throw.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished. Thread-safe, but must not be called from inside
  /// a pool task (it would deadlock waiting on itself).
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static unsigned defaultThreadCount();

private:
  struct Worker {
    std::mutex M;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Me);
  /// Pops from own deque (back) or steals (front); null when all empty.
  std::function<void()> takeTask(unsigned Me);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;

  std::mutex WakeM;
  std::condition_variable WakeCV; ///< Workers sleep here when drained.
  std::condition_variable IdleCV; ///< wait() sleeps here.
  std::atomic<uint64_t> Queued{0};      ///< Submitted, not yet started.
  std::atomic<uint64_t> Outstanding{0}; ///< Submitted, not yet finished.
  std::atomic<uint64_t> NextQueue{0};   ///< Round-robin submission cursor.
  std::atomic<bool> Stop{false};
};

} // namespace csc

#endif // CSC_SUPPORT_THREADPOOL_H
