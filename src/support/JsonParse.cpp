//===- JsonParse.cpp - Minimal JSON parser --------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace csc;

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parseDocument(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after the JSON document");
    return true;
  }

private:
  // Containers recurse through parseValue; bound the depth so a
  // pathological document yields a diagnostic, not a stack overflow.
  static constexpr int MaxDepth = 256;

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      if (Depth >= MaxDepth)
        return fail("too deeply nested JSON");
      return parseObject(Out);
    case '[':
      if (Depth >= MaxDepth)
        return fail("too deeply nested JSON");
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
    case 'f':
      return parseKeyword(Out);
    case 'n':
      if (!Text.compare(Pos, 4, "null")) {
        Pos += 4;
        Out.K = JsonValue::Kind::Null;
        return true;
      }
      return fail("invalid token");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Depth;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected a string object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        --Depth;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Depth;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        --Depth;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("unterminated escape in string");
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos + I];
            if (!std::isxdigit(static_cast<unsigned char>(H)))
              return fail("invalid \\u escape");
            V = V * 16 + (H <= '9'   ? H - '0'
                          : H <= 'F' ? H - 'A' + 10
                                     : H - 'a' + 10);
          }
          Pos += 4;
          if (V < 0x80) {
            Out += static_cast<char>(V);
          } else {
            // Non-ASCII escapes are kept verbatim (see file comment).
            Out += "\\u";
            Out += std::string(Text.substr(Pos - 4, 4));
          }
          break;
        }
        default:
          return fail("unknown escape in string");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseKeyword(JsonValue &Out) {
    if (!Text.compare(Pos, 4, "true")) {
      Pos += 4;
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return true;
    }
    if (!Text.compare(Pos, 5, "false")) {
      Pos += 5;
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return true;
    }
    return fail("invalid token");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("invalid token");
    std::string Num(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (errno != 0 || End != Num.c_str() + Num.size())
      return fail("malformed number '" + Num + "'");
    Out.K = JsonValue::Kind::Number;
    Out.Num = D;
    return true;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const std::string &Msg) {
    size_t Line = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I)
      if (Text[I] == '\n')
        ++Line;
    Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool csc::parseJson(std::string_view Text, JsonValue &Out,
                    std::string &Error) {
  Out = JsonValue();
  return Parser(Text, Error).parseDocument(Out);
}
