//===- DenseTable.h - Grow-on-write dense id-indexed tables -----*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the recurring hot-path idiom of a vector indexed by a dense
/// 32-bit id, grown with a sentinel fill value on first write: interning
/// caches (CSManager, CallGraph) and fast-reject flag tables (the csc
/// pattern plugins) all share these.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_DENSETABLE_H
#define CSC_SUPPORT_DENSETABLE_H

#include <cstdint>
#include <vector>

namespace csc {

/// V[I] = Value, growing V with \p Fill as needed.
template <typename T>
inline void denseAssign(std::vector<T> &V, uint32_t I, T Value, T Fill) {
  if (I >= V.size())
    V.resize(I + 1, Fill);
  V[I] = Value;
}

/// V[I], or \p Fill for indices beyond the table's current extent.
template <typename T>
inline T denseGet(const std::vector<T> &V, uint32_t I, T Fill) {
  return I < V.size() ? V[I] : Fill;
}

} // namespace csc

#endif // CSC_SUPPORT_DENSETABLE_H
