//===- UnionFind.h - Disjoint-set forest over dense ids ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A disjoint-set forest over a dense uint32_t id space, used by the
/// solver's online cycle elimination to map pointers to their SCC
/// representative. Lookups use path halving (every find() shortens the
/// chains it walks, amortized near-O(1)); unions are by rank with a
/// deterministic tie-break (smaller id wins), so solver runs are
/// reproducible. Representative lookups are id-stable: find(x) returns the
/// same id until an intervening unite() merges x's class — callers may
/// cache a representative across operations that do not merge.
///
/// Ids at or beyond size() are implicitly singleton classes; find() on
/// them is the identity and needs no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_SUPPORT_UNIONFIND_H
#define CSC_SUPPORT_UNIONFIND_H

#include <cstdint>
#include <vector>

namespace csc {

class UnionFind {
public:
  /// Grows the forest so ids < \p N are materialized (each its own class).
  void ensure(uint32_t N) {
    if (N <= Parent.size())
      return;
    uint32_t Old = static_cast<uint32_t>(Parent.size());
    Parent.resize(N);
    Rank.resize(N, 0);
    for (uint32_t I = Old; I != N; ++I)
      Parent[I] = I;
  }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Representative of \p X's class. Path-halving: grandparent hops that
  /// also reparent, so repeated lookups flatten the forest. Logically
  /// const (the represented partition never changes), hence callable on
  /// const solvers via the mutable parent table.
  uint32_t find(uint32_t X) const {
    if (X >= Parent.size())
      return X;
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Merges the classes of \p A and \p B. Returns false if already one
  /// class; otherwise true with \p Winner set to the surviving
  /// representative (higher rank; smaller id on equal rank, then rank
  /// bumps — deterministic across runs).
  bool unite(uint32_t A, uint32_t B, uint32_t &Winner) {
    ensure((A > B ? A : B) + 1);
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB) {
      Winner = RA;
      return false;
    }
    if (Rank[RA] < Rank[RB]) {
      uint32_t T = RA;
      RA = RB;
      RB = T;
    } else if (Rank[RA] == Rank[RB]) {
      if (RB < RA) {
        uint32_t T = RA;
        RA = RB;
        RB = T;
      }
      ++Rank[RA];
    }
    Parent[RB] = RA;
    ++Merges;
    Winner = RA;
    return true;
  }

  /// True if \p X heads its own class (cheap: no chain walk).
  bool isRep(uint32_t X) const {
    return X >= Parent.size() || Parent[X] == X;
  }

  /// Number of successful unite() calls (= materialized ids minus
  /// classes among them).
  uint64_t numMerges() const { return Merges; }

private:
  /// find() reparents while walking: logically const, physically not.
  mutable std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
  uint64_t Merges = 0;
};

} // namespace csc

#endif // CSC_SUPPORT_UNIONFIND_H
