//===- Solver.h - Worklist pointer-analysis solver --------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Andersen-style worklist solver with on-the-fly call-graph
/// construction, implementing the rules of Fig. 7 of the paper. One solver
/// serves every analysis in the evaluation:
///
///  * CI            — CISelector (or no selector)
///  * 2obj / 2type  — KObjSelector / KTypeSelector
///  * Zipper-e      — SelectiveSelector produced by the zipper pre-analysis
///  * Cut-Shortcut  — CISelector + CutShortcutPlugin, which populates the
///                    cutStores / cutReturns / shortcut-edge sets consulted
///                    by the [Store] / [Return] / [Shortcut] rules.
///
/// Two propagation modes emulate the paper's two frameworks: delta
/// propagation (Tai-e-style incremental) and full re-propagation
/// (Doop-style semi-naive evaluation overhead).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_SOLVER_H
#define CSC_PTA_SOLVER_H

#include "ir/Program.h"
#include "pta/CSManager.h"
#include "pta/CallGraph.h"
#include "pta/Context.h"
#include "pta/ContextSelector.h"
#include "pta/PTAResult.h"
#include "pta/Plugin.h"
#include "pta/PointerFlowGraph.h"
#include "pta/SccCollapser.h"
#include "support/Hash.h"
#include "support/PointsToSet.h"
#include "support/Timer.h"

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace csc {

class ThreadPool;

struct SolverOptions {
  /// Context policy; nullptr means context insensitivity.
  ContextSelector *Selector = nullptr;
  /// Incremental (Tai-e-style) vs full re-propagation (Doop-style).
  bool DeltaPropagation = true;
  /// Online cycle elimination: pointers on a cycle of unfiltered PFG
  /// edges share one points-to set behind an SCC representative, and
  /// propagation runs on the collapsed graph (see SccCollapser.h).
  /// Purely an engine optimization — results, precision metrics, the
  /// logical PtsInsertions counter, and every public query (ptsOf, pfg(),
  /// plugin callbacks, graph dumps) are identical with it on or off.
  /// Orthogonal to the engine mode: Doop-style full re-propagation keeps
  /// its semantics and simply re-propagates representative sets.
  bool CycleElimination = true;
  /// Abort after this many (pointer, object) insertions (emulates the
  /// paper's 2h timeout deterministically). ~0 = unlimited.
  uint64_t WorkBudget = ~0ULL;
  /// Optional wall-clock cap in milliseconds (0 = unlimited).
  double TimeBudgetMs = 0.0;
  /// Number of concurrent lanes per worklist sweep (spec parameter
  /// `par`). 1 keeps the original serial pop loop — byte-for-byte the
  /// same engine, zero threading overhead. N > 1 partitions each sealed
  /// sweep into N contiguous order buckets, runs the pending-merge and
  /// edge-flow phases of the sweep on a solver-owned thread pool, and
  /// merges bucket contributions at a per-sweep barrier in bucket order
  /// before statements and plugins run serially (see runParallelSweep).
  /// Purely an engine throughput knob: completed results, precision
  /// metrics, the logical PtsInsertions counter, and the timing-free
  /// JSON report bytes are identical for every value of N — the same
  /// determinism bar AnalysisSession::runAll sets for --jobs.
  unsigned ParallelSweeps = 1;
  /// Optional statement restriction for demand-driven solving (not owned;
  /// must outlive the solver). When set, statement discovery
  /// (addReachable) and points-to-driven statement reprocessing skip any
  /// statement whose id maps to 0; ids at or beyond the bitset's size are
  /// enabled. The caller (server/DemandSlicer) guarantees the enabled set
  /// is closed under the dependences of the queried variables, so the
  /// restricted fixpoint computes exactly the whole-program points-to
  /// sets for them at slice-bounded cost. nullptr = all enabled.
  const std::vector<uint8_t> *EnabledStmts = nullptr;
};

class Solver {
public:
  explicit Solver(const Program &P, SolverOptions Opts = {});
  ~Solver();

  /// Registers a plugin (not owned). Must be called before solve().
  void addPlugin(SolverPlugin *Pl) { Plugins.push_back(Pl); }

  /// Runs the analysis from the program entry point.
  PTAResult solve();

  /// True if a completed solve() can be extended in place by
  /// resolveIncrement: the previous run reached its fixpoint (not budget
  /// -exhausted) and no plugins are registered (plugin state machines —
  /// cut/shortcut discovery — are not replayed against deltas).
  bool canResume() const { return Solved && !Exhausted && Plugins.empty(); }

  /// Warm re-solve after an additive program delta: the Program this
  /// solver borrows has grown (new types/fields/methods/vars/statements
  /// appended; nothing existing removed or reordered) and the caller has
  /// invalidated the Program's hierarchy memos. Statements the previous
  /// run already processed keep their facts — pointer-analysis facts are
  /// monotone, so the retained fixpoint is a sound lower bound for the
  /// post-delta program. This seeds the worklist with only the new
  /// statements' effects: new statements of already-reachable methods are
  /// replayed against the current points-to sets, and everything else
  /// (new methods, new call edges) is discovered by the resumed fixpoint.
  /// Requires canResume(). The returned PTAResult is identical in every
  /// fixpoint-determined field to a from-scratch solve of the post-delta
  /// program (scheduling diagnostics like WorklistPops may differ).
  ///
  /// Not safe for deltas that change dispatch of pre-existing classes
  /// (e.g. a new method whose owner existed before the delta): a
  /// previously resolved virtual call could gain a target the replay does
  /// not revisit. Callers classify deltas (see server/IncrementalSolver)
  /// and fall back to a fresh solver when in doubt.
  PTAResult resolveIncrement(uint32_t OldNumStmts);

  //===--------------------------------------------------------------------===
  // Plugin / query API
  //===--------------------------------------------------------------------===

  const Program &program() const { return P; }
  ContextManager &ctxManager() { return CM; }
  const ContextManager &ctxManager() const { return CM; }
  CSManager &csManager() { return CSM; }
  const CSManager &csManager() const { return CSM; }
  CallGraph &callGraph() { return CG; }
  const CallGraph &callGraph() const { return CG; }
  const PointerFlowGraph &pfg() const { return PFG; }

  /// True if the edge was added via addShortcutEdge (for diagnostics and
  /// graph dumps).
  bool isShortcutEdge(PtrId Src, PtrId Dst) const {
    return ShortcutEdgeKeys.count(packPair(Src, Dst)) != 0;
  }

  /// Current points-to set of a pointer (empty if never touched).
  /// The representative-remapping layer: under cycle elimination the set
  /// lives with \p Pr's SCC representative, so plugins and clients keep
  /// querying original (un-collapsed) pointers and see exactly the sets
  /// a collapse-free solver would compute.
  const PointsToSet &ptsOf(PtrId Pr) const {
    Pr = repOf(Pr);
    return Pr < Pts.size() ? Pts[Pr] : EmptyPts;
  }

  /// SCC representative of \p Pr (identity while cycle elimination is
  /// off or \p Pr is not in any collapsed class). Diagnostics/tests only:
  /// the query surface above already remaps.
  PtrId representative(PtrId Pr) const { return repOf(Pr); }

  // The Fig. 7 cut/shortcut sets, populated by the Cut-Shortcut plugin.
  void addCutStore(StmtId S);
  void addCutReturn(VarId V);
  bool isCutStore(StmtId S) const {
    return S < CutStores.size() && CutStores[S];
  }
  bool isCutReturn(VarId V) const {
    return V < CutReturns.size() && CutReturns[V];
  }
  /// [Shortcut]: adds Src -> Dst to E_SC (and thus to the PFG).
  /// Returns true if the edge is new.
  bool addShortcutEdge(PtrId Src, PtrId Dst);

  /// Defers return-edge creation for return variable \p V: the plugin has
  /// syntactic evidence that V may become a cut return through nested
  /// tempLoad discovery ([CutPropLoad]) and the [Return] edges must not be
  /// added before that is decided (cut edges can never be removed).
  /// Call undeferReturn to flush withheld edges if V is not cut after all;
  /// addCutReturn discards them. CI contexts only.
  void addDeferredReturn(VarId V);
  void undeferReturn(VarId V);
  bool isDeferredReturn(VarId V) const {
    return V < DeferredReturns.size() && DeferredReturns[V];
  }

  // Pointer helpers.
  PtrId varPtr(VarId V, CtxId C) { return CSM.getVarPtr(V, C); }
  PtrId varPtrCI(VarId V) { return CSM.getVarPtr(V, CM.empty()); }
  PtrId fieldPtr(CSObjId O, FieldId F) { return CSM.getFieldPtr(O, F); }
  PtrId fieldPtrCI(ObjId O, FieldId F) {
    return CSM.getFieldPtr(CSM.getCSObj(O, CM.empty()), F);
  }

  uint64_t workDone() const { return Stats.PtsInsertions; }
  bool exhausted() const { return Exhausted; }

private:
  void addReachable(MethodId M, CtxId C);
  void processCallEdge(CSCallSiteId CS, CSMethodId Callee, const Stmt &S,
                       CtxId CallerCtx, CtxId CalleeCtx);
  void processCallOnReceiver(const Stmt &S, CtxId CallerCtx, CSObjId Recv);
  bool addPFGEdge(PtrId Src, PtrId Dst, TypeId Filter, EdgeOrigin Origin);
  void enqueueObj(PtrId Pr, CSObjId O);
  void enqueueSet(PtrId Pr, const PointsToSet &Set, TypeId Filter);
  const PointsToSet &filterMask(TypeId Filter);
  void processPointer(PtrId Pr, const PointsToSet &Delta);
  /// One base-dependent statement's reaction to new receiver facts: the
  /// per-statement half of processPointer, also used by resolveIncrement
  /// to replay a *new* statement against a base's already-computed set.
  void processBaseUse(const Stmt &S, StmtId SId, CtxId C,
                      const PointsToSet &Delta);
  bool stmtEnabled(StmtId S) const {
    return !Opts.EnabledStmts || S >= Opts.EnabledStmts->size() ||
           (*Opts.EnabledStmts)[S];
  }
  /// (Re)indexes BaseUses for statements with id >= Begin.
  void indexBaseUses(StmtId Begin);
  /// Seeds the effects of one delta statement in an already-reachable
  /// (method, context) during resolveIncrement.
  void replayNewStmt(CSMethodId CSMth, const Stmt &S, StmtId SId, CtxId C);
  /// Drains the worklist to a fixpoint (or budget exhaustion), including
  /// the plugin onFixpoint resumption rounds.
  void runFixpointLoop();
  /// Plugin onFinish, stats finalization, and result projection shared by
  /// solve() and resolveIncrement().
  PTAResult finishRun();
  void markDirty(PtrId Pr);
  void ensurePtr(PtrId Pr);
  void buildProjection(PTAResult &R);

  // Cycle elimination / worklist internals.
  PtrId repOf(PtrId Pr) const { return Scc ? Scc->rep(Pr) : Pr; }
  uint32_t classSizeOf(PtrId Rep) const {
    return Scc ? Scc->classSize(Rep) : 1;
  }
  /// Flows \p Set along every out-edge of \p Rep's class (each member's
  /// original PFG out-edges; targets remap through representatives).
  void propagateAlongEdges(PtrId Rep, const PointsToSet &Set);
  /// processPointer for every original pointer of \p Rep's class (the
  /// un-collapsing half of the remapping layer: statement reprocessing
  /// and plugin callbacks fire per member, in ascending pointer order).
  void processClass(PtrId Rep, const PointsToSet &Delta);
  /// Semantic half of a collapse: merges member points-to/pending state
  /// into the winner, fires per-class catch-up deltas, and re-flushes
  /// the merged out-edges. \p Reps holds current representatives (the
  /// collapser canonicalizes/dedups them defensively).
  void collapseClass(const std::vector<PtrId> &Reps);
  void runFullSccPass();
  /// Moves Next into Current, sorted by (approximate topo order, id).
  void refillWorklist();

  //===--------------------------------------------------------------------===
  // Parallel sweeps (Opts.ParallelSweeps > 1; see runParallelSweep for the
  // phase protocol and docs/ARCHITECTURE.md for the determinism argument).
  //===--------------------------------------------------------------------===

  /// One bucket's outbound contributions from the parallel edge-flow
  /// phase: target representatives in first-touch order plus the
  /// accumulated (filtered, pre-diffed) facts per target. Thread-confined
  /// while its bucket runs; drained serially in bucket order at the
  /// per-sweep merge barrier, so the merge sequence — and therefore the
  /// Next worklist and every counter — never depends on thread timing.
  struct SweepShard {
    std::vector<PtrId> Order;                   ///< First-touch order.
    std::unordered_map<PtrId, uint32_t> Index;  ///< Target -> Sets slot.
    std::vector<PointsToSet> Sets;              ///< Parallel to Order.

    PointsToSet &slot(PtrId T) {
      auto [It, IsNew] = Index.emplace(T, static_cast<uint32_t>(Order.size()));
      if (IsNew) {
        Order.push_back(T);
        if (Sets.size() < Order.size())
          Sets.emplace_back();
        else
          Sets[Order.size() - 1].clear(); // clear() keeps the buffers.
      }
      return Sets[It->second];
    }
    void reset() {
      Order.clear();
      Index.clear();
    }
  };

  /// Consumes the sealed portion of Current as one bucketed sweep.
  void runParallelSweep();
  /// Runs \p Fn(BucketIndex) for every bucket: bucket 0 inline on the
  /// solving thread, the rest on SweepPool, with a barrier before return.
  void forEachBucket(std::size_t NumBuckets,
                     const std::function<void(std::size_t)> &Fn);

  std::unique_ptr<ThreadPool> SweepPool; ///< ParallelSweeps - 1 workers.
  std::vector<PtrId> SweepReps;          ///< Deduped reps of one sweep.
  std::vector<PointsToSet> SweepDeltas;  ///< Per entry: delta / snapshot.
  std::vector<std::vector<PtrId>> SweepMembers; ///< Member snapshots.
  std::vector<SweepShard> SweepShards;   ///< One per bucket.

  const Program &P;
  SolverOptions Opts;
  std::unique_ptr<ContextSelector> DefaultSelector; ///< CI fallback.
  ContextSelector *Selector = nullptr;

  ContextManager CM;
  CSManager CSM;
  CallGraph CG;
  PointerFlowGraph PFG;
  std::vector<SolverPlugin *> Plugins;

  // Per-pointer state (indexed by PtrId; under cycle elimination only
  // representative slots are live). Pts is a deque so references to
  // individual sets stay valid while new pointers are interned mid-flight
  // (enqueueSet unions from a source set while growing the tables).
  std::deque<PointsToSet> Pts;
  std::vector<PointsToSet> Pending; ///< Facts awaiting the pointer's pop.
  std::vector<uint8_t> InQueue;     ///< By representative.

  // Two-level topology-aware worklist: Current is one sweep, sorted by
  // (approximate topological order, id) when it was sealed; pointers
  // dirtied during the sweep collect unsorted in Next and become the
  // next sweep. Entries may be stale after a collapse (absorbed ids, or
  // re-queued representatives) — the pop loop drops entries whose
  // representative's InQueue flag is clear.
  std::vector<PtrId> Current;
  std::size_t Cursor = 0;
  std::vector<PtrId> Next;

  // Online cycle elimination (null when Opts.CycleElimination is off).
  std::unique_ptr<SccCollapser> Scc;
  /// True while collapseClass runs: nested edge insertions must not
  /// re-enter detection (they are picked up by later probes or the
  /// periodic full pass instead).
  bool InCollapse = false;
  std::vector<PtrId> CycleScratch;

  // Lazily built per-type bitmaps over the CSObjId space: FilterMasks[T]
  // holds every interned object whose type is a subtype of T, so filtered
  // (cast / array-store) propagation is a word-parallel intersection
  // instead of a per-element subtype test. Extended on use as objects are
  // interned; object types never change, so the masks are append-only.
  std::vector<PointsToSet> FilterMasks;
  std::vector<uint32_t> FilterMaskCover; ///< #objs already classified.

  // Cut sets (dynamic bitsets over StmtId / VarId).
  std::vector<uint8_t> CutStores;
  std::vector<uint8_t> CutReturns;
  std::vector<uint8_t> DeferredReturns;
  std::unordered_map<VarId, std::vector<PtrId>> PendingReturnTargets;
  std::unordered_set<uint64_t> ShortcutEdgeKeys;

  // Per-variable statement index: statements whose Base is this variable.
  std::vector<std::vector<StmtId>> BaseUses;

  SolverStats Stats;
  bool Exhausted = false;
  bool Solved = false; ///< A solve()/resolveIncrement() has completed.
  Timer Clock;

  inline static const PointsToSet EmptyPts{};
};

} // namespace csc

#endif // CSC_PTA_SOLVER_H
