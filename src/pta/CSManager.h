//===- CSManager.h - Context-sensitive entity interning ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns the context-sensitive pointers and objects the solver works on:
/// (variable, context) pairs, (object, field) instance-field pointers,
/// array-element pointers, static-field pointers, and (allocation site,
/// heap context) abstract objects. All pointers share one dense PtrId space
/// so per-pointer solver state is plain array indexing.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_CSMANAGER_H
#define CSC_PTA_CSMANAGER_H

#include "support/Hash.h"
#include "support/Ids.h"

#include <unordered_map>
#include <vector>

namespace csc {

enum class PtrKind : uint8_t { Var, Field, Array, Static };

/// Descriptor of an interned pointer. Slot meaning depends on Kind:
///  Var:    A = VarId,   B = CtxId
///  Field:  A = CSObjId, B = FieldId
///  Array:  A = CSObjId
///  Static: A = FieldId
struct PtrInfo {
  PtrKind Kind;
  uint32_t A = InvalidId;
  uint32_t B = InvalidId;
};

/// An abstract object qualified by its heap context.
struct CSObjInfo {
  ObjId O = InvalidId;
  CtxId HeapCtx = InvalidId;
};

class CSManager {
public:
  PtrId getVarPtr(VarId V, CtxId C) {
    return internPtr(VarPtrs, {V, C}, PtrKind::Var, V, C);
  }
  PtrId getFieldPtr(CSObjId O, FieldId F) {
    return internPtr(FieldPtrs, {O, F}, PtrKind::Field, O, F);
  }
  PtrId getArrayPtr(CSObjId O) {
    return internPtr(ArrayPtrs, {O, 0}, PtrKind::Array, O, 0);
  }
  PtrId getStaticPtr(FieldId F) {
    return internPtr(StaticPtrs, {F, 0}, PtrKind::Static, F, 0);
  }

  CSObjId getCSObj(ObjId O, CtxId HeapCtx) {
    auto Key = std::make_pair(O, HeapCtx);
    auto It = CSObjIndex.find(Key);
    if (It != CSObjIndex.end())
      return It->second;
    CSObjId Id = static_cast<CSObjId>(CSObjs.size());
    CSObjs.push_back({O, HeapCtx});
    CSObjIndex.emplace(Key, Id);
    return Id;
  }

  const PtrInfo &ptr(PtrId P) const { return Ptrs[P]; }
  const CSObjInfo &csObj(CSObjId O) const { return CSObjs[O]; }

  uint32_t numPtrs() const { return static_cast<uint32_t>(Ptrs.size()); }
  uint32_t numCSObjs() const { return static_cast<uint32_t>(CSObjs.size()); }

private:
  using Key = std::pair<uint32_t, uint32_t>;
  using Map = std::unordered_map<Key, PtrId, PairHash>;

  PtrId internPtr(Map &M, Key K, PtrKind Kind, uint32_t A, uint32_t B) {
    auto It = M.find(K);
    if (It != M.end())
      return It->second;
    PtrId Id = static_cast<PtrId>(Ptrs.size());
    Ptrs.push_back({Kind, A, B});
    M.emplace(K, Id);
    return Id;
  }

  std::vector<PtrInfo> Ptrs;
  Map VarPtrs, FieldPtrs, ArrayPtrs, StaticPtrs;
  std::vector<CSObjInfo> CSObjs;
  std::unordered_map<Key, CSObjId, PairHash> CSObjIndex;
};

} // namespace csc

#endif // CSC_PTA_CSMANAGER_H
