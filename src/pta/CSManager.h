//===- CSManager.h - Context-sensitive entity interning ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns the context-sensitive pointers and objects the solver works on:
/// (variable, context) pairs, (object, field) instance-field pointers,
/// array-element pointers, static-field pointers, and (allocation site,
/// heap context) abstract objects. All pointers share one dense PtrId space
/// so per-pointer solver state is plain array indexing.
///
/// Thread-safety contract (parallel sweeps): interning is NOT thread-safe
/// and deliberately stays that way — ids must be assigned in discovery
/// order so runs are deterministic, and a mutex here would sit on the
/// hottest path of the serial engine. Instead the solver confines every
/// interning call to its serial phases and freezes the manager (see
/// setFrozen) while the parallel flow phases run; during a frozen window
/// the const queries (ptr, csObj, numPtrs, numCSObjs) are safe from any
/// thread because nothing mutates the tables. Debug builds assert that no
/// intern path runs while frozen.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_CSMANAGER_H
#define CSC_PTA_CSMANAGER_H

#include "support/DenseTable.h"
#include "support/Hash.h"
#include "support/Ids.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace csc {

enum class PtrKind : uint8_t { Var, Field, Array, Static };

/// Descriptor of an interned pointer. Slot meaning depends on Kind:
///  Var:    A = VarId,   B = CtxId
///  Field:  A = CSObjId, B = FieldId
///  Array:  A = CSObjId
///  Static: A = FieldId
struct PtrInfo {
  PtrKind Kind;
  uint32_t A = InvalidId;
  uint32_t B = InvalidId;
};

/// An abstract object qualified by its heap context.
struct CSObjInfo {
  ObjId O = InvalidId;
  CtxId HeapCtx = InvalidId;
};

class CSManager {
public:
  PtrId getVarPtr(VarId V, CtxId C) {
    // Dense fast path for the empty context: the CI-based analyses (CI
    // itself and Cut-Shortcut) intern every variable there, and the
    // lookup sits on the propagation hot path.
    if (C == EmptyCtx) {
      PtrId Cached = denseGet(VarPtrCI, V, InvalidId);
      if (Cached != InvalidId)
        return Cached;
      PtrId Id = internPtr(VarPtrs, {V, C}, PtrKind::Var, V, C);
      denseAssign(VarPtrCI, V, Id, InvalidId);
      return Id;
    }
    return internPtr(VarPtrs, {V, C}, PtrKind::Var, V, C);
  }
  PtrId getFieldPtr(CSObjId O, FieldId F) {
    // Objects have a handful of fields: a per-object (field, ptr) list
    // beats hashing on the hot path.
    if (O >= FieldPtrCache.size())
      FieldPtrCache.resize(O + 1);
    for (const auto &[CachedF, CachedP] : FieldPtrCache[O])
      if (CachedF == F)
        return CachedP;
    PtrId Id = internPtr(FieldPtrs, {O, F}, PtrKind::Field, O, F);
    FieldPtrCache[O].emplace_back(F, Id);
    return Id;
  }
  PtrId getArrayPtr(CSObjId O) {
    PtrId Cached = denseGet(ArrayPtrCI, O, InvalidId);
    if (Cached != InvalidId)
      return Cached;
    PtrId Id = internPtr(ArrayPtrs, {O, 0}, PtrKind::Array, O, 0);
    denseAssign(ArrayPtrCI, O, Id, InvalidId);
    return Id;
  }
  PtrId getStaticPtr(FieldId F) {
    PtrId Cached = denseGet(StaticPtrCI, F, InvalidId);
    if (Cached != InvalidId)
      return Cached;
    PtrId Id = internPtr(StaticPtrs, {F, 0}, PtrKind::Static, F, 0);
    denseAssign(StaticPtrCI, F, Id, InvalidId);
    return Id;
  }

  CSObjId getCSObj(ObjId O, CtxId HeapCtx) {
    if (HeapCtx == EmptyCtx) {
      CSObjId Cached = denseGet(CSObjCI, O, InvalidId);
      if (Cached != InvalidId)
        return Cached;
      CSObjId Id = internCSObj(O, HeapCtx);
      denseAssign(CSObjCI, O, Id, InvalidId);
      return Id;
    }
    return internCSObj(O, HeapCtx);
  }

  /// Pre-sizes the interning tables from the program's entity counts.
  void reserveHint(std::size_t Vars, std::size_t Objs) {
    Ptrs.reserve(Vars + 2 * Objs);
    VarPtrs.reserve(Vars);
    FieldPtrs.reserve(2 * Objs);
    CSObjs.reserve(Objs);
    CSObjIndex.reserve(Objs);
    FieldPtrCache.reserve(Objs);
  }

  const PtrInfo &ptr(PtrId P) const { return Ptrs[P]; }
  const CSObjInfo &csObj(CSObjId O) const { return CSObjs[O]; }

  uint32_t numPtrs() const { return static_cast<uint32_t>(Ptrs.size()); }
  uint32_t numCSObjs() const { return static_cast<uint32_t>(CSObjs.size()); }

  /// Marks the interning tables immutable (the solver's parallel sweep
  /// phases) or mutable again (its serial phases). Purely a debug-build
  /// tripwire: intern paths assert they never run while frozen, i.e. ids
  /// can never be assigned from a racy context.
  void setFrozen(bool F) { Frozen = F; }

private:
  using Key = std::pair<uint32_t, uint32_t>;
  using Map = std::unordered_map<Key, PtrId, PairHash>;

  static constexpr CtxId EmptyCtx = 0; ///< ContextManager::empty().

  PtrId internPtr(Map &M, Key K, PtrKind Kind, uint32_t A, uint32_t B) {
    auto It = M.find(K);
    if (It != M.end())
      return It->second;
    assert(!Frozen && "interning during a parallel sweep phase");
    PtrId Id = static_cast<PtrId>(Ptrs.size());
    Ptrs.push_back({Kind, A, B});
    M.emplace(K, Id);
    return Id;
  }

  CSObjId internCSObj(ObjId O, CtxId HeapCtx) {
    auto Key = std::make_pair(O, HeapCtx);
    auto It = CSObjIndex.find(Key);
    if (It != CSObjIndex.end())
      return It->second;
    assert(!Frozen && "interning during a parallel sweep phase");
    CSObjId Id = static_cast<CSObjId>(CSObjs.size());
    CSObjs.push_back({O, HeapCtx});
    CSObjIndex.emplace(Key, Id);
    return Id;
  }

  std::vector<PtrInfo> Ptrs;
  Map VarPtrs, FieldPtrs, ArrayPtrs, StaticPtrs;
  std::vector<CSObjInfo> CSObjs;
  std::unordered_map<Key, CSObjId, PairHash> CSObjIndex;

  // Dense hot-path caches over the hash maps above (see the getters).
  std::vector<PtrId> VarPtrCI;    ///< By VarId, empty context only.
  std::vector<PtrId> ArrayPtrCI;  ///< By CSObjId.
  std::vector<PtrId> StaticPtrCI; ///< By FieldId.
  std::vector<CSObjId> CSObjCI;   ///< By ObjId, empty heap context only.
  std::vector<std::vector<std::pair<FieldId, PtrId>>> FieldPtrCache;
  bool Frozen = false; ///< Debug tripwire; see setFrozen.
};

} // namespace csc

#endif // CSC_PTA_CSMANAGER_H
