//===- Plugin.h - Solver extension hooks ------------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observer interface through which analyses extend the solver (mirroring
/// Tai-e's plugin architecture, on which the paper's Java implementation is
/// built). The Cut-Shortcut patterns are implemented as one such plugin.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_PLUGIN_H
#define CSC_PTA_PLUGIN_H

#include "support/Ids.h"
#include "support/PointsToSet.h"

namespace csc {

class Solver;

/// Why a PFG edge was added; lets plugins distinguish e.g. return edges
/// (the container pattern excludes Transfer-method return edges from host
/// propagation, [PropHost] in Fig. 10).
enum class EdgeOrigin : uint8_t {
  Assign,
  Cast,
  Load,
  Store,
  ArrayLoad,
  ArrayStore,
  StaticLoad,
  StaticStore,
  Param,
  Return,
  Shortcut,
};

/// Solver observer. All hooks run synchronously inside the solver loop;
/// implementations may call back into the solver (add shortcut edges,
/// register cuts, query points-to sets).
class SolverPlugin {
public:
  virtual ~SolverPlugin();

  /// Called once before solving starts (after the solver is constructed).
  virtual void onStart(Solver &S);
  /// A (method, context) became reachable; fired before its statements are
  /// processed, so cut sets registered here suppress that method's edges.
  virtual void onNewMethod(CSMethodId M);
  /// pt(P) grew by Delta (already inserted). The delta is a set the solver
  /// reuses across iterations: consume it inside the hook (forEach or bulk
  /// ops); do not keep the reference.
  virtual void onNewPointsTo(PtrId P, const PointsToSet &Delta);
  /// A new call edge was added; fired before parameter/return edges.
  virtual void onNewCallEdge(CSCallSiteId CS, CSMethodId Callee);
  /// A new PFG edge Src -> Dst was added.
  virtual void onNewPFGEdge(PtrId Src, PtrId Dst, EdgeOrigin Origin);
  /// Called whenever the worklist drains. Plugins may add edges/facts
  /// here (e.g. flush deferred return edges whose cut status could not be
  /// decided); if they do, solving resumes. May fire multiple times.
  virtual void onFixpoint();
  /// Called when the final fixpoint is reached (before projection).
  virtual void onFinish();
};

} // namespace csc

#endif // CSC_PTA_PLUGIN_H
