//===- PointerFlowGraph.h - The PFG manipulated by Cut-Shortcut -*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pointer flow graph: nodes are interned pointers (PtrId), an edge
/// s -> t is the subset constraint pt(s) ⊆ pt(t) ([Propagate] in Fig. 7).
/// Cast edges carry a type filter. Predecessor lists are maintained because
/// the Cut-Shortcut relay rule ([RelayEdge], Fig. 9) needs the in-edges of
/// cut return variables.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_POINTERFLOWGRAPH_H
#define CSC_PTA_POINTERFLOWGRAPH_H

#include "support/Hash.h"
#include "support/Ids.h"

#include <unordered_set>
#include <vector>

namespace csc {

struct PFGEdge {
  PtrId To = InvalidId;
  TypeId Filter = InvalidId; ///< InvalidId = unfiltered.
};

class PointerFlowGraph {
public:
  /// Adds s -> t (with optional cast filter); returns false if present.
  bool addEdge(PtrId S, PtrId T, TypeId Filter) {
    EdgeKey Key{S, T, Filter};
    if (!Edges.insert(Key).second)
      return false;
    ensure(std::max(S, T));
    Succ[S].push_back({T, Filter});
    Pred[T].push_back(S);
    ++NumEdges;
    return true;
  }

  const std::vector<PFGEdge> &succ(PtrId P) const {
    return P < Succ.size() ? Succ[P] : EmptyEdges;
  }
  const std::vector<PtrId> &pred(PtrId P) const {
    return P < Pred.size() ? Pred[P] : EmptyPreds;
  }

  uint64_t numEdges() const { return NumEdges; }

private:
  struct EdgeKey {
    PtrId S;
    PtrId T;
    TypeId Filter;
    bool operator==(const EdgeKey &O) const {
      return S == O.S && T == O.T && Filter == O.Filter;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey &K) const {
      size_t Seed = K.S;
      hashCombine(Seed, K.T);
      hashCombine(Seed, K.Filter);
      return Seed;
    }
  };

  void ensure(PtrId P) {
    if (P >= Succ.size()) {
      Succ.resize(P + 1);
      Pred.resize(P + 1);
    }
  }

  std::vector<std::vector<PFGEdge>> Succ;
  std::vector<std::vector<PtrId>> Pred;
  std::unordered_set<EdgeKey, EdgeKeyHash> Edges;
  uint64_t NumEdges = 0;

  inline static const std::vector<PFGEdge> EmptyEdges{};
  inline static const std::vector<PtrId> EmptyPreds{};
};

} // namespace csc

#endif // CSC_PTA_POINTERFLOWGRAPH_H
