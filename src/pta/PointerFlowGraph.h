//===- PointerFlowGraph.h - The PFG manipulated by Cut-Shortcut -*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pointer flow graph: nodes are interned pointers (PtrId), an edge
/// s -> t is the subset constraint pt(s) ⊆ pt(t) ([Propagate] in Fig. 7).
/// Cast edges carry a type filter. Predecessor lists are maintained because
/// the Cut-Shortcut relay rule ([RelayEdge], Fig. 9) needs the in-edges of
/// cut return variables.
///
/// This graph always stores **original, un-collapsed** endpoints: under
/// online cycle elimination (SccCollapser) the solver propagates on a
/// separate representative-level adjacency, while this graph remains the
/// system of record for edge dedup and Stats.PFGEdges, for the plugins'
/// pred()/succ() queries, for shortcut-edge bookkeeping, and for graph
/// dumps — so every consumer sees the same PFG whether or not cycles
/// were collapsed.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_POINTERFLOWGRAPH_H
#define CSC_PTA_POINTERFLOWGRAPH_H

#include "support/Hash.h"
#include "support/Ids.h"

#include <unordered_set>
#include <vector>

namespace csc {

struct PFGEdge {
  PtrId To = InvalidId;
  TypeId Filter = InvalidId; ///< InvalidId = unfiltered.
};

class PointerFlowGraph {
public:
  /// Adds s -> t (with optional cast filter); returns false if present.
  /// Dedup is hybrid: low-degree sources scan their (short) successor
  /// list, only sources past SmallDegree pay for hashed membership — the
  /// common case in the solver hot path is a handful of out-edges.
  bool addEdge(PtrId S, PtrId T, TypeId Filter) {
    ensure(std::max(S, T));
    std::vector<PFGEdge> &Out = Succ[S];
    if (Out.size() <= SmallDegree) {
      for (const PFGEdge &E : Out)
        if (E.To == T && E.Filter == Filter)
          return false;
      if (Out.size() == SmallDegree) {
        // Crossing the threshold: seed the hash set with every edge of
        // this source (including the new one) before switching over.
        for (const PFGEdge &E : Out)
          Edges.insert({S, E.To, E.Filter});
        Edges.insert({S, T, Filter});
      }
    } else if (!Edges.insert({S, T, Filter}).second) {
      return false;
    }
    Out.push_back({T, Filter});
    Pred[T].push_back(S);
    ++NumEdges;
    return true;
  }

  /// Pre-sizes the node tables and the high-degree dedup set (rehash
  /// storms on the hot path showed up in profiles).
  void reserveHint(std::size_t Nodes, std::size_t Edges) {
    Succ.reserve(Nodes);
    Pred.reserve(Nodes);
    this->Edges.reserve(Edges / 4);
  }

  const std::vector<PFGEdge> &succ(PtrId P) const {
    return P < Succ.size() ? Succ[P] : EmptyEdges;
  }
  const std::vector<PtrId> &pred(PtrId P) const {
    return P < Pred.size() ? Pred[P] : EmptyPreds;
  }

  uint64_t numEdges() const { return NumEdges; }

private:
  struct EdgeKey {
    PtrId S;
    PtrId T;
    TypeId Filter;
    bool operator==(const EdgeKey &O) const {
      return S == O.S && T == O.T && Filter == O.Filter;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey &K) const {
      size_t Seed = K.S;
      hashCombine(Seed, K.T);
      hashCombine(Seed, K.Filter);
      return Seed;
    }
  };

  void ensure(PtrId P) {
    if (P >= Succ.size()) {
      Succ.resize(P + 1);
      Pred.resize(P + 1);
    }
  }

  /// Sources with at most this many out-edges dedup by linear scan.
  static constexpr std::size_t SmallDegree = 8;

  std::vector<std::vector<PFGEdge>> Succ;
  std::vector<std::vector<PtrId>> Pred;
  std::unordered_set<EdgeKey, EdgeKeyHash> Edges;
  uint64_t NumEdges = 0;

  inline static const std::vector<PFGEdge> EmptyEdges{};
  inline static const std::vector<PtrId> EmptyPreds{};
};

} // namespace csc

#endif // CSC_PTA_POINTERFLOWGRAPH_H
