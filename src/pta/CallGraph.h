//===- CallGraph.h - On-the-fly context-sensitive call graph ----*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph constructed on the fly by the solver. Context-sensitive
/// nodes are interned (call site, context) and (method, context) pairs; the
/// CI projection used by clients (#call-edge, #reach-mtd) is maintained
/// incrementally.
///
/// Thread-safety contract (parallel sweeps): like CSManager, interning and
/// edge insertion are NOT thread-safe — CSCallSiteId/CSMethodId assignment
/// in discovery order is part of the determinism story. The solver calls
/// every mutating method (getCSCallSite, getCSMethod, addEdge,
/// addReachable) only from its serial phases and freezes the graph (see
/// setFrozen) across the parallel flow phases, during which the const
/// queries are safe from any thread. Debug builds assert the contract.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_CALLGRAPH_H
#define CSC_PTA_CALLGRAPH_H

#include "support/DenseTable.h"
#include "support/Hash.h"
#include "support/Ids.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace csc {

struct CSCallSiteInfo {
  CallSiteId CS = InvalidId;
  CtxId Ctx = InvalidId;
};

struct CSMethodInfo {
  MethodId M = InvalidId;
  CtxId Ctx = InvalidId;
};

class CallGraph {
public:
  CSCallSiteId getCSCallSite(CallSiteId CS, CtxId C) {
    // Dense fast path for the empty context (the CI-based analyses; see
    // CSManager for the same pattern on pointers).
    if (C == 0) {
      CSCallSiteId Cached = denseGet(CSSiteCI, CS, InvalidId);
      if (Cached != InvalidId)
        return Cached;
      CSCallSiteId Id = internCSCallSite(CS, C);
      denseAssign(CSSiteCI, CS, Id, InvalidId);
      return Id;
    }
    return internCSCallSite(CS, C);
  }

  CSMethodId getCSMethod(MethodId M, CtxId C) {
    if (C == 0) {
      CSMethodId Cached = denseGet(CSMethodCI, M, InvalidId);
      if (Cached != InvalidId)
        return Cached;
      CSMethodId Id = internCSMethod(M, C);
      denseAssign(CSMethodCI, M, Id, InvalidId);
      return Id;
    }
    return internCSMethod(M, C);
  }

  /// Pre-sizes the dedup tables from the program's call-site count.
  void reserveHint(std::size_t CallSites) {
    EdgeSet.reserve(CallSites * 2);
    CIEdgeSet.reserve(CallSites * 2);
    CSIndex.reserve(CallSites);
  }

  /// Adds a call edge; returns false if it already existed.
  bool addEdge(CSCallSiteId CS, CSMethodId Callee) {
    uint64_t Key = packPair(CS, Callee);
    if (!EdgeSet.insert(Key).second)
      return false;
    Callees[CS].push_back(Callee);
    Callers[Callee].push_back(CS);
    ++NumCSEdges;
    // CI projection.
    uint64_t CIKey = packPair(CSSites[CS].CS, CSMethods[Callee].M);
    if (CIEdgeSet.insert(CIKey).second)
      CIEdges.push_back({CSSites[CS].CS, CSMethods[Callee].M});
    return true;
  }

  /// Marks a context-sensitive method reachable; returns true if new.
  bool addReachable(CSMethodId M) {
    if (!ReachableCS.insert(M).second)
      return false;
    ReachableCI.insert(CSMethods[M].M);
    ReachableList.push_back(M);
    return true;
  }

  const CSCallSiteInfo &csCallSite(CSCallSiteId C) const {
    return CSSites[C];
  }
  const CSMethodInfo &csMethod(CSMethodId M) const { return CSMethods[M]; }

  const std::vector<CSMethodId> &calleesOf(CSCallSiteId CS) const {
    return Callees[CS];
  }
  const std::vector<CSCallSiteId> &callersOf(CSMethodId M) const {
    return Callers[M];
  }

  const std::vector<CSMethodId> &reachableMethods() const {
    return ReachableList;
  }
  bool isReachableCI(MethodId M) const { return ReachableCI.count(M) != 0; }
  const std::unordered_set<MethodId> &reachableCI() const {
    return ReachableCI;
  }

  /// CI-projected call edges (call site, target method), deduplicated.
  const std::vector<std::pair<CallSiteId, MethodId>> &ciEdges() const {
    return CIEdges;
  }

  uint64_t numCSEdges() const { return NumCSEdges; }
  uint32_t numCSMethods() const {
    return static_cast<uint32_t>(CSMethods.size());
  }

  /// Debug tripwire for the solver's parallel sweep phases; mirrors
  /// CSManager::setFrozen.
  void setFrozen(bool F) { Frozen = F; }

private:
  CSCallSiteId internCSCallSite(CallSiteId CS, CtxId C) {
    auto Key = std::make_pair(CS, C);
    auto It = CSIndex.find(Key);
    if (It != CSIndex.end())
      return It->second;
    assert(!Frozen && "interning during a parallel sweep phase");
    CSCallSiteId Id = static_cast<CSCallSiteId>(CSSites.size());
    CSSites.push_back({CS, C});
    Callees.emplace_back();
    CSIndex.emplace(Key, Id);
    return Id;
  }

  CSMethodId internCSMethod(MethodId M, CtxId C) {
    auto Key = std::make_pair(M, C);
    auto It = MIndex.find(Key);
    if (It != MIndex.end())
      return It->second;
    assert(!Frozen && "interning during a parallel sweep phase");
    CSMethodId Id = static_cast<CSMethodId>(CSMethods.size());
    CSMethods.push_back({M, C});
    Callers.emplace_back();
    MIndex.emplace(Key, Id);
    return Id;
  }

  std::vector<CSCallSiteInfo> CSSites;
  std::vector<CSMethodInfo> CSMethods;
  std::vector<CSCallSiteId> CSSiteCI; ///< By CallSiteId, empty ctx only.
  std::vector<CSMethodId> CSMethodCI; ///< By MethodId, empty ctx only.
  std::unordered_map<std::pair<uint32_t, uint32_t>, CSCallSiteId, PairHash>
      CSIndex;
  std::unordered_map<std::pair<uint32_t, uint32_t>, CSMethodId, PairHash>
      MIndex;
  std::vector<std::vector<CSMethodId>> Callees;  ///< Indexed by CSCallSiteId.
  std::vector<std::vector<CSCallSiteId>> Callers; ///< Indexed by CSMethodId.
  std::unordered_set<uint64_t> EdgeSet;
  std::unordered_set<uint64_t> CIEdgeSet;
  std::vector<std::pair<CallSiteId, MethodId>> CIEdges;
  std::unordered_set<CSMethodId> ReachableCS;
  std::unordered_set<MethodId> ReachableCI;
  std::vector<CSMethodId> ReachableList;
  uint64_t NumCSEdges = 0;
  bool Frozen = false; ///< Debug tripwire; see setFrozen.
};

} // namespace csc

#endif // CSC_PTA_CALLGRAPH_H
