//===- SccCollapser.cpp - Online PFG cycle elimination --------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/SccCollapser.h"

#include <algorithm>
#include <cassert>

using namespace csc;

void SccCollapser::reserveHint(std::size_t Nodes) {
  Size.reserve(Nodes);
  Order.reserve(Nodes);
}

void SccCollapser::ensureNode(PtrId P) {
  if (P < Order.size())
    return;
  std::size_t Old = Order.size();
  Size.resize(P + 1, 1);
  Order.resize(P + 1);
  // Creation order approximates topological order until the first full
  // pass: edges mostly point from earlier-discovered to later-discovered
  // pointers. Ids always exceed every pass-assigned order (the pass emits
  // fewer SCCs than there are nodes), so post-pass nodes sort last.
  for (std::size_t I = Old; I <= P; ++I)
    Order[I] = static_cast<uint32_t>(I);
}

bool SccCollapser::findCycle(PtrId S, PtrId T, std::vector<PtrId> &CycleOut) {
  CycleOut.clear();
  std::size_t N = Order.size();
  if (VisitMark.size() < N)
    VisitMark.resize(N, 0);
  if (++VisitEpoch == 0) { // Epoch wrap: invalidate all marks.
    std::fill(VisitMark.begin(), VisitMark.end(), 0);
    VisitEpoch = 1;
  }

  // DFS from T over unfiltered representative edges looking for S. The
  // stack holds the current path, so a hit turns directly into the cycle
  // T -> ... -> S (closed by the just-inserted S -> T edge). Two prunes
  // keep probes cheap: big collapsed classes are never entered (their
  // merged successor snapshot alone can dwarf the whole probe; the full
  // pass collapses through them instead), and a hard node budget caps
  // the walk. An order-based Pearce/Kelly region prune was tried and
  // dropped: the approximate order goes stale enough mid-run that it
  // mostly pruned genuine cycles into the slow path. Each frame
  // snapshots its successor list once (scratch pooled by depth).
  uint32_t Budget = ProbeBudget;
  ProbeStack.clear();
  ProbeStack.push_back({T, 0});
  if (ProbeSuccScratch.empty())
    ProbeSuccScratch.emplace_back();
  ProbeSuccScratch[0].clear();
  forEachUnfilteredSucc(T, [&](PtrId Nxt) {
    ProbeSuccScratch[0].push_back(Nxt);
    return true;
  });
  VisitMark[T] = VisitEpoch;
  while (!ProbeStack.empty()) {
    std::size_t Depth = ProbeStack.size() - 1;
    ProbeFrame &F = ProbeStack.back();
    const std::vector<PtrId> &Out = ProbeSuccScratch[Depth];
    bool Descended = false;
    while (F.EdgeIx < Out.size()) {
      PtrId Nxt = Out[F.EdgeIx++];
      if (Nxt == S) {
        for (const ProbeFrame &PF : ProbeStack)
          CycleOut.push_back(PF.Node);
        CycleOut.push_back(S);
        ++Stats.OnlineCollapses;
        return true;
      }
      if (Nxt >= VisitMark.size() || VisitMark[Nxt] == VisitEpoch ||
          classSize(Nxt) > ProbeClassBound)
        continue;
      if (Budget == 0) {
        ++AbortedProbes; // The periodic full pass will mop up.
        return false;
      }
      --Budget;
      VisitMark[Nxt] = VisitEpoch;
      ProbeStack.push_back({Nxt, 0});
      if (ProbeSuccScratch.size() <= Depth + 1)
        ProbeSuccScratch.emplace_back();
      ProbeSuccScratch[Depth + 1].clear();
      forEachUnfilteredSucc(Nxt, [&](PtrId N2) {
        ProbeSuccScratch[Depth + 1].push_back(N2);
        return true;
      });
      Descended = true;
      break;
    }
    if (!Descended && F.EdgeIx >= Out.size())
      ProbeStack.pop_back();
  }
  return false;
}

void SccCollapser::fullPass(std::vector<std::vector<PtrId>> &SccsOut,
                            uint64_t WorkDone) {
  ++Stats.FullPasses;
  const uint32_t N = static_cast<uint32_t>(Order.size());

  // Materialize the representative-level unfiltered graph once (CSR):
  // the pass is O(V+E) anyway and a compact transient copy beats chasing
  // member lists from inside the Tarjan loops.
  std::vector<uint32_t> Head(N + 1, 0);
  for (PtrId P = 0; P < N; ++P) {
    PtrId R = rep(P);
    for (const PFGEdge &E : PFG.succ(P))
      if (E.Filter == InvalidId && rep(E.To) != R)
        ++Head[R + 1];
  }
  for (uint32_t I = 0; I < N; ++I)
    Head[I + 1] += Head[I];
  std::vector<PtrId> Adj(Head[N]);
  {
    std::vector<uint32_t> Fill(Head.begin(), Head.end() - 1);
    for (PtrId P = 0; P < N; ++P) {
      PtrId R = rep(P);
      for (const PFGEdge &E : PFG.succ(P)) {
        PtrId T = E.Filter == InvalidId ? rep(E.To) : R;
        if (T != R)
          Adj[Fill[R]++] = T;
      }
    }
  }

  // Iterative Tarjan over the condensed graph. Emission order is reverse
  // topological (sink components first), which doubles as the order
  // refresh: SCC k of K gets order K-1-k, so sources sort before sinks
  // in the worklist.
  std::vector<uint32_t> Index(N, InvalidId), Lowlink(N, 0);
  std::vector<uint32_t> SccIx(N, InvalidId);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<PtrId> TarjanStack;
  struct Frame {
    PtrId Node;
    uint32_t EdgeIx;
  };
  std::vector<Frame> Dfs;
  uint32_t NextIndex = 0, NumSccs = 0;
  std::vector<PtrId> Comp;

  for (PtrId Root = 0; Root < N; ++Root) {
    if (Index[Root] != InvalidId || rep(Root) != Root)
      continue;
    Dfs.push_back({Root, Head[Root]});
    Index[Root] = Lowlink[Root] = NextIndex++;
    TarjanStack.push_back(Root);
    OnStack[Root] = 1;
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      bool Descended = false;
      while (F.EdgeIx < Head[F.Node + 1]) {
        PtrId W = Adj[F.EdgeIx++];
        if (Index[W] == InvalidId) {
          Index[W] = Lowlink[W] = NextIndex++;
          TarjanStack.push_back(W);
          OnStack[W] = 1;
          Dfs.push_back({W, Head[W]});
          Descended = true;
          break;
        }
        if (OnStack[W] && Index[W] < Lowlink[F.Node])
          Lowlink[F.Node] = Index[W];
      }
      if (Descended)
        continue;
      // F.Node finished: emit its SCC if it is a root.
      PtrId Done = F.Node;
      if (Lowlink[Done] == Index[Done]) {
        Comp.clear();
        for (;;) {
          PtrId M = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[M] = 0;
          SccIx[M] = NumSccs;
          Comp.push_back(M);
          if (M == Done)
            break;
        }
        ++NumSccs;
        if (Comp.size() > 1)
          SccsOut.push_back(Comp);
      }
      Dfs.pop_back();
      if (!Dfs.empty() && Lowlink[Done] < Lowlink[Dfs.back().Node])
        Lowlink[Dfs.back().Node] = Lowlink[Done];
    }
  }

  for (PtrId P = 0; P < N; ++P)
    if (SccIx[P] != InvalidId)
      Order[P] = NumSccs - 1 - SccIx[P];

  EdgesSincePass = 0;
  AbortedProbes = 0;
  PassEdgeThreshold = std::max<uint64_t>(512, NumEdges);
  // Productive passes re-check soon (×2 work); unproductive ones back
  // off (×4), and after two unproductive passes in a row the work
  // trigger retires entirely — the standing cycles are collapsed, and
  // genuinely new structure re-arms scheduling through the edge-growth
  // trigger (and aborted probes) instead.
  if (SccsOut.empty()) {
    if (++UnproductivePasses >= 2)
      NextPassWork = ~0ULL;
    else
      NextPassWork = std::max<uint64_t>(4 * WorkDone, 16 * 1024);
  } else {
    UnproductivePasses = 0;
    NextPassWork = std::max<uint64_t>(2 * WorkDone, 16 * 1024);
  }
}

PtrId SccCollapser::mergeClass(const std::vector<PtrId> &Reps) {
  assert(Reps.size() >= 2 && "nothing to merge");

  // Snapshot per-class state before the union-find rewires rep().
  std::vector<PtrId> AllMembers;
  uint32_t MinOrder = InvalidId;
  uint64_t Total = 0;
  for (PtrId R : Reps) {
    ensureNode(R);
    Total += Size[R];
    MinOrder = std::min(MinOrder, Order[R]);
    if (const std::vector<PtrId> *M = membersOrNull(R))
      AllMembers.insert(AllMembers.end(), M->begin(), M->end());
    else
      AllMembers.push_back(R);
    Members.erase(R);
  }

  PtrId W = Reps[0];
  uint32_t WinnerPrevSize = Size[W];
  for (std::size_t I = 1; I < Reps.size(); ++I) {
    uint32_t SizeI = Size[Reps[I]];
    if (UF.unite(W, Reps[I], W) && W == Reps[I])
      WinnerPrevSize = SizeI;
  }

  Size[W] = static_cast<uint32_t>(Total);
  Order[W] = MinOrder;
  std::sort(AllMembers.begin(), AllMembers.end());
  // Mark everyone but the winner absorbed (rep()'s fast-path bitset).
  std::size_t NeedWords =
      (static_cast<std::size_t>(AllMembers.back()) >> 6) + 1;
  if (Absorbed.size() < NeedWords)
    Absorbed.resize(NeedWords, 0);
  for (PtrId M : AllMembers)
    if (M != W)
      Absorbed[M >> 6] |= 1ULL << (M & 63);
  ++Stats.SccsFound;
  Stats.MembersCollapsed += Total - WinnerPrevSize;
  Members[W] = std::move(AllMembers);
  return W;
}
