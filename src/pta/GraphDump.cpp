//===- GraphDump.cpp - Graphviz export of analysis graphs -----------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/GraphDump.h"

#include <sstream>

using namespace csc;

namespace {

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

std::string ptrLabel(const Solver &S, PtrId Pr) {
  const Program &P = S.program();
  const CSManager &CSM = S.csManager();
  const PtrInfo &PI = CSM.ptr(Pr);
  std::ostringstream OS;
  switch (PI.Kind) {
  case PtrKind::Var: {
    const VarInfo &V = P.var(PI.A);
    OS << P.method(V.Method).Name << "." << V.Name;
    if (PI.B != 0)
      OS << "@" << PI.B;
    break;
  }
  case PtrKind::Field: {
    const CSObjInfo &O = CSM.csObj(PI.A);
    OS << "o" << O.O << "." << P.field(PI.B).Name;
    break;
  }
  case PtrKind::Array:
    OS << "o" << CSM.csObj(PI.A).O << "[]";
    break;
  case PtrKind::Static:
    OS << P.type(P.field(PI.A).Owner).Name << "::" << P.field(PI.A).Name;
    break;
  }
  return OS.str();
}

} // namespace

std::string csc::dumpPFGDot(const Solver &S, uint32_t MaxNodes) {
  const CSManager &CSM = S.csManager();
  std::ostringstream OS;
  OS << "digraph PFG {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  uint32_t N = CSM.numPtrs();
  if (MaxNodes && N > MaxNodes) {
    OS << "  // graph truncated: " << N << " nodes exceed the limit\n";
    N = MaxNodes;
  }
  for (PtrId Pr = 0; Pr < N; ++Pr) {
    bool HasEdge = !S.pfg().succ(Pr).empty() || !S.pfg().pred(Pr).empty();
    if (!HasEdge)
      continue;
    OS << "  n" << Pr << " [label=\"" << escape(ptrLabel(S, Pr))
       << "\"];\n";
  }
  for (PtrId Pr = 0; Pr < N; ++Pr)
    for (const PFGEdge &E : S.pfg().succ(Pr)) {
      if (E.To >= N)
        continue;
      OS << "  n" << Pr << " -> n" << E.To;
      if (S.isShortcutEdge(Pr, E.To))
        OS << " [color=blue, penwidth=2, label=\"shortcut\"]";
      else if (E.Filter != InvalidId)
        OS << " [style=dashed, label=\"("
           << escape(S.program().type(E.Filter).Name) << ")\"]";
      OS << ";\n";
    }
  OS << "}\n";
  return OS.str();
}

std::string csc::dumpCallGraphDot(const Program &P, const PTAResult &R) {
  std::ostringstream OS;
  OS << "digraph CG {\n  node [shape=box, fontsize=10];\n";
  for (MethodId M : R.reachableMethods())
    OS << "  m" << M << " [label=\"" << escape(P.methodString(M))
       << "\"];\n";
  for (CallSiteId CS = 0; CS < P.numCallSites(); ++CS) {
    MethodId Caller = P.callSite(CS).Caller;
    if (!R.isReachable(Caller))
      continue;
    for (MethodId Callee : R.calleesOf(CS))
      OS << "  m" << Caller << " -> m" << Callee << ";\n";
  }
  OS << "}\n";
  return OS.str();
}
