//===- GraphDump.h - Graphviz export of analysis graphs ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug/visualization helpers: renders the pointer flow graph (with
/// shortcut edges highlighted) and the CI call graph in Graphviz dot
/// syntax. Intended for small programs — the motivating examples of the
/// paper render nicely.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_GRAPHDUMP_H
#define CSC_PTA_GRAPHDUMP_H

#include "pta/Solver.h"

#include <string>

namespace csc {

/// Renders the solver's PFG as a dot digraph. Node labels are
/// "method.var", "obj.field", "obj[]" or "Class::field". \p MaxNodes
/// guards against accidentally dumping huge graphs (0 = no limit).
std::string dumpPFGDot(const Solver &S, uint32_t MaxNodes = 2000);

/// Renders the CI-projected call graph of a result as a dot digraph.
std::string dumpCallGraphDot(const Program &P, const PTAResult &R);

} // namespace csc

#endif // CSC_PTA_GRAPHDUMP_H
