//===- PTAResult.h - Analysis result & CI projections -----------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of one pointer-analysis run. Clients consume the
/// context-insensitive projection (points-to sets merged over contexts,
/// call edges deduplicated per call site), which is also what the paper's
/// precision metrics are computed on.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_PTARESULT_H
#define CSC_PTA_PTARESULT_H

#include "support/Hash.h"
#include "support/Ids.h"
#include "support/PointsToSet.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace csc {

/// Online cycle-elimination counters (SolverOptions::CycleElimination).
/// Scheduling diagnostics like SolverStats::WorklistPops: reported via
/// `cscpta --stats` and benches, never serialized into result reports —
/// result JSON must stay a pure function of the computed fixpoint.
struct SccStats {
  uint64_t SccsFound = 0;        ///< Collapse events (online + full pass).
  uint64_t MembersCollapsed = 0; ///< Pointers absorbed into another rep.
  uint64_t OnlineCollapses = 0;  ///< Found by the edge-insertion probe.
  uint64_t FullPasses = 0;       ///< Periodic whole-graph SCC passes.
  /// Estimated (pointer, object) insertions the collapsed classes would
  /// have performed separately: each delta merged into a k-member class
  /// saves k-1 re-insertions plus their downstream re-propagation.
  uint64_t PropagationsSaved = 0;
};

struct SolverStats {
  /// Work measure: logical (pointer, object) additions. Under cycle
  /// elimination an insertion into a k-member representative counts k
  /// times, so at a completed fixpoint the value equals the sum of all
  /// per-pointer set sizes — identical with the subsystem on or off.
  uint64_t PtsInsertions = 0;
  uint64_t PFGEdges = 0;
  /// Worklist pops actually performed. Scheduling-dependent (changes
  /// with worklist order and cycle elimination), hence excluded from
  /// result JSON; see appendStatsJson.
  uint64_t WorklistPops = 0;
  uint64_t CallEdgesCS = 0;
  uint32_t NumPtrs = 0;
  uint32_t NumCSObjs = 0;
  uint32_t NumContexts = 0;
  uint32_t ReachableCS = 0;
  uint32_t ReachableCI = 0;
  SccStats Scc; ///< Cycle-elimination diagnostics (not serialized).
};

class PTAResult {
public:
  bool Exhausted = false; ///< True if a work/time budget was hit.
  double TimeMs = 0;
  SolverStats Stats;

  /// CI-projected points-to set of a variable (ObjIds).
  const PointsToSet &pt(VarId V) const {
    return V < VarPts.size() ? VarPts[V] : Empty;
  }
  /// CI-projected points-to set of an instance field.
  const PointsToSet &ptField(ObjId O, FieldId F) const {
    auto It = FieldPts.find({O, F});
    return It == FieldPts.end() ? Empty : It->second;
  }
  const PointsToSet &ptArray(ObjId O) const {
    auto It = ArrayPts.find(O);
    return It == ArrayPts.end() ? Empty : It->second;
  }
  const PointsToSet &ptStatic(FieldId F) const {
    auto It = StaticPts.find(F);
    return It == StaticPts.end() ? Empty : It->second;
  }

  /// Deduplicated callees of a call site (CI projection).
  const std::vector<MethodId> &calleesOf(CallSiteId CS) const {
    return CS < CalleesPerSite.size() ? CalleesPerSite[CS] : NoMethods;
  }

  bool isReachable(MethodId M) const { return Reachable.count(M) != 0; }
  const std::unordered_set<MethodId> &reachableMethods() const {
    return Reachable;
  }

  uint64_t numCallEdgesCI() const { return NumCallEdgesCI; }
  uint32_t numReachableCI() const {
    return static_cast<uint32_t>(Reachable.size());
  }

  /// True if two variables may point to a common object.
  bool mayAlias(VarId A, VarId B) const {
    return pt(A).intersects(pt(B));
  }

  // Populated by the solver's projection step.
  std::vector<PointsToSet> VarPts;
  std::unordered_map<std::pair<uint32_t, uint32_t>, PointsToSet, PairHash>
      FieldPts;
  std::unordered_map<uint32_t, PointsToSet> ArrayPts;
  std::unordered_map<uint32_t, PointsToSet> StaticPts;
  std::vector<std::vector<MethodId>> CalleesPerSite;
  std::unordered_set<MethodId> Reachable;
  uint64_t NumCallEdgesCI = 0;

private:
  inline static const PointsToSet Empty{};
  inline static const std::vector<MethodId> NoMethods{};
};

} // namespace csc

#endif // CSC_PTA_PTARESULT_H
