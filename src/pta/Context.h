//===- Context.h - Hash-consed calling contexts -----------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contexts are interned vectors of opaque 32-bit elements. What an element
/// means (allocation site, type, call site) is up to the ContextSelector in
/// use; the manager only provides hash-consing and k-limiting.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_CONTEXT_H
#define CSC_PTA_CONTEXT_H

#include "support/Hash.h"
#include "support/Ids.h"
#include "support/Interner.h"

#include <vector>

namespace csc {

/// Owns all contexts; CtxId 0 is always the empty context.
class ContextManager {
public:
  ContextManager() { [[maybe_unused]] CtxId E = Ctxs.intern({}); }

  CtxId empty() const { return 0; }

  /// Appends \p Elem to \p Base, keeping only the last \p Limit elements.
  CtxId push(CtxId Base, uint32_t Elem, size_t Limit) {
    std::vector<uint32_t> Elems = Ctxs.get(Base);
    Elems.push_back(Elem);
    if (Elems.size() > Limit)
      Elems.erase(Elems.begin(), Elems.end() - Limit);
    return Ctxs.intern(Elems);
  }

  /// Keeps only the last \p Limit elements of \p C.
  CtxId truncate(CtxId C, size_t Limit) {
    const std::vector<uint32_t> &Elems = Ctxs.get(C);
    if (Elems.size() <= Limit)
      return C;
    std::vector<uint32_t> Keep(Elems.end() - Limit, Elems.end());
    return Ctxs.intern(Keep);
  }

  const std::vector<uint32_t> &elems(CtxId C) const { return Ctxs.get(C); }

  uint32_t numContexts() const { return Ctxs.size(); }

private:
  Interner<std::vector<uint32_t>, IdVectorHash> Ctxs;
};

} // namespace csc

#endif // CSC_PTA_CONTEXT_H
