//===- ContextSelector.h - Context-sensitivity policies ---------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context selection policies. The solver is policy-agnostic: CI is the
/// empty selector, 2obj/2type/2cs are k-limiting selectors, and selective
/// context sensitivity (Zipper-e) wraps another selector with a method set.
/// Cut-Shortcut itself runs with the CI selector — "no contexts are applied
/// to any methods" (paper §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_CONTEXTSELECTOR_H
#define CSC_PTA_CONTEXTSELECTOR_H

#include "ir/Program.h"
#include "pta/CSManager.h"
#include "pta/Context.h"

#include <unordered_set>

namespace csc {

/// Decides the callee context at call edges and the heap context at
/// allocation sites.
class ContextSelector {
public:
  virtual ~ContextSelector();

  /// Context for \p Callee at a virtual/special call on receiver \p Recv.
  virtual CtxId select(ContextManager &CM, const CSManager &CSM,
                       const Program &P, CtxId CallerCtx, CallSiteId CS,
                       CSObjId Recv, MethodId Callee) = 0;

  /// Context for a static callee.
  virtual CtxId selectStatic(ContextManager &CM, CtxId CallerCtx,
                             CallSiteId CS, MethodId Callee) = 0;

  /// Heap context for an allocation in a method analyzed under \p MethodCtx.
  virtual CtxId selectHeap(ContextManager &CM, CtxId MethodCtx, ObjId O) = 0;
};

/// Context insensitivity: everything under the empty context.
class CISelector : public ContextSelector {
public:
  CtxId select(ContextManager &CM, const CSManager &, const Program &, CtxId,
               CallSiteId, CSObjId, MethodId) override {
    return CM.empty();
  }
  CtxId selectStatic(ContextManager &CM, CtxId, CallSiteId,
                     MethodId) override {
    return CM.empty();
  }
  CtxId selectHeap(ContextManager &CM, CtxId, ObjId) override {
    return CM.empty();
  }
};

/// k-object sensitivity with k-1 heap contexts (Milanova et al.).
class KObjSelector : public ContextSelector {
public:
  explicit KObjSelector(unsigned K) : K(K) {}

  CtxId select(ContextManager &CM, const CSManager &CSM, const Program &,
               CtxId, CallSiteId, CSObjId Recv, MethodId) override {
    const CSObjInfo &O = CSM.csObj(Recv);
    return CM.push(O.HeapCtx, O.O, K);
  }
  CtxId selectStatic(ContextManager &, CtxId CallerCtx, CallSiteId,
                     MethodId) override {
    return CallerCtx;
  }
  CtxId selectHeap(ContextManager &CM, CtxId MethodCtx, ObjId) override {
    return CM.truncate(MethodCtx, K - 1);
  }

private:
  unsigned K;
};

/// k-type sensitivity: like k-obj but context elements are the classes
/// containing the allocation sites (Smaragdakis et al.).
class KTypeSelector : public ContextSelector {
public:
  explicit KTypeSelector(unsigned K) : K(K) {}

  CtxId select(ContextManager &CM, const CSManager &CSM, const Program &P,
               CtxId, CallSiteId, CSObjId Recv, MethodId) override {
    const CSObjInfo &O = CSM.csObj(Recv);
    TypeId AllocClass = P.type(P.method(P.obj(O.O).Method).Owner).Kind ==
                                TypeKind::Array
                            ? P.objectType()
                            : P.method(P.obj(O.O).Method).Owner;
    return CM.push(O.HeapCtx, AllocClass, K);
  }
  CtxId selectStatic(ContextManager &, CtxId CallerCtx, CallSiteId,
                     MethodId) override {
    return CallerCtx;
  }
  CtxId selectHeap(ContextManager &CM, CtxId MethodCtx, ObjId) override {
    return CM.truncate(MethodCtx, K - 1);
  }

private:
  unsigned K;
};

/// k-call-site sensitivity (k-CFA).
class KCallSiteSelector : public ContextSelector {
public:
  explicit KCallSiteSelector(unsigned K) : K(K) {}

  CtxId select(ContextManager &CM, const CSManager &, const Program &,
               CtxId CallerCtx, CallSiteId CS, CSObjId, MethodId) override {
    return CM.push(CallerCtx, CS, K);
  }
  CtxId selectStatic(ContextManager &CM, CtxId CallerCtx, CallSiteId CS,
                     MethodId) override {
    return CM.push(CallerCtx, CS, K);
  }
  CtxId selectHeap(ContextManager &CM, CtxId MethodCtx, ObjId) override {
    return CM.truncate(MethodCtx, K - 1);
  }

private:
  unsigned K;
};

/// Selective context sensitivity: applies \p Inner only to the selected
/// methods, everything else is analyzed context-insensitively.
class SelectiveSelector : public ContextSelector {
public:
  SelectiveSelector(ContextSelector &Inner,
                    std::unordered_set<MethodId> Selected)
      : Inner(Inner), Selected(std::move(Selected)) {}

  CtxId select(ContextManager &CM, const CSManager &CSM, const Program &P,
               CtxId CallerCtx, CallSiteId CS, CSObjId Recv,
               MethodId Callee) override {
    if (!Selected.count(Callee))
      return CM.empty();
    return Inner.select(CM, CSM, P, CallerCtx, CS, Recv, Callee);
  }
  CtxId selectStatic(ContextManager &CM, CtxId CallerCtx, CallSiteId CS,
                     MethodId Callee) override {
    if (!Selected.count(Callee))
      return CM.empty();
    return Inner.selectStatic(CM, CallerCtx, CS, Callee);
  }
  CtxId selectHeap(ContextManager &CM, CtxId MethodCtx, ObjId O) override {
    return Inner.selectHeap(CM, MethodCtx, O);
  }

  const std::unordered_set<MethodId> &selected() const { return Selected; }

private:
  ContextSelector &Inner;
  std::unordered_set<MethodId> Selected;
};

} // namespace csc

#endif // CSC_PTA_CONTEXTSELECTOR_H
