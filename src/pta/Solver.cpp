//===- Solver.cpp - Worklist pointer-analysis solver ----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include <algorithm>
#include <cassert>

using namespace csc;

ContextSelector::~ContextSelector() = default;

SolverPlugin::~SolverPlugin() = default;
void SolverPlugin::onStart(Solver &) {}
void SolverPlugin::onNewMethod(CSMethodId) {}
void SolverPlugin::onNewPointsTo(PtrId, const PointsToSet &) {}
void SolverPlugin::onNewCallEdge(CSCallSiteId, CSMethodId) {}
void SolverPlugin::onNewPFGEdge(PtrId, PtrId, EdgeOrigin) {}
void SolverPlugin::onFixpoint() {}
void SolverPlugin::onFinish() {}

Solver::Solver(const Program &P, SolverOptions Opts) : P(P), Opts(Opts) {
  if (Opts.Selector) {
    Selector = Opts.Selector;
  } else {
    DefaultSelector = std::make_unique<CISelector>();
    Selector = DefaultSelector.get();
  }
  CutStores.assign(P.numStmts(), 0);
  CutReturns.assign(P.numVars(), 0);

  // Capacity hints proportional to program size: the dedup tables are on
  // the propagation hot path and rehash storms showed up in profiles.
  CSM.reserveHint(P.numVars(), P.numObjs());
  CG.reserveHint(P.numCallSites());
  PFG.reserveHint(P.numVars(), 2 * static_cast<std::size_t>(P.numStmts()));
  ShortcutEdgeKeys.reserve(P.numStmts() / 4);

  if (Opts.CycleElimination) {
    Scc = std::make_unique<SccCollapser>(PFG);
    Scc->reserveHint(P.numVars());
  }

  // Index statements by their base variable so points-to growth of a base
  // triggers exactly the dependent loads/stores/calls.
  BaseUses.resize(P.numVars());
  for (StmtId S = 0; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    switch (St.Kind) {
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
      BaseUses[St.Base].push_back(S);
      break;
    case StmtKind::Invoke:
      if (St.IKind != InvokeKind::Static)
        BaseUses[St.Base].push_back(S);
      break;
    default:
      break;
    }
  }
}

Solver::~Solver() = default;

void Solver::addCutStore(StmtId S) {
  assert(S < CutStores.size() && "cutStore id out of range");
  CutStores[S] = 1;
}

void Solver::addCutReturn(VarId V) {
  assert(V < CutReturns.size() && "cutReturn id out of range");
  CutReturns[V] = 1;
  // Withheld return edges are superseded by the plugin's shortcut/relay
  // edges; drop them.
  if (isDeferredReturn(V)) {
    DeferredReturns[V] = 0;
    PendingReturnTargets.erase(V);
  }
}

void Solver::addDeferredReturn(VarId V) {
  if (isCutReturn(V))
    return;
  if (V >= DeferredReturns.size())
    DeferredReturns.resize(P.numVars(), 0);
  DeferredReturns[V] = 1;
}

void Solver::undeferReturn(VarId V) {
  if (!isDeferredReturn(V))
    return;
  DeferredReturns[V] = 0;
  auto It = PendingReturnTargets.find(V);
  if (It == PendingReturnTargets.end())
    return;
  std::vector<PtrId> Targets = std::move(It->second);
  PendingReturnTargets.erase(It);
  PtrId RetPtr = varPtrCI(V);
  for (PtrId T : Targets)
    addPFGEdge(RetPtr, T, InvalidId, EdgeOrigin::Return);
}

bool Solver::addShortcutEdge(PtrId Src, PtrId Dst) {
  // The key set doubles as the dedup: patterns re-derive the same
  // shortcut for every points-to delta, and a repeat means the PFG edge
  // was already added by the first call.
  if (!ShortcutEdgeKeys.insert(packPair(Src, Dst)).second)
    return false;
  return addPFGEdge(Src, Dst, InvalidId, EdgeOrigin::Shortcut);
}

void Solver::ensurePtr(PtrId Pr) {
  if (Pr >= Pts.size()) {
    Pts.resize(Pr + 1);
    Pending.resize(Pr + 1);
    InQueue.resize(Pr + 1, 0);
  }
}

void Solver::markDirty(PtrId Pr) {
  // Pr is a representative (enqueue paths remap before calling). New
  // entries always join the next sweep; refillWorklist orders them.
  ensurePtr(Pr);
  if (!InQueue[Pr]) {
    InQueue[Pr] = 1;
    Next.push_back(Pr);
  }
}

void Solver::refillWorklist() {
  // Seal the next sweep in approximate topological order. Entries are
  // remapped through their representative for ordering (a collapse may
  // have absorbed them since they were pushed); ties break on the raw id
  // so runs are deterministic.
  std::sort(Next.begin(), Next.end(), [this](PtrId A, PtrId B) {
    uint32_t OA = Scc ? Scc->order(Scc->rep(A)) : A;
    uint32_t OB = Scc ? Scc->order(Scc->rep(B)) : B;
    if (OA != OB)
      return OA < OB;
    return A < B;
  });
  Current.swap(Next);
  Next.clear();
  Cursor = 0;
}

const PointsToSet &Solver::filterMask(TypeId Filter) {
  if (Filter >= FilterMasks.size()) {
    FilterMasks.resize(Filter + 1);
    FilterMaskCover.resize(Filter + 1, 0);
  }
  PointsToSet &M = FilterMasks[Filter];
  uint32_t N = CSM.numCSObjs();
  uint32_t &Covered = FilterMaskCover[Filter];
  if (Covered < N) {
    M.ensureBitmap();
    for (CSObjId O = Covered; O < N; ++O)
      if (P.isSubtype(P.obj(CSM.csObj(O).O).Type, Filter))
        M.insert(O);
    Covered = N;
  }
  return M;
}

void Solver::enqueueObj(PtrId Pr, CSObjId O) {
  Pr = repOf(Pr);
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    if (Pts[Pr].contains(O))
      return;
    if (Pending[Pr].insert(O))
      markDirty(Pr);
    return;
  }
  if (Pts[Pr].insert(O)) {
    // Logical work counter: the fact lands on every member of the class.
    Stats.PtsInsertions += classSizeOf(Pr);
    markDirty(Pr);
  }
}

void Solver::enqueueSet(PtrId Pr, const PointsToSet &Set, TypeId Filter) {
  Pr = repOf(Pr);
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    // Pending |= (Set ∩ mask) ∖ Pts: one word-parallel pass; only
    // genuinely new facts queue work.
    uint32_t Added =
        Filter == InvalidId
            ? Pending[Pr].unionWithExcluding(Set, Pts[Pr])
            : Pending[Pr].unionWithFiltered(Set, filterMask(Filter),
                                            Pts[Pr]);
    if (Added)
      markDirty(Pr);
    return;
  }
  uint32_t Added = Filter == InvalidId
                       ? Pts[Pr].unionWith(Set)
                       : Pts[Pr].unionWithFiltered(Set, filterMask(Filter));
  if (Added) {
    Stats.PtsInsertions += static_cast<uint64_t>(Added) * classSizeOf(Pr);
    markDirty(Pr);
  }
}

bool Solver::addPFGEdge(PtrId Src, PtrId Dst, TypeId Filter,
                        EdgeOrigin Origin) {
  // The original-pointer PFG stays the system of record: it dedups on
  // un-collapsed endpoints, serves plugin pred()/succ() queries and graph
  // dumps, and keeps Stats.PFGEdges independent of collapsing.
  if (!PFG.addEdge(Src, Dst, Filter))
    return false;
  ++Stats.PFGEdges;
  ensurePtr(std::max(Src, Dst));
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPFGEdge(Src, Dst, Origin);

  if (!Scc) {
    const PointsToSet &SrcPts = ptsOf(Src);
    if (!SrcPts.empty())
      enqueueSet(Dst, SrcPts, Filter);
    return true;
  }

  // Propagation runs on the representative view of this edge. An
  // intra-class edge carries no flow (the class shares one set).
  Scc->noteEdge(Src, Dst);
  PtrId RS = Scc->rep(Src), RT = Scc->rep(Dst);
  if (RS == RT)
    return true;
  const PointsToSet &SrcPts = Pts[RS];
  if (!SrcPts.empty())
    enqueueSet(RT, SrcPts, Filter);
  // Online detection: only unfiltered edges can close a collapsible
  // cycle, and only when the edge runs against the approximate topo
  // order is a probe worth it. Detection is suppressed while a collapse
  // is in flight (the full pass mops up anything missed).
  if (!InCollapse && Filter == InvalidId && Scc->looksLikeBackEdge(RS, RT) &&
      Scc->findCycle(RS, RT, CycleScratch))
    collapseClass(CycleScratch);
  return true;
}

void Solver::addReachable(MethodId M, CtxId C) {
  CSMethodId CSMth = CG.getCSMethod(M, C);
  if (!CG.addReachable(CSMth))
    return;
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewMethod(CSMth);

  const MethodInfo &MI = P.method(M);
  for (StmtId SId : MI.AllStmts) {
    const Stmt &S = P.stmt(SId);
    switch (S.Kind) {
    case StmtKind::New:
    case StmtKind::NewArray: {
      CtxId HCtx = Selector->selectHeap(CM, C, S.Obj);
      CSObjId O = CSM.getCSObj(S.Obj, HCtx);
      enqueueObj(varPtr(S.To, C), O);
      break;
    }
    case StmtKind::Assign:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::Assign);
      break;
    case StmtKind::Cast:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), S.Type,
                 EdgeOrigin::Cast);
      break;
    case StmtKind::StaticLoad:
      addPFGEdge(CSM.getStaticPtr(S.Field), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::StaticLoad);
      break;
    case StmtKind::StaticStore:
      addPFGEdge(varPtr(S.From, C), CSM.getStaticPtr(S.Field), InvalidId,
                 EdgeOrigin::StaticStore);
      break;
    case StmtKind::Invoke:
      if (S.IKind == InvokeKind::Static) {
        MethodId Callee = S.DirectCallee;
        assert(Callee != InvalidId && "unresolved static call");
        CtxId CalleeCtx = Selector->selectStatic(CM, C, S.CallSite, Callee);
        CSCallSiteId CS = CG.getCSCallSite(S.CallSite, C);
        CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
        if (CG.addEdge(CS, CSCallee))
          processCallEdge(CS, CSCallee, S, C, CalleeCtx);
      }
      break;
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
    case StmtKind::Return:
    case StmtKind::If:
      break; // Driven by points-to growth / call edges.
    }
  }
}

void Solver::processCallEdge(CSCallSiteId CS, CSMethodId Callee,
                             const Stmt &S, CtxId CallerCtx,
                             CtxId CalleeCtx) {
  ++Stats.CallEdgesCS;
  MethodId M = CG.csMethod(Callee).M;
  addReachable(M, CalleeCtx);
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewCallEdge(CS, Callee);

  const MethodInfo &MI = P.method(M);
  size_t FirstParam = MI.IsStatic ? 0 : 1;
  size_t NParams = MI.Params.size() - FirstParam;
  for (size_t K = 0; K < S.Args.size() && K < NParams; ++K)
    addPFGEdge(varPtr(S.Args[K], CallerCtx),
               varPtr(MI.Params[FirstParam + K], CalleeCtx), InvalidId,
               EdgeOrigin::Param);

  // [Return]: suppressed for return variables in cutReturns; withheld for
  // deferred ones (nested [CutPropLoad] candidates).
  if (S.To != InvalidId)
    for (VarId RV : MI.RetVars) {
      if (isCutReturn(RV))
        continue;
      if (isDeferredReturn(RV)) {
        PendingReturnTargets[RV].push_back(varPtr(S.To, CallerCtx));
        continue;
      }
      addPFGEdge(varPtr(RV, CalleeCtx), varPtr(S.To, CallerCtx), InvalidId,
                 EdgeOrigin::Return);
    }
}

void Solver::processCallOnReceiver(const Stmt &S, CtxId CallerCtx,
                                   CSObjId Recv) {
  MethodId Callee;
  if (S.IKind == InvokeKind::Virtual) {
    Callee = P.dispatch(P.obj(CSM.csObj(Recv).O).Type, S.Subsig);
    if (Callee == InvalidId)
      return; // No concrete target (e.g. spurious receiver filtered later).
  } else {
    Callee = S.DirectCallee;
    assert(Callee != InvalidId && "unresolved special call");
  }
  CtxId CalleeCtx = Selector->select(CM, CSM, P, CallerCtx, S.CallSite, Recv,
                                     Callee);
  // Bind the receiver object to `this` of the callee.
  const MethodInfo &MI = P.method(Callee);
  if (!MI.IsStatic)
    enqueueObj(varPtr(MI.Params[0], CalleeCtx), Recv);

  CSCallSiteId CS = CG.getCSCallSite(S.CallSite, CallerCtx);
  CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
  if (CG.addEdge(CS, CSCallee))
    processCallEdge(CS, CSCallee, S, CallerCtx, CalleeCtx);
}

void Solver::processPointer(PtrId Pr, const PointsToSet &Delta) {
  const PtrInfo &PI = CSM.ptr(Pr);
  if (PI.Kind == PtrKind::Var) {
    VarId V = PI.A;
    CtxId C = PI.B;
    for (StmtId SId : BaseUses[V]) {
      const Stmt &S = P.stmt(SId);
      switch (S.Kind) {
      case StmtKind::Load: {
        PtrId To = varPtr(S.To, C); // Loop-invariant: intern once.
        Delta.forEach([&](CSObjId O) {
          addPFGEdge(fieldPtr(O, S.Field), To, InvalidId,
                     EdgeOrigin::Load);
        });
        break;
      }
      case StmtKind::Store:
        // [Store]: suppressed for statements in cutStores.
        if (!isCutStore(SId)) {
          PtrId From = varPtr(S.From, C);
          Delta.forEach([&](CSObjId O) {
            addPFGEdge(From, fieldPtr(O, S.Field), InvalidId,
                       EdgeOrigin::Store);
          });
        }
        break;
      case StmtKind::ArrayLoad: {
        PtrId To = varPtr(S.To, C);
        Delta.forEach([&](CSObjId O) {
          if (!P.obj(CSM.csObj(O).O).IsArray)
            return;
          addPFGEdge(CSM.getArrayPtr(O), To, InvalidId,
                     EdgeOrigin::ArrayLoad);
        });
        break;
      }
      case StmtKind::ArrayStore: {
        PtrId From = varPtr(S.From, C);
        Delta.forEach([&](CSObjId O) {
          const ObjInfo &OI = P.obj(CSM.csObj(O).O);
          if (!OI.IsArray)
            return;
          // Runtime array-store check: filter by the array's element type.
          addPFGEdge(From, CSM.getArrayPtr(O),
                     P.type(OI.Type).ArrayElem, EdgeOrigin::ArrayStore);
        });
        break;
      }
      case StmtKind::Invoke:
        Delta.forEach(
            [&](CSObjId O) { processCallOnReceiver(S, C, O); });
        break;
      default:
        break;
      }
    }
  }
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPointsTo(Pr, Delta);
}

void Solver::propagateAlongEdges(PtrId Rep, const PointsToSet &Set) {
  // The representative's out-edges are the union of its members' original
  // PFG out-edges (the collapsed graph is a view, not a copy — see
  // SccCollapser.h). Intra-class targets remap to Rep and diff to
  // nothing; enqueueSet remaps every target through its representative.
  if (!Scc) {
    for (const PFGEdge &E : PFG.succ(Rep))
      enqueueSet(E.To, Set, E.Filter);
    return;
  }
  const std::vector<PtrId> *Members = Scc->membersOrNull(Rep);
  if (!Members) {
    for (const PFGEdge &E : PFG.succ(Rep))
      enqueueSet(E.To, Set, E.Filter);
    return;
  }
  // Most of a collapsed class's edges point back into the class (that is
  // what made it a class); skip them up front instead of paying a no-op
  // word-parallel diff against the class's own set per edge per delta.
  for (PtrId M : *Members)
    for (const PFGEdge &E : PFG.succ(M))
      if (repOf(E.To) != Rep)
        enqueueSet(E.To, Set, E.Filter);
}

void Solver::processClass(PtrId Rep, const PointsToSet &Delta) {
  if (!Scc) {
    processPointer(Rep, Delta);
    return;
  }
  const std::vector<PtrId> *Members = Scc->membersOrNull(Rep);
  if (!Members) {
    processPointer(Rep, Delta);
    return;
  }
  // Un-collapsed view for statements and plugins: the delta reaches every
  // member pointer, exactly as if each still carried its own set. Copy —
  // a nested online collapse (processPointer adds edges) rewrites the
  // collapser's member table.
  std::vector<PtrId> Snapshot = *Members;
  for (PtrId M : Snapshot)
    processPointer(M, Delta);
}

void Solver::collapseClass(const std::vector<PtrId> &Reps) {
  // Canonicalize defensively: remap through current representatives and
  // dedup (a probe path can touch a class twice through stale edges).
  std::vector<PtrId> Classes;
  Classes.reserve(Reps.size());
  for (PtrId R : Reps)
    Classes.push_back(Scc->rep(R));
  std::sort(Classes.begin(), Classes.end());
  Classes.erase(std::unique(Classes.begin(), Classes.end()),
                Classes.end());
  if (Classes.size() < 2)
    return;

  InCollapse = true;

  // (a) Semantic snapshot: the merged set, and per class the catch-up
  // delta its members are missing plus the member list (mergeClass
  // rewires both). Pending work and queue flags consolidate on the
  // winner; stale worklist entries die at pop via the cleared flags.
  PtrId MaxRep = 0;
  for (PtrId C : Classes)
    MaxRep = std::max(MaxRep, C);
  ensurePtr(MaxRep);

  PointsToSet Merged;
  for (PtrId C : Classes)
    Merged.unionWith(Pts[C]);

  struct CatchUp {
    std::vector<PtrId> Members; ///< Snapshot (single element if lone).
    PointsToSet Delta;          ///< Merged ∖ the class's previous set.
  };
  std::vector<CatchUp> CatchUps;
  PointsToSet MergedPending;
  bool AnyQueued = false;
  for (PtrId C : Classes) {
    CatchUp CU;
    CU.Delta.unionWithExcluding(Merged, Pts[C]);
    if (!CU.Delta.empty()) {
      if (const std::vector<PtrId> *M = Scc->membersOrNull(C))
        CU.Members = *M;
      else
        CU.Members.push_back(C);
      CatchUps.push_back(std::move(CU));
    }
    MergedPending.unionWith(Pending[C]);
    Pending[C].clear();
    AnyQueued = AnyQueued || InQueue[C];
    InQueue[C] = 0;
  }

  // (b) Structural merge: union-find, member lists, orders, adjacency.
  PtrId W = Scc->mergeClass(Classes);
  Pts[W] = std::move(Merged);
  Pending[W] = std::move(MergedPending);
  // Release the losing classes' storage outright (clear() would keep the
  // buffers): the slots are unreachable now — every reader remaps
  // through the representative — and a class built over many merges
  // would otherwise retain one dead bitmap per absorbed representative.
  for (PtrId C : Classes)
    if (C != W) {
      Pts[C] = PointsToSet();
      Pending[C] = PointsToSet();
    }
  if (!Pending[W].empty() || (AnyQueued && !Opts.DeltaPropagation))
    markDirty(W);

  // (c) Fire the semantics of the merge. First flow the merged set along
  // the class's out-edges (every member's original out-edges; intra-class
  // targets diff to nothing) — targets that only saw one member's set now
  // receive the rest; the word-parallel diff at each target keeps this
  // cheap. Then replay the catch-up delta for every member whose class
  // was missing facts: statement reprocessing and plugin callbacks
  // observe exactly the growth a collapse-free run would have propagated
  // around the cycle. Logical insertions count per catching-up member.
  // Nested edge insertions self-propagate; nested detection stays off
  // until the collapse completes.
  propagateAlongEdges(W, Pts[W]);
  for (const CatchUp &CU : CatchUps) {
    Stats.PtsInsertions +=
        static_cast<uint64_t>(CU.Delta.size()) * CU.Members.size();
    Stats.Scc.PropagationsSaved +=
        static_cast<uint64_t>(CU.Delta.size()) * (CU.Members.size() - 1);
    for (PtrId M : CU.Members)
      processPointer(M, CU.Delta);
  }

  InCollapse = false;
}

void Solver::runFullSccPass() {
  std::vector<std::vector<PtrId>> Sccs;
  Scc->fullPass(Sccs, Stats.PtsInsertions);
  for (const std::vector<PtrId> &Cycle : Sccs)
    collapseClass(Cycle);
}

PTAResult Solver::solve() {
  Clock.reset();
  PTAResult R;

  for (SolverPlugin *Pl : Plugins)
    Pl->onStart(*this);

  assert(P.entry() != InvalidId && "program has no entry point");
  addReachable(P.entry(), CM.empty());

  // Scratch sets reused across iterations (buffers survive clear()).
  PointsToSet Delta;
  PointsToSet FullSet;
  bool MoreRounds = true;
  while (MoreRounds) {
    while (true) {
      if (Cursor == Current.size()) {
        if (Next.empty())
          break;
        refillWorklist();
      }
      if (Stats.PtsInsertions > Opts.WorkBudget) {
        Exhausted = true;
        break;
      }
      if (Opts.TimeBudgetMs > 0 && (Stats.WorklistPops & 1023) == 0 &&
          Clock.elapsedMs() > Opts.TimeBudgetMs) {
        Exhausted = true;
        break;
      }
      // Periodic fallback: a bounded full Tarjan pass over the
      // representative graph (scheduled on edge growth / aborted
      // probes), which also refreshes the worklist's topological order.
      if (Scc && Scc->fullPassDue(Stats.PtsInsertions))
        runFullSccPass();

      PtrId Pr = repOf(Current[Cursor++]);
      if (!InQueue[Pr])
        continue; // Stale entry: absorbed by a collapse, or a duplicate.
      InQueue[Pr] = 0;
      ++Stats.WorklistPops;

      if (Opts.DeltaPropagation) {
        // Merge the pending facts in one word-parallel union; Delta
        // receives exactly the genuinely new elements.
        uint32_t Added = Pts[Pr].unionWith(Pending[Pr], Delta);
        Pending[Pr].clear();
        if (!Added)
          continue;
        // Logical work counter: every member of the class gains Added
        // facts, so a completed run reports the same total with cycle
        // elimination on or off.
        uint32_t Members = classSizeOf(Pr);
        Stats.PtsInsertions += static_cast<uint64_t>(Added) * Members;
        if (Members > 1)
          Stats.Scc.PropagationsSaved +=
              static_cast<uint64_t>(Added) * (Members - 1);
        propagateAlongEdges(Pr, Delta);
        processClass(Pr, Delta);
      } else {
        // Full re-propagation (Doop-style): reprocess the complete set.
        // The snapshot is a word-level copy and the per-edge unions diff
        // against each target, so this mode measures the strategy's
        // re-processing cost, not per-element copy cost.
        if (Pts[Pr].empty())
          continue;
        FullSet = Pts[Pr];
        propagateAlongEdges(Pr, FullSet);
        processClass(Pr, FullSet);
      }
    }
    // Worklist drained (or budget hit): give plugins a chance to resolve
    // deferred work (e.g. flush withheld return edges); resume if they
    // added anything.
    if (Exhausted)
      break;
    for (SolverPlugin *Pl : Plugins)
      Pl->onFixpoint();
    MoreRounds = !Next.empty() || Cursor != Current.size();
  }

  for (SolverPlugin *Pl : Plugins)
    Pl->onFinish();

  R.Exhausted = Exhausted;
  if (Scc) {
    // Merge the collapser-side counters; PropagationsSaved accumulated
    // solver-side (it depends on delta sizes the collapser never sees).
    const SccStats &CS = Scc->stats();
    Stats.Scc.SccsFound = CS.SccsFound;
    Stats.Scc.MembersCollapsed = CS.MembersCollapsed;
    Stats.Scc.OnlineCollapses = CS.OnlineCollapses;
    Stats.Scc.FullPasses = CS.FullPasses;
  }
  Stats.NumPtrs = CSM.numPtrs();
  Stats.NumCSObjs = CSM.numCSObjs();
  Stats.NumContexts = CM.numContexts();
  Stats.ReachableCS = static_cast<uint32_t>(CG.reachableMethods().size());
  Stats.ReachableCI = static_cast<uint32_t>(CG.reachableCI().size());
  R.Stats = Stats;
  buildProjection(R);
  R.TimeMs = Clock.elapsedMs();
  return R;
}

void Solver::buildProjection(PTAResult &R) {
  R.VarPts.resize(P.numVars());
  for (PtrId Pr = 0; Pr < CSM.numPtrs(); ++Pr) {
    const PointsToSet &S = ptsOf(Pr);
    if (S.empty())
      continue;
    const PtrInfo &PI = CSM.ptr(Pr);
    switch (PI.Kind) {
    case PtrKind::Var:
      S.forEach([&](CSObjId O) { R.VarPts[PI.A].insert(CSM.csObj(O).O); });
      break;
    case PtrKind::Field: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.FieldPts[{Base, PI.B}];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Array: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.ArrayPts[Base];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Static: {
      PointsToSet &Dst = R.StaticPts[PI.A];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    }
  }
  R.CalleesPerSite.resize(P.numCallSites());
  for (const auto &[CS, M] : CG.ciEdges())
    R.CalleesPerSite[CS].push_back(M);
  R.Reachable = CG.reachableCI();
  R.NumCallEdgesCI = CG.ciEdges().size();
}
