//===- Solver.cpp - Worklist pointer-analysis solver ----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace csc;

ContextSelector::~ContextSelector() = default;

SolverPlugin::~SolverPlugin() = default;
void SolverPlugin::onStart(Solver &) {}
void SolverPlugin::onNewMethod(CSMethodId) {}
void SolverPlugin::onNewPointsTo(PtrId, const PointsToSet &) {}
void SolverPlugin::onNewCallEdge(CSCallSiteId, CSMethodId) {}
void SolverPlugin::onNewPFGEdge(PtrId, PtrId, EdgeOrigin) {}
void SolverPlugin::onFixpoint() {}
void SolverPlugin::onFinish() {}

Solver::Solver(const Program &P, SolverOptions Opts) : P(P), Opts(Opts) {
  if (Opts.Selector) {
    Selector = Opts.Selector;
  } else {
    DefaultSelector = std::make_unique<CISelector>();
    Selector = DefaultSelector.get();
  }
  CutStores.assign(P.numStmts(), 0);
  CutReturns.assign(P.numVars(), 0);

  // Capacity hints proportional to program size: the dedup tables are on
  // the propagation hot path and rehash storms showed up in profiles.
  CSM.reserveHint(P.numVars(), P.numObjs());
  CG.reserveHint(P.numCallSites());
  PFG.reserveHint(P.numVars(), 2 * static_cast<std::size_t>(P.numStmts()));
  ShortcutEdgeKeys.reserve(P.numStmts() / 4);

  if (Opts.CycleElimination) {
    Scc = std::make_unique<SccCollapser>(PFG);
    Scc->reserveHint(P.numVars());
  }

  // Index statements by their base variable so points-to growth of a base
  // triggers exactly the dependent loads/stores/calls.
  indexBaseUses(0);
}

void Solver::indexBaseUses(StmtId Begin) {
  BaseUses.resize(P.numVars());
  for (StmtId S = Begin; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    switch (St.Kind) {
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
      BaseUses[St.Base].push_back(S);
      break;
    case StmtKind::Invoke:
      if (St.IKind != InvokeKind::Static)
        BaseUses[St.Base].push_back(S);
      break;
    default:
      break;
    }
  }
}

Solver::~Solver() = default;

void Solver::addCutStore(StmtId S) {
  assert(S < CutStores.size() && "cutStore id out of range");
  CutStores[S] = 1;
}

void Solver::addCutReturn(VarId V) {
  assert(V < CutReturns.size() && "cutReturn id out of range");
  CutReturns[V] = 1;
  // Withheld return edges are superseded by the plugin's shortcut/relay
  // edges; drop them.
  if (isDeferredReturn(V)) {
    DeferredReturns[V] = 0;
    PendingReturnTargets.erase(V);
  }
}

void Solver::addDeferredReturn(VarId V) {
  if (isCutReturn(V))
    return;
  if (V >= DeferredReturns.size())
    DeferredReturns.resize(P.numVars(), 0);
  DeferredReturns[V] = 1;
}

void Solver::undeferReturn(VarId V) {
  if (!isDeferredReturn(V))
    return;
  DeferredReturns[V] = 0;
  auto It = PendingReturnTargets.find(V);
  if (It == PendingReturnTargets.end())
    return;
  std::vector<PtrId> Targets = std::move(It->second);
  PendingReturnTargets.erase(It);
  PtrId RetPtr = varPtrCI(V);
  for (PtrId T : Targets)
    addPFGEdge(RetPtr, T, InvalidId, EdgeOrigin::Return);
}

bool Solver::addShortcutEdge(PtrId Src, PtrId Dst) {
  // The key set doubles as the dedup: patterns re-derive the same
  // shortcut for every points-to delta, and a repeat means the PFG edge
  // was already added by the first call.
  if (!ShortcutEdgeKeys.insert(packPair(Src, Dst)).second)
    return false;
  return addPFGEdge(Src, Dst, InvalidId, EdgeOrigin::Shortcut);
}

void Solver::ensurePtr(PtrId Pr) {
  if (Pr >= Pts.size()) {
    Pts.resize(Pr + 1);
    Pending.resize(Pr + 1);
    InQueue.resize(Pr + 1, 0);
  }
}

void Solver::markDirty(PtrId Pr) {
  // Pr is a representative (enqueue paths remap before calling). New
  // entries always join the next sweep; refillWorklist orders them.
  ensurePtr(Pr);
  if (!InQueue[Pr]) {
    InQueue[Pr] = 1;
    Next.push_back(Pr);
  }
}

void Solver::refillWorklist() {
  // Seal the next sweep in approximate topological order. Entries are
  // remapped through their representative for ordering (a collapse may
  // have absorbed them since they were pushed); ties break on the raw id
  // so runs are deterministic.
  std::sort(Next.begin(), Next.end(), [this](PtrId A, PtrId B) {
    uint32_t OA = Scc ? Scc->order(Scc->rep(A)) : A;
    uint32_t OB = Scc ? Scc->order(Scc->rep(B)) : B;
    if (OA != OB)
      return OA < OB;
    return A < B;
  });
  Current.swap(Next);
  Next.clear();
  Cursor = 0;
}

const PointsToSet &Solver::filterMask(TypeId Filter) {
  if (Filter >= FilterMasks.size()) {
    FilterMasks.resize(Filter + 1);
    FilterMaskCover.resize(Filter + 1, 0);
  }
  PointsToSet &M = FilterMasks[Filter];
  uint32_t N = CSM.numCSObjs();
  uint32_t &Covered = FilterMaskCover[Filter];
  if (Covered < N) {
    M.ensureBitmap();
    for (CSObjId O = Covered; O < N; ++O)
      if (P.isSubtype(P.obj(CSM.csObj(O).O).Type, Filter))
        M.insert(O);
    Covered = N;
  }
  return M;
}

void Solver::enqueueObj(PtrId Pr, CSObjId O) {
  Pr = repOf(Pr);
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    if (Pts[Pr].contains(O))
      return;
    if (Pending[Pr].insert(O))
      markDirty(Pr);
    return;
  }
  if (Pts[Pr].insert(O)) {
    // Logical work counter: the fact lands on every member of the class.
    Stats.PtsInsertions += classSizeOf(Pr);
    markDirty(Pr);
  }
}

void Solver::enqueueSet(PtrId Pr, const PointsToSet &Set, TypeId Filter) {
  Pr = repOf(Pr);
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    // Pending |= (Set ∩ mask) ∖ Pts: one word-parallel pass; only
    // genuinely new facts queue work.
    uint32_t Added =
        Filter == InvalidId
            ? Pending[Pr].unionWithExcluding(Set, Pts[Pr])
            : Pending[Pr].unionWithFiltered(Set, filterMask(Filter),
                                            Pts[Pr]);
    if (Added)
      markDirty(Pr);
    return;
  }
  uint32_t Added = Filter == InvalidId
                       ? Pts[Pr].unionWith(Set)
                       : Pts[Pr].unionWithFiltered(Set, filterMask(Filter));
  if (Added) {
    Stats.PtsInsertions += static_cast<uint64_t>(Added) * classSizeOf(Pr);
    markDirty(Pr);
  }
}

bool Solver::addPFGEdge(PtrId Src, PtrId Dst, TypeId Filter,
                        EdgeOrigin Origin) {
  // The original-pointer PFG stays the system of record: it dedups on
  // un-collapsed endpoints, serves plugin pred()/succ() queries and graph
  // dumps, and keeps Stats.PFGEdges independent of collapsing.
  if (!PFG.addEdge(Src, Dst, Filter))
    return false;
  ++Stats.PFGEdges;
  ensurePtr(std::max(Src, Dst));
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPFGEdge(Src, Dst, Origin);

  if (!Scc) {
    const PointsToSet &SrcPts = ptsOf(Src);
    if (!SrcPts.empty())
      enqueueSet(Dst, SrcPts, Filter);
    return true;
  }

  // Propagation runs on the representative view of this edge. An
  // intra-class edge carries no flow (the class shares one set).
  Scc->noteEdge(Src, Dst);
  PtrId RS = Scc->rep(Src), RT = Scc->rep(Dst);
  if (RS == RT)
    return true;
  const PointsToSet &SrcPts = Pts[RS];
  if (!SrcPts.empty())
    enqueueSet(RT, SrcPts, Filter);
  // Online detection: only unfiltered edges can close a collapsible
  // cycle, and only when the edge runs against the approximate topo
  // order is a probe worth it. Detection is suppressed while a collapse
  // is in flight (the full pass mops up anything missed).
  if (!InCollapse && Filter == InvalidId && Scc->looksLikeBackEdge(RS, RT) &&
      Scc->findCycle(RS, RT, CycleScratch))
    collapseClass(CycleScratch);
  return true;
}

void Solver::addReachable(MethodId M, CtxId C) {
  CSMethodId CSMth = CG.getCSMethod(M, C);
  if (!CG.addReachable(CSMth))
    return;
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewMethod(CSMth);

  const MethodInfo &MI = P.method(M);
  for (StmtId SId : MI.AllStmts) {
    if (!stmtEnabled(SId))
      continue; // Demand slice: outside the queried variables' cone.
    const Stmt &S = P.stmt(SId);
    switch (S.Kind) {
    case StmtKind::New:
    case StmtKind::NewArray: {
      CtxId HCtx = Selector->selectHeap(CM, C, S.Obj);
      CSObjId O = CSM.getCSObj(S.Obj, HCtx);
      enqueueObj(varPtr(S.To, C), O);
      break;
    }
    case StmtKind::Assign:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::Assign);
      break;
    case StmtKind::Cast:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), S.Type,
                 EdgeOrigin::Cast);
      break;
    case StmtKind::StaticLoad:
      addPFGEdge(CSM.getStaticPtr(S.Field), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::StaticLoad);
      break;
    case StmtKind::StaticStore:
      addPFGEdge(varPtr(S.From, C), CSM.getStaticPtr(S.Field), InvalidId,
                 EdgeOrigin::StaticStore);
      break;
    case StmtKind::Invoke:
      if (S.IKind == InvokeKind::Static) {
        MethodId Callee = S.DirectCallee;
        assert(Callee != InvalidId && "unresolved static call");
        CtxId CalleeCtx = Selector->selectStatic(CM, C, S.CallSite, Callee);
        CSCallSiteId CS = CG.getCSCallSite(S.CallSite, C);
        CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
        if (CG.addEdge(CS, CSCallee))
          processCallEdge(CS, CSCallee, S, C, CalleeCtx);
      }
      break;
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
    case StmtKind::Return:
    case StmtKind::If:
      break; // Driven by points-to growth / call edges.
    }
  }
}

void Solver::processCallEdge(CSCallSiteId CS, CSMethodId Callee,
                             const Stmt &S, CtxId CallerCtx,
                             CtxId CalleeCtx) {
  ++Stats.CallEdgesCS;
  MethodId M = CG.csMethod(Callee).M;
  addReachable(M, CalleeCtx);
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewCallEdge(CS, Callee);

  const MethodInfo &MI = P.method(M);
  size_t FirstParam = MI.IsStatic ? 0 : 1;
  size_t NParams = MI.Params.size() - FirstParam;
  for (size_t K = 0; K < S.Args.size() && K < NParams; ++K)
    addPFGEdge(varPtr(S.Args[K], CallerCtx),
               varPtr(MI.Params[FirstParam + K], CalleeCtx), InvalidId,
               EdgeOrigin::Param);

  // [Return]: suppressed for return variables in cutReturns; withheld for
  // deferred ones (nested [CutPropLoad] candidates).
  if (S.To != InvalidId)
    for (VarId RV : MI.RetVars) {
      if (isCutReturn(RV))
        continue;
      if (isDeferredReturn(RV)) {
        PendingReturnTargets[RV].push_back(varPtr(S.To, CallerCtx));
        continue;
      }
      addPFGEdge(varPtr(RV, CalleeCtx), varPtr(S.To, CallerCtx), InvalidId,
                 EdgeOrigin::Return);
    }
}

void Solver::processCallOnReceiver(const Stmt &S, CtxId CallerCtx,
                                   CSObjId Recv) {
  MethodId Callee;
  if (S.IKind == InvokeKind::Virtual) {
    Callee = P.dispatch(P.obj(CSM.csObj(Recv).O).Type, S.Subsig);
    if (Callee == InvalidId)
      return; // No concrete target (e.g. spurious receiver filtered later).
  } else {
    Callee = S.DirectCallee;
    assert(Callee != InvalidId && "unresolved special call");
  }
  CtxId CalleeCtx = Selector->select(CM, CSM, P, CallerCtx, S.CallSite, Recv,
                                     Callee);
  // Bind the receiver object to `this` of the callee.
  const MethodInfo &MI = P.method(Callee);
  if (!MI.IsStatic)
    enqueueObj(varPtr(MI.Params[0], CalleeCtx), Recv);

  CSCallSiteId CS = CG.getCSCallSite(S.CallSite, CallerCtx);
  CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
  if (CG.addEdge(CS, CSCallee))
    processCallEdge(CS, CSCallee, S, CallerCtx, CalleeCtx);
}

void Solver::processPointer(PtrId Pr, const PointsToSet &Delta) {
  const PtrInfo &PI = CSM.ptr(Pr);
  if (PI.Kind == PtrKind::Var) {
    VarId V = PI.A;
    CtxId C = PI.B;
    for (StmtId SId : BaseUses[V]) {
      if (!stmtEnabled(SId))
        continue; // Demand slice: outside the queried variables' cone.
      processBaseUse(P.stmt(SId), SId, C, Delta);
    }
  }
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPointsTo(Pr, Delta);
}

void Solver::processBaseUse(const Stmt &S, StmtId SId, CtxId C,
                            const PointsToSet &Delta) {
  switch (S.Kind) {
  case StmtKind::Load: {
    PtrId To = varPtr(S.To, C); // Loop-invariant: intern once.
    Delta.forEach([&](CSObjId O) {
      addPFGEdge(fieldPtr(O, S.Field), To, InvalidId, EdgeOrigin::Load);
    });
    break;
  }
  case StmtKind::Store:
    // [Store]: suppressed for statements in cutStores.
    if (!isCutStore(SId)) {
      PtrId From = varPtr(S.From, C);
      Delta.forEach([&](CSObjId O) {
        addPFGEdge(From, fieldPtr(O, S.Field), InvalidId,
                   EdgeOrigin::Store);
      });
    }
    break;
  case StmtKind::ArrayLoad: {
    PtrId To = varPtr(S.To, C);
    Delta.forEach([&](CSObjId O) {
      if (!P.obj(CSM.csObj(O).O).IsArray)
        return;
      addPFGEdge(CSM.getArrayPtr(O), To, InvalidId, EdgeOrigin::ArrayLoad);
    });
    break;
  }
  case StmtKind::ArrayStore: {
    PtrId From = varPtr(S.From, C);
    Delta.forEach([&](CSObjId O) {
      const ObjInfo &OI = P.obj(CSM.csObj(O).O);
      if (!OI.IsArray)
        return;
      // Runtime array-store check: filter by the array's element type.
      addPFGEdge(From, CSM.getArrayPtr(O), P.type(OI.Type).ArrayElem,
                 EdgeOrigin::ArrayStore);
    });
    break;
  }
  case StmtKind::Invoke:
    Delta.forEach([&](CSObjId O) { processCallOnReceiver(S, C, O); });
    break;
  default:
    break;
  }
}

void Solver::propagateAlongEdges(PtrId Rep, const PointsToSet &Set) {
  // The representative's out-edges are the union of its members' original
  // PFG out-edges (the collapsed graph is a view, not a copy — see
  // SccCollapser.h). Intra-class targets remap to Rep and diff to
  // nothing; enqueueSet remaps every target through its representative.
  if (!Scc) {
    for (const PFGEdge &E : PFG.succ(Rep))
      enqueueSet(E.To, Set, E.Filter);
    return;
  }
  const std::vector<PtrId> *Members = Scc->membersOrNull(Rep);
  if (!Members) {
    for (const PFGEdge &E : PFG.succ(Rep))
      enqueueSet(E.To, Set, E.Filter);
    return;
  }
  // Most of a collapsed class's edges point back into the class (that is
  // what made it a class); skip them up front instead of paying a no-op
  // word-parallel diff against the class's own set per edge per delta.
  for (PtrId M : *Members)
    for (const PFGEdge &E : PFG.succ(M))
      if (repOf(E.To) != Rep)
        enqueueSet(E.To, Set, E.Filter);
}

void Solver::processClass(PtrId Rep, const PointsToSet &Delta) {
  if (!Scc) {
    processPointer(Rep, Delta);
    return;
  }
  const std::vector<PtrId> *Members = Scc->membersOrNull(Rep);
  if (!Members) {
    processPointer(Rep, Delta);
    return;
  }
  // Un-collapsed view for statements and plugins: the delta reaches every
  // member pointer, exactly as if each still carried its own set. Copy —
  // a nested online collapse (processPointer adds edges) rewrites the
  // collapser's member table.
  std::vector<PtrId> Snapshot = *Members;
  for (PtrId M : Snapshot)
    processPointer(M, Delta);
}

void Solver::collapseClass(const std::vector<PtrId> &Reps) {
  // Canonicalize defensively: remap through current representatives and
  // dedup (a probe path can touch a class twice through stale edges).
  std::vector<PtrId> Classes;
  Classes.reserve(Reps.size());
  for (PtrId R : Reps)
    Classes.push_back(Scc->rep(R));
  std::sort(Classes.begin(), Classes.end());
  Classes.erase(std::unique(Classes.begin(), Classes.end()),
                Classes.end());
  if (Classes.size() < 2)
    return;

  InCollapse = true;

  // (a) Semantic snapshot: the merged set, and per class the catch-up
  // delta its members are missing plus the member list (mergeClass
  // rewires both). Pending work and queue flags consolidate on the
  // winner; stale worklist entries die at pop via the cleared flags.
  PtrId MaxRep = 0;
  for (PtrId C : Classes)
    MaxRep = std::max(MaxRep, C);
  ensurePtr(MaxRep);

  PointsToSet Merged;
  for (PtrId C : Classes)
    Merged.unionWith(Pts[C]);

  struct CatchUp {
    std::vector<PtrId> Members; ///< Snapshot (single element if lone).
    PointsToSet Delta;          ///< Merged ∖ the class's previous set.
  };
  std::vector<CatchUp> CatchUps;
  PointsToSet MergedPending;
  bool AnyQueued = false;
  for (PtrId C : Classes) {
    CatchUp CU;
    CU.Delta.unionWithExcluding(Merged, Pts[C]);
    if (!CU.Delta.empty()) {
      if (const std::vector<PtrId> *M = Scc->membersOrNull(C))
        CU.Members = *M;
      else
        CU.Members.push_back(C);
      CatchUps.push_back(std::move(CU));
    }
    MergedPending.unionWith(Pending[C]);
    Pending[C].clear();
    AnyQueued = AnyQueued || InQueue[C];
    InQueue[C] = 0;
  }

  // (b) Structural merge: union-find, member lists, orders, adjacency.
  PtrId W = Scc->mergeClass(Classes);
  Pts[W] = std::move(Merged);
  Pending[W] = std::move(MergedPending);
  // Release the losing classes' storage outright (clear() would keep the
  // buffers): the slots are unreachable now — every reader remaps
  // through the representative — and a class built over many merges
  // would otherwise retain one dead bitmap per absorbed representative.
  for (PtrId C : Classes)
    if (C != W) {
      Pts[C] = PointsToSet();
      Pending[C] = PointsToSet();
    }
  if (!Pending[W].empty() || (AnyQueued && !Opts.DeltaPropagation))
    markDirty(W);

  // (c) Fire the semantics of the merge. First flow the merged set along
  // the class's out-edges (every member's original out-edges; intra-class
  // targets diff to nothing) — targets that only saw one member's set now
  // receive the rest; the word-parallel diff at each target keeps this
  // cheap. Then replay the catch-up delta for every member whose class
  // was missing facts: statement reprocessing and plugin callbacks
  // observe exactly the growth a collapse-free run would have propagated
  // around the cycle. Logical insertions count per catching-up member.
  // Nested edge insertions self-propagate; nested detection stays off
  // until the collapse completes.
  propagateAlongEdges(W, Pts[W]);
  for (const CatchUp &CU : CatchUps) {
    Stats.PtsInsertions +=
        static_cast<uint64_t>(CU.Delta.size()) * CU.Members.size();
    Stats.Scc.PropagationsSaved +=
        static_cast<uint64_t>(CU.Delta.size()) * (CU.Members.size() - 1);
    for (PtrId M : CU.Members)
      processPointer(M, CU.Delta);
  }

  InCollapse = false;
}

void Solver::runFullSccPass() {
  std::vector<std::vector<PtrId>> Sccs;
  Scc->fullPass(Sccs, Stats.PtsInsertions);
  for (const std::vector<PtrId> &Cycle : Sccs)
    collapseClass(Cycle);
}

void Solver::forEachBucket(std::size_t NumBuckets,
                           const std::function<void(std::size_t)> &Fn) {
  if (NumBuckets <= 1) {
    Fn(0);
    return;
  }
  for (std::size_t B = 1; B < NumBuckets; ++B)
    SweepPool->submit([&Fn, B] { Fn(B); });
  Fn(0); // The solving thread is lane 0; no worker idles waiting on it.
  SweepPool->wait();
}

void Solver::runParallelSweep() {
  // Phase 0 (seal, serial): consume the sealed sweep, dropping stale
  // entries and clearing InQueue so every representative appears exactly
  // once. Deduplication is what makes the parallel phases race-free: each
  // entry owns its Pts/Pending slots exclusively.
  SweepReps.clear();
  for (; Cursor != Current.size(); ++Cursor) {
    PtrId Pr = repOf(Current[Cursor]);
    if (!InQueue[Pr])
      continue;
    InQueue[Pr] = 0;
    SweepReps.push_back(Pr);
  }
  const std::size_t N = SweepReps.size();
  if (N == 0)
    return;
  Stats.WorklistPops += N;

  if (SweepDeltas.size() < N)
    SweepDeltas.resize(N);
  if (SweepMembers.size() < N)
    SweepMembers.resize(N);

  // Contiguous order-preserving slices: the sweep is sorted by topo
  // order, so a slice is a cache-friendly neighborhood. The layout only
  // decides which lane computes what — merge order is bucket-major and
  // set unions are content-canonical, so results are independent of both
  // the bucket count and thread scheduling.
  const std::size_t NumBuckets =
      std::min<std::size_t>(Opts.ParallelSweeps, N);
  const std::size_t Chunk = (N + NumBuckets - 1) / NumBuckets;
  if (SweepShards.size() < NumBuckets)
    SweepShards.resize(NumBuckets);

  // Freeze the interners across the parallel phases: phases 1-2 only
  // read them, and the debug tripwire proves no mutation sneaks in.
  CSM.setFrozen(true);
  CG.setFrozen(true);

  // Phase 1 (parallel): per entry, merge the pending facts into the
  // class set (delta mode) or snapshot the full set (Doop mode), and
  // snapshot the member list — phase-4 collapses rewrite the collapser's
  // tables, and exact once-delivery of this sweep's deltas is argued
  // against the membership frozen here. Writes are confined to the
  // entry's own slots; per-bucket counters are folded in bucket order.
  std::vector<std::array<uint64_t, 2>> BucketWork(NumBuckets, {0, 0});
  forEachBucket(NumBuckets, [&](std::size_t B) {
    const std::size_t Begin = B * Chunk;
    const std::size_t End = std::min(N, Begin + Chunk);
    uint64_t Ins = 0, Saved = 0;
    for (std::size_t I = Begin; I < End; ++I) {
      PtrId Pr = SweepReps[I];
      PointsToSet &Delta = SweepDeltas[I];
      Delta.clear();
      std::vector<PtrId> &Members = SweepMembers[I];
      Members.clear();
      if (Scc)
        if (const std::vector<PtrId> *M = Scc->membersOrNull(Pr))
          Members = *M;
      if (Opts.DeltaPropagation) {
        uint32_t Added = Pts[Pr].unionWith(Pending[Pr], Delta);
        Pending[Pr].clear();
        if (Added) {
          uint32_t Size =
              Members.empty() ? 1 : static_cast<uint32_t>(Members.size());
          Ins += static_cast<uint64_t>(Added) * Size;
          if (Size > 1)
            Saved += static_cast<uint64_t>(Added) * (Size - 1);
        }
      } else if (!Pts[Pr].empty()) {
        Delta = Pts[Pr]; // Snapshot: phase 3 may grow Pts[Pr] under us.
      }
    }
    BucketWork[B] = {Ins, Saved};
  });
  for (const std::array<uint64_t, 2> &W : BucketWork) {
    Stats.PtsInsertions += W[0];
    Stats.Scc.PropagationsSaved += W[1];
  }

  // The class's out-edges are the union of its members' original PFG
  // out-edges (the collapsed graph is a view; see propagateAlongEdges).
  auto ForEachOutEdge = [this](std::size_t I, auto &&Fn) {
    const std::vector<PtrId> &Members = SweepMembers[I];
    if (Members.empty()) {
      for (const PFGEdge &E : PFG.succ(SweepReps[I]))
        Fn(E);
      return;
    }
    for (PtrId M : Members)
      for (const PFGEdge &E : PFG.succ(M))
        Fn(E);
  };

  // Phase 1.5 (serial): pre-build every filter mask the flow phase will
  // intersect with. filterMask() extends lazily shared tables, so it must
  // not run concurrently; no object is interned between here and phase 2,
  // so the masks built now are complete for the whole flow phase.
  for (std::size_t I = 0; I < N; ++I) {
    if (SweepDeltas[I].empty())
      continue;
    ForEachOutEdge(I, [this](const PFGEdge &E) {
      if (E.Filter != InvalidId)
        (void)filterMask(E.Filter);
    });
  }

  // Phase 2 (parallel): flow each entry's delta along its class's
  // out-edges into the bucket's shard. Pts, Pending, the PFG, the
  // union-find, and the filter masks are all frozen (every mutation of
  // them lives in the serial phases), so this is a pure computation over
  // shared read-only state plus thread-confined shard writes.
  forEachBucket(NumBuckets, [&](std::size_t B) {
    const std::size_t Begin = B * Chunk;
    const std::size_t End = std::min(N, Begin + Chunk);
    SweepShard &Shard = SweepShards[B];
    Shard.reset();
    for (std::size_t I = Begin; I < End; ++I) {
      const PointsToSet &Delta = SweepDeltas[I];
      if (Delta.empty())
        continue;
      PtrId Pr = SweepReps[I];
      ForEachOutEdge(I, [&, Pr](const PFGEdge &E) {
        PtrId T = repOf(E.To);
        if (T == Pr)
          return; // Intra-class flow diffs to nothing: the set is there.
        assert(T < Pts.size() && "edge target never interned");
        // Accumulate (delta ∩ mask) ∖ Pts[T]; the final diff against
        // Pending happens at the merge barrier.
        if (E.Filter == InvalidId)
          Shard.slot(T).unionWithExcluding(Delta, Pts[T]);
        else
          Shard.slot(T).unionWithFiltered(Delta, FilterMasks[E.Filter],
                                          Pts[T]);
      });
    }
  });

  CSM.setFrozen(false);
  CG.setFrozen(false);

  // Phase 3 (serial merge barrier, bucket order): drain the shards into
  // Pending (delta mode) or Pts (Doop mode) and mark grown targets
  // dirty. The per-target totals are unions of per-bucket contributions,
  // so the resulting Pending/Pts/Next state is identical for any bucket
  // layout; refillWorklist's total order then canonicalizes Next.
  for (std::size_t B = 0; B < NumBuckets; ++B) {
    SweepShard &Shard = SweepShards[B];
    for (std::size_t K = 0; K < Shard.Order.size(); ++K) {
      PtrId T = Shard.Order[K];
      const PointsToSet &Contribution = Shard.Sets[K];
      if (Opts.DeltaPropagation) {
        if (Pending[T].unionWithExcluding(Contribution, Pts[T]))
          markDirty(T);
      } else {
        uint32_t Added = Pts[T].unionWith(Contribution);
        if (Added) {
          Stats.PtsInsertions +=
              static_cast<uint64_t>(Added) * classSizeOf(T);
          markDirty(T);
        }
      }
    }
  }

  // Phase 4 (serial, sealed order): statement reprocessing and plugin
  // callbacks per entry, against the phase-1 member snapshot. Everything
  // that mutates shared structures — interning, PFG edges, call edges,
  // SCC probes and collapses — happens here, single-threaded, which is
  // how "collapse requests queue to the barrier" falls out: a probe can
  // only fire between entries, never under a parallel phase. Delivering
  // the snapshot members is exact even when an earlier entry's collapse
  // absorbs a later one: the absorbed class's Pts already contained its
  // phase-1 delta, so the collapse catch-up excluded it, and members the
  // class gained received it through that same catch-up.
  for (std::size_t I = 0; I < N; ++I) {
    if (Stats.PtsInsertions > Opts.WorkBudget) {
      Exhausted = true;
      return;
    }
    const PointsToSet &Delta = SweepDeltas[I];
    if (Delta.empty())
      continue;
    const std::vector<PtrId> &Members = SweepMembers[I];
    if (Members.empty()) {
      processPointer(SweepReps[I], Delta);
      continue;
    }
    for (PtrId M : Members)
      processPointer(M, Delta);
  }
}

PTAResult Solver::solve() {
  Clock.reset();

  // The sweep pool exists only when asked for: par=1 never constructs a
  // thread, so the serial engine is untouched down to the instruction
  // level. The pool size is par-1 because the solving thread itself runs
  // bucket 0 of every phase (forEachBucket). Deliberately not clamped to
  // the hardware: par=8 on a 1-core host oversubscribes but computes the
  // same bytes, which is exactly what the equivalence suite pins.
  if (Opts.ParallelSweeps > 1 && !SweepPool)
    SweepPool = std::make_unique<ThreadPool>(Opts.ParallelSweeps - 1);

  for (SolverPlugin *Pl : Plugins)
    Pl->onStart(*this);

  assert(P.entry() != InvalidId && "program has no entry point");
  addReachable(P.entry(), CM.empty());

  runFixpointLoop();
  return finishRun();
}

PTAResult Solver::resolveIncrement(uint32_t OldNumStmts) {
  assert(canResume() &&
         "resolveIncrement requires a completed plugin-free run");
  Clock.reset();
  Solved = false;

  // Grow the per-entity tables to the post-delta program and index only
  // the new statements (additive deltas never touch existing ids).
  CutStores.resize(P.numStmts(), 0);
  CutReturns.resize(P.numVars(), 0);
  indexBaseUses(OldNumStmts);

  // Seed the worklist with the delta: replay every new statement of every
  // already-reachable (method, context). New methods need nothing here —
  // the resumed fixpoint discovers them through the call edges the
  // replays (and subsequent propagation) create, exactly as a cold run
  // would. Snapshot copy: replays extend the underlying reachable list.
  std::vector<CSMethodId> Snapshot = CG.reachableMethods();
  for (CSMethodId CSMth : Snapshot) {
    const CSMethodInfo &CSMI = CG.csMethod(CSMth);
    const MethodInfo &MI = P.method(CSMI.M);
    for (StmtId SId : MI.AllStmts) {
      if (SId < OldNumStmts || !stmtEnabled(SId))
        continue;
      replayNewStmt(CSMth, P.stmt(SId), SId, CSMI.Ctx);
    }
  }

  runFixpointLoop();
  return finishRun();
}

void Solver::replayNewStmt(CSMethodId CSMth, const Stmt &S, StmtId SId,
                           CtxId C) {
  switch (S.Kind) {
  case StmtKind::New:
  case StmtKind::NewArray: {
    CtxId HCtx = Selector->selectHeap(CM, C, S.Obj);
    enqueueObj(varPtr(S.To, C), CSM.getCSObj(S.Obj, HCtx));
    break;
  }
  case StmtKind::Assign:
    addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), InvalidId,
               EdgeOrigin::Assign);
    break;
  case StmtKind::Cast:
    addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), S.Type,
               EdgeOrigin::Cast);
    break;
  case StmtKind::StaticLoad:
    addPFGEdge(CSM.getStaticPtr(S.Field), varPtr(S.To, C), InvalidId,
               EdgeOrigin::StaticLoad);
    break;
  case StmtKind::StaticStore:
    addPFGEdge(varPtr(S.From, C), CSM.getStaticPtr(S.Field), InvalidId,
               EdgeOrigin::StaticStore);
    break;
  case StmtKind::Invoke:
    if (S.IKind == InvokeKind::Static) {
      MethodId Callee = S.DirectCallee;
      assert(Callee != InvalidId && "unresolved static call");
      CtxId CalleeCtx = Selector->selectStatic(CM, C, S.CallSite, Callee);
      CSCallSiteId CS = CG.getCSCallSite(S.CallSite, C);
      CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
      if (CG.addEdge(CS, CSCallee))
        processCallEdge(CS, CSCallee, S, C, CalleeCtx);
    } else {
      // Receiver objects discovered before the delta will never revisit
      // this new site on their own; replay them. Copy — dispatch may
      // trigger collapses that grow the base's set mid-iteration.
      PointsToSet Recv = ptsOf(varPtr(S.Base, C));
      if (!Recv.empty())
        processBaseUse(S, SId, C, Recv);
    }
    break;
  case StmtKind::Load:
  case StmtKind::Store:
  case StmtKind::ArrayLoad:
  case StmtKind::ArrayStore: {
    PointsToSet Base = ptsOf(varPtr(S.Base, C)); // Copy; see Invoke case.
    if (!Base.empty())
      processBaseUse(S, SId, C, Base);
    break;
  }
  case StmtKind::Return:
    // A new return statement in an already-reachable method: wire the
    // [Return] edges its *existing* call edges would have received in
    // processCallEdge (edges added after the delta pick the variable up
    // from the method's updated RetVars there).
    if (S.From != InvalidId && !isCutReturn(S.From)) {
      std::vector<CSCallSiteId> Callers = CG.callersOf(CSMth);
      for (CSCallSiteId CallerCS : Callers) {
        const CSCallSiteInfo &CSI = CG.csCallSite(CallerCS);
        const Stmt &Call = P.stmt(P.callSite(CSI.CS).S);
        if (Call.To == InvalidId)
          continue;
        if (isDeferredReturn(S.From)) {
          PendingReturnTargets[S.From].push_back(varPtr(Call.To, CSI.Ctx));
          continue;
        }
        addPFGEdge(varPtr(S.From, C), varPtr(Call.To, CSI.Ctx), InvalidId,
                   EdgeOrigin::Return);
      }
    }
    break;
  case StmtKind::If:
    break;
  }
}

void Solver::runFixpointLoop() {
  // Scratch sets reused across iterations (buffers survive clear()).
  PointsToSet Delta;
  PointsToSet FullSet;
  bool MoreRounds = true;
  while (MoreRounds) {
    while (true) {
      if (Cursor == Current.size()) {
        if (Next.empty())
          break;
        refillWorklist();
      }
      if (Stats.PtsInsertions > Opts.WorkBudget) {
        Exhausted = true;
        break;
      }
      if (Opts.TimeBudgetMs > 0 && (Stats.WorklistPops & 1023) == 0 &&
          Clock.elapsedMs() > Opts.TimeBudgetMs) {
        Exhausted = true;
        break;
      }
      // Periodic fallback: a bounded full Tarjan pass over the
      // representative graph (scheduled on edge growth / aborted
      // probes), which also refreshes the worklist's topological order.
      if (Scc && Scc->fullPassDue(Stats.PtsInsertions))
        runFullSccPass();

      if (SweepPool) {
        // Parallel engine: the remainder of the sealed sweep is one
        // bucketed, barrier-merged unit of work; budget checks re-run at
        // the loop head and between phase-4 entries, both of which are
        // deterministic program points.
        runParallelSweep();
        if (Exhausted)
          break;
        continue;
      }

      PtrId Pr = repOf(Current[Cursor++]);
      if (!InQueue[Pr])
        continue; // Stale entry: absorbed by a collapse, or a duplicate.
      InQueue[Pr] = 0;
      ++Stats.WorklistPops;

      if (Opts.DeltaPropagation) {
        // Merge the pending facts in one word-parallel union; Delta
        // receives exactly the genuinely new elements.
        uint32_t Added = Pts[Pr].unionWith(Pending[Pr], Delta);
        Pending[Pr].clear();
        if (!Added)
          continue;
        // Logical work counter: every member of the class gains Added
        // facts, so a completed run reports the same total with cycle
        // elimination on or off.
        uint32_t Members = classSizeOf(Pr);
        Stats.PtsInsertions += static_cast<uint64_t>(Added) * Members;
        if (Members > 1)
          Stats.Scc.PropagationsSaved +=
              static_cast<uint64_t>(Added) * (Members - 1);
        propagateAlongEdges(Pr, Delta);
        processClass(Pr, Delta);
      } else {
        // Full re-propagation (Doop-style): reprocess the complete set.
        // The snapshot is a word-level copy and the per-edge unions diff
        // against each target, so this mode measures the strategy's
        // re-processing cost, not per-element copy cost.
        if (Pts[Pr].empty())
          continue;
        FullSet = Pts[Pr];
        propagateAlongEdges(Pr, FullSet);
        processClass(Pr, FullSet);
      }
    }
    // Worklist drained (or budget hit): give plugins a chance to resolve
    // deferred work (e.g. flush withheld return edges); resume if they
    // added anything.
    if (Exhausted)
      break;
    for (SolverPlugin *Pl : Plugins)
      Pl->onFixpoint();
    MoreRounds = !Next.empty() || Cursor != Current.size();
  }
}

PTAResult Solver::finishRun() {
  for (SolverPlugin *Pl : Plugins)
    Pl->onFinish();

  PTAResult R;
  R.Exhausted = Exhausted;
  if (Scc) {
    // Merge the collapser-side counters; PropagationsSaved accumulated
    // solver-side (it depends on delta sizes the collapser never sees).
    const SccStats &CS = Scc->stats();
    Stats.Scc.SccsFound = CS.SccsFound;
    Stats.Scc.MembersCollapsed = CS.MembersCollapsed;
    Stats.Scc.OnlineCollapses = CS.OnlineCollapses;
    Stats.Scc.FullPasses = CS.FullPasses;
  }
  Stats.NumPtrs = CSM.numPtrs();
  Stats.NumCSObjs = CSM.numCSObjs();
  Stats.NumContexts = CM.numContexts();
  Stats.ReachableCS = static_cast<uint32_t>(CG.reachableMethods().size());
  Stats.ReachableCI = static_cast<uint32_t>(CG.reachableCI().size());
  R.Stats = Stats;
  buildProjection(R);
  Solved = true;
  R.TimeMs = Clock.elapsedMs();
  return R;
}

void Solver::buildProjection(PTAResult &R) {
  R.VarPts.resize(P.numVars());
  for (PtrId Pr = 0; Pr < CSM.numPtrs(); ++Pr) {
    const PointsToSet &S = ptsOf(Pr);
    if (S.empty())
      continue;
    const PtrInfo &PI = CSM.ptr(Pr);
    switch (PI.Kind) {
    case PtrKind::Var:
      S.forEach([&](CSObjId O) { R.VarPts[PI.A].insert(CSM.csObj(O).O); });
      break;
    case PtrKind::Field: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.FieldPts[{Base, PI.B}];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Array: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.ArrayPts[Base];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Static: {
      PointsToSet &Dst = R.StaticPts[PI.A];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    }
  }
  R.CalleesPerSite.resize(P.numCallSites());
  for (const auto &[CS, M] : CG.ciEdges())
    R.CalleesPerSite[CS].push_back(M);
  // Canonical per-site order: ciEdges() is in discovery order, which a
  // warm-started run (resolveIncrement) interleaves differently than a
  // cold run. Sorting makes the projection fixpoint-determined.
  for (std::vector<MethodId> &Callees : R.CalleesPerSite)
    std::sort(Callees.begin(), Callees.end());
  R.Reachable = CG.reachableCI();
  R.NumCallEdgesCI = CG.ciEdges().size();
}
