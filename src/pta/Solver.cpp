//===- Solver.cpp - Worklist pointer-analysis solver ----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include <algorithm>
#include <cassert>

using namespace csc;

ContextSelector::~ContextSelector() = default;

SolverPlugin::~SolverPlugin() = default;
void SolverPlugin::onStart(Solver &) {}
void SolverPlugin::onNewMethod(CSMethodId) {}
void SolverPlugin::onNewPointsTo(PtrId, const PointsToSet &) {}
void SolverPlugin::onNewCallEdge(CSCallSiteId, CSMethodId) {}
void SolverPlugin::onNewPFGEdge(PtrId, PtrId, EdgeOrigin) {}
void SolverPlugin::onFixpoint() {}
void SolverPlugin::onFinish() {}

Solver::Solver(const Program &P, SolverOptions Opts) : P(P), Opts(Opts) {
  if (Opts.Selector) {
    Selector = Opts.Selector;
  } else {
    DefaultSelector = std::make_unique<CISelector>();
    Selector = DefaultSelector.get();
  }
  CutStores.assign(P.numStmts(), 0);
  CutReturns.assign(P.numVars(), 0);

  // Capacity hints proportional to program size: the dedup tables are on
  // the propagation hot path and rehash storms showed up in profiles.
  CSM.reserveHint(P.numVars(), P.numObjs());
  CG.reserveHint(P.numCallSites());
  PFG.reserveHint(P.numVars(), 2 * static_cast<std::size_t>(P.numStmts()));
  ShortcutEdgeKeys.reserve(P.numStmts() / 4);

  // Index statements by their base variable so points-to growth of a base
  // triggers exactly the dependent loads/stores/calls.
  BaseUses.resize(P.numVars());
  for (StmtId S = 0; S < P.numStmts(); ++S) {
    const Stmt &St = P.stmt(S);
    switch (St.Kind) {
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
      BaseUses[St.Base].push_back(S);
      break;
    case StmtKind::Invoke:
      if (St.IKind != InvokeKind::Static)
        BaseUses[St.Base].push_back(S);
      break;
    default:
      break;
    }
  }
}

Solver::~Solver() = default;

void Solver::addCutStore(StmtId S) {
  assert(S < CutStores.size() && "cutStore id out of range");
  CutStores[S] = 1;
}

void Solver::addCutReturn(VarId V) {
  assert(V < CutReturns.size() && "cutReturn id out of range");
  CutReturns[V] = 1;
  // Withheld return edges are superseded by the plugin's shortcut/relay
  // edges; drop them.
  if (isDeferredReturn(V)) {
    DeferredReturns[V] = 0;
    PendingReturnTargets.erase(V);
  }
}

void Solver::addDeferredReturn(VarId V) {
  if (isCutReturn(V))
    return;
  if (V >= DeferredReturns.size())
    DeferredReturns.resize(P.numVars(), 0);
  DeferredReturns[V] = 1;
}

void Solver::undeferReturn(VarId V) {
  if (!isDeferredReturn(V))
    return;
  DeferredReturns[V] = 0;
  auto It = PendingReturnTargets.find(V);
  if (It == PendingReturnTargets.end())
    return;
  std::vector<PtrId> Targets = std::move(It->second);
  PendingReturnTargets.erase(It);
  PtrId RetPtr = varPtrCI(V);
  for (PtrId T : Targets)
    addPFGEdge(RetPtr, T, InvalidId, EdgeOrigin::Return);
}

bool Solver::addShortcutEdge(PtrId Src, PtrId Dst) {
  // The key set doubles as the dedup: patterns re-derive the same
  // shortcut for every points-to delta, and a repeat means the PFG edge
  // was already added by the first call.
  if (!ShortcutEdgeKeys.insert(packPair(Src, Dst)).second)
    return false;
  return addPFGEdge(Src, Dst, InvalidId, EdgeOrigin::Shortcut);
}

void Solver::ensurePtr(PtrId Pr) {
  if (Pr >= Pts.size()) {
    Pts.resize(Pr + 1);
    Pending.resize(Pr + 1);
    InQueue.resize(Pr + 1, 0);
  }
}

void Solver::markDirty(PtrId Pr) {
  ensurePtr(Pr);
  if (!InQueue[Pr]) {
    InQueue[Pr] = 1;
    Queue.push_back(Pr);
  }
}

const PointsToSet &Solver::filterMask(TypeId Filter) {
  if (Filter >= FilterMasks.size()) {
    FilterMasks.resize(Filter + 1);
    FilterMaskCover.resize(Filter + 1, 0);
  }
  PointsToSet &M = FilterMasks[Filter];
  uint32_t N = CSM.numCSObjs();
  uint32_t &Covered = FilterMaskCover[Filter];
  if (Covered < N) {
    M.ensureBitmap();
    for (CSObjId O = Covered; O < N; ++O)
      if (P.isSubtype(P.obj(CSM.csObj(O).O).Type, Filter))
        M.insert(O);
    Covered = N;
  }
  return M;
}

void Solver::enqueueObj(PtrId Pr, CSObjId O) {
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    if (Pts[Pr].contains(O))
      return;
    if (Pending[Pr].insert(O))
      markDirty(Pr);
    return;
  }
  if (Pts[Pr].insert(O)) {
    ++Stats.PtsInsertions;
    markDirty(Pr);
  }
}

void Solver::enqueueSet(PtrId Pr, const PointsToSet &Set, TypeId Filter) {
  ensurePtr(Pr);
  if (Opts.DeltaPropagation) {
    // Pending |= (Set ∩ mask) ∖ Pts: one word-parallel pass; only
    // genuinely new facts queue work.
    uint32_t Added =
        Filter == InvalidId
            ? Pending[Pr].unionWithExcluding(Set, Pts[Pr])
            : Pending[Pr].unionWithFiltered(Set, filterMask(Filter),
                                            Pts[Pr]);
    if (Added)
      markDirty(Pr);
    return;
  }
  uint32_t Added = Filter == InvalidId
                       ? Pts[Pr].unionWith(Set)
                       : Pts[Pr].unionWithFiltered(Set, filterMask(Filter));
  if (Added) {
    Stats.PtsInsertions += Added;
    markDirty(Pr);
  }
}

bool Solver::addPFGEdge(PtrId Src, PtrId Dst, TypeId Filter,
                        EdgeOrigin Origin) {
  if (!PFG.addEdge(Src, Dst, Filter))
    return false;
  ++Stats.PFGEdges;
  ensurePtr(std::max(Src, Dst));
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPFGEdge(Src, Dst, Origin);
  const PointsToSet &SrcPts = ptsOf(Src);
  if (!SrcPts.empty())
    enqueueSet(Dst, SrcPts, Filter);
  return true;
}

void Solver::addReachable(MethodId M, CtxId C) {
  CSMethodId CSMth = CG.getCSMethod(M, C);
  if (!CG.addReachable(CSMth))
    return;
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewMethod(CSMth);

  const MethodInfo &MI = P.method(M);
  for (StmtId SId : MI.AllStmts) {
    const Stmt &S = P.stmt(SId);
    switch (S.Kind) {
    case StmtKind::New:
    case StmtKind::NewArray: {
      CtxId HCtx = Selector->selectHeap(CM, C, S.Obj);
      CSObjId O = CSM.getCSObj(S.Obj, HCtx);
      enqueueObj(varPtr(S.To, C), O);
      break;
    }
    case StmtKind::Assign:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::Assign);
      break;
    case StmtKind::Cast:
      addPFGEdge(varPtr(S.From, C), varPtr(S.To, C), S.Type,
                 EdgeOrigin::Cast);
      break;
    case StmtKind::StaticLoad:
      addPFGEdge(CSM.getStaticPtr(S.Field), varPtr(S.To, C), InvalidId,
                 EdgeOrigin::StaticLoad);
      break;
    case StmtKind::StaticStore:
      addPFGEdge(varPtr(S.From, C), CSM.getStaticPtr(S.Field), InvalidId,
                 EdgeOrigin::StaticStore);
      break;
    case StmtKind::Invoke:
      if (S.IKind == InvokeKind::Static) {
        MethodId Callee = S.DirectCallee;
        assert(Callee != InvalidId && "unresolved static call");
        CtxId CalleeCtx = Selector->selectStatic(CM, C, S.CallSite, Callee);
        CSCallSiteId CS = CG.getCSCallSite(S.CallSite, C);
        CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
        if (CG.addEdge(CS, CSCallee))
          processCallEdge(CS, CSCallee, S, C, CalleeCtx);
      }
      break;
    case StmtKind::Load:
    case StmtKind::Store:
    case StmtKind::ArrayLoad:
    case StmtKind::ArrayStore:
    case StmtKind::Return:
    case StmtKind::If:
      break; // Driven by points-to growth / call edges.
    }
  }
}

void Solver::processCallEdge(CSCallSiteId CS, CSMethodId Callee,
                             const Stmt &S, CtxId CallerCtx,
                             CtxId CalleeCtx) {
  ++Stats.CallEdgesCS;
  MethodId M = CG.csMethod(Callee).M;
  addReachable(M, CalleeCtx);
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewCallEdge(CS, Callee);

  const MethodInfo &MI = P.method(M);
  size_t FirstParam = MI.IsStatic ? 0 : 1;
  size_t NParams = MI.Params.size() - FirstParam;
  for (size_t K = 0; K < S.Args.size() && K < NParams; ++K)
    addPFGEdge(varPtr(S.Args[K], CallerCtx),
               varPtr(MI.Params[FirstParam + K], CalleeCtx), InvalidId,
               EdgeOrigin::Param);

  // [Return]: suppressed for return variables in cutReturns; withheld for
  // deferred ones (nested [CutPropLoad] candidates).
  if (S.To != InvalidId)
    for (VarId RV : MI.RetVars) {
      if (isCutReturn(RV))
        continue;
      if (isDeferredReturn(RV)) {
        PendingReturnTargets[RV].push_back(varPtr(S.To, CallerCtx));
        continue;
      }
      addPFGEdge(varPtr(RV, CalleeCtx), varPtr(S.To, CallerCtx), InvalidId,
                 EdgeOrigin::Return);
    }
}

void Solver::processCallOnReceiver(const Stmt &S, CtxId CallerCtx,
                                   CSObjId Recv) {
  MethodId Callee;
  if (S.IKind == InvokeKind::Virtual) {
    Callee = P.dispatch(P.obj(CSM.csObj(Recv).O).Type, S.Subsig);
    if (Callee == InvalidId)
      return; // No concrete target (e.g. spurious receiver filtered later).
  } else {
    Callee = S.DirectCallee;
    assert(Callee != InvalidId && "unresolved special call");
  }
  CtxId CalleeCtx = Selector->select(CM, CSM, P, CallerCtx, S.CallSite, Recv,
                                     Callee);
  // Bind the receiver object to `this` of the callee.
  const MethodInfo &MI = P.method(Callee);
  if (!MI.IsStatic)
    enqueueObj(varPtr(MI.Params[0], CalleeCtx), Recv);

  CSCallSiteId CS = CG.getCSCallSite(S.CallSite, CallerCtx);
  CSMethodId CSCallee = CG.getCSMethod(Callee, CalleeCtx);
  if (CG.addEdge(CS, CSCallee))
    processCallEdge(CS, CSCallee, S, CallerCtx, CalleeCtx);
}

void Solver::processPointer(PtrId Pr, const PointsToSet &Delta) {
  const PtrInfo &PI = CSM.ptr(Pr);
  if (PI.Kind == PtrKind::Var) {
    VarId V = PI.A;
    CtxId C = PI.B;
    for (StmtId SId : BaseUses[V]) {
      const Stmt &S = P.stmt(SId);
      switch (S.Kind) {
      case StmtKind::Load: {
        PtrId To = varPtr(S.To, C); // Loop-invariant: intern once.
        Delta.forEach([&](CSObjId O) {
          addPFGEdge(fieldPtr(O, S.Field), To, InvalidId,
                     EdgeOrigin::Load);
        });
        break;
      }
      case StmtKind::Store:
        // [Store]: suppressed for statements in cutStores.
        if (!isCutStore(SId)) {
          PtrId From = varPtr(S.From, C);
          Delta.forEach([&](CSObjId O) {
            addPFGEdge(From, fieldPtr(O, S.Field), InvalidId,
                       EdgeOrigin::Store);
          });
        }
        break;
      case StmtKind::ArrayLoad: {
        PtrId To = varPtr(S.To, C);
        Delta.forEach([&](CSObjId O) {
          if (!P.obj(CSM.csObj(O).O).IsArray)
            return;
          addPFGEdge(CSM.getArrayPtr(O), To, InvalidId,
                     EdgeOrigin::ArrayLoad);
        });
        break;
      }
      case StmtKind::ArrayStore: {
        PtrId From = varPtr(S.From, C);
        Delta.forEach([&](CSObjId O) {
          const ObjInfo &OI = P.obj(CSM.csObj(O).O);
          if (!OI.IsArray)
            return;
          // Runtime array-store check: filter by the array's element type.
          addPFGEdge(From, CSM.getArrayPtr(O),
                     P.type(OI.Type).ArrayElem, EdgeOrigin::ArrayStore);
        });
        break;
      }
      case StmtKind::Invoke:
        Delta.forEach(
            [&](CSObjId O) { processCallOnReceiver(S, C, O); });
        break;
      default:
        break;
      }
    }
  }
  for (SolverPlugin *Pl : Plugins)
    Pl->onNewPointsTo(Pr, Delta);
}

PTAResult Solver::solve() {
  Clock.reset();
  PTAResult R;

  for (SolverPlugin *Pl : Plugins)
    Pl->onStart(*this);

  assert(P.entry() != InvalidId && "program has no entry point");
  addReachable(P.entry(), CM.empty());

  // Scratch sets reused across iterations (buffers survive clear()).
  PointsToSet Delta;
  PointsToSet FullSet;
  bool MoreRounds = true;
  while (MoreRounds) {
    while (!Queue.empty()) {
      if (Stats.PtsInsertions > Opts.WorkBudget) {
        Exhausted = true;
        break;
      }
      if (Opts.TimeBudgetMs > 0 && (Stats.WorklistPops & 1023) == 0 &&
          Clock.elapsedMs() > Opts.TimeBudgetMs) {
        Exhausted = true;
        break;
      }
      ++Stats.WorklistPops;
      PtrId Pr = Queue.front();
      Queue.pop_front();
      InQueue[Pr] = 0;

      if (Opts.DeltaPropagation) {
        // Merge the pending facts in one word-parallel union; Delta
        // receives exactly the genuinely new elements.
        uint32_t Added = Pts[Pr].unionWith(Pending[Pr], Delta);
        Pending[Pr].clear();
        if (!Added)
          continue;
        Stats.PtsInsertions += Added;
        for (const PFGEdge &E : PFG.succ(Pr))
          enqueueSet(E.To, Delta, E.Filter);
        processPointer(Pr, Delta);
      } else {
        // Full re-propagation (Doop-style): reprocess the complete set.
        // The snapshot is a word-level copy and the per-edge unions diff
        // against each target, so this mode measures the strategy's
        // re-processing cost, not per-element copy cost.
        if (Pts[Pr].empty())
          continue;
        FullSet = Pts[Pr];
        for (const PFGEdge &E : PFG.succ(Pr))
          enqueueSet(E.To, FullSet, E.Filter);
        processPointer(Pr, FullSet);
      }
    }
    // Worklist drained (or budget hit): give plugins a chance to resolve
    // deferred work (e.g. flush withheld return edges); resume if they
    // added anything.
    if (Exhausted)
      break;
    for (SolverPlugin *Pl : Plugins)
      Pl->onFixpoint();
    MoreRounds = !Queue.empty();
  }

  for (SolverPlugin *Pl : Plugins)
    Pl->onFinish();

  R.Exhausted = Exhausted;
  Stats.NumPtrs = CSM.numPtrs();
  Stats.NumCSObjs = CSM.numCSObjs();
  Stats.NumContexts = CM.numContexts();
  Stats.ReachableCS = static_cast<uint32_t>(CG.reachableMethods().size());
  Stats.ReachableCI = static_cast<uint32_t>(CG.reachableCI().size());
  R.Stats = Stats;
  buildProjection(R);
  R.TimeMs = Clock.elapsedMs();
  return R;
}

void Solver::buildProjection(PTAResult &R) {
  R.VarPts.resize(P.numVars());
  for (PtrId Pr = 0; Pr < CSM.numPtrs(); ++Pr) {
    const PointsToSet &S = ptsOf(Pr);
    if (S.empty())
      continue;
    const PtrInfo &PI = CSM.ptr(Pr);
    switch (PI.Kind) {
    case PtrKind::Var:
      S.forEach([&](CSObjId O) { R.VarPts[PI.A].insert(CSM.csObj(O).O); });
      break;
    case PtrKind::Field: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.FieldPts[{Base, PI.B}];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Array: {
      ObjId Base = CSM.csObj(PI.A).O;
      PointsToSet &Dst = R.ArrayPts[Base];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    case PtrKind::Static: {
      PointsToSet &Dst = R.StaticPts[PI.A];
      S.forEach([&](CSObjId O) { Dst.insert(CSM.csObj(O).O); });
      break;
    }
    }
  }
  R.CalleesPerSite.resize(P.numCallSites());
  for (const auto &[CS, M] : CG.ciEdges())
    R.CalleesPerSite[CS].push_back(M);
  R.Reachable = CG.reachableCI();
  R.NumCallEdgesCI = CG.ciEdges().size();
}
