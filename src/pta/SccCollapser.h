//===- SccCollapser.h - Online PFG cycle elimination ------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online cycle elimination for the solver's pointer-flow graph. Every
/// pointer in a cycle of unfiltered copy edges provably converges to the
/// same points-to set, so the solver keeps one set per strongly connected
/// component and propagates between component representatives instead of
/// individual pointers — the classic integer-factor speedup for
/// Andersen-style solvers.
///
/// The collapsed graph is a **view**, not a copy: the collapser stores no
/// adjacency of its own. Representative-level successors are enumerated
/// by walking the member pointers' original PointerFlowGraph out-edges
/// and mapping targets through rep() — for the overwhelming majority of
/// pointers (never absorbed into a class) this is exactly the original
/// edge list, so the solver's hot path touches no extra memory. An early
/// implementation kept a second, representative-keyed adjacency; the
/// duplicated working set cost more in cache pressure than collapsing
/// saved, and byte-per-byte parity with the collapse-free solver is what
/// makes the optimization a pure win.
///
/// What the collapser does own:
///
///  * a UnionFind mapping pointers to representatives, fronted by a
///    dense "absorbed" bitset so the never-merged majority resolve with
///    one cache-resident bit test,
///  * member lists and class sizes for collapsed classes,
///  * an approximate topological order over pointers, which drives the
///    solver's two-level worklist and the online back-edge trigger.
///
/// Detection is two-tier, Pearce-style: an unfiltered edge that lands
/// against the approximate order (within a bounded affected region) runs
/// a budgeted DFS probe for a closing path, collapsing the found path
/// immediately; a periodic full Tarjan pass — scheduled on graph growth,
/// aborted probes, and, decisively, solver work milestones so cycles
/// collapse before the bulk of propagation circulates them — catches
/// everything the probes miss and refreshes the topological order.
///
/// The collapser never touches solver state (points-to sets, pending
/// work, plugin callbacks); the solver drives merges via mergeClass() and
/// performs the semantic part of a collapse itself (see
/// Solver::collapseClass).
///
/// Parallel sweeps: the collapser is not thread-safe and does not need to
/// be. Probes fire from addPFGEdge and edges are only added from the
/// solver's serial phases, so under ParallelSweeps > 1 every detection
/// and collapse effectively queues to the per-sweep merge barrier: the
/// parallel phases see a frozen union-find, frozen member tables, and a
/// frozen topological order (rep(), classSize(), membersOrNull() and
/// order() are then safe to call from any lane), and mergeClass runs only
/// between barriers, on the solving thread.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_PTA_SCCCOLLAPSER_H
#define CSC_PTA_SCCCOLLAPSER_H

#include "pta/PTAResult.h"
#include "pta/PointerFlowGraph.h"
#include "support/Ids.h"
#include "support/UnionFind.h"

#include <unordered_map>
#include <vector>

namespace csc {

class SccCollapser {
public:
  /// The collapser reads (never writes) the solver's original PFG: it is
  /// the edge set probes, full passes, and member-edge enumeration walk.
  explicit SccCollapser(const PointerFlowGraph &PFG) : PFG(PFG) {}

  /// Pre-sizes the order/size tables.
  void reserveHint(std::size_t Nodes);

  //===--------------------------------------------------------------------===
  // Representative mapping
  //===--------------------------------------------------------------------===

  /// Representative of \p P. Fast path: a pointer that was never
  /// absorbed into another class (the overwhelming majority) IS its own
  /// representative — one bit test on a dense bitset that stays
  /// cache-resident, instead of a random access into the union-find
  /// parent array on every enqueue. Only absorbed pointers walk the
  /// forest.
  PtrId rep(PtrId P) const {
    std::size_t W = P >> 6;
    if (W >= Absorbed.size() || !((Absorbed[W] >> (P & 63)) & 1))
      return P;
    return UF.find(P);
  }

  /// Number of original pointers in \p Rep's class (>= 1).
  uint32_t classSize(PtrId Rep) const {
    return Rep < Size.size() ? Size[Rep] : 1;
  }

  /// Member list of a multi-pointer class (ascending PtrId, includes the
  /// representative); nullptr for singleton classes.
  const std::vector<PtrId> *membersOrNull(PtrId Rep) const {
    auto It = Members.find(Rep);
    return It == Members.end() ? nullptr : &It->second;
  }

  //===--------------------------------------------------------------------===
  // Ordering / bookkeeping
  //===--------------------------------------------------------------------===

  /// Records a new original PFG edge for pass scheduling and order
  /// maintenance (called by the solver after PointerFlowGraph::addEdge
  /// accepts it).
  void noteEdge(PtrId S, PtrId T) {
    ensureNode(S > T ? S : T);
    ++NumEdges;
    ++EdgesSincePass;
  }

  /// Approximate topological position of \p Rep (smaller = closer to the
  /// PFG sources). Exact only right after a full pass; new nodes append
  /// in creation order, which tracks discovery and is a good heuristic.
  uint32_t order(PtrId Rep) const {
    return Rep < Order.size() ? Order[Rep] : Rep;
  }

  /// True when \p S -> \p T does not advance the approximate order — the
  /// cheap trigger for an online cycle probe. Probes additionally refuse
  /// to enter large collapsed classes (enumerating a big class's merged
  /// out-edges per probe costs more than the periodic pass that would
  /// catch the cycle anyway); see findCycle.
  bool looksLikeBackEdge(PtrId S, PtrId T) const {
    return order(T) <= order(S) && classSize(T) <= ProbeClassBound;
  }

  //===--------------------------------------------------------------------===
  // Detection
  //===--------------------------------------------------------------------===

  /// Bounded DFS over unfiltered representative edges from \p T looking
  /// for \p S (the insertion of S -> T closed a cycle iff T reaches S).
  /// On success fills \p CycleOut with the representatives on the found
  /// path (T ... S) — all provably on one cycle — and returns true.
  /// Gives up (false, and schedules the full pass sooner) once the probe
  /// budget is exhausted.
  bool findCycle(PtrId S, PtrId T, std::vector<PtrId> &CycleOut);

  /// True when a whole-graph Tarjan sweep is worth it: the graph grew,
  /// too many probes aborted, or — the decisive trigger — the solver
  /// performed enough insertion work since the last pass. Work-based
  /// scheduling (geometric, from a small initial threshold) runs the
  /// first passes right after the initial reachability cascade, i.e.
  /// BEFORE the bulk of propagation circulates redundantly around any
  /// cycle; edge-based scheduling alone fires too late because the PFG
  /// skeleton appears in one early burst.
  bool fullPassDue(uint64_t WorkDone) const {
    return EdgesSincePass >= PassEdgeThreshold ||
           WorkDone >= NextPassWork || AbortedProbes >= 48;
  }

  /// Iterative Tarjan over the unfiltered representative subgraph:
  /// appends every multi-node SCC to \p SccsOut (for the solver to
  /// collapse) and refreshes the approximate topological order from the
  /// condensation. Resets the fullPassDue() schedule.
  void fullPass(std::vector<std::vector<PtrId>> &SccsOut,
                uint64_t WorkDone = 0);

  //===--------------------------------------------------------------------===
  // Merging
  //===--------------------------------------------------------------------===

  /// Structurally merges the classes of \p Reps (>= 2 current
  /// representatives): unites the union-find classes, concatenates
  /// member lists, marks the absorbed, and gives the winner the smallest
  /// order among the merged classes. Returns the surviving
  /// representative. Solver-side state (points-to / pending sets) is the
  /// caller's responsibility.
  PtrId mergeClass(const std::vector<PtrId> &Reps);

  SccStats &stats() { return Stats; }
  const SccStats &stats() const { return Stats; }

private:
  void ensureNode(PtrId P);

  /// Enumerates \p Rep's representative-level unfiltered successors:
  /// every member's original unfiltered out-edge, target mapped through
  /// rep(), intra-class edges skipped. Fn(PtrId) returning false stops.
  template <typename F> bool forEachUnfilteredSucc(PtrId Rep, F &&Fn) {
    const std::vector<PtrId> *M = membersOrNull(Rep);
    if (!M) {
      for (const PFGEdge &E : PFG.succ(Rep)) {
        if (E.Filter != InvalidId)
          continue;
        PtrId T = rep(E.To);
        if (T != Rep && !Fn(T))
          return false;
      }
      return true;
    }
    for (PtrId Member : *M)
      for (const PFGEdge &E : PFG.succ(Member)) {
        if (E.Filter != InvalidId)
          continue;
        PtrId T = rep(E.To);
        if (T != Rep && !Fn(T))
          return false;
      }
    return true;
  }

  /// Max nodes an online probe may visit before giving up. Cycles the
  /// probes are after are short copy/assign loops; long-range ones are
  /// the full pass's job.
  static constexpr uint32_t ProbeBudget = 192;
  /// Max members a class may have for a probe to start at or descend
  /// into it (big classes make per-frame successor enumeration costly;
  /// their cycles wait for the full pass).
  static constexpr uint32_t ProbeClassBound = 64;

  const PointerFlowGraph &PFG;
  UnionFind UF;
  std::vector<uint32_t> Size;  ///< Class size by representative.
  std::vector<uint32_t> Order; ///< Approximate topological position.
  std::unordered_map<PtrId, std::vector<PtrId>> Members; ///< Multi only.
  /// Bit per pointer: 1 = absorbed into another representative (see
  /// rep()). Grown on demand by mergeClass, never by ensureNode — a
  /// never-merged run keeps this at a few words.
  std::vector<uint64_t> Absorbed;

  // Probe scratch (epoch-stamped visit marks reused across probes).
  std::vector<uint32_t> VisitMark;
  uint32_t VisitEpoch = 0;
  struct ProbeFrame {
    PtrId Node;
    uint32_t EdgeIx; ///< Index into the flattened member-edge sequence.
  };
  std::vector<ProbeFrame> ProbeStack;
  /// Per-frame successor snapshots for the probe DFS (frames enumerate
  /// their successors once; the graph must not change mid-probe).
  std::vector<std::vector<PtrId>> ProbeSuccScratch;

  // Full-pass scheduling.
  uint64_t NumEdges = 0;
  uint64_t EdgesSincePass = 0;
  uint64_t PassEdgeThreshold = 512;
  uint64_t NextPassWork = 16 * 1024; ///< Insertion milestone (doubles).
  uint32_t UnproductivePasses = 0;   ///< Consecutive empty passes.
  uint32_t AbortedProbes = 0;

  SccStats Stats;
};

} // namespace csc

#endif // CSC_PTA_SCCCOLLAPSER_H
