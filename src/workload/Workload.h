//===- Workload.h - Synthetic benchmark generator ---------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of Java-like benchmark programs. The paper
/// evaluates on ten large real programs (eclipse, freecol, briss, hsqldb,
/// jedit, gruntspud, soot, columba, jython, findbugs) which we cannot
/// ship; the generator produces programs with the analysis-relevant
/// characteristics instead:
///
///  * entity classes with setters/getters and nested wrapper chains
///    (field access pattern material),
///  * polymorphic class families called through base types (poly-call and
///    call-graph metric material),
///  * container-heavy code with downcasts of retrieved elements
///    (container pattern and #fail-cast material),
///  * select-style utilities (local flow pattern material),
///  * optional "context bombs" — allocation/call structures whose
///    context-sensitive analysis cost explodes (the 2obj/2type
///    scalability cliffs of Tables 1 and 2). Same-class bombs break
///    2obj but not 2type; multi-class bombs break both.
///
/// Each named paper program maps to a parameter profile (size, pattern
/// density, bomb shape) so the evaluation tables reproduce the paper's
/// qualitative shape.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_WORKLOAD_WORKLOAD_H
#define CSC_WORKLOAD_WORKLOAD_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace csc {

struct WorkloadConfig {
  std::string Name = "synthetic";
  uint64_t Seed = 42;

  uint32_t NumEntityClasses = 10; ///< Data classes with accessors.
  uint32_t WrapperDepth = 2;      ///< Nested setter/getter chain length.
  uint32_t NumFamilies = 5;       ///< Polymorphic families.
  uint32_t FamilySize = 3;        ///< Concrete subclasses per family.
  uint32_t NumSelectors = 4;      ///< Local-flow utility methods.
  uint32_t NumScenarios = 8;      ///< Scenario classes driven from main.
  uint32_t ActionsPerScenario = 10;

  /// Value slots per entity class: each slot F > 0 adds a `val_F` field
  /// with its own setter/getter pair, multiplying field-access pattern
  /// material without growing the scenario count.
  uint32_t FieldDensity = 1;
  /// Depth of the static relay chain (Chain.relay_0 .. relay_D). Scenario
  /// actions route values through the full chain, stressing call-graph
  /// depth and parameter/return propagation. 0 disables the chain.
  uint32_t CallChainDepth = 0;
  /// Percentage (0-100) of scenario actions that exercise containers
  /// (list/map round trips); the remainder spreads over entity, family,
  /// selector, string, registry, archive, and chain actions.
  uint32_t ContainerMixPct = 22;
  /// Shared container hubs: static ArrayList registries reachable from
  /// every scenario (global caches). Unlike per-action containers, a
  /// hub's element set accumulates program-wide, so propagation moves
  /// genuinely large points-to sets — the representation stress that
  /// distinguishes set-at-a-time from element-at-a-time solvers.
  uint32_t NumSharedHubs = 0;
  /// Percentage of actions that store/retrieve through a shared hub
  /// (applies only when NumSharedHubs > 0; drawn after the container mix).
  uint32_t HubMixPct = 12;
  /// Copy-cycle knob: cycle actions build a chain of CopyCycleLen local
  /// copies and close it back through a shared static relay
  /// (Cyc.pass_k), so the PFG gains genuine copy/assign/param/return
  /// cycles — every action routed through the same relay joins one
  /// strongly connected component. This is the workload that stresses
  /// the solver's online cycle elimination; 0 disables cycle actions.
  uint32_t CopyCycleLen = 0;

  // Context bomb: Width allocation sites per level over Depth levels.
  uint32_t BombDepth = 0;
  uint32_t BombWidth = 0;
  /// True: bomb allocation sites spread over distinct classes (breaks
  /// 2type as well); false: one class per level (breaks only 2obj).
  bool BombMultiClass = false;
};

/// Emits the `.jir` source of a workload (stdlib not included).
std::string generateWorkload(const WorkloadConfig &C);

/// Parses stdlib + generated workload into a fresh program.
/// Returns nullptr and fills \p Diags on error (generator bug).
std::unique_ptr<Program> buildWorkloadProgram(const WorkloadConfig &C,
                                              std::vector<std::string> &Diags);

/// The ten paper-program profiles used by the benchmark harnesses.
std::vector<WorkloadConfig> paperBenchmarkSuite();

/// Size-parameterized tiers for the e2e scaling bench: six tiers, each
/// roughly 3-4x the previous one in generated statement count, from
/// "scale-xs" (about the size of examples/figure1.jir) through "scale-xl"
/// (~100x) to "scale-xxl" (~350x). The larger tiers add shared container
/// hubs; none carry context bombs — the tiers measure propagation cost,
/// not context explosion.
std::vector<WorkloadConfig> scalingSuite();

} // namespace csc

#endif // CSC_WORKLOAD_WORKLOAD_H
