//===- Workload.h - Synthetic benchmark generator ---------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of Java-like benchmark programs. The paper
/// evaluates on ten large real programs (eclipse, freecol, briss, hsqldb,
/// jedit, gruntspud, soot, columba, jython, findbugs) which we cannot
/// ship; the generator produces programs with the analysis-relevant
/// characteristics instead:
///
///  * entity classes with setters/getters and nested wrapper chains
///    (field access pattern material),
///  * polymorphic class families called through base types (poly-call and
///    call-graph metric material),
///  * container-heavy code with downcasts of retrieved elements
///    (container pattern and #fail-cast material),
///  * select-style utilities (local flow pattern material),
///  * optional "context bombs" — allocation/call structures whose
///    context-sensitive analysis cost explodes (the 2obj/2type
///    scalability cliffs of Tables 1 and 2). Same-class bombs break
///    2obj but not 2type; multi-class bombs break both.
///
/// Each named paper program maps to a parameter profile (size, pattern
/// density, bomb shape) so the evaluation tables reproduce the paper's
/// qualitative shape.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_WORKLOAD_WORKLOAD_H
#define CSC_WORKLOAD_WORKLOAD_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace csc {

struct WorkloadConfig {
  std::string Name = "synthetic";
  uint64_t Seed = 42;

  uint32_t NumEntityClasses = 10; ///< Data classes with accessors.
  uint32_t WrapperDepth = 2;      ///< Nested setter/getter chain length.
  uint32_t NumFamilies = 5;       ///< Polymorphic families.
  uint32_t FamilySize = 3;        ///< Concrete subclasses per family.
  uint32_t NumSelectors = 4;      ///< Local-flow utility methods.
  uint32_t NumScenarios = 8;      ///< Scenario classes driven from main.
  uint32_t ActionsPerScenario = 10;

  // Context bomb: Width allocation sites per level over Depth levels.
  uint32_t BombDepth = 0;
  uint32_t BombWidth = 0;
  /// True: bomb allocation sites spread over distinct classes (breaks
  /// 2type as well); false: one class per level (breaks only 2obj).
  bool BombMultiClass = false;
};

/// Emits the `.jir` source of a workload (stdlib not included).
std::string generateWorkload(const WorkloadConfig &C);

/// Parses stdlib + generated workload into a fresh program.
/// Returns nullptr and fills \p Diags on error (generator bug).
std::unique_ptr<Program> buildWorkloadProgram(const WorkloadConfig &C,
                                              std::vector<std::string> &Diags);

/// The ten paper-program profiles used by the benchmark harnesses.
std::vector<WorkloadConfig> paperBenchmarkSuite();

} // namespace csc

#endif // CSC_WORKLOAD_WORKLOAD_H
