//===- Workload.cpp - Synthetic benchmark generator -----------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "frontend/Parser.h"
#include "stdlib/Stdlib.h"
#include "support/Rng.h"

#include <sstream>

using namespace csc;

namespace {

/// Emits one workload; a thin state machine around an output stream.
class Generator {
public:
  explicit Generator(const WorkloadConfig &C) : C(C), R(C.Seed) {}

  std::string run() {
    emitEntities();
    emitFamilies();
    emitUtil();
    if (C.CallChainDepth > 0)
      emitChain();
    if (C.CopyCycleLen > 0)
      emitCycleRelays();
    if (C.NumSharedHubs > 0)
      emitHubs();
    if (C.BombDepth > 0 && C.BombWidth > 0)
      emitBomb();
    emitScenarios();
    emitMain();
    return OS.str();
  }

private:
  std::string ent(uint32_t I) const {
    return "Ent_" + std::to_string(I % C.NumEntityClasses);
  }

  /// Entity classes in the "archive band" are stored into the shared
  /// setVal hub but never genuinely retrieved-and-touched: imprecise
  /// analyses drag their touch()/Help_ methods into the reachable world
  /// (#reach-mtd deltas), precise ones do not.
  uint32_t archiveBand() const {
    return C.NumEntityClasses > 4 ? 2 + C.NumEntityClasses / 8 : 0;
  }
  uint32_t touchedClasses() const {
    return C.NumEntityClasses - archiveBand();
  }

  //===------------------------------------------------------------------===//
  // Entity classes: setters/getters + wrapper chains (field pattern).
  //===------------------------------------------------------------------===//

  void emitEntities() {
    // A common base with a virtual touch(): calls dispatched on values
    // retrieved from fields/containers are where imprecision inflates the
    // call graph (#poly-call, #call-edge, and transitively #reach-mtd via
    // the per-entity helper classes).
    OS << "abstract class Entity {\n"
       << "  abstract method touch(): Object;\n}\n";
    for (uint32_t I = 0; I < C.NumEntityClasses; ++I)
      OS << "class Help_" << I << " {\n"
         << "  method assist(): Object {\n"
         << "    var o: Object;\n    o = new Object;\n    return o;\n"
         << "  }\n}\n";
    for (uint32_t I = 0; I < C.NumEntityClasses; ++I) {
      std::string Link = ent(I + 1);
      OS << "class " << ent(I) << " extends Entity {\n";
      OS << "  field val: Object;\n";
      OS << "  field link: " << Link << ";\n";
      OS << "  method setVal(v: Object): void {\n"
         << "    this.val = v;\n  }\n";
      OS << "  method getVal(): Object {\n"
         << "    var r: Object;\n    r = this.val;\n    return r;\n  }\n";
      OS << "  method touch(): Object {\n"
         << "    var h: Help_" << I << ";\n"
         << "    h = new Help_" << I << ";\n"
         << "    var r: Object;\n"
         << "    r = call h.assist();\n"
         << "    return r;\n  }\n";
      OS << "  method setLink(l: " << Link << "): void {\n"
         << "    this.link = l;\n  }\n";
      OS << "  method getLink(): " << Link << " {\n"
         << "    var r: " << Link << ";\n    r = this.link;\n"
         << "    return r;\n  }\n";
      // Extra value slots (field-density knob): independent fields with
      // their own accessor pairs, each a field-pattern candidate.
      for (uint32_t F = 1; F < C.FieldDensity; ++F) {
        OS << "  field val_" << F << ": Object;\n";
        OS << "  method setVal_" << F << "(v: Object): void {\n"
           << "    this.val_" << F << " = v;\n  }\n";
        OS << "  method getVal_" << F << "(): Object {\n"
           << "    var r: Object;\n    r = this.val_" << F << ";\n"
           << "    return r;\n  }\n";
      }
      // Wrapper chains: nested calls for field access (§3.2.3).
      for (uint32_t D = 1; D <= C.WrapperDepth; ++D) {
        std::string Inner =
            D == 1 ? "setVal" : "wSetVal_" + std::to_string(D - 1);
        OS << "  method wSetVal_" << D << "(v: Object): void {\n"
           << "    call this." << Inner << "(v);\n  }\n";
        std::string GInner =
            D == 1 ? "getVal" : "wGetVal_" + std::to_string(D - 1);
        OS << "  method wGetVal_" << D << "(): Object {\n"
           << "    var r: Object;\n    r = call this." << GInner << "();\n"
           << "    return r;\n  }\n";
      }
      OS << "}\n";
    }
  }

  //===------------------------------------------------------------------===//
  // Polymorphic families (poly-call / call-edge material).
  //===------------------------------------------------------------------===//

  void emitFamilies() {
    for (uint32_t K = 0; K < C.NumFamilies; ++K) {
      OS << "abstract class Fam_" << K << " {\n"
         << "  field slot: Object;\n"
         << "  abstract method work(x: Object): Object;\n}\n";
      for (uint32_t J = 0; J < C.FamilySize; ++J) {
        OS << "class Fam_" << K << "_S_" << J << " extends Fam_" << K
           << " {\n";
        OS << "  method work(x: Object): Object {\n";
        switch (J % 3) {
        case 0: // Identity: local flow pattern material.
          OS << "    return x;\n";
          break;
        case 1: // Store + load through `this`: field pattern material.
          OS << "    var r: Object;\n"
             << "    this.slot = x;\n"
             << "    r = this.slot;\n"
             << "    return r;\n";
          break;
        case 2: // Allocator: fresh object per family.
          OS << "    var o: Object;\n"
             << "    o = new Object;\n"
             << "    return o;\n";
          break;
        }
        OS << "  }\n}\n";
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Static utilities: selectors (local flow) and a registry (statics).
  //===------------------------------------------------------------------===//

  void emitUtil() {
    OS << "class Util {\n";
    for (uint32_t I = 0; I < C.NumSelectors; ++I) {
      OS << "  static field reg_" << I << ": Object;\n";
      OS << "  static method select_" << I
         << "(a: Object, b: Object): Object {\n"
         << "    var r: Object;\n"
         << "    if ? {\n      r = a;\n    } else {\n      r = b;\n    }\n"
         << "    return r;\n  }\n";
    }
    OS << "}\n";
  }

  //===------------------------------------------------------------------===//
  // Shared container hubs: static ArrayList registries initialized once
  // and used by every scenario. Their element sets accumulate entities
  // program-wide (global caches in real programs), so retrievals move
  // large points-to sets through the PFG.
  //===------------------------------------------------------------------===//

  void emitHubs() {
    OS << "class Hub {\n";
    for (uint32_t K = 0; K < C.NumSharedHubs; ++K)
      OS << "  static field list_" << K << ": ArrayList;\n";
    OS << "  static method init(): void {\n";
    for (uint32_t K = 0; K < C.NumSharedHubs; ++K)
      OS << "    var l" << K << ": ArrayList;\n"
         << "    l" << K << " = new ArrayList;\n"
         << "    dcall l" << K << ".ArrayList.init();\n"
         << "    Hub::list_" << K << " = l" << K << ";\n";
    OS << "  }\n}\n";
  }

  /// Stores a fresh entity into a shared hub and retrieves one back with a
  /// downcast: the hub's element set spans every contributing scenario.
  void emitHubAction(const std::string &Id) {
    uint32_t K = R.nextInRange(C.NumSharedHubs);
    uint32_t EI = R.nextInRange(touchedClasses());
    std::string E = ent(EI);
    OS << "    var gl" << Id << ": ArrayList;\n"
       << "    gl" << Id << " = Hub::list_" << K << ";\n"
       << "    var ge" << Id << ": " << E << ";\n"
       << "    ge" << Id << " = new " << E << ";\n"
       << "    call gl" << Id << ".add(ge" << Id << ");\n"
       << "    var go" << Id << ": Object;\n"
       << "    go" << Id << " = call gl" << Id << ".get();\n"
       << "    var gc" << Id << ": " << E << ";\n"
       << "    gc" << Id << " = (" << E << ") go" << Id << ";\n";
  }

  //===------------------------------------------------------------------===//
  // Static relay chain (call-depth knob): relay_D forwards through D
  // nested static calls down to the identity relay_0. Local-flow material
  // at depth; every chain action shares the same merged chain variables.
  //===------------------------------------------------------------------===//

  void emitChain() {
    OS << "class Chain {\n"
       << "  static method relay_0(x: Object): Object {\n"
       << "    return x;\n  }\n";
    for (uint32_t D = 1; D <= C.CallChainDepth; ++D)
      OS << "  static method relay_" << D << "(x: Object): Object {\n"
         << "    var r: Object;\n"
         << "    r = scall Chain.relay_" << (D - 1) << "(x);\n"
         << "    return r;\n  }\n";
    OS << "}\n";
  }

  //===------------------------------------------------------------------===//
  // Copy cycles (CopyCycleLen knob): local copy chains closed back
  // through a shared static relay. The chain vars, the relay's parameter
  // and return, and the closing invoke target form one PFG cycle; every
  // action using the same relay joins the same strongly connected
  // component, so large programs grow a few big SCCs — the shape online
  // cycle elimination collapses.
  //===------------------------------------------------------------------===//

  static constexpr uint32_t NumCycleRelays = 4;

  void emitCycleRelays() {
    OS << "class Cyc {\n";
    for (uint32_t K = 0; K < NumCycleRelays; ++K)
      OS << "  static method pass_" << K << "(x: Object): Object {\n"
         << "    return x;\n  }\n";
    OS << "}\n";
  }

  /// y0 = new E; y1 = y0; ...; y0 = Cyc.pass_k(y_{L-1}) — a copy cycle of
  /// length CopyCycleLen + the relay hop, with a downcast of the merged
  /// result as precision material. When shared hubs exist, half the
  /// cycles seed from a hub retrieval instead of a fresh allocation, so
  /// the hubs' program-wide element sets circulate the cycles — the
  /// redundant re-propagation that cycle elimination exists to remove.
  void emitCycleAction(const std::string &Id) {
    uint32_t K = R.nextInRange(NumCycleRelays);
    uint32_t EI = R.nextInRange(touchedClasses());
    std::string E = ent(EI);
    if (C.NumSharedHubs > 0 && R.nextInRange(4) < 3) {
      uint32_t H = R.nextInRange(C.NumSharedHubs);
      OS << "    var ycs" << Id << ": ArrayList;\n"
         << "    ycs" << Id << " = Hub::list_" << H << ";\n"
         << "    var yc" << Id << "_0: Object;\n"
         << "    yc" << Id << "_0 = call ycs" << Id << ".get();\n";
    } else {
      OS << "    var yc" << Id << "_0: Object;\n"
         << "    yc" << Id << "_0 = new " << E << ";\n";
    }
    for (uint32_t D = 1; D < C.CopyCycleLen; ++D)
      OS << "    var yc" << Id << "_" << D << ": Object;\n"
         << "    yc" << Id << "_" << D << " = yc" << Id << "_" << (D - 1)
         << ";\n";
    OS << "    yc" << Id << "_0 = scall Cyc.pass_" << K << "(yc" << Id
       << "_" << (C.CopyCycleLen - 1) << ");\n"
       << "    var ycc" << Id << ": " << E << ";\n"
       << "    ycc" << Id << " = (" << E << ") yc" << Id << "_"
       << (C.CopyCycleLen - 1) << ";\n";
  }

  //===------------------------------------------------------------------===//
  // Context bomb: W allocation sites per level over D levels. 2obj pays
  // W^2 contexts per level; 2type only pays when the sites are spread
  // over distinct classes.
  //===------------------------------------------------------------------===//

  std::string bombAllocClass(uint32_t Level, uint32_t Site) const {
    if (!C.BombMultiClass)
      return "Bomb_" + std::to_string(Level);
    return "BombMk_" + std::to_string(Level) + "_" +
           std::to_string(Site % C.BombWidth);
  }

  void emitBomb() {
    for (uint32_t D = 0; D <= C.BombDepth; ++D) {
      bool Last = D == C.BombDepth;
      std::string Next = "Bomb_" + std::to_string(D + 1);
      OS << "class Bomb_" << D << " {\n";
      if (!Last) {
        OS << "  field next: " << Next << ";\n";
        OS << "  method build(): void {\n"
           << "    var n: " << Next << ";\n";
        // W allocation sites behind nondeterministic branches. In
        // multi-class mode each site lives in a maker class of its own so
        // that type contexts diversify too.
        for (uint32_t W = 0; W + 1 < C.BombWidth; ++W)
          OS << "    if ? {\n"
             << "      n = " << allocNext(D, W) << ";\n"
             << "    } else {\n";
        OS << "      n = " << allocNext(D, C.BombWidth - 1) << ";\n";
        for (uint32_t W = 0; W + 1 < C.BombWidth; ++W)
          OS << "    }\n";
        OS << "    this.next = n;\n"
           << "    call n.build();\n  }\n";
      } else {
        OS << "  method build(): void {\n  }\n";
      }
      OS << "}\n";
      if (C.BombMultiClass && !Last) {
        for (uint32_t W = 0; W < C.BombWidth; ++W)
          OS << "class BombMk_" << D << "_" << W << " {\n"
             << "  static method make(): " << Next << " {\n"
             << "    var n: " << Next << ";\n"
             << "    n = new " << Next << ";\n"
             << "    return n;\n  }\n}\n";
      }
    }
  }

  std::string allocNext(uint32_t Level, uint32_t Site) {
    std::string Next = "Bomb_" + std::to_string(Level + 1);
    if (!C.BombMultiClass)
      return "new " + Next;
    // Allocation delegated to a per-site maker class; the allocating
    // method's class becomes the 2type context element.
    return "scall BombMk_" + std::to_string(Level) + "_" +
           std::to_string(Site) + ".make()";
  }

  //===------------------------------------------------------------------===//
  // Scenarios: the program's "application code".
  //===------------------------------------------------------------------===//

  void emitScenarios() {
    for (uint32_t S = 0; S < C.NumScenarios; ++S) {
      OS << "class Scen_" << S << " {\n"
         << "  static method run(): void {\n";
      for (uint32_t A = 0; A < C.ActionsPerScenario; ++A)
        emitAction(S, A);
      OS << "  }\n}\n";
    }
  }

  void emitAction(uint32_t S, uint32_t A) {
    std::string Id = std::to_string(S) + "_" + std::to_string(A);
    // Container-mix knob: the configured percentage of actions are
    // list/map round trips; the rest spreads uniformly over the others.
    if (R.nextInRange(100) < C.ContainerMixPct) {
      if (R.nextBool())
        emitListAction(Id);
      else
        emitMapAction(Id);
      return;
    }
    if (C.NumSharedHubs > 0 && R.nextInRange(100) < C.HubMixPct) {
      emitHubAction(Id);
      return;
    }
    uint32_t Kinds = 7;
    if (C.CallChainDepth > 0)
      ++Kinds;
    if (C.CopyCycleLen > 0)
      ++Kinds;
    uint32_t Pick = R.nextInRange(Kinds);
    if (Pick == 7 && C.CallChainDepth == 0)
      Pick = 8; // Slot 7 belongs to the chain; fall through to cycles.
    switch (Pick) {
    case 0:
      emitEntityAction(Id, /*Wrapped=*/false);
      break;
    case 1:
      emitEntityAction(Id, /*Wrapped=*/C.WrapperDepth > 0);
      break;
    case 2:
      emitFamilyAction(Id);
      break;
    case 3:
      emitSelectorAction(Id);
      break;
    case 4:
      emitStringAction(Id);
      break;
    case 5:
      emitRegistryAction(Id);
      break;
    case 6:
      emitArchiveAction(Id);
      break;
    case 7:
      emitChainAction(Id);
      break;
    case 8:
      emitCycleAction(Id);
      break;
    }
  }

  /// Stores an archive-band entity into the setVal hub without ever
  /// touching it (see archiveBand()).
  void emitArchiveAction(const std::string &Id) {
    if (archiveBand() == 0)
      return;
    uint32_t EI = R.nextInRange(C.NumEntityClasses);
    uint32_t VI = touchedClasses() + R.nextInRange(archiveBand());
    std::string E = ent(EI), V = ent(VI);
    OS << "    var an" << Id << ": " << E << ";\n"
       << "    an" << Id << " = new " << E << ";\n"
       << "    var av" << Id << ": " << V << ";\n"
       << "    av" << Id << " = new " << V << ";\n"
       << "    call an" << Id << ".setVal(av" << Id << ");\n";
  }

  /// Entity round trip: store a typed value, read it back, downcast.
  /// Precise analyses prove the cast safe; CI merges all entities' vals.
  /// A small fraction of the casts are deliberately wrong (real bugs) so
  /// the recall experiment sees dynamically failing casts too.
  void emitEntityAction(const std::string &Id, bool Wrapped) {
    uint32_t EI = R.nextInRange(C.NumEntityClasses);
    uint32_t VI = R.nextInRange(touchedClasses());
    std::string E = ent(EI), V = ent(VI);
    std::string CastTo = R.nextBool(0.06) ? ent(VI + 1) : V;
    std::string Set = "setVal", Get = "getVal";
    // Slots > 0 have plain accessors only; wrappers stay on slot 0.
    uint32_t Slot =
        C.FieldDensity > 1 ? R.nextInRange(C.FieldDensity) : 0;
    if (Slot > 0) {
      Set = "setVal_" + std::to_string(Slot);
      Get = "getVal_" + std::to_string(Slot);
    } else if (Wrapped) {
      uint32_t D = 1 + R.nextInRange(C.WrapperDepth);
      Set = "wSetVal_" + std::to_string(D);
      Get = "wGetVal_" + std::to_string(D);
    }
    OS << "    var en" << Id << ": " << E << ";\n"
       << "    en" << Id << " = new " << E << ";\n"
       << "    var ev" << Id << ": " << V << ";\n"
       << "    ev" << Id << " = new " << V << ";\n"
       << "    call en" << Id << "." << Set << "(ev" << Id << ");\n"
       << "    var eg" << Id << ": Object;\n"
       << "    eg" << Id << " = call en" << Id << "." << Get << "();\n"
       << "    var ec" << Id << ": " << CastTo << ";\n"
       << "    ec" << Id << " = (" << CastTo << ") eg" << Id << ";\n";
    emitTouch("eg" + Id, "et" + Id);
  }

  /// Dispatches touch() on a retrieved Object-typed value.
  void emitTouch(const std::string &Src, const std::string &Tmp) {
    OS << "    var " << Tmp << ": Entity;\n"
       << "    " << Tmp << " = (Entity) " << Src << ";\n"
       << "    var " << Tmp << "r: Object;\n"
       << "    " << Tmp << "r = call " << Tmp << ".touch();\n";
  }

  /// Polymorphic dispatch over a family.
  void emitFamilyAction(const std::string &Id) {
    uint32_t K = R.nextInRange(C.NumFamilies);
    std::string Base = "Fam_" + std::to_string(K);
    OS << "    var ff" << Id << ": " << Base << ";\n";
    for (uint32_t J = 0; J + 1 < C.FamilySize; ++J)
      OS << "    if ? {\n"
         << "      ff" << Id << " = new " << Base << "_S_" << J << ";\n"
         << "    } else {\n";
    OS << "      ff" << Id << " = new " << Base << "_S_"
       << (C.FamilySize - 1) << ";\n";
    for (uint32_t J = 0; J + 1 < C.FamilySize; ++J)
      OS << "    }\n";
    OS << "    var fx" << Id << ": Object;\n"
       << "    fx" << Id << " = new Object;\n"
       << "    var fw" << Id << ": Object;\n"
       << "    fw" << Id << " = call ff" << Id << ".work(fx" << Id
       << ");\n";
  }

  /// Local-flow selector with a downcast of the result.
  void emitSelectorAction(const std::string &Id) {
    uint32_t K = R.nextInRange(C.NumSelectors);
    uint32_t EI = R.nextInRange(C.NumEntityClasses);
    std::string E = ent(EI);
    OS << "    var sa" << Id << ": " << E << ";\n"
       << "    sa" << Id << " = new " << E << ";\n"
       << "    var sb" << Id << ": " << E << ";\n"
       << "    sb" << Id << " = new " << E << ";\n"
       << "    var sr" << Id << ": Object;\n"
       << "    sr" << Id << " = scall Util.select_" << K << "(sa" << Id
       << ", sb" << Id << ");\n"
       << "    var sc" << Id << ": " << E << ";\n"
       << "    sc" << Id << " = (" << E << ") sr" << Id << ";\n";
  }

  /// Collection round trip, optionally through an iterator.
  void emitListAction(const std::string &Id) {
    static const char *Kinds[] = {"ArrayList", "LinkedList", "HashSet"};
    const char *Kind = Kinds[R.nextInRange(3)];
    uint32_t EI = R.nextInRange(touchedClasses());
    std::string E = ent(EI);
    OS << "    var cl" << Id << ": " << Kind << ";\n"
       << "    cl" << Id << " = new " << Kind << ";\n"
       << "    dcall cl" << Id << "." << Kind << ".init();\n"
       << "    var ce" << Id << ": " << E << ";\n"
       << "    ce" << Id << " = new " << E << ";\n"
       << "    call cl" << Id << ".add(ce" << Id << ");\n"
       << "    var co" << Id << ": Object;\n"
       << "    co" << Id << " = call cl" << Id << ".get();\n"
       << "    var cc" << Id << ": " << E << ";\n"
       << "    cc" << Id << " = (" << E << ") co" << Id << ";\n";
    emitTouch("co" + Id, "ct" + Id);
    if (R.nextBool()) {
      OS << "    var ci" << Id << ": Iterator;\n"
         << "    ci" << Id << " = call cl" << Id << ".iterator();\n"
         << "    var cn" << Id << ": Object;\n"
         << "    cn" << Id << " = call ci" << Id << ".next();\n"
         << "    var cm" << Id << ": " << E << ";\n"
         << "    cm" << Id << " = (" << E << ") cn" << Id << ";\n";
    }
  }

  /// Map round trip; value retrieval and key-view iteration.
  void emitMapAction(const std::string &Id) {
    uint32_t KI = R.nextInRange(touchedClasses());
    uint32_t VI = R.nextInRange(touchedClasses());
    std::string KT = ent(KI), VT = ent(VI);
    OS << "    var mm" << Id << ": HashMap;\n"
       << "    mm" << Id << " = new HashMap;\n"
       << "    dcall mm" << Id << ".HashMap.init();\n"
       << "    var mk" << Id << ": " << KT << ";\n"
       << "    mk" << Id << " = new " << KT << ";\n"
       << "    var mv" << Id << ": " << VT << ";\n"
       << "    mv" << Id << " = new " << VT << ";\n"
       << "    call mm" << Id << ".put(mk" << Id << ", mv" << Id << ");\n"
       << "    var mg" << Id << ": Object;\n"
       << "    mg" << Id << " = call mm" << Id << ".get(mk" << Id << ");\n"
       << "    var mc" << Id << ": " << VT << ";\n"
       << "    mc" << Id << " = (" << VT << ") mg" << Id << ";\n";
    emitTouch("mg" + Id, "mt" + Id);
    if (R.nextBool()) {
      OS << "    var ms" << Id << ": Collection;\n"
         << "    ms" << Id << " = call mm" << Id << ".keySet();\n"
         << "    var mi" << Id << ": Iterator;\n"
         << "    mi" << Id << " = call ms" << Id << ".iterator();\n"
         << "    var mo" << Id << ": Object;\n"
         << "    mo" << Id << " = call mi" << Id << ".next();\n"
         << "    var md" << Id << ": " << KT << ";\n"
         << "    md" << Id << " = (" << KT << ") mo" << Id << ";\n";
    }
  }

  /// Routes an entity through the full relay chain and downcasts the
  /// result: only analyses that keep per-call flows apart prove the cast.
  void emitChainAction(const std::string &Id) {
    uint32_t EI = R.nextInRange(touchedClasses());
    std::string E = ent(EI);
    OS << "    var ha" << Id << ": " << E << ";\n"
       << "    ha" << Id << " = new " << E << ";\n"
       << "    var hr" << Id << ": Object;\n"
       << "    hr" << Id << " = scall Chain.relay_" << C.CallChainDepth
       << "(ha" << Id << ");\n"
       << "    var hc" << Id << ": " << E << ";\n"
       << "    hc" << Id << " = (" << E << ") hr" << Id << ";\n";
  }

  /// Fluent StringBuilder chain (local flow on `this`).
  void emitStringAction(const std::string &Id) {
    OS << "    var tb" << Id << ": StringBuilder;\n"
       << "    tb" << Id << " = new StringBuilder;\n"
       << "    var ts" << Id << ": String;\n"
       << "    ts" << Id << " = new String;\n"
       << "    var tc" << Id << ": StringBuilder;\n"
       << "    tc" << Id << " = call tb" << Id << ".append(ts" << Id
       << ");\n"
       << "    var tr" << Id << ": String;\n"
       << "    tr" << Id << " = call tc" << Id << ".toString();\n";
  }

  /// Static registry store/load.
  void emitRegistryAction(const std::string &Id) {
    uint32_t K = R.nextInRange(C.NumSelectors);
    uint32_t EI = R.nextInRange(C.NumEntityClasses);
    std::string E = ent(EI);
    OS << "    var ro" << Id << ": " << E << ";\n"
       << "    ro" << Id << " = new " << E << ";\n"
       << "    Util::reg_" << K << " = ro" << Id << ";\n"
       << "    var rg" << Id << ": Object;\n"
       << "    rg" << Id << " = Util::reg_" << K << ";\n";
  }

  void emitMain() {
    OS << "class Main {\n  static method main(): void {\n";
    if (C.NumSharedHubs > 0)
      OS << "    scall Hub.init();\n";
    if (C.BombDepth > 0 && C.BombWidth > 0)
      OS << "    var bomb: Bomb_0;\n"
         << "    bomb = new Bomb_0;\n"
         << "    call bomb.build();\n";
    for (uint32_t S = 0; S < C.NumScenarios; ++S)
      OS << "    scall Scen_" << S << ".run();\n";
    OS << "  }\n}\n";
  }

  const WorkloadConfig &C;
  Rng R;
  std::ostringstream OS;
};

} // namespace

std::string csc::generateWorkload(const WorkloadConfig &C) {
  return Generator(C).run();
}

std::unique_ptr<Program>
csc::buildWorkloadProgram(const WorkloadConfig &C,
                          std::vector<std::string> &Diags) {
  auto P = std::make_unique<Program>();
  if (!parseProgram(*P,
                    {{"<stdlib>", stdlibSource()},
                     {C.Name + ".jir", generateWorkload(C)}},
                    Diags))
    return nullptr;
  return P;
}

std::vector<WorkloadConfig> csc::paperBenchmarkSuite() {
  // Profiles approximating the evaluated programs' character:
  //  * same-class bombs break 2obj but leave 2type scalable,
  //  * multi-class bombs break both,
  //  * eclipse/jedit/findbugs carry no bomb (2obj finishes there in
  //    Table 2, slowly).
  std::vector<WorkloadConfig> Suite;

  auto Mk = [&](const char *Name, uint64_t Seed, uint32_t Scen,
                uint32_t Act, uint32_t Ent, uint32_t Wrap, uint32_t Fam,
                uint32_t FamSz, uint32_t Sel, uint32_t BW, uint32_t BD,
                bool Multi) {
    WorkloadConfig C;
    C.Name = Name;
    C.Seed = Seed;
    C.NumScenarios = Scen;
    C.ActionsPerScenario = Act;
    C.NumEntityClasses = Ent;
    C.WrapperDepth = Wrap;
    C.NumFamilies = Fam;
    C.FamilySize = FamSz;
    C.NumSelectors = Sel;
    C.BombWidth = BW;
    C.BombDepth = BD;
    C.BombMultiClass = Multi;
    Suite.push_back(C);
  };

  //   name       seed scen act ent wrap fam fsz sel bombW bombD multi
  Mk("eclipse",    11, 120, 16, 20,  2,  14,  4,  8,  70,    7, false);
  Mk("freecol",    12, 150, 16, 18,  3,  16,  4, 10,  70,    8, true);
  Mk("briss",      13, 110, 14, 14,  2,  10,  3,  8,  64,    8, true);
  Mk("hsqldb",     14,  40, 10,  8,  1,   6,  3,  4, 110,    8, false);
  Mk("jedit",      15,  70, 12, 12,  2,  10,  4,  6,  60,    7, false);
  Mk("gruntspud",  16, 130, 16, 16,  3,  12,  4,  8,  66,    8, true);
  Mk("soot",       17, 200, 20, 22,  3,  18,  5, 12,  80,    9, true);
  Mk("columba",    18, 220, 18, 18,  3,  16,  4, 10,  70,    8, true);
  Mk("jython",     19,  60, 12,  8,  2,   8,  3,  6,  64,    8, true);
  Mk("findbugs",   20,  50, 10, 10,  1,   8,  3,  4,  55,    6, false);

  return Suite;
}

std::vector<WorkloadConfig> csc::scalingSuite() {
  std::vector<WorkloadConfig> Suite;

  auto Mk = [&](const char *Name, uint64_t Seed, uint32_t Scen,
                uint32_t Act, uint32_t Ent, uint32_t Wrap, uint32_t Fam,
                uint32_t FamSz, uint32_t Sel, uint32_t Density,
                uint32_t Chain, uint32_t Mix, uint32_t Hubs,
                uint32_t HubPct, uint32_t CycleLen) {
    WorkloadConfig C;
    C.Name = Name;
    C.Seed = Seed;
    C.NumScenarios = Scen;
    C.ActionsPerScenario = Act;
    C.NumEntityClasses = Ent;
    C.WrapperDepth = Wrap;
    C.NumFamilies = Fam;
    C.FamilySize = FamSz;
    C.NumSelectors = Sel;
    C.FieldDensity = Density;
    C.CallChainDepth = Chain;
    C.ContainerMixPct = Mix;
    C.NumSharedHubs = Hubs;
    C.HubMixPct = HubPct;
    C.CopyCycleLen = CycleLen;
    Suite.push_back(C);
  };

  // cyc: copy-cycle chain length (see WorkloadConfig::CopyCycleLen) —
  // real programs carry copy/assign cycles, and the tiers must exercise
  // the solver's online cycle elimination.
  //  name       seed scen act ent wrp fam fsz sel dns chn mix hub hub% cyc
  Mk("scale-xs",  61,   2,  4,  3,  1,  2,  3,  2,  1,  2, 25,  0,  0,  3);
  Mk("scale-s",   62,   8,  8,  6,  2,  4,  3,  4,  2,  3, 30,  2, 10,  4);
  Mk("scale-m",   63,  24, 12, 10,  2,  8,  4,  6,  2,  4, 35,  3, 10,  4);
  Mk("scale-l",   64,  72, 16, 16,  3, 12,  4,  8,  3,  5, 40,  4, 12,  6);
  Mk("scale-xl",  65, 180, 20, 22,  3, 16,  5, 10,  3,  6, 40,  6, 14, 32);
  Mk("scale-xxl", 66, 400, 24, 30,  3, 20,  5, 12,  4,  8, 45,  8, 16, 40);

  return Suite;
}
