//===- Printer.h - Pretty printer for the textual IR ------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a Program back to the `.jir` textual syntax accepted by the
/// frontend parser (round-trip tested).
///
//===----------------------------------------------------------------------===//

#ifndef CSC_IR_PRINTER_H
#define CSC_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace csc {

/// Renders the whole program as `.jir` source.
std::string printProgram(const Program &P);

/// Renders a single statement (no trailing newline); for diagnostics.
std::string printStmt(const Program &P, StmtId S);

} // namespace csc

#endif // CSC_IR_PRINTER_H
