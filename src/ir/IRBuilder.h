//===- IRBuilder.h - Programmatic IR construction ---------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builders for constructing IR programs from C++ (used by the
/// unit tests, the workload generator, and the examples). The textual
/// frontend in src/frontend is an alternative producer of the same IR.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_IR_IRBUILDER_H
#define CSC_IR_IRBUILDER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace csc {

/// Builds the body of one method. Statements are appended in order; \c
/// beginIf / \c elseBranch / \c endIf manage the nondeterministic branch
/// blocks used by the interpreter.
class MethodBuilder {
public:
  MethodBuilder(Program &P, MethodId M) : P(P), M(M) {}

  MethodId method() const { return M; }

  /// Declares a fresh local variable.
  VarId local(const std::string &Name, TypeId DeclaredType) {
    return P.addVar(M, Name, DeclaredType);
  }

  /// The receiver variable (instance methods only).
  VarId thisVar() const;

  /// The \p I-th declared parameter (excluding `this`).
  VarId param(size_t I) const;

  StmtId newObj(VarId To, TypeId T);
  StmtId newArray(VarId To, TypeId ArrayType);
  StmtId assign(VarId To, VarId From);
  StmtId cast(VarId To, TypeId T, VarId From);
  StmtId load(VarId To, VarId Base, FieldId F);
  StmtId loadField(VarId To, VarId Base, const std::string &FieldName);
  StmtId store(VarId Base, FieldId F, VarId From);
  StmtId storeField(VarId Base, const std::string &FieldName, VarId From);
  StmtId arrayLoad(VarId To, VarId Base);
  StmtId arrayStore(VarId Base, VarId From);
  StmtId staticLoad(VarId To, FieldId F);
  StmtId staticStore(FieldId F, VarId From);

  /// Virtual call `To = Base.Name(Args)`; To may be InvalidId.
  StmtId callVirtual(VarId To, VarId Base, const std::string &Name,
                     std::vector<VarId> Args);
  /// Static direct call `To = Callee(Args)`.
  StmtId callStatic(VarId To, MethodId Callee, std::vector<VarId> Args);
  /// Non-virtual call with receiver (constructors): `To = Base.Callee(Args)`.
  StmtId callSpecial(VarId To, VarId Base, MethodId Callee,
                     std::vector<VarId> Args);

  StmtId ret(VarId V = InvalidId);

  void beginIf();
  void elseBranch();
  void endIf();

private:
  StmtId append(Stmt S);

  Program &P;
  MethodId M;

  struct Frame {
    StmtId IfStmt;
    bool InElse = false;
    std::vector<StmtId> Cur;
    std::vector<StmtId> ThenSaved;
  };
  std::vector<Frame> Stack;
};

/// Program-level construction sugar.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  Program &program() { return P; }

  /// Defines a class extending \p Super (Object if empty).
  TypeId cls(const std::string &Name, const std::string &Super = "",
             bool IsAbstract = false);

  /// Defines an interface.
  TypeId iface(const std::string &Name);

  FieldId field(TypeId Owner, const std::string &Name, TypeId Ty,
                bool IsStatic = false);

  /// Creates a method and returns a builder for its body.
  MethodBuilder method(TypeId Owner, const std::string &Name,
                       std::vector<TypeId> ParamTypes, TypeId RetType,
                       bool IsStatic = false);

  /// Creates an abstract method (no body).
  MethodId abstractMethod(TypeId Owner, const std::string &Name,
                          std::vector<TypeId> ParamTypes, TypeId RetType);

private:
  Program &P;
};

} // namespace csc

#endif // CSC_IR_IRBUILDER_H
