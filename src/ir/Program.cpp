//===- Program.cpp - IR program container ---------------------------------===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace csc;

Program::Program() {
  // The root of the hierarchy; every type is a subtype of Object.
  ObjectTy = defineClass("Object", InvalidId);
  Types[ObjectTy].Super = InvalidId;
}

TypeId Program::getOrCreateType(const std::string &Name) {
  auto It = TypeByName.find(Name);
  if (It != TypeByName.end())
    return It->second;
  TypeId Id = static_cast<TypeId>(Types.size());
  TypeInfo TI;
  TI.Name = Name;
  TI.Defined = false;
  Types.push_back(std::move(TI));
  TypeByName.emplace(Name, Id);
  return Id;
}

TypeId Program::defineClass(const std::string &Name, TypeId Super,
                            std::vector<TypeId> Interfaces, TypeKind Kind,
                            bool IsAbstract) {
  TypeId Id = getOrCreateType(Name);
  TypeInfo &TI = Types[Id];
  assert(!TI.Defined && "class defined twice");
  TI.Kind = Kind;
  TI.IsAbstract = IsAbstract || Kind == TypeKind::Interface;
  TI.Interfaces = std::move(Interfaces);
  TI.Defined = true;
  if (Super == InvalidId && Kind == TypeKind::Class && Id != ObjectTy)
    Super = ObjectTy;
  TI.Super = Super;
  return Id;
}

TypeId Program::arrayOf(TypeId Elem) {
  std::string Name = Types[Elem].Name + "[]";
  auto It = TypeByName.find(Name);
  if (It != TypeByName.end())
    return It->second;
  TypeId Id = defineClass(Name, ObjectTy, {}, TypeKind::Array);
  Types[Id].ArrayElem = Elem;
  return Id;
}

TypeId Program::typeByName(const std::string &Name) const {
  auto It = TypeByName.find(Name);
  return It == TypeByName.end() ? InvalidId : It->second;
}

bool Program::isSubtype(TypeId Sub, TypeId Sup) const {
  if (Sub == Sup)
    return true;
  auto Key = std::make_pair(Sub, Sup);
  auto It = SubtypeCache.find(Key);
  if (It != SubtypeCache.end())
    return It->second;
  bool Result = computeSubtype(Sub, Sup);
  SubtypeCache.emplace(Key, Result);
  return Result;
}

bool Program::computeSubtype(TypeId Sub, TypeId Sup) const {
  if (Sup == ObjectTy)
    return true;
  const TypeInfo &SubTI = Types[Sub];
  // Covariant arrays: T[] <: S[] iff T <: S.
  if (SubTI.Kind == TypeKind::Array) {
    const TypeInfo &SupTI = Types[Sup];
    if (SupTI.Kind != TypeKind::Array)
      return false;
    return isSubtype(SubTI.ArrayElem, SupTI.ArrayElem);
  }
  // Walk the superclass chain and all transitively implemented interfaces.
  if (SubTI.Super != InvalidId && isSubtype(SubTI.Super, Sup))
    return true;
  for (TypeId I : SubTI.Interfaces)
    if (isSubtype(I, Sup))
      return true;
  return false;
}

FieldId Program::addField(TypeId Owner, const std::string &Name,
                          TypeId DeclaredType, bool IsStatic) {
  FieldId Id = static_cast<FieldId>(Fields.size());
  Fields.push_back({Name, Owner, DeclaredType, IsStatic});
  Types[Owner].Fields.push_back(Id);
  return Id;
}

FieldId Program::resolveField(TypeId T, const std::string &Name) const {
  for (TypeId Cur = T; Cur != InvalidId; Cur = Types[Cur].Super) {
    for (FieldId F : Types[Cur].Fields)
      if (Fields[F].Name == Name)
        return F;
  }
  return InvalidId;
}

MethodId Program::addMethod(TypeId Owner, const std::string &Name,
                            std::vector<TypeId> ParamTypes, TypeId RetType,
                            bool IsStatic, bool IsAbstract) {
  MethodId Id = static_cast<MethodId>(Methods.size());
  MethodInfo MI;
  MI.Name = Name;
  MI.Owner = Owner;
  MI.IsStatic = IsStatic;
  MI.IsAbstract = IsAbstract;
  MI.RetType = RetType;
  MI.Subsig = subsig(Name, ParamTypes.size());
  MI.ParamTypes = std::move(ParamTypes);
  Methods.push_back(std::move(MI));
  Types[Owner].Methods.push_back(Id);

  MethodInfo &M = Methods[Id];
  if (!IsStatic)
    M.Params.push_back(addVar(Id, "this", Owner));
  for (size_t I = 0, E = M.ParamTypes.size(); I != E; ++I) {
    std::string ParamName = "p";
    ParamName += std::to_string(I);
    M.Params.push_back(addVar(Id, ParamName, M.ParamTypes[I]));
  }
  return Id;
}

uint32_t Program::subsig(const std::string &Name, size_t Arity) {
  return Subsigs.intern(Name + "/" + std::to_string(Arity));
}

MethodId Program::dispatch(TypeId T, uint32_t Subsig) const {
  auto Key = std::make_pair(T, Subsig);
  auto It = DispatchCache.find(Key);
  if (It != DispatchCache.end())
    return It->second;
  MethodId Result = InvalidId;
  for (TypeId Cur = T; Cur != InvalidId; Cur = Types[Cur].Super) {
    for (MethodId M : Types[Cur].Methods) {
      if (Methods[M].Subsig == Subsig && !Methods[M].IsAbstract) {
        Result = M;
        break;
      }
    }
    if (Result != InvalidId)
      break;
  }
  DispatchCache.emplace(Key, Result);
  return Result;
}

MethodId Program::lookupMethod(TypeId T, const std::string &Name,
                               size_t Arity) const {
  for (TypeId Cur = T; Cur != InvalidId; Cur = Types[Cur].Super) {
    for (MethodId M : Types[Cur].Methods)
      if (Methods[M].Name == Name && Methods[M].ParamTypes.size() == Arity)
        return M;
  }
  return InvalidId;
}

VarId Program::addVar(MethodId M, const std::string &Name,
                      TypeId DeclaredType) {
  VarId Id = static_cast<VarId>(Vars.size());
  Vars.push_back({Name, M, DeclaredType, {}});
  Methods[M].Vars.push_back(Id);
  return Id;
}

StmtId Program::addStmt(Stmt S) {
  StmtId Id = static_cast<StmtId>(Stmts.size());
  assert(S.Method != InvalidId && "statement must have an owner method");
  // Record variable definitions: every statement with a To slot defines it.
  if (S.To != InvalidId && S.Kind != StmtKind::Return)
    Vars[S.To].Defs.push_back(Id);
  if (S.Kind == StmtKind::Return && S.From != InvalidId) {
    MethodInfo &M = Methods[S.Method];
    bool Known = false;
    for (VarId V : M.RetVars)
      Known = Known || V == S.From;
    if (!Known)
      M.RetVars.push_back(S.From);
  }
  Methods[S.Method].AllStmts.push_back(Id);
  Stmts.push_back(std::move(S));
  return Id;
}

ObjId Program::addObj(TypeId Type, StmtId Alloc, MethodId M, bool IsArray) {
  ObjId Id = static_cast<ObjId>(Objs.size());
  Objs.push_back({Type, Alloc, M, IsArray});
  return Id;
}

CallSiteId Program::addCallSite(StmtId S, MethodId Caller) {
  CallSiteId Id = static_cast<CallSiteId>(CallSites.size());
  CallSites.push_back({S, Caller});
  return Id;
}

VarId Program::callArg(const Stmt &S, size_t K) const {
  assert(S.Kind == StmtKind::Invoke && "not a call site");
  if (S.IKind == InvokeKind::Static)
    return K < S.Args.size() ? S.Args[K] : InvalidId;
  if (K == 0)
    return S.Base;
  return K - 1 < S.Args.size() ? S.Args[K - 1] : InvalidId;
}

size_t Program::numCallArgs(const Stmt &S) const {
  assert(S.Kind == StmtKind::Invoke && "not a call site");
  return S.Args.size() + (S.IKind == InvokeKind::Static ? 0 : 1);
}

std::string Program::methodString(MethodId M) const {
  const MethodInfo &MI = Methods[M];
  return Types[MI.Owner].Name + "." + MI.Name + "/" +
         std::to_string(MI.ParamTypes.size());
}

void Program::invalidateHierarchyCaches() const {
  SubtypeCache.clear();
  DispatchCache.clear();
}
