//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of the Cut-Shortcut pointer analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run after construction or parsing.
/// Returns human-readable error strings rather than aborting, so the
/// frontend can surface problems as diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef CSC_IR_VERIFIER_H
#define CSC_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace csc {

/// Checks the program; returns a list of errors (empty if well-formed).
std::vector<std::string> verifyProgram(const Program &P);

} // namespace csc

#endif // CSC_IR_VERIFIER_H
